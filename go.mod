module fedcdp

go 1.21
