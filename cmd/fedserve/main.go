// Command fedserve runs a real federated-learning server over TCP: it
// publishes the global model to connecting clients each round, aggregates
// their updates with FedSGD, evaluates, and prints progress. Pair it with
// cmd/fedclient processes (optionally on other machines).
//
//	fedserve -addr :7070 -dataset cancer -kt 3 -rounds 5 -secure
package main

import (
	"flag"
	"fmt"
	"os"

	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	dsName := flag.String("dataset", "cancer", "benchmark dataset")
	kt := flag.Int("kt", 2, "clients per round")
	rounds := flag.Int("rounds", 3, "federated rounds")
	batch := flag.Int("batch", 0, "local batch size (0 = benchmark default)")
	iters := flag.Int("iters", 10, "local iterations")
	lr := flag.Float64("lr", 0, "learning rate (0 = benchmark default)")
	secure := flag.Bool("secure", false, "encrypt the channel (X25519 + AES-GCM)")
	seed := flag.Int64("seed", 42, "root seed")
	flag.Parse()

	spec, err := dataset.Get(*dsName)
	if err != nil {
		fatal(err)
	}
	if *batch == 0 {
		*batch = spec.BatchSize
	}
	if *lr == 0 {
		*lr = spec.LR
	}
	ds := dataset.New(spec, *seed)
	model := nn.Build(spec.ModelSpec(), tensor.Split(*seed, 1))
	valX, valY := ds.Validation(200)

	srv, err := fl.NewRoundServer(*addr)
	if err != nil {
		fatal(err)
	}
	srv.Secure = *secure
	defer srv.Close()
	fmt.Printf("fedserve: %s on %s (secure=%v), %d rounds, %d clients/round\n",
		*dsName, srv.Addr(), *secure, *rounds, *kt)

	cfg := fl.RoundConfig{BatchSize: *batch, LocalIters: *iters, LR: *lr, TotalRounds: *rounds}
	for round := 0; round < *rounds; round++ {
		deltas, err := srv.RunRound(round, model.Params(), cfg, *kt)
		if err != nil {
			fatal(fmt.Errorf("round %d: %w", round, err))
		}
		fl.AggregateFedSGD(model.Params(), deltas)
		acc := fl.Evaluate(model, valX, valY)
		fmt.Printf("round %d: %d updates aggregated, accuracy %.4f\n", round, len(deltas), acc)
	}
	fmt.Println("fedserve: done")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedserve:", err)
	os.Exit(1)
}
