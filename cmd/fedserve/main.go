// Command fedserve runs a real federated-learning server over TCP: it
// publishes the global model to concurrently handled client sessions each
// round, folds their updates into a FedSGD aggregator as they arrive
// (O(model) server memory regardless of cohort size), evaluates, and
// prints progress. Rounds can run against a straggler deadline and a
// minimum quorum. Pair it with cmd/fedclient processes (optionally on
// other machines).
//
//	fedserve -addr :7070 -dataset cancer -kt 3 -rounds 5 -deadline 30s -quorum 2 -secure
//	fedserve -config configs/fault-acceptance.yaml -addr :7070
//
// -config loads a declarative experiment file (see internal/config): the
// file determines the task, flags given alongside override it, and the
// config's canonical digest is published with every round announcement so
// config-driven clients can verify they joined the right experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedcdp/internal/config"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	dsName := flag.String("dataset", "cancer", "benchmark dataset")
	kt := flag.Int("kt", 2, "clients per round")
	rounds := flag.Int("rounds", 3, "federated rounds")
	batch := flag.Int("batch", 0, "local batch size (0 = benchmark default)")
	iters := flag.Int("iters", 10, "local iterations")
	lr := flag.Float64("lr", 0, "learning rate (0 = benchmark default)")
	deadline := flag.Duration("deadline", 0, "per-round straggler cutoff (0 = wait for all kt updates)")
	quorum := flag.Int("quorum", 0, "minimum updates required to commit a round")
	secure := flag.Bool("secure", false, "encrypt the channel (X25519 + AES-GCM)")
	codec := flag.String("codec", "", "wire codec offered to clients: gob (default) or binary (negotiated per session, see DESIGN.md)")
	precision := flag.String("precision", "", "client GEMM precision published with the round: fp64 (default) or fp32")
	noiseEngine := flag.String("noise-engine", "", "DP noise engine published to clients: counter (default) or reference (see DESIGN.md)")
	scenario := flag.String("scenario", "", "data-heterogeneity scenario published to clients: "+strings.Join(dataset.ScenarioNames(), ", ")+" (default iid)")
	alpha := flag.Float64("alpha", 0, "dirichlet concentration (0 = default 0.5)")
	shards := flag.Int("shards", 0, "pathological label shards per client (0 = default 2)")
	aggRule := flag.String("agg", "", "aggregation rule: fedsgd (default), fedavg, weighted, or robust — median, trimmed[:beta], krum[:f] (robust rules require -agg-shards 0; see DESIGN.md)")
	aggShards := flag.Int("agg-shards", 0, "aggregation topology: 0 = legacy flat float fold, 1 = flat exact fold, >=2 = in-process aggregation tree (bit-identical to 1; see DESIGN.md)")
	treeFanout := flag.Int("tree", 0, "aggregation-tree partial compose fan-in (0 = all at once)")
	seed := flag.Int64("seed", 42, "root seed")
	cfgPath := flag.String("config", "", "declarative experiment config file; flags given alongside override it (see DESIGN.md, \"Experiment configs\")")
	flag.Parse()

	digest := ""
	if *cfgPath != "" {
		exp, err := config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
		flagSrc := config.FromCore(core.Config{
			Dataset: *dsName, Kt: *kt, Rounds: *rounds, BatchSize: *batch,
			LocalIters: *iters, LR: *lr, RoundDeadline: *deadline, MinQuorum: *quorum,
			Codec: *codec, Precision: *precision, NoiseEngine: *noiseEngine,
			Scenario:    dataset.Scenario{Name: *scenario, Alpha: *alpha, Shards: *shards},
			Aggregation: *aggRule, Shards: *aggShards, TreeFanout: *treeFanout, Seed: *seed,
		}, false)
		config.ApplyFlagOverrides(flag.CommandLine, exp, flagSrc)
		if err := exp.Validate(); err != nil {
			fatal(err)
		}
		*dsName, *kt, *rounds = exp.Data.Dataset, exp.Training.Kt, exp.Training.Rounds
		*batch, *iters, *lr = exp.Training.BatchSize, exp.Training.LocalIters, exp.Training.LR
		*deadline, *quorum = exp.Runtime.Deadline, exp.Runtime.Quorum
		*codec, *precision, *noiseEngine = exp.Codec.Wire, exp.Model.Precision, exp.Method.NoiseEngine
		*scenario, *alpha, *shards = exp.Data.Scenario, exp.Data.Alpha, exp.Data.Shards
		*aggRule, *aggShards, *treeFanout = exp.Aggregation.Rule, exp.Aggregation.Shards, exp.Aggregation.TreeFanout
		*seed = exp.Seed
		digest = exp.Digest()
	}

	spec, err := dataset.Get(*dsName)
	if err != nil {
		fatal(err)
	}
	if *batch == 0 {
		*batch = spec.BatchSize
	}
	if *lr == 0 {
		*lr = spec.LR
	}
	if *quorum < 0 || *quorum > *kt {
		fatal(fmt.Errorf("quorum %d outside [0, kt=%d]", *quorum, *kt))
	}
	sc := dataset.Scenario{Name: *scenario, Alpha: *alpha, Shards: *shards}
	if _, err := sc.Partitioner(); err != nil {
		fatal(err)
	}
	if !fl.ValidCodec(*codec) {
		fatal(fmt.Errorf("unknown wire codec %q", *codec))
	}
	if *precision != "" && *precision != tensor.PrecisionFP64 && *precision != tensor.PrecisionFP32 {
		fatal(fmt.Errorf("unknown precision %q", *precision))
	}
	ds := dataset.New(spec, *seed)
	model := nn.Build(spec.ModelSpec(), tensor.Split(*seed, 1))
	valX, valY := ds.Validation(200)

	srv, err := fl.NewRoundServer(*addr)
	if err != nil {
		fatal(err)
	}
	srv.Secure = *secure
	srv.Codec = *codec
	defer srv.Close()
	fmt.Printf("fedserve: %s on %s (secure=%v, codec=%s), %d rounds, %d clients/round, deadline=%v, quorum=%d, scenario=%s\n",
		*dsName, srv.Addr(), *secure, codecName(*codec), *rounds, *kt, *deadline, *quorum, sc)

	cfg := fl.RoundConfig{BatchSize: *batch, LocalIters: *iters, LR: *lr, TotalRounds: *rounds, NoiseEngine: *noiseEngine, Scenario: sc, Precision: *precision, ConfigDigest: digest}
	// K=0: a standalone server has no declared population, so tree shards
	// partition client ids by modulo instead of contiguous ranges.
	agg, err := fl.NewAggregatorFor(*aggRule, *aggShards, *treeFanout, 0)
	if err != nil {
		fatal(err)
	}
	for round := 0; round < *rounds; round++ {
		start := time.Now()
		res, err := srv.StreamRound(round, model.Params(), cfg, agg, fl.RoundOptions{
			Clients:   *kt,
			Deadline:  *deadline,
			MinQuorum: *quorum,
		})
		if err != nil {
			fatal(fmt.Errorf("round %d: %w", round, err))
		}
		acc := fl.Evaluate(model, valX, valY)
		status := "committed"
		if !res.Committed {
			status = "below quorum — model unchanged"
		}
		dups := ""
		if res.Duplicates > 0 {
			dups = fmt.Sprintf(", %d duplicate", res.Duplicates)
		}
		fmt.Printf("round %d: %d/%d updates folded (%d failed%s), %s, accuracy %.4f, %.1fs\n",
			round, res.Folded, *kt, res.Failed, dups, status, acc, time.Since(start).Seconds())
	}
	fmt.Println("fedserve: done")
}

func codecName(c string) string {
	if c == "" {
		return fl.CodecGob
	}
	return c
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedserve:", err)
	os.Exit(1)
}
