// Command fedattack runs a gradient-leakage reconstruction attack against a
// chosen defense and reports the paper's Table VII metrics. For image
// benchmarks it can write the private input and its reconstruction as PGM
// files for visual comparison (Figures 1 and 4).
//
// Examples:
//
//	fedattack -dataset mnist -method non-private -type 2
//	fedattack -dataset lfw -method fed-cdp -type 0 -out /tmp/recon
//	fedattack -dataset mnist -method dssgd -type 1 -mask
//	fedattack -config configs/attack-matrix.yaml -type 2
//
// -config loads a declarative experiment file (see internal/config): the
// victim's dataset, defense, scenario, aggregation rule and fault plan
// come from the file, with flags given alongside as overrides. The config
// stores core method ids (fedcdp, ...); they are translated to and from
// this command's paper-style defense names (fed-cdp, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fedcdp/internal/attack"
	"fedcdp/internal/config"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/fl"
	"fedcdp/internal/simnet"
	"fedcdp/internal/tensor"
)

// Defense-evaluation context (-faults/-simnet): the small federation the
// leakage attack is staged inside when a plan or a fabric evaluation is
// requested.
const (
	evalClients = 10
	evalCohort  = 4
	evalRounds  = 3
)

func main() {
	dsName := flag.String("dataset", "mnist", "benchmark dataset")
	method := flag.String("method", "non-private", "defense: non-private, fed-sdp, fed-cdp, fed-cdp(decay), dssgd")
	atkType := flag.Int("type", 2, "leakage type: 0/1 (batched round update) or 2 (per-example)")
	batch := flag.Int("batch", 3, "batch size for type-0/1 attacks")
	clientID := flag.Int("client", 0, "victim client id")
	maxIters := flag.Int("max-iters", 300, "attack iteration budget T")
	optimizer := flag.String("optimizer", attack.OptLBFGS, "attack optimizer: lbfgs or adam")
	mask := flag.Bool("mask", false, "mask-aware matching (attack only shared entries)")
	scenario := flag.String("scenario", "", "victim data-heterogeneity scenario: "+strings.Join(dataset.ScenarioNames(), ", ")+" (default iid)")
	alpha := flag.Float64("alpha", 0, "dirichlet concentration (0 = default 0.5)")
	shards := flag.Int("shards", 0, "pathological label shards per client (0 = default 2)")
	seed := flag.Int64("seed", 42, "root seed")
	out := flag.String("out", "", "directory for PGM dumps of truth/reconstruction (image datasets)")
	aggRule := flag.String("agg", "", "aggregation rule the defense evaluation folds under: fedsgd (default), fedavg, weighted, or robust — median, trimmed[:beta], krum[:f]")
	faults := flag.String("faults", "", "adversarial fault plan staging the attack, e.g. 'byzantine=2:signflip,poison=1:0.8' (see DESIGN.md); a poisoned victim leaks its flipped-label shard view")
	simnetEval := flag.Bool("simnet", false, "first evaluate the defended federation over the simnet fabric under -agg/-faults, and stamp its outcome into the report")
	cfgPath := flag.String("config", "", "declarative experiment config file; flags given alongside override it (see DESIGN.md, \"Experiment configs\")")
	flag.Parse()

	digest := ""
	if *cfgPath != "" {
		exp, cerr := config.Load(*cfgPath)
		if cerr != nil {
			fatal(cerr)
		}
		// The config schema stores core method ids; the flag speaks this
		// command's paper-style defense names, so translate on the way in
		// (override source) and on the way out (effective value).
		flagSrc := config.FromCore(core.Config{
			Dataset: *dsName, Method: coreMethod(*method),
			Scenario:    dataset.Scenario{Name: *scenario, Alpha: *alpha, Shards: *shards},
			Aggregation: *aggRule, Faults: *faults, Seed: *seed,
		}, *simnetEval)
		config.ApplyFlagOverrides(flag.CommandLine, exp, flagSrc)
		if err := exp.Validate(); err != nil {
			fatal(err)
		}
		*dsName, *method = exp.Data.Dataset, attackMethod(exp.Method.Name)
		*scenario, *alpha, *shards = exp.Data.Scenario, exp.Data.Alpha, exp.Data.Shards
		*aggRule, *faults, *seed = exp.Aggregation.Rule, exp.Faults.Plan, exp.Seed
		*simnetEval = *simnetEval || exp.Runtime.Simnet
		digest = exp.Digest()
		fmt.Printf("config=%s digest=%s\n", *cfgPath, digest)
	}

	spec, err := dataset.Get(*dsName)
	if err != nil {
		fatal(err)
	}
	if !fl.ValidAggregation(*aggRule) {
		fatal(fmt.Errorf("unknown aggregation rule %q", *aggRule))
	}
	plan, err := simnet.ParsePlan(*faults)
	if err != nil {
		fatal(err)
	}
	if plan, err = plan.Bind(*seed, evalRounds, evalClients); err != nil {
		fatal(err)
	}
	part, err := dataset.Scenario{Name: *scenario, Alpha: *alpha, Shards: *shards}.Partitioner()
	if err != nil {
		fatal(err)
	}
	ds := dataset.NewPartitioned(spec, *seed, part)
	cd := ds.Client(*clientID)
	// A poisoned victim trains — and therefore leaks — its flipped-label
	// shard view; the reconstruction target is what the attacker would
	// actually observe under the plan.
	cd = fl.AdversaryShard(plan, *clientID, cd)
	m := attack.NewMLP([]int{spec.Features, 32, spec.Classes}, attack.ActSigmoid, tensor.NewRNG(*seed))
	noise := tensor.Split(*seed, 7)

	var truth []*tensor.Tensor
	var labels []int
	var gw, gb []*tensor.Tensor
	if *atkType == 2 {
		x, y := cd.Get(0)
		truth, labels = []*tensor.Tensor{x}, []int{y}
		_, gw, gb = m.Gradients(x, y)
		sanitizePerExample(gw, gb, *method, noise)
		labels = []int{attack.InferLabel(gb[m.Layers()-1])}
	} else {
		truth = make([]*tensor.Tensor, *batch)
		labels = make([]int, *batch)
		gw, gb = batchGradients(m, cd, truth, labels, *method, noise)
	}

	res := attack.Reconstruct(m, gw, gb, labels, truth, attack.Config{
		MaxIters:    *maxIters,
		Optimizer:   *optimizer,
		Seed:        *seed,
		MaskNonzero: *mask,
	})
	fmt.Printf("dataset=%s method=%s type=%d optimizer=%s\n", *dsName, *method, *atkType, *optimizer)
	agg := *aggRule
	if agg == "" {
		agg = fl.AggFedSGD
	}
	fmt.Printf("agg=%s faults=%q simnet=%v victim-poisoned=%v victim-byzantine=%v\n",
		agg, *faults, *simnetEval, plan.PoisonedClient(*clientID), plan.ByzantineClient(*clientID))
	if *simnetEval {
		eval, err := core.RunSimnet(core.Config{
			Dataset: *dsName,
			Method:  coreMethod(*method),
			K:       evalClients, Kt: evalCohort, Rounds: evalRounds,
			LocalIters:   2,
			Sigma:        6,
			Seed:         *seed,
			ValExamples:  60,
			EvalEvery:    1,
			Scenario:     dataset.Scenario{Name: *scenario, Alpha: *alpha, Shards: *shards},
			Faults:       *faults,
			Aggregation:  *aggRule,
			ConfigDigest: digest,
		})
		if err != nil {
			fatal(err)
		}
		folded := 0
		for _, r := range eval.Rounds {
			folded += r.Clients
		}
		acc, _ := eval.FinalAccuracy()
		fmt.Printf("defense-eval: acc=%.3f eps=%.4f folded=%d rounds=%d\n",
			acc, eval.FinalEpsilon(), folded, len(eval.Rounds))
	}
	fmt.Printf("revealed=%v match-loss-converged=%v iterations=%d\n", res.Revealed, res.Success, res.Iterations)
	fmt.Printf("reconstruction-distance=%.4f final-loss=%.3g\n", res.Distance, res.FinalLoss)

	if *out != "" && !spec.IsTabular {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for i, x := range truth {
			writePGM(filepath.Join(*out, fmt.Sprintf("truth_%d.pgm", i)), x, spec)
			writePGM(filepath.Join(*out, fmt.Sprintf("recon_%d.pgm", i)), res.Reconstruction[i], spec)
		}
		fmt.Printf("wrote %d truth/reconstruction pairs to %s\n", len(truth), *out)
	}
}

// attackMethod maps core method ids back onto this command's paper-style
// defense names — the inverse of coreMethod, for config-driven runs.
func attackMethod(method string) string {
	switch method {
	case core.MethodNonPrivate:
		return "non-private"
	case core.MethodFedSDPSrv:
		return "fed-sdp"
	case core.MethodFedCDP:
		return "fed-cdp"
	case core.MethodFedCDPDecay:
		return "fed-cdp(decay)"
	case core.MethodDSSGD:
		return "dssgd"
	default:
		return method
	}
}

// coreMethod maps fedattack's paper-style defense names onto core's method
// ids for the -simnet defense evaluation.
func coreMethod(method string) string {
	switch method {
	case "non-private":
		return core.MethodNonPrivate
	case "fed-sdp":
		return core.MethodFedSDPSrv
	case "fed-cdp":
		return core.MethodFedCDP
	case "fed-cdp(decay)":
		return core.MethodFedCDPDecay
	case "dssgd":
		return core.MethodDSSGD
	default:
		return method
	}
}

// sanitizePerExample applies the defense's type-2 semantics in place.
func sanitizePerExample(gw, gb []*tensor.Tensor, method string, rng *tensor.RNG) {
	switch method {
	case "fed-cdp":
		dp.Sanitize(dp.JoinGrads(gw, gb), 4, 6, rng)
	case "fed-cdp(decay)":
		dp.Sanitize(dp.JoinGrads(gw, gb), 6, 6, rng)
	}
}

// batchGradients computes the leaked batched update for type-0/1 attacks.
func batchGradients(m *attack.MLP, cd *dataset.ClientData, truth []*tensor.Tensor, labels []int, method string, rng *tensor.RNG) (gw, gb []*tensor.Tensor) {
	L := m.Layers()
	gw = make([]*tensor.Tensor, L)
	gb = make([]*tensor.Tensor, L)
	for l := 0; l < L; l++ {
		gw[l] = tensor.New(m.Sizes[l+1], m.Sizes[l])
		gb[l] = tensor.New(m.Sizes[l+1])
	}
	inv := 1 / float64(len(truth))
	for j := range truth {
		x, y := cd.Get(j)
		truth[j], labels[j] = x, y
		_, w, b := m.Gradients(x, y)
		if method == "fed-cdp" {
			dp.Sanitize(dp.JoinGrads(w, b), 4, 6, rng)
		} else if method == "fed-cdp(decay)" {
			dp.Sanitize(dp.JoinGrads(w, b), 6, 6, rng)
		}
		for l := 0; l < L; l++ {
			gw[l].AddScaled(inv, w[l])
			gb[l].AddScaled(inv, b[l])
		}
	}
	switch method {
	case "fed-sdp":
		dp.Sanitize(dp.JoinGrads(gw, gb), 4, 6, rng)
	case "dssgd":
		dp.Compress(dp.JoinGrads(gw, gb), 0.9)
	}
	return gw, gb
}

// writePGM renders the first channel of an image tensor as an 8-bit PGM.
func writePGM(path string, x *tensor.Tensor, spec dataset.Spec) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "P2\n%d %d\n255\n", spec.Width, spec.Height)
	d := x.Data()
	for y := 0; y < spec.Height; y++ {
		for xx := 0; xx < spec.Width; xx++ {
			v := int(d[y*spec.Width+xx] * 255)
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			fmt.Fprintf(f, "%d ", v)
		}
		fmt.Fprintln(f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedattack:", err)
	os.Exit(1)
}
