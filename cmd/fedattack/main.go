// Command fedattack runs a gradient-leakage reconstruction attack against a
// chosen defense and reports the paper's Table VII metrics. For image
// benchmarks it can write the private input and its reconstruction as PGM
// files for visual comparison (Figures 1 and 4).
//
// Examples:
//
//	fedattack -dataset mnist -method non-private -type 2
//	fedattack -dataset lfw -method fed-cdp -type 0 -out /tmp/recon
//	fedattack -dataset mnist -method dssgd -type 1 -mask
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fedcdp/internal/attack"
	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

func main() {
	dsName := flag.String("dataset", "mnist", "benchmark dataset")
	method := flag.String("method", "non-private", "defense: non-private, fed-sdp, fed-cdp, fed-cdp(decay), dssgd")
	atkType := flag.Int("type", 2, "leakage type: 0/1 (batched round update) or 2 (per-example)")
	batch := flag.Int("batch", 3, "batch size for type-0/1 attacks")
	clientID := flag.Int("client", 0, "victim client id")
	maxIters := flag.Int("max-iters", 300, "attack iteration budget T")
	optimizer := flag.String("optimizer", attack.OptLBFGS, "attack optimizer: lbfgs or adam")
	mask := flag.Bool("mask", false, "mask-aware matching (attack only shared entries)")
	scenario := flag.String("scenario", "", "victim data-heterogeneity scenario: "+strings.Join(dataset.ScenarioNames(), ", ")+" (default iid)")
	alpha := flag.Float64("alpha", 0, "dirichlet concentration (0 = default 0.5)")
	shards := flag.Int("shards", 0, "pathological label shards per client (0 = default 2)")
	seed := flag.Int64("seed", 42, "root seed")
	out := flag.String("out", "", "directory for PGM dumps of truth/reconstruction (image datasets)")
	flag.Parse()

	spec, err := dataset.Get(*dsName)
	if err != nil {
		fatal(err)
	}
	part, err := dataset.Scenario{Name: *scenario, Alpha: *alpha, Shards: *shards}.Partitioner()
	if err != nil {
		fatal(err)
	}
	ds := dataset.NewPartitioned(spec, *seed, part)
	cd := ds.Client(*clientID)
	m := attack.NewMLP([]int{spec.Features, 32, spec.Classes}, attack.ActSigmoid, tensor.NewRNG(*seed))
	noise := tensor.Split(*seed, 7)

	var truth []*tensor.Tensor
	var labels []int
	var gw, gb []*tensor.Tensor
	if *atkType == 2 {
		x, y := cd.Get(0)
		truth, labels = []*tensor.Tensor{x}, []int{y}
		_, gw, gb = m.Gradients(x, y)
		sanitizePerExample(gw, gb, *method, noise)
		labels = []int{attack.InferLabel(gb[m.Layers()-1])}
	} else {
		truth = make([]*tensor.Tensor, *batch)
		labels = make([]int, *batch)
		gw, gb = batchGradients(m, cd, truth, labels, *method, noise)
	}

	res := attack.Reconstruct(m, gw, gb, labels, truth, attack.Config{
		MaxIters:    *maxIters,
		Optimizer:   *optimizer,
		Seed:        *seed,
		MaskNonzero: *mask,
	})
	fmt.Printf("dataset=%s method=%s type=%d optimizer=%s\n", *dsName, *method, *atkType, *optimizer)
	fmt.Printf("revealed=%v match-loss-converged=%v iterations=%d\n", res.Revealed, res.Success, res.Iterations)
	fmt.Printf("reconstruction-distance=%.4f final-loss=%.3g\n", res.Distance, res.FinalLoss)

	if *out != "" && !spec.IsTabular {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for i, x := range truth {
			writePGM(filepath.Join(*out, fmt.Sprintf("truth_%d.pgm", i)), x, spec)
			writePGM(filepath.Join(*out, fmt.Sprintf("recon_%d.pgm", i)), res.Reconstruction[i], spec)
		}
		fmt.Printf("wrote %d truth/reconstruction pairs to %s\n", len(truth), *out)
	}
}

// sanitizePerExample applies the defense's type-2 semantics in place.
func sanitizePerExample(gw, gb []*tensor.Tensor, method string, rng *tensor.RNG) {
	switch method {
	case "fed-cdp":
		dp.Sanitize(dp.JoinGrads(gw, gb), 4, 6, rng)
	case "fed-cdp(decay)":
		dp.Sanitize(dp.JoinGrads(gw, gb), 6, 6, rng)
	}
}

// batchGradients computes the leaked batched update for type-0/1 attacks.
func batchGradients(m *attack.MLP, cd *dataset.ClientData, truth []*tensor.Tensor, labels []int, method string, rng *tensor.RNG) (gw, gb []*tensor.Tensor) {
	L := m.Layers()
	gw = make([]*tensor.Tensor, L)
	gb = make([]*tensor.Tensor, L)
	for l := 0; l < L; l++ {
		gw[l] = tensor.New(m.Sizes[l+1], m.Sizes[l])
		gb[l] = tensor.New(m.Sizes[l+1])
	}
	inv := 1 / float64(len(truth))
	for j := range truth {
		x, y := cd.Get(j)
		truth[j], labels[j] = x, y
		_, w, b := m.Gradients(x, y)
		if method == "fed-cdp" {
			dp.Sanitize(dp.JoinGrads(w, b), 4, 6, rng)
		} else if method == "fed-cdp(decay)" {
			dp.Sanitize(dp.JoinGrads(w, b), 6, 6, rng)
		}
		for l := 0; l < L; l++ {
			gw[l].AddScaled(inv, w[l])
			gb[l].AddScaled(inv, b[l])
		}
	}
	switch method {
	case "fed-sdp":
		dp.Sanitize(dp.JoinGrads(gw, gb), 4, 6, rng)
	case "dssgd":
		dp.Compress(dp.JoinGrads(gw, gb), 0.9)
	}
	return gw, gb
}

// writePGM renders the first channel of an image tensor as an 8-bit PGM.
func writePGM(path string, x *tensor.Tensor, spec dataset.Spec) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "P2\n%d %d\n255\n", spec.Width, spec.Height)
	d := x.Data()
	for y := 0; y < spec.Height; y++ {
		for xx := 0; xx < spec.Width; xx++ {
			v := int(d[y*spec.Width+xx] * 255)
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			fmt.Fprintf(f, "%d ", v)
		}
		fmt.Fprintln(f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedattack:", err)
	os.Exit(1)
}
