// Command fedtrain runs one federated-learning experiment with full control
// over the method, benchmark and privacy parameters, printing per-round
// accuracy and privacy spending.
//
// Examples:
//
//	fedtrain -dataset mnist -method fedcdp -rounds 20 -iters 20
//	fedtrain -dataset cancer -method fedsdp -k 100 -kt 10 -sigma 1
//	fedtrain -dataset mnist -method fedcdp-decay -compress 0.3
//	fedtrain -dataset mnist -method fedcdp -scenario dirichlet -alpha 0.1
//	fedtrain -dataset mnist -scenario quantity -agg weighted
//	fedtrain -dataset cancer -faults 'drop=0.2,crash=2,restart=1'
//	fedtrain -dataset cancer -simnet -faults 'latency=20ms,crash=2,partition=c0>server@1-2'
//	fedtrain -dataset cancer -simnet -k 100000 -kt 1000 -agg-shards 32 -sampler floyd -codec binary -iters 1
//	fedtrain -config configs/fault-acceptance.yaml
//	fedtrain -config configs/fault-acceptance.yaml -sigma 0.1   # flag overrides file
//
// -faults injects a deterministic fault plan (see DESIGN.md, "Simnet") into
// the in-process runtime; -simnet additionally runs the whole federation —
// server, per-client RPC sessions, restarts — over the in-memory simnet
// fabric on virtual time. -agg-shards switches aggregation to the exact
// hierarchical topology (under -simnet, real edge-aggregator hosts), which
// with -sampler floyd and the multiplexed client scheduler scales seeded
// deployments to K=100,000 (see DESIGN.md, "Hierarchical aggregation").
//
// -config loads a declarative experiment file (see internal/config and
// DESIGN.md, "Experiment configs"): the file fully determines the run, any
// flag passed alongside overrides it and is re-stamped into the effective
// config, and the run is tagged with the config's canonical digest. A
// sweep block in the file fans the run out over multiple seeds in parallel
// across cores.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"fedcdp/internal/config"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
)

func main() {
	var cfg core.Config
	flag.StringVar(&cfg.Dataset, "dataset", "mnist", "benchmark: "+strings.Join(dataset.Names(), ", "))
	flag.StringVar(&cfg.Method, "method", core.MethodFedCDP, "method: "+strings.Join(core.Methods(), ", "))
	flag.IntVar(&cfg.K, "k", 16, "total client population")
	flag.IntVar(&cfg.Kt, "kt", 8, "participating clients per round")
	flag.IntVar(&cfg.Rounds, "rounds", 20, "federated rounds T")
	flag.IntVar(&cfg.BatchSize, "batch", 0, "local batch size B (0 = benchmark default)")
	flag.IntVar(&cfg.LocalIters, "iters", 20, "local iterations L")
	flag.Float64Var(&cfg.LR, "lr", 0, "learning rate (0 = benchmark default)")
	flag.Float64Var(&cfg.Clip, "clip", 4, "clipping bound C")
	flag.Float64Var(&cfg.Sigma, "sigma", 0.06, "noise scale (paper σ=6; see DESIGN.md on scaling)")
	flag.Float64Var(&cfg.DecayFrom, "decay-from", 6, "decay schedule initial bound")
	flag.Float64Var(&cfg.DecayTo, "decay-to", 2, "decay schedule final bound")
	flag.Float64Var(&cfg.CompressRatio, "compress", 0, "gradient prune ratio (communication-efficient FL)")
	flag.Float64Var(&cfg.ShareFraction, "share", 0.1, "DSSGD share fraction")
	flag.StringVar(&cfg.Engine, "engine", "", "execution engine: batched (default) or reference (see DESIGN.md)")
	flag.StringVar(&cfg.NoiseEngine, "noise-engine", "", "DP noise engine: counter (default, parallel) or reference (see DESIGN.md)")
	flag.StringVar(&cfg.Runtime, "runtime", "", "round runtime: streaming (default) or barrier (see DESIGN.md)")
	flag.StringVar(&cfg.Codec, "codec", "", "wire codec: gob (default, parity oracle) or binary (see DESIGN.md)")
	flag.StringVar(&cfg.Precision, "precision", "", "client GEMM precision: fp64 (default, parity oracle) or fp32 (see DESIGN.md)")
	flag.StringVar(&cfg.Scenario.Name, "scenario", "", "data-heterogeneity scenario: "+strings.Join(dataset.ScenarioNames(), ", ")+" (default iid)")
	flag.Float64Var(&cfg.Scenario.Alpha, "alpha", 0, "dirichlet concentration (0 = default 0.5)")
	flag.IntVar(&cfg.Scenario.Shards, "shards", 0, "pathological label shards per client (0 = default 2)")
	flag.IntVar(&cfg.Scenario.Period, "period", 0, "rounds per stage for time-varying scenarios (incremental, decaynoise; 0 = default 5)")
	flag.StringVar(&cfg.Aggregation, "agg", "", "aggregation rule: fedsgd (default), fedavg, weighted, or robust — median, trimmed[:beta], krum[:f] (robust rules require -agg-shards 0; see DESIGN.md)")
	flag.IntVar(&cfg.Shards, "agg-shards", 0, "aggregation topology: 0 = legacy flat float fold, 1 = flat exact fold, >=2 = edge-aggregator tree (bit-identical to 1 at any count; see DESIGN.md)")
	flag.IntVar(&cfg.TreeFanout, "tree", 0, "aggregation-tree partial compose fan-in (0 = all at once)")
	flag.StringVar(&cfg.Sampler, "sampler", "", "cohort sampler: legacy (default, O(K) per round) or floyd (O(Kt), for large populations)")
	flag.IntVar(&cfg.MuxWorkers, "mux-workers", 0, "simnet virtual-client worker pool size (0 = GOMAXPROCS; population size is unconstrained)")
	flag.Float64Var(&cfg.DropoutRate, "dropout", 0, "per-round client dropout probability")
	flag.StringVar(&cfg.Faults, "faults", "", "deterministic fault/adversary plan, e.g. 'drop=0.2,crash=2' or 'byzantine=2:signflip,poison=1:0.8' (see DESIGN.md)")
	flag.StringVar(&cfg.Population, "population", "", "open-world population plan, e.g. 'join=4@3,leave=2@6,churn=0.1' (see DESIGN.md)")
	useSimnet := flag.Bool("simnet", false, "run the federation over the in-memory simnet fabric (RPC path, virtual time)")
	flag.DurationVar(&cfg.RoundDeadline, "deadline", 0, "per-round straggler cutoff (0 = wait for full cohort)")
	flag.IntVar(&cfg.MinQuorum, "quorum", 0, "minimum updates required to commit a round")
	flag.Int64Var(&cfg.Seed, "seed", 42, "root seed")
	flag.IntVar(&cfg.ValExamples, "val", 300, "validation examples")
	evalEvery := flag.Int("eval-every", 1, "evaluate every n rounds")
	ckptOut := flag.String("checkpoint-out", "", "write a resumable checkpoint here after the run")
	ckptIn := flag.String("checkpoint-in", "", "resume from this checkpoint instead of starting fresh")
	cfgPath := flag.String("config", "", "declarative experiment config file; flags given alongside override it (see DESIGN.md, \"Experiment configs\")")
	sweepWorkers := flag.Int("sweep-workers", 0, "parallel runs for a config sweep block (0 = GOMAXPROCS)")
	flag.Parse()
	cfg.EvalEvery = *evalEvery

	if *cfgPath != "" {
		if *ckptIn != "" {
			fmt.Fprintln(os.Stderr, "fedtrain: -config cannot be combined with -checkpoint-in (the checkpoint carries its own config)")
			os.Exit(1)
		}
		exp, err := config.Load(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedtrain:", err)
			os.Exit(1)
		}
		// Flags the user actually passed win over the file and are
		// re-stamped into the effective config before it is digested.
		config.ApplyFlagOverrides(flag.CommandLine, exp, config.FromCore(cfg, *useSimnet))
		if err := exp.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "fedtrain:", err)
			os.Exit(1)
		}
		if runs := exp.Expand(); len(runs) > 1 {
			runSweep(runs, *sweepWorkers, *ckptOut)
			return
		}
		cfg = exp.CoreConfig()
		*useSimnet = exp.Runtime.Simnet
		fmt.Printf("config=%s digest=%s\n", *cfgPath, cfg.ConfigDigest)
	}

	var res *core.Result
	var err error
	switch {
	case *ckptIn != "":
		if *useSimnet {
			fmt.Fprintln(os.Stderr, "fedtrain: -simnet cannot resume a checkpoint")
			os.Exit(1)
		}
		ckpt, lerr := core.LoadCheckpointFile(*ckptIn)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "fedtrain:", lerr)
			os.Exit(1)
		}
		res, err = ckpt.Resume(cfg.Rounds)
	case *useSimnet:
		res, err = core.RunSimnet(cfg)
	default:
		res, err = core.Run(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedtrain:", err)
		os.Exit(1)
	}
	if *ckptOut != "" {
		if cerr := core.CheckpointFrom(res).SaveFile(*ckptOut); cerr != nil {
			fmt.Fprintln(os.Stderr, "fedtrain:", cerr)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *ckptOut)
	}
	fmt.Printf("dataset=%s method=%s K=%d Kt=%d T=%d L=%d\n",
		cfg.Dataset, res.Strategy, res.Cfg.K, res.Cfg.Kt, res.Cfg.Rounds, res.Cfg.LocalIters)
	if cfg.Scenario.Name != "" {
		if p, perr := cfg.Scenario.Partitioner(); perr == nil {
			ds := dataset.NewPartitioned(res.Spec, res.Cfg.Seed, p)
			fmt.Printf("scenario=%s %s\n", cfg.Scenario, ds.Stats(res.Cfg.K))
		}
	}
	fmt.Println("round  accuracy  grad-norm  ms/iter  epsilon")
	for _, r := range res.Rounds {
		acc := "      -"
		if r.Evaluated {
			acc = fmt.Sprintf("%7.4f", r.Accuracy)
		}
		fmt.Printf("%5d  %s  %9.4f  %7.2f  %7.4f\n", r.Round, acc, r.MeanGradNorm, r.MsPerIter, r.Epsilon)
	}
	finalAcc, _ := res.FinalAccuracy()
	bestAcc, _ := res.BestAccuracy()
	meanMs, _ := res.MeanMsPerIter()
	fmt.Printf("final: accuracy=%.4f best=%.4f epsilon=%.4f mean-ms/iter=%.2f\n",
		finalAcc, bestAcc, res.FinalEpsilon(), meanMs)
	if res.Ledger != nil {
		maxEps, _, worst := res.Ledger.MaxEpsilon()
		minEps, least := res.Ledger.MinEpsilon()
		fmt.Printf("ledger: users=%d eps-max=%.4f (user %d) eps-min=%.4f (user %d)\n",
			len(res.Ledger.Users()), maxEps, worst, minEps, least)
	}
}

// runSweep executes a config's expanded multi-seed runs in parallel across
// cores. Each run is an independent seeded experiment (parallelism cannot
// change any result), so output is collected per run and printed in sweep
// order once everything finishes.
func runSweep(runs []*config.Experiment, workers int, ckptOut string) {
	if ckptOut != "" {
		fmt.Fprintln(os.Stderr, "fedtrain: -checkpoint-out is ambiguous over a sweep; checkpoint a single-seed config instead")
		os.Exit(1)
	}
	lines := make([]string, len(runs))
	var mu sync.Mutex
	err := config.RunSweep(runs, workers, func(i int, e *config.Experiment) error {
		res, rerr := runOne(e)
		if rerr != nil {
			return fmt.Errorf("seed %d: %w", e.Seed, rerr)
		}
		mu.Lock()
		acc, _ := res.FinalAccuracy()
		best, _ := res.BestAccuracy()
		lines[i] = fmt.Sprintf("seed=%-6d digest=%s accuracy=%.4f best=%.4f epsilon=%.4f",
			e.Seed, e.Digest(), acc, best, res.FinalEpsilon())
		mu.Unlock()
		return nil
	})
	fmt.Printf("sweep: %d seeds\n", len(runs))
	for _, l := range lines {
		if l != "" {
			fmt.Println(l)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedtrain:", err)
		os.Exit(1)
	}
}

func runOne(e *config.Experiment) (*core.Result, error) {
	cfg := e.CoreConfig()
	if e.Runtime.Simnet {
		return core.RunSimnet(cfg)
	}
	return core.Run(cfg)
}
