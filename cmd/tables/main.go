// Command tables regenerates the paper's tables and figures from the
// reproduction library.
//
// Usage:
//
//	tables -exp table6            # one experiment
//	tables -exp all -scale 0.5    # everything, at half the default effort
//	tables -config configs/attack-matrix.yaml
//	tables -exp bench             # replay the BENCH_*.json perf baselines
//
// Scale trades fidelity for time: 1 is the CPU-friendly default, larger
// values approach the paper's GPU-scale parameters. Table VI always runs at
// the paper's exact parameters (it is a pure computation).
//
// Beyond the paper's tables, "-exp faults" renders the fault-sensitivity
// matrix: {runtime × scenario × method × fault plan} under deterministic
// fault injection (see DESIGN.md, "Simnet").
//
// "-exp bench" is the perf regression gate: it re-runs the six recorded
// BENCH_*.json baselines (partition, sanitize, simnet, wire, scale,
// robust), compares the median ns/op of each benchmark against the
// recorded number, and exits non-zero with a per-benchmark diff when a
// median regresses past -bench-threshold. -bench-update rewrites the
// recorded numbers instead (see DESIGN.md, "Experiment configs").
//
// -config loads a declarative experiment file (internal/config): the
// file's experiment block selects the driver, flags given alongside
// override the file, every report is stamped with the config's canonical
// digest, and a sweep block fans the suite out over seeds in parallel.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"fedcdp/internal/config"
	"fedcdp/internal/dataset"
	"fedcdp/internal/experiments"
)

// writeCSV emits the report rows as CSV (experiment id and scenario
// prefixed, so heterogeneity sweeps stay distinguishable in the
// machine-readable output), for downstream plotting.
func writeCSV(out io.Writer, rep *experiments.Report) {
	w := csv.NewWriter(out)
	defer w.Flush()
	scenario := rep.Scenario
	if scenario == "" {
		scenario = "iid"
	}
	w.Write(append([]string{"experiment", "scenario"}, rep.Header...))
	for _, row := range rep.Rows {
		w.Write(append([]string{rep.Name, scenario}, row...))
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table7, fig1, fig3, fig4, fig5, faults, byzantine, churn), 'all', or 'bench' (perf regression gate)")
	scale := flag.Float64("scale", 1, "effort multiplier (1 = default scaled-down run)")
	seed := flag.Int64("seed", 42, "root random seed")
	format := flag.String("format", "text", "output format: text or csv")
	scenario := flag.String("scenario", "", "data-heterogeneity scenario: "+strings.Join(dataset.ScenarioNames(), ", ")+" (default iid)")
	alpha := flag.Float64("alpha", 0, "dirichlet concentration (0 = default 0.5)")
	shards := flag.Int("shards", 0, "pathological label shards per client (0 = default 2)")
	aggRule := flag.String("agg", "", "aggregation rule: fedsgd (default), fedavg, weighted (pair with -scenario quantity), or robust — median, trimmed[:beta], krum[:f]")
	precision := flag.String("precision", "", "client GEMM precision: fp64 (default, parity oracle) or fp32 (see DESIGN.md)")
	codec := flag.String("codec", "", "wire codec: gob (default, parity oracle) or binary (see DESIGN.md)")
	cfgPath := flag.String("config", "", "declarative experiment config file; flags given alongside override it (see DESIGN.md, \"Experiment configs\")")
	sweepWorkers := flag.Int("sweep-workers", 0, "parallel runs for a config sweep block (0 = GOMAXPROCS)")
	benchThreshold := flag.Float64("bench-threshold", 0, "bench gate: allowed fractional median slowdown (0 = default, see DESIGN.md)")
	benchUpdate := flag.Bool("bench-update", false, "bench gate: rewrite the BENCH_*.json baselines with the new medians")
	benchCount := flag.Int("bench-count", 3, "bench gate: runs per benchmark (median taken)")
	benchTime := flag.String("bench-time", "1x", "bench gate: -benchtime per run")
	benchOnly := flag.String("bench-only", "", "bench gate: only baselines whose file name contains this substring")
	flag.Parse()

	if *exp == "bench" {
		ok, err := experiments.RunBench(experiments.BenchOptions{
			Threshold: *benchThreshold,
			Count:     *benchCount,
			Benchtime: *benchTime,
			Update:    *benchUpdate,
			Only:      *benchOnly,
			Out:       os.Stdout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables: bench:", err)
			os.Exit(1)
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "tables: bench: perf regression past threshold (see diff above; -bench-update re-records)")
			os.Exit(1)
		}
		return
	}

	name := *exp
	var opts experiments.Options
	var runs []*config.Experiment
	if *cfgPath != "" {
		ec, err := config.Load(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		config.ApplyFlagOverrides(flag.CommandLine, ec, flagExperiment(*seed, *exp, *scale, *scenario, *alpha, *shards, *aggRule, *precision, *codec))
		if err := ec.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		runs = ec.Expand()
		if ec.Experiment.Name != "" {
			name = ec.Experiment.Name
		}
	} else {
		opts = experiments.Options{
			Scale: *scale, Seed: *seed,
			Scenario:    dataset.Scenario{Name: *scenario, Alpha: *alpha, Shards: *shards},
			Aggregation: *aggRule,
			Precision:   *precision,
			Codec:       *codec,
		}
	}

	if len(runs) > 1 {
		// A sweep block fans the suite out over seeds, in parallel across
		// cores; reports are buffered and printed in sweep order.
		out := make([]string, len(runs))
		var mu sync.Mutex
		err := config.RunSweep(runs, *sweepWorkers, func(i int, e *config.Experiment) error {
			var b strings.Builder
			if rerr := runExperiments(name, experiments.FromExperiment(e), *format, &b); rerr != nil {
				return fmt.Errorf("seed %d: %w", e.Seed, rerr)
			}
			mu.Lock()
			out[i] = fmt.Sprintf("--- sweep seed=%d digest=%s ---\n%s", e.Seed, e.Digest(), b.String())
			mu.Unlock()
			return nil
		})
		for _, s := range out {
			fmt.Print(s)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		return
	}
	if len(runs) == 1 {
		opts = experiments.FromExperiment(runs[0])
	}
	if err := runExperiments(name, opts, *format, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// runExperiments executes one experiment id (or "all") and renders every
// report to w; per-experiment timing still goes to stderr.
func runExperiments(name string, opts experiments.Options, format string, w io.Writer) error {
	names := experiments.Names()
	if name != "all" {
		names = []string{name}
	}
	for _, n := range names {
		start := time.Now()
		rep, err := experiments.Run(n, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		if format == "csv" {
			writeCSV(w, rep)
		} else {
			rep.Fprint(w)
		}
		fmt.Fprintf(os.Stderr, "(%s completed in %s)\n", n, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func flagExperiment(seed int64, exp string, scale float64, scenario string, alpha float64, shards int, aggRule, precision, codec string) *config.Experiment {
	e := config.Default()
	e.Seed = seed
	e.Experiment.Name = exp
	e.Experiment.Scale = scale
	e.Data.Scenario = scenario
	e.Data.Alpha = alpha
	e.Data.Shards = shards
	e.Aggregation.Rule = aggRule
	e.Model.Precision = precision
	e.Codec.Wire = codec
	return e
}
