// Command tables regenerates the paper's tables and figures from the
// reproduction library.
//
// Usage:
//
//	tables -exp table6            # one experiment
//	tables -exp all -scale 0.5    # everything, at half the default effort
//
// Scale trades fidelity for time: 1 is the CPU-friendly default, larger
// values approach the paper's GPU-scale parameters. Table VI always runs at
// the paper's exact parameters (it is a pure computation).
//
// Beyond the paper's tables, "-exp faults" renders the fault-sensitivity
// matrix: {runtime × scenario × method × fault plan} under deterministic
// fault injection (see DESIGN.md, "Simnet").
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/experiments"
)

// writeCSV emits the report rows as CSV (experiment id and scenario
// prefixed, so heterogeneity sweeps stay distinguishable in the
// machine-readable output), for downstream plotting.
func writeCSV(rep *experiments.Report) {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	scenario := rep.Scenario
	if scenario == "" {
		scenario = "iid"
	}
	w.Write(append([]string{"experiment", "scenario"}, rep.Header...))
	for _, row := range rep.Rows {
		w.Write(append([]string{rep.Name, scenario}, row...))
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table7, fig1, fig3, fig4, fig5, faults, byzantine) or 'all'")
	scale := flag.Float64("scale", 1, "effort multiplier (1 = default scaled-down run)")
	seed := flag.Int64("seed", 42, "root random seed")
	format := flag.String("format", "text", "output format: text or csv")
	scenario := flag.String("scenario", "", "data-heterogeneity scenario: "+strings.Join(dataset.ScenarioNames(), ", ")+" (default iid)")
	alpha := flag.Float64("alpha", 0, "dirichlet concentration (0 = default 0.5)")
	shards := flag.Int("shards", 0, "pathological label shards per client (0 = default 2)")
	aggRule := flag.String("agg", "", "aggregation rule: fedsgd (default), fedavg, weighted (pair with -scenario quantity), or robust — median, trimmed[:beta], krum[:f]")
	precision := flag.String("precision", "", "client GEMM precision: fp64 (default, parity oracle) or fp32 (see DESIGN.md)")
	codec := flag.String("codec", "", "wire codec: gob (default, parity oracle) or binary (see DESIGN.md)")
	flag.Parse()

	opts := experiments.Options{
		Scale: *scale, Seed: *seed,
		Scenario:    dataset.Scenario{Name: *scenario, Alpha: *alpha, Shards: *shards},
		Aggregation: *aggRule,
		Precision:   *precision,
		Codec:       *codec,
	}
	names := experiments.Names()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		rep, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *format == "csv" {
			writeCSV(rep)
		} else {
			rep.Fprint(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "(%s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
	}
}
