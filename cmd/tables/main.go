// Command tables regenerates the paper's tables and figures from the
// reproduction library.
//
// Usage:
//
//	tables -exp table6            # one experiment
//	tables -exp all -scale 0.5    # everything, at half the default effort
//
// Scale trades fidelity for time: 1 is the CPU-friendly default, larger
// values approach the paper's GPU-scale parameters. Table VI always runs at
// the paper's exact parameters (it is a pure computation).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"time"

	"fedcdp/internal/experiments"
)

// writeCSV emits the report rows as CSV (experiment id prefixed), for
// downstream plotting.
func writeCSV(rep *experiments.Report) {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	w.Write(append([]string{"experiment"}, rep.Header...))
	for _, row := range rep.Rows {
		w.Write(append([]string{rep.Name}, row...))
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table7, fig1, fig3, fig4, fig5) or 'all'")
	scale := flag.Float64("scale", 1, "effort multiplier (1 = default scaled-down run)")
	seed := flag.Int64("seed", 42, "root random seed")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	names := experiments.Names()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		rep, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *format == "csv" {
			writeCSV(rep)
		} else {
			rep.Fprint(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "(%s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
	}
}
