// Command fedclient joins a fedserve task as one client: each round it
// downloads the global model, trains locally with the chosen privacy method,
// and uploads its (possibly sanitized) update.
//
//	fedclient -addr 127.0.0.1:7070 -dataset cancer -id 0 -method fedcdp -rounds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	dsName := flag.String("dataset", "cancer", "benchmark dataset (must match server)")
	id := flag.Int("id", 0, "client id (selects the local shard)")
	method := flag.String("method", core.MethodFedCDP, "privacy method: "+strings.Join(core.Methods(), ", "))
	rounds := flag.Int("rounds", 3, "rounds to participate in")
	clip := flag.Float64("clip", 4, "clipping bound C")
	sigma := flag.Float64("sigma", 0.06, "noise scale")
	secure := flag.Bool("secure", false, "encrypted channel (must match server)")
	seed := flag.Int64("seed", 42, "root seed (must match server for data)")
	flag.Parse()

	spec, err := dataset.Get(*dsName)
	if err != nil {
		fatal(err)
	}
	ds := dataset.New(spec, *seed)
	strat, err := core.Config{Method: *method, Clip: *clip, Sigma: *sigma}.Strategy()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("fedclient %d: joining %s as %s\n", *id, *addr, strat.Name())
	for round := 0; round < *rounds; round++ {
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			if *secure {
				err = fl.RunSecureRemoteClient(*addr, *id, strat, ds.Client(*id), spec.ModelSpec(), *seed)
			} else {
				err = fl.RunRemoteClient(*addr, *id, strat, ds.Client(*id), spec.ModelSpec(), *seed)
			}
			if err == nil {
				break
			}
			time.Sleep(100 * time.Millisecond) // server between rounds
		}
		if err != nil {
			fatal(fmt.Errorf("round %d: %w", round, err))
		}
		fmt.Printf("fedclient %d: round %d update sent\n", *id, round)
	}
	fmt.Printf("fedclient %d: done\n", *id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedclient:", err)
	os.Exit(1)
}
