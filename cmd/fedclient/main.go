// Command fedclient joins a fedserve task as one client: each round it
// downloads the global model, trains locally with the chosen privacy
// method, and uploads its (possibly sanitized, possibly sparse-encoded)
// update. Transient failures — the server restarting, a missed round, a
// dropped connection — are retried with exponential backoff instead of
// killing the client; it exits cleanly when the server answers that no
// further rounds remain.
//
//	fedclient -addr 127.0.0.1:7070 -dataset cancer -id 0 -method fedcdp -rounds 5
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	dsName := flag.String("dataset", "cancer", "benchmark dataset (must match server)")
	id := flag.Int("id", 0, "client id (selects the local shard)")
	method := flag.String("method", core.MethodFedCDP, "privacy method: "+strings.Join(core.Methods(), ", "))
	rounds := flag.Int("rounds", 3, "rounds to participate in")
	clip := flag.Float64("clip", 4, "clipping bound C")
	sigma := flag.Float64("sigma", 0.06, "noise scale")
	secure := flag.Bool("secure", false, "encrypted channel (must match server)")
	seed := flag.Int64("seed", 42, "root seed (must match server for data)")
	minBackoff := flag.Duration("backoff", 100*time.Millisecond, "initial reconnect backoff")
	maxBackoff := flag.Duration("max-backoff", 10*time.Second, "reconnect backoff cap")
	giveUp := flag.Duration("give-up", 2*time.Minute, "exit after this long without a successful round (0 = retry forever)")
	flag.Parse()

	spec, err := dataset.Get(*dsName)
	if err != nil {
		fatal(err)
	}
	ds := dataset.New(spec, *seed)
	strat, err := core.Config{Method: *method, Clip: *clip, Sigma: *sigma}.Strategy()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("fedclient %d: joining %s as %s\n", *id, *addr, strat.Name())
	backoff := *minBackoff
	lastSuccess := time.Now()
	for done := 0; done < *rounds; {
		if *secure {
			err = fl.RunSecureRemoteClient(*addr, *id, strat, ds.Client(*id), spec.ModelSpec(), *seed)
		} else {
			err = fl.RunRemoteClient(*addr, *id, strat, ds.Client(*id), spec.ModelSpec(), *seed)
		}
		switch {
		case err == nil:
			done++
			backoff = *minBackoff
			lastSuccess = time.Now()
			fmt.Printf("fedclient %d: update %d/%d sent\n", *id, done, *rounds)
		case errors.Is(err, fl.ErrRoundClosed):
			// The server answered explicitly that no round remains — a
			// clean end of task, not a failure.
			fmt.Printf("fedclient %d: server finished after %d updates\n", *id, done)
			return
		default:
			// Dial errors, EOFs and resets from a restarting server,
			// missed rounds: survive them all and retry with exponential
			// backoff. A server that shuts down can only answer sessions
			// it already accepted, so -give-up bounds how long a client
			// keeps probing a peer that went away for good.
			if *giveUp > 0 && time.Since(lastSuccess) > *giveUp {
				fatal(fmt.Errorf("giving up after %v without a successful round: %w", *giveUp, err))
			}
			fmt.Printf("fedclient %d: %v — retrying in %v\n", *id, err, backoff)
			time.Sleep(backoff)
			if backoff *= 2; backoff > *maxBackoff {
				backoff = *maxBackoff
			}
		}
	}
	fmt.Printf("fedclient %d: done\n", *id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedclient:", err)
	os.Exit(1)
}
