// Command fedclient joins a fedserve task as one client: each round it
// downloads the global model, trains locally with the chosen privacy
// method, and uploads its (possibly sanitized, possibly sparse-encoded)
// update. Transient failures — the server restarting, a missed round, a
// dropped connection — are retried with exponential backoff instead of
// killing the client; it exits cleanly when the server answers that no
// further rounds remain.
//
//	fedclient -addr 127.0.0.1:7070 -dataset cancer -id 0 -method fedcdp -rounds 5
//	fedclient -config configs/fault-acceptance.yaml -addr 127.0.0.1:7070 -id 3
//
// -config loads a declarative experiment file (see internal/config): the
// client takes its dataset, method and seed from the file (flags given
// alongside override it) and verifies the server's published config digest
// against its own — a config-driven fleet cannot silently train against a
// server running a different experiment.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedcdp/internal/config"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	dsName := flag.String("dataset", "cancer", "benchmark dataset (must match server)")
	id := flag.Int("id", 0, "client id (selects the local shard)")
	method := flag.String("method", core.MethodFedCDP, "privacy method: "+strings.Join(core.Methods(), ", "))
	rounds := flag.Int("rounds", 3, "rounds to participate in")
	clip := flag.Float64("clip", 4, "clipping bound C")
	sigma := flag.Float64("sigma", 0.06, "noise scale")
	secure := flag.Bool("secure", false, "encrypted channel (must match server)")
	codec := flag.String("codec", "", "preferred wire codec: gob (default) or binary (falls back to gob against a gob server)")
	quant := flag.Int("quant", 0, "update quantization width on the binary codec: 0 (exact), 8 or 16 bits")
	seed := flag.Int64("seed", 42, "root seed (must match server for data)")
	minBackoff := flag.Duration("backoff", 100*time.Millisecond, "initial reconnect backoff")
	maxBackoff := flag.Duration("max-backoff", 10*time.Second, "reconnect backoff cap")
	giveUp := flag.Duration("give-up", 2*time.Minute, "exit after this long without a successful round (0 = retry forever)")
	cfgPath := flag.String("config", "", "declarative experiment config file; flags given alongside override it (see DESIGN.md, \"Experiment configs\")")
	flag.Parse()

	digest := ""
	if *cfgPath != "" {
		exp, err := config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
		flagSrc := config.FromCore(core.Config{
			Dataset: *dsName, Method: *method, Clip: *clip, Sigma: *sigma,
			Codec: *codec, Seed: *seed,
		}, false)
		flagSrc.Codec.Quant = *quant
		config.ApplyFlagOverrides(flag.CommandLine, exp, flagSrc)
		if err := exp.Validate(); err != nil {
			fatal(err)
		}
		*dsName, *method = exp.Data.Dataset, exp.Method.Name
		*clip, *sigma = exp.Method.Clip, exp.Method.Sigma
		*codec, *quant, *seed = exp.Codec.Wire, exp.Codec.Quant, exp.Seed
		digest = exp.Digest()
	}

	spec, err := dataset.Get(*dsName)
	if err != nil {
		fatal(err)
	}
	ds := dataset.New(spec, *seed)
	strat, err := core.Config{Method: *method, Clip: *clip, Sigma: *sigma}.Strategy()
	if err != nil {
		fatal(err)
	}
	if !fl.ValidCodec(*codec) {
		fatal(fmt.Errorf("unknown wire codec %q", *codec))
	}
	if !fl.ValidQuant(*quant) {
		fatal(fmt.Errorf("quantization width %d not in {0, 8, 16}", *quant))
	}
	// One options value for the whole run: the quantization error-feedback
	// state must survive reconnects and server restarts so rounding error
	// banked in round r is repaid in round r+1. ExpectDigest makes the
	// client refuse a server publishing a different experiment digest.
	opt := fl.ClientOptions{Secure: *secure, Codec: *codec, Quant: *quant, QuantState: &fl.QuantState{}, ExpectDigest: digest}

	fmt.Printf("fedclient %d: joining %s as %s\n", *id, *addr, strat.Name())
	backoff := *minBackoff
	lastSuccess := time.Now()
	for done := 0; done < *rounds; {
		round, rerr := fl.RunRemoteClientRound(*addr, *id, strat, ds.Client(*id), spec.ModelSpec(), *seed, opt)
		err = rerr
		switch {
		case err == nil && round < opt.MinRound:
			// The server re-served a round this client already completed
			// (it cannot advance until the rest of the cohort resolves);
			// the re-submission was acknowledged as a duplicate, so it
			// counts for nothing. Poll at the base backoff — each poll
			// retrains a full local round, so hammering is pure waste.
			backoff = *minBackoff
			lastSuccess = time.Now()
			time.Sleep(*minBackoff)
		case err == nil:
			done++
			opt.MinRound = round + 1
			backoff = *minBackoff
			lastSuccess = time.Now()
			fmt.Printf("fedclient %d: update %d/%d sent (round %d)\n", *id, done, *rounds, round)
		case errors.Is(err, fl.ErrRoundClosed):
			// The server answered explicitly that no round remains — a
			// clean end of task, not a failure.
			fmt.Printf("fedclient %d: server finished after %d updates\n", *id, done)
			return
		default:
			// Dial errors, EOFs and resets from a restarting server,
			// missed rounds: survive them all and retry with exponential
			// backoff. A server that shuts down can only answer sessions
			// it already accepted, so -give-up bounds how long a client
			// keeps probing a peer that went away for good.
			if *giveUp > 0 && time.Since(lastSuccess) > *giveUp {
				fatal(fmt.Errorf("giving up after %v without a successful round: %w", *giveUp, err))
			}
			fmt.Printf("fedclient %d: %v — retrying in %v\n", *id, err, backoff)
			time.Sleep(backoff)
			if backoff *= 2; backoff > *maxBackoff {
				backoff = *maxBackoff
			}
		}
	}
	fmt.Printf("fedclient %d: done\n", *id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedclient:", err)
	os.Exit(1)
}
