// Quickstart: train a gradient-leakage-resilient federated model with
// Fed-CDP on the synthetic MNIST benchmark and watch accuracy and privacy
// spending evolve per round.
//
// The run is declared as a config document — the same format the binaries
// load with -config (see DESIGN.md, "Experiment configs"): omitted keys
// mean the flag defaults, and the document's canonical digest identifies
// the experiment in every artifact it produces.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fedcdp/internal/config"
	"fedcdp/internal/core"
)

// Fed-CDP with the paper's defaults: per-example clipping at C=4 and
// Gaussian noise, privacy tracked by the moments accountant. σ is scaled
// for the reduced simulation budget; accounting reports the guarantee of
// the paper-scale deployment (σ=6) this run simulates — see DESIGN.md.
const experiment = `
version: 1
seed: 1

data:
  dataset: mnist

method:
  name: fedcdp
  clip: 4
  sigma: 0.06
  accountant-sigma: 6

training:
  k: 16           # client population
  kt: 8           # participants per round
  rounds: 12
  iters: 20
  val-examples: 200
`

func main() {
	exp, err := config.Parse([]byte(experiment))
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.Validate(); err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(exp.CoreConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fed-CDP on synthetic MNIST (16 clients, 8 per round) — experiment %s\n", exp.Digest())
	fmt.Println("round  accuracy  epsilon")
	for _, r := range res.Rounds {
		fmt.Printf("%5d  %8.4f  %7.4f\n", r.Round, r.Accuracy, r.Epsilon)
	}
	acc, _ := res.FinalAccuracy()
	fmt.Printf("\nfinal accuracy %.4f with (ε=%.4f, δ=1e-5) differential privacy\n",
		acc, res.FinalEpsilon())
	fmt.Println("every per-example gradient was clipped and noised before leaving an iteration —")
	fmt.Println("type-0, type-1 and type-2 gradient leakage attacks all see sanitized values.")
}
