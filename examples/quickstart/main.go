// Quickstart: train a gradient-leakage-resilient federated model with
// Fed-CDP on the synthetic MNIST benchmark and watch accuracy and privacy
// spending evolve per round.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fedcdp/internal/core"
)

func main() {
	// Fed-CDP with the paper's defaults: per-example clipping at C=4 and
	// Gaussian noise, privacy tracked by the moments accountant.
	// σ is scaled for the reduced simulation budget (DESIGN.md).
	res, err := core.Run(core.Config{
		Dataset:    "mnist",
		Method:     core.MethodFedCDP,
		K:          16, // client population
		Kt:         8,  // participants per round
		Rounds:     12,
		LocalIters: 20,
		Clip:       4,
		// The CPU-scale run uses a compensated noise scale; accounting
		// reports the guarantee of the paper-scale deployment (σ=6) this
		// run simulates — see DESIGN.md.
		Sigma:           0.06,
		AccountantSigma: 6,
		Seed:            1,
		ValExamples:     200,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fed-CDP on synthetic MNIST (16 clients, 8 per round)")
	fmt.Println("round  accuracy  epsilon")
	for _, r := range res.Rounds {
		fmt.Printf("%5d  %8.4f  %7.4f\n", r.Round, r.Accuracy, r.Epsilon)
	}
	fmt.Printf("\nfinal accuracy %.4f with (ε=%.4f, δ=1e-5) differential privacy\n",
		res.FinalAccuracy(), res.FinalEpsilon())
	fmt.Println("every per-example gradient was clipped and noised before leaving an iteration —")
	fmt.Println("type-0, type-1 and type-2 gradient leakage attacks all see sanitized values.")
}
