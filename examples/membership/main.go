// Membership: the second gradient-leakage threat class from the paper's
// related work — membership inference against a trained model. A client
// that overfits its small local shard leaks membership through the loss
// gap; Fed-CDP-style per-example sanitization during training suppresses
// it. This example trains both ways and mounts the loss-threshold attack.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"log"

	"fedcdp/internal/attack"
	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

func main() {
	spec, err := dataset.Get("adult")
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.New(spec, 33)
	cd := ds.Client(0)

	// A small member shard invites memorization; non-members come from the
	// same distribution but were never trained on.
	const nMembers = 60
	var members, nonMembers []attack.Sample
	for i := 0; i < nMembers; i++ {
		x, y := cd.Get(i)
		members = append(members, attack.Sample{X: x, Y: y})
	}
	valX, valY := ds.Validation(nMembers)
	for i := range valX {
		nonMembers = append(nonMembers, attack.Sample{X: valX[i], Y: valY[i]})
	}

	train := func(sanitize bool) *nn.Model {
		m := nn.Build(spec.ModelSpec(), tensor.NewRNG(33))
		noise := tensor.NewRNG(99)
		for epoch := 0; epoch < 120; epoch++ {
			for _, s := range members {
				_, g := m.ExampleGradient(s.X, s.Y)
				if sanitize {
					dp.Sanitize(g, 2, 0.02, noise) // Fed-CDP per-example step
				}
				m.SGDStep(0.1, g)
			}
		}
		return m
	}

	for _, mode := range []struct {
		name     string
		sanitize bool
	}{
		{"non-private", false},
		{"fed-cdp", true},
	} {
		m := train(mode.sanitize)
		mi := attack.MembershipInference(func(x *tensor.Tensor, y int) float64 {
			return m.Loss(x, y)
		}, members, nonMembers)
		acc := 0
		for i := range valX {
			if m.Predict(valX[i]) == valY[i] {
				acc++
			}
		}
		fmt.Printf("%-12s val-accuracy=%.3f  membership advantage=%.3f  AUC=%.3f\n",
			mode.name, float64(acc)/float64(len(valX)), mi.Advantage, mi.AUC)
	}
	fmt.Println("\nthe overfit non-private model separates members by loss; per-example")
	fmt.Println("clipping+noise (Fed-CDP's local step) collapses the gap the attack needs.")
}
