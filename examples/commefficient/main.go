// Commefficient: communication-efficient federated learning (Figure 5 of
// the paper). Clients prune the smallest gradient entries before sharing;
// the example sweeps prune ratios and shows that compression barely hurts
// accuracy but does NOT stop type-2 leakage unless Fed-CDP is used.
//
//	go run ./examples/commefficient
package main

import (
	"fmt"
	"log"

	"fedcdp/internal/attack"
	"fedcdp/internal/config"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

func main() {
	spec, err := dataset.Get("mnist")
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.New(spec, 11)
	x, y := ds.Client(0).Get(0)
	victim := attack.NewMLP([]int{spec.Features, 32, spec.Classes}, attack.ActSigmoid, tensor.NewRNG(11))

	fmt.Println("prune%  acc(non-private)  acc(fed-cdp)  t2-dist(non-private)  t2-dist(fed-cdp)")
	for _, ratio := range []float64{0, 0.3, 0.7} {
		accNP := trainWith(core.MethodNonPrivate, ratio)
		accCDP := trainWith(core.MethodFedCDP, ratio)

		distNP := attackCompressed(victim, x, y, ratio, false)
		distCDP := attackCompressed(victim, x, y, ratio, true)
		fmt.Printf("%5.0f%%  %16.3f  %12.3f  %20.4f  %16.4f\n",
			ratio*100, accNP, accCDP, distNP, distCDP)
	}
	fmt.Println("\ncompressed non-private gradients still reconstruct the private image;")
	fmt.Println("Fed-CDP sanitization defeats the attack at every compression level.")
}

// trainWith runs a small federated job with gradient pruning at the ratio,
// declared through the config layer: one document per (method, ratio) cell,
// so each cell has its own experiment digest.
func trainWith(method string, ratio float64) float64 {
	doc := fmt.Sprintf(`
seed: 11
method:
  name: %s
  sigma: 0.06
  compress: %g
training:
  k: 12
  kt: 6
  rounds: 10
  iters: 20
  val-examples: 150
  eval-every: 100
`, method, ratio)
	exp, err := config.Parse([]byte(doc))
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.Validate(); err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(exp.CoreConfig())
	if err != nil {
		log.Fatal(err)
	}
	acc, _ := res.FinalAccuracy()
	return acc
}

// attackCompressed runs the mask-aware type-2 attack on a compressed
// per-example gradient, optionally Fed-CDP sanitized first.
func attackCompressed(m *attack.MLP, x *tensor.Tensor, y int, ratio float64, sanitized bool) float64 {
	_, gw, gb := m.Gradients(x, y)
	if sanitized {
		dp.Sanitize(dp.JoinGrads(gw, gb), 4, 6, tensor.NewRNG(99))
	}
	dp.Compress(dp.JoinGrads(gw, gb), ratio)
	res := attack.Reconstruct(m, gw, gb, []int{y}, []*tensor.Tensor{x},
		attack.Config{Seed: 3, MaskNonzero: ratio > 0, MaxIters: 200})
	return res.Distance
}
