// Accounting: explore the privacy budget of Fed-CDP vs Fed-SDP with the
// moments accountant — how ε grows with rounds, local iterations, noise
// scale and sampling rate (the machinery behind Table VI).
//
//	go run ./examples/accounting
package main

import (
	"fmt"

	"fedcdp/internal/accountant"
)

func main() {
	base := accountant.Params{
		TotalData:  50000,
		TotalK:     1000,
		PerRoundKt: 100,
		BatchSize:  5,
		LocalIters: 100,
		Rounds:     100,
		Sigma:      6,
		Delta:      1e-5,
	}

	fmt.Println("== ε growth over federated rounds (paper MNIST setting) ==")
	fmt.Println("rounds  fed-cdp(L=100)  fed-cdp(L=1)  fed-sdp")
	for _, t := range []int{1, 10, 25, 50, 100} {
		p := base
		p.Rounds = t
		p1 := p
		p1.LocalIters = 1
		fmt.Printf("%6d  %14.4f  %12.4f  %7.4f\n",
			t, accountant.FedCDPEpsilon(p), accountant.FedCDPEpsilon(p1), accountant.FedSDPEpsilon(p))
	}

	fmt.Println("\n== ε by noise scale σ (T=100, L=100) ==")
	fmt.Println("sigma   fed-cdp   fed-sdp")
	for _, s := range []float64{2, 4, 6, 8, 12} {
		p := base
		p.Sigma = s
		fmt.Printf("%5.1f  %8.4f  %8.4f\n", s, accountant.FedCDPEpsilon(p), accountant.FedSDPEpsilon(p))
	}

	fmt.Println("\n== incremental accounting during a run ==")
	acc := accountant.New(1e-5)
	q := base.FedCDPSamplingRate()
	for round := 1; round <= 5; round++ {
		acc.Accumulate(q, base.Sigma, base.LocalIters)
		eps, order := acc.Epsilon()
		fmt.Printf("after round %d: ε=%.4f (optimal RDP order %.2f, %d steps composed)\n",
			round, eps, order, acc.Steps())
	}

	fmt.Println("\n== moments accountant premise (Definition 5: q < 1/(16σ)) ==")
	for _, s := range []float64{1, 6, 12} {
		fmt.Printf("σ=%-4g q=0.01: valid=%v\n", s, accountant.MomentsValid(0.01, s))
	}
}
