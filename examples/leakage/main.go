// Leakage: demonstrate the type-2 gradient leakage attack (Figure 1 of the
// paper) against non-private training, then show Fed-CDP defeating it.
// Writes the private image, its reconstruction from raw gradients, and the
// failed reconstruction from sanitized gradients as PGM files.
//
//	go run ./examples/leakage
package main

import (
	"fmt"
	"log"
	"os"

	"fedcdp/internal/attack"
	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

func main() {
	spec, err := dataset.Get("mnist")
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.New(spec, 7)

	// The victim: one client's training example and the global model.
	x, y := ds.Client(0).Get(0)
	model := attack.NewMLP([]int{spec.Features, 32, spec.Classes}, attack.ActSigmoid, tensor.NewRNG(7))

	// --- Attack 1: raw per-example gradient (non-private / Fed-SDP). ---
	_, gw, gb := model.Gradients(x, y)
	label := attack.InferLabel(gb[model.Layers()-1]) // iDLG label inference
	raw := attack.Reconstruct(model, gw, gb, []int{label}, []*tensor.Tensor{x}, attack.Config{Seed: 1})
	fmt.Printf("raw gradients:       revealed=%v distance=%.4f iterations=%d (label inferred: %d, true: %d)\n",
		raw.Revealed, raw.Distance, raw.Iterations, label, y)

	// --- Attack 2: Fed-CDP sanitized gradient (C=4, σ=6). ---
	_, gw2, gb2 := model.Gradients(x, y)
	dp.Sanitize(append(gw2, gb2...), 4, 6, tensor.NewRNG(99))
	defended := attack.Reconstruct(model, gw2, gb2, []int{label}, []*tensor.Tensor{x}, attack.Config{Seed: 1})
	fmt.Printf("fed-cdp gradients:   revealed=%v distance=%.4f iterations=%d\n",
		defended.Revealed, defended.Distance, defended.Iterations)

	// Render the evidence.
	if err := os.MkdirAll("leakage_out", 0o755); err != nil {
		log.Fatal(err)
	}
	writePGM("leakage_out/private.pgm", x.Data(), spec.Width, spec.Height)
	writePGM("leakage_out/reconstructed_raw.pgm", raw.Reconstruction[0].Data(), spec.Width, spec.Height)
	writePGM("leakage_out/reconstructed_fedcdp.pgm", defended.Reconstruction[0].Data(), spec.Width, spec.Height)
	fmt.Println("wrote leakage_out/{private,reconstructed_raw,reconstructed_fedcdp}.pgm")
	fmt.Println("the raw reconstruction matches the private image; the Fed-CDP one is noise.")
}

func writePGM(path string, d []float64, w, h int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "P2\n%d %d\n255\n", w, h)
	for yy := 0; yy < h; yy++ {
		for xx := 0; xx < w; xx++ {
			v := int(d[yy*w+xx] * 255)
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			fmt.Fprintf(f, "%d ", v)
		}
		fmt.Fprintln(f)
	}
}
