// Medical: cross-silo federated learning on the synthetic breast-cancer
// benchmark — the paper's smallest dataset, where every hospital (client)
// holds a full copy of the data and trains for only 3 rounds. Compares all
// methods' accuracy and privacy, and runs the round-update leakage attack a
// curious aggregation server could mount.
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"fedcdp/internal/config"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// The cross-silo scenario as one config document; the method sweep below
// overrides method.name per run the way `fedtrain -config ... -method m`
// does, each override re-stamping the experiment's identity.
const scenario = `
version: 1
seed: 5

data:
  dataset: cancer

method:
  sigma: 0.06
  accountant-sigma: 6   # see DESIGN.md on noise scaling

training:
  k: 8
  kt: 8
  rounds: 3
  iters: 50
  val-examples: 143
  eval-every: 100
`

func main() {
	fmt.Println("cross-silo FL: 8 hospitals, breast-cancer data, 3 rounds (paper Table I)")
	fmt.Println("method          accuracy  epsilon")
	for _, method := range []string{
		core.MethodNonPrivate, core.MethodFedSDP, core.MethodFedCDP, core.MethodFedCDPDecay,
	} {
		exp, err := config.Parse([]byte(scenario))
		if err != nil {
			log.Fatal(err)
		}
		override := config.Default()
		override.Method.Name = method
		config.Override(exp, "method", override)
		if err := exp.Validate(); err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(exp.CoreConfig())
		if err != nil {
			log.Fatal(err)
		}
		eps := "      -"
		if res.FinalEpsilon() > 0 {
			eps = fmt.Sprintf("%7.4f", res.FinalEpsilon())
		}
		acc, _ := res.FinalAccuracy()
		fmt.Printf("%-14s  %8.4f  %s\n", res.Strategy, acc, eps)
	}

	// What does the server actually see from one hospital?
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 5)
	env := &fl.ClientEnv{
		ClientID: 0, Round: 0,
		Model: buildModel(spec), Data: ds.Client(0),
		RNG: tensor.Split(5, 4, 0, 0),
		Cfg: fl.RoundConfig{BatchSize: 4, LocalIters: 10, LR: 0.1, TotalRounds: 3},
	}
	raw, err := core.LeakRoundUpdate(env, core.Config{Method: core.MethodNonPrivate}, true, tensor.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	env2 := &fl.ClientEnv{
		ClientID: 0, Round: 0,
		Model: buildModel(spec), Data: ds.Client(0),
		RNG: tensor.Split(5, 4, 0, 0),
		Cfg: fl.RoundConfig{BatchSize: 4, LocalIters: 10, LR: 0.1, TotalRounds: 3},
	}
	safe, err := core.LeakRoundUpdate(env2, core.Config{Method: core.MethodFedCDP, Clip: 4, Sigma: 6}, true, tensor.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver-side view of one hospital's update (L2 norm):\n")
	fmt.Printf("  non-private: %.4f (structured — reconstructable)\n", tensor.GroupL2Norm(raw))
	fmt.Printf("  fed-cdp:     %.4f (noise-dominated)\n", tensor.GroupL2Norm(safe))
}

func buildModel(spec dataset.Spec) *nn.Model {
	return nn.Build(spec.ModelSpec(), tensor.NewRNG(5))
}
