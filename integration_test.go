package fedcdp

// End-to-end integration: the complete story of the paper in one test file.
// A federated task trains under each privacy regime; the three adversaries
// of the threat model mount their reconstruction attacks; the accountant
// prices the privacy. These tests cross every module boundary the way a
// downstream user would.

import (
	"flag"
	"testing"

	"fedcdp/internal/attack"
	"fedcdp/internal/config"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

// TestEndToEndPrivacyStory trains non-private and Fed-CDP models on the
// same task and verifies the paper's three headline claims: comparable
// utility, bounded privacy spending, and type-2 attack resilience.
func TestEndToEndPrivacyStory(t *testing.T) {
	base := core.Config{
		Dataset: "cancer",
		K:       8, Kt: 4, Rounds: 4, LocalIters: 20,
		Sigma: 0.06, AccountantSigma: 6,
		Seed: 77, ValExamples: 100, EvalEvery: 100,
	}

	nonPrivate := base
	nonPrivate.Method = core.MethodNonPrivate
	np, err := core.Run(nonPrivate)
	if err != nil {
		t.Fatal(err)
	}

	private := base
	private.Method = core.MethodFedCDP
	cdp, err := core.Run(private)
	if err != nil {
		t.Fatal(err)
	}

	// Claim 1: competitive accuracy.
	npAcc, _ := np.FinalAccuracy()
	cdpAcc, _ := cdp.FinalAccuracy()
	if npAcc < 0.9 {
		t.Fatalf("non-private reference accuracy %v too low", npAcc)
	}
	if cdpAcc < npAcc-0.15 {
		t.Fatalf("Fed-CDP accuracy %v not competitive with %v", cdpAcc, npAcc)
	}
	// Claim 2: a finite, increasing privacy budget.
	if eps := cdp.FinalEpsilon(); eps <= 0 || eps > 1 {
		t.Fatalf("Fed-CDP ε = %v, want small positive (paper-scale accounting)", eps)
	}
	if np.FinalEpsilon() != 0 {
		t.Fatal("non-private training must not report a guarantee")
	}
}

// TestEndToEndConfigDrivenRun is the declarative path end to end: a config
// document determines a run, flags override it the way the binaries do, and
// the digest stamped through core.Config identifies exactly the experiment
// that produced the result.
func TestEndToEndConfigDrivenRun(t *testing.T) {
	doc := []byte(`version: 1
seed: 77

data:
  dataset: cancer

method:
  name: fedcdp
  sigma: 0.06
  accountant-sigma: 6

training:
  k: 8
  kt: 4
  rounds: 4
  iters: 20
  val-examples: 100
  eval-every: 100
`)
	exp, err := config.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := exp.CoreConfig()
	if cfg.ConfigDigest != exp.Digest() {
		t.Fatalf("resolved config digest %q, want %q", cfg.ConfigDigest, exp.Digest())
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cfg.ConfigDigest != exp.Digest() {
		t.Fatalf("result carries digest %q, want %q", res.Cfg.ConfigDigest, exp.Digest())
	}
	if acc, ok := res.FinalAccuracy(); !ok || acc < 0.75 {
		t.Fatalf("config-driven Fed-CDP run accuracy %v (ok=%v)", acc, ok)
	}

	// The override path the binaries use: -method on the command line wins
	// over the file, and the re-stamped experiment digests differently.
	fs := flag.NewFlagSet("fedtrain", flag.ContinueOnError)
	method := fs.String("method", core.MethodFedCDP, "")
	if err := fs.Parse([]string{"-method", core.MethodNonPrivate}); err != nil {
		t.Fatal(err)
	}
	overridden, err := config.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	src := config.Default()
	src.Method.Name = *method
	config.ApplyFlagOverrides(fs, overridden, src)
	if err := overridden.Validate(); err != nil {
		t.Fatal(err)
	}
	if overridden.Method.Name != core.MethodNonPrivate {
		t.Fatalf("override landed %q", overridden.Method.Name)
	}
	if overridden.Digest() == exp.Digest() {
		t.Fatal("an overridden experiment must change identity")
	}
	np, err := core.Run(overridden.CoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if np.FinalEpsilon() != 0 {
		t.Fatal("non-private override must not report a guarantee")
	}
	if acc, ok := np.FinalAccuracy(); !ok || acc < 0.9 {
		t.Fatalf("non-private override accuracy %v (ok=%v)", acc, ok)
	}
}

// TestEndToEndAttackMatrix replays Table VII's key row pair: type-2 leakage
// defeats Fed-SDP but not Fed-CDP, on the same victim.
func TestEndToEndAttackMatrix(t *testing.T) {
	spec, err := dataset.Get("mnist")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 7)
	x, y := ds.Client(0).Get(0)
	victim := attack.NewMLP([]int{spec.Features, 32, spec.Classes}, attack.ActSigmoid, tensor.NewRNG(7))

	// Fed-SDP: the per-example gradient leaks raw during local training.
	_, gw, gb := victim.Gradients(x, y)
	label := attack.InferLabel(gb[victim.Layers()-1])
	if label != y {
		t.Fatalf("iDLG inferred %d, want %d", label, y)
	}
	sdpView := attack.Reconstruct(victim, gw, gb, []int{label}, []*tensor.Tensor{x},
		attack.Config{Seed: 1, MaxIters: 200})
	if !sdpView.Revealed {
		t.Fatalf("type-2 attack must succeed against Fed-SDP (dist %v)", sdpView.Distance)
	}

	// Fed-CDP: the same adversary sees only sanitized gradients.
	_, gw2, gb2 := victim.Gradients(x, y)
	dp.Sanitize(append(gw2, gb2...), 4, 6, tensor.NewRNG(99))
	cdpView := attack.Reconstruct(victim, gw2, gb2, []int{label}, []*tensor.Tensor{x},
		attack.Config{Seed: 1, MaxIters: 200})
	if cdpView.Revealed {
		t.Fatalf("type-2 attack must fail against Fed-CDP (dist %v)", cdpView.Distance)
	}
	if cdpView.Distance < 4*sdpView.Distance {
		t.Fatalf("defense margin too small: %v vs %v", cdpView.Distance, sdpView.Distance)
	}
}

// TestEndToEndCheckpointedDeployment exercises the operational path: train,
// checkpoint, resume, and verify the resumed model serves predictions.
func TestEndToEndCheckpointedDeployment(t *testing.T) {
	cfg := core.Config{
		Dataset: "cancer", Method: core.MethodFedCDPDecay,
		K: 6, Kt: 3, Rounds: 2, PlannedRounds: 4, LocalIters: 10,
		Sigma: 0.06, Seed: 5, ValExamples: 60, EvalEvery: 1,
	}
	first, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := core.CheckpointFrom(first).Resume(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resumed.Rounds); got != 2 {
		t.Fatalf("resumed run recorded %d rounds, want 2", got)
	}
	if acc, ok := resumed.FinalAccuracy(); !ok || acc < 0.85 {
		t.Fatalf("deployed model accuracy %v (ok=%v) after resume", acc, ok)
	}
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 5)
	xs, ys := ds.Validation(10)
	for i, x := range xs {
		if p := resumed.Final.Predict(x); p < 0 || p >= spec.Classes {
			t.Fatalf("prediction %d out of range for example %d (label %d)", p, i, ys[i])
		}
	}
}
