// Package fedcdp is a from-scratch Go reproduction of "Gradient-Leakage
// Resilient Federated Learning" (Wei et al., ICDCS 2021): the Fed-CDP
// per-example client differential privacy algorithm, its Fed-SDP and DSSGD
// baselines, the gradient-leakage reconstruction attacks of the paper's
// threat model, the moments/RDP privacy accountant, and the complete
// experiment harness that regenerates every table and figure of the paper's
// evaluation.
//
// Layout:
//
//   - internal/core — Fed-CDP (Algorithm 2), Fed-SDP (Algorithm 1),
//     Fed-CDP(decay), DSSGD, and the Run orchestration entry point.
//   - internal/fl — the federated-learning substrate (server, clients,
//     FedSGD aggregation, TCP/gob transport, reusable worker pool).
//   - internal/nn — neural-network stack with a batched GEMM/im2col
//     execution engine that still exposes per-example gradients, plus the
//     per-example reference path it is parity-tested against.
//   - internal/tensor — dense tensors, blocked GEMM kernels, im2col and
//     scratch arenas under the batched engine.
//   - internal/attack — DLG-style gradient-matching reconstruction attacks
//     with analytic double backpropagation, L-BFGS and Adam.
//   - internal/accountant — RDP/moments accountant for the sampled Gaussian
//     mechanism.
//   - internal/dp — clipping policies, the Gaussian mechanism, compression.
//   - internal/dataset — deterministic synthetic benchmark family with
//     pluggable heterogeneity partitioners (iid, dirichlet, pathological,
//     quantity, labelnoise).
//   - internal/experiments — one driver per paper table/figure.
//
// The benchmarks in bench_test.go regenerate each table/figure; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-
// measured results.
package fedcdp
