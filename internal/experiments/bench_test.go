package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := []byte(`goos: linux
goarch: amd64
pkg: fedcdp/internal/fl
cpu: some shared runner
BenchmarkWire/encode/gob         	     469	   2626048 ns/op	  897739 wire_bytes	      69 allocs/op
BenchmarkWire/encode/gob         	     470	   2600000 ns/op	  897739 wire_bytes	      69 allocs/op
BenchmarkWire/encode/gob         	     468	   2700000 ns/op	  897739 wire_bytes	      69 allocs/op
BenchmarkWire/encode/binary-8    	    4096	    249730 ns/op
BenchmarkSimnetRounds            	       1	 123456789 ns/op	       3.5 rounds/sec
PASS
ok  	fedcdp/internal/fl	4.2s
`)
	samples := parseBenchOutput(out)
	if got := len(samples["BenchmarkWire/encode/gob"]); got != 3 {
		t.Fatalf("collected %d gob samples, want 3 (-count runs stack per name)", got)
	}
	if got := samples["BenchmarkWire/encode/binary-8"]; len(got) != 1 || got[0] != 249730 {
		t.Fatalf("binary sample %v, want [249730]", got)
	}
	if got := samples["BenchmarkSimnetRounds"]; len(got) != 1 || got[0] != 123456789 {
		t.Fatalf("simnet sample %v; auxiliary metrics after ns/op must not confuse the parser", got)
	}

	medians, err := medianNsPerOp(out)
	if err != nil {
		t.Fatal(err)
	}
	if medians["BenchmarkWire/encode/gob"] != 2626048 {
		t.Fatalf("median %v, want the middle sample 2626048", medians["BenchmarkWire/encode/gob"])
	}

	if _, err := medianNsPerOp([]byte("PASS\nok x 0.1s\n")); err == nil {
		t.Fatal("output with no benchmark lines must be an infrastructure error, not a silent pass")
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median %v, want 2.5", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Fatalf("singleton median %v, want 7", got)
	}
	in := []float64{9, 1, 5}
	median(in)
	if in[0] != 9 {
		t.Fatal("median must not reorder the caller's samples")
	}
}

func TestLookupBench(t *testing.T) {
	medians := map[string]float64{
		"BenchmarkPartition/dirichlet-8": 100,
		"BenchmarkSanitize":              200,
	}
	if v, ok := lookupBench(medians, "BenchmarkSanitize"); !ok || v != 200 {
		t.Fatalf("exact lookup = %v,%v", v, ok)
	}
	if v, ok := lookupBench(medians, "BenchmarkPartition/dirichlet"); !ok || v != 100 {
		t.Fatalf("suffix-tolerant lookup = %v,%v (must strip the -N GOMAXPROCS suffix)", v, ok)
	}
	if _, ok := lookupBench(medians, "BenchmarkGone"); ok {
		t.Fatal("missing benchmark must not resolve")
	}
}

// Every recorded baseline must exist at the repo root, parse under the
// -update schema, and have its recorded names actually selected by the
// spec's -bench pattern — otherwise the gate would re-run nothing and
// "pass".
func TestBenchSpecsMatchBaselines(t *testing.T) {
	root := "../.."
	for _, spec := range BenchSpecs() {
		raw, err := os.ReadFile(filepath.Join(root, spec.File))
		if err != nil {
			t.Errorf("%s: %v", spec.File, err)
			continue
		}
		var base benchBaseline
		if err := json.Unmarshal(raw, &base); err != nil {
			t.Errorf("%s: %v", spec.File, err)
			continue
		}
		if len(base.Benchmarks) == 0 {
			t.Errorf("%s: records no benchmarks", spec.File)
		}
		// -bench matches the pattern against the top-level function name;
		// sub-benchmark path segments ride along.
		re, err := regexp.Compile(spec.Pattern)
		if err != nil {
			t.Errorf("%s: bad pattern %q: %v", spec.File, spec.Pattern, err)
			continue
		}
		for _, b := range base.Benchmarks {
			top, _, _ := strings.Cut(b.Name, "/")
			if !re.MatchString(top) {
				t.Errorf("%s: recorded %q not selected by -bench %q", spec.File, b.Name, spec.Pattern)
			}
			if b.NsPerOp <= 0 {
				t.Errorf("%s: %s records non-positive ns/op %v", spec.File, b.Name, b.NsPerOp)
			}
		}
		if _, err := os.Stat(filepath.Join(root, spec.Pkg)); err != nil {
			t.Errorf("%s: package dir %s: %v", spec.File, spec.Pkg, err)
		}
	}
}

// The -update path re-marshals the baseline struct; the struct must carry
// every field the checked-in files use, or an update would silently drop
// the derived columns and notes.
func TestBenchBaselineRoundTripsJSON(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_wire.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var a, b any
	if err := json.Unmarshal(raw, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out, &b); err != nil {
		t.Fatal(err)
	}
	av, _ := json.Marshal(a)
	bv, _ := json.Marshal(b)
	if !bytes.Equal(av, bv) {
		t.Fatalf("re-marshaling drops or mangles fields:\nwas:  %s\nnow:  %s", av, bv)
	}
}

// One real gate run over the cheapest baseline: shells the toolchain,
// parses its output, and reports every recorded benchmark. The huge
// threshold keeps the test about plumbing, not machine speed.
func TestBenchGateWire(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess bench run skipped in -short")
	}
	var buf bytes.Buffer
	ok, err := RunBench(BenchOptions{
		Root:      "../..",
		Only:      "wire",
		Count:     1,
		Threshold: 1000,
		Out:       &buf,
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !ok {
		t.Fatalf("gate failed under a 100000%% threshold — a recorded benchmark vanished:\n%s", buf.String())
	}
	for _, want := range []string{"BENCH_wire.json", "BenchmarkWire/encode/gob", "ns/op"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}
