package experiments

import (
	"fmt"

	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
)

// simNoiseFactor rescales the paper's noise scale σ to the simulation's
// reduced averaging budget. The paper's accuracy results rest on B·√(L·Kt)
// averaging with L=100 local iterations and up to Kt=5000 participants; the
// CPU-scale simulation runs L=20 and Kt≈8-48, so running the paper's σ=6
// verbatim floods every method with noise (see DESIGN.md, noise-compensation
// substitution). The factor is calibrated so that the default C=4, σ=6
// setting lands in the paper's regime: Fed-SDP partially degraded, Fed-CDP
// close to non-private, Fed-CDP(decay) best. Privacy accounting (Table 6)
// always uses the paper's true parameters and is unaffected.
const simNoiseFactor = 1.0 / 100

// runCfg is the scaled base configuration used by the training-based
// experiments. Rounds and local iterations are floored at the learning
// threshold of the synthetic CNN benchmarks (T·L ≈ 400 SGD steps); Scale > 1
// grows them toward the paper's budget.
func runCfg(o Options, ds, method string) core.Config {
	return core.Config{
		Dataset:     ds,
		Method:      method,
		K:           16,
		Kt:          8,
		Rounds:      o.n(20, 20),
		LocalIters:  o.n(20, 20),
		Sigma:       6 * simNoiseFactor,
		ValExamples: o.n(300, 100),
		EvalEvery:   100, // evaluate final round only
		Seed:        o.Seed,
		Runtime:     o.Runtime,
		NoiseEngine: o.NoiseEngine,
		Precision:   o.Precision,
		Codec:       o.Codec,
		Scenario:    o.Scenario,
		Aggregation: o.Aggregation,
		Shards:      o.Shards,
		TreeFanout:  o.TreeFanout,
		Sampler:     o.Sampler,
	}
}

// Table1 reproduces Table I: benchmark setup and non-private accuracy/cost.
func Table1(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		Name:   "table1",
		Title:  "Benchmark datasets and parameters (non-private federated learning)",
		Header: []string{"dataset", "#feat", "#cls", "data/client", "B", "L(paper)", "T(paper)", "acc", "acc(paper)", "ms/iter", "ms/iter(paper)"},
		Notes: []string{
			"synthetic stand-ins for the paper's datasets (see DESIGN.md); L and T are scaled for CPU runs",
			"absolute ms/iter differs from the paper's GPU numbers; Table 3 compares the method ratios",
		},
	}
	for _, name := range dataset.Names() {
		spec, err := dataset.Get(name)
		if err != nil {
			return nil, err
		}
		cfg := runCfg(o, name, core.MethodNonPrivate)
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", name, err)
		}
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprint(spec.Features),
			fmt.Sprint(spec.Classes),
			fmt.Sprint(spec.PerClient),
			fmt.Sprint(spec.BatchSize),
			fmt.Sprint(spec.LocalIters),
			fmt.Sprint(spec.Rounds),
			f3ok(res.FinalAccuracy()),
			f3(paperNonPrivateAcc[name]),
			f1ok(res.MeanMsPerIter()),
			f1(paperNonPrivateCost[name]),
		})
	}
	return r, nil
}

// Table2 reproduces Table II: MNIST accuracy across population sizes,
// participation rates and methods. The paper's K ∈ {100, 1000, 10000} maps
// to scaled populations with the same participation fractions.
func Table2(o Options) (*Report, error) {
	o = o.withDefaults()
	ks := []int{40, 80, 160} // stand-ins for the paper's K = 100 / 1k / 10k
	kLabel := []string{"K~100", "K~1000", "K~10000"}
	fracs := []float64{0.05, 0.10, 0.20, 0.50}
	switch { // gate grid breadth by effort level
	case o.Scale < 1: // quick mode: smallest population only
		ks, kLabel = ks[:1], kLabel[:1]
	case o.Scale < 2: // default: two populations
		ks, kLabel = ks[:2], kLabel[:2]
	}
	methods := []string{core.MethodNonPrivate, core.MethodFedSDP, core.MethodFedCDP, core.MethodFedCDPDecay}

	r := &Report{
		Name:   "table2",
		Title:  "Accuracy by #total clients and Kt/K on MNIST (C=4, σ=6)",
		Header: []string{"method"},
		Notes: []string{
			"expected shape: accuracy grows with K and Kt/K; Fed-CDP > Fed-SDP; Fed-CDP(decay) >= Fed-CDP",
			"paper values for K=100 row span: non-private 0.924..0.965, Fed-SDP 0.803..0.872, Fed-CDP 0.815..0.903, decay 0.833..0.909",
		},
	}
	for ki := range ks {
		for _, f := range fracs {
			r.Header = append(r.Header, fmt.Sprintf("%s/%d%%", kLabel[ki], int(f*100)))
		}
	}
	for _, m := range methods {
		row := []string{methodLabel(m)}
		for _, k := range ks {
			for _, f := range fracs {
				// Cohorts below 4 clients hit a non-IID trap (2 classes per
				// client) that the paper's smallest cohort (Kt=5) avoids.
				kt := int(float64(k) * f)
				if kt < 4 {
					kt = 4
				}
				cfg := runCfg(o, "mnist", m)
				cfg.K, cfg.Kt = k, kt
				res, err := core.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("table2 %s K=%d Kt=%d: %w", m, k, kt, err)
				}
				row = append(row, f3ok(res.FinalAccuracy()))
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// Table3 reproduces Table III: per-iteration local training cost by method.
func Table3(o Options) (*Report, error) {
	o = o.withDefaults()
	methods := []string{core.MethodNonPrivate, core.MethodFedSDP, core.MethodFedCDP, core.MethodFedCDPDecay}
	r := &Report{
		Name:   "table3",
		Title:  "Time cost per local iteration per client (ms)",
		Header: []string{"method", "mnist", "cifar10", "lfw", "adult", "cancer", "x-over-np", "x-over-np(paper)"},
		Notes: []string{
			"expected shape: Fed-CDP ≈ 3-4x non-private (per-example clip+noise); decay ≈ Fed-CDP; Fed-SDP ≈ non-private",
		},
	}
	base := map[string]float64{}
	for _, m := range methods {
		row := []string{methodLabel(m)}
		var ratioSum float64
		for _, name := range dataset.Names() {
			cfg := runCfg(o, name, m)
			cfg.K, cfg.Kt = 4, 2
			cfg.Rounds = 1
			cfg.LocalIters = o.n(10, 5)
			cfg.Sigma = 6 // timing uses the paper's real noise scale
			cfg.ValExamples = 10
			cfg.Parallelism = 1 // stable timing
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("table3 %s %s: %w", m, name, err)
			}
			ms, _ := res.MeanMsPerIter()
			row = append(row, f1(ms))
			if m == core.MethodNonPrivate {
				base[name] = ms
			}
			if b := base[name]; b > 0 {
				ratioSum += ms / b
			}
		}
		ratio := ratioSum / float64(len(dataset.Names()))
		paperRatio := paperRatioOverNP(methodLabel(m))
		row = append(row, fmt.Sprintf("%.2f", ratio), paperRatio)
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

func paperRatioOverNP(label string) string {
	p, ok := paperTable3[label]
	if !ok {
		return "-"
	}
	np := paperTable3["non-private"]
	var s float64
	for _, name := range dataset.Names() {
		s += p[name] / np[name]
	}
	return fmt.Sprintf("%.2f", s/float64(len(dataset.Names())))
}

// Table4 reproduces Table IV: Fed-CDP accuracy across clipping bounds.
func Table4(o Options) (*Report, error) {
	return sweepTable(o, "table4",
		"Fed-CDP accuracy by clipping bound C (σ=6)",
		[]float64{0.5, 1, 2, 4, 6, 8},
		func(cfg *core.Config, v float64) { cfg.Clip = v },
		paperTable4,
		"expected shape: interior optimum (too-small C prunes signal, too-large C inflates noise variance)",
	)
}

// Table5 reproduces Table V: Fed-CDP accuracy across noise scales.
func Table5(o Options) (*Report, error) {
	return sweepTable(o, "table5",
		"Fed-CDP accuracy by noise scale σ (C=4)",
		[]float64{0.5, 1, 2, 4, 6, 8},
		func(cfg *core.Config, v float64) { cfg.Sigma = v * simNoiseFactor },
		paperTable5,
		"expected shape: accuracy decreases monotonically (mildly) with σ",
	)
}

func sweepTable(o Options, name, title string, values []float64, apply func(*core.Config, float64), paper map[string]map[float64]float64, note string) (*Report, error) {
	o = o.withDefaults()
	r := &Report{Name: name, Title: title, Notes: []string{note}}
	r.Header = []string{"dataset"}
	for _, v := range values {
		r.Header = append(r.Header, fmt.Sprintf("%g", v), fmt.Sprintf("%g(paper)", v))
	}
	names := dataset.Names()
	if o.Scale < 1 { // quick mode: one image + one tabular benchmark
		names = []string{"mnist", "adult"}
	}
	for _, ds := range names {
		row := []string{ds}
		for _, v := range values {
			cfg := runCfg(o, ds, core.MethodFedCDP)
			apply(&cfg, v)
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s %s %g: %w", name, ds, v, err)
			}
			row = append(row, f3ok(res.FinalAccuracy()), f3(paper[ds][v]))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// Fig3 reproduces Figure 3: the decaying L2 norm of per-example gradients
// over federated training (mean across MNIST clients).
func Fig3(o Options) (*Report, error) {
	o = o.withDefaults()
	cfg := runCfg(o, "mnist", core.MethodNonPrivate)
	// A fixed full-participation cohort gives a smooth norm series (the
	// paper averages a fixed set of 100 clients).
	cfg.K = o.n(20, 8)
	cfg.Kt = cfg.K
	cfg.Rounds = o.n(25, 8)
	cfg.EvalEvery = 1000
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:   "fig3",
		Title:  "Mean L2 norm of per-example gradients by round (MNIST, non-private)",
		Header: []string{"round", "mean-L2-norm"},
		Notes: []string{
			"expected shape: monotone-ish decay — early gradients are larger and more informative (drives Fed-CDP(decay))",
		},
	}
	for _, rs := range res.Rounds {
		r.Rows = append(r.Rows, []string{fmt.Sprint(rs.Round), f4(rs.MeanGradNorm)})
	}
	series := res.GradNormSeries()
	if len(series) >= 2 && series[len(series)-1] < series[0] {
		r.Notes = append(r.Notes, fmt.Sprintf("decay confirmed: %.4f -> %.4f", series[0], series[len(series)-1]))
	}
	return r, nil
}

func methodLabel(m string) string {
	switch m {
	case core.MethodNonPrivate:
		return "non-private"
	case core.MethodFedSDP:
		return "fed-sdp"
	case core.MethodFedSDPSrv:
		return "fed-sdp(server)"
	case core.MethodFedCDP:
		return "fed-cdp"
	case core.MethodFedCDPDecay:
		return "fed-cdp(decay)"
	case core.MethodDSSGD:
		return "dssgd"
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
