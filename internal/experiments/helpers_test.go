package experiments

import (
	"fmt"

	"fedcdp/internal/attack"
	"fedcdp/internal/dataset"
	"fedcdp/internal/tensor"
)

// Thin aliases keeping the test bodies readable.

type tensorT = tensor.Tensor

func datasetGet(name string) (dataset.Spec, error) { return dataset.Get(name) }

func datasetNew(spec dataset.Spec, seed int64) *dataset.Dataset { return dataset.New(spec, seed) }

func rngSplit(seed int64, labels ...int64) *tensor.RNG { return tensor.Split(seed, labels...) }

func sscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func resultWith(revealed bool, dist float64, iters int) attack.Result {
	return attack.Result{Revealed: revealed, Distance: dist, Iterations: iters}
}
