package experiments

import (
	"fmt"
	"sort"

	"fedcdp/internal/dataset"
)

// Driver runs one experiment at the given options.
type Driver func(Options) (*Report, error)

// Registry maps experiment ids (table/figure numbers) to their drivers.
func Registry() map[string]Driver {
	return map[string]Driver{
		"table1":    Table1,
		"table2":    Table2,
		"table3":    Table3,
		"table4":    Table4,
		"table5":    Table5,
		"table6":    Table6,
		"table7":    Table7,
		"fig1":      Fig1,
		"fig3":      Fig3,
		"fig4":      Fig4,
		"fig5":      Fig5,
		"faults":    FaultMatrix,
		"byzantine": AttackMatrix,
		"churn":     ChurnMatrix,
	}
}

// Names returns all experiment ids in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes the named experiment. When a non-default heterogeneity
// scenario is set, the report is stamped with it and with the realized
// per-client dataset statistics (shard sizes, classes per client, label
// entropy) of every benchmark the experiment touched.
func Run(name string, o Options) (*Report, error) {
	d, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	r, err := d(o)
	if err != nil {
		return nil, err
	}
	r.ConfigDigest = o.ConfigDigest
	if o.Scenario.Name != "" {
		o = o.withDefaults()
		r.Scenario = o.Scenario.String()
		for _, dsName := range reportDatasets(r) {
			spec, serr := dataset.Get(dsName)
			if serr != nil {
				continue
			}
			ds, serr := o.newDataset(spec)
			if serr != nil {
				return nil, serr
			}
			r.Notes = append(r.Notes, fmt.Sprintf("%s partition: %s", dsName, ds.Stats(statsClients)))
		}
	}
	return r, nil
}

// statsClients is the population slice the scenario stats note measures —
// the K the scaled training drivers use.
const statsClients = 16

// reportDatasets lists the benchmarks an experiment report touched, in
// column order, by scanning its rows' first cells for benchmark names.
func reportDatasets(r *Report) []string {
	known := map[string]bool{}
	for _, n := range dataset.Names() {
		known[n] = true
	}
	var out []string
	seen := map[string]bool{}
	add := func(cell string) {
		if known[cell] && !seen[cell] {
			seen[cell] = true
			out = append(out, cell)
		}
	}
	for _, h := range r.Header {
		add(h)
	}
	for _, row := range r.Rows {
		if len(row) > 0 {
			add(row[0])
		}
	}
	if len(out) == 0 {
		// Method-major tables (table2, table3, fig5) span fixed benchmarks;
		// fall back to the flagship one so the note is never empty.
		out = []string{"mnist"}
	}
	return out
}
