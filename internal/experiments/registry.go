package experiments

import (
	"fmt"
	"sort"
)

// Driver runs one experiment at the given options.
type Driver func(Options) (*Report, error)

// Registry maps experiment ids (table/figure numbers) to their drivers.
func Registry() map[string]Driver {
	return map[string]Driver{
		"table1": Table1,
		"table2": Table2,
		"table3": Table3,
		"table4": Table4,
		"table5": Table5,
		"table6": Table6,
		"table7": Table7,
		"fig1":   Fig1,
		"fig3":   Fig3,
		"fig4":   Fig4,
		"fig5":   Fig5,
	}
}

// Names returns all experiment ids in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes the named experiment.
func Run(name string, o Options) (*Report, error) {
	d, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return d(o)
}
