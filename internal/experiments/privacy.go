package experiments

import (
	"fmt"

	"fedcdp/internal/accountant"
	"fedcdp/internal/dataset"
)

// Table6 reproduces Table VI: privacy composition of Fed-SDP and Fed-CDP via
// the moments accountant. This experiment is a pure computation at the
// paper's exact parameters (no scaling): global sampling rate q = 0.01 for
// Fed-CDP, client rate q₂ = Kt/K = 0.1 for Fed-SDP, σ = 6, δ = 1e-5, and
// T = {100, 100, 60, 10, 3} rounds with L ∈ {1, 100} local iterations.
func Table6(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		Name:  "table6",
		Title: "Privacy composition ε (δ=1e-5, σ=6, q_cdp=0.01, q_sdp=0.1)",
		Header: []string{
			"dataset", "T",
			"cdp L=1 (rdp)", "cdp L=1 (eq2)", "paper",
			"cdp L=100 (rdp)", "cdp L=100 (eq2)", "paper",
			"sdp (rdp)", "sdp (eq2)", "paper",
		},
		Notes: []string{
			"rdp = our moments/RDP accountant; eq2 = the paper's Equation (2) closed form with calibrated c2",
			"expected shape: ε grows ~sqrt(T·L); Fed-CDP(L=1) << Fed-CDP(L=100) < Fed-SDP; Fed-SDP identical for L=1 and L=100",
			"Fed-SDP supports no instance-level guarantee (client-level only)",
		},
	}
	for _, name := range dataset.Names() {
		spec, err := dataset.Get(name)
		if err != nil {
			return nil, err
		}
		T := spec.Rounds
		p := func(L int) accountant.Params {
			return accountant.Params{
				TotalData:  100 * spec.BatchSize * 100, // N chosen so q = B·Kt/N = 0.01 with Kt=100
				TotalK:     1000,
				PerRoundKt: 100,
				BatchSize:  spec.BatchSize,
				LocalIters: L,
				Rounds:     T,
				Sigma:      6,
				Delta:      1e-5,
			}
		}
		cdp1 := accountant.FedCDPEpsilon(p(1))
		cdp1e := accountant.FedCDPAbadi(p(1))
		cdp100 := accountant.FedCDPEpsilon(p(100))
		cdp100e := accountant.FedCDPAbadi(p(100))
		sdp := accountant.FedSDPEpsilon(p(100))
		sdpe := accountant.FedSDPAbadi(p(100))
		r.Rows = append(r.Rows, []string{
			name, fmt.Sprint(T),
			f4(cdp1), f4(cdp1e), f4(paperTable6CDP1[name]),
			f4(cdp100), f4(cdp100e), f4(paperTable6CDP100[name]),
			f4(sdp), f4(sdpe), f4(paperTable6SDP[name]),
		})
	}
	return r, nil
}
