package experiments

import (
	"fmt"

	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

// The churn matrix: {runtime × scenario × method × population plan} swept
// through core.Run's open-world population engine. Every cell is a
// deterministic run against a seeded arrival/departure/churn schedule; the
// invariants the sweep must uphold (cohorts drawn only from the active
// set, per-user ε ledgers charging realized participation, static-plan
// collapse to the global accountant, streaming ↔ barrier parity under
// every plan) are asserted by churn_test.go. cmd/tables renders it as the
// "churn" experiment.

// churnMatrixQuorum mirrors the fault matrix's commit threshold: small
// enough that a thinned active set still commits, large enough that a
// heavily-departed population can miss quorum.
const churnMatrixQuorum = 2

// ChurnCell is one cell of the churn matrix: its coordinates and the
// completed run.
type ChurnCell struct {
	Runtime  string
	Scenario dataset.Scenario
	Method   string
	Plan     string // population-plan grammar; "" = closed world
	Result   *core.Result
}

// churnMatrixAxes returns the swept axes. Plans escalate from the closed
// world through one-shot joins/leaves to memoryless churn; the incremental
// scenario exercises the time-varying partitioner under the same schedules.
func churnMatrixAxes() (runtimes []string, scenarios []dataset.Scenario, methods, plans []string) {
	runtimes = []string{fl.RuntimeStreaming, fl.RuntimeBarrier}
	scenarios = []dataset.Scenario{{}, {Name: dataset.ScenarioIncremental, Period: 2}}
	methods = []string{core.MethodNonPrivate, core.MethodFedCDP}
	plans = []string{"", "join=4@2", "leave=3@4", "join=3@2,leave=3@4", "churn=0.25"}
	return
}

// churnCellConfig is the configuration every cell runs: the same
// small-but-real federation as the fault matrix, stretched to six rounds so
// arrivals at round 2 and departures at round 4 both have a before and an
// after.
func churnCellConfig(o Options, cell ChurnCell) core.Config {
	return core.Config{
		Dataset: "cancer",
		Method:  cell.Method,
		K:       10, Kt: 4,
		Rounds:      o.n(6, 6),
		LocalIters:  2,
		Sigma:       0.06,
		Seed:        o.Seed,
		ValExamples: o.n(60, 40),
		EvalEvery:   1,
		MinQuorum:   churnMatrixQuorum,
		Runtime:     cell.Runtime,
		Scenario:    cell.Scenario,
		Population:  cell.Plan,
		NoiseEngine: o.NoiseEngine,
		Precision:   o.Precision,
		Codec:       o.Codec,
	}
}

// RunChurnMatrix executes the full sweep and returns every cell with its
// run attached (the structured form churn_test.go asserts invariants over;
// ChurnMatrix renders the same cells as a Report).
func RunChurnMatrix(o Options) ([]ChurnCell, error) {
	o = o.withDefaults()
	runtimes, scenarios, methods, plans := churnMatrixAxes()
	var cells []ChurnCell
	for _, rt := range runtimes {
		for _, sc := range scenarios {
			for _, m := range methods {
				for _, plan := range plans {
					cell := ChurnCell{Runtime: rt, Scenario: sc, Method: m, Plan: plan}
					res, err := core.Run(churnCellConfig(o, cell))
					if err != nil {
						return nil, fmt.Errorf("churn %s/%s/%s/%q: %w", rt, sc, m, plan, err)
					}
					cell.Result = res
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells, nil
}

// ChurnMatrix is the "churn" experiment driver: what an open-world
// population does to participation, accuracy and the per-user privacy
// spread — the worst-exposed user's ε against the least-exposed user's,
// per runtime, scenario, method and population plan.
func ChurnMatrix(o Options) (*Report, error) {
	cells, err := RunChurnMatrix(o)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:   "churn",
		Title:  "Open-world population: {runtime × scenario × method × population plan} (cancer benchmark)",
		Header: []string{"plan", "runtime", "scenario", "method", "active", "folded", "acc", "eps", "eps-min", "users"},
		Notes: []string{
			"population grammar: join=n@r arrivals, leave=n@r departures, churn=p memoryless per-round absence (deterministic per seed)",
			"active sums the per-round active population; cohorts are drawn only from it",
			"eps is the run's user-level spend (max over per-user ledgers); eps-min is the least-exposed participant — the spread is what the closed-world global accountant cannot see",
			"static plans collapse the ledger to the global accountant bit-for-bit (asserted in churn_test.go)",
		},
	}
	for _, c := range cells {
		active, folded := 0, 0
		for _, rd := range c.Result.Rounds {
			active += rd.Active
			folded += rd.Clients
		}
		plan := c.Plan
		if plan == "" {
			plan = "closed"
		}
		scenario := c.Scenario.String()
		if c.Scenario.Name == "" {
			scenario = "iid"
		}
		epsMin, users := "-", "-"
		if c.Result.Ledger != nil {
			m, _ := c.Result.Ledger.MinEpsilon()
			epsMin = f4(m)
			users = fmt.Sprint(len(c.Result.Ledger.Users()))
		}
		r.Rows = append(r.Rows, []string{
			plan,
			c.Runtime,
			scenario,
			c.Method,
			fmt.Sprint(active),
			fmt.Sprint(folded),
			f3ok(c.Result.FinalAccuracy()),
			f4(c.Result.FinalEpsilon()),
			epsMin,
			users,
		})
	}
	return r, nil
}
