package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"fedcdp/internal/core"
	"fedcdp/internal/fl"
	"fedcdp/internal/tensor"
)

// The scenario-matrix sweep: every {runtime × scenario × method × plan}
// cell must uphold the runtime's invariants under fault injection. This
// test is the simnet layer's standing integration gate and runs under
// -race in CI's sim job.

// digestParams fingerprints a model's parameters bit-for-bit (FNV-1a over
// every float64's bit pattern).
func digestParams(ts []*tensor.Tensor) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, t := range ts {
		for _, v := range t.Data() {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				buf[s/8] = byte(b >> s)
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func TestFaultMatrixInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("48 federated runs")
	}
	cells, err := RunFaultMatrix(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	runtimes, scenarios, methods, plans := faultMatrixAxes()
	if want := len(runtimes) * len(scenarios) * len(methods) * len(plans); len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}

	sawUncommitted, sawDropped := false, false
	type key struct{ scenario, method, plan string }
	digests := map[key]map[string]uint64{} // key → runtime → digest
	for _, c := range cells {
		label := fmt.Sprintf("%s/%s/%s/%q", c.Runtime, c.Scenario, c.Method, c.Plan)
		prevEps := 0.0
		for i, r := range c.Result.Rounds {
			// Invariant: quorum honored — committed iff enough folds.
			if r.Committed != (r.Clients >= faultMatrixQuorum) {
				t.Fatalf("%s round %d: committed=%v with %d folds under quorum %d", label, i, r.Committed, r.Clients, faultMatrixQuorum)
			}
			// Invariant: fold/drop conservation over the sampled cohort.
			if r.Clients+r.Dropped != 4 {
				t.Fatalf("%s round %d: %d folded + %d dropped ≠ cohort 4", label, i, r.Clients, r.Dropped)
			}
			// Invariant: ε accounting charges realized participation —
			// strictly growing on committed rounds, flat across uncommitted
			// ones (a round below quorum publishes nothing, so composing
			// its mechanism would overstate the spend; the old unconditional
			// charge reported the clean run's ε for a faulted run).
			switch c.Method {
			case core.MethodFedCDP, core.MethodFedSDPSrv:
				if r.Committed && r.Epsilon <= prevEps {
					t.Fatalf("%s round %d: ε %v did not grow past %v on a committed round", label, i, r.Epsilon, prevEps)
				}
				if !r.Committed && r.Epsilon != prevEps {
					t.Fatalf("%s round %d: uncommitted round moved ε %v -> %v", label, i, prevEps, r.Epsilon)
				}
			default:
				if r.Epsilon != 0 {
					t.Fatalf("%s round %d: non-private ε = %v", label, i, r.Epsilon)
				}
			}
			prevEps = r.Epsilon
			if !r.Committed {
				sawUncommitted = true
			}
			if r.Dropped > 0 {
				sawDropped = true
			}
		}
		k := key{c.Scenario.String(), c.Method, c.Plan}
		if digests[k] == nil {
			digests[k] = map[string]uint64{}
		}
		digests[k][c.Runtime] = digestParams(c.Result.Final.Params())
	}

	// Invariant: the streaming and barrier runtimes commit bit-identical
	// models under every scenario, method and fault plan.
	for k, byRuntime := range digests {
		if len(byRuntime) != len(runtimes) {
			t.Fatalf("%v: missing a runtime run", k)
		}
		var want uint64
		first := true
		for rt, d := range byRuntime {
			if first {
				want, first = d, false
				continue
			}
			if d != want {
				t.Fatalf("%v: runtime %s digest %x diverges from %x", k, rt, d, want)
			}
		}
	}

	// The sweep must actually exercise the failure paths it claims to.
	if !sawDropped {
		t.Fatal("no cell ever dropped a contribution")
	}
	if !sawUncommitted {
		t.Fatal("no cell ever missed quorum — the heavy plans are too gentle")
	}
}

func TestFaultMatrixReport(t *testing.T) {
	if testing.Short() {
		t.Skip("48 federated runs")
	}
	rep, err := Run("faults", Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "faults" || len(rep.Rows) != 48 {
		t.Fatalf("report %s with %d rows, want faults/48", rep.Name, len(rep.Rows))
	}
	if len(rep.Header) != len(rep.Rows[0]) {
		t.Fatalf("header width %d ≠ row width %d", len(rep.Header), len(rep.Rows[0]))
	}
}

// TestAttackMatrixInvariants sweeps the attack×defense matrix and asserts
// the robustness claims it exists to make executable. Bounds are pinned
// from the seeded run (seed 42): the iid honest baseline is 0.950, the
// scaled Byzantine attack drives the undefended mean to chance (≤ 0.6)
// while every robust fold stays within 0.05 of honest, and sign-flipping /
// poisoning degrade robust folds by at most 0.2. The extreme dirichlet(0.1)
// cells sit at chance for every defense at this scale, so attack bounds are
// asserted on the iid plane; the skewed plane still exercises determinism,
// parity and accounting.
func TestAttackMatrixInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("64 federated runs per runtime")
	}
	const honestFloor, breakCeiling, robustSlack = 0.9, 0.6, 0.2

	run := func(runtime string) []AttackCell {
		cells, err := RunAttackMatrix(Options{Seed: 42, Runtime: runtime})
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	cells := run("")

	behaviors, defenses, methods, scenarios := attackMatrixAxes()
	if want := len(behaviors) * len(defenses) * len(methods) * len(scenarios); len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}

	honest := map[string]float64{} // scenario|method|defense → honest accuracy
	eps := map[string]float64{}    // scenario|method → ε (must not vary by adversary)
	for _, c := range cells {
		k := c.Scenario.String() + "|" + c.Method
		if c.Behavior == "" {
			if acc, ok := c.Result.FinalAccuracy(); ok {
				honest[k+"|"+c.Defense] = acc
			}
		}
		// Invariant: ε accounting never sees the adversary — identical in
		// every cell of a (scenario, method) plane.
		if prev, ok := eps[k]; ok {
			if c.Result.FinalEpsilon() != prev {
				t.Fatalf("%s: ε %v differs from plane's %v under %q/%s", k, c.Result.FinalEpsilon(), prev, c.Behavior, c.Defense)
			}
		} else {
			eps[k] = c.Result.FinalEpsilon()
		}
		if c.Method == core.MethodNonPrivate && c.Result.FinalEpsilon() != 0 {
			t.Fatalf("non-private cell %q/%s reported ε %v", c.Behavior, c.Defense, c.Result.FinalEpsilon())
		}
	}

	for _, c := range cells {
		if c.Scenario.Name != "" {
			continue // attack bounds are pinned on the iid plane
		}
		acc, _ := c.Result.FinalAccuracy()
		base := honest[c.Scenario.String()+"|"+c.Method+"|"+c.Defense]
		label := fmt.Sprintf("iid/%s %q/%s", c.Method, c.Behavior, c.Defense)
		switch {
		case c.Behavior == "":
			// Invariant: with zero attackers every defense trains normally.
			if acc < honestFloor {
				t.Fatalf("%s: honest accuracy %.3f below floor %.2f", label, acc, honestFloor)
			}
		case c.Defense == "fedsgd" && c.Behavior == "byzantine=2:scale:25":
			// Invariant: the scaled attack demonstrably breaks the
			// undefended mean — this is the row that justifies the axis.
			if acc > breakCeiling {
				t.Fatalf("%s: undefended mean survived at %.3f (≤ %.2f expected)", label, acc, breakCeiling)
			}
		case c.Defense != "fedsgd":
			// Invariant: every robust fold degrades boundedly under every
			// attack behavior.
			if acc < base-robustSlack {
				t.Fatalf("%s: robust accuracy %.3f fell more than %.2f below honest %.3f", label, acc, robustSlack, base)
			}
		}
	}

	// Invariant: streaming and barrier commit bit-identical models in
	// every attack×defense cell.
	barrier := run(fl.RuntimeBarrier)
	for i, c := range cells {
		b := barrier[i]
		if c.Behavior != b.Behavior || c.Defense != b.Defense || c.Method != b.Method {
			t.Fatalf("cell %d coordinates diverge across runtimes", i)
		}
		if digestParams(c.Result.Final.Params()) != digestParams(b.Result.Final.Params()) {
			t.Fatalf("%q/%s/%s/%s: streaming and barrier params diverge", c.Behavior, c.Defense, c.Method, c.Scenario)
		}
	}
}

func TestAttackMatrixReport(t *testing.T) {
	if testing.Short() {
		t.Skip("64 federated runs")
	}
	rep, err := Run("byzantine", Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "byzantine" || len(rep.Rows) != 64 {
		t.Fatalf("report %s with %d rows, want byzantine/64", rep.Name, len(rep.Rows))
	}
	if len(rep.Header) != len(rep.Rows[0]) {
		t.Fatalf("header width %d ≠ row width %d", len(rep.Header), len(rep.Rows[0]))
	}
	// Honest rows carry delta 0 against themselves.
	for _, row := range rep.Rows {
		if row[0] == "none" && row[6] != "0.000" {
			t.Fatalf("honest row delta %q, want 0.000", row[6])
		}
	}
}
