package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"fedcdp/internal/core"
	"fedcdp/internal/tensor"
)

// The scenario-matrix sweep: every {runtime × scenario × method × plan}
// cell must uphold the runtime's invariants under fault injection. This
// test is the simnet layer's standing integration gate and runs under
// -race in CI's sim job.

// digestParams fingerprints a model's parameters bit-for-bit (FNV-1a over
// every float64's bit pattern).
func digestParams(ts []*tensor.Tensor) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, t := range ts {
		for _, v := range t.Data() {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				buf[s/8] = byte(b >> s)
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func TestFaultMatrixInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("48 federated runs")
	}
	cells, err := RunFaultMatrix(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	runtimes, scenarios, methods, plans := faultMatrixAxes()
	if want := len(runtimes) * len(scenarios) * len(methods) * len(plans); len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}

	sawUncommitted, sawDropped := false, false
	type key struct{ scenario, method, plan string }
	digests := map[key]map[string]uint64{} // key → runtime → digest
	for _, c := range cells {
		label := fmt.Sprintf("%s/%s/%s/%q", c.Runtime, c.Scenario, c.Method, c.Plan)
		prevEps := 0.0
		for i, r := range c.Result.Rounds {
			// Invariant: quorum honored — committed iff enough folds.
			if r.Committed != (r.Clients >= faultMatrixQuorum) {
				t.Fatalf("%s round %d: committed=%v with %d folds under quorum %d", label, i, r.Committed, r.Clients, faultMatrixQuorum)
			}
			// Invariant: fold/drop conservation over the sampled cohort.
			if r.Clients+r.Dropped != 4 {
				t.Fatalf("%s round %d: %d folded + %d dropped ≠ cohort 4", label, i, r.Clients, r.Dropped)
			}
			// Invariant: ε accounting is monotone — and strictly growing
			// for private methods, even through uncommitted rounds (noise
			// was released regardless of whether the fold committed).
			switch c.Method {
			case core.MethodFedCDP, core.MethodFedSDPSrv:
				if r.Epsilon <= prevEps {
					t.Fatalf("%s round %d: ε %v did not grow past %v", label, i, r.Epsilon, prevEps)
				}
			default:
				if r.Epsilon != 0 {
					t.Fatalf("%s round %d: non-private ε = %v", label, i, r.Epsilon)
				}
			}
			prevEps = r.Epsilon
			if !r.Committed {
				sawUncommitted = true
			}
			if r.Dropped > 0 {
				sawDropped = true
			}
		}
		k := key{c.Scenario.String(), c.Method, c.Plan}
		if digests[k] == nil {
			digests[k] = map[string]uint64{}
		}
		digests[k][c.Runtime] = digestParams(c.Result.Final.Params())
	}

	// Invariant: the streaming and barrier runtimes commit bit-identical
	// models under every scenario, method and fault plan.
	for k, byRuntime := range digests {
		if len(byRuntime) != len(runtimes) {
			t.Fatalf("%v: missing a runtime run", k)
		}
		var want uint64
		first := true
		for rt, d := range byRuntime {
			if first {
				want, first = d, false
				continue
			}
			if d != want {
				t.Fatalf("%v: runtime %s digest %x diverges from %x", k, rt, d, want)
			}
		}
	}

	// The sweep must actually exercise the failure paths it claims to.
	if !sawDropped {
		t.Fatal("no cell ever dropped a contribution")
	}
	if !sawUncommitted {
		t.Fatal("no cell ever missed quorum — the heavy plans are too gentle")
	}
}

func TestFaultMatrixReport(t *testing.T) {
	if testing.Short() {
		t.Skip("48 federated runs")
	}
	rep, err := Run("faults", Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "faults" || len(rep.Rows) != 48 {
		t.Fatalf("report %s with %d rows, want faults/48", rep.Name, len(rep.Rows))
	}
	if len(rep.Header) != len(rep.Rows[0]) {
		t.Fatalf("header width %d ≠ row width %d", len(rep.Header), len(rep.Rows[0]))
	}
}
