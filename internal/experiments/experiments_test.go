package experiments

import (
	"strings"
	"testing"
)

func TestReportFormatting(t *testing.T) {
	r := &Report{
		Name:   "test",
		Title:  "a title",
		Header: []string{"col1", "longer-col"},
		Rows:   [][]string{{"a", "b"}, {"ccc", "d"}},
		Notes:  []string{"a note"},
	}
	s := r.String()
	for _, want := range []string{"=== test: a title ===", "col1", "longer-col", "ccc", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report output missing %q:\n%s", want, s)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if f3(0.12345) != "0.123" || f4(0.12345) != "0.1235" || f1(1.25) != "1.2" {
		t.Fatal("float formatting broken")
	}
	if yn(true) != "Y" || yn(false) != "N" {
		t.Fatal("yn broken")
	}
	if pad("ab", 4) != "ab  " || pad("abcd", 2) != "abcd" {
		t.Fatal("pad broken")
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Seed == 0 {
		t.Fatalf("defaults: %+v", o)
	}
	if (Options{Scale: 0.5}).n(100, 10) != 50 {
		t.Fatal("n scaling broken")
	}
	if (Options{Scale: 0.01}.withDefaults()).n(100, 10) != 10 {
		t.Fatal("n floor broken")
	}
	if (Options{Scale: 2}).n(100, 10) != 200 {
		t.Fatal("n upscale broken")
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"byzantine", "churn", "faults", "fig1", "fig3", "fig4", "fig5", "table1", "table2", "table3", "table4", "table5", "table6", "table7"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registry[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("table99", Options{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTable6MatchesPaperShape(t *testing.T) {
	rep, err := Table6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("table6 has %d rows, want 5", len(rep.Rows))
	}
	// MNIST row: our RDP ε for L=100 must be within 5% of the paper value.
	mnist := rep.Rows[0]
	if mnist[0] != "mnist" {
		t.Fatalf("first row is %v", mnist)
	}
	var rdp100 float64
	if _, err := sscan(mnist[5], &rdp100); err != nil {
		t.Fatal(err)
	}
	if rdp100 < 0.78 || rdp100 > 0.87 {
		t.Fatalf("mnist L=100 ε = %v, paper 0.8227 (±5%%)", rdp100)
	}
}

func TestTable6Determinism(t *testing.T) {
	a, err := Table6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("table6 must be deterministic")
	}
}

func TestLeakType2Semantics(t *testing.T) {
	spec, err := datasetGet("mnist")
	if err != nil {
		t.Fatal(err)
	}
	m := attackModel(spec, 1)
	ds := datasetNew(spec, 1)
	x, y := ds.Client(0).Get(0)

	_, rawW, _ := m.Gradients(x, y)
	gwNP, _ := leakType2(m, x, y, "non-private", rngSplit(1, 1))
	if !rawW[0].Equal(gwNP[0], 0) {
		t.Fatal("non-private type-2 leak must be raw")
	}
	gwSDP, _ := leakType2(m, x, y, "fed-sdp", rngSplit(1, 2))
	if !rawW[0].Equal(gwSDP[0], 0) {
		t.Fatal("fed-sdp type-2 leak must be raw (the paper's core point)")
	}
	gwCDP, _ := leakType2(m, x, y, "fed-cdp", rngSplit(1, 3))
	if rawW[0].Equal(gwCDP[0], 1e-9) {
		t.Fatal("fed-cdp type-2 leak must be sanitized")
	}
}

func TestLeakType01Semantics(t *testing.T) {
	spec, err := datasetGet("mnist")
	if err != nil {
		t.Fatal(err)
	}
	m := attackModel(spec, 2)
	ds := datasetNew(spec, 2)
	cd := ds.Client(0)
	xs := make([]*tensorT, 3)
	ys := make([]int, 3)
	for j := range xs {
		xs[j], ys[j] = cd.Get(j)
	}
	gwNP, gbNP := leakType01(m, xs, ys, "non-private", rngSplit(2, 1))
	gwSDP, _ := leakType01(m, xs, ys, "fed-sdp", rngSplit(2, 2))
	if gwNP[0].Equal(gwSDP[0], 1e-9) {
		t.Fatal("fed-sdp round update must be sanitized")
	}
	gwD, gbD := leakType01(m, xs, ys, "dssgd", rngSplit(2, 3))
	nz, total := 0, 0
	for _, g := range append(gwD, gbD...) {
		for _, v := range g.Data() {
			if v != 0 {
				nz++
			}
			total++
		}
	}
	if frac := float64(nz) / float64(total); frac > 0.12 {
		t.Fatalf("dssgd leak shares %.3f of entries, want ~0.1", frac)
	}
	_ = gbNP
}

func TestAttackStatsAggregation(t *testing.T) {
	var s attackStats
	s.add(resultWith(true, 0.1, 10))
	s.add(resultWith(false, 0.9, 300))
	succ, dist, iters := s.row()
	if succ != "Y" { // 1 of 2 revealed -> majority rule Y
		t.Fatalf("success = %s", succ)
	}
	if dist != "0.5000" || iters != "155" {
		t.Fatalf("dist=%s iters=%s", dist, iters)
	}
	var s2 attackStats
	s2.add(resultWith(false, 0.9, 300))
	s2.add(resultWith(false, 0.8, 300))
	s2.add(resultWith(true, 0.1, 10))
	if succ, _, _ := s2.row(); succ != "N" {
		t.Fatalf("1/3 revealed must be N, got %s", succ)
	}
}

func TestFig3QuickDecay(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	rep, err := Fig3(Options{Scale: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 8 {
		t.Fatalf("fig3 has %d rounds", len(rep.Rows))
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "decay confirmed") {
			found = true
		}
	}
	if !found {
		t.Fatal("fig3 gradient-norm decay not confirmed")
	}
}

func TestTable3Ratios(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	rep, err := Table3(Options{Scale: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("table3 rows = %d", len(rep.Rows))
	}
	// The Fed-CDP ratio column must exceed the non-private one.
	var npRatio, cdpRatio float64
	for _, row := range rep.Rows {
		if row[0] == "non-private" {
			sscan(row[6], &npRatio)
		}
		if row[0] == "fed-cdp" {
			sscan(row[6], &cdpRatio)
		}
	}
	if cdpRatio <= npRatio {
		t.Fatalf("fed-cdp overhead ratio %v not above non-private %v", cdpRatio, npRatio)
	}
}

func TestFig1AttacksSucceedOnNonPrivate(t *testing.T) {
	if testing.Short() {
		t.Skip("attack experiment")
	}
	rep, err := Fig1(Options{Scale: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// At least the type-2 rows must reveal the private input.
	revealed := 0
	for _, row := range rep.Rows {
		if row[1] == "type-2" && row[2] == "Y" {
			revealed++
		}
	}
	if revealed < 2 {
		t.Fatalf("only %d/3 type-2 attacks revealed on non-private FL", revealed)
	}
}
