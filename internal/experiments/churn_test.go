package experiments

import (
	"testing"

	"fedcdp/internal/core"
	"fedcdp/internal/fl"
	"fedcdp/internal/simnet"
)

// The churn matrix's standing invariants: every cell of
// {runtime × scenario × method × plan} draws cohorts only from the round's
// active set, charges per-user ledgers for realized participation only,
// collapses closed worlds to the global accountant, and keeps the two
// in-process runtimes bit-identical under every plan.
func TestChurnMatrixInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	cells, err := RunChurnMatrix(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	runtimes, scenarios, methods, plans := churnMatrixAxes()
	if want := len(runtimes) * len(scenarios) * len(methods) * len(plans); len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	type coord struct {
		scenario, method, plan string
	}
	digests := map[coord]map[string]uint64{}
	for _, c := range cells {
		res := c.Result
		cfg := res.Cfg
		// Reconstruct the cell's population registry.
		var pop fl.Population
		if c.Plan == "" {
			pop = fl.PopulationOf(cfg.K, nil)
		} else {
			plan, err := simnet.ParsePlan(c.Plan)
			if err != nil {
				t.Fatal(err)
			}
			bound, err := plan.Bind(cfg.Seed, cfg.Rounds, cfg.K)
			if err != nil {
				t.Fatal(err)
			}
			pop = fl.PopulationOf(cfg.K, bound)
		}
		dynamic := pop.Dynamic()
		// Ledgers exist exactly for private methods on open-world plans.
		wantLedger := dynamic && c.Method != core.MethodNonPrivate
		if (res.Ledger != nil) != wantLedger {
			t.Fatalf("%s/%s/%q: ledger %v, want %v", c.Runtime, c.Method, c.Plan, res.Ledger != nil, wantLedger)
		}
		prevEps := 0.0
		for _, rd := range res.Rounds {
			if rd.Active != pop.ActiveCount(rd.Round) {
				t.Fatalf("%s/%s/%q round %d: reported %d active, registry says %d",
					c.Runtime, c.Method, c.Plan, rd.Round, rd.Active, pop.ActiveCount(rd.Round))
			}
			if rd.Clients > rd.Active {
				t.Fatalf("%s/%s/%q round %d: folded %d updates from %d active clients",
					c.Runtime, c.Method, c.Plan, rd.Round, rd.Clients, rd.Active)
			}
			// ε discipline: committed rounds of a private method spend,
			// uncommitted rounds are exactly flat.
			if c.Method == core.MethodNonPrivate {
				if rd.Epsilon != 0 {
					t.Fatalf("%s/%q: non-private round %d spent ε %v", c.Runtime, c.Plan, rd.Round, rd.Epsilon)
				}
			} else if rd.Committed {
				if rd.Epsilon <= prevEps {
					t.Fatalf("%s/%q round %d: committed round did not grow ε (%v → %v)",
						c.Runtime, c.Plan, rd.Round, prevEps, rd.Epsilon)
				}
			} else if rd.Epsilon != prevEps {
				t.Fatalf("%s/%q round %d: uncommitted round moved ε %v → %v",
					c.Runtime, c.Plan, rd.Round, prevEps, rd.Epsilon)
			}
			prevEps = rd.Epsilon
		}
		if res.Ledger != nil {
			maxEps, _, _ := res.Ledger.MaxEpsilon()
			if maxEps != res.FinalEpsilon() {
				t.Fatalf("%s/%q: published ε %v is not the ledger max %v", c.Runtime, c.Plan, res.FinalEpsilon(), maxEps)
			}
		}
		key := coord{c.Scenario.String(), c.Method, c.Plan}
		if digests[key] == nil {
			digests[key] = map[string]uint64{}
		}
		digests[key][c.Runtime] = digestParams(res.Final.Params())
	}
	// Streaming and barrier fold the same committed model in every cell.
	for key, byRuntime := range digests {
		if len(byRuntime) != len(runtimes) {
			t.Fatalf("cell %+v ran on %d runtimes, want %d", key, len(byRuntime), len(runtimes))
		}
		if byRuntime[fl.RuntimeStreaming] != byRuntime[fl.RuntimeBarrier] {
			t.Fatalf("cell %+v: streaming and barrier disagree under an open-world plan", key)
		}
	}
}

func TestChurnMatrixReport(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	rep, err := Run("churn", Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	runtimes, scenarios, methods, plans := churnMatrixAxes()
	if want := len(runtimes) * len(scenarios) * len(methods) * len(plans); len(rep.Rows) != want {
		t.Fatalf("report has %d rows, want %d", len(rep.Rows), want)
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(rep.Header))
		}
		// Open-world private cells report the ledger columns; everything else
		// renders the closed-world dash.
		openWorld := row[0] != "closed"
		private := row[3] != core.MethodNonPrivate
		if openWorld && private {
			if row[8] == "-" || row[9] == "-" {
				t.Fatalf("open-world private row %v missing ledger columns", row)
			}
		} else if row[8] != "-" || row[9] != "-" {
			t.Fatalf("closed-world or non-private row %v reports ledger columns", row)
		}
	}
}
