package experiments

import (
	"fmt"

	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

// The fault-sensitivity matrix: {runtime × scenario × method × fault plan}
// swept through core.Run's in-process fault injection. Every cell is a
// deterministic faulted federated run; the invariants the sweep must
// uphold (quorum honored, ε accounting monotone, streaming ↔ barrier
// parity under every plan, fold/drop conservation) are asserted by
// faults_test.go, which CI runs under the race detector — the scenario
// matrix is the simnet layer's standing integration test, and cmd/tables
// renders it as the fault-sensitivity table.

// faultMatrixQuorum is the minimum folded updates per committed round in
// every cell — low enough that moderate plans still commit, high enough
// that heavy plans exercise the below-quorum path.
const faultMatrixQuorum = 2

// FaultCell is one cell of the fault matrix: its coordinates and the
// completed run.
type FaultCell struct {
	Runtime  string
	Scenario dataset.Scenario
	Method   string
	Plan     string // fault-plan grammar; "" = clean
	Result   *core.Result
}

// faultMatrixAxes returns the swept axes. Plans escalate from clean
// through churn to an aggressive mix of drops, crashes and restarts.
func faultMatrixAxes() (runtimes []string, scenarios []dataset.Scenario, methods, plans []string) {
	runtimes = []string{fl.RuntimeStreaming, fl.RuntimeBarrier}
	scenarios = []dataset.Scenario{{}, {Name: "dirichlet", Alpha: 0.1}}
	methods = []string{core.MethodNonPrivate, core.MethodFedCDP, core.MethodFedSDPSrv}
	plans = []string{"", "drop=0.2", "drop=0.2,crash=2,restart=1", "drop=0.5,crash=4,restart=2"}
	return
}

// faultCellConfig is the small-but-real configuration every cell runs:
// large enough that quorum, drops and restarts all have teeth, small
// enough that the full 48-cell sweep stays test-suite fast.
func faultCellConfig(o Options, cell FaultCell) core.Config {
	return core.Config{
		Dataset: "cancer",
		Method:  cell.Method,
		K:       10, Kt: 4,
		Rounds:      o.n(3, 3),
		LocalIters:  2,
		Sigma:       0.06,
		Seed:        o.Seed,
		ValExamples: o.n(60, 40),
		EvalEvery:   1,
		MinQuorum:   faultMatrixQuorum,
		Runtime:     cell.Runtime,
		Scenario:    cell.Scenario,
		Faults:      cell.Plan,
		NoiseEngine: o.NoiseEngine,
		Precision:   o.Precision,
		Codec:       o.Codec,
	}
}

// RunFaultMatrix executes the full sweep and returns every cell with its
// run attached (the structured form faults_test.go asserts invariants
// over; FaultMatrix renders the same cells as a Report).
func RunFaultMatrix(o Options) ([]FaultCell, error) {
	o = o.withDefaults()
	runtimes, scenarios, methods, plans := faultMatrixAxes()
	var cells []FaultCell
	for _, rt := range runtimes {
		for _, sc := range scenarios {
			for _, m := range methods {
				for _, plan := range plans {
					cell := FaultCell{Runtime: rt, Scenario: sc, Method: m, Plan: plan}
					res, err := core.Run(faultCellConfig(o, cell))
					if err != nil {
						return nil, fmt.Errorf("faults %s/%s/%s/%q: %w", rt, sc, m, plan, err)
					}
					cell.Result = res
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells, nil
}

// FaultMatrix is the "faults" experiment driver: the fault-sensitivity
// table of the federation runtime — how many updates each plan costs, how
// often rounds miss quorum, and what that does to accuracy and ε, per
// runtime, scenario and method.
func FaultMatrix(o Options) (*Report, error) {
	cells, err := RunFaultMatrix(o)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:   "faults",
		Title:  "Fault sensitivity: {runtime × scenario × method × fault plan} (cancer benchmark)",
		Header: []string{"plan", "runtime", "scenario", "method", "folded", "dropped", "uncommitted", "acc", "eps"},
		Notes: []string{
			fmt.Sprintf("every round needs ≥ %d folded updates to commit; uncommitted rounds leave the model unchanged", faultMatrixQuorum),
			"plans are deterministic per seed (simnet grammar: drop=p update loss, crash=n mid-round crashes, restart=n server restarts)",
			"streaming and barrier rows are bit-identical by construction — divergence is a runtime bug (asserted in faults_test.go)",
		},
	}
	for _, c := range cells {
		folded, dropped, uncommitted := 0, 0, 0
		for _, rd := range c.Result.Rounds {
			folded += rd.Clients
			dropped += rd.Dropped
			if !rd.Committed {
				uncommitted++
			}
		}
		plan := c.Plan
		if plan == "" {
			plan = "none"
		}
		scenario := c.Scenario.String()
		if c.Scenario.Name == "" {
			scenario = "iid"
		}
		r.Rows = append(r.Rows, []string{
			plan,
			c.Runtime,
			scenario,
			c.Method,
			fmt.Sprint(folded),
			fmt.Sprint(dropped),
			fmt.Sprint(uncommitted),
			f3ok(c.Result.FinalAccuracy()),
			f4(c.Result.FinalEpsilon()),
		})
	}
	return r, nil
}
