package experiments

import (
	"fedcdp/internal/config"
	"fedcdp/internal/dataset"
)

// FromExperiment derives driver options from a declarative experiment
// config (see internal/config): the axes the experiment drivers expose —
// scale, seed, runtime, engines, codec, scenario, aggregation — plus the
// config's canonical digest, which Run stamps into every report so table
// output can be traced back to the exact config that produced it.
func FromExperiment(e *config.Experiment) Options {
	return Options{
		Scale:        e.Experiment.Scale,
		Seed:         e.Seed,
		Runtime:      e.Runtime.Name,
		NoiseEngine:  e.Method.NoiseEngine,
		Precision:    e.Model.Precision,
		Codec:        e.Codec.Wire,
		Scenario:     dataset.Scenario{Name: e.Data.Scenario, Alpha: e.Data.Alpha, Shards: e.Data.Shards},
		Aggregation:  e.Aggregation.Rule,
		Shards:       e.Aggregation.Shards,
		TreeFanout:   e.Aggregation.TreeFanout,
		Sampler:      e.Aggregation.Sampler,
		ConfigDigest: e.Digest(),
	}
}
