package experiments

import (
	"fmt"

	"fedcdp/internal/attack"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

// Attack experiment machinery. A victim client runs the paper's first local
// iteration (where gradients leak the most, Section VII-C); the adversary
// observes the gradients each threat type exposes under each defense and
// runs the gradient-matching reconstruction attack.

const (
	attackHidden = 32
	attackSigma  = 6
	attackClip   = 4
	decayClip0   = 6 // decay schedule bound at round 0
)

// attackModel returns the victim MLP for a benchmark (see DESIGN.md for the
// CNN→MLP substitution note).
func attackModel(spec dataset.Spec, seed int64) *attack.MLP {
	return attack.NewMLP([]int{spec.Features, attackHidden, spec.Classes}, attack.ActSigmoid, tensor.NewRNG(seed))
}

// leakType2 returns the per-example gradient a type-2 adversary observes
// under the given method.
func leakType2(m *attack.MLP, x *tensor.Tensor, label int, method string, rng *tensor.RNG) (gw, gb []*tensor.Tensor) {
	_, gw, gb = m.Gradients(x, label)
	switch method {
	case "fed-cdp":
		dp.Sanitize(dp.JoinGrads(gw, gb), attackClip, attackSigma, rng)
	case "fed-cdp(decay)":
		dp.Sanitize(dp.JoinGrads(gw, gb), decayClip0, attackSigma, rng)
	}
	// non-private, fed-sdp, dssgd: per-example gradients leak raw.
	return gw, gb
}

// leakType01 returns the batched round update a type-0/1 adversary observes:
// the mean gradient of one local batch, post any per-client mechanism.
func leakType01(m *attack.MLP, xs []*tensor.Tensor, labels []int, method string, rng *tensor.RNG) (gw, gb []*tensor.Tensor) {
	L := m.Layers()
	gw = make([]*tensor.Tensor, L)
	gb = make([]*tensor.Tensor, L)
	for l := 0; l < L; l++ {
		gw[l] = tensor.New(m.Sizes[l+1], m.Sizes[l])
		gb[l] = tensor.New(m.Sizes[l+1])
	}
	inv := 1 / float64(len(xs))
	for j, x := range xs {
		_, w, b := m.Gradients(x, labels[j])
		if method == "fed-cdp" {
			dp.Sanitize(dp.JoinGrads(w, b), attackClip, attackSigma, rng)
		}
		if method == "fed-cdp(decay)" {
			dp.Sanitize(dp.JoinGrads(w, b), decayClip0, attackSigma, rng)
		}
		for l := 0; l < L; l++ {
			gw[l].AddScaled(inv, w[l])
			gb[l].AddScaled(inv, b[l])
		}
	}
	switch method {
	case "fed-sdp": // client-side sanitization of the shared update
		dp.Sanitize(dp.JoinGrads(gw, gb), attackClip, attackSigma, rng)
	case "dssgd":
		dp.Compress(dp.JoinGrads(gw, gb), 0.9) // share top 10%
	}
	return gw, gb
}

// attackStats aggregates reconstruction attempts.
type attackStats struct {
	successes int
	attempts  int
	sumDist   float64
	sumIters  int
}

func (s *attackStats) add(r attack.Result) {
	s.attempts++
	if r.Revealed {
		s.successes++
	}
	s.sumDist += r.Distance
	s.sumIters += r.Iterations
}

func (s attackStats) row() (success string, dist, iters string) {
	n := float64(s.attempts)
	return yn(s.successes*2 >= s.attempts), f4(s.sumDist / n), fmt.Sprintf("%d", s.sumIters/s.attempts)
}

// Table7 reproduces Table VII: attack effectiveness on MNIST and LFW across
// defenses, averaged over clients, with the 300-iteration attack budget.
func Table7(o Options) (*Report, error) {
	o = o.withDefaults()
	nClients := o.n(5, 2)
	maxIters := o.n(300, 60)
	methods := []string{"non-private", "fed-sdp", "fed-cdp", "fed-cdp(decay)"}

	r := &Report{
		Name:   "table7",
		Title:  fmt.Sprintf("Attack effectiveness, avg of %d clients, max %d attack iterations", nClients, maxIters),
		Header: []string{"dataset", "type", "method", "succeed", "succ(paper)", "distance", "dist(paper)", "iters", "iters(paper)"},
		Notes: []string{
			"expected shape: non-private leaks everywhere; Fed-SDP stops type-0&1 but NOT type-2; Fed-CDP(+decay) stops all",
			"distances: success => small, failure => large; decay > cdp (stronger masking)",
		},
	}

	for _, dsName := range []string{"mnist", "lfw"} {
		spec, err := dataset.Get(dsName)
		if err != nil {
			return nil, err
		}
		ds, err := o.newDataset(spec)
		if err != nil {
			return nil, err
		}
		for _, typ := range []string{"type01", "type2"} {
			for _, method := range methods {
				var st attackStats
				for c := 0; c < nClients; c++ {
					m := attackModel(spec, o.Seed+int64(c))
					cd := ds.Client(c)
					noise := tensor.Split(o.Seed, 7, int64(c))
					cfg := attack.Config{MaxIters: maxIters, Seed: o.Seed + int64(100+c)}
					var res attack.Result
					if typ == "type2" {
						x, y := cd.Get(0)
						gw, gb := leakType2(m, x, y, method, noise)
						label := attack.InferLabel(gb[m.Layers()-1])
						res = attack.Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x}, cfg)
					} else {
						const B = 3
						xs := make([]*tensor.Tensor, B)
						ys := make([]int, B)
						for j := 0; j < B; j++ {
							xs[j], ys[j] = cd.Get(j)
						}
						gw, gb := leakType01(m, xs, ys, method, noise)
						res = attack.Reconstruct(m, gw, gb, ys, xs, cfg)
					}
					st.add(res)
				}
				succ, dist, iters := st.row()
				key := dsName + "-" + map[string]string{"type01": "type01", "type2": "type2"}[typ]
				p := paperTable7[key][method]
				r.Rows = append(r.Rows, []string{
					dsName, typ, method,
					succ, yn(p.Succeed),
					dist, f4(p.Distance),
					iters, fmt.Sprint(p.Iters),
				})
			}
		}
	}
	return r, nil
}

// Fig1 reproduces Figure 1b: gradient leakage succeeds on non-private FL for
// all three image benchmarks, via both batched (type-0&1) and per-example
// (type-2) leakage.
func Fig1(o Options) (*Report, error) {
	o = o.withDefaults()
	maxIters := o.n(300, 60)
	r := &Report{
		Name:   "fig1",
		Title:  "Gradient leakage attacks on non-private FL (reconstruction demo)",
		Header: []string{"dataset", "leak", "succeed", "distance", "iters"},
		Notes: []string{
			"paper: all three types succeed by iteration ~50 with T=300; type-2 converges fastest",
			"examples/leakage renders the reconstructions as PGM images",
		},
	}
	for _, dsName := range []string{"mnist", "lfw", "cifar10"} {
		spec, err := dataset.Get(dsName)
		if err != nil {
			return nil, err
		}
		ds, err := o.newDataset(spec)
		if err != nil {
			return nil, err
		}
		m := attackModel(spec, o.Seed)
		cd := ds.Client(0)
		noise := tensor.Split(o.Seed, 8)
		cfg := attack.Config{MaxIters: maxIters, Seed: o.Seed}

		// Type-0&1 on a batch of 3.
		xs := make([]*tensor.Tensor, 3)
		ys := make([]int, 3)
		for j := range xs {
			xs[j], ys[j] = cd.Get(j)
		}
		gw, gb := leakType01(m, xs, ys, "non-private", noise)
		res := attack.Reconstruct(m, gw, gb, ys, xs, cfg)
		r.Rows = append(r.Rows, []string{dsName, "type-0&1 (B=3)", yn(res.Revealed), f4(res.Distance), fmt.Sprint(res.Iterations)})

		// Type-2 on one example.
		x, y := cd.Get(0)
		gw2, gb2 := leakType2(m, x, y, "non-private", noise)
		res2 := attack.Reconstruct(m, gw2, gb2, []int{attack.InferLabel(gb2[m.Layers()-1])}, []*tensor.Tensor{x}, cfg)
		r.Rows = append(r.Rows, []string{dsName, "type-2", yn(res2.Revealed), f4(res2.Distance), fmt.Sprint(res2.Iterations)})
	}
	return r, nil
}

// Fig4 reproduces Figure 4: visual resilience of each FL privacy module
// against the three leakage types on LFW, including the DSSGD baseline.
func Fig4(o Options) (*Report, error) {
	o = o.withDefaults()
	maxIters := o.n(300, 60)
	spec, err := dataset.Get("lfw")
	if err != nil {
		return nil, err
	}
	ds, err := o.newDataset(spec)
	if err != nil {
		return nil, err
	}
	m := attackModel(spec, o.Seed)
	cd := ds.Client(0)
	cfg := attack.Config{MaxIters: maxIters, Seed: o.Seed}

	r := &Report{
		Name:   "fig4",
		Title:  "Reconstruction distance by defense and leakage type (LFW)",
		Header: []string{"module", "type-0 dist", "type-1 dist", "type-2 dist"},
		Notes: []string{
			"expected shape: non-private and DSSGD vulnerable to all types (small distances);",
			"fed-sdp(client) blocks type-0&1 only; fed-sdp(server) blocks type-0 only; fed-cdp(+decay) block all",
		},
	}

	const B = 3
	xs := make([]*tensor.Tensor, B)
	ys := make([]int, B)
	for j := 0; j < B; j++ {
		xs[j], ys[j] = cd.Get(j)
	}
	x0, y0 := cd.Get(0)

	type module struct {
		name          string
		method01      string // method semantics for the shared update
		serverOnly    bool   // sanitization happens only at the server (type-1 raw)
		type2Sanitize string
		mask          bool
	}
	modules := []module{
		{"non-private", "non-private", false, "non-private", false},
		{"dssgd", "dssgd", false, "non-private", true},
		{"fed-sdp(client)", "fed-sdp", false, "fed-sdp", false},
		{"fed-sdp(server)", "fed-sdp", true, "fed-sdp", false},
		{"fed-cdp", "fed-cdp", false, "fed-cdp", false},
		{"fed-cdp(decay)", "fed-cdp(decay)", false, "fed-cdp(decay)", false},
	}
	for _, mod := range modules {
		noise := tensor.Split(o.Seed, 9)
		acfg := cfg
		acfg.MaskNonzero = mod.mask

		// Type-0: server view (always post-sanitization).
		gw, gb := leakType01(m, xs, ys, mod.method01, noise)
		type0 := attack.Reconstruct(m, gw, gb, ys, xs, acfg)

		// Type-1: client view; server-only sanitization leaks raw updates.
		method1 := mod.method01
		if mod.serverOnly {
			method1 = "non-private"
		}
		gw1, gb1 := leakType01(m, xs, ys, method1, tensor.Split(o.Seed, 10))
		type1 := attack.Reconstruct(m, gw1, gb1, ys, xs, acfg)

		// Type-2: per-example view during training.
		gw2, gb2 := leakType2(m, x0, y0, mod.type2Sanitize, tensor.Split(o.Seed, 11))
		t2cfg := cfg // per-example gradients are dense; no mask
		type2 := attack.Reconstruct(m, gw2, gb2, []int{y0}, []*tensor.Tensor{x0}, t2cfg)

		r.Rows = append(r.Rows, []string{
			mod.name, f4(type0.Distance), f4(type1.Distance), f4(type2.Distance),
		})
	}
	return r, nil
}

// Fig5 reproduces Figure 5: accuracy and type-2 resilience under
// communication-efficient federated learning (gradient pruning).
func Fig5(o Options) (*Report, error) {
	o = o.withDefaults()
	ratios := []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7}
	if o.Scale < 1 { // quick mode: endpoints and the paper's 30% point
		ratios = []float64{0, 0.3, 0.7}
	}
	methods := []string{core.MethodNonPrivate, core.MethodFedSDP, core.MethodFedCDP, core.MethodFedCDPDecay}
	maxIters := o.n(300, 60)

	r := &Report{
		Name:   "fig5",
		Title:  "Communication-efficient FL: accuracy and type-2 attack distance by prune ratio (MNIST)",
		Header: []string{"method", "metric"},
		Notes: []string{
			"paper: compressed non-private/Fed-SDP gradients still leak up to ~30% compression;",
			"Fed-CDP is resilient at all ratios and Fed-CDP(decay) the most resilient",
		},
	}
	for _, ratio := range ratios {
		r.Header = append(r.Header, fmt.Sprintf("prune=%.0f%%", ratio*100))
	}

	spec, err := dataset.Get("mnist")
	if err != nil {
		return nil, err
	}
	ds, err := o.newDataset(spec)
	if err != nil {
		return nil, err
	}
	m := attackModel(spec, o.Seed)
	x0, y0 := ds.Client(0).Get(0)

	for _, method := range methods {
		accRow := []string{methodLabel(method), "accuracy"}
		distRow := []string{methodLabel(method), "t2-attack-dist"}
		for _, ratio := range ratios {
			cfg := runCfg(o, "mnist", method)
			cfg.K, cfg.Kt = o.n(20, 8), o.n(8, 4)
			cfg.CompressRatio = ratio
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s ratio %.1f: %w", method, ratio, err)
			}
			accRow = append(accRow, f3ok(res.FinalAccuracy()))

			// Type-2 attack on the compressed per-example gradient.
			noise := tensor.Split(o.Seed, 12, int64(ratio*100))
			gw, gb := leakType2(m, x0, y0, methodLabel(method), noise)
			dp.Compress(dp.JoinGrads(gw, gb), ratio)
			ares := attack.Reconstruct(m, gw, gb, []int{y0}, []*tensor.Tensor{x0},
				attack.Config{MaxIters: maxIters, Seed: o.Seed, MaskNonzero: ratio > 0})
			distRow = append(distRow, f4(ares.Distance))
		}
		r.Rows = append(r.Rows, accRow, distRow)
	}
	return r, nil
}
