package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the perf regression gate: it replays the recorded
// BENCH_*.json baselines by shelling out to `go test -bench`, compares the
// median ns/op of each benchmark against the recorded number, and fails
// with a per-benchmark diff when a median regresses past the threshold.
// `tables -exp bench` is the CLI surface; CI runs it on every push (see
// DESIGN.md, "Experiment configs", for the thresholds and their
// rationale).

// BenchSpec maps one recorded baseline file onto the go-test invocation
// that regenerates its numbers.
type BenchSpec struct {
	File    string // baseline JSON, relative to the repo root
	Pattern string // -bench regexp selecting the recorded benchmarks
	Pkg     string // package dir relative to the repo root
}

// BenchSpecs lists every recorded perf baseline in the repository.
func BenchSpecs() []BenchSpec {
	return []BenchSpec{
		{"BENCH_partition.json", "^BenchmarkPartition$", "./internal/dataset"},
		{"BENCH_sanitize.json", "^(BenchmarkSanitize|BenchmarkNoiseEngine)$", "."},
		{"BENCH_simnet.json", "^BenchmarkSimnetRounds$", "."},
		{"BENCH_wire.json", "^BenchmarkWire$", "./internal/fl"},
		{"BENCH_scale.json", "^BenchmarkSimnetScale$", "."},
		{"BENCH_robust.json", "^BenchmarkRobustAgg$", "."},
		{"BENCH_churn.json", "^BenchmarkChurn$", "."},
	}
}

// benchBaseline is the on-disk BENCH_*.json schema. Field order mirrors
// the checked-in files so -update rewrites stay reviewable.
type benchBaseline struct {
	Comment    string       `json:"comment"`
	Go         string       `json:"go,omitempty"`
	Cores      int          `json:"cores,omitempty"`
	Dataset    string       `json:"dataset,omitempty"`
	Model      string       `json:"model,omitempty"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// Derived/auxiliary columns recorded by some baselines; they are
	// informational and are NOT rewritten by -update (regenerate manually
	// per the file's comment when they matter).
	WireBytes    *float64 `json:"wire_bytes,omitempty"`
	AllocsPerOp  *float64 `json:"allocs_per_op,omitempty"`
	RoundsPerSec *float64 `json:"rounds_per_sec,omitempty"`
	FoldsPerSec  *float64 `json:"folds_per_sec,omitempty"`
	Note         string   `json:"note,omitempty"`
}

// BenchOptions configures one regression-gate run.
type BenchOptions struct {
	// Root is the repository root holding the BENCH_*.json files and the
	// benchmark packages ("" = current directory).
	Root string
	// Threshold is the allowed fractional slowdown of the median before
	// the gate fails; 0 means DefaultBenchThreshold.
	Threshold float64
	// Count is how many times each benchmark runs (median taken); 0 = 3.
	Count int
	// Benchtime is the -benchtime value; "" = "1x" (CI smoke cadence).
	Benchtime string
	// Update rewrites each baseline's ns_per_op with the new medians
	// instead of failing on regression.
	Update bool
	// Only restricts the run to baselines whose file name contains the
	// substring (e.g. "wire"); "" runs every baseline.
	Only string
	// Out receives the per-benchmark report; nil discards it.
	Out io.Writer
}

// DefaultBenchThreshold is the fractional median slowdown the gate
// tolerates. Single-shot (-benchtime=1x) medians on shared CI runners are
// noisy; 50% headroom keeps the gate quiet on scheduler jitter while still
// catching the step-function regressions the baselines exist to pin
// (see DESIGN.md).
const DefaultBenchThreshold = 0.50

// RunBench replays every recorded baseline and compares medians. It
// returns ok=false (with a full per-benchmark report on o.Out) when any
// benchmark regresses past the threshold or disappears from the bench
// output; infrastructure failures (go test erroring, unparseable output)
// return an error instead.
func RunBench(o BenchOptions) (bool, error) {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Threshold == 0 {
		o.Threshold = DefaultBenchThreshold
	}
	if o.Count <= 0 {
		o.Count = 3
	}
	if o.Benchtime == "" {
		o.Benchtime = "1x"
	}
	root := o.Root
	if root == "" {
		root = "."
	}
	ok := true
	for _, spec := range BenchSpecs() {
		if o.Only != "" && !strings.Contains(spec.File, o.Only) {
			continue
		}
		sok, err := runBenchSpec(spec, o, root)
		if err != nil {
			return false, fmt.Errorf("%s: %w", spec.File, err)
		}
		ok = ok && sok
	}
	return ok, nil
}

func runBenchSpec(spec BenchSpec, o BenchOptions, root string) (bool, error) {
	path := filepath.Join(root, spec.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return false, fmt.Errorf("parsing baseline: %w", err)
	}

	out, err := goBench(root, spec.Pkg, spec.Pattern, o.Benchtime, o.Count)
	if err != nil {
		return false, err
	}
	medians, err := medianNsPerOp(out)
	if err != nil {
		return false, err
	}

	fmt.Fprintf(o.Out, "%s (%s %s, median of %d at -benchtime=%s, threshold +%.0f%%)\n",
		spec.File, spec.Pkg, spec.Pattern, o.Count, o.Benchtime, o.Threshold*100)
	ok := true
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		got, found := lookupBench(medians, b.Name)
		if !found {
			ok = false
			fmt.Fprintf(o.Out, "  FAIL  %-55s recorded %12.0f ns/op, but the benchmark produced no result\n", b.Name, b.NsPerOp)
			continue
		}
		delta := (got - b.NsPerOp) / b.NsPerOp
		status := "ok"
		if delta > o.Threshold {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(o.Out, "  %-4s  %-55s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", status, b.Name, b.NsPerOp, got, delta*100)
		if o.Update {
			b.NsPerOp = got
		}
	}
	// Benchmarks the pattern now produces but the baseline never recorded:
	// surface them so additions don't silently escape the gate.
	recorded := map[string]bool{}
	for _, b := range base.Benchmarks {
		recorded[b.Name] = true
	}
	var extra []string
	for name := range medians {
		if !recorded[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(o.Out, "  note  %-55s %12.0f ns/op (unrecorded — add to %s)\n", name, medians[name], spec.File)
	}

	if o.Update {
		buf, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return false, err
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return false, err
		}
		fmt.Fprintf(o.Out, "  updated %s\n", spec.File)
		return true, nil
	}
	return ok, nil
}

// goBench shells out to the toolchain. -cpu=1 matches the single-core
// recording convention of every baseline (cores: 1) and keeps benchmark
// names suffix-free.
func goBench(root, pkg, pattern, benchtime string, count int) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "-cpu", "1", pkg)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench %s %s: %v\n%s", pattern, pkg, err, out)
	}
	return out, nil
}

// benchLine matches one testing.B result line: name, iteration count,
// ns/op. Auxiliary metrics after ns/op are ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parseBenchOutput collects every ns/op sample per benchmark name from go
// test -bench output (count runs produce count lines per name).
func parseBenchOutput(out []byte) map[string][]float64 {
	samples := map[string][]float64{}
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	return samples
}

// medianNsPerOp reduces the samples to a per-benchmark median.
func medianNsPerOp(out []byte) (map[string]float64, error) {
	samples := parseBenchOutput(out)
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark results in output:\n%s", out)
	}
	medians := make(map[string]float64, len(samples))
	for name, vs := range samples {
		medians[name] = median(vs)
	}
	return medians, nil
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// lookupBench finds a recorded name in the measured medians, tolerating
// the -N GOMAXPROCS suffix testing appends when not forced to one core.
func lookupBench(medians map[string]float64, name string) (float64, bool) {
	if v, ok := medians[name]; ok {
		return v, true
	}
	suffix := regexp.MustCompile(`-\d+$`)
	for got, v := range medians {
		if suffix.ReplaceAllString(got, "") == name {
			return v, true
		}
	}
	return 0, false
}
