package experiments

import (
	"reflect"
	"testing"

	"fedcdp/internal/config"
)

// TestGoldenAttackMatrixConfig pins configs/attack-matrix.yaml to the PR 8
// attack×defense sweep: the config file must derive exactly the Options the
// flag path (`tables -exp byzantine -seed 42`) builds, and running both
// must produce cell-for-cell identical reports — the config digest rides
// the report as pure metadata.
func TestGoldenAttackMatrixConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("double attack-matrix sweep skipped in -short")
	}
	e, err := config.Load("../../configs/attack-matrix.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Experiment.Name != "byzantine" {
		t.Fatalf("experiment %q, want byzantine", e.Experiment.Name)
	}

	fromFile := FromExperiment(e)
	fromFlags := Options{Seed: 42, Scale: 1}
	if fromFile.ConfigDigest != e.Digest() {
		t.Fatalf("options digest %q, want %q", fromFile.ConfigDigest, e.Digest())
	}
	stripped := fromFile
	stripped.ConfigDigest = ""
	if !reflect.DeepEqual(stripped, fromFlags) {
		t.Fatalf("config file derives different options than the flags:\nfile:  %+v\nflags: %+v", stripped, fromFlags)
	}

	rFile, err := Run(e.Experiment.Name, fromFile)
	if err != nil {
		t.Fatal(err)
	}
	rFlags, err := Run("byzantine", fromFlags)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rFile.Rows, rFlags.Rows) {
		t.Fatal("config-driven sweep produced different cells than the flag-driven sweep")
	}
	if rFile.ConfigDigest != e.Digest() {
		t.Fatalf("report digest %q, want %q", rFile.ConfigDigest, e.Digest())
	}
	if rFlags.ConfigDigest != "" {
		t.Fatalf("flag-driven report carries digest %q, want none", rFlags.ConfigDigest)
	}
}
