package experiments

import (
	"math"

	"fedcdp/internal/dataset"
)

// Options controls the effort level of every experiment driver.
//
// Scale = 1 is the harness default: parameters are reduced from the paper's
// GPU-scale setup (K up to 10,000 clients, T·L = 10,000 SGD steps per
// dataset) to CPU-friendly sizes while preserving every comparison the
// paper makes. Larger scales move toward the paper's setup; Scale has no
// effect on Table VI, which is a pure computation run at exact paper
// parameters.
type Options struct {
	Scale float64
	Seed  int64
	// Runtime selects fl's round orchestration for every training-based
	// experiment: "" / fl.RuntimeStreaming (default) or fl.RuntimeBarrier.
	// Deterministic folding makes the two produce identical reports on
	// seeded runs — running the suite under both is a whole-system parity
	// check of the streaming runtime.
	Runtime string
	// NoiseEngine selects the DP noise source for every training-based
	// experiment: "" / fl.NoiseCounter (default, parallel) or
	// fl.NoiseReference, the sequential stream kept as the parity oracle.
	NoiseEngine string
	// Precision selects the client GEMM arithmetic width for every
	// training-based experiment: "" / tensor.PrecisionFP64 (default, the
	// reference oracle) or tensor.PrecisionFP32, the bulk float32 path.
	// Running the suite under both is a whole-system tolerance check of
	// the fp32 engine (see DESIGN.md, "Precision").
	Precision string
	// Codec selects fl's wire encoding for every training-based
	// experiment: "" / fl.CodecGob (default, the parity oracle) or
	// fl.CodecBinary, the framed binary codec (see DESIGN.md, "Wire
	// codec").
	Codec string
	// Scenario selects the data-heterogeneity scenario every training and
	// attack driver partitions its benchmark with (see dataset.Scenario).
	// The zero value is the paper's Table I partition, under which every
	// report reproduces its pre-scenario-engine output bit-for-bit.
	Scenario dataset.Scenario
	// Aggregation selects fl's server rule for training drivers: "" /
	// fl.AggFedSGD, fl.AggFedAvg, or fl.AggWeighted (example-count-weighted
	// FedAvg, the rule matched to quantity-skewed scenarios).
	Aggregation string
	// Shards selects the aggregation topology for training drivers: 0
	// (default) keeps the legacy flat float fold, 1 the flat exact fold,
	// ≥2 the in-process aggregation tree — exact, so any shard count
	// reports identically to Shards=1 (see DESIGN.md, "Hierarchical
	// aggregation").
	Shards int
	// TreeFanout bounds the tree's partial compose fan-in (0 = all).
	TreeFanout int
	// Sampler selects cohort sampling for training drivers: "" /
	// fl.SamplerLegacy (default, golden-pinned) or fl.SamplerFloyd.
	Sampler string
	// ConfigDigest is the canonical digest of the declarative experiment
	// config these options were derived from (see internal/config); Run
	// stamps it into the report. Empty for flag-assembled options.
	ConfigDigest string
}

// newDataset builds the benchmark partitioned by the options' scenario.
func (o Options) newDataset(spec dataset.Spec) (*dataset.Dataset, error) {
	p, err := o.Scenario.Partitioner()
	if err != nil {
		return nil, err
	}
	return dataset.NewPartitioned(spec, o.Seed, p), nil
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// n scales a base count by Scale with a floor.
func (o Options) n(base, min int) int {
	v := int(math.Round(float64(base) * o.Scale))
	if v < min {
		return min
	}
	return v
}

// Paper-reported values used for side-by-side comparison in reports.
var (
	// Table I: non-private accuracy and ms/iteration.
	paperNonPrivateAcc  = map[string]float64{"mnist": 0.9798, "cifar10": 0.674, "lfw": 0.695, "adult": 0.8424, "cancer": 0.993}
	paperNonPrivateCost = map[string]float64{"mnist": 6.8, "cifar10": 32.5, "lfw": 30.9, "adult": 5.1, "cancer": 4.9}

	// Table III: ms per local iteration per client.
	paperTable3 = map[string]map[string]float64{
		"non-private":    {"mnist": 6.8, "cifar10": 32.5, "lfw": 30.9, "adult": 5.1, "cancer": 5.1},
		"fed-sdp":        {"mnist": 6.9, "cifar10": 33.8, "lfw": 31.3, "adult": 5.2, "cancer": 5.1},
		"fed-cdp":        {"mnist": 22.4, "cifar10": 131.5, "lfw": 112.4, "adult": 11.8, "cancer": 11.9},
		"fed-cdp(decay)": {"mnist": 22.6, "cifar10": 132.1, "lfw": 114.6, "adult": 12.1, "cancer": 12.0},
	}

	// Table IV: Fed-CDP accuracy by clipping bound (σ=6).
	paperTable4 = map[string]map[float64]float64{
		"mnist":   {0.5: 0.914, 1: 0.934, 2: 0.943, 4: 0.949, 6: 0.933, 8: 0.923},
		"cifar10": {0.5: 0.408, 1: 0.568, 2: 0.602, 4: 0.633, 6: 0.624, 8: 0.611},
		"lfw":     {0.5: 0.582, 1: 0.594, 2: 0.619, 4: 0.649, 6: 0.627, 8: 0.601},
		"adult":   {0.5: 0.81, 1: 0.822, 2: 0.825, 4: 0.824, 6: 0.807, 8: 0.796},
		"cancer":  {0.5: 0.965, 1: 0.972, 2: 0.979, 4: 0.979, 6: 0.972, 8: 0.972},
	}

	// Table V: Fed-CDP accuracy by noise scale (C=4).
	paperTable5 = map[string]map[float64]float64{
		"mnist":   {0.5: 0.956, 1: 0.954, 2: 0.952, 4: 0.951, 6: 0.949, 8: 0.934},
		"cifar10": {0.5: 0.646, 1: 0.641, 2: 0.639, 4: 0.634, 6: 0.633, 8: 0.612},
		"lfw":     {0.5: 0.683, 1: 0.678, 2: 0.672, 4: 0.667, 6: 0.649, 8: 0.646},
		"adult":   {0.5: 0.838, 1: 0.837, 2: 0.836, 4: 0.834, 6: 0.824, 8: 0.822},
		"cancer":  {0.5: 0.993, 1: 0.993, 2: 0.993, 4: 0.993, 6: 0.979, 8: 0.979},
	}

	// Table VI: privacy spending ε (δ=1e-5), moments accountant.
	paperTable6CDP100 = map[string]float64{"mnist": 0.8227, "cifar10": 0.8227, "lfw": 0.6356, "adult": 0.2761, "cancer": 0.1469}
	paperTable6CDP1   = map[string]float64{"mnist": 0.0845, "cifar10": 0.0845, "lfw": 0.0689, "adult": 0.0494, "cancer": 0.0467}
	paperTable6SDP    = map[string]float64{"mnist": 0.8536, "cifar10": 0.8536, "lfw": 0.6677, "adult": 0.3025, "cancer": 0.2065}

	// Table VII: attack effectiveness (MNIST / LFW averages of 100 clients).
	paperTable7 = map[string]map[string]struct {
		Succeed  bool
		Distance float64
		Iters    int
	}{
		"mnist-type01": {
			"non-private":    {true, 0.1549, 6},
			"fed-sdp":        {false, 0.6991, 300},
			"fed-cdp":        {false, 0.7695, 300},
			"fed-cdp(decay)": {false, 0.937, 300},
		},
		"mnist-type2": {
			"non-private":    {true, 0.0008, 7},
			"fed-sdp":        {true, 0.0008, 7},
			"fed-cdp":        {false, 0.739, 300},
			"fed-cdp(decay)": {false, 0.943, 300},
		},
		"lfw-type01": {
			"non-private":    {true, 0.2214, 24},
			"fed-sdp":        {false, 0.7352, 300},
			"fed-cdp":        {false, 0.8036, 300},
			"fed-cdp(decay)": {false, 0.941, 300},
		},
		"lfw-type2": {
			"non-private":    {true, 0.0014, 25},
			"fed-sdp":        {true, 0.0014, 25},
			"fed-cdp":        {false, 0.6626, 300},
			"fed-cdp(decay)": {false, 0.945, 300},
		},
	}

	// Table II: accuracy on MNIST by K and Kt/K.
	paperTable2 = map[string]map[string]float64{
		"non-private":    {"100/5%": 0.924, "100/10%": 0.954, "100/20%": 0.959, "100/50%": 0.965, "1000/10%": 0.980, "10000/10%": 0.980},
		"fed-sdp":        {"100/5%": 0.803, "100/10%": 0.823, "100/20%": 0.834, "100/50%": 0.872, "1000/10%": 0.928, "10000/10%": 0.939},
		"fed-cdp":        {"100/5%": 0.815, "100/10%": 0.831, "100/20%": 0.858, "100/50%": 0.903, "1000/10%": 0.956, "10000/10%": 0.963},
		"fed-cdp(decay)": {"100/5%": 0.833, "100/10%": 0.842, "100/20%": 0.866, "100/50%": 0.909, "1000/10%": 0.975, "10000/10%": 0.978},
	}
)
