// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section VII). Each driver runs a scaled version of
// the experiment on the synthetic benchmark family and emits a Report whose
// rows carry both our measured values and the paper's reported values, so
// the reproduction shape (orderings, ratios, crossovers) can be checked at
// a glance. The same drivers back cmd/tables and the root bench harness.
//
// Options is the shared experiment surface. Scale trades fidelity for time
// (1 is the CPU-friendly default; larger approaches the paper's GPU-scale
// parameters; Table VI is a pure computation and ignores it). Seed roots
// every run. The engine switches mirror core.Config: Runtime (streaming vs
// barrier), NoiseEngine (counter vs reference), Scenario (the data-
// heterogeneity partition every training and attack driver applies), and
// Aggregation (FedSGD / FedAvg / weighted). Because deterministic folding
// makes the runtimes and noise engines bit-compatible on seeded runs,
// running the whole suite under a non-default switch is a whole-system
// parity check; running it under a non-default Scenario is the
// heterogeneity sweep the scenario engine exists for, and Run stamps each
// report with the scenario plus the realized per-client dataset statistics.
//
// Reports are pure values (text tables + notes); all nondeterminism in a
// driver is timing measurement (ms/iter columns). Everything else is a
// deterministic function of Options.
package experiments
