package experiments

import (
	"fmt"

	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

// The attack×defense matrix: {client behavior × robust aggregation rule ×
// DP method × heterogeneity scenario} swept through core.Run's seeded
// adversary injection — the fault matrix's hostile sibling. Every cell is
// a deterministic attacked federated run with full participation (K = Kt),
// so the attacker fraction per round is exactly the plan's, and the
// invariants faults_test.go asserts — honest-accuracy floors with zero
// attackers, robust folds bounded near the honest baseline while the plain
// mean breaks under scaled attacks, ε accounting blind to the adversary,
// streaming ↔ barrier bit-parity per cell — are the adversarial-robustness
// claims of the defense literature made executable. cmd/tables renders the
// sweep as the attack×defense table ("byzantine").

// attackClients is the cell population: K = Kt = 6, full participation,
// so "byzantine=2:…" means exactly 2 of 6 in every round — below the n/2
// median and the (n−2f−2) Krum breakdown points, above nothing a mean can
// survive.
const attackClients = 6

// AttackCell is one cell of the attack×defense matrix: its coordinates
// and the completed run.
type AttackCell struct {
	Behavior string // adversary plan clauses; "" = all-honest
	Defense  string // aggregation rule the server folds under
	Method   string
	Scenario dataset.Scenario
	Result   *core.Result
}

// attackMatrixAxes returns the swept axes. Behaviors escalate from honest
// through sign-flipping and scaled Byzantine updates to total label
// poisoning; defenses range from the undefended mean to the three robust
// folds, each parameterized to tolerate the 2-of-6 attackers.
func attackMatrixAxes() (behaviors, defenses, methods []string, scenarios []dataset.Scenario) {
	behaviors = []string{"", "byzantine=2:signflip", "byzantine=2:scale:25", "poison=2:1"}
	defenses = []string{fl.AggFedSGD, fl.AggMedian, "trimmed:0.34", "krum:2"}
	methods = []string{core.MethodNonPrivate, core.MethodFedCDP}
	scenarios = []dataset.Scenario{{}, {Name: "dirichlet", Alpha: 0.1}}
	return
}

// attackCellConfig is the configuration every cell runs: full
// participation so the attacker fraction is exact, and the same
// small-but-real cancer benchmark the fault matrix uses.
func attackCellConfig(o Options, cell AttackCell) core.Config {
	return core.Config{
		Dataset: "cancer",
		Method:  cell.Method,
		K:       attackClients, Kt: attackClients,
		Rounds:      o.n(3, 3),
		LocalIters:  2,
		Sigma:       0.06,
		Seed:        o.Seed,
		ValExamples: o.n(60, 40),
		EvalEvery:   1,
		MinQuorum:   1,
		Runtime:     o.Runtime,
		Scenario:    cell.Scenario,
		Faults:      cell.Behavior,
		Aggregation: cell.Defense,
		NoiseEngine: o.NoiseEngine,
		Precision:   o.Precision,
		Codec:       o.Codec,
	}
}

// RunAttackMatrix executes the full sweep and returns every cell with its
// run attached (the structured form faults_test.go asserts invariants
// over; AttackMatrix renders the same cells as a Report).
func RunAttackMatrix(o Options) ([]AttackCell, error) {
	o = o.withDefaults()
	behaviors, defenses, methods, scenarios := attackMatrixAxes()
	var cells []AttackCell
	for _, sc := range scenarios {
		for _, m := range methods {
			for _, def := range defenses {
				for _, beh := range behaviors {
					cell := AttackCell{Behavior: beh, Defense: def, Method: m, Scenario: sc}
					res, err := core.Run(attackCellConfig(o, cell))
					if err != nil {
						return nil, fmt.Errorf("byzantine %q/%s/%s/%s: %w", beh, def, m, sc, err)
					}
					cell.Result = res
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells, nil
}

// AttackMatrix is the "byzantine" experiment driver: the attack×defense
// table — what each client behavior does to accuracy under each
// aggregation rule, per DP method and heterogeneity scenario, with the
// honest baseline row inline for every defense.
func AttackMatrix(o Options) (*Report, error) {
	cells, err := RunAttackMatrix(o)
	if err != nil {
		return nil, err
	}
	// Honest baseline per (scenario, method, defense): the behavior="" cell.
	honest := map[string]float64{}
	key := func(c AttackCell) string {
		return c.Scenario.String() + "|" + c.Method + "|" + c.Defense
	}
	for _, c := range cells {
		if c.Behavior == "" {
			if acc, ok := c.Result.FinalAccuracy(); ok {
				honest[key(c)] = acc
			}
		}
	}
	r := &Report{
		Name:   "byzantine",
		Title:  fmt.Sprintf("Attack × defense: {behavior × aggregation × method × scenario}, %d clients, full participation (cancer benchmark)", attackClients),
		Header: []string{"behavior", "defense", "scenario", "method", "acc", "honest", "delta", "eps"},
		Notes: []string{
			"behaviors are seeded plan clauses: byzantine=n:mode corrupts n clients' updates (signflip negates, scale:λ multiplies), poison=n:rate flips n clients' training labels",
			"defenses parameterized for the 2-of-6 attackers: trimmed:0.34 cuts 2 per tail, krum:2 tolerates f=2",
			"honest is the same (defense, method, scenario) cell with no attackers; delta = acc − honest",
			"ε is identical down every column: privacy accounting is a function of sampling and noise, never of the adversary (asserted in faults_test.go)",
		},
	}
	for _, c := range cells {
		behavior := c.Behavior
		if behavior == "" {
			behavior = "none"
		}
		scenario := c.Scenario.String()
		if c.Scenario.Name == "" {
			scenario = "iid"
		}
		acc, accOK := c.Result.FinalAccuracy()
		base, baseOK := honest[key(c)]
		r.Rows = append(r.Rows, []string{
			behavior,
			c.Defense,
			scenario,
			c.Method,
			f3ok(acc, accOK),
			f3ok(base, baseOK),
			f3ok(acc-base, accOK && baseOK),
			f4(c.Result.FinalEpsilon()),
		})
	}
	return r, nil
}
