package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is a formatted experiment result: a titled table plus notes.
// Scenario names the data-heterogeneity scenario the experiment ran under
// ("" for the default Table I partition) and is set centrally by Run.
type Report struct {
	Name     string // experiment id, e.g. "table2"
	Title    string
	Scenario string
	// ConfigDigest names the declarative experiment config the report was
	// produced from (see internal/config); "" for flag-assembled runs.
	ConfigDigest string
	Header       []string
	Rows         [][]string
	Notes        []string
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", r.Name, r.Title)
	if r.Scenario != "" {
		fmt.Fprintf(w, "scenario: %s\n", r.Scenario)
	}
	if r.ConfigDigest != "" {
		fmt.Fprintf(w, "config: %s\n", r.ConfigDigest)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the report to a string.
func (r *Report) String() string {
	var b strings.Builder
	r.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f3ok/f1ok render History's (value, ok) metrics: a run that never
// evaluated (or never committed a client) prints "-" instead of a
// fabricated 0 — the sentinel-zero conflation these accessors fixed.
func f3ok(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return f3(v)
}

func f1ok(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return f1(v)
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}
