package nn

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

// numericalGradient computes dLoss/dTheta for every parameter scalar via
// central differences, used to validate analytic backprop.
func numericalGradient(m *Model, x *tensor.Tensor, label int, eps float64) [][]float64 {
	var out [][]float64
	for _, p := range m.Params() {
		g := make([]float64, p.Len())
		d := p.Data()
		for i := range d {
			orig := d[i]
			d[i] = orig + eps
			lp := m.Loss(x, label)
			d[i] = orig - eps
			lm := m.Loss(x, label)
			d[i] = orig
			g[i] = (lp - lm) / (2 * eps)
		}
		out = append(out, g)
	}
	return out
}

func checkGradients(t *testing.T, m *Model, x *tensor.Tensor, label int, tol float64) {
	t.Helper()
	_, analytic := m.ExampleGradient(x, label)
	numeric := numericalGradient(m, x, label, 1e-5)
	for pi, ng := range numeric {
		ad := analytic[pi].Data()
		for i, nv := range ng {
			diff := math.Abs(ad[i] - nv)
			scale := math.Max(1, math.Abs(nv))
			if diff/scale > tol {
				t.Fatalf("param %d[%d]: analytic %.8f vs numeric %.8f (diff %.2e)", pi, i, ad[i], nv, diff)
			}
		}
	}
}

func TestGradCheckDense(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := Build(Spec{Layers: []LayerSpec{
		{Kind: "dense", In: 6, Out: 4},
	}}, rng)
	x := tensor.New(6)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, m, x, 2, 1e-5)
}

func TestGradCheckMLPSigmoid(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := Build(Spec{Layers: []LayerSpec{
		{Kind: "dense", In: 8, Out: 10},
		{Kind: ActSigmoid},
		{Kind: "dense", In: 10, Out: 5},
		{Kind: ActSigmoid},
		{Kind: "dense", In: 5, Out: 3},
	}}, rng)
	x := tensor.New(8)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, m, x, 1, 1e-4)
}

func TestGradCheckMLPTanh(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := Build(Spec{Layers: []LayerSpec{
		{Kind: "dense", In: 5, Out: 7},
		{Kind: ActTanh},
		{Kind: "dense", In: 7, Out: 4},
	}}, rng)
	x := tensor.New(5)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, m, x, 0, 1e-4)
}

func TestGradCheckMLPReLU(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := Build(Spec{Layers: []LayerSpec{
		{Kind: "dense", In: 6, Out: 8},
		{Kind: ActReLU},
		{Kind: "dense", In: 8, Out: 3},
	}}, rng)
	x := tensor.New(6)
	// Keep activations away from the ReLU kink so the numeric check is valid.
	rng.FillNormal(x, 0, 1)
	checkGradients(t, m, x, 2, 1e-4)
}

func TestGradCheckConv(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := Build(Spec{Layers: []LayerSpec{
		{Kind: "conv2d", InC: 2, InH: 6, InW: 6, OutC: 3, K: 3, Stride: 1, Pad: 1},
		{Kind: ActSigmoid},
		{Kind: "flatten"},
		{Kind: "dense", In: 3 * 6 * 6, Out: 4},
	}}, rng)
	x := tensor.New(2, 6, 6)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, m, x, 1, 1e-4)
}

func TestGradCheckConvStridePad(t *testing.T) {
	rng := tensor.NewRNG(6)
	m := Build(Spec{Layers: []LayerSpec{
		{Kind: "conv2d", InC: 1, InH: 8, InW: 8, OutC: 2, K: 5, Stride: 2, Pad: 2},
		{Kind: ActTanh},
		{Kind: "flatten"},
		{Kind: "dense", In: 2 * 4 * 4, Out: 3},
	}}, rng)
	x := tensor.New(1, 8, 8)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, m, x, 0, 1e-4)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := tensor.NewRNG(7)
	m := Build(Spec{Layers: []LayerSpec{
		{Kind: "conv2d", InC: 1, InH: 8, InW: 8, OutC: 2, K: 3, Stride: 1, Pad: 1},
		{Kind: ActSigmoid},
		{Kind: "maxpool2", InC: 2, InH: 8, InW: 8},
		{Kind: "flatten"},
		{Kind: "dense", In: 2 * 4 * 4, Out: 3},
	}}, rng)
	x := tensor.New(1, 8, 8)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, m, x, 1, 1e-4)
}

func TestGradCheckPaperCNN(t *testing.T) {
	rng := tensor.NewRNG(8)
	m := Build(ImageCNN(1, 12, 12, 4), rng)
	x := tensor.New(1, 12, 12)
	rng.FillNormal(x, 0, 1)
	checkGradients(t, m, x, 2, 1e-4)
}

func TestInputGradientDense(t *testing.T) {
	// Validate dLoss/dx (needed by leakage attacks) against finite differences.
	rng := tensor.NewRNG(9)
	m := Build(Spec{Layers: []LayerSpec{
		{Kind: "dense", In: 5, Out: 6},
		{Kind: ActSigmoid},
		{Kind: "dense", In: 6, Out: 3},
	}}, rng)
	x := tensor.New(5)
	rng.FillNormal(x, 0, 1)
	label := 1

	m.ZeroGrads()
	logits := m.Forward(x)
	_, g := SoftmaxCrossEntropy(logits, label)
	dx := m.BackwardFromLoss(g)

	eps := 1e-6
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := m.Loss(x, label)
		x.Data()[i] = orig - eps
		lm := m.Loss(x, label)
		x.Data()[i] = orig
		want := (lp - lm) / (2 * eps)
		if math.Abs(dx.Data()[i]-want) > 1e-4 {
			t.Fatalf("dx[%d] = %v, numeric %v", i, dx.Data()[i], want)
		}
	}
}
