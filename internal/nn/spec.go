package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"fedcdp/internal/tensor"
)

// LayerSpec describes one layer in a serializable architecture definition.
type LayerSpec struct {
	Kind string // "dense", "conv2d", "maxpool2", "flatten", or an activation kind
	// Dense fields.
	In, Out int
	// Conv / pool fields.
	InC, OutC, K, Stride, Pad, InH, InW int
}

// Spec is a full architecture definition, buildable into a Model.
type Spec struct {
	Layers []LayerSpec
}

// Build constructs a model from spec with weights initialized from rng.
func Build(spec Spec, rng *tensor.RNG) *Model {
	m := &Model{spec: spec}
	for _, ls := range spec.Layers {
		switch ls.Kind {
		case "dense":
			m.Layers = append(m.Layers, NewDense(ls.In, ls.Out, rng))
		case "conv2d":
			m.Layers = append(m.Layers, NewConv2D(ls.InC, ls.InH, ls.InW, ls.OutC, ls.K, ls.Stride, ls.Pad, rng))
		case "maxpool2":
			m.Layers = append(m.Layers, NewMaxPool2(ls.InC, ls.InH, ls.InW))
		case "flatten":
			m.Layers = append(m.Layers, Flatten{})
		case ActReLU, ActSigmoid, ActTanh:
			m.Layers = append(m.Layers, NewActivation(ls.Kind))
		default:
			panic(fmt.Sprintf("nn: unknown layer kind %q", ls.Kind))
		}
	}
	return m
}

// ImageCNN returns the paper's image model: two convolutional layers and one
// fully connected layer (Section VII), sized for (c,h,w) inputs and the
// given class count.
func ImageCNN(c, h, w, classes int) Spec {
	// conv1: 8 filters, 5x5, stride 2, pad 2 -> (8, ~h/2, ~w/2)
	h1 := (h+2*2-5)/2 + 1
	w1 := (w+2*2-5)/2 + 1
	// conv2: 16 filters, 5x5, stride 2, pad 2
	h2 := (h1+2*2-5)/2 + 1
	w2 := (w1+2*2-5)/2 + 1
	return Spec{Layers: []LayerSpec{
		{Kind: "conv2d", InC: c, InH: h, InW: w, OutC: 8, K: 5, Stride: 2, Pad: 2},
		{Kind: ActReLU},
		{Kind: "conv2d", InC: 8, InH: h1, InW: w1, OutC: 16, K: 5, Stride: 2, Pad: 2},
		{Kind: ActReLU},
		{Kind: "flatten"},
		{Kind: "dense", In: 16 * h2 * w2, Out: classes},
	}}
}

// TabularMLP returns the paper's attribute-data model: a fully connected
// network with two hidden layers (Section VII).
func TabularMLP(features, hidden, classes int) Spec {
	return Spec{Layers: []LayerSpec{
		{Kind: "dense", In: features, Out: hidden},
		{Kind: ActReLU},
		{Kind: "dense", In: hidden, Out: hidden},
		{Kind: ActReLU},
		{Kind: "dense", In: hidden, Out: classes},
	}}
}

// savedModel is the gob wire format for Save/Load.
type savedModel struct {
	Spec   Spec
	Params [][]float64
	Shapes [][]int
}

// Save writes the model architecture and weights to w using encoding/gob.
func (m *Model) Save(w io.Writer) error {
	sm := savedModel{Spec: m.spec}
	for _, p := range m.Params() {
		sm.Params = append(sm.Params, append([]float64(nil), p.Data()...))
		sm.Shapes = append(sm.Shapes, append([]int(nil), p.Shape()...))
	}
	if err := gob.NewEncoder(w).Encode(sm); err != nil {
		return fmt.Errorf("nn: encoding model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	m := Build(sm.Spec, tensor.NewRNG(0))
	params := m.Params()
	if len(params) != len(sm.Params) {
		return nil, fmt.Errorf("nn: saved model has %d parameter tensors, architecture wants %d", len(sm.Params), len(params))
	}
	for i, p := range params {
		if p.Len() != len(sm.Params[i]) {
			return nil, fmt.Errorf("nn: parameter %d length mismatch: saved %d, want %d", i, len(sm.Params[i]), p.Len())
		}
		copy(p.Data(), sm.Params[i])
	}
	return m, nil
}

// Marshal serializes the model to bytes (gob).
func (m *Model) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes a model from bytes produced by Marshal.
func Unmarshal(b []byte) (*Model, error) {
	return Load(bytes.NewReader(b))
}
