package nn

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

const parityTol = 1e-9

// refModel/batchModel build two models with identical weights so the
// per-example reference path and the batched engine can be compared on the
// same parameters without cache interference.
func twinModels(spec Spec, seed int64) (ref, batch *Model) {
	ref = Build(spec, tensor.NewRNG(seed))
	batch = Build(spec, tensor.NewRNG(seed))
	batch.SetParams(ref.Params())
	return ref, batch
}

func randomBatch(rng *tensor.RNG, b, n, classes int) ([]*tensor.Tensor, []int) {
	xs := make([]*tensor.Tensor, b)
	ys := make([]int, b)
	for i := range xs {
		xs[i] = tensor.New(n)
		rng.FillUniform(xs[i], -1, 1)
		ys[i] = int(rng.Float64() * float64(classes))
	}
	return xs, ys
}

func maxAbsDiff(a, b []*tensor.Tensor) float64 {
	var m float64
	for i := range a {
		for j, v := range a[i].Data() {
			if d := math.Abs(v - b[i].Data()[j]); d > m {
				m = d
			}
		}
	}
	return m
}

// checkBatchParity asserts ForwardBatch/BackwardBatch/ExampleGrads/
// AccumGrads agree with the per-example Forward/Backward reference on a
// random batch, to parityTol.
func checkBatchParity(t *testing.T, spec Spec, inLen, classes int, seed int64) {
	t.Helper()
	ref, bm := twinModels(spec, seed)
	rng := tensor.NewRNG(seed + 100)
	const B = 4
	xs, ys := randomBatch(rng, B, inLen, classes)

	// Reference: per-example forward/backward with fresh buffers.
	refLoss := make([]float64, B)
	refGrads := make([][]*tensor.Tensor, B)
	refLogits := make([]*tensor.Tensor, B)
	refDx := make([]*tensor.Tensor, B)
	for i, x := range xs {
		ref.ZeroGrads()
		logits := ref.Forward(x)
		refLogits[i] = logits.Clone()
		loss, g := SoftmaxCrossEntropy(logits, ys[i])
		refLoss[i] = loss
		refDx[i] = ref.BackwardFromLoss(g).Clone()
		refGrads[i] = tensor.CloneAll(ref.Grads())
	}

	// Batched engine.
	xb := Stack(nil, nil, xs)
	logits := bm.ForwardBatch(xb)
	for i := range xs {
		for j, v := range refLogits[i].Data() {
			if d := math.Abs(v - logits.At(i, j)); d > parityTol {
				t.Fatalf("logits[%d][%d] differ by %v", i, j, d)
			}
		}
	}
	lossGrad := tensor.New(B, classes)
	losses := make([]float64, B)
	SoftmaxCrossEntropyBatch(lossGrad, losses, logits, ys)
	for i, l := range losses {
		if math.Abs(l-refLoss[i]) > parityTol {
			t.Fatalf("loss[%d] = %v, reference %v", i, l, refLoss[i])
		}
	}
	dx := bm.BackwardBatch(lossGrad)
	for i := range xs {
		for j, v := range refDx[i].Data() {
			if d := math.Abs(v - dx.At(i, j)); d > parityTol {
				t.Fatalf("input grad[%d][%d] differs by %v", i, j, d)
			}
		}
	}

	// Per-example recovery.
	scratch := tensor.ZerosLike(bm.Grads())
	for i := range xs {
		bm.ExampleGrads(i, scratch)
		if d := maxAbsDiff(scratch, refGrads[i]); d > parityTol {
			t.Fatalf("example %d recovered gradient differs by %v", i, d)
		}
	}

	// Batch-summed accumulation equals the sum of per-example gradients.
	bm.ZeroGrads()
	bm.AccumBatchGrads()
	want := tensor.ZerosLike(ref.Grads())
	for i := range xs {
		tensor.AddAllScaled(want, 1, refGrads[i])
	}
	if d := maxAbsDiff(bm.Grads(), want); d > parityTol {
		t.Fatalf("batch-summed gradients differ by %v", d)
	}
}

func TestBatchParityDense(t *testing.T) {
	spec := Spec{Layers: []LayerSpec{
		{Kind: "dense", In: 11, Out: 7},
		{Kind: ActReLU},
		{Kind: "dense", In: 7, Out: 4},
	}}
	checkBatchParity(t, spec, 11, 4, 1)
}

func TestBatchParityDenseSigmoidTanh(t *testing.T) {
	spec := Spec{Layers: []LayerSpec{
		{Kind: "dense", In: 9, Out: 8},
		{Kind: ActSigmoid},
		{Kind: "dense", In: 8, Out: 8},
		{Kind: ActTanh},
		{Kind: "dense", In: 8, Out: 3},
	}}
	checkBatchParity(t, spec, 9, 3, 2)
}

func TestBatchParityConv(t *testing.T) {
	spec := Spec{Layers: []LayerSpec{
		{Kind: "conv2d", InC: 2, InH: 8, InW: 8, OutC: 3, K: 3, Stride: 1, Pad: 1},
		{Kind: ActReLU},
		{Kind: "flatten"},
		{Kind: "dense", In: 3 * 8 * 8, Out: 5},
	}}
	checkBatchParity(t, spec, 2*8*8, 5, 3)
}

func TestBatchParityConvStridePad(t *testing.T) {
	spec := Spec{Layers: []LayerSpec{
		{Kind: "conv2d", InC: 1, InH: 9, InW: 7, OutC: 4, K: 5, Stride: 2, Pad: 2},
		{Kind: ActReLU},
		{Kind: "flatten"},
		{Kind: "dense", In: 4 * 5 * 4, Out: 3},
	}}
	checkBatchParity(t, spec, 9*7, 3, 4)
}

func TestBatchParityPool(t *testing.T) {
	spec := Spec{Layers: []LayerSpec{
		{Kind: "conv2d", InC: 1, InH: 8, InW: 8, OutC: 2, K: 3, Stride: 1, Pad: 1},
		{Kind: "maxpool2", InC: 2, InH: 8, InW: 8},
		{Kind: ActReLU},
		{Kind: "flatten"},
		{Kind: "dense", In: 2 * 4 * 4, Out: 4},
	}}
	checkBatchParity(t, spec, 64, 4, 5)
}

func TestBatchParityPaperCNN(t *testing.T) {
	checkBatchParity(t, ImageCNN(1, 14, 14, 10), 14*14, 10, 6)
}

func TestBatchParityWithArena(t *testing.T) {
	// Parity must survive arena-backed buffers and repeated invocation
	// (buffer reuse across iterations).
	spec := ImageCNN(1, 12, 12, 6)
	ref, bm := twinModels(spec, 9)
	arena := tensor.NewArena()
	bm.UseArena(arena)
	rng := tensor.NewRNG(99)
	scratch := tensor.ZerosLike(bm.Grads())
	for iter := 0; iter < 3; iter++ {
		xs, ys := randomBatch(rng, 3, 144, 6)
		refGrads := make([][]*tensor.Tensor, len(xs))
		for i, x := range xs {
			_, g := ref.ExampleGradient(x, ys[i])
			refGrads[i] = g
		}
		visited := 0
		bm.BatchGradients(xs, ys, scratch, func(i int, g []*tensor.Tensor) {
			if d := maxAbsDiff(g, refGrads[i]); d > parityTol {
				t.Fatalf("iter %d example %d gradient differs by %v", iter, i, d)
			}
			visited++
		})
		if visited != len(xs) {
			t.Fatalf("visited %d examples, want %d", visited, len(xs))
		}
	}
}

func TestBatchGradientsMeanLoss(t *testing.T) {
	spec := TabularMLP(10, 8, 3)
	ref, bm := twinModels(spec, 12)
	rng := tensor.NewRNG(13)
	xs, ys := randomBatch(rng, 5, 10, 3)
	var want float64
	for i, x := range xs {
		want += ref.Loss(x, ys[i])
	}
	want /= float64(len(xs))
	scratch := tensor.ZerosLike(bm.Grads())
	got := bm.BatchGradients(xs, ys, scratch, func(int, []*tensor.Tensor) {})
	if math.Abs(got-want) > parityTol {
		t.Fatalf("mean batch loss %v, want %v", got, want)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	spec := ImageCNN(1, 10, 10, 4)
	ref, bm := twinModels(spec, 21)
	rng := tensor.NewRNG(22)
	xs, _ := randomBatch(rng, 7, 100, 4)
	got := bm.PredictBatch(xs)
	for i, x := range xs {
		if want := ref.Predict(x); got[i] != want {
			t.Fatalf("prediction %d = %d, reference %d", i, got[i], want)
		}
	}
}

func TestBatchedReportsCustomLayers(t *testing.T) {
	m := Build(TabularMLP(4, 3, 2), tensor.NewRNG(1))
	if !m.Batched() {
		t.Fatal("spec-built model must support the batched engine")
	}
	m.Layers = append(m.Layers, nonBatchLayer{})
	if m.Batched() {
		t.Fatal("model with a custom non-batch layer must report Batched()==false")
	}
}

// nonBatchLayer is a minimal Layer that does not implement BatchLayer.
type nonBatchLayer struct{}

func (nonBatchLayer) Forward(x *tensor.Tensor) *tensor.Tensor  { return x }
func (nonBatchLayer) Backward(g *tensor.Tensor) *tensor.Tensor { return g }
func (nonBatchLayer) Params() []*tensor.Tensor                 { return nil }
func (nonBatchLayer) Grads() []*tensor.Tensor                  { return nil }
func (nonBatchLayer) ZeroGrads()                               {}
func (nonBatchLayer) Name() string                             { return "custom" }

func TestStackValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stack must panic on ragged example lengths")
		}
	}()
	Stack(nil, nil, []*tensor.Tensor{tensor.New(3), tensor.New(4)})
}
