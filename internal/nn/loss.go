package nn

import (
	"fmt"
	"math"

	"fedcdp/internal/tensor"
)

// Softmax returns the softmax distribution of logits, computed stably.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := logits.Clone()
	d := out.Data()
	maxV := math.Inf(-1)
	for _, v := range d {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range d {
		e := math.Exp(v - maxV)
		d[i] = e
		sum += e
	}
	for i := range d {
		d[i] /= sum
	}
	return out
}

// SoftmaxCrossEntropy computes the cross-entropy loss of logits against the
// integer label and the gradient of the loss with respect to the logits
// (softmax(logits) - onehot(label)).
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (loss float64, grad *tensor.Tensor) {
	if label < 0 || label >= logits.Len() {
		panic(fmt.Sprintf("nn: label %d out of range for %d classes", label, logits.Len()))
	}
	p := Softmax(logits)
	// Clamp for numerical safety: p is strictly positive analytically but can
	// underflow to 0 for extreme logits.
	pl := p.Data()[label]
	if pl < 1e-300 {
		pl = 1e-300
	}
	loss = -math.Log(pl)
	grad = p
	grad.Data()[label] -= 1
	return loss, grad
}

// Argmax returns the index of the largest element.
func Argmax(t *tensor.Tensor) int {
	best, bestIdx := math.Inf(-1), 0
	for i, v := range t.Data() {
		if v > best {
			best = v
			bestIdx = i
		}
	}
	return bestIdx
}
