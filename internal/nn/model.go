package nn

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// Model is an ordered stack of layers trained with softmax cross-entropy.
type Model struct {
	Layers []Layer
	spec   Spec

	// Batched-engine scratch (see batch.go): input batch, loss gradient and
	// per-example losses, reused across iterations; arena is the optional
	// per-goroutine buffer recycler set by UseArena; prec is the GEMM
	// precision selected by SetPrecision.
	arena    *tensor.Arena
	xBatch   *tensor.Tensor
	lossGrad *tensor.Tensor
	lossVals []float64
	prec     string
}

// Forward runs one example through all layers and returns the logits.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// BackwardFromLoss propagates the logit gradient through all layers,
// accumulating parameter gradients, and returns the input gradient.
func (m *Model) BackwardFromLoss(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	return grad
}

// ExampleGradient runs a full forward/backward pass for one labelled example
// with freshly zeroed buffers, returning the loss and the per-example
// gradient (deep-copied, aligned with Params).
func (m *Model) ExampleGradient(x *tensor.Tensor, label int) (float64, []*tensor.Tensor) {
	m.ZeroGrads()
	logits := m.Forward(x)
	loss, g := SoftmaxCrossEntropy(logits, label)
	m.BackwardFromLoss(g)
	return loss, tensor.CloneAll(m.Grads())
}

// Loss computes the cross-entropy of one example without touching gradients.
func (m *Model) Loss(x *tensor.Tensor, label int) float64 {
	logits := m.Forward(x)
	loss, _ := SoftmaxCrossEntropy(logits, label)
	return loss
}

// Predict returns the argmax class for one example.
func (m *Model) Predict(x *tensor.Tensor) int {
	return Argmax(m.Forward(x))
}

// Params returns all trainable tensors in layer order.
func (m *Model) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all gradient buffers in layer order, aligned with Params.
func (m *Model) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads clears every gradient buffer.
func (m *Model) ZeroGrads() {
	for _, l := range m.Layers {
		l.ZeroGrads()
	}
}

// NumParams returns the total number of trainable scalars.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Len()
	}
	return n
}

// SetParams copies src values into the model's parameters.
func (m *Model) SetParams(src []*tensor.Tensor) {
	dst := m.Params()
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: SetParams tensor count mismatch %d vs %d", len(dst), len(src)))
	}
	for i, p := range dst {
		p.CopyFrom(src[i])
	}
}

// Clone returns a deep copy of the model (architecture and weights).
func (m *Model) Clone() *Model {
	c := Build(m.spec, tensor.NewRNG(0))
	c.SetParams(m.Params())
	return c
}

// Spec returns the architecture specification the model was built from.
func (m *Model) Spec() Spec { return m.spec }

// SGDStep applies one vanilla gradient-descent step with the given learning
// rate using externally supplied gradients aligned with Params.
func (m *Model) SGDStep(lr float64, grads []*tensor.Tensor) {
	params := m.Params()
	if len(params) != len(grads) {
		panic(fmt.Sprintf("nn: SGDStep tensor count mismatch %d vs %d", len(params), len(grads)))
	}
	for i, p := range params {
		p.AddScaled(-lr, grads[i])
	}
}
