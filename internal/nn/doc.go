// Package nn is a small, from-scratch neural-network library: dense and
// convolutional layers, pooling, smooth and piecewise-linear activations, a
// softmax cross-entropy loss, SGD, and gob model serialization. It sits
// between internal/tensor (which supplies the GEMM/im2col kernels and
// scratch arenas) and internal/fl (which clones models into per-worker
// slots for federated local training).
//
// # Execution engines
//
// Two execution paths share each layer's parameters. The per-example
// reference path (Forward/Backward) processes one example at a time and
// accumulates parameter gradients into the layer's gradient buffers — after
// one example's backward pass the buffers *are* that example's gradient,
// the execution model per-example differential privacy (Fed-CDP) is defined
// against. The batched engine (BatchLayer: ForwardBatch/BackwardBatch, see
// batch.go) processes whole mini-batches through GEMM and im2col+GEMM while
// still recovering every example's parameter gradient from the batch
// buffers (ExampleGrads); parity tests pin it to the reference path at
// ≤1e-9. BatchPass runs forward+backward in one call and is the entry the
// DP sanitize pipeline (internal/dp.SanitizeBatch) builds on.
//
// # Concurrency and determinism
//
// Layers are stateful between Forward and Backward (cached activations), so
// a model instance must not be shared across goroutines; use Model.Clone or
// build one model per worker and reset it with SetParams. After a
// BatchPass, ExampleGrads(i) for distinct i read disjoint slices of the
// batch buffers and may be consumed from concurrent goroutines, which is
// what lets the DP pipeline fan per-example clip+noise over a pool. Given
// identical parameters and inputs, both engines are deterministic at any
// GOMAXPROCS; only engine choice changes results (by float rounding), which
// is why runs record it (fl.RoundConfig.Engine).
package nn
