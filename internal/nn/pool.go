package nn

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// MaxPool2 is a 2×2, stride-2 max-pooling layer over (C,H,W) tensors.
// Odd trailing rows/columns are dropped (floor semantics).
type MaxPool2 struct {
	C, H, W int
	argmax  []int

	// Batched-engine state: per-batch argmax indices and owned buffers.
	arena   *tensor.Arena
	argmaxB []int
	yB, dxB *tensor.Tensor
}

// NewMaxPool2 returns a 2×2 max-pool for (c,h,w) inputs.
func NewMaxPool2(c, h, w int) *MaxPool2 {
	return &MaxPool2{C: c, H: h, W: w}
}

var _ Layer = (*MaxPool2)(nil)

// OutH returns the pooled height.
func (p *MaxPool2) OutH() int { return p.H / 2 }

// OutW returns the pooled width.
func (p *MaxPool2) OutW() int { return p.W / 2 }

// OutLen returns the flattened output size.
func (p *MaxPool2) OutLen() int { return p.C * p.OutH() * p.OutW() }

// Forward pools one example, caching argmax indices for Backward.
func (p *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Len() != p.C*p.H*p.W {
		panic(fmt.Sprintf("nn: maxpool expects %d inputs, got %d", p.C*p.H*p.W, x.Len()))
	}
	oh, ow := p.OutH(), p.OutW()
	y := tensor.New(p.C, oh, ow)
	p.argmax = make([]int, y.Len())
	xd, yd := x.Data(), y.Data()
	for c := 0; c < p.C; c++ {
		base := c * p.H * p.W
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := base + (2*oy)*p.W + 2*ox
				best := xd[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := base + (2*oy+dy)*p.W + (2*ox + dx)
						if xd[idx] > best {
							best = xd[idx]
							bestIdx = idx
						}
					}
				}
				o := (c*oh+oy)*ow + ox
				yd[o] = best
				p.argmax[o] = bestIdx
			}
		}
	}
	return y
}

// Backward routes each output gradient to its argmax input position.
func (p *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.C, p.H, p.W)
	dxd, gd := dx.Data(), grad.Data()
	for o, idx := range p.argmax {
		dxd[idx] += gd[o]
	}
	return dx
}

var _ BatchLayer = (*MaxPool2)(nil)

func (p *MaxPool2) setArena(a *tensor.Arena) { p.arena = a }

// poolOne pools one example (xd → yd), recording flat argmax indices
// relative to the example into am.
func (p *MaxPool2) poolOne(xd, yd []float64, am []int) {
	oh, ow := p.OutH(), p.OutW()
	for c := 0; c < p.C; c++ {
		base := c * p.H * p.W
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := base + (2*oy)*p.W + 2*ox
				best := xd[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := base + (2*oy+dy)*p.W + (2*ox + dx)
						if xd[idx] > best {
							best = xd[idx]
							bestIdx = idx
						}
					}
				}
				o := (c*oh+oy)*ow + ox
				yd[o] = best
				am[o] = bestIdx
			}
		}
	}
}

// ForwardBatch pools a (B × C·H·W) batch, caching per-example argmaxes.
func (p *MaxPool2) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	b := x.Shape()[0]
	if x.Shape()[1] != p.C*p.H*p.W {
		panic(fmt.Sprintf("nn: maxpool expects batch width %d, got %v", p.C*p.H*p.W, x.Shape()))
	}
	n, on := p.C*p.H*p.W, p.OutLen()
	p.yB = ensureBuf(p.arena, p.yB, b, on)
	if cap(p.argmaxB) < b*on {
		p.argmaxB = make([]int, b*on)
	}
	p.argmaxB = p.argmaxB[:b*on]
	xd, yd := x.Data(), p.yB.Data()
	for i := 0; i < b; i++ {
		p.poolOne(xd[i*n:(i+1)*n], yd[i*on:(i+1)*on], p.argmaxB[i*on:(i+1)*on])
	}
	return p.yB
}

// BackwardBatch routes each output gradient to its argmax input position.
func (p *MaxPool2) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	b := grad.Shape()[0]
	n, on := p.C*p.H*p.W, p.OutLen()
	p.dxB = ensureBuf(p.arena, p.dxB, b, n)
	p.dxB.Zero()
	gd, dxd := grad.Data(), p.dxB.Data()
	for i := 0; i < b; i++ {
		am := p.argmaxB[i*on : (i+1)*on]
		dx := dxd[i*n : (i+1)*n]
		g := gd[i*on : (i+1)*on]
		for o, idx := range am {
			dx[idx] += g[o]
		}
	}
	return p.dxB
}

// AccumGrads is a no-op for parameter-free layers.
func (p *MaxPool2) AccumGrads() {}

// ExampleGrads is a no-op for parameter-free layers.
func (p *MaxPool2) ExampleGrads(i int, dst []*tensor.Tensor) {}

// Params returns nil: pooling is parameter-free.
func (p *MaxPool2) Params() []*tensor.Tensor { return nil }

// Grads returns nil: pooling is parameter-free.
func (p *MaxPool2) Grads() []*tensor.Tensor { return nil }

// ZeroGrads is a no-op for parameter-free layers.
func (p *MaxPool2) ZeroGrads() {}

// Name returns "maxpool2".
func (p *MaxPool2) Name() string { return "maxpool2" }

// Flatten reshapes (C,H,W) activations into a flat vector. Because tensors
// are stored flat, this is a logical marker layer with identity math; it
// exists so architecture specs read like the paper's model descriptions.
type Flatten struct{}

var _ Layer = (*Flatten)(nil)

// Forward returns a flat view of x.
func (Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.FromSlice(x.Data(), x.Len())
}

// Backward passes the gradient through unchanged.
func (Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

var _ BatchLayer = Flatten{}

// ForwardBatch is the identity: batches are already stored row-flat.
func (Flatten) ForwardBatch(x *tensor.Tensor) *tensor.Tensor { return x }

// BackwardBatch passes the batch gradient through unchanged.
func (Flatten) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor { return grad }

// AccumGrads is a no-op.
func (Flatten) AccumGrads() {}

// ExampleGrads is a no-op.
func (Flatten) ExampleGrads(i int, dst []*tensor.Tensor) {}

// Params returns nil.
func (Flatten) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (Flatten) Grads() []*tensor.Tensor { return nil }

// ZeroGrads is a no-op.
func (Flatten) ZeroGrads() {}

// Name returns "flatten".
func (Flatten) Name() string { return "flatten" }
