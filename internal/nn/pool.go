package nn

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// MaxPool2 is a 2×2, stride-2 max-pooling layer over (C,H,W) tensors.
// Odd trailing rows/columns are dropped (floor semantics).
type MaxPool2 struct {
	C, H, W int
	argmax  []int
}

// NewMaxPool2 returns a 2×2 max-pool for (c,h,w) inputs.
func NewMaxPool2(c, h, w int) *MaxPool2 {
	return &MaxPool2{C: c, H: h, W: w}
}

var _ Layer = (*MaxPool2)(nil)

// OutH returns the pooled height.
func (p *MaxPool2) OutH() int { return p.H / 2 }

// OutW returns the pooled width.
func (p *MaxPool2) OutW() int { return p.W / 2 }

// OutLen returns the flattened output size.
func (p *MaxPool2) OutLen() int { return p.C * p.OutH() * p.OutW() }

// Forward pools one example, caching argmax indices for Backward.
func (p *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Len() != p.C*p.H*p.W {
		panic(fmt.Sprintf("nn: maxpool expects %d inputs, got %d", p.C*p.H*p.W, x.Len()))
	}
	oh, ow := p.OutH(), p.OutW()
	y := tensor.New(p.C, oh, ow)
	p.argmax = make([]int, y.Len())
	xd, yd := x.Data(), y.Data()
	for c := 0; c < p.C; c++ {
		base := c * p.H * p.W
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := base + (2*oy)*p.W + 2*ox
				best := xd[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := base + (2*oy+dy)*p.W + (2*ox + dx)
						if xd[idx] > best {
							best = xd[idx]
							bestIdx = idx
						}
					}
				}
				o := (c*oh+oy)*ow + ox
				yd[o] = best
				p.argmax[o] = bestIdx
			}
		}
	}
	return y
}

// Backward routes each output gradient to its argmax input position.
func (p *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.C, p.H, p.W)
	dxd, gd := dx.Data(), grad.Data()
	for o, idx := range p.argmax {
		dxd[idx] += gd[o]
	}
	return dx
}

// Params returns nil: pooling is parameter-free.
func (p *MaxPool2) Params() []*tensor.Tensor { return nil }

// Grads returns nil: pooling is parameter-free.
func (p *MaxPool2) Grads() []*tensor.Tensor { return nil }

// ZeroGrads is a no-op for parameter-free layers.
func (p *MaxPool2) ZeroGrads() {}

// Name returns "maxpool2".
func (p *MaxPool2) Name() string { return "maxpool2" }

// Flatten reshapes (C,H,W) activations into a flat vector. Because tensors
// are stored flat, this is a logical marker layer with identity math; it
// exists so architecture specs read like the paper's model descriptions.
type Flatten struct{}

var _ Layer = (*Flatten)(nil)

// Forward returns a flat view of x.
func (Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.FromSlice(x.Data(), x.Len())
}

// Backward passes the gradient through unchanged.
func (Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// Params returns nil.
func (Flatten) Params() []*tensor.Tensor { return nil }

// Grads returns nil.
func (Flatten) Grads() []*tensor.Tensor { return nil }

// ZeroGrads is a no-op.
func (Flatten) ZeroGrads() {}

// Name returns "flatten".
func (Flatten) Name() string { return "flatten" }
