package nn

import (
	"fmt"
	"math"

	"fedcdp/internal/tensor"
)

// This file is the batched execution engine. Layers that implement
// BatchLayer process a whole mini-batch per call — Dense as one GEMM,
// Conv2D as im2col + GEMM — instead of one example at a time, while still
// exposing every example's parameter gradient, which Fed-CDP's per-example
// clipping and noising requires. The per-example Forward/Backward path is
// kept as the reference implementation; parity tests in batch_test.go pin
// the two to each other. See DESIGN.md ("Execution engine").
//
// Batches are row-major (B × featureLen) tensors: row i is example i's
// flattened input. The contract per iteration is
//
//	ForwardBatch → (loss grads) → BackwardBatch → AccumGrads | ExampleGrads
//
// BackwardBatch deliberately does NOT touch the Grads buffers: the
// non-private path pays for one batch-summed GEMM (AccumGrads) and the
// Fed-CDP path pays only for the per-example recovery it needs
// (ExampleGrads), never both.

// BatchLayer is a Layer that additionally supports batched execution.
type BatchLayer interface {
	Layer
	// ForwardBatch computes outputs for a (B × inLen) batch, returning a
	// (B × outLen) tensor owned by the layer (valid until the next call).
	ForwardBatch(x *tensor.Tensor) *tensor.Tensor
	// BackwardBatch computes the (B × inLen) input gradient from a
	// (B × outLen) output gradient, caching what per-example or batch
	// gradient recovery needs. It does not modify Grads.
	BackwardBatch(grad *tensor.Tensor) *tensor.Tensor
	// AccumGrads adds the batch-summed parameter gradients of the most
	// recent BackwardBatch into the layer's Grads buffers.
	AccumGrads()
	// ExampleGrads writes example i's parameter gradients from the most
	// recent BackwardBatch into dst (aligned with Grads, overwritten).
	// Recovery only reads the batch caches, so concurrent calls with
	// distinct i and distinct dst are safe — the contract the parallel
	// sanitization pipeline (dp.SanitizeBatch) relies on.
	ExampleGrads(i int, dst []*tensor.Tensor)
}

// arenaLayer is implemented by batched layers that can draw their scratch
// buffers from a caller-owned arena.
type arenaLayer interface{ setArena(*tensor.Arena) }

// precisionLayer is implemented by batched layers whose GEMMs can run on
// the float32 bulk kernels (tensor.PrecisionFP32). Storage stays float64;
// only the blocked inner loops change width.
type precisionLayer interface{ setPrecision(string) }

// SetPrecision selects the arithmetic width of the batched engine's GEMM
// kernels: "" or tensor.PrecisionFP64 (the default and reference oracle)
// runs float64 throughout; tensor.PrecisionFP32 routes every layer GEMM
// through the f32 bulk path. Layers without a precision hook (custom
// layers, the per-example reference path) always compute at float64.
func (m *Model) SetPrecision(p string) {
	m.prec = p
	for _, l := range m.Layers {
		if pl, ok := l.(precisionLayer); ok {
			pl.setPrecision(p)
		}
	}
}

// Precision reports the engine precision selected by SetPrecision ("" means
// the float64 default).
func (m *Model) Precision() string { return m.prec }

// ensureBuf returns t when it already has the wanted shape (no allocation —
// the steady-state path), reshapes it via View when only the shape differs,
// and otherwise draws a fresh zeroed buffer from the arena, releasing the
// old one. Batched layers use it so buffers are allocated once per batch
// geometry and reused across iterations and rounds.
func ensureBuf(a *tensor.Arena, t *tensor.Tensor, shape ...int) *tensor.Tensor {
	if t != nil {
		ts := t.Shape()
		if len(ts) == len(shape) {
			same := true
			for i, d := range shape {
				if ts[i] != d {
					same = false
					break
				}
			}
			if same {
				return t
			}
		}
		n := 1
		for _, d := range shape {
			n *= d
		}
		if t.Len() == n {
			return t.View(shape...)
		}
	}
	a.Put(t)
	return a.Get(shape...)
}

// Batched reports whether every layer of the model supports the batched
// engine. Models built from Spec always do; it exists so generic code can
// fall back to the per-example reference path for custom layers.
func (m *Model) Batched() bool {
	for _, l := range m.Layers {
		if _, ok := l.(BatchLayer); !ok {
			return false
		}
	}
	return true
}

// UseArena routes the model's batched scratch buffers (and those of its
// layers) through a — one arena per goroutine, reusable across rounds.
func (m *Model) UseArena(a *tensor.Arena) {
	m.arena = a
	for _, l := range m.Layers {
		if al, ok := l.(arenaLayer); ok {
			al.setArena(a)
		}
	}
}

// ForwardBatch runs a (B × features) batch through all layers and returns
// the (B × classes) logits. All layers must implement BatchLayer.
func (m *Model) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.(BatchLayer).ForwardBatch(x)
	}
	return x
}

// BackwardBatch propagates a (B × classes) logit gradient through all
// layers and returns the (B × features) input gradient. Parameter gradient
// buffers are not modified; use AccumBatchGrads or ExampleGrads.
func (m *Model) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].(BatchLayer).BackwardBatch(grad)
	}
	return grad
}

// AccumBatchGrads adds the batch-summed parameter gradients of the most
// recent BackwardBatch into the model's Grads buffers.
func (m *Model) AccumBatchGrads() {
	for _, l := range m.Layers {
		l.(BatchLayer).AccumGrads()
	}
}

// ExampleGrads recovers example i's parameter gradients from the most
// recent BackwardBatch into dst, which must be aligned with Grads (e.g.
// tensor.ZerosLike(m.Grads())). Entries are overwritten.
func (m *Model) ExampleGrads(i int, dst []*tensor.Tensor) {
	off := 0
	for _, l := range m.Layers {
		n := len(l.Grads())
		l.(BatchLayer).ExampleGrads(i, dst[off:off+n])
		off += n
	}
}

// Stack copies the example vectors xs into a (len(xs) × featureLen) batch
// tensor. dst is reused when it already has the right element count;
// otherwise a buffer is drawn from the arena (nil arena allocates).
func Stack(a *tensor.Arena, dst *tensor.Tensor, xs []*tensor.Tensor) *tensor.Tensor {
	if len(xs) == 0 {
		panic("nn: Stack of empty batch")
	}
	n := xs[0].Len()
	dst = ensureBuf(a, dst, len(xs), n)
	dd := dst.Data()
	for i, x := range xs {
		if x.Len() != n {
			panic(fmt.Sprintf("nn: Stack example %d has length %d, want %d", i, x.Len(), n))
		}
		copy(dd[i*n:(i+1)*n], x.Data())
	}
	return dst
}

// SoftmaxCrossEntropyBatch computes per-example cross-entropy losses and the
// logit gradients (softmax − onehot) for a (B × C) logit batch. grad must be
// (B × C) and is overwritten; losses must have length B. Row i reproduces
// SoftmaxCrossEntropy(logits.Row(i), labels[i]) exactly.
func SoftmaxCrossEntropyBatch(grad *tensor.Tensor, losses []float64, logits *tensor.Tensor, labels []int) {
	b, c := logits.Shape()[0], logits.Shape()[1]
	if len(labels) != b || len(losses) != b {
		panic(fmt.Sprintf("nn: batch loss wants %d labels/losses, got %d/%d", b, len(labels), len(losses)))
	}
	if grad.Shape()[0] != b || grad.Shape()[1] != c {
		panic(fmt.Sprintf("nn: batch loss grad shape %v, want (%d,%d)", grad.Shape(), b, c))
	}
	ld, gd := logits.Data(), grad.Data()
	for i := 0; i < b; i++ {
		label := labels[i]
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: label %d out of range for %d classes", label, c))
		}
		row := ld[i*c : (i+1)*c]
		out := gd[i*c : (i+1)*c]
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			out[j] = e
			sum += e
		}
		for j := range out {
			out[j] /= sum
		}
		pl := out[label]
		if pl < 1e-300 {
			pl = 1e-300
		}
		losses[i] = -math.Log(pl)
		out[label] -= 1
	}
}

// ArgmaxRows returns the per-row argmax of a (B × C) tensor, writing into
// out when it has capacity.
func ArgmaxRows(t *tensor.Tensor, out []int) []int {
	b, c := t.Shape()[0], t.Shape()[1]
	if cap(out) < b {
		out = make([]int, b)
	}
	out = out[:b]
	d := t.Data()
	for i := 0; i < b; i++ {
		row := d[i*c : (i+1)*c]
		best, bestIdx := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best = v
				bestIdx = j
			}
		}
		out[i] = bestIdx
	}
	return out
}

// BatchPass runs one batched forward/backward pass over a labelled batch
// through the model-owned scratch buffers and returns the mean loss. After
// it returns, layer caches hold what AccumBatchGrads/ExampleGrads need;
// ExampleGrads may then be called concurrently for distinct examples (see
// BatchLayer), which is how the parallel sanitization pipeline recovers a
// whole mini-batch's gradients across goroutines.
func (m *Model) BatchPass(xs []*tensor.Tensor, ys []int) float64 {
	b := len(xs)
	m.xBatch = Stack(m.arena, m.xBatch, xs)
	logits := m.ForwardBatch(m.xBatch)
	m.lossGrad = ensureBuf(m.arena, m.lossGrad, logits.Shape()[0], logits.Shape()[1])
	if cap(m.lossVals) < b {
		m.lossVals = make([]float64, b)
	}
	losses := m.lossVals[:b]
	SoftmaxCrossEntropyBatch(m.lossGrad, losses, logits, ys)
	m.BackwardBatch(m.lossGrad)
	var sum float64
	for _, l := range losses {
		sum += l
	}
	return sum / float64(b)
}

// BatchGradients runs one batched forward/backward pass over a labelled
// batch and streams each example's parameter gradient to visit via the
// reusable scratch buffers (aligned with Grads; contents are only valid for
// the duration of the call). It is the Fed-CDP batched training driver:
// visit clips, noises and accumulates. The model's Grads buffers are not
// modified. Returns the mean batch loss.
func (m *Model) BatchGradients(xs []*tensor.Tensor, ys []int, scratch []*tensor.Tensor, visit func(i int, g []*tensor.Tensor)) float64 {
	loss := m.BatchPass(xs, ys)
	for i := range xs {
		m.ExampleGrads(i, scratch)
		visit(i, scratch)
	}
	return loss
}

// BatchAccumulate runs one batched forward/backward pass over a labelled
// batch and adds the batch-summed parameter gradients into Grads — the
// non-private fast path (one GEMM per layer instead of per-example
// recovery). Returns the mean batch loss.
func (m *Model) BatchAccumulate(xs []*tensor.Tensor, ys []int) float64 {
	loss := m.BatchPass(xs, ys)
	m.AccumBatchGrads()
	return loss
}

// PredictBatch classifies a slice of examples with the batched engine,
// falling back to per-example Predict for models with custom layers.
func (m *Model) PredictBatch(xs []*tensor.Tensor) []int {
	out := make([]int, len(xs))
	if len(xs) == 0 {
		return out
	}
	if !m.Batched() {
		for i, x := range xs {
			out[i] = m.Predict(x)
		}
		return out
	}
	m.xBatch = Stack(m.arena, m.xBatch, xs)
	logits := m.ForwardBatch(m.xBatch)
	return ArgmaxRows(logits, out)
}
