// Package nn is a small, from-scratch neural-network library: dense and
// convolutional layers, pooling, smooth and piecewise-linear activations, a
// softmax cross-entropy loss, SGD, and gob model serialization.
//
// The library is built around per-example processing: Forward and Backward
// operate on a single example, and Backward accumulates parameter gradients
// into each layer's gradient buffers. This matches the execution model that
// per-example differential privacy (Fed-CDP) requires — the gradient buffers
// after one example's backward pass *are* that example's gradient — and is
// efficient at the paper's batch sizes (3–5).
//
// Layers are stateful between Forward and Backward (cached activations), so a
// model instance must not be shared across goroutines; use Model.Clone to
// give each federated client its own copy.
package nn

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// Layer is a differentiable module. Forward consumes one example and returns
// its activation; Backward consumes dLoss/dOutput and returns dLoss/dInput,
// accumulating parameter gradients (if any) into the layer's Grads buffers.
type Layer interface {
	// Forward computes the layer output for a single example.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward computes the input gradient for the most recent Forward call
	// and accumulates parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient buffers aligned with Params.
	Grads() []*tensor.Tensor
	// ZeroGrads resets all gradient buffers.
	ZeroGrads()
	// Name identifies the layer kind for diagnostics and serialization.
	Name() string
}

// Activation kinds implemented by the element-wise activation layer.
const (
	ActReLU    = "relu"
	ActSigmoid = "sigmoid"
	ActTanh    = "tanh"
)

// Activation is a stateless element-wise nonlinearity layer.
type Activation struct {
	Kind string
	in   *tensor.Tensor
	out  *tensor.Tensor
}

// NewActivation returns an activation layer of the given kind.
// It panics on an unknown kind so that misconfigured models fail at build
// time rather than mid-training.
func NewActivation(kind string) *Activation {
	switch kind {
	case ActReLU, ActSigmoid, ActTanh:
		return &Activation{Kind: kind}
	}
	panic(fmt.Sprintf("nn: unknown activation %q", kind))
}

var _ Layer = (*Activation)(nil)

// Forward applies the nonlinearity element-wise.
func (a *Activation) Forward(x *tensor.Tensor) *tensor.Tensor {
	a.in = x
	out := x.Clone()
	d := out.Data()
	switch a.Kind {
	case ActReLU:
		for i, v := range d {
			if v < 0 {
				d[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range d {
			d[i] = sigmoid(v)
		}
	case ActTanh:
		for i, v := range d {
			d[i] = tanh(v)
		}
	}
	a.out = out
	return out
}

// Backward multiplies the upstream gradient by the activation derivative.
func (a *Activation) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	gd := out.Data()
	switch a.Kind {
	case ActReLU:
		in := a.in.Data()
		for i := range gd {
			if in[i] <= 0 {
				gd[i] = 0
			}
		}
	case ActSigmoid:
		od := a.out.Data()
		for i := range gd {
			gd[i] *= od[i] * (1 - od[i])
		}
	case ActTanh:
		od := a.out.Data()
		for i := range gd {
			gd[i] *= 1 - od[i]*od[i]
		}
	}
	return out
}

// Params returns nil: activations are parameter-free.
func (a *Activation) Params() []*tensor.Tensor { return nil }

// Grads returns nil: activations are parameter-free.
func (a *Activation) Grads() []*tensor.Tensor { return nil }

// ZeroGrads is a no-op for parameter-free layers.
func (a *Activation) ZeroGrads() {}

// Name returns the activation kind.
func (a *Activation) Name() string { return a.Kind }

func sigmoid(x float64) float64 {
	if x >= 0 {
		e := exp(-x)
		return 1 / (1 + e)
	}
	e := exp(x)
	return e / (1 + e)
}

func tanh(x float64) float64 {
	// tanh(x) = 2*sigmoid(2x) - 1, numerically stable for large |x|.
	return 2*sigmoid(2*x) - 1
}
