package nn

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// Layer is a differentiable module. Forward consumes one example and returns
// its activation; Backward consumes dLoss/dOutput and returns dLoss/dInput,
// accumulating parameter gradients (if any) into the layer's Grads buffers.
type Layer interface {
	// Forward computes the layer output for a single example.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward computes the input gradient for the most recent Forward call
	// and accumulates parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient buffers aligned with Params.
	Grads() []*tensor.Tensor
	// ZeroGrads resets all gradient buffers.
	ZeroGrads()
	// Name identifies the layer kind for diagnostics and serialization.
	Name() string
}

// Activation kinds implemented by the element-wise activation layer.
const (
	ActReLU    = "relu"
	ActSigmoid = "sigmoid"
	ActTanh    = "tanh"
)

// Activation is a stateless element-wise nonlinearity layer.
type Activation struct {
	Kind string
	in   *tensor.Tensor
	out  *tensor.Tensor

	// Batched-engine state: cached input batch and owned buffers.
	arena *tensor.Arena
	inB   *tensor.Tensor
	outB  *tensor.Tensor
	dxB   *tensor.Tensor
}

// NewActivation returns an activation layer of the given kind.
// It panics on an unknown kind so that misconfigured models fail at build
// time rather than mid-training.
func NewActivation(kind string) *Activation {
	switch kind {
	case ActReLU, ActSigmoid, ActTanh:
		return &Activation{Kind: kind}
	}
	panic(fmt.Sprintf("nn: unknown activation %q", kind))
}

var _ Layer = (*Activation)(nil)

// applyKind writes kind(x) element-wise into d (d already holds x's values).
func applyKind(kind string, d []float64) {
	switch kind {
	case ActReLU:
		for i, v := range d {
			if v < 0 {
				d[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range d {
			d[i] = sigmoid(v)
		}
	case ActTanh:
		for i, v := range d {
			d[i] = tanh(v)
		}
	}
}

// applyKindGrad multiplies the upstream gradient gd by the activation
// derivative, given the cached input (in) and output (od) values.
func applyKindGrad(kind string, gd, in, od []float64) {
	switch kind {
	case ActReLU:
		for i := range gd {
			if in[i] <= 0 {
				gd[i] = 0
			}
		}
	case ActSigmoid:
		for i := range gd {
			gd[i] *= od[i] * (1 - od[i])
		}
	case ActTanh:
		for i := range gd {
			gd[i] *= 1 - od[i]*od[i]
		}
	}
}

// Forward applies the nonlinearity element-wise.
func (a *Activation) Forward(x *tensor.Tensor) *tensor.Tensor {
	a.in = x
	out := x.Clone()
	applyKind(a.Kind, out.Data())
	a.out = out
	return out
}

// Backward multiplies the upstream gradient by the activation derivative.
func (a *Activation) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	applyKindGrad(a.Kind, out.Data(), a.in.Data(), a.out.Data())
	return out
}

var _ BatchLayer = (*Activation)(nil)

func (a *Activation) setArena(ar *tensor.Arena) { a.arena = ar }

// ForwardBatch applies the nonlinearity to a whole batch in one sweep.
func (a *Activation) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	a.inB = x
	a.outB = ensureBuf(a.arena, a.outB, x.Shape()...)
	copy(a.outB.Data(), x.Data())
	applyKind(a.Kind, a.outB.Data())
	return a.outB
}

// BackwardBatch multiplies the batch gradient by the activation derivative.
func (a *Activation) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	a.dxB = ensureBuf(a.arena, a.dxB, grad.Shape()...)
	copy(a.dxB.Data(), grad.Data())
	applyKindGrad(a.Kind, a.dxB.Data(), a.inB.Data(), a.outB.Data())
	return a.dxB
}

// AccumGrads is a no-op for parameter-free layers.
func (a *Activation) AccumGrads() {}

// ExampleGrads is a no-op for parameter-free layers.
func (a *Activation) ExampleGrads(i int, dst []*tensor.Tensor) {}

// Params returns nil: activations are parameter-free.
func (a *Activation) Params() []*tensor.Tensor { return nil }

// Grads returns nil: activations are parameter-free.
func (a *Activation) Grads() []*tensor.Tensor { return nil }

// ZeroGrads is a no-op for parameter-free layers.
func (a *Activation) ZeroGrads() {}

// Name returns the activation kind.
func (a *Activation) Name() string { return a.Kind }

func sigmoid(x float64) float64 {
	if x >= 0 {
		e := exp(-x)
		return 1 / (1 + e)
	}
	e := exp(x)
	return e / (1 + e)
}

func tanh(x float64) float64 {
	// tanh(x) = 2*sigmoid(2x) - 1, numerically stable for large |x|.
	return 2*sigmoid(2*x) - 1
}
