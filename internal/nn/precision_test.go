package nn

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

// fp32Tol is the relative parity bar between the fp32 bulk engine and the
// pinned fp64 reference oracle. The f32 kernels accumulate in float32 over
// at most a few thousand terms, so 1e-4 relative is conservative.
const fp32Tol = 1e-4

func relErr(a, b float64) float64 { return math.Abs(a-b) / (1 + math.Abs(b)) }

func maxRelDiff(a, b []*tensor.Tensor) float64 {
	var m float64
	for i := range a {
		bd := b[i].Data()
		for j, v := range a[i].Data() {
			if d := relErr(v, bd[j]); d > m {
				m = d
			}
		}
	}
	return m
}

// checkPrecisionParity runs identical batches through an fp64-pinned model
// and its fp32 twin and asserts logits, per-example losses, batch-summed
// gradients and per-example recovered gradients stay within fp32Tol relative.
func checkPrecisionParity(t *testing.T, spec Spec, inLen, classes int, seed int64) {
	t.Helper()
	ref, f32 := twinModels(spec, seed)
	f32.SetPrecision(tensor.PrecisionFP32)
	if f32.Precision() != tensor.PrecisionFP32 {
		t.Fatalf("Precision() = %q after SetPrecision(fp32)", f32.Precision())
	}
	rng := tensor.NewRNG(seed + 1000)
	scratchRef := tensor.ZerosLike(ref.Grads())
	scratch32 := tensor.ZerosLike(f32.Grads())
	for iter := 0; iter < 3; iter++ {
		xs, ys := randomBatch(rng, 6, inLen, classes)

		refLoss := ref.BatchPass(xs, ys)
		gotLoss := f32.BatchPass(xs, ys)
		if d := relErr(gotLoss, refLoss); d > fp32Tol {
			t.Fatalf("iter %d: fp32 mean loss diverges by %g (got %v, fp64 %v)", iter, d, gotLoss, refLoss)
		}

		ref.ZeroGrads()
		f32.ZeroGrads()
		ref.AccumBatchGrads()
		f32.AccumBatchGrads()
		if d := maxRelDiff(f32.Grads(), ref.Grads()); d > fp32Tol {
			t.Fatalf("iter %d: fp32 batch-summed gradients diverge by %g", iter, d)
		}

		for i := range xs {
			ref.ExampleGrads(i, scratchRef)
			f32.ExampleGrads(i, scratch32)
			if d := maxRelDiff(scratch32, scratchRef); d > fp32Tol {
				t.Fatalf("iter %d: fp32 example %d gradient diverges by %g", iter, i, d)
			}
		}
	}
}

// TestPrecisionParityCancerMLP pins the fp32 engine against the fp64 oracle
// on the cancer-scale tabular MLP.
func TestPrecisionParityCancerMLP(t *testing.T) {
	checkPrecisionParity(t, TabularMLP(30, 16, 2), 30, 2, 41)
}

// TestPrecisionParityMNISTCNN pins the fp32 engine against the fp64 oracle
// on the paper's mnist-scale CNN.
func TestPrecisionParityMNISTCNN(t *testing.T) {
	checkPrecisionParity(t, ImageCNN(1, 14, 14, 10), 14*14, 10, 42)
}

// TestPrecisionRoundTripRestoresFP64 pins that switching a model to fp32 and
// back to fp64 restores bit-exact fp64 behavior — the oracle stays intact.
func TestPrecisionRoundTripRestoresFP64(t *testing.T) {
	spec := TabularMLP(12, 9, 3)
	ref, m := twinModels(spec, 7)
	rng := tensor.NewRNG(8)
	xs, ys := randomBatch(rng, 5, 12, 3)
	want := ref.BatchPass(xs, ys)

	m.SetPrecision(tensor.PrecisionFP32)
	m.BatchPass(xs, ys)
	m.SetPrecision(tensor.PrecisionFP64)
	if got := m.BatchPass(xs, ys); got != want {
		t.Fatalf("fp64 loss after fp32 round-trip = %v, want bit-identical %v", got, want)
	}
	ref.ZeroGrads()
	m.ZeroGrads()
	ref.AccumBatchGrads()
	m.AccumBatchGrads()
	if d := maxAbsDiff(m.Grads(), ref.Grads()); d != 0 {
		t.Fatalf("fp64 gradients after fp32 round-trip differ by %v, want 0", d)
	}
}

// TestPrecisionTrainingTrajectory runs a few SGD steps on both engines and
// asserts the fp32 trajectory tracks the fp64 one — the end-to-end bar the
// per-op parity tests compose into.
func TestPrecisionTrainingTrajectory(t *testing.T) {
	ref, f32 := twinModels(TabularMLP(20, 12, 4), 11)
	f32.SetPrecision(tensor.PrecisionFP32)
	rng := tensor.NewRNG(12)
	for step := 0; step < 10; step++ {
		xs, ys := randomBatch(rng, 8, 20, 4)
		ref.ZeroGrads()
		f32.ZeroGrads()
		ref.BatchAccumulate(xs, ys)
		f32.BatchAccumulate(xs, ys)
		ref.SGDStep(0.1, ref.Grads())
		f32.SGDStep(0.1, f32.Grads())
	}
	if d := maxRelDiff(f32.Params(), ref.Params()); d > 50*fp32Tol {
		t.Fatalf("fp32 parameters drift %g from fp64 after 10 steps", d)
	}
	// Predictions must agree on a held-out batch.
	xs, _ := randomBatch(rng, 16, 20, 4)
	got, want := f32.PredictBatch(xs), ref.PredictBatch(xs)
	agree := 0
	for i := range got {
		if got[i] == want[i] {
			agree++
		}
	}
	if agree < len(got)-1 {
		t.Fatalf("fp32/fp64 predictions agree on only %d/%d held-out examples", agree, len(got))
	}
}
