package nn

import (
	"fmt"
	"math"

	"fedcdp/internal/tensor"
)

func exp(x float64) float64 { return math.Exp(x) }

// Dense is a fully connected layer: y = W x + b with W shaped (Out×In).
type Dense struct {
	In, Out int
	W, B    *tensor.Tensor
	GW, GB  *tensor.Tensor
	in      *tensor.Tensor

	// Batched-engine state: cached input/output-gradient batches and owned
	// output buffers (see batch.go for the execution contract); prec selects
	// the GEMM kernel width (fp64 default, fp32 bulk path).
	arena   *tensor.Arena
	prec    string
	xB, gB  *tensor.Tensor
	yB, dxB *tensor.Tensor
}

// NewDense returns a dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  tensor.New(out, in),
		B:  tensor.New(out),
		GW: tensor.New(out, in),
		GB: tensor.New(out),
	}
	rng.Xavier(d.W, in, out)
	return d
}

var _ Layer = (*Dense)(nil)

// Forward computes Wx + b for a single example.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("nn: dense expects input of length %d, got %d", d.In, x.Len()))
	}
	d.in = x
	y := tensor.MatVec(d.W, x)
	y.Add(d.B)
	return y
}

// Backward accumulates dL/dW = grad·xᵀ and dL/db = grad, and returns
// dL/dx = Wᵀ·grad.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.AddOuter(d.GW, 1, grad, d.in)
	d.GB.Add(grad)
	return tensor.MatVecT(d.W, grad)
}

var _ BatchLayer = (*Dense)(nil)

func (d *Dense) setArena(a *tensor.Arena) { d.arena = a }

var _ precisionLayer = (*Dense)(nil)

func (d *Dense) setPrecision(p string) { d.prec = p }

func (d *Dense) fp32() bool { return d.prec == tensor.PrecisionFP32 }

// ForwardBatch computes Y = X·Wᵀ + b for a (B × In) batch in one GEMM. Each
// row reproduces Forward on that example bit-for-bit (identical accumulation
// order).
func (d *Dense) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	b := x.Shape()[0]
	if x.Shape()[1] != d.In {
		panic(fmt.Sprintf("nn: dense expects batch width %d, got %v", d.In, x.Shape()))
	}
	d.xB = x
	d.yB = ensureBuf(d.arena, d.yB, b, d.Out)
	if d.fp32() {
		tensor.MatMulT32(d.yB, x, d.W)
	} else {
		tensor.MatMulT(d.yB, x, d.W)
	}
	yd, bd := d.yB.Data(), d.B.Data()
	for i := 0; i < b; i++ {
		row := yd[i*d.Out : (i+1)*d.Out]
		for j, v := range bd {
			row[j] += v
		}
	}
	return d.yB
}

// BackwardBatch caches the output gradient and returns dX = dY·W.
func (d *Dense) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	d.gB = grad
	d.dxB = ensureBuf(d.arena, d.dxB, grad.Shape()[0], d.In)
	if d.fp32() {
		tensor.MatMul32(d.dxB, grad, d.W)
	} else {
		tensor.MatMul(d.dxB, grad, d.W)
	}
	return d.dxB
}

// AccumGrads adds the batch-summed gradients: GW += dYᵀ·X (one GEMM) and
// GB += column sums of dY.
func (d *Dense) AccumGrads() {
	if d.fp32() {
		tensor.AddMatMulTN32(d.GW, d.gB, d.xB)
	} else {
		tensor.AddMatMulTN(d.GW, d.gB, d.xB)
	}
	b := d.gB.Shape()[0]
	gd, gbd := d.gB.Data(), d.GB.Data()
	for i := 0; i < b; i++ {
		row := gd[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			gbd[j] += v
		}
	}
}

// ExampleGrads recovers example i's gradient as the rank-1 outer product
// dY_i ⊗ X_i from the cached batch buffers.
func (d *Dense) ExampleGrads(i int, dst []*tensor.Tensor) {
	dst[0].Zero()
	tensor.AddOuter(dst[0], 1, d.gB.Row(i), d.xB.Row(i))
	dst[1].CopyFrom(d.gB.Row(i))
}

// Params returns {W, b}.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads returns {dW, db}.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.GW, d.GB} }

// ZeroGrads clears the accumulated gradients.
func (d *Dense) ZeroGrads() {
	d.GW.Zero()
	d.GB.Zero()
}

// Name returns "dense".
func (d *Dense) Name() string { return "dense" }
