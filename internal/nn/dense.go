package nn

import (
	"fmt"
	"math"

	"fedcdp/internal/tensor"
)

func exp(x float64) float64 { return math.Exp(x) }

// Dense is a fully connected layer: y = W x + b with W shaped (Out×In).
type Dense struct {
	In, Out int
	W, B    *tensor.Tensor
	GW, GB  *tensor.Tensor
	in      *tensor.Tensor
}

// NewDense returns a dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  tensor.New(out, in),
		B:  tensor.New(out),
		GW: tensor.New(out, in),
		GB: tensor.New(out),
	}
	rng.Xavier(d.W, in, out)
	return d
}

var _ Layer = (*Dense)(nil)

// Forward computes Wx + b for a single example.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("nn: dense expects input of length %d, got %d", d.In, x.Len()))
	}
	d.in = x
	y := tensor.MatVec(d.W, x)
	y.Add(d.B)
	return y
}

// Backward accumulates dL/dW = grad·xᵀ and dL/db = grad, and returns
// dL/dx = Wᵀ·grad.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.AddOuter(d.GW, 1, grad, d.in)
	d.GB.Add(grad)
	return tensor.MatVecT(d.W, grad)
}

// Params returns {W, b}.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads returns {dW, db}.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.GW, d.GB} }

// ZeroGrads clears the accumulated gradients.
func (d *Dense) ZeroGrads() {
	d.GW.Zero()
	d.GB.Zero()
}

// Name returns "dense".
func (d *Dense) Name() string { return "dense" }
