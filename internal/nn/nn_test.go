package nn

import (
	"math"
	"testing"
	"testing/quick"

	"fedcdp/internal/tensor"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		logits := tensor.New(10)
		g.FillNormal(logits, 0, 5)
		p := Softmax(logits)
		var sum float64
		for _, v := range p.Data() {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 999, 998}, 3)
	p := Softmax(logits)
	for _, v := range p.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
	if p.At(0) < p.At(1) || p.At(1) < p.At(2) {
		t.Fatal("softmax ordering broken")
	}
}

func TestSoftmaxCrossEntropyGradSumsToZero(t *testing.T) {
	g := tensor.NewRNG(1)
	logits := tensor.New(7)
	g.FillNormal(logits, 0, 2)
	_, grad := SoftmaxCrossEntropy(logits, 3)
	var sum float64
	for _, v := range grad.Data() {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("CE gradient sums to %v, want 0", sum)
	}
}

func TestSoftmaxCrossEntropyPanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(3), 5)
}

func TestSoftmaxCrossEntropyLossPositive(t *testing.T) {
	g := tensor.NewRNG(2)
	for i := 0; i < 50; i++ {
		logits := tensor.New(5)
		g.FillNormal(logits, 0, 3)
		loss, _ := SoftmaxCrossEntropy(logits, i%5)
		if loss < 0 {
			t.Fatalf("negative cross-entropy %v", loss)
		}
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax(tensor.FromSlice([]float64{0.1, 0.7, 0.2}, 3)); got != 1 {
		t.Fatalf("Argmax = %d, want 1", got)
	}
}

func TestActivationUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown activation")
		}
	}()
	NewActivation("gelu")
}

func TestSigmoidRangeAndSymmetry(t *testing.T) {
	for _, x := range []float64{-50, -1, 0, 1, 50} {
		s := sigmoid(x)
		if s < 0 || s > 1 {
			t.Fatalf("sigmoid(%v) = %v outside [0,1]", x, s)
		}
		if math.Abs(s+sigmoid(-x)-1) > 1e-12 {
			t.Fatalf("sigmoid symmetry broken at %v", x)
		}
	}
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestTanhMatchesMath(t *testing.T) {
	for _, x := range []float64{-3, -0.5, 0, 0.5, 3} {
		if math.Abs(tanh(x)-math.Tanh(x)) > 1e-12 {
			t.Fatalf("tanh(%v) = %v, want %v", x, tanh(x), math.Tanh(x))
		}
	}
}

func TestDenseShapePanics(t *testing.T) {
	d := NewDense(4, 2, tensor.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input size")
		}
	}()
	d.Forward(tensor.New(3))
}

func TestConvOutputShape(t *testing.T) {
	c := NewConv2D(3, 32, 32, 8, 5, 2, 2, tensor.NewRNG(1))
	if c.OutH() != 16 || c.OutW() != 16 || c.OutLen() != 8*16*16 {
		t.Fatalf("conv out = (%d,%d,%d)", c.OutC, c.OutH(), c.OutW())
	}
	y := c.Forward(tensor.New(3, 32, 32))
	if y.Len() != c.OutLen() {
		t.Fatalf("forward len %d, want %d", y.Len(), c.OutLen())
	}
}

func TestConvStridePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for stride 0")
		}
	}()
	NewConv2D(1, 4, 4, 1, 3, 0, 0, tensor.NewRNG(1))
}

func TestMaxPoolForwardValues(t *testing.T) {
	p := NewMaxPool2(1, 4, 4)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	y := p.Forward(x)
	want := []float64{6, 8, 14, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("pool[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestPerExampleGradientsSumToBatchGradient(t *testing.T) {
	// Fundamental invariant for Fed-CDP: batch gradient == mean of
	// per-example gradients.
	rng := tensor.NewRNG(11)
	m := Build(TabularMLP(6, 8, 3), rng)
	xs := make([]*tensor.Tensor, 4)
	labels := []int{0, 1, 2, 0}
	for i := range xs {
		xs[i] = tensor.New(6)
		rng.FillNormal(xs[i], 0, 1)
	}

	// Per-example gradients, averaged.
	sum := tensor.ZerosLike(m.Grads())
	for i, x := range xs {
		_, g := m.ExampleGradient(x, labels[i])
		tensor.AddAllScaled(sum, 1.0/float64(len(xs)), g)
	}

	// Accumulated batch gradient.
	m.ZeroGrads()
	for i, x := range xs {
		logits := m.Forward(x)
		_, g := SoftmaxCrossEntropy(logits, labels[i])
		m.BackwardFromLoss(g)
	}
	batch := m.Grads()
	for i, b := range batch {
		b := b.Clone()
		b.Scale(1.0 / float64(len(xs)))
		if !b.Equal(sum[i], 1e-9) {
			t.Fatalf("per-example mean != batch mean for tensor %d", i)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := tensor.NewRNG(12)
	m := Build(TabularMLP(4, 10, 2), rng)
	// Simple separable task: class = sign of first feature.
	xs := make([]*tensor.Tensor, 40)
	labels := make([]int, 40)
	for i := range xs {
		xs[i] = tensor.New(4)
		rng.FillNormal(xs[i], 0, 1)
		if xs[i].At(0) > 0 {
			labels[i] = 1
		}
	}
	lossAt := func() float64 {
		var s float64
		for i, x := range xs {
			s += m.Loss(x, labels[i])
		}
		return s / float64(len(xs))
	}
	before := lossAt()
	for epoch := 0; epoch < 30; epoch++ {
		for i, x := range xs {
			_, g := m.ExampleGradient(x, labels[i])
			m.SGDStep(0.2, g)
		}
	}
	after := lossAt()
	if after >= before {
		t.Fatalf("training failed to reduce loss: %v -> %v", before, after)
	}
	if after > 0.4 {
		t.Fatalf("loss after training too high: %v", after)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := tensor.NewRNG(13)
	m := Build(TabularMLP(3, 4, 2), rng)
	c := m.Clone()
	mp, cp := m.Params(), c.Params()
	for i := range mp {
		if !mp[i].Equal(cp[i], 0) {
			t.Fatal("clone parameters must match")
		}
	}
	cp[0].Set(99, 0, 0)
	if mp[0].At(0, 0) == 99 {
		t.Fatal("clone must not alias original parameters")
	}
}

func TestSetParamsMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(14)
	m := Build(TabularMLP(3, 4, 2), rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched SetParams")
		}
	}()
	m.SetParams(nil)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(15)
	m := Build(ImageCNN(1, 8, 8, 3), rng)
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	m2, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	x := tensor.New(1, 8, 8)
	rng.FillNormal(x, 0, 1)
	y1, y2 := m.Forward(x), m2.Forward(x)
	if !y1.Equal(y2, 1e-12) {
		t.Fatal("loaded model produces different outputs")
	}
}

func TestUnmarshalGarbageFails(t *testing.T) {
	if _, err := Unmarshal([]byte("not a model")); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestNumParams(t *testing.T) {
	m := Build(TabularMLP(10, 5, 2), tensor.NewRNG(1))
	// dense(10->5): 55, dense(5->5): 30, dense(5->2): 12
	if got := m.NumParams(); got != 55+30+12 {
		t.Fatalf("NumParams = %d, want 97", got)
	}
}

func TestImageCNNShapesCompose(t *testing.T) {
	for _, tc := range []struct{ c, h, w, classes int }{
		{1, 28, 28, 10}, // MNIST
		{3, 32, 32, 10}, // CIFAR-10
		{3, 32, 32, 62}, // LFW
	} {
		m := Build(ImageCNN(tc.c, tc.h, tc.w, tc.classes), tensor.NewRNG(1))
		y := m.Forward(tensor.New(tc.c, tc.h, tc.w))
		if y.Len() != tc.classes {
			t.Fatalf("CNN(%v) output %d, want %d classes", tc, y.Len(), tc.classes)
		}
	}
}

func TestBuildUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown layer kind")
		}
	}()
	Build(Spec{Layers: []LayerSpec{{Kind: "transformer"}}}, tensor.NewRNG(1))
}

func TestSGDStepMovesAgainstGradient(t *testing.T) {
	rng := tensor.NewRNG(16)
	m := Build(Spec{Layers: []LayerSpec{{Kind: "dense", In: 2, Out: 2}}}, rng)
	x := tensor.FromSlice([]float64{1, -1}, 2)
	before := m.Loss(x, 0)
	_, g := m.ExampleGradient(x, 0)
	m.SGDStep(0.5, g)
	after := m.Loss(x, 0)
	if after >= before {
		t.Fatalf("SGD step did not reduce loss: %v -> %v", before, after)
	}
}
