package nn

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// Conv2D is a 2-D convolution over (C,H,W) tensors with square kernels,
// stride and symmetric zero padding. Weights are shaped
// (OutC, InC, K, K) and biases (OutC).
type Conv2D struct {
	InC, OutC      int
	K, Stride, Pad int
	InH, InW       int

	W, B   *tensor.Tensor
	GW, GB *tensor.Tensor
	in     *tensor.Tensor
}

// NewConv2D returns a convolution layer for (inC, inH, inW) inputs.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	if stride < 1 {
		panic("nn: conv stride must be >= 1")
	}
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		InH: inH, InW: inW,
		W:  tensor.New(outC, inC, k, k),
		B:  tensor.New(outC),
		GW: tensor.New(outC, inC, k, k),
		GB: tensor.New(outC),
	}
	fanIn := inC * k * k
	fanOut := outC * k * k
	rng.Xavier(c.W, fanIn, fanOut)
	return c
}

var _ Layer = (*Conv2D)(nil)

// OutH returns the output height.
func (c *Conv2D) OutH() int { return (c.InH+2*c.Pad-c.K)/c.Stride + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return (c.InW+2*c.Pad-c.K)/c.Stride + 1 }

// OutLen returns the flattened output size OutC*OutH*OutW.
func (c *Conv2D) OutLen() int { return c.OutC * c.OutH() * c.OutW() }

// Forward convolves one (InC,InH,InW) example.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Len() != c.InC*c.InH*c.InW {
		panic(fmt.Sprintf("nn: conv expects %d inputs, got %d", c.InC*c.InH*c.InW, x.Len()))
	}
	c.in = x
	oh, ow := c.OutH(), c.OutW()
	y := tensor.New(c.OutC, oh, ow)
	xd, wd, yd, bd := x.Data(), c.W.Data(), y.Data(), c.B.Data()
	k, st, pad := c.K, c.Stride, c.Pad
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := bd[oc]
				iy0 := oy*st - pad
				ix0 := ox*st - pad
				for ic := 0; ic < c.InC; ic++ {
					xBase := ic * c.InH * c.InW
					wBase := ((oc*c.InC + ic) * k) * k
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= c.InH {
							continue
						}
						xRow := xBase + iy*c.InW
						wRow := wBase + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= c.InW {
								continue
							}
							sum += wd[wRow+kx] * xd[xRow+ix]
						}
					}
				}
				yd[(oc*oh+oy)*ow+ox] = sum
			}
		}
	}
	return y
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	oh, ow := c.OutH(), c.OutW()
	dx := tensor.New(c.InC, c.InH, c.InW)
	xd, wd := c.in.Data(), c.W.Data()
	gd, gwd, gbd, dxd := grad.Data(), c.GW.Data(), c.GB.Data(), dx.Data()
	k, st, pad := c.K, c.Stride, c.Pad
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gd[(oc*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				gbd[oc] += g
				iy0 := oy*st - pad
				ix0 := ox*st - pad
				for ic := 0; ic < c.InC; ic++ {
					xBase := ic * c.InH * c.InW
					wBase := ((oc*c.InC + ic) * k) * k
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= c.InH {
							continue
						}
						xRow := xBase + iy*c.InW
						wRow := wBase + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= c.InW {
								continue
							}
							gwd[wRow+kx] += g * xd[xRow+ix]
							dxd[xRow+ix] += g * wd[wRow+kx]
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns {W, b}.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns {dW, db}.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.GW, c.GB} }

// ZeroGrads clears the accumulated gradients.
func (c *Conv2D) ZeroGrads() {
	c.GW.Zero()
	c.GB.Zero()
}

// Name returns "conv2d".
func (c *Conv2D) Name() string { return "conv2d" }
