package nn

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// Conv2D is a 2-D convolution over (C,H,W) tensors with square kernels,
// stride and symmetric zero padding. Weights are shaped
// (OutC, InC, K, K) and biases (OutC).
type Conv2D struct {
	InC, OutC      int
	K, Stride, Pad int
	InH, InW       int

	W, B   *tensor.Tensor
	GW, GB *tensor.Tensor
	in     *tensor.Tensor

	// Batched-engine state (see batch.go): per-example im2col patch
	// matrices for the whole batch (row i = example i's (C·K·K × OH·OW)
	// matrix, flattened), the cached output-gradient batch, owned
	// output/input-gradient buffers, and a patch-gradient scratch.
	arena   *tensor.Arena
	prec    string
	colsB   *tensor.Tensor
	gB      *tensor.Tensor
	yB, dxB *tensor.Tensor
	dcols   *tensor.Tensor
}

// NewConv2D returns a convolution layer for (inC, inH, inW) inputs.
func NewConv2D(inC, inH, inW, outC, k, stride, pad int, rng *tensor.RNG) *Conv2D {
	if stride < 1 {
		panic("nn: conv stride must be >= 1")
	}
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		InH: inH, InW: inW,
		W:  tensor.New(outC, inC, k, k),
		B:  tensor.New(outC),
		GW: tensor.New(outC, inC, k, k),
		GB: tensor.New(outC),
	}
	fanIn := inC * k * k
	fanOut := outC * k * k
	rng.Xavier(c.W, fanIn, fanOut)
	return c
}

var _ Layer = (*Conv2D)(nil)

// OutH returns the output height.
func (c *Conv2D) OutH() int { return (c.InH+2*c.Pad-c.K)/c.Stride + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return (c.InW+2*c.Pad-c.K)/c.Stride + 1 }

// OutLen returns the flattened output size OutC*OutH*OutW.
func (c *Conv2D) OutLen() int { return c.OutC * c.OutH() * c.OutW() }

// Forward convolves one (InC,InH,InW) example.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Len() != c.InC*c.InH*c.InW {
		panic(fmt.Sprintf("nn: conv expects %d inputs, got %d", c.InC*c.InH*c.InW, x.Len()))
	}
	c.in = x
	oh, ow := c.OutH(), c.OutW()
	y := tensor.New(c.OutC, oh, ow)
	xd, wd, yd, bd := x.Data(), c.W.Data(), y.Data(), c.B.Data()
	k, st, pad := c.K, c.Stride, c.Pad
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := bd[oc]
				iy0 := oy*st - pad
				ix0 := ox*st - pad
				for ic := 0; ic < c.InC; ic++ {
					xBase := ic * c.InH * c.InW
					wBase := ((oc*c.InC + ic) * k) * k
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= c.InH {
							continue
						}
						xRow := xBase + iy*c.InW
						wRow := wBase + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= c.InW {
								continue
							}
							sum += wd[wRow+kx] * xd[xRow+ix]
						}
					}
				}
				yd[(oc*oh+oy)*ow+ox] = sum
			}
		}
	}
	return y
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	oh, ow := c.OutH(), c.OutW()
	dx := tensor.New(c.InC, c.InH, c.InW)
	xd, wd := c.in.Data(), c.W.Data()
	gd, gwd, gbd, dxd := grad.Data(), c.GW.Data(), c.GB.Data(), dx.Data()
	k, st, pad := c.K, c.Stride, c.Pad
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gd[(oc*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				gbd[oc] += g
				iy0 := oy*st - pad
				ix0 := ox*st - pad
				for ic := 0; ic < c.InC; ic++ {
					xBase := ic * c.InH * c.InW
					wBase := ((oc*c.InC + ic) * k) * k
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= c.InH {
							continue
						}
						xRow := xBase + iy*c.InW
						wRow := wBase + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= c.InW {
								continue
							}
							gwd[wRow+kx] += g * xd[xRow+ix]
							dxd[xRow+ix] += g * wd[wRow+kx]
						}
					}
				}
			}
		}
	}
	return dx
}

var _ BatchLayer = (*Conv2D)(nil)

func (c *Conv2D) setArena(a *tensor.Arena) { c.arena = a }

var _ precisionLayer = (*Conv2D)(nil)

func (c *Conv2D) setPrecision(p string) { c.prec = p }

func (c *Conv2D) fp32() bool { return c.prec == tensor.PrecisionFP32 }

// patchDims returns the im2col geometry: rows C·K·K, columns OH·OW.
func (c *Conv2D) patchDims() (ckk, p int) {
	return c.InC * c.K * c.K, c.OutH() * c.OutW()
}

// biasRowSums reduces an (OutC × P) output-gradient matrix over its spatial
// columns — the bias gradient — accumulating into dst when add is set and
// overwriting otherwise.
func biasRowSums(dst, gd []float64, p int, add bool) {
	for oc := range dst {
		row := gd[oc*p : (oc+1)*p]
		var s float64
		for _, v := range row {
			s += v
		}
		if add {
			dst[oc] += s
		} else {
			dst[oc] = s
		}
	}
}

// ForwardBatch convolves a (B × InC·InH·InW) batch as im2col + GEMM: per
// example, Y_i = W_mat·cols_i + b with W viewed as (OutC × C·K·K). The
// output starts from the bias, mirroring the scalar reference's term order
// (bias first, then taps in (ic,ky,kx) order); because the NN GEMM kernel
// groups k-terms in pairs (see matmul.go), the result matches Forward to
// rounding error rather than bit-for-bit — parity tests pin it at 1e-9.
func (c *Conv2D) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	b := x.Shape()[0]
	if x.Shape()[1] != c.InC*c.InH*c.InW {
		panic(fmt.Sprintf("nn: conv expects batch width %d, got %v", c.InC*c.InH*c.InW, x.Shape()))
	}
	ckk, p := c.patchDims()
	c.colsB = ensureBuf(c.arena, c.colsB, b, ckk*p)
	c.yB = ensureBuf(c.arena, c.yB, b, c.OutLen())
	wmat := c.W.View(c.OutC, ckk)
	bd := c.B.Data()
	for i := 0; i < b; i++ {
		cols := c.colsB.Row(i).View(ckk, p)
		tensor.Im2Col(cols, x.Row(i), c.InC, c.InH, c.InW, c.K, c.Stride, c.Pad)
		y := c.yB.Row(i).View(c.OutC, p)
		yd := y.Data()
		for oc := 0; oc < c.OutC; oc++ {
			row := yd[oc*p : (oc+1)*p]
			for j := range row {
				row[j] = bd[oc]
			}
		}
		if c.fp32() {
			tensor.AddMatMul32(y, wmat, cols)
		} else {
			tensor.AddMatMul(y, wmat, cols)
		}
	}
	return c.yB
}

// BackwardBatch caches the output gradient and returns the input gradient:
// per example, dcols_i = W_matᵀ·dY_i followed by col2im.
func (c *Conv2D) BackwardBatch(grad *tensor.Tensor) *tensor.Tensor {
	c.gB = grad
	b := grad.Shape()[0]
	ckk, p := c.patchDims()
	c.dxB = ensureBuf(c.arena, c.dxB, b, c.InC*c.InH*c.InW)
	c.dcols = ensureBuf(c.arena, c.dcols, ckk, p)
	wmat := c.W.View(c.OutC, ckk)
	for i := 0; i < b; i++ {
		gi := grad.Row(i).View(c.OutC, p)
		if c.fp32() {
			tensor.MatMulTN32(c.dcols, wmat, gi)
		} else {
			tensor.MatMulTN(c.dcols, wmat, gi)
		}
		tensor.Col2Im(c.dxB.Row(i), c.dcols, c.InC, c.InH, c.InW, c.K, c.Stride, c.Pad)
	}
	return c.dxB
}

// AccumGrads adds the batch-summed gradients: GW += Σ_i dY_i·cols_iᵀ and
// GB += spatial sums of dY.
func (c *Conv2D) AccumGrads() {
	b := c.gB.Shape()[0]
	ckk, p := c.patchDims()
	gwmat := c.GW.View(c.OutC, ckk)
	gbd := c.GB.Data()
	for i := 0; i < b; i++ {
		gi := c.gB.Row(i).View(c.OutC, p)
		cols := c.colsB.Row(i).View(ckk, p)
		if c.fp32() {
			tensor.AddMatMulT32(gwmat, gi, cols)
		} else {
			tensor.AddMatMulT(gwmat, gi, cols)
		}
		biasRowSums(gbd, gi.Data(), p, true)
	}
}

// ExampleGrads recovers example i's gradients from the cached batch
// buffers: dW_i = dY_i·cols_iᵀ (one small GEMM), db_i = spatial sums.
func (c *Conv2D) ExampleGrads(i int, dst []*tensor.Tensor) {
	ckk, p := c.patchDims()
	gi := c.gB.Row(i).View(c.OutC, p)
	cols := c.colsB.Row(i).View(ckk, p)
	tensor.MatMulT(dst[0].View(c.OutC, ckk), gi, cols)
	biasRowSums(dst[1].Data(), gi.Data(), p, false)
}

// Params returns {W, b}.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns {dW, db}.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.GW, c.GB} }

// ZeroGrads clears the accumulated gradients.
func (c *Conv2D) ZeroGrads() {
	c.GW.Zero()
	c.GB.Zero()
}

// Name returns "conv2d".
func (c *Conv2D) Name() string { return "conv2d" }
