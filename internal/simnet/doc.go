// Package simnet is a deterministic fault-injection simulation harness for
// the federation runtime: an in-memory, single-process network fabric with
// net.Listener/net.Conn endpoints, a virtual clock, and a seeded fault
// plan.
//
// # Virtual time
//
// The fabric never sleeps. Clock satisfies the fl.Clock interface but
// advances only when an event advances it: delivering a message whose
// virtual stamp lies in the future jumps the clock to that stamp (the
// discrete-event rule), and tests advance it explicitly to fire deadline
// timers. Simulating a 500 ms round-trip therefore costs zero wall time,
// and a test suite sweeping latency distributions runs as fast as its
// compute.
//
// # Fault plan
//
// Plan is a pure function from (seed, round, client) — or, for transport
// faults, (seed, round, link, message) — to failure decisions: update
// loss, mid-round client crashes, server restarts between rounds, link
// latency/jitter, message cut/duplication, and asymmetric partitions. See
// ParsePlan for the grammar. Because nothing depends on goroutine timing,
// two runs of the same plan against the same seed inject byte-identical
// failures at any GOMAXPROCS — fault scenarios are reproducible test
// cases, not flakes.
//
// # Adversarial clients
//
// The same grammar declares clients that lie rather than fail:
// "byzantine=n:mode[:param]" corrupts n seeded clients' updates before
// submission (signflip negates, scale:λ multiplies, gauss:σ adds seeded
// Gaussian noise) and "poison=n:rate" gives n seeded clients a
// flipped-label view of their training shard (targeted y→y+1 mod
// classes). Identities are drawn at Bind, draws are keyed by dedicated
// Split labels, and overfull budgets — more attackers than clients, more
// seeded crashes than free (round, client) slots — are a loud Bind error
// rather than a silent truncation, so an attacked run replays
// bit-identically and never under-reports its attack load. See DESIGN.md,
// "Adversarial clients & robust aggregation".
//
// # Open-world population
//
// A third clause family makes the client population itself a scheduled,
// seeded input: "join=n@r" admits n fresh clients at round r, "leave=n@r"
// departs n clients permanently at round r, and "churn=rate" flips a
// seeded per-(round, client) coin so clients sit rounds out and return.
// Joiner and leaver identities are disjoint Bind-time draws on dedicated
// Split labels (17–19); Plan.ClientActive is the pure
// (seed, clientID, round) activity function every runtime consults
// through fl.Population. Event rounds outside [1, rounds) and join+leave
// budgets exceeding the registry are Bind errors. See DESIGN.md,
// "Open-world population".
//
// # Layering
//
// simnet depends only on internal/tensor (for the splittable RNG). The fl
// runtime consumes a Plan through its structural fl.FaultPlan interface
// (in-process injection) and the fabric through its DialFunc/net.Listener
// seams (RPC injection); core.RunSimnet drives a whole federated
// deployment — server, clients, restarts — over one fabric. See DESIGN.md,
// "Simnet".
package simnet
