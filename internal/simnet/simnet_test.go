package simnet

import (
	"bytes"
	"encoding/gob"
	"io"
	"net"
	"testing"
	"time"
)

func TestParsePlanGrammar(t *testing.T) {
	p, err := ParsePlan("drop=0.2, crash=2, restart=1, latency=5ms, jitter=2ms, dup=0.05, msgdrop=0.01, partition=c1>server@1-2, crash@3:7, restart@2")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropRate != 0.2 || p.CrashCount != 2 || p.RestartCount != 1 {
		t.Fatalf("parsed rates wrong: %+v", p)
	}
	if p.Latency != 5*time.Millisecond || p.Jitter != 2*time.Millisecond {
		t.Fatalf("parsed latency wrong: %v/%v", p.Latency, p.Jitter)
	}
	if p.DupRate != 0.05 || p.MsgDropRate != 0.01 {
		t.Fatalf("parsed message rates wrong: %+v", p)
	}
	if !p.Partitioned(1, "c1", "server") || !p.Partitioned(2, "c1", "server") {
		t.Fatal("partition window not honored")
	}
	if p.Partitioned(0, "c1", "server") || p.Partitioned(3, "c1", "server") || p.Partitioned(1, "server", "c1") {
		t.Fatal("partition leaked outside its window or direction")
	}
	b := p.Bind(1, 5, 10)
	if !b.CrashClient(3, 7) {
		t.Fatal("explicit crash event lost")
	}
	if !b.RestartServer(2) {
		t.Fatal("explicit restart event lost")
	}

	if _, err := ParsePlan(""); err != nil {
		t.Fatalf("empty plan must parse: %v", err)
	}
	for _, bad := range []string{
		"drop=1.5", "drop=x", "bogus=1", "crash@5", "crash@a:b", "restart@-1",
		"partition=a@1-2", "partition=a>b@2-1", "latency=-5ms", "crash=-1", "drop",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("plan %q must not parse", bad)
		}
	}
}

func TestPlanBindDeterministic(t *testing.T) {
	p := MustParsePlan("crash=3,restart=2,drop=0.3")
	a := p.Bind(42, 10, 20)
	b := p.Bind(42, 10, 20)
	if a.Events() != b.Events() {
		t.Fatalf("same seed bound different events: %s vs %s", a.Events(), b.Events())
	}
	if a.Events() == p.Bind(43, 10, 20).Events() {
		t.Fatal("different seeds bound identical events (vanishingly unlikely)")
	}
	// Exactly the budgeted number of distinct events.
	crashes, restarts := 0, 0
	for r := 0; r < 10; r++ {
		if a.RestartServer(r) {
			restarts++
		}
		for c := 0; c < 20; c++ {
			if a.CrashClient(r, c) {
				crashes++
			}
		}
	}
	if crashes != 3 || restarts != 2 {
		t.Fatalf("bound %d crashes / %d restarts, want 3/2", crashes, restarts)
	}
	if a.RestartServer(0) {
		t.Fatal("seeded restart landed before round 1")
	}
	// Drop coins are pure functions of (seed, round, client).
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			if a.DropUpdate(r, c) != b.DropUpdate(r, c) {
				t.Fatalf("drop coin (%d,%d) differs across identical binds", r, c)
			}
		}
	}
	// Rough rate check over a large population.
	wide := p.Bind(7, 100, 100)
	drops := 0
	for r := 0; r < 100; r++ {
		for c := 0; c < 100; c++ {
			if wide.DropUpdate(r, c) {
				drops++
			}
		}
	}
	if rate := float64(drops) / 10000; rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop rate %v far from 0.3", rate)
	}
}

func TestPlanBindOverfullBudgets(t *testing.T) {
	// Seeded budgets that exceed the slots explicit events left free must
	// saturate the domain and terminate — the regression here was an
	// infinite rejection-sampling loop.
	p := MustParsePlan("restart@1,restart=2")
	b := p.Bind(1, 3, 4) // only rounds 1 and 2 can host restarts
	restarts := 0
	for r := 0; r < 3; r++ {
		if b.RestartServer(r) {
			restarts++
		}
	}
	if restarts != 2 {
		t.Fatalf("bound %d restarts, want the full domain of 2", restarts)
	}
	c := MustParsePlan("crash@0:0,crash@0:1,crash=10").Bind(1, 1, 2)
	crashes := 0
	for id := 0; id < 2; id++ {
		if c.CrashClient(0, id) {
			crashes++
		}
	}
	if crashes != 2 {
		t.Fatalf("bound %d crashes, want the full domain of 2", crashes)
	}
}

func TestPlanUnboundSeededFaultsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("consulting an unbound seeded plan must panic")
		}
	}()
	MustParsePlan("crash=2").CrashClient(0, 0)
}

func TestNilPlanIsNull(t *testing.T) {
	var p *Plan
	if p.CrashClient(0, 0) || p.DropUpdate(0, 0) || p.RestartServer(1) || p.Partitioned(0, "a", "b") {
		t.Fatal("nil plan injected a fault")
	}
}

// dialPair opens a connected (client, server) conn pair through the fabric.
func dialPair(t *testing.T, n *Net, host, addr string, ln net.Listener) (net.Conn, net.Conn) {
	t.Helper()
	cc, err := n.Dialer(host)(addr)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return cc, sc
}

func TestFabricByteRoundTrip(t *testing.T) {
	n := New(1, nil)
	ln, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	cc, sc := dialPair(t, n, "c0", "server", ln)

	msg := []byte("hello fabric")
	go func() {
		cc.Write(msg)
		cc.Close()
	}()
	got, err := io.ReadAll(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
	if _, err := io.ReadAll(sc); err != nil {
		t.Fatalf("read after EOF: %v", err)
	}
	if cc.LocalAddr().String() != "c0" || cc.RemoteAddr().String() != "server" {
		t.Fatalf("client addrs %v→%v", cc.LocalAddr(), cc.RemoteAddr())
	}
}

func TestFabricGobSession(t *testing.T) {
	type ping struct{ X, Y float64 }
	n := New(1, nil)
	ln, _ := n.Listen("server")
	cc, sc := dialPair(t, n, "c0", "server", ln)
	defer cc.Close()
	defer sc.Close()

	done := make(chan error, 1)
	go func() {
		var p ping
		if err := gob.NewDecoder(sc).Decode(&p); err != nil {
			done <- err
			return
		}
		p.X, p.Y = p.Y, p.X
		done <- gob.NewEncoder(sc).Encode(p)
	}()
	if err := gob.NewEncoder(cc).Encode(ping{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	var back ping
	if err := gob.NewDecoder(cc).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if back.X != 2 || back.Y != 1 {
		t.Fatalf("echoed %+v", back)
	}
}

func TestFabricRefusedAndRebind(t *testing.T) {
	n := New(1, nil)
	if _, err := n.Dialer("c0")("server"); err == nil {
		t.Fatal("dial with no listener must be refused")
	}
	ln, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("server"); err == nil {
		t.Fatal("double bind must fail")
	}
	ln.Close()
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept on closed listener must fail")
	}
	if _, err := n.Dialer("c0")("server"); err == nil {
		t.Fatal("dial after listener close must be refused")
	}
	// A restarted server reclaims the address.
	if _, err := n.Listen("server"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestFabricPartitionBlocksDial(t *testing.T) {
	plan := MustParsePlan("partition=c1>server@1-2")
	n := New(1, plan)
	ln, _ := n.Listen("server")
	defer ln.Close()

	if _, err := n.Dialer("c1")("server"); err != nil {
		t.Fatalf("round 0 dial should pass: %v", err)
	}
	n.SetRound(1)
	if _, err := n.Dialer("c1")("server"); err == nil {
		t.Fatal("partitioned dial must fail")
	}
	if _, err := n.Dialer("c2")("server"); err != nil {
		t.Fatalf("unpartitioned host blocked: %v", err)
	}
	n.SetRound(3)
	if _, err := n.Dialer("c1")("server"); err != nil {
		t.Fatalf("partition must lift after its window: %v", err)
	}
}

func TestFabricLatencyAdvancesVirtualClock(t *testing.T) {
	plan := MustParsePlan("latency=250ms")
	n := New(1, plan)
	ln, _ := n.Listen("server")
	cc, sc := dialPair(t, n, "c0", "server", ln)
	defer cc.Close()
	defer sc.Close()

	start := n.Clock().Now()
	wall := time.Now()
	if _, err := cc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := sc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if got := n.Clock().Now().Sub(start); got < 250*time.Millisecond {
		t.Fatalf("virtual clock advanced %v, want ≥ 250ms", got)
	}
	if spent := time.Since(wall); spent > 100*time.Millisecond {
		t.Fatalf("virtual latency cost %v of real time — the fabric must not sleep", spent)
	}
}

func TestFabricMessageCutBreaksLink(t *testing.T) {
	plan := MustParsePlan("msgdrop=1") // every message is the last
	n := New(1, plan)
	ln, _ := n.Listen("server")
	cc, sc := dialPair(t, n, "c0", "server", ln)
	defer cc.Close()
	defer sc.Close()

	if _, err := cc.Write([]byte("doomed")); err != nil {
		t.Fatalf("the cutting write itself reports success (TCP buffers): %v", err)
	}
	if _, err := cc.Write([]byte("after")); err == nil {
		t.Fatal("write after cut must fail")
	}
	if _, err := sc.Read(make([]byte, 8)); err == nil {
		t.Fatal("peer read across a cut must fail")
	}
}

func TestFabricDuplicateDelivery(t *testing.T) {
	plan := MustParsePlan("dup=1")
	n := New(1, plan)
	ln, _ := n.Listen("server")
	cc, sc := dialPair(t, n, "c0", "server", ln)
	defer sc.Close()

	if _, err := cc.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	cc.Close()
	got, err := io.ReadAll(sc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abab" {
		t.Fatalf("read %q, want duplicated %q", got, "abab")
	}
}

func TestFabricFateDeterminism(t *testing.T) {
	// The same traffic pattern against the same seed meets the same fates,
	// run to run: collect the per-message survival mask twice and compare.
	run := func() []bool {
		plan := MustParsePlan("msgdrop=0.3")
		n := New(99, plan)
		var mask []bool
		for conn := 0; conn < 5; conn++ {
			ln, _ := n.Listen("server")
			cc, sc := dialPair(t, n, "c0", "server", ln)
			for msg := 0; msg < 6; msg++ {
				_, werr := cc.Write([]byte{byte(msg)})
				mask = append(mask, werr == nil)
			}
			cc.Close()
			sc.Close()
			ln.Close()
		}
		return mask
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d fate differs across identical runs", i)
		}
	}
	cut := 0
	for _, ok := range a {
		if !ok {
			cut++
		}
	}
	if cut == 0 {
		t.Fatal("msgdrop=0.3 over 30 messages cut nothing")
	}
}

func TestClockTimers(t *testing.T) {
	c := newClock()
	fired := c.After(100 * time.Millisecond)
	later := c.After(time.Hour)
	select {
	case <-fired:
		t.Fatal("timer fired before any advance")
	default:
	}
	c.Advance(100 * time.Millisecond)
	select {
	case <-fired:
	default:
		t.Fatal("due timer did not fire on advance")
	}
	select {
	case <-later:
		t.Fatal("undue timer fired")
	default:
	}
	if got := c.Now().Sub(simEpoch); got != 100*time.Millisecond {
		t.Fatalf("virtual now = %v", got)
	}
	// AdvanceTo is monotone.
	c.AdvanceTo(simEpoch)
	if got := c.Now().Sub(simEpoch); got != 100*time.Millisecond {
		t.Fatalf("AdvanceTo moved time backwards to %v", got)
	}
	immediate := c.After(0)
	select {
	case <-immediate:
	default:
		t.Fatal("non-positive After must fire immediately")
	}
}
