package simnet

import (
	"bytes"
	"encoding/gob"
	"io"
	"net"
	"testing"
	"time"

	"fedcdp/internal/tensor"
)

func TestParsePlanGrammar(t *testing.T) {
	p, err := ParsePlan("drop=0.2, crash=2, restart=1, latency=5ms, jitter=2ms, dup=0.05, msgdrop=0.01, partition=c1>server@1-2, crash@3:7, restart@2")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropRate != 0.2 || p.CrashCount != 2 || p.RestartCount != 1 {
		t.Fatalf("parsed rates wrong: %+v", p)
	}
	if p.Latency != 5*time.Millisecond || p.Jitter != 2*time.Millisecond {
		t.Fatalf("parsed latency wrong: %v/%v", p.Latency, p.Jitter)
	}
	if p.DupRate != 0.05 || p.MsgDropRate != 0.01 {
		t.Fatalf("parsed message rates wrong: %+v", p)
	}
	if !p.Partitioned(1, "c1", "server") || !p.Partitioned(2, "c1", "server") {
		t.Fatal("partition window not honored")
	}
	if p.Partitioned(0, "c1", "server") || p.Partitioned(3, "c1", "server") || p.Partitioned(1, "server", "c1") {
		t.Fatal("partition leaked outside its window or direction")
	}
	b := p.MustBind(1, 5, 10)
	if !b.CrashClient(3, 7) {
		t.Fatal("explicit crash event lost")
	}
	if !b.RestartServer(2) {
		t.Fatal("explicit restart event lost")
	}

	if _, err := ParsePlan(""); err != nil {
		t.Fatalf("empty plan must parse: %v", err)
	}
	for _, bad := range []string{
		"drop=1.5", "drop=x", "bogus=1", "crash@5", "crash@a:b", "restart@-1",
		"partition=a@1-2", "partition=a>b@2-1", "latency=-5ms", "crash=-1", "drop",
		// Hostile adversarial specs: malformed counts, modes, parameters.
		"byzantine=2", "byzantine=x:signflip", "byzantine=-1:signflip",
		"byzantine=2:bogus", "byzantine=2:signflip:3", "byzantine=2:scale:x",
		"byzantine=2:gauss:-1", "byzantine=2:scale:10:extra", "byzantine=2:scale:NaN",
		"poison=2", "poison=x:0.5", "poison=-1:0.5", "poison=2:1.5", "poison=2:x",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("plan %q must not parse", bad)
		}
	}
}

func TestParsePlanAdversarialGrammar(t *testing.T) {
	p := MustParsePlan("byzantine=2:scale:25, poison=3:0.8")
	if p.ByzantineCount != 2 || p.ByzantineMode != ByzScale || p.ByzantineParam != 25 {
		t.Fatalf("byzantine clause parsed wrong: %+v", p)
	}
	if p.PoisonCount != 3 || p.PoisonRate != 0.8 {
		t.Fatalf("poison clause parsed wrong: %+v", p)
	}
	// Mode parameter defaults.
	if p := MustParsePlan("byzantine=1:scale"); p.ByzantineParam != 10 {
		t.Fatalf("scale default λ = %v, want 10", p.ByzantineParam)
	}
	if p := MustParsePlan("byzantine=1:gauss"); p.ByzantineParam != 1 {
		t.Fatalf("gauss default σ = %v, want 1", p.ByzantineParam)
	}
}

func TestPlanBindDeterministic(t *testing.T) {
	p := MustParsePlan("crash=3,restart=2,drop=0.3")
	a := p.MustBind(42, 10, 20)
	b := p.MustBind(42, 10, 20)
	if a.Events() != b.Events() {
		t.Fatalf("same seed bound different events: %s vs %s", a.Events(), b.Events())
	}
	if a.Events() == p.MustBind(43, 10, 20).Events() {
		t.Fatal("different seeds bound identical events (vanishingly unlikely)")
	}
	// Exactly the budgeted number of distinct events.
	crashes, restarts := 0, 0
	for r := 0; r < 10; r++ {
		if a.RestartServer(r) {
			restarts++
		}
		for c := 0; c < 20; c++ {
			if a.CrashClient(r, c) {
				crashes++
			}
		}
	}
	if crashes != 3 || restarts != 2 {
		t.Fatalf("bound %d crashes / %d restarts, want 3/2", crashes, restarts)
	}
	if a.RestartServer(0) {
		t.Fatal("seeded restart landed before round 1")
	}
	// Drop coins are pure functions of (seed, round, client).
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			if a.DropUpdate(r, c) != b.DropUpdate(r, c) {
				t.Fatalf("drop coin (%d,%d) differs across identical binds", r, c)
			}
		}
	}
	// Rough rate check over a large population.
	wide := p.MustBind(7, 100, 100)
	drops := 0
	for r := 0; r < 100; r++ {
		for c := 0; c < 100; c++ {
			if wide.DropUpdate(r, c) {
				drops++
			}
		}
	}
	if rate := float64(drops) / 10000; rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop rate %v far from 0.3", rate)
	}
}

func TestPlanBindOverfullBudgets(t *testing.T) {
	// Seeded budgets that exceed the slots explicit events left free must
	// fail loudly at Bind — a silently truncated attack or fault load would
	// make an experiment report claim a plan it never ran.
	for _, tc := range []struct {
		plan            string
		rounds, clients int
	}{
		{"restart@1,restart=2", 3, 4},          // only rounds 1 and 2 can host restarts
		{"crash@0:0,crash@0:1,crash=10", 1, 2}, // 2 slots, 10 seeded crashes
		{"byzantine=5:signflip", 3, 4},         // 5 attackers in a 4-client population
		{"poison=7:0.5", 3, 4},                 // 7 poisoned of 4
	} {
		p := MustParsePlan(tc.plan)
		if _, err := p.Bind(1, tc.rounds, tc.clients); err == nil {
			t.Errorf("plan %q bound over (%d rounds, %d clients) must error",
				tc.plan, tc.rounds, tc.clients)
		}
	}
	// Exactly-full budgets still bind.
	if _, err := MustParsePlan("byzantine=4:signflip,poison=4:0.5").Bind(1, 3, 4); err != nil {
		t.Fatalf("exactly-full adversary budgets must bind: %v", err)
	}
}

func TestPlanAdversaryDeterministic(t *testing.T) {
	p := MustParsePlan("byzantine=2:gauss:0.5,poison=3:0.8")
	a := p.MustBind(42, 5, 10)
	b := p.MustBind(42, 5, 10)
	byz, poisoned := 0, 0
	for c := 0; c < 10; c++ {
		if a.ByzantineClient(c) != b.ByzantineClient(c) || a.PoisonedClient(c) != b.PoisonedClient(c) {
			t.Fatalf("client %d identity differs across identical binds", c)
		}
		if a.ByzantineClient(c) {
			byz++
		}
		if a.PoisonedClient(c) {
			poisoned++
		}
	}
	if byz != 2 || poisoned != 3 {
		t.Fatalf("bound %d byzantine / %d poisoned, want 2/3", byz, poisoned)
	}
	if a.Events() != b.Events() || a.Events() == p.MustBind(43, 5, 10).Events() {
		t.Fatalf("adversary events not seed-determined: %s", a.Events())
	}

	// Gauss corruption draws are pure functions of (seed, round, client):
	// the same update corrupted under two identical binds stays identical.
	mk := func() []*tensor.Tensor { return []*tensor.Tensor{tensor.FromSlice([]float64{1, 2, 3, 4}, 4)} }
	for c := 0; c < 10; c++ {
		ua, ub := mk(), mk()
		if a.CorruptUpdate(2, c, ua) != b.CorruptUpdate(2, c, ub) {
			t.Fatalf("client %d corruption verdict differs", c)
		}
		for i := range ua[0].Data() {
			if ua[0].Data()[i] != ub[0].Data()[i] {
				t.Fatalf("client %d gauss corruption not deterministic", c)
			}
		}
	}

	// Poison coins are pure functions of (seed, client, example index) and
	// flip to the fixed targeted class y→(y+1) mod classes.
	for c := 0; c < 10; c++ {
		for i := 0; i < 20; i++ {
			la, lb := a.PoisonLabel(c, i, 1, 3), b.PoisonLabel(c, i, 1, 3)
			if la != lb {
				t.Fatalf("poison coin (%d,%d) differs across identical binds", c, i)
			}
			if la != 1 && la != 2 {
				t.Fatalf("poison flip of label 1 gave %d, want 1 or 2", la)
			}
		}
	}
}

func TestPlanCorruptUpdateModes(t *testing.T) {
	mk := func() []*tensor.Tensor { return []*tensor.Tensor{tensor.FromSlice([]float64{1, -2, 3}, 3)} }
	attacker := func(p *Plan) int {
		t.Helper()
		for c := 0; c < 4; c++ {
			if p.ByzantineClient(c) {
				return c
			}
		}
		t.Fatal("no attacker bound")
		return -1
	}

	sf := MustParsePlan("byzantine=1:signflip").MustBind(7, 2, 4)
	u := mk()
	if !sf.CorruptUpdate(0, attacker(sf), u) {
		t.Fatal("signflip attacker did not corrupt")
	}
	for i, want := range []float64{-1, 2, -3} {
		if u[0].Data()[i] != want {
			t.Fatalf("signflip element %d = %v, want %v", i, u[0].Data()[i], want)
		}
	}

	sc := MustParsePlan("byzantine=1:scale:10").MustBind(7, 2, 4)
	u = mk()
	if !sc.CorruptUpdate(0, attacker(sc), u) {
		t.Fatal("scale attacker did not corrupt")
	}
	for i, want := range []float64{10, -20, 30} {
		if u[0].Data()[i] != want {
			t.Fatalf("scale element %d = %v, want %v", i, u[0].Data()[i], want)
		}
	}

	// Honest clients are never corrupted under any mode.
	for c := 0; c < 4; c++ {
		if c == attacker(sf) {
			continue
		}
		u = mk()
		if sf.CorruptUpdate(0, c, u) {
			t.Fatalf("honest client %d corrupted", c)
		}
		for i, want := range []float64{1, -2, 3} {
			if u[0].Data()[i] != want {
				t.Fatalf("honest update element %d mutated to %v", i, u[0].Data()[i])
			}
		}
	}
}

func TestPlanUnboundSeededFaultsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("consulting an unbound seeded plan must panic")
		}
	}()
	MustParsePlan("crash=2").CrashClient(0, 0)
}

func TestNilPlanIsNull(t *testing.T) {
	var p *Plan
	if p.CrashClient(0, 0) || p.DropUpdate(0, 0) || p.RestartServer(1) || p.Partitioned(0, "a", "b") {
		t.Fatal("nil plan injected a fault")
	}
	if p.ByzantineClient(0) || p.PoisonedClient(0) || p.CorruptUpdate(0, 0, nil) {
		t.Fatal("nil plan injected an adversary")
	}
	if p.PoisonLabel(0, 0, 1, 3) != 1 {
		t.Fatal("nil plan flipped a label")
	}
}

// dialPair opens a connected (client, server) conn pair through the fabric.
func dialPair(t *testing.T, n *Net, host, addr string, ln net.Listener) (net.Conn, net.Conn) {
	t.Helper()
	cc, err := n.Dialer(host)(addr)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return cc, sc
}

func TestFabricByteRoundTrip(t *testing.T) {
	n := New(1, nil)
	ln, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	cc, sc := dialPair(t, n, "c0", "server", ln)

	msg := []byte("hello fabric")
	go func() {
		cc.Write(msg)
		cc.Close()
	}()
	got, err := io.ReadAll(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
	if _, err := io.ReadAll(sc); err != nil {
		t.Fatalf("read after EOF: %v", err)
	}
	if cc.LocalAddr().String() != "c0" || cc.RemoteAddr().String() != "server" {
		t.Fatalf("client addrs %v→%v", cc.LocalAddr(), cc.RemoteAddr())
	}
}

func TestFabricGobSession(t *testing.T) {
	type ping struct{ X, Y float64 }
	n := New(1, nil)
	ln, _ := n.Listen("server")
	cc, sc := dialPair(t, n, "c0", "server", ln)
	defer cc.Close()
	defer sc.Close()

	done := make(chan error, 1)
	go func() {
		var p ping
		if err := gob.NewDecoder(sc).Decode(&p); err != nil {
			done <- err
			return
		}
		p.X, p.Y = p.Y, p.X
		done <- gob.NewEncoder(sc).Encode(p)
	}()
	if err := gob.NewEncoder(cc).Encode(ping{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	var back ping
	if err := gob.NewDecoder(cc).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if back.X != 2 || back.Y != 1 {
		t.Fatalf("echoed %+v", back)
	}
}

func TestFabricRefusedAndRebind(t *testing.T) {
	n := New(1, nil)
	if _, err := n.Dialer("c0")("server"); err == nil {
		t.Fatal("dial with no listener must be refused")
	}
	ln, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("server"); err == nil {
		t.Fatal("double bind must fail")
	}
	ln.Close()
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept on closed listener must fail")
	}
	if _, err := n.Dialer("c0")("server"); err == nil {
		t.Fatal("dial after listener close must be refused")
	}
	// A restarted server reclaims the address.
	if _, err := n.Listen("server"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestFabricPartitionBlocksDial(t *testing.T) {
	plan := MustParsePlan("partition=c1>server@1-2")
	n := New(1, plan)
	ln, _ := n.Listen("server")
	defer ln.Close()

	if _, err := n.Dialer("c1")("server"); err != nil {
		t.Fatalf("round 0 dial should pass: %v", err)
	}
	n.SetRound(1)
	if _, err := n.Dialer("c1")("server"); err == nil {
		t.Fatal("partitioned dial must fail")
	}
	if _, err := n.Dialer("c2")("server"); err != nil {
		t.Fatalf("unpartitioned host blocked: %v", err)
	}
	n.SetRound(3)
	if _, err := n.Dialer("c1")("server"); err != nil {
		t.Fatalf("partition must lift after its window: %v", err)
	}
}

func TestFabricLatencyAdvancesVirtualClock(t *testing.T) {
	plan := MustParsePlan("latency=250ms")
	n := New(1, plan)
	ln, _ := n.Listen("server")
	cc, sc := dialPair(t, n, "c0", "server", ln)
	defer cc.Close()
	defer sc.Close()

	start := n.Clock().Now()
	wall := time.Now()
	if _, err := cc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := sc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if got := n.Clock().Now().Sub(start); got < 250*time.Millisecond {
		t.Fatalf("virtual clock advanced %v, want ≥ 250ms", got)
	}
	if spent := time.Since(wall); spent > 100*time.Millisecond {
		t.Fatalf("virtual latency cost %v of real time — the fabric must not sleep", spent)
	}
}

func TestFabricMessageCutBreaksLink(t *testing.T) {
	plan := MustParsePlan("msgdrop=1") // every message is the last
	n := New(1, plan)
	ln, _ := n.Listen("server")
	cc, sc := dialPair(t, n, "c0", "server", ln)
	defer cc.Close()
	defer sc.Close()

	if _, err := cc.Write([]byte("doomed")); err != nil {
		t.Fatalf("the cutting write itself reports success (TCP buffers): %v", err)
	}
	if _, err := cc.Write([]byte("after")); err == nil {
		t.Fatal("write after cut must fail")
	}
	if _, err := sc.Read(make([]byte, 8)); err == nil {
		t.Fatal("peer read across a cut must fail")
	}
}

func TestFabricDuplicateDelivery(t *testing.T) {
	plan := MustParsePlan("dup=1")
	n := New(1, plan)
	ln, _ := n.Listen("server")
	cc, sc := dialPair(t, n, "c0", "server", ln)
	defer sc.Close()

	if _, err := cc.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	cc.Close()
	got, err := io.ReadAll(sc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abab" {
		t.Fatalf("read %q, want duplicated %q", got, "abab")
	}
}

func TestFabricFateDeterminism(t *testing.T) {
	// The same traffic pattern against the same seed meets the same fates,
	// run to run: collect the per-message survival mask twice and compare.
	run := func() []bool {
		plan := MustParsePlan("msgdrop=0.3")
		n := New(99, plan)
		var mask []bool
		for conn := 0; conn < 5; conn++ {
			ln, _ := n.Listen("server")
			cc, sc := dialPair(t, n, "c0", "server", ln)
			for msg := 0; msg < 6; msg++ {
				_, werr := cc.Write([]byte{byte(msg)})
				mask = append(mask, werr == nil)
			}
			cc.Close()
			sc.Close()
			ln.Close()
		}
		return mask
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d fate differs across identical runs", i)
		}
	}
	cut := 0
	for _, ok := range a {
		if !ok {
			cut++
		}
	}
	if cut == 0 {
		t.Fatal("msgdrop=0.3 over 30 messages cut nothing")
	}
}

func TestClockTimers(t *testing.T) {
	c := newClock()
	fired := c.After(100 * time.Millisecond)
	later := c.After(time.Hour)
	select {
	case <-fired:
		t.Fatal("timer fired before any advance")
	default:
	}
	c.Advance(100 * time.Millisecond)
	select {
	case <-fired:
	default:
		t.Fatal("due timer did not fire on advance")
	}
	select {
	case <-later:
		t.Fatal("undue timer fired")
	default:
	}
	if got := c.Now().Sub(simEpoch); got != 100*time.Millisecond {
		t.Fatalf("virtual now = %v", got)
	}
	// AdvanceTo is monotone.
	c.AdvanceTo(simEpoch)
	if got := c.Now().Sub(simEpoch); got != 100*time.Millisecond {
		t.Fatalf("AdvanceTo moved time backwards to %v", got)
	}
	immediate := c.After(0)
	select {
	case <-immediate:
	default:
		t.Fatal("non-positive After must fire immediately")
	}
}
