package simnet

import (
	"sync"
	"time"
)

// Clock is the fabric's virtual clock: it satisfies fl.Clock (Now/After)
// but never touches the wall — time only moves when an event moves it.
// Message deliveries advance it to their virtual arrival stamps (the
// discrete-event rule: a reader waiting for a future message jumps time to
// that message), and tests advance it explicitly to fire deadline timers.
// Because no component ever sleeps, a simnet run's wall-clock cost is pure
// compute regardless of the latency distribution it simulates.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	timers []clockTimer
}

type clockTimer struct {
	at time.Time
	ch chan time.Time
}

// simEpoch is virtual t=0. Any fixed instant works; Unix zero keeps
// timestamps readable in logs.
var simEpoch = time.Unix(0, 0).UTC()

func newClock() *Clock { return &Clock{now: simEpoch} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that receives the virtual time once the clock
// reaches now+d. Non-positive d fires immediately.
func (c *Clock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, clockTimer{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves virtual time forward by d, firing every timer whose
// deadline it crosses.
func (c *Clock) Advance(d time.Duration) { c.AdvanceTo(c.Now().Add(d)) }

// AdvanceTo moves virtual time to t (monotone: earlier instants are
// ignored) and fires due timers. Sends are buffered, so firing never
// blocks the advancing goroutine.
func (c *Clock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	kept := c.timers[:0]
	for _, tm := range c.timers {
		if !tm.at.After(c.now) {
			tm.ch <- c.now
		} else {
			kept = append(kept, tm)
		}
	}
	c.timers = kept
}
