package simnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Net is an in-memory, single-process network fabric: listeners and
// connections with net.Listener / net.Conn interfaces, a shared virtual
// Clock, and a seeded fault Plan deciding every message's fate. An entire
// multi-host federated deployment (server + clients) runs through it in
// one test process with zero real-time sleeps: latency, jitter, message
// loss, duplication and partitions are all virtual and all replayable from
// the seed.
//
// Stream semantics follow TCP: bytes within one connection are delivered
// reliably and in order, or the connection breaks (a lost message cuts the
// link — both ends observe errors, exactly the failure surface a real
// deployment sees). Reordering therefore happens across connections, via
// per-link latency and jitter, never inside one.
type Net struct {
	seed  int64
	plan  *Plan
	clock *Clock

	round atomic.Int64
	bytes atomic.Int64

	mu        sync.Mutex
	listeners map[string]*listener
	linkSeq   map[string]int64
}

// New returns a fabric driven by the given fault plan (nil = no faults).
func New(seed int64, plan *Plan) *Net {
	if plan == nil {
		plan = &Plan{}
	}
	return &Net{
		seed:      seed,
		plan:      plan,
		clock:     newClock(),
		listeners: map[string]*listener{},
		linkSeq:   map[string]int64{},
	}
}

// Clock returns the fabric's virtual clock (inject it wherever an fl.Clock
// is accepted so deadlines run on virtual time).
func (n *Net) Clock() *Clock { return n.clock }

// SetRound tells the fabric which federated round is in progress; fault
// coins and partitions are keyed by it. The round-loop harness calls it
// between rounds.
func (n *Net) SetRound(r int) { n.round.Store(int64(r)) }

// Round returns the fabric's current round.
func (n *Net) Round() int { return int(n.round.Load()) }

// BytesWritten returns the cumulative payload bytes written to all fabric
// connections since New — every Write counts, whether the fabric then
// delivers, duplicates or cuts the message. Harnesses diff it between
// rounds to report per-round wire traffic.
func (n *Net) BytesWritten() int64 { return n.bytes.Load() }

// errors surfaced by the fabric.
var (
	errLinkCut   = errors.New("simnet: connection reset (link cut)")
	errRefused   = errors.New("simnet: connection refused")
	errPartition = errors.New("simnet: host partitioned")
)

// simAddr is a fabric address (an arbitrary host string).
type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// listener is an in-fabric net.Listener bound to one address.
type listener struct {
	net     *Net
	addr    string
	pending chan *conn
	done    chan struct{}
	once    sync.Once
}

// Listen binds addr on the fabric. Rebinding a closed address works (a
// restarted server reclaims its old address); binding a live one errors.
func (n *Net) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("simnet: address %s in use", addr)
	}
	l := &listener{
		net:     n,
		addr:    addr,
		pending: make(chan *conn, 1024),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener: the address is released for rebinding.
func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return simAddr(l.addr) }

// Dialer returns a dial function for a named host on this fabric —
// fl.ClientOptions.Dial-compatible. The host name identifies the endpoint
// to partitions and per-link fault streams.
func (n *Net) Dialer(host string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) { return n.dial(host, addr) }
}

func (n *Net) dial(from, addr string) (net.Conn, error) {
	round := n.Round()
	if n.plan.Partitioned(round, from, addr) {
		return nil, fmt.Errorf("%w: %s cannot reach %s in round %d", errPartition, from, addr, round)
	}
	n.mu.Lock()
	l, ok := n.listeners[addr]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: no listener on %s", errRefused, addr)
	}
	seq := n.linkSeq[from+"|"+addr]
	n.linkSeq[from+"|"+addr] = seq + 1
	n.mu.Unlock()

	toClient := newQueue(n.clock)
	toServer := newQueue(n.clock)
	client := &conn{n: n, local: from, remote: addr, link: linkID(from, addr, seq), in: toClient, out: toServer}
	server := &conn{n: n, local: addr, remote: from, link: linkID(addr, from, seq), in: toServer, out: toClient}
	select {
	case l.pending <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: listener on %s closed", errRefused, addr)
	default:
		return nil, fmt.Errorf("simnet: %s backlog full", addr)
	}
}

// linkID derives the fault-stream key of one link direction. The nth
// connection for an ordered host pair always gets the same key, so message
// fates are independent of goroutine scheduling.
func linkID(from, to string, seq int64) uint64 {
	h := fnv.New64a()
	io.WriteString(h, from)
	h.Write([]byte{0})
	io.WriteString(h, to)
	h.Write([]byte{0, byte(seq), byte(seq >> 8), byte(seq >> 16), byte(seq >> 24), byte(seq >> 32), byte(seq >> 40), byte(seq >> 48), byte(seq >> 56)})
	return h.Sum64()
}

// message is one Write's payload with its virtual delivery stamp; cut
// marks the point where the link broke.
type message struct {
	data []byte
	at   time.Time
	cut  bool
}

// queue is one direction of a connection: a FIFO of messages plus the
// stream state the reader consumes it through.
type queue struct {
	clock   *Clock
	mu      sync.Mutex
	cond    *sync.Cond
	msgs    []message
	head    []byte // partially consumed front message
	cut     bool   // link broke at the front of the stream
	closed  bool   // writer closed: EOF after drain
	rclosed bool   // reader closed: reads fail immediately
}

func newQueue(clock *Clock) *queue {
	q := &queue{clock: clock}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(data []byte, at time.Time, cut bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.msgs = append(q.msgs, message{data: data, at: at, cut: cut})
	q.cond.Broadcast()
}

func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

func (q *queue) rclose() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.rclosed = true
	q.cond.Broadcast()
}

// read blocks until stream bytes, EOF, or a failure is available. When the
// front message carries a future virtual stamp, reading it advances the
// fabric clock to that stamp — the discrete-event rule that gives latency
// meaning without any real sleeping.
func (q *queue) read(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		switch {
		case q.rclosed:
			return 0, net.ErrClosed
		case q.cut:
			return 0, errLinkCut
		case len(q.head) > 0:
			n := copy(p, q.head)
			q.head = q.head[n:]
			return n, nil
		case len(q.msgs) > 0:
			m := q.msgs[0]
			q.msgs = q.msgs[1:]
			q.clock.AdvanceTo(m.at)
			if m.cut {
				q.cut = true
				return 0, errLinkCut
			}
			q.head = m.data
		case q.closed:
			return 0, io.EOF
		default:
			q.cond.Wait()
		}
	}
}

// conn is one endpoint of an in-fabric connection.
type conn struct {
	n      *Net
	local  string
	remote string
	link   uint64
	in     *queue // this endpoint reads here
	out    *queue // this endpoint writes into the peer's inbound queue

	mu      sync.Mutex
	seq     int64
	lastAt  time.Time
	cutSend bool
	closed  bool
}

// Read implements net.Conn.
func (c *conn) Read(p []byte) (int, error) { return c.in.read(p) }

// Write implements net.Conn: each call is one fabric message. The plan
// decides its fate — cut (lost; the link breaks for both directions of
// traffic past this point), duplicated, or delayed. Delivery stamps are
// monotone per link, preserving TCP's in-order contract.
func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	if c.cutSend {
		return 0, errLinkCut
	}
	seq := c.seq
	c.seq++
	c.n.bytes.Add(int64(len(p)))
	cut, dup, delay := c.n.plan.msgFate(c.n.seed, c.n.Round(), c.link, seq)
	at := c.n.clock.Now().Add(delay)
	if at.Before(c.lastAt) {
		at = c.lastAt
	}
	c.lastAt = at
	if cut {
		// The message is lost and the stream cannot recover: the peer
		// observes a reset once it drains what was delivered before the
		// cut, and this endpoint's next write fails.
		c.cutSend = true
		c.out.push(nil, at, true)
		return len(p), nil
	}
	data := append([]byte(nil), p...)
	c.out.push(data, at, false)
	if dup {
		c.out.push(append([]byte(nil), data...), at, false)
	}
	return len(p), nil
}

// Close implements net.Conn: the peer sees EOF after draining delivered
// bytes; local reads fail immediately.
func (c *conn) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if already {
		return nil
	}
	c.out.close()
	c.in.rclose()
	return nil
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return simAddr(c.local) }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return simAddr(c.remote) }

// SetDeadline implements net.Conn. Fabric I/O deadlines are advisory
// no-ops: real deadlines exist to bound I/O against wall time, and the
// fabric has no wall — round-level cutoffs run on the virtual Clock
// instead.
func (c *conn) SetDeadline(t time.Time) error { return nil }

// SetReadDeadline implements net.Conn (no-op; see SetDeadline).
func (c *conn) SetReadDeadline(t time.Time) error { return nil }

// SetWriteDeadline implements net.Conn (no-op; see SetDeadline).
func (c *conn) SetWriteDeadline(t time.Time) error { return nil }
