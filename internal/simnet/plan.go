package simnet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"fedcdp/internal/tensor"
)

// Reserved tensor.Split label spaces under the root seed. Labels 1–7 and 12
// are claimed by the fl package (model init, server RNG, cohort sampling,
// client RNG, dropout coins, counter noise streams, Floyd sampling — see
// fl/doc.go); the simnet fault plan claims 8–11 for benign fault coins and
// 13–16 for adversarial draws, so no attack stream ever collides with a
// training stream.
const (
	labelDrop       = 8  // per-(round, client) update-loss coins
	labelCrash      = 9  // seeded crash event placement
	labelRestart    = 10 // seeded restart round placement
	labelMessage    = 11 // per-message transport coins (cut/dup/jitter)
	labelByzantine  = 13 // seeded Byzantine attacker identities
	labelPoison     = 14 // seeded poisoned-client identities
	labelAttack     = 15 // per-(round, client) Byzantine noise draws (gauss mode)
	labelPoisonFlip = 16 // per-(client, example) targeted label-flip coins
	labelJoin       = 17 // seeded late-joiner identities (open-world population)
	labelLeave      = 18 // seeded leaver identities (open-world population)
	labelChurn      = 19 // per-(round, client) away-this-round churn coins
)

// Byzantine update-corruption modes (the byzantine=n:mode clause).
const (
	// ByzSignFlip negates the attacker's update: ΔW → −ΔW, the classic
	// directed attack a coordinate-median defense is built for.
	ByzSignFlip = "signflip"
	// ByzScale multiplies the attacker's update by λ (the clause's third
	// field, default 10): ΔW → λ·ΔW. Large |λ| lets a small attacker
	// minority dominate — and break — an unguarded mean fold.
	ByzScale = "scale"
	// ByzGauss replaces nothing but adds N(0, σ²) noise per coordinate
	// (σ from the clause's third field, default 1), drawn from the plan
	// seed so the "random" attack replays bit-identically.
	ByzGauss = "gauss"
)

// partition is one asymmetric reachability hole: from cannot open new
// connections to to during rounds [fromRound, toRound].
type partition struct {
	from, to           string
	fromRound, toRound int
}

// PopEvent is one structural population event from a join=n@r or leave=n@r
// clause: Count seeded client identities arrive (or depart) at Round.
type PopEvent struct {
	Count int
	Round int
}

// Plan is a deterministic fault plan: every decision it makes is a pure
// function of (seed, round, client) or (seed, round, link, message), so two
// runs of the same plan against the same seed inject byte-identical
// failures regardless of goroutine scheduling or GOMAXPROCS.
//
// A plan is built with ParsePlan from a compact grammar (see ParsePlan) and
// must be Bound to a (seed, rounds, clients) population before use when it
// carries seeded event counts (crash=N, restart=N); explicit events
// (crash@r:c, restart@r) work unbound. The zero Plan (and a nil *Plan)
// injects nothing.
type Plan struct {
	// DropRate is the per-(round, client) probability that a client's
	// update is lost in transit after local training completes.
	DropRate float64
	// DupRate is the per-message probability that the transport delivers a
	// message twice (stresses the wire codec and ack protocol).
	DupRate float64
	// MsgDropRate is the per-message probability that the link cuts at that
	// message: the message is lost and the connection breaks — TCP's
	// observable failure mode for unrecoverable loss.
	MsgDropRate float64
	// Latency and Jitter shape per-message virtual delivery delay:
	// delay = Latency + U[0, Jitter). Virtual time only — no real sleeps.
	Latency, Jitter time.Duration
	// CrashCount and RestartCount are seeded event budgets materialized by
	// Bind: CrashCount mid-round client crashes at distinct (round, client)
	// pairs, RestartCount server restarts between rounds.
	CrashCount, RestartCount int

	// ByzantineCount Byzantine attackers are materialized by Bind as
	// distinct seeded client identities; each corrupts every update it
	// submits per ByzantineMode (ByzSignFlip, ByzScale, ByzGauss).
	// ByzantineParam is the mode's parameter: λ for scale, σ for gauss.
	ByzantineCount int
	ByzantineMode  string
	ByzantineParam float64

	// PoisonCount poisoned clients are materialized by Bind as distinct
	// seeded identities; each flips its local labels y → (y+1) mod classes
	// at rate PoisonRate, per-(client, example) coins on the plan seed
	// (targeted label-flipping — the same corrupted shard every round).
	PoisonCount int
	PoisonRate  float64

	// ChurnRate is the per-(round, client) probability that an otherwise
	// registered client is away this round — memoryless availability churn,
	// so departed clients return on their own seeded schedule. Joins and
	// Leaves are the plan's structural population events: each entry joins
	// (or removes) Count seeded client identities starting at Round.
	// Together they define the open-world population (see ClientActive).
	ChurnRate float64
	Joins     []PopEvent
	Leaves    []PopEvent

	crashes    map[[2]int]bool // explicit + bound (round, client) crash events
	restarts   map[int]bool    // explicit + bound restart-before rounds
	byz        map[int]bool    // bound Byzantine attacker identities
	poisoned   map[int]bool    // bound poisoned-client identities
	arrivals   map[int]int     // bound late-joiner id → first active round
	departures map[int]int     // bound leaver id → first inactive round
	parts      []partition

	seed  int64
	bound bool
}

// ParsePlan parses the fault-plan grammar: a comma-separated list of
// clauses, each of which is one of
//
//	drop=0.2            per-(round,client) update-loss probability
//	crash=2             2 seeded mid-round client crashes (needs Bind)
//	crash@3:7           client 7 crashes mid-round in round 3
//	restart=1           1 seeded server restart between rounds (needs Bind)
//	restart@2           server restarts between rounds 1 and 2
//	latency=5ms         per-message virtual link latency
//	jitter=2ms          uniform per-message latency jitter on top
//	dup=0.05            per-message duplication probability
//	msgdrop=0.01        per-message link-cut probability
//	partition=a>b@1-2   host a cannot dial host b during rounds 1..2
//	byzantine=2:signflip    2 seeded Byzantine clients negate their updates
//	byzantine=2:scale:10    ... scale their updates by λ=10 (needs Bind)
//	byzantine=2:gauss:0.5   ... add seeded N(0, 0.5²) noise per coordinate
//	poison=2:0.8        2 seeded clients label-flip 80% of their shard
//	join=2@3            2 seeded clients first arrive at round 3 (needs Bind)
//	leave=1@5           1 seeded client departs at round 5 (needs Bind)
//	churn=0.1           per-(round,client) away-this-round probability
//
// The empty string is the null plan. Probabilities must lie in [0,1];
// counts, rounds and durations must be non-negative. Adversarial clauses
// (byzantine, poison) and population clauses (join, leave) carry seeded
// identity budgets and need Bind; churn is a per-round coin like drop.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{crashes: map[[2]int]bool{}, restarts: map[int]bool{}}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := p.parseClause(clause); err != nil {
			return nil, fmt.Errorf("simnet: plan clause %q: %w", clause, err)
		}
	}
	return p, nil
}

// MustParsePlan is ParsePlan panicking on error (tests, fixed literals).
func MustParsePlan(spec string) *Plan {
	p, err := ParsePlan(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Plan) parseClause(clause string) error {
	// Event clauses: crash@r:c, restart@r. Rate clauses carry "=" (and the
	// partition clause's value itself contains "@"), so check for "=" first.
	if name, arg, ok := strings.Cut(clause, "@"); ok && !strings.Contains(clause, "=") {
		switch name {
		case "crash":
			rs, cs, ok := strings.Cut(arg, ":")
			if !ok {
				return fmt.Errorf("want crash@round:client")
			}
			r, err1 := strconv.Atoi(rs)
			c, err2 := strconv.Atoi(cs)
			if err1 != nil || err2 != nil || r < 0 || c < 0 {
				return fmt.Errorf("invalid crash event %q", arg)
			}
			p.crashes[[2]int{r, c}] = true
			return nil
		case "restart":
			r, err := strconv.Atoi(arg)
			if err != nil || r < 0 {
				return fmt.Errorf("invalid restart round %q", arg)
			}
			p.restarts[r] = true
			return nil
		case "partition":
			return fmt.Errorf("want partition=from>to@r1-r2")
		default:
			return fmt.Errorf("unknown event %q", name)
		}
	}
	name, val, ok := strings.Cut(clause, "=")
	if !ok {
		return fmt.Errorf("want name=value or name@event")
	}
	prob := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v < 0 || v > 1 {
			return fmt.Errorf("probability %q outside [0,1]", val)
		}
		*dst = v
		return nil
	}
	count := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil || v < 0 {
			return fmt.Errorf("invalid count %q", val)
		}
		*dst = v
		return nil
	}
	dur := func(dst *time.Duration) error {
		v, err := time.ParseDuration(val)
		if err != nil || v < 0 {
			return fmt.Errorf("invalid duration %q", val)
		}
		*dst = v
		return nil
	}
	switch name {
	case "drop":
		return prob(&p.DropRate)
	case "dup":
		return prob(&p.DupRate)
	case "msgdrop":
		return prob(&p.MsgDropRate)
	case "crash":
		return count(&p.CrashCount)
	case "restart":
		return count(&p.RestartCount)
	case "byzantine":
		return p.parseByzantine(val)
	case "poison":
		return p.parsePoison(val)
	case "churn":
		return prob(&p.ChurnRate)
	case "join":
		return parsePopEvent(val, &p.Joins)
	case "leave":
		return parsePopEvent(val, &p.Leaves)
	case "latency":
		return dur(&p.Latency)
	case "jitter":
		return dur(&p.Jitter)
	case "partition":
		ends, window, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("want partition=from>to@r1-r2")
		}
		from, to, ok := strings.Cut(ends, ">")
		if !ok || from == "" || to == "" {
			return fmt.Errorf("want from>to endpoints")
		}
		r1s, r2s, ok := strings.Cut(window, "-")
		if !ok {
			r2s = r1s
		}
		r1, err1 := strconv.Atoi(r1s)
		r2, err2 := strconv.Atoi(r2s)
		if err1 != nil || err2 != nil || r1 < 0 || r2 < r1 {
			return fmt.Errorf("invalid round window %q", window)
		}
		p.parts = append(p.parts, partition{from: from, to: to, fromRound: r1, toRound: r2})
		return nil
	default:
		return fmt.Errorf("unknown fault %q", name)
	}
}

// parseByzantine parses "n:mode[:param]" — count, corruption mode, and the
// mode's parameter (λ for scale, σ for gauss; signflip takes none).
func (p *Plan) parseByzantine(val string) error {
	fields := strings.Split(val, ":")
	if len(fields) < 2 {
		return fmt.Errorf("want byzantine=n:mode[:param]")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return fmt.Errorf("invalid count %q", fields[0])
	}
	mode := fields[1]
	param := 0.0
	switch mode {
	case ByzSignFlip:
		if len(fields) > 2 {
			return fmt.Errorf("signflip takes no parameter")
		}
	case ByzScale:
		param = 10
	case ByzGauss:
		param = 1
	default:
		return fmt.Errorf("unknown byzantine mode %q (want signflip, scale or gauss)", mode)
	}
	if len(fields) > 3 {
		return fmt.Errorf("want byzantine=n:mode[:param]")
	}
	if len(fields) == 3 {
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("invalid %s parameter %q", mode, fields[2])
		}
		if mode == ByzGauss && v < 0 {
			return fmt.Errorf("negative gauss σ %q", fields[2])
		}
		param = v
	}
	p.ByzantineCount, p.ByzantineMode, p.ByzantineParam = n, mode, param
	return nil
}

// parsePopEvent parses "n@r" — a count of seeded client identities and the
// round the event takes effect — for the join and leave clauses.
func parsePopEvent(val string, dst *[]PopEvent) error {
	ns, rs, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want n@round")
	}
	n, err1 := strconv.Atoi(ns)
	r, err2 := strconv.Atoi(rs)
	if err1 != nil || n < 0 {
		return fmt.Errorf("invalid count %q", ns)
	}
	if err2 != nil || r < 0 {
		return fmt.Errorf("invalid round %q", rs)
	}
	*dst = append(*dst, PopEvent{Count: n, Round: r})
	return nil
}

// parsePoison parses "n:rate" — count of poisoned clients and the fraction
// of each poisoned shard whose labels are flipped.
func (p *Plan) parsePoison(val string) error {
	ns, rs, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("want poison=n:rate")
	}
	n, err := strconv.Atoi(ns)
	if err != nil || n < 0 {
		return fmt.Errorf("invalid count %q", ns)
	}
	rate, err := strconv.ParseFloat(rs, 64)
	if err != nil || rate < 0 || rate > 1 {
		return fmt.Errorf("poison rate %q outside [0,1]", rs)
	}
	p.PoisonCount, p.PoisonRate = n, rate
	return nil
}

// Bind materializes the plan's seeded event budgets against a concrete
// population: CrashCount crashes land on distinct seeded (round, client)
// pairs in [0,rounds)×[0,clients), RestartCount restarts on distinct seeded
// rounds in [1,rounds) ("between rounds" — a restart before round 0 is a
// cold start, not a fault), and ByzantineCount/PoisonCount adversaries on
// distinct seeded client identities in [0,clients). Event placement is a
// pure function of the seed, so the same (plan, seed, population) always
// fails — and attacks — the same way. Bind returns a bound copy; the
// receiver is not modified.
//
// A budget that exceeds its domain is a configuration error, not a request
// to saturate: a plan demanding more crashes than there are (round, client)
// slots, more restarts than between-round gaps, or more attackers than
// clients fails loudly here rather than silently injecting fewer faults
// than the experiment was told it ran under.
func (p *Plan) Bind(seed int64, rounds, clients int) (*Plan, error) {
	b := *p
	b.crashes = map[[2]int]bool{}
	for e := range p.crashes {
		b.crashes[e] = true
	}
	b.restarts = map[int]bool{}
	for r := range p.restarts {
		b.restarts[r] = true
	}
	b.byz = map[int]bool{}
	b.poisoned = map[int]bool{}
	b.seed = seed
	b.bound = true
	if p.CrashCount > 0 {
		// The budget must fit the slots explicit crash@ events have not
		// already taken — rejection sampling on a full domain would spin
		// forever, and a silently truncated budget would lie about the run.
		taken := 0
		for e := range b.crashes {
			if e[0] < rounds && e[1] < clients {
				taken++
			}
		}
		if free := rounds*clients - taken; p.CrashCount > free {
			return nil, fmt.Errorf("simnet: crash=%d exceeds the %d free (round, client) slots of a %d-round, %d-client run", p.CrashCount, free, rounds, clients)
		}
		rng := tensor.Split(seed, labelCrash)
		for n := 0; n < p.CrashCount; {
			e := [2]int{rng.Intn(rounds), rng.Intn(clients)}
			if !b.crashes[e] {
				b.crashes[e] = true
				n++
			}
		}
	}
	if p.RestartCount > 0 {
		taken := 0
		for r := range b.restarts {
			if r >= 1 && r < rounds {
				taken++
			}
		}
		free := rounds - 1 - taken
		if free < 0 {
			free = 0
		}
		if p.RestartCount > free {
			return nil, fmt.Errorf("simnet: restart=%d exceeds the %d free between-round gaps of a %d-round run", p.RestartCount, free, rounds)
		}
		rng := tensor.Split(seed, labelRestart)
		for n := 0; n < p.RestartCount; {
			r := 1 + rng.Intn(rounds-1)
			if !b.restarts[r] {
				b.restarts[r] = true
				n++
			}
		}
	}
	if p.ByzantineCount > 0 {
		if p.ByzantineCount > clients {
			return nil, fmt.Errorf("simnet: byzantine=%d exceeds the %d-client population", p.ByzantineCount, clients)
		}
		drawIdentities(b.byz, tensor.Split(seed, labelByzantine), p.ByzantineCount, clients)
	}
	if p.PoisonCount > 0 {
		if p.PoisonCount > clients {
			return nil, fmt.Errorf("simnet: poison=%d exceeds the %d-client population", p.PoisonCount, clients)
		}
		drawIdentities(b.poisoned, tensor.Split(seed, labelPoison), p.PoisonCount, clients)
	}
	if err := b.bindPopulation(seed, rounds, clients); err != nil {
		return nil, err
	}
	return &b, nil
}

// bindPopulation materializes the join/leave identity budgets: joiners are
// distinct seeded ids across all join events (in clause order), leavers are
// distinct seeded ids drawn from the clients that are not late joiners —
// so every materialized lifecycle is coherent (arrive, then maybe depart).
// Events at round 0 or past the horizon are configuration errors: a "join"
// before the first round is not an arrival, and an event the run never
// reaches would lie about the population the experiment was told it had.
func (p *Plan) bindPopulation(seed int64, rounds, clients int) error {
	p.arrivals = map[int]int{}
	p.departures = map[int]int{}
	joining, leaving := 0, 0
	for _, e := range p.Joins {
		joining += e.Count
	}
	for _, e := range p.Leaves {
		leaving += e.Count
	}
	if joining == 0 && leaving == 0 {
		return nil
	}
	for _, e := range append(append([]PopEvent{}, p.Joins...), p.Leaves...) {
		if e.Round < 1 || e.Round >= rounds {
			return fmt.Errorf("simnet: population event round %d outside [1, %d) of a %d-round run", e.Round, rounds, rounds)
		}
	}
	if joining+leaving > clients {
		return fmt.Errorf("simnet: join+leave budgets (%d+%d) exceed the %d-client population", joining, leaving, clients)
	}
	joinRNG := tensor.Split(seed, labelJoin)
	taken := map[int]bool{}
	for _, e := range p.Joins {
		for n := 0; n < e.Count; {
			id := joinRNG.Intn(clients)
			if !taken[id] {
				taken[id] = true
				p.arrivals[id] = e.Round
				n++
			}
		}
	}
	leaveRNG := tensor.Split(seed, labelLeave)
	for _, e := range p.Leaves {
		for n := 0; n < e.Count; {
			id := leaveRNG.Intn(clients)
			if !taken[id] {
				taken[id] = true
				p.departures[id] = e.Round
				n++
			}
		}
	}
	return nil
}

// MustBind is Bind panicking on error (tests, fixed literals known valid).
func (p *Plan) MustBind(seed int64, rounds, clients int) *Plan {
	b, err := p.Bind(seed, rounds, clients)
	if err != nil {
		panic(err)
	}
	return b
}

// drawIdentities rejection-samples n distinct client ids in [0, clients)
// into set; the caller has verified n ≤ clients.
func drawIdentities(set map[int]bool, rng *tensor.RNG, n, clients int) {
	for got := 0; got < n; {
		id := rng.Intn(clients)
		if !set[id] {
			set[id] = true
			got++
		}
	}
}

// mustBeBound guards the seeded-event accessors: consulting a plan whose
// seeded budgets were never materialized would silently inject nothing,
// which is the one failure mode a fault-injection harness must not have.
func (p *Plan) mustBeBound() {
	if !p.bound && (p.CrashCount > 0 || p.RestartCount > 0 || p.DropRate > 0 ||
		p.ByzantineCount > 0 || p.PoisonCount > 0 ||
		p.ChurnRate > 0 || len(p.Joins) > 0 || len(p.Leaves) > 0) {
		panic("simnet: plan with seeded faults used before Bind (call Plan.Bind(seed, rounds, clients))")
	}
}

// CrashClient reports whether client crashes mid-round in round: it trains
// (or partially trains) but its update never reaches the server.
func (p *Plan) CrashClient(round, client int) bool {
	if p == nil {
		return false
	}
	p.mustBeBound()
	return p.crashes[[2]int{round, client}]
}

// DropUpdate reports whether client's round update is lost in transit — a
// seeded coin at rate DropRate, independent per (round, client).
func (p *Plan) DropUpdate(round, client int) bool {
	if p == nil || p.DropRate <= 0 {
		return false
	}
	p.mustBeBound()
	return tensor.Split(p.seed, labelDrop, int64(round), int64(client)).Float64() < p.DropRate
}

// RestartServer reports whether the server restarts between round-1 and
// round, losing all in-memory state except its checkpoint.
func (p *Plan) RestartServer(round int) bool {
	if p == nil {
		return false
	}
	p.mustBeBound()
	return p.restarts[round]
}

// Partitioned reports whether host from cannot reach host to in round.
func (p *Plan) Partitioned(round int, from, to string) bool {
	if p == nil {
		return false
	}
	for _, pt := range p.parts {
		if pt.from == from && pt.to == to && round >= pt.fromRound && round <= pt.toRound {
			return true
		}
	}
	return false
}

// ByzantineClient reports whether client is one of the plan's seeded
// Byzantine attackers — a whole-horizon identity, not a per-round coin.
func (p *Plan) ByzantineClient(client int) bool {
	if p == nil || p.ByzantineCount == 0 {
		return false
	}
	p.mustBeBound()
	return p.byz[client]
}

// PoisonedClient reports whether client's local shard is targeted by the
// plan's label-flipping poisoners. Part of fl.AdversaryPlan (structurally).
func (p *Plan) PoisonedClient(client int) bool {
	if p == nil || p.PoisonCount == 0 {
		return false
	}
	p.mustBeBound()
	return p.poisoned[client]
}

// CorruptUpdate rewrites a Byzantine client's round update in place per the
// plan's mode, reporting whether it did; honest clients pass through
// untouched. The gauss draw is keyed by (seed, round, client), so the
// corruption — like every other plan decision — is a pure function of the
// plan, never of scheduling. Part of fl.AdversaryPlan (structurally).
func (p *Plan) CorruptUpdate(round, client int, update []*tensor.Tensor) bool {
	if !p.ByzantineClient(client) {
		return false
	}
	switch p.ByzantineMode {
	case ByzSignFlip:
		for _, t := range update {
			d := t.Data()
			for i := range d {
				d[i] = -d[i]
			}
		}
	case ByzScale:
		for _, t := range update {
			d := t.Data()
			for i := range d {
				d[i] *= p.ByzantineParam
			}
		}
	case ByzGauss:
		rng := tensor.Split(p.seed, labelAttack, int64(round), int64(client))
		for _, t := range update {
			rng.AddNormal(t, p.ByzantineParam)
		}
	}
	return true
}

// PoisonLabel applies targeted label-flipping for a poisoned client's
// example: a per-(client, example) seeded coin at PoisonRate maps
// y → (y+1) mod classes — the attacker consistently mislabels, it does not
// randomize. Honest clients (and below-rate coins) return label unchanged.
// Part of fl.AdversaryPlan (structurally).
func (p *Plan) PoisonLabel(client, index, label, classes int) int {
	if classes < 2 || !p.PoisonedClient(client) {
		return label
	}
	if tensor.Split(p.seed, labelPoisonFlip, int64(client), int64(index)).Float64() < p.PoisonRate {
		return (label + 1) % classes
	}
	return label
}

// PopulationDynamic reports whether the plan carries any open-world
// population clauses (join, leave, churn) — i.e. whether the active client
// set can differ from the full registry in some round. Part of
// fl.PopulationPlan (structurally).
func (p *Plan) PopulationDynamic() bool {
	if p == nil {
		return false
	}
	return p.ChurnRate > 0 || len(p.Joins) > 0 || len(p.Leaves) > 0
}

// ClientActive reports whether client belongs to the active population in
// round: it has arrived (its seeded join round, if any, has passed), has
// not departed (its seeded leave round, if any, is still ahead), and its
// per-(round, client) churn coin says present. A pure function of
// (seed, round, client), so the population replays bit-identically. Static
// plans keep every client active in every round. Part of fl.PopulationPlan
// (structurally).
func (p *Plan) ClientActive(round, client int) bool {
	if !p.PopulationDynamic() {
		return true
	}
	p.mustBeBound()
	if r, ok := p.arrivals[client]; ok && round < r {
		return false
	}
	if r, ok := p.departures[client]; ok && round >= r {
		return false
	}
	if p.ChurnRate > 0 &&
		tensor.Split(p.seed, labelChurn, int64(round), int64(client)).Float64() < p.ChurnRate {
		return false
	}
	return true
}

// Events returns a human-readable summary of the plan's materialized
// events (bound crashes, restarts and adversary identities), for logs and
// reports.
func (p *Plan) Events() string {
	if p == nil {
		return "none"
	}
	var parts []string
	for e := range p.crashes {
		parts = append(parts, fmt.Sprintf("crash@%d:%d", e[0], e[1]))
	}
	for r := range p.restarts {
		parts = append(parts, fmt.Sprintf("restart@%d", r))
	}
	for id := range p.byz {
		parts = append(parts, fmt.Sprintf("byzantine(%s)@%d", p.ByzantineMode, id))
	}
	for id := range p.poisoned {
		parts = append(parts, fmt.Sprintf("poison@%d", id))
	}
	for id, r := range p.arrivals {
		parts = append(parts, fmt.Sprintf("join@%d:%d", r, id))
	}
	for id, r := range p.departures {
		parts = append(parts, fmt.Sprintf("leave@%d:%d", r, id))
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// msgFate decides one transport message's fate: cut (lost, link breaks),
// duplicated, and its virtual delivery delay. A pure function of
// (seed, round, link, seq), so transport chaos replays identically. The
// seed comes from the fabric, not the plan, so transport faults work on
// unbound plans.
func (p *Plan) msgFate(seed int64, round int, link uint64, seq int64) (cut, dup bool, delay time.Duration) {
	if p == nil {
		return false, false, 0
	}
	delay = p.Latency
	if p.MsgDropRate <= 0 && p.DupRate <= 0 && p.Jitter <= 0 {
		return false, false, delay
	}
	rng := tensor.Split(seed, labelMessage, int64(round), int64(link), seq)
	if p.MsgDropRate > 0 && rng.Float64() < p.MsgDropRate {
		return true, false, delay
	}
	if p.DupRate > 0 && rng.Float64() < p.DupRate {
		dup = true
	}
	if p.Jitter > 0 {
		delay += time.Duration(rng.Float64() * float64(p.Jitter))
	}
	return false, dup, delay
}
