package simnet

import (
	"strings"
	"testing"
)

// The open-world population grammar: join=n@r, leave=n@r, churn=rate. The
// clauses bind to seeded client identities exactly like the adversarial
// ones, so a population schedule replays bit-identically per seed.

func TestParsePopulationClauses(t *testing.T) {
	p, err := ParsePlan("join=2@3,leave=1@5,churn=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Joins) != 1 || p.Joins[0] != (PopEvent{Count: 2, Round: 3}) {
		t.Fatalf("Joins = %v, want [{2 3}]", p.Joins)
	}
	if len(p.Leaves) != 1 || p.Leaves[0] != (PopEvent{Count: 1, Round: 5}) {
		t.Fatalf("Leaves = %v, want [{1 5}]", p.Leaves)
	}
	if p.ChurnRate != 0.1 {
		t.Fatalf("ChurnRate = %v, want 0.1", p.ChurnRate)
	}
	if !p.PopulationDynamic() {
		t.Fatal("population plan must report dynamic")
	}
	// Repeated events accumulate in clause order.
	p, err = ParsePlan("join=1@2,join=3@4")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Joins) != 2 || p.Joins[1].Round != 4 {
		t.Fatalf("Joins = %v, want two events", p.Joins)
	}
}

func TestParsePopulationRejections(t *testing.T) {
	for _, spec := range []string{
		"join=2",       // missing @round
		"join=x@2",     // bad count
		"join=-1@2",    // negative count
		"join=2@x",     // bad round
		"join=2@-1",    // negative round
		"leave=2",      // missing @round
		"churn=1.5",    // probability outside [0,1]
		"churn=-0.1",   // negative probability
		"churn=banana", // not a number
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want rejection", spec)
		}
	}
}

func TestBindPopulationValidation(t *testing.T) {
	cases := []struct {
		spec            string
		rounds, clients int
		want            string
	}{
		{"join=2@0", 6, 10, "outside [1, 6)"},  // round 0 is a cold start, not an arrival
		{"leave=1@6", 6, 10, "outside [1, 6)"}, // past the horizon
		{"join=6@2,leave=5@3", 6, 10, "exceed the 10-client population"},
	}
	for _, tc := range cases {
		p := MustParsePlan(tc.spec)
		_, err := p.Bind(42, tc.rounds, tc.clients)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Bind(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestClientActiveLifecycle(t *testing.T) {
	const rounds, clients = 6, 10
	p := MustParsePlan("join=2@2,leave=3@4").MustBind(42, rounds, clients)
	joiners, leavers := map[int]bool{}, map[int]bool{}
	for id := 0; id < clients; id++ {
		if !p.ClientActive(0, id) {
			joiners[id] = true
		}
		if !p.ClientActive(rounds-1, id) {
			leavers[id] = true
		}
	}
	if len(joiners) != 2 {
		t.Fatalf("%d clients inactive at round 0, want the 2 late joiners", len(joiners))
	}
	if len(leavers) != 3 {
		t.Fatalf("%d clients inactive at the horizon, want the 3 leavers", len(leavers))
	}
	for id := range joiners {
		if leavers[id] {
			t.Fatalf("client %d both joins and leaves — identities must be disjoint", id)
		}
		if p.ClientActive(1, id) {
			t.Fatalf("joiner %d active before its arrival round", id)
		}
		if !p.ClientActive(2, id) || !p.ClientActive(5, id) {
			t.Fatalf("joiner %d inactive after arrival", id)
		}
	}
	for id := range leavers {
		if !p.ClientActive(3, id) {
			t.Fatalf("leaver %d inactive before its departure round", id)
		}
		if p.ClientActive(4, id) {
			t.Fatalf("leaver %d active after departure", id)
		}
	}
	// Everyone else is active throughout.
	for id := 0; id < clients; id++ {
		if joiners[id] || leavers[id] {
			continue
		}
		for r := 0; r < rounds; r++ {
			if !p.ClientActive(r, id) {
				t.Fatalf("steady client %d inactive at round %d", id, r)
			}
		}
	}
}

func TestClientActiveChurnDeterminism(t *testing.T) {
	const rounds, clients = 20, 50
	a := MustParsePlan("churn=0.3").MustBind(7, rounds, clients)
	b := MustParsePlan("churn=0.3").MustBind(7, rounds, clients)
	away := 0
	for r := 0; r < rounds; r++ {
		for id := 0; id < clients; id++ {
			if a.ClientActive(r, id) != b.ClientActive(r, id) {
				t.Fatalf("churn coin at (%d, %d) differs across identical binds", r, id)
			}
			if !a.ClientActive(r, id) {
				away++
			}
		}
	}
	// The realized churn must be a real coin at roughly the configured rate
	// (loose 3σ-ish bounds on 1000 draws at p=0.3).
	if away < 200 || away > 400 {
		t.Fatalf("churn=0.3 kept %d/1000 (round, client) slots away, want ≈300", away)
	}
	// A different seed redraws the schedule.
	c := MustParsePlan("churn=0.3").MustBind(8, rounds, clients)
	same := true
	for r := 0; r < rounds && same; r++ {
		for id := 0; id < clients; id++ {
			if a.ClientActive(r, id) != c.ClientActive(r, id) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("churn schedule identical across seeds")
	}
}

func TestStaticPlanAllActive(t *testing.T) {
	p := MustParsePlan("drop=0.5,crash=2").MustBind(42, 6, 10)
	if p.PopulationDynamic() {
		t.Fatal("fault-only plan must not report a dynamic population")
	}
	for r := 0; r < 6; r++ {
		for id := 0; id < 10; id++ {
			if !p.ClientActive(r, id) {
				t.Fatalf("static plan deactivated client %d at round %d", id, r)
			}
		}
	}
	var nilPlan *Plan
	if nilPlan.PopulationDynamic() {
		t.Fatal("nil plan must be static")
	}
}

func TestUnboundPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ClientActive on an unbound churn plan must panic, not silently inject nothing")
		}
	}()
	MustParsePlan("churn=0.1").ClientActive(0, 0)
}

func TestPopulationEvents(t *testing.T) {
	p := MustParsePlan("join=1@2,leave=1@3").MustBind(42, 6, 10)
	ev := p.Events()
	if !strings.Contains(ev, "join@2:") || !strings.Contains(ev, "leave@3:") {
		t.Fatalf("Events() = %q, want join@2:<id> and leave@3:<id>", ev)
	}
}
