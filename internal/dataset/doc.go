// Package dataset provides the synthetic benchmark family that stands in
// for the paper's five datasets (MNIST, CIFAR-10, LFW, Adult,
// Breast-Cancer) and the heterogeneity scenario engine that decides how a
// benchmark is partitioned across a federated client population.
//
// # Synthetic benchmarks
//
// Real datasets are not available offline, so each benchmark is replaced by
// a deterministic generator with the same input shape, class count,
// per-client shard size, batch size and round budget as Table I of the
// paper. Samples are drawn as x = clamp(prototype[class] + noise, 0, 1)
// where prototypes are smooth class-specific patterns; the per-dataset
// noise level is tuned so the *relative difficulty ordering* of the paper's
// benchmarks is preserved (cancer ≈ easiest, CIFAR-10/LFW hardest), and a
// deterministic label-flip rate pins each benchmark's Bayes accuracy at the
// paper's ceiling.
//
// # Scenario engine
//
// A Partitioner (partition.go) assigns each client its shard: size, class
// support, per-index class assignment, and optional per-client label-noise
// rate. Scenarios select partitioners by name — iid (the paper's Table I
// rule and the default), dirichlet (label skew with concentration α),
// pathological (McMahan-style label shards), quantity (power-law shard
// sizes), labelnoise (per-client annotation quality) — via
// Scenario.Partitioner(), and Stats measures the realized heterogeneity.
//
// # Determinism and concurrency
//
// Every sample, shard and label is generated lazily and deterministically
// from the dataset seed: samples from (seed, streamID, index), shards from
// (seed, clientID), per-index class picks from (seed, clientID, index).
// There is no global shuffle and no shared mutable state, so a simulation
// with K=10,000 clients only materializes the shards of clients actually
// sampled in a round, any goroutine can materialize any client in any
// order with identical results, and the streaming runtime's any-order
// folds stay reproducible. Reserved Split label spaces under the dataset
// seed: 1000 prototypes, 2000 samples, 3000–3300 partitioners (see
// partition.go), 4000 base label flips, 4100 label-noise-skew flips.
//
// Datasets and ClientData views are safe for concurrent readers after
// construction; WithPartitioner shares prototypes, so repartitioning an
// existing dataset (e.g. applying a server-published scenario) is cheap.
// Because every derivation is a pure function of the seed and its labels,
// the dataset memoizes drawn values — sample tensors, flip draws, class
// picks — in a bounded cache shared across views (cache.go): revisiting
// an example skips the generator reseed entirely, and a cache hit is
// bit-identical to recomputation by construction.
package dataset
