package dataset

import (
	"fmt"
	"sort"

	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// Spec describes one benchmark: data geometry plus the paper's default
// federated-learning hyperparameters for it (Table I).
type Spec struct {
	Name     string
	Channels int // 0 for tabular
	Height   int
	Width    int
	Features int // flat feature count (C*H*W for images)
	Classes  int

	TrainN int // size of the training pool
	ValN   int // size of the validation set

	PerClient        int  // examples held by each client
	ClassesPerClient int  // non-IID shard width; 0 means i.i.d. sampling
	FullCopy         bool // every client holds the same full dataset (cancer)

	BatchSize  int
	LocalIters int // L
	Rounds     int // T
	LR         float64

	Noise     float64 // sample noise std; controls feature overlap
	LabelFlip float64 // fraction of labels flipped uniformly; pins Bayes accuracy at ~1-LabelFlip
	ProtoStd  float64 // prototype separation scale
	Hidden    int     // hidden width for tabular models
	IsTabular bool
}

// Benchmarks returns the five paper benchmarks keyed by name.
func Benchmarks() map[string]Spec {
	specs := []Spec{
		{
			Name: "mnist", Channels: 1, Height: 28, Width: 28, Classes: 10,
			TrainN: 50000, ValN: 10000,
			PerClient: 500, ClassesPerClient: 2,
			BatchSize: 5, LocalIters: 100, Rounds: 100, LR: 0.1,
			Noise: 0.30, LabelFlip: 0.02, ProtoStd: 0.35,
		},
		{
			Name: "cifar10", Channels: 3, Height: 32, Width: 32, Classes: 10,
			TrainN: 40000, ValN: 10000,
			PerClient: 400, ClassesPerClient: 2,
			BatchSize: 4, LocalIters: 100, Rounds: 100, LR: 0.05,
			Noise: 0.55, LabelFlip: 0.32, ProtoStd: 0.45,
		},
		{
			Name: "lfw", Channels: 3, Height: 32, Width: 32, Classes: 62,
			TrainN: 2267, ValN: 756,
			PerClient: 300, ClassesPerClient: 15,
			BatchSize: 3, LocalIters: 100, Rounds: 60, LR: 0.05,
			Noise: 0.35, LabelFlip: 0.28, ProtoStd: 0.55,
		},
		{
			Name: "adult", Features: 105, Classes: 2, IsTabular: true,
			TrainN: 36631, ValN: 12211,
			PerClient: 300, ClassesPerClient: 0,
			BatchSize: 3, LocalIters: 100, Rounds: 10, LR: 0.1,
			Noise: 1.60, LabelFlip: 0.03, ProtoStd: 0.4, Hidden: 32,
		},
		{
			Name: "cancer", Features: 30, Classes: 2, IsTabular: true,
			TrainN: 426, ValN: 143,
			PerClient: 400, FullCopy: true,
			BatchSize: 4, LocalIters: 100, Rounds: 3, LR: 0.1,
			Noise: 0.30, LabelFlip: 0.005, ProtoStd: 0.8, Hidden: 32,
		},
	}
	out := make(map[string]Spec, len(specs))
	for _, s := range specs {
		s := s
		if !s.IsTabular {
			s.Features = s.Channels * s.Height * s.Width
		}
		out[s.Name] = s
	}
	return out
}

// Names returns the benchmark names in the paper's column order.
func Names() []string { return []string{"mnist", "cifar10", "lfw", "adult", "cancer"} }

// Get returns the named benchmark spec or an error listing valid names.
func Get(name string) (Spec, error) {
	b := Benchmarks()
	if s, ok := b[name]; ok {
		return s, nil
	}
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("dataset: unknown benchmark %q (have %v)", name, names)
}

// ModelSpec returns the paper's model for this benchmark: a 2-conv CNN for
// image data, a 2-hidden-layer MLP for tabular data.
func (s Spec) ModelSpec() nn.Spec {
	if s.IsTabular {
		h := s.Hidden
		if h == 0 {
			h = 32
		}
		return nn.TabularMLP(s.Features, h, s.Classes)
	}
	return nn.ImageCNN(s.Channels, s.Height, s.Width, s.Classes)
}

// InputShape returns the tensor shape of one example.
func (s Spec) InputShape() []int {
	if s.IsTabular {
		return []int{s.Features}
	}
	return []int{s.Channels, s.Height, s.Width}
}

// Dataset is a deterministic sample source for one benchmark. How its
// sample pool is divided across clients is decided by a Partitioner (see
// partition.go); New installs the IID partitioner, the paper's Table I
// partition.
type Dataset struct {
	Spec   Spec
	seed   int64
	protos []*tensor.Tensor
	part   Partitioner
	cache  *derivedCache // shared across WithPartitioner views; see cache.go
}

// New builds the benchmark's class prototypes from seed, partitioned with
// the default IID (Table I) scenario.
func New(spec Spec, seed int64) *Dataset {
	return NewPartitioned(spec, seed, IID{})
}

// NewPartitioned builds the benchmark with an explicit client partitioner.
func NewPartitioned(spec Spec, seed int64, p Partitioner) *Dataset {
	if p == nil {
		p = IID{}
	}
	d := &Dataset{Spec: spec, seed: seed, part: p, cache: newDerivedCache()}
	d.protos = make([]*tensor.Tensor, spec.Classes)
	for c := 0; c < spec.Classes; c++ {
		d.protos[c] = d.makePrototype(c)
	}
	return d
}

// Partitioner returns the installed client partitioner.
func (d *Dataset) Partitioner() Partitioner { return d.part }

// WithPartitioner returns a view of the same dataset (sharing its
// prototypes) partitioned by p. The sample streams are unchanged — only
// the client→shard assignment differs — so a server-published scenario can
// repartition a client's already-built dataset cheaply.
func (d *Dataset) WithPartitioner(p Partitioner) *Dataset {
	if p == nil {
		p = IID{}
	}
	nd := *d
	nd.part = p
	return &nd
}

// makePrototype builds a smooth class-specific pattern in [0,1].
func (d *Dataset) makePrototype(class int) *tensor.Tensor {
	rng := tensor.Split(d.seed, 1000, int64(class))
	s := d.Spec
	p := tensor.New(s.InputShape()...)
	if s.IsTabular {
		rng.FillNormal(p, 0.5, s.ProtoStd)
		clamp01(p)
		return p
	}
	// Images: sample a coarse grid per channel and bilinearly upsample so
	// prototypes are smooth (reconstructable structure, like natural images).
	const coarse = 7
	for ch := 0; ch < s.Channels; ch++ {
		grid := make([]float64, coarse*coarse)
		for i := range grid {
			grid[i] = 0.5 + s.ProtoStd*rng.Normal(0, 1)
		}
		for y := 0; y < s.Height; y++ {
			fy := float64(y) / float64(s.Height-1) * float64(coarse-1)
			y0 := int(fy)
			y1 := y0 + 1
			if y1 >= coarse {
				y1 = coarse - 1
			}
			wy := fy - float64(y0)
			for x := 0; x < s.Width; x++ {
				fx := float64(x) / float64(s.Width-1) * float64(coarse-1)
				x0 := int(fx)
				x1 := x0 + 1
				if x1 >= coarse {
					x1 = coarse - 1
				}
				wx := fx - float64(x0)
				v := (1-wy)*((1-wx)*grid[y0*coarse+x0]+wx*grid[y0*coarse+x1]) +
					wy*((1-wx)*grid[y1*coarse+x0]+wx*grid[y1*coarse+x1])
				p.Set(v, ch, y, x)
			}
		}
	}
	clamp01(p)
	return p
}

func clamp01(t *tensor.Tensor) {
	d := t.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		} else if v > 1 {
			d[i] = 1
		}
	}
}

// Prototype returns the class prototype (do not mutate).
func (d *Dataset) Prototype(class int) *tensor.Tensor { return d.protos[class] }

// Sample deterministically generates the idx-th example of the given class
// on the given stream. The same (stream, idx, class) always yields the same
// example; repeat draws are served from the derived cache (see cache.go),
// and the returned tensor is always the caller's to mutate.
func (d *Dataset) Sample(stream, idx int64, class int) *tensor.Tensor {
	key := sampleKey{stream: stream, idx: idx, class: class}
	if x, ok := d.cache.getSample(key); ok {
		return x
	}
	rng := tensor.Split(d.seed, 2000, stream, idx, int64(class))
	x := d.protos[class].Clone()
	rng.AddNormal(x, d.Spec.Noise)
	clamp01(x)
	d.cache.putSample(key, x)
	return x
}

// flipLabel deterministically replaces the true class with a uniformly
// random different one for a LabelFlip fraction of (stream, idx) pairs. This
// pins the Bayes accuracy of the benchmark at ≈ 1−LabelFlip, which is how
// the synthetic family reproduces the paper's per-dataset accuracy ceilings
// (e.g. CIFAR-10 ≈ 0.67) with otherwise separable prototypes.
func (d *Dataset) flipLabel(class int, stream, idx int64) int {
	rho := d.Spec.LabelFlip
	if rho <= 0 || d.Spec.Classes < 2 {
		return class
	}
	fd := d.flipDrawAt(4000, stream, idx)
	if fd.u >= rho {
		return class
	}
	other := fd.other
	if other >= class {
		other++
	}
	return other
}

// extraFlip applies a per-client additional label flip at rate rho (the
// label-noise-skew scenario), on its own Split label space (4100) so the
// base flipLabel stream — and with it every iid-scenario golden — is
// untouched.
func (d *Dataset) extraFlip(class int, rho float64, stream, idx int64) int {
	if rho <= 0 || d.Spec.Classes < 2 {
		return class
	}
	fd := d.flipDrawAt(4100, stream, idx)
	if fd.u >= rho {
		return class
	}
	other := fd.other
	if other >= class {
		other++
	}
	return other
}

// extraFlipAtRound is extraFlip on a round-keyed coin stream: fresh
// per-(client, index, round) draws from the given Split label space (4200
// for the decaying-label-noise scenario), so an example's noise is a pure
// function of (seed, clientID, round) rather than frozen at partition time.
func (d *Dataset) extraFlipAtRound(class int, rho float64, label, stream, idx, round int64) int {
	if rho <= 0 || d.Spec.Classes < 2 {
		return class
	}
	fd := d.flipDrawAtRound(label, stream, idx, round)
	if fd.u >= rho {
		return class
	}
	other := fd.other
	if other >= class {
		other++
	}
	return other
}

// Validation returns a deterministic, class-balanced validation set of up to
// n examples.
func (d *Dataset) Validation(n int) ([]*tensor.Tensor, []int) {
	if n > d.Spec.ValN {
		n = d.Spec.ValN
	}
	xs := make([]*tensor.Tensor, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % d.Spec.Classes
		xs[i] = d.Sample(-1, int64(i), c)
		ys[i] = d.flipLabel(c, -1, int64(i))
	}
	return xs, ys
}

// ClientData is a lazy view of one client's local shard, as assigned by the
// dataset's partitioner.
type ClientData struct {
	ds    *Dataset
	id    int
	shard Shard
	flip  LabelFlipper
}

// LabelFlipper rewrites one local example's label after the dataset's own
// noise model has run: index is the example's position in the shard, label
// the label Get would have returned, classes the benchmark's class count.
// Deterministic flippers keep the shard a pure function of its inputs
// (fault harnesses install seeded poisoning attacks through this hook).
type LabelFlipper func(index, label, classes int) int

// WithLabelFlipper returns a view of the same shard whose labels pass
// through f; the receiver is not modified. Repartition preserves the
// flipper, so a server-published scenario cannot silently un-poison a view.
func (c *ClientData) WithLabelFlipper(f LabelFlipper) *ClientData {
	nc := *c
	nc.flip = f
	return &nc
}

// Client returns the shard view for client id under the dataset's
// partitioner. The default (IID) partitioner reproduces the paper's
// Table I rule: each client holds PerClient examples drawn from
// ClassesPerClient contiguous classes (or all classes when 0/FullCopy).
func (d *Dataset) Client(id int) *ClientData {
	return &ClientData{ds: d, id: id, shard: d.part.Shard(d, id)}
}

// ClientAt returns the shard view for client id at a specific round.
// Time-varying partitioners (RoundPartitioner) materialize the round's
// shard — a pure function of (seed, id, round); static partitioners return
// exactly Client(id), so closed-world runs are untouched by the round.
func (d *Dataset) ClientAt(id, round int) *ClientData {
	if rp, ok := d.part.(RoundPartitioner); ok {
		return &ClientData{ds: d, id: id, shard: rp.ShardAt(d, id, round)}
	}
	return d.Client(id)
}

// Repartition returns this client's shard view under a different
// partitioner (same dataset, same id) — how a remote client applies the
// scenario its server publishes with the round config.
func (c *ClientData) Repartition(p Partitioner) *ClientData {
	nc := c.ds.WithPartitioner(p).Client(c.id)
	nc.flip = c.flip
	return nc
}

// RepartitionAt is Repartition pinned to a round: remote clients apply the
// server-published scenario for the round they were asked to train, so a
// time-varying scenario yields the same shard on every runtime.
func (c *ClientData) RepartitionAt(p Partitioner, round int) *ClientData {
	nc := c.ds.WithPartitioner(p).ClientAt(c.id, round)
	nc.flip = c.flip
	return nc
}

// Len returns the number of local examples.
func (c *ClientData) Len() int { return c.shard.N }

// Classes returns the classes that can appear in this shard.
func (c *ClientData) Classes() []int { return c.shard.Classes }

// Get returns the i-th local example and its label, generated
// deterministically from (dataset seed, client id, i): the partitioner
// assigns the class, the dataset draws the sample and applies label noise
// (the spec's base rate plus any per-client skew rate).
func (c *ClientData) Get(i int) (*tensor.Tensor, int) {
	if i < 0 || i >= c.shard.N {
		panic(fmt.Sprintf("dataset: client example index %d out of range [0,%d)", i, c.shard.N))
	}
	class := c.shard.ClassAt(i)
	y := c.ds.flipLabel(class, int64(c.id), int64(i))
	if c.shard.FlipRate > 0 {
		if c.shard.FlipLabel != 0 {
			y = c.ds.extraFlipAtRound(y, c.shard.FlipRate, c.shard.FlipLabel, int64(c.id), int64(i), int64(c.shard.Round))
		} else {
			y = c.ds.extraFlip(y, c.shard.FlipRate, int64(c.id), int64(i))
		}
	}
	if c.flip != nil {
		y = c.flip(i, y, c.ds.Spec.Classes)
	}
	return c.ds.Sample(int64(c.id), int64(i), class), y
}

// Batch returns batch b of size bs using a deterministic per-client epoch
// ordering (with wrap-around, matching "sampling with replacement" at the
// batch level used by the paper's simulator).
func (c *ClientData) Batch(b, bs int) ([]*tensor.Tensor, []int) {
	xs := make([]*tensor.Tensor, bs)
	ys := make([]int, bs)
	for j := 0; j < bs; j++ {
		idx := (b*bs + j) % c.shard.N
		xs[j], ys[j] = c.Get(idx)
	}
	return xs, ys
}
