package dataset

import (
	"hash/fnv"
	"testing"
)

// Time-varying partitioners: shards are pure functions of
// (seed, clientID, round), stages change exactly at their boundaries, and
// the derived cache's round-keyed entries never serve one round's draws
// for another — regardless of which round was queried first.

// labelAt reads one example's final label without generating its sample:
// the exact label path of ClientData.Get.
func labelAt(d *Dataset, cd *ClientData, i int) int {
	class := cd.shard.ClassAt(i)
	y := d.flipLabel(class, int64(cd.id), int64(i))
	if cd.shard.FlipRate > 0 {
		if cd.shard.FlipLabel != 0 {
			return d.extraFlipAtRound(y, cd.shard.FlipRate, cd.shard.FlipLabel, int64(cd.id), int64(i), int64(cd.shard.Round))
		}
		return d.extraFlip(y, cd.shard.FlipRate, int64(cd.id), int64(i))
	}
	return y
}

// labelDigest fingerprints one (client, round) shard's full label sequence.
func labelDigest(d *Dataset, cd *ClientData) uint64 {
	h := fnv.New64a()
	for i := 0; i < cd.Len(); i++ {
		y := labelAt(d, cd, i)
		h.Write([]byte{byte(y), byte(y >> 8)})
	}
	return h.Sum64()
}

func TestIncrementalClassesStages(t *testing.T) {
	spec, err := Get("mnist")
	if err != nil {
		t.Fatal(err)
	}
	const period = 2
	d := New(spec, 42).WithPartitioner(IncrementalClasses{Period: period})
	// Stage s (rounds [s·period, (s+1)·period)) exposes exactly 2+s classes.
	for round := 0; round < 8; round++ {
		visible := incrementalStartClasses + round/period
		seen := map[int]bool{}
		for id := 0; id < 4; id++ {
			cd := d.ClientAt(id, round)
			if len(cd.Classes()) != visible {
				t.Fatalf("round %d: %d visible classes, want %d", round, len(cd.Classes()), visible)
			}
			for i := 0; i < cd.Len(); i++ {
				c := cd.shard.ClassAt(i)
				if c >= visible {
					t.Fatalf("round %d: client %d example %d drew class %d outside the visible %d", round, id, i, c, visible)
				}
				seen[c] = true
			}
		}
		if len(seen) != visible {
			t.Fatalf("round %d: only %d of %d visible classes materialized across 4 clients", round, len(seen), visible)
		}
	}
	// Rounds inside one stage share their shard bit-for-bit; a stage
	// boundary redraws it.
	cd0, cd1 := d.ClientAt(0, 0), d.ClientAt(0, 1)
	if labelDigest(d, cd0) != labelDigest(d, cd1) {
		t.Fatal("rounds 0 and 1 share a stage but drew different shards")
	}
	if labelDigest(d, cd0) == labelDigest(d, d.ClientAt(0, period)) {
		t.Fatal("stage boundary did not redraw the shard")
	}
	// The visible set saturates at the benchmark's class count.
	far := d.ClientAt(0, 1000)
	if len(far.Classes()) != spec.Classes {
		t.Fatalf("far-horizon round exposes %d classes, want cap %d", len(far.Classes()), spec.Classes)
	}
}

func TestDecayingLabelNoiseHalves(t *testing.T) {
	spec, err := Get("mnist")
	if err != nil {
		t.Fatal(err)
	}
	const period = 3
	d := New(spec, 42).WithPartitioner(DecayingLabelNoise{Period: period})
	for id := 0; id < 4; id++ {
		r0 := d.ClientAt(id, 0).shard.FlipRate
		if r0 <= 0 || r0 > labelNoiseMaxRate {
			t.Fatalf("client %d base rate %v outside (0, %v]", id, r0, labelNoiseMaxRate)
		}
		rp := d.ClientAt(id, period).shard.FlipRate
		if diff := rp - r0/2; diff < -1e-15 || diff > 1e-15 {
			t.Fatalf("client %d rate at round %d = %v, want half of %v", id, period, rp, r0)
		}
	}
	// Flip coins are redrawn per round: some example's realized label
	// changes between rounds within one rate regime.
	cd0, cd1 := d.ClientAt(0, 0), d.ClientAt(0, 1)
	if labelDigest(d, cd0) == labelDigest(d, cd1) {
		t.Fatal("decaying-noise rounds 0 and 1 drew identical flip coins")
	}
	// Aggregate mislabelling must trend to zero as the rate decays.
	flips := func(round int) int {
		n := 0
		for id := 0; id < 4; id++ {
			cd := d.ClientAt(id, round)
			for i := 0; i < cd.Len(); i++ {
				if labelAt(d, cd, i) != cd.shard.ClassAt(i) {
					n++
				}
			}
		}
		return n
	}
	early, late := flips(0), flips(10*period)
	if late >= early {
		t.Fatalf("flips did not decay: %d at round 0 vs %d at round %d", early, late, 10*period)
	}
}

// TestTimeVaryingOrderInvariance: a shard is a pure function of
// (seed, id, round) — the order rounds and clients are queried in, and
// whether the derived cache is warm or cold, must not change a single
// label. This is the regression for the round-blind cache keys: a warmed
// cache used to serve round-r draws for round-r′.
func TestTimeVaryingOrderInvariance(t *testing.T) {
	spec, err := Get("mnist")
	if err != nil {
		t.Fatal(err)
	}
	const rounds, clients = 6, 3
	for _, part := range []Partitioner{IncrementalClasses{Period: 2}, DecayingLabelNoise{Period: 2}} {
		// Fresh dataset per (id, round): every digest computed on a cold cache.
		cold := map[[2]int]uint64{}
		for id := 0; id < clients; id++ {
			for r := 0; r < rounds; r++ {
				d := New(spec, 42).WithPartitioner(part)
				cold[[2]int{id, r}] = labelDigest(d, d.ClientAt(id, r))
			}
		}
		// One shared dataset, rounds visited in descending order with clients
		// interleaved — maximally unlike the cold pass.
		warm := New(spec, 42).WithPartitioner(part)
		for r := rounds - 1; r >= 0; r-- {
			for id := clients - 1; id >= 0; id-- {
				got := labelDigest(warm, warm.ClientAt(id, r))
				if got != cold[[2]int{id, r}] {
					t.Fatalf("%s: client %d round %d: warmed-cache shard diverges from cold recomputation", part.Name(), id, r)
				}
			}
		}
		// Re-query after everything is cached: still identical.
		for id := 0; id < clients; id++ {
			for r := 0; r < rounds; r++ {
				if labelDigest(warm, warm.ClientAt(id, r)) != cold[[2]int{id, r}] {
					t.Fatalf("%s: client %d round %d: cached re-query diverges", part.Name(), id, r)
				}
			}
		}
	}
}

// TestDerivedCacheRoundKeys pins the cache-key fix at the draw level:
// round-keyed streams memoize on their full key, and round-static streams
// stay on the degenerate round-0 key they always had.
func TestDerivedCacheRoundKeys(t *testing.T) {
	spec, err := Get("mnist")
	if err != nil {
		t.Fatal(err)
	}
	// Reference values from caches that only ever saw one round each.
	ref0 := New(spec, 42).pickAtRound(labelIncrementalPick, 1, 2, 0, 4)
	ref5 := New(spec, 42).pickAtRound(labelIncrementalPick, 1, 2, 5, 4)
	d := New(spec, 42)
	if got := d.pickAtRound(labelIncrementalPick, 1, 2, 5, 4); got != ref5 {
		t.Fatalf("round-5 pick = %d, want %d", got, ref5)
	}
	// The poisoned-cache probe: before round entered the key, this returned
	// the round-5 value just cached above.
	if got := d.pickAtRound(labelIncrementalPick, 1, 2, 0, 4); got != ref0 {
		t.Fatalf("round-0 pick after round-5 warm-up = %d, want %d", got, ref0)
	}
	// Distinct rounds are genuinely distinct streams, not one recycled draw:
	// over many indices the two rounds must disagree somewhere.
	differ := false
	for i := int64(0); i < 64 && !differ; i++ {
		differ = d.pickAtRound(labelIncrementalPick, 1, i, 0, 10) != d.pickAtRound(labelIncrementalPick, 1, i, 5, 10)
	}
	if !differ {
		t.Fatal("round-keyed pick stream identical across rounds")
	}
	// Same discipline for the flip-coin stream.
	fd0 := New(spec, 42).flipDrawAtRound(labelDecayFlip, 1, 2, 0)
	d2 := New(spec, 42)
	d2.flipDrawAtRound(labelDecayFlip, 1, 2, 7)
	if got := d2.flipDrawAtRound(labelDecayFlip, 1, 2, 0); got != fd0 {
		t.Fatal("round-0 flip draw poisoned by a round-7 warm-up")
	}
	// Round-static streams are untouched by round-keyed traffic on the same
	// (label, stream, idx): the degenerate round-0 key keeps them separate
	// only because the labels differ — same-label traffic shares by design.
	u := New(spec, 42).unitAt(3300, 1, 2)
	if got := d2.unitAt(3300, 1, 2); got != u {
		t.Fatal("round-static unit draw diverges on a warmed cache")
	}
}
