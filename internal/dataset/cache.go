package dataset

import (
	"sync"

	"fedcdp/internal/tensor"
)

// Sample, flipLabel and the per-example class picks are pure functions of
// (dataset seed, stream labels), but re-deriving one costs a full generator
// reseed in tensor.Split — math/rand's 607-word lagged-Fibonacci init — for
// a handful of draws, which profiles as ~30% of a simnet round at small
// models. Training loops revisit the same (client, index) keys round after
// round, so Dataset memoizes the drawn *values* — never the generators —
// keyed by the same labels that seed the streams. A hit is bit-identical to
// recomputation by construction: the cache changes timing, never streams,
// and every seeded golden in the repo pins that. All views of a dataset
// share one cache (WithPartitioner copies the pointer); the underlying
// draws are partitioner-independent and keys carry their Split labels.
//
// Stream-faithfulness rule: every key must carry every Split input of the
// draw it memoizes. Round-varying partitioners (incremental classes,
// decaying label noise) key their draw streams by a round/stage component,
// so each key type carries a round field too; round-static streams use the
// degenerate round 0, which keeps every closed-world draw on the exact key
// it always had. Before this field existed, a round-varying partitioner
// would have silently served round-r draws for round-r′.

// sampleCacheFloats bounds the float64s held by cached sample tensors
// (16 MiB); past it, samples are generated but not retained.
const sampleCacheFloats = 1 << 21

// drawCacheEntries bounds each scalar-draw map; past it, draws are computed
// but not retained.
const drawCacheEntries = 1 << 17

type sampleKey struct {
	stream, idx int64
	class       int
	round       int64 // 0: sample streams are round-static today
}

// flipDraw holds the full draw sequence of one label-flip stream: the
// uniform that decides the flip and the class offset drawn after it. Both
// are materialized on a miss — the generator is discarded immediately, so
// drawing the offset even when the uniform says "keep" leaves every other
// stream untouched — which lets one entry serve any flip rate (extraFlip's
// per-client ρ varies by scenario).
type flipDraw struct {
	u     float64
	other int
}

type flipKey struct {
	label, stream, idx int64
	round              int64 // Split round component; 0 on round-static streams
}

type pickKey struct {
	label, id, i int64
	n            int
	round        int64 // Split round/stage component; 0 on round-static streams
}

type unitKey struct {
	label, id, i int64
	round        int64 // Split round component; 0 on round-static streams
}

type derivedCache struct {
	mu      sync.Mutex
	floats  int
	samples map[sampleKey]*tensor.Tensor
	flips   map[flipKey]flipDraw
	picks   map[pickKey]int
	units   map[unitKey]float64
}

func newDerivedCache() *derivedCache {
	return &derivedCache{
		samples: make(map[sampleKey]*tensor.Tensor),
		flips:   make(map[flipKey]flipDraw),
		picks:   make(map[pickKey]int),
		units:   make(map[unitKey]float64),
	}
}

// getSample returns a private copy of the cached example, if present.
// Cached tensors are never handed out directly: callers own (and may
// mutate) what Sample returns.
func (c *derivedCache) getSample(key sampleKey) (*tensor.Tensor, bool) {
	c.mu.Lock()
	t, ok := c.samples[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

func (c *derivedCache) putSample(key sampleKey, t *tensor.Tensor) {
	clone := t.Clone()
	c.mu.Lock()
	if _, ok := c.samples[key]; !ok && c.floats+clone.Len() <= sampleCacheFloats {
		c.samples[key] = clone
		c.floats += clone.Len()
	}
	c.mu.Unlock()
}

func (c *derivedCache) getFlip(key flipKey) (flipDraw, bool) {
	c.mu.Lock()
	fd, ok := c.flips[key]
	c.mu.Unlock()
	return fd, ok
}

func (c *derivedCache) putFlip(key flipKey, fd flipDraw) {
	c.mu.Lock()
	if len(c.flips) < drawCacheEntries {
		c.flips[key] = fd
	}
	c.mu.Unlock()
}

func (c *derivedCache) getPick(key pickKey) (int, bool) {
	c.mu.Lock()
	p, ok := c.picks[key]
	c.mu.Unlock()
	return p, ok
}

func (c *derivedCache) putPick(key pickKey, p int) {
	c.mu.Lock()
	if len(c.picks) < drawCacheEntries {
		c.picks[key] = p
	}
	c.mu.Unlock()
}

func (c *derivedCache) getUnit(key unitKey) (float64, bool) {
	c.mu.Lock()
	u, ok := c.units[key]
	c.mu.Unlock()
	return u, ok
}

func (c *derivedCache) putUnit(key unitKey, u float64) {
	c.mu.Lock()
	if len(c.units) < drawCacheEntries {
		c.units[key] = u
	}
	c.mu.Unlock()
}

// pickAt returns the uniform class pick of stream (seed, label, id, i) over
// n choices, memoized. Round-static: the key's round component is 0.
func (d *Dataset) pickAt(label, id, i int64, n int) int {
	key := pickKey{label, id, i, n, 0}
	if p, ok := d.cache.getPick(key); ok {
		return p
	}
	p := tensor.Split(d.seed, label, id, i).Intn(n)
	d.cache.putPick(key, p)
	return p
}

// pickAtRound returns the uniform pick of the round-keyed stream
// (seed, label, id, i, round) over n choices, memoized on the full key —
// the draw rule of round-varying partitioners (incremental classes keys it
// by stage, so rounds inside one stage share entries).
func (d *Dataset) pickAtRound(label, id, i, round int64, n int) int {
	key := pickKey{label, id, i, n, round}
	if p, ok := d.cache.getPick(key); ok {
		return p
	}
	p := tensor.Split(d.seed, label, id, i, round).Intn(n)
	d.cache.putPick(key, p)
	return p
}

// unitAt returns the uniform [0,1) draw of stream (seed, label, id, i),
// memoized. Round-static: the key's round component is 0.
func (d *Dataset) unitAt(label, id, i int64) float64 {
	key := unitKey{label, id, i, 0}
	if u, ok := d.cache.getUnit(key); ok {
		return u
	}
	u := tensor.Split(d.seed, label, id, i).Float64()
	d.cache.putUnit(key, u)
	return u
}

// flipDrawAt returns the memoized draw pair of label-flip stream
// (seed, label, stream, idx). Callers must have checked Classes >= 2.
// Round-static: the key's round component is 0.
func (d *Dataset) flipDrawAt(label, stream, idx int64) flipDraw {
	key := flipKey{label, stream, idx, 0}
	if fd, ok := d.cache.getFlip(key); ok {
		return fd
	}
	rng := tensor.Split(d.seed, label, stream, idx)
	fd := flipDraw{u: rng.Float64(), other: rng.Intn(d.Spec.Classes - 1)}
	d.cache.putFlip(key, fd)
	return fd
}

// flipDrawAtRound returns the memoized draw pair of the round-keyed
// label-flip stream (seed, label, stream, idx, round) — fresh coins every
// round, the draw rule of the decaying-label-noise scenario. Callers must
// have checked Classes >= 2.
func (d *Dataset) flipDrawAtRound(label, stream, idx, round int64) flipDraw {
	key := flipKey{label, stream, idx, round}
	if fd, ok := d.cache.getFlip(key); ok {
		return fd
	}
	rng := tensor.Split(d.seed, label, stream, idx, round)
	fd := flipDraw{u: rng.Float64(), other: rng.Intn(d.Spec.Classes - 1)}
	d.cache.putFlip(key, fd)
	return fd
}
