package dataset

import (
	"fmt"
	"math"
	"sort"

	"fedcdp/internal/tensor"
)

// This file is the heterogeneity scenario engine: pluggable client-data
// partitioners that decide how the benchmark's sample pool is split across
// the client population. Every partitioner is a pure function of
// (dataset seed, client id) — no shared mutable state, no global shuffle —
// so shards can be materialized lazily, in any order, from any goroutine,
// and a K=10,000-client run still only pays for the clients it samples.
//
// Split/label-space allocation within the dataset seed (see also the
// sample/prototype labels in dataset.go):
//
//	3000  per-(client, index) class pick inside a shard (IID, LabelNoiseSkew)
//	3100  per-client Dirichlet class proportions
//	3150  per-(client, index) Dirichlet class draw
//	3200  pathological shard permutation (shared by all clients)
//	3250  per-client quantity-skew size draw
//	3260  per-(client, index) quantity-skew class pick
//	3300  per-client label-noise rate draw (LabelNoiseSkew, DecayingLabelNoise)
//	3400  per-(client, index, stage) incremental-classes pick
//	4100  per-(client, index) extra label-flip coin (label-noise skew)
//	4200  per-(client, index, round) decaying-noise flip coin
//
// Time-varying partitioners (RoundPartitioner) additionally key their
// draws by a round or stage component — still pure functions, now of
// (seed, clientID, round) — so open-world scenarios materialize lazily and
// replay bit-identically like everything else.

// Scenario names accepted by Scenario.Name. The zero value ("" or
// ScenarioIID) reproduces the paper's Table I partition exactly.
const (
	ScenarioIID          = "iid"
	ScenarioDirichlet    = "dirichlet"
	ScenarioPathological = "pathological"
	ScenarioQuantity     = "quantity"
	ScenarioLabelNoise   = "labelnoise"
	ScenarioIncremental  = "incremental"
	ScenarioDecayNoise   = "decaynoise"
)

// ScenarioNames lists the scenario names in documentation order.
func ScenarioNames() []string {
	return []string{ScenarioIID, ScenarioDirichlet, ScenarioPathological, ScenarioQuantity, ScenarioLabelNoise, ScenarioIncremental, ScenarioDecayNoise}
}

// Scenario selects a partitioner by name plus its parameters. It is a plain
// value (flag- and gob-friendly) so it can travel through core.Config,
// experiments.Options and the fl.RoundConfig a server publishes to remote
// clients.
type Scenario struct {
	// Name is one of ScenarioNames(); "" means ScenarioIID.
	Name string
	// Alpha is the Dirichlet concentration (dirichlet scenario); smaller is
	// more skewed. 0 defaults to 0.5.
	Alpha float64
	// Shards is the number of label shards per client (pathological
	// scenario). 0 defaults to 2, McMahan et al.'s setting.
	Shards int
	// Period is the round cadence of the time-varying scenarios: the
	// incremental scenario reveals one new class every Period rounds, the
	// decaynoise scenario halves its extra flip rate every Period rounds.
	// 0 defaults to 5.
	Period int
}

// String renders the scenario with its effective parameters.
func (s Scenario) String() string {
	switch s.Name {
	case ScenarioDirichlet:
		a := s.Alpha
		if a <= 0 {
			a = 0.5
		}
		return fmt.Sprintf("dirichlet(alpha=%g)", a)
	case ScenarioPathological:
		m := s.Shards
		if m <= 0 {
			m = 2
		}
		return fmt.Sprintf("pathological(shards=%d)", m)
	case ScenarioIncremental:
		return fmt.Sprintf("incremental(period=%d)", effectivePeriod(s.Period))
	case ScenarioDecayNoise:
		return fmt.Sprintf("decaynoise(period=%d)", effectivePeriod(s.Period))
	case "", ScenarioIID:
		return ScenarioIID
	default:
		return s.Name
	}
}

// effectivePeriod resolves the time-varying scenarios' round cadence.
func effectivePeriod(p int) int {
	if p <= 0 {
		return 5
	}
	return p
}

// Partitioner returns the partitioner this scenario selects, or an error
// listing the valid names.
func (s Scenario) Partitioner() (Partitioner, error) {
	switch s.Name {
	case "", ScenarioIID:
		return IID{}, nil
	case ScenarioDirichlet:
		return Dirichlet{Alpha: s.Alpha}, nil
	case ScenarioPathological:
		return Pathological{Shards: s.Shards}, nil
	case ScenarioQuantity:
		return QuantitySkew{}, nil
	case ScenarioLabelNoise:
		return LabelNoiseSkew{}, nil
	case ScenarioIncremental:
		return IncrementalClasses{Period: s.Period}, nil
	case ScenarioDecayNoise:
		return DecayingLabelNoise{Period: s.Period}, nil
	default:
		return nil, fmt.Errorf("dataset: unknown scenario %q (have %v)", s.Name, ScenarioNames())
	}
}

// Shard describes one client's local data distribution: its size, the
// classes that can appear, a deterministic index→class assignment, and an
// optional extra label-noise rate. ClassAt must be a pure function of its
// argument (it is called from concurrent trainers).
type Shard struct {
	// N is the number of local examples.
	N int
	// Classes is the support: every class ClassAt can return, ascending.
	Classes []int
	// ClassAt returns the pre-flip class of local example i ∈ [0, N).
	ClassAt func(i int) int
	// FlipRate is an additional per-client label-flip probability applied
	// on top of the spec's base LabelFlip (label-noise skew); 0 elsewhere.
	FlipRate float64
	// FlipLabel, when non-zero, redirects the extra-flip coins to a
	// round-keyed Split label space (4200: per-(client, index, round)
	// draws); 0 keeps the static per-(client, index) stream (4100).
	FlipLabel int64
	// Round is the round this shard view was materialized for — set by
	// RoundPartitioner shards, consumed by the round-keyed flip stream;
	// 0 on static shards.
	Round int
}

// Partitioner determines each client's local data distribution. Shard must
// be deterministic in (d.seed, id) and safe for concurrent use: the
// streaming runtime materializes cohort members from many goroutines in
// whatever order workers free up.
type Partitioner interface {
	// Name identifies the partitioner in reports and histories.
	Name() string
	// Shard returns client id's local shard description.
	Shard(d *Dataset, id int) Shard
}

// RoundPartitioner is a Partitioner whose shards vary over the round
// horizon: client data that drifts (new classes appearing mid-run, noise
// rates that decay). ShardAt must be a pure function of (d.seed, id,
// round) — never of materialization order — so time-varying shards stay
// lazily materializable and bit-reproducible like static ones. Shard(d,
// id) must equal ShardAt(d, id, 0), the view round-blind callers see.
type RoundPartitioner interface {
	Partitioner
	// ShardAt returns client id's local shard as of the given round.
	ShardAt(d *Dataset, id, round int) Shard
}

// specClasses returns the class support the paper's Table I assigns to
// client id: ClassesPerClient contiguous classes for the non-IID image
// benchmarks, all classes for tabular/full-copy benchmarks.
func specClasses(s Spec, id int) []int {
	if s.FullCopy || s.ClassesPerClient == 0 {
		classes := make([]int, s.Classes)
		for c := range classes {
			classes[c] = c
		}
		return classes
	}
	classes := make([]int, s.ClassesPerClient)
	base := (id * s.ClassesPerClient) % s.Classes
	for j := range classes {
		classes[j] = (base + j) % s.Classes
	}
	return classes
}

// uniformClassAt is the original per-(client, index) class pick: uniform
// over the shard's classes, drawn from Split label 3000. IID and
// LabelNoiseSkew share it, which is what keeps the iid scenario bit-for-bit
// compatible with the pre-partitioner Client(id). Picks are memoized in the
// dataset's derived cache (see cache.go).
func uniformClassAt(d *Dataset, id int, classes []int) func(int) int {
	return func(i int) int {
		return classes[d.pickAt(3000, int64(id), int64(i), len(classes))]
	}
}

// IID is the paper's Table I partition (the pre-scenario-engine behaviour):
// every client holds Spec.PerClient examples, classes come from the spec's
// contiguous-shard rule, and the class of each local example is a uniform
// pick within the shard. Despite the name this is only i.i.d. *within* the
// shard; image benchmarks keep their spec-level 2-classes-per-client skew.
// It is the reference scenario every seeded golden is pinned against.
type IID struct{}

// Name implements Partitioner.
func (IID) Name() string { return ScenarioIID }

// Shard implements Partitioner.
func (IID) Shard(d *Dataset, id int) Shard {
	classes := specClasses(d.Spec, id)
	return Shard{
		N:       d.Spec.PerClient,
		Classes: classes,
		ClassAt: uniformClassAt(d, id, classes),
	}
}

// Dirichlet is label-distribution skew: client k's class proportions are
// drawn once from Dir(α, …, α) keyed by (seed, k), and each local example's
// class is an independent draw from that categorical distribution. Small α
// concentrates each client on few classes (α→0 approaches one-class
// clients); large α approaches a uniform mix. This is the standard
// federated-learning heterogeneity model (Hsu et al.).
type Dirichlet struct {
	// Alpha is the concentration parameter; 0 defaults to 0.5.
	Alpha float64
}

// Name implements Partitioner.
func (Dirichlet) Name() string { return ScenarioDirichlet }

// Shard implements Partitioner.
func (p Dirichlet) Shard(d *Dataset, id int) Shard {
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 0.5
	}
	s := d.Spec
	rng := tensor.Split(d.seed, 3100, int64(id))
	props := dirichletSample(rng, alpha, s.Classes)
	// Cumulative distribution for inverse-CDF draws at each index.
	cdf := make([]float64, s.Classes)
	sum := 0.0
	for c, w := range props {
		sum += w
		cdf[c] = sum
	}
	classes := make([]int, s.Classes)
	for c := range classes {
		classes[c] = c
	}
	return Shard{
		N:       s.PerClient,
		Classes: classes,
		ClassAt: func(i int) int {
			u := d.unitAt(3150, int64(id), int64(i))
			c := sort.SearchFloat64s(cdf, u)
			if c >= len(cdf) {
				c = len(cdf) - 1
			}
			return c
		},
	}
}

// Pathological is McMahan et al.'s shard assignment: classes are shuffled
// once per dataset seed, each client takes Shards consecutive entries of
// that shuffle, and its local indices are split into contiguous
// equal-sized blocks, one per shard — the "sorted by label, dealt in
// shards" partition where most clients see only Shards classes and local
// batches are label-homogeneous runs.
type Pathological struct {
	// Shards is the number of label shards per client; 0 defaults to 2 and
	// values above the class count are clamped.
	Shards int
}

// Name implements Partitioner.
func (Pathological) Name() string { return ScenarioPathological }

// Shard implements Partitioner.
func (p Pathological) Shard(d *Dataset, id int) Shard {
	s := d.Spec
	m := p.Shards
	if m <= 0 {
		m = 2
	}
	if m > s.Classes {
		m = s.Classes
	}
	perm := tensor.Split(d.seed, 3200).Perm(s.Classes)
	classes := make([]int, m)
	for j := range classes {
		classes[j] = perm[(id*m+j)%s.Classes]
	}
	support := append([]int(nil), classes...)
	sort.Ints(support)
	block := (s.PerClient + m - 1) / m
	return Shard{
		N:       s.PerClient,
		Classes: support,
		ClassAt: func(i int) int {
			sh := i / block
			if sh >= m {
				sh = m - 1
			}
			return classes[sh]
		},
	}
}

// quantityMeanWeight is the mean of the truncated Pareto weight used by
// QuantitySkew; dividing it out keeps the population's expected shard size
// at Spec.PerClient, so quantity skew redistributes data without changing
// the total.
const (
	quantityExponent  = 1.5
	quantityCap       = 10.0
	quantityMinFactor = 0.05
)

// QuantitySkew is size heterogeneity: every client sees the spec's class
// mix (all classes, uniform), but shard sizes follow a truncated power law
// n_k ∝ Pareto(1.5) — a few data-rich clients and a long tail of data-poor
// ones. Weighted FedAvg (fl.AggWeighted) is the aggregation rule this
// scenario exists to exercise.
type QuantitySkew struct{}

// Name implements Partitioner.
func (QuantitySkew) Name() string { return ScenarioQuantity }

// Shard implements Partitioner.
func (QuantitySkew) Shard(d *Dataset, id int) Shard {
	s := d.Spec
	rng := tensor.Split(d.seed, 3250, int64(id))
	// Truncated Pareto(a): w = (1-u)^(-1/a) clipped to quantityCap.
	w := math.Pow(1-rng.Float64(), -1/quantityExponent)
	if w > quantityCap {
		w = quantityCap
	}
	// Mean of the truncated weight, so E[n] ≈ PerClient: for Pareto(1, a)
	// truncated at c, E[w] = a/(a-1)·(1 - c^(1-a)) + c^(1-a)·c … computed
	// in closed form below.
	a := quantityExponent
	mean := a/(a-1)*(1-math.Pow(quantityCap, 1-a)) + math.Pow(quantityCap, -a)*quantityCap
	n := int(math.Round(float64(s.PerClient) * w / mean))
	if min := int(float64(s.PerClient) * quantityMinFactor); n < min {
		n = min
	}
	if n < 1 {
		n = 1
	}
	classes := make([]int, s.Classes)
	for c := range classes {
		classes[c] = c
	}
	return Shard{
		N:       n,
		Classes: classes,
		ClassAt: func(i int) int {
			return classes[d.pickAt(3260, int64(id), int64(i), len(classes))]
		},
	}
}

// labelNoiseMaxRate bounds the per-client extra flip rate drawn by
// LabelNoiseSkew; rates are uniform in [0, labelNoiseMaxRate].
const labelNoiseMaxRate = 0.4

// LabelNoiseSkew is annotation-quality heterogeneity: shards are assigned
// exactly as in IID, but each client additionally flips its labels at a
// client-specific rate ρ_k ~ Uniform[0, 0.4] on top of the spec's base
// LabelFlip — some clients are clean, some are mostly noise, modelling
// real populations with unreliable annotators.
type LabelNoiseSkew struct{}

// Name implements Partitioner.
func (LabelNoiseSkew) Name() string { return ScenarioLabelNoise }

// Shard implements Partitioner.
func (LabelNoiseSkew) Shard(d *Dataset, id int) Shard {
	classes := specClasses(d.Spec, id)
	rate := tensor.Split(d.seed, 3300, int64(id)).Float64() * labelNoiseMaxRate
	return Shard{
		N:        d.Spec.PerClient,
		Classes:  classes,
		ClassAt:  uniformClassAt(d, id, classes),
		FlipRate: rate,
	}
}

// Split label spaces of the time-varying partitioners (see the table at
// the top of the file).
const (
	labelIncrementalPick = 3400 // per-(client, index, stage) incremental class pick
	labelDecayFlip       = 4200 // per-(client, index, round) decaying-noise flip coin
)

// incrementalStartClasses is the label support visible at round 0 under
// the incremental scenario; one more class appears every Period rounds.
const incrementalStartClasses = 2

// IncrementalClasses is temporal label drift: the benchmark starts with
// only incrementalStartClasses labels in circulation and a new class
// enters every Period rounds (the incremental-classification framing) —
// classes the horizon never reaches simply never appear. Every client
// draws uniformly from the currently visible classes; the pick stream is
// keyed by the stage (the visible-class count), so shards change exactly
// at class-arrival boundaries and rounds within one stage share their
// cached draws.
type IncrementalClasses struct {
	// Period is the rounds between class arrivals; 0 defaults to 5.
	Period int
}

// Name implements Partitioner.
func (IncrementalClasses) Name() string { return ScenarioIncremental }

// Shard implements Partitioner: the round-0 view.
func (p IncrementalClasses) Shard(d *Dataset, id int) Shard { return p.ShardAt(d, id, 0) }

// ShardAt implements RoundPartitioner.
func (p IncrementalClasses) ShardAt(d *Dataset, id, round int) Shard {
	v := incrementalStartClasses + round/effectivePeriod(p.Period)
	if v > d.Spec.Classes {
		v = d.Spec.Classes
	}
	classes := make([]int, v)
	for c := range classes {
		classes[c] = c
	}
	return Shard{
		N:       d.Spec.PerClient,
		Classes: classes,
		ClassAt: func(i int) int {
			return classes[d.pickAtRound(labelIncrementalPick, int64(id), int64(i), int64(v), v)]
		},
		Round: round,
	}
}

// DecayingLabelNoise is annotation quality that improves over time: each
// client starts at a seeded rate ρ_k ~ Uniform[0, 0.4] (the same label-3300
// draw LabelNoiseSkew uses) and the rate halves every Period rounds —
// "users correct themselves". The flip coins are redrawn per round from
// the round-keyed label-4200 stream, so which examples are mislabelled is
// a pure function of (seed, clientID, round) — the scenario that exercises
// the derived cache's round-keyed keys for real.
type DecayingLabelNoise struct {
	// Period is the rate's halving time in rounds; 0 defaults to 5.
	Period int
}

// Name implements Partitioner.
func (DecayingLabelNoise) Name() string { return ScenarioDecayNoise }

// Shard implements Partitioner: the round-0 view.
func (p DecayingLabelNoise) Shard(d *Dataset, id int) Shard { return p.ShardAt(d, id, 0) }

// ShardAt implements RoundPartitioner.
func (p DecayingLabelNoise) ShardAt(d *Dataset, id, round int) Shard {
	classes := specClasses(d.Spec, id)
	base := tensor.Split(d.seed, 3300, int64(id)).Float64() * labelNoiseMaxRate
	rate := base * math.Pow(2, -float64(round)/float64(effectivePeriod(p.Period)))
	return Shard{
		N:         d.Spec.PerClient,
		Classes:   classes,
		ClassAt:   uniformClassAt(d, id, classes),
		FlipRate:  rate,
		FlipLabel: labelDecayFlip,
		Round:     round,
	}
}

// dirichletSample draws one sample from Dir(alpha, …, alpha) of dimension
// dim using rng, via normalized Gamma(alpha, 1) draws. Deterministic in the
// rng's seed.
func dirichletSample(rng *tensor.RNG, alpha float64, dim int) []float64 {
	out := make([]float64, dim)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum <= 0 {
		// All mass underflowed (possible for very small alpha): fall back
		// to a single uniformly chosen class, the α→0 limit.
		out[rng.Intn(dim)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) with the Marsaglia–Tsang method
// (plus the shape<1 boost), using only rng — deterministic per seed.
func gammaSample(rng *tensor.RNG, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// PartitionStats summarizes the heterogeneity a partitioner induces over a
// client population — the per-client dataset statistics experiment reports
// carry (shard sizes, effective class counts, label entropy).
type PartitionStats struct {
	Clients     int
	MinN, MaxN  int
	TotalN      int
	MeanN       float64
	MeanClasses float64 // mean distinct classes observed per client
	MeanEntropy float64 // mean empirical label entropy per client, in bits
	// MeanFlip/MaxFlip summarize the per-client extra label-flip rates a
	// label-noise-skew partition assigns (on top of the spec's base
	// LabelFlip); both are 0 under every other scenario.
	MeanFlip float64
	MaxFlip  float64
}

// String renders the stats in one report-friendly line; the flip-rate
// summary appears only when the partition assigns per-client label noise.
func (ps PartitionStats) String() string {
	s := fmt.Sprintf("clients=%d examples/client min=%d mean=%.0f max=%d classes/client=%.1f label-entropy=%.2f bits",
		ps.Clients, ps.MinN, ps.MeanN, ps.MaxN, ps.MeanClasses, ps.MeanEntropy)
	if ps.MaxFlip > 0 {
		s += fmt.Sprintf(" extra-flip mean=%.2f max=%.2f", ps.MeanFlip, ps.MaxFlip)
	}
	return s
}

// statsSampleCap bounds the per-client label draws Stats makes, so stats on
// large populations stay cheap (each draw costs one Split).
const statsSampleCap = 64

// Stats measures the realized partition over the first `clients` clients by
// sampling up to 64 label assignments per client. Deterministic in the
// dataset seed.
func (d *Dataset) Stats(clients int) PartitionStats {
	ps := PartitionStats{Clients: clients, MinN: math.MaxInt32}
	if clients <= 0 {
		ps.MinN = 0
		return ps
	}
	for id := 0; id < clients; id++ {
		c := d.Client(id)
		n := c.Len()
		ps.TotalN += n
		if n < ps.MinN {
			ps.MinN = n
		}
		if n > ps.MaxN {
			ps.MaxN = n
		}
		sample := n
		if sample > statsSampleCap {
			sample = statsSampleCap
		}
		counts := make(map[int]int, len(c.Classes()))
		for i := 0; i < sample; i++ {
			counts[c.shard.ClassAt(i)]++
		}
		ps.MeanClasses += float64(len(counts))
		entropy := 0.0
		for _, k := range counts {
			p := float64(k) / float64(sample)
			entropy -= p * math.Log2(p)
		}
		ps.MeanEntropy += entropy
		ps.MeanFlip += c.shard.FlipRate
		if c.shard.FlipRate > ps.MaxFlip {
			ps.MaxFlip = c.shard.FlipRate
		}
	}
	ps.MeanN = float64(ps.TotalN) / float64(clients)
	ps.MeanClasses /= float64(clients)
	ps.MeanEntropy /= float64(clients)
	ps.MeanFlip /= float64(clients)
	return ps
}
