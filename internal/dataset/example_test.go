package dataset_test

import (
	"fmt"

	"fedcdp/internal/dataset"
)

// The default partition is the paper's Table I rule: MNIST clients hold 500
// examples from 2 contiguous classes.
func ExampleIID() {
	spec, _ := dataset.Get("mnist")
	d := dataset.NewPartitioned(spec, 42, dataset.IID{})
	c := d.Client(3)
	fmt.Println("examples:", c.Len(), "classes:", c.Classes())
	// Output: examples: 500 classes: [6 7]
}

// Dirichlet label skew: each client's class mix is drawn from Dir(α).
// Small α concentrates clients on few classes — the realized label entropy
// collapses as α shrinks.
func ExampleDirichlet() {
	spec, _ := dataset.Get("mnist")
	for _, alpha := range []float64{100, 0.1} {
		d := dataset.NewPartitioned(spec, 42, dataset.Dirichlet{Alpha: alpha})
		fmt.Printf("alpha=%-4g %s\n", alpha, d.Stats(16))
	}
	// Output:
	// alpha=100  clients=16 examples/client min=500 mean=500 max=500 classes/client=10.0 label-entropy=3.21 bits
	// alpha=0.1  clients=16 examples/client min=500 mean=500 max=500 classes/client=4.0 label-entropy=1.10 bits
}

// Pathological shard assignment (McMahan et al.): classes are shuffled once
// and dealt out in shards, so most clients see exactly Shards classes in
// contiguous label runs.
func ExamplePathological() {
	spec, _ := dataset.Get("mnist")
	d := dataset.NewPartitioned(spec, 42, dataset.Pathological{Shards: 2})
	for id := 0; id < 3; id++ {
		fmt.Printf("client %d holds classes %v\n", id, d.Client(id).Classes())
	}
	// Output:
	// client 0 holds classes [5 7]
	// client 1 holds classes [0 6]
	// client 2 holds classes [3 9]
}

// Quantity skew: same class mix everywhere, but shard sizes follow a
// truncated power law — the partition weighted FedAvg (fl.AggWeighted)
// exists to aggregate correctly.
func ExampleQuantitySkew() {
	spec, _ := dataset.Get("mnist")
	d := dataset.NewPartitioned(spec, 42, dataset.QuantitySkew{})
	for id := 0; id < 4; id++ {
		fmt.Printf("client %d holds %d examples\n", id, d.Client(id).Len())
	}
	// Output:
	// client 0 holds 370 examples
	// client 1 holds 405 examples
	// client 2 holds 353 examples
	// client 3 holds 361 examples
}

// Label-noise skew: shards match the iid partition, but each client flips
// labels at its own rate ρ_k ~ U[0, 0.4] — heterogeneous annotation quality.
func ExampleLabelNoiseSkew() {
	spec, _ := dataset.Get("mnist")
	d := dataset.NewPartitioned(spec, 42, dataset.LabelNoiseSkew{})
	iid := dataset.NewPartitioned(spec, 42, dataset.IID{})
	for _, id := range []int{0, 1} {
		diff := 0
		for i := 0; i < 100; i++ {
			_, y := d.Client(id).Get(i)
			_, ry := iid.Client(id).Get(i)
			if y != ry {
				diff++
			}
		}
		fmt.Printf("client %d: %d/100 labels flipped vs iid\n", id, diff)
	}
	// Output:
	// client 0: 27/100 labels flipped vs iid
	// client 1: 0/100 labels flipped vs iid
}

// Scenarios resolve partitioners by name — the registry the -scenario
// flags and core.Config.Scenario go through.
func ExampleScenario() {
	sc := dataset.Scenario{Name: dataset.ScenarioDirichlet, Alpha: 0.1}
	p, _ := sc.Partitioner()
	fmt.Println(sc, "->", p.Name())
	fmt.Println(dataset.ScenarioNames())
	// Output:
	// dirichlet(alpha=0.1) -> dirichlet
	// [iid dirichlet pathological quantity labelnoise incremental decaynoise]
}
