package dataset

import (
	"testing"

	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

func TestBenchmarksMatchTableI(t *testing.T) {
	b := Benchmarks()
	cases := []struct {
		name              string
		features, classes int
		perClient, batch  int
		iters, rounds     int
	}{
		{"mnist", 28 * 28, 10, 500, 5, 100, 100},
		{"cifar10", 32 * 32 * 3, 10, 400, 4, 100, 100},
		{"lfw", 32 * 32 * 3, 62, 300, 3, 100, 60},
		{"adult", 105, 2, 300, 3, 100, 10},
		{"cancer", 30, 2, 400, 4, 100, 3},
	}
	for _, tc := range cases {
		s, ok := b[tc.name]
		if !ok {
			t.Fatalf("missing benchmark %q", tc.name)
		}
		if s.Features != tc.features {
			t.Errorf("%s features = %d, want %d", tc.name, s.Features, tc.features)
		}
		if s.Classes != tc.classes {
			t.Errorf("%s classes = %d, want %d", tc.name, s.Classes, tc.classes)
		}
		if s.PerClient != tc.perClient {
			t.Errorf("%s perClient = %d, want %d", tc.name, s.PerClient, tc.perClient)
		}
		if s.BatchSize != tc.batch {
			t.Errorf("%s batch = %d, want %d", tc.name, s.BatchSize, tc.batch)
		}
		if s.LocalIters != tc.iters {
			t.Errorf("%s L = %d, want %d", tc.name, s.LocalIters, tc.iters)
		}
		if s.Rounds != tc.rounds {
			t.Errorf("%s T = %d, want %d", tc.name, s.Rounds, tc.rounds)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("imagenet"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if _, err := Get("mnist"); err != nil {
		t.Fatalf("Get(mnist): %v", err)
	}
}

func TestNamesCoverAllBenchmarks(t *testing.T) {
	names := Names()
	b := Benchmarks()
	if len(names) != len(b) {
		t.Fatalf("Names has %d entries, Benchmarks %d", len(names), len(b))
	}
	for _, n := range names {
		if _, ok := b[n]; !ok {
			t.Fatalf("Names contains %q which is not a benchmark", n)
		}
	}
}

func TestSampleDeterminism(t *testing.T) {
	spec, _ := Get("mnist")
	d1 := New(spec, 42)
	d2 := New(spec, 42)
	a := d1.Sample(3, 7, 2)
	b := d2.Sample(3, 7, 2)
	if !a.Equal(b, 0) {
		t.Fatal("same (seed, stream, idx, class) must give identical samples")
	}
	c := d1.Sample(3, 8, 2)
	if a.Equal(c, 1e-9) {
		t.Fatal("different idx should give different samples")
	}
	d3 := New(spec, 43)
	e := d3.Sample(3, 7, 2)
	if a.Equal(e, 1e-9) {
		t.Fatal("different dataset seed should give different samples")
	}
}

func TestSamplesInUnitRange(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Get(name)
		d := New(spec, 1)
		for i := int64(0); i < 10; i++ {
			x := d.Sample(0, i, int(i)%spec.Classes)
			for _, v := range x.Data() {
				if v < 0 || v > 1 {
					t.Fatalf("%s sample value %v outside [0,1]", name, v)
				}
			}
		}
	}
}

func TestPrototypesDiffer(t *testing.T) {
	spec, _ := Get("mnist")
	d := New(spec, 7)
	p0, p1 := d.Prototype(0), d.Prototype(1)
	diff := p0.Clone()
	diff.Sub(p1)
	if diff.L2Norm() < 0.5 {
		t.Fatalf("class prototypes nearly identical (norm %v)", diff.L2Norm())
	}
}

func TestValidationBalancedAndDeterministic(t *testing.T) {
	spec, _ := Get("mnist")
	spec.LabelFlip = 0 // exact balance only holds without label noise
	d := New(spec, 5)
	xs, ys := d.Validation(40)
	if len(xs) != 40 || len(ys) != 40 {
		t.Fatalf("validation size %d/%d", len(xs), len(ys))
	}
	counts := map[int]int{}
	for _, y := range ys {
		counts[y]++
	}
	for c := 0; c < 10; c++ {
		if counts[c] != 4 {
			t.Fatalf("class %d has %d validation examples, want 4", c, counts[c])
		}
	}
	xs2, _ := d.Validation(40)
	if !xs[0].Equal(xs2[0], 0) {
		t.Fatal("validation must be deterministic")
	}
}

func TestValidationCappedAtValN(t *testing.T) {
	spec, _ := Get("cancer") // ValN = 143
	d := New(spec, 1)
	xs, _ := d.Validation(10000)
	if len(xs) != 143 {
		t.Fatalf("validation size %d, want capped 143", len(xs))
	}
}

func TestClientNonIIDShards(t *testing.T) {
	spec, _ := Get("mnist") // 2 classes per client
	spec.LabelFlip = 0      // flips deliberately move labels off-shard
	d := New(spec, 9)
	c0 := d.Client(0)
	if got := c0.Classes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("client 0 classes = %v, want [0 1]", got)
	}
	c3 := d.Client(3)
	if got := c3.Classes(); got[0] != 6 || got[1] != 7 {
		t.Fatalf("client 3 classes = %v, want [6 7]", got)
	}
	// Client labels must come only from its shard classes.
	for i := 0; i < 50; i++ {
		_, y := c3.Get(i)
		if y != 6 && y != 7 {
			t.Fatalf("client 3 produced label %d outside its shard", y)
		}
	}
}

func TestClientShardWraparound(t *testing.T) {
	spec, _ := Get("mnist")
	d := New(spec, 9)
	c := d.Client(7) // base = 14 mod 10 = 4
	if got := c.Classes(); got[0] != 4 || got[1] != 5 {
		t.Fatalf("client 7 classes = %v, want [4 5]", got)
	}
}

func TestFullCopyClientSeesAllClasses(t *testing.T) {
	spec, _ := Get("cancer")
	d := New(spec, 9)
	c := d.Client(5)
	if len(c.Classes()) != 2 {
		t.Fatalf("cancer client classes = %v, want all 2", c.Classes())
	}
	seen := map[int]bool{}
	for i := 0; i < 60; i++ {
		_, y := c.Get(i)
		seen[y] = true
	}
	if len(seen) != 2 {
		t.Fatalf("full-copy client saw classes %v, want both", seen)
	}
}

func TestClientGetDeterministic(t *testing.T) {
	spec, _ := Get("lfw")
	d := New(spec, 11)
	c := d.Client(2)
	x1, y1 := c.Get(5)
	x2, y2 := c.Get(5)
	if y1 != y2 || !x1.Equal(x2, 0) {
		t.Fatal("client Get must be deterministic")
	}
}

func TestClientGetPanicsOutOfRange(t *testing.T) {
	spec, _ := Get("mnist")
	d := New(spec, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	d.Client(0).Get(spec.PerClient)
}

func TestBatchShapeAndWraparound(t *testing.T) {
	spec, _ := Get("mnist")
	d := New(spec, 1)
	c := d.Client(0)
	xs, ys := c.Batch(0, 5)
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatalf("batch size %d/%d, want 5", len(xs), len(ys))
	}
	// Batch past the end wraps around to index 0.
	lastBatch := spec.PerClient / 5 // first out-of-range batch
	xw, _ := c.Batch(lastBatch, 5)
	x0, _ := c.Get(0)
	if !xw[0].Equal(x0, 0) {
		t.Fatal("batch must wrap around the shard")
	}
}

func TestLabelFlipRate(t *testing.T) {
	spec, _ := Get("mnist")
	spec.LabelFlip = 0.3
	d := New(spec, 13)
	flipped := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if d.flipLabel(3, 7, int64(i)) != 3 {
			flipped++
		}
	}
	rate := float64(flipped) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("flip rate %v, want ≈0.3", rate)
	}
}

func TestLabelFlipNeverSameClass(t *testing.T) {
	spec, _ := Get("mnist")
	spec.LabelFlip = 1 // always flip
	d := New(spec, 14)
	for i := 0; i < 200; i++ {
		y := d.flipLabel(5, 0, int64(i))
		if y == 5 {
			t.Fatal("flip must choose a different class")
		}
		if y < 0 || y >= spec.Classes {
			t.Fatalf("flipped label %d out of range", y)
		}
	}
}

func TestLabelFlipDeterministic(t *testing.T) {
	spec, _ := Get("cifar10")
	d := New(spec, 15)
	for i := 0; i < 100; i++ {
		if d.flipLabel(2, 4, int64(i)) != d.flipLabel(2, 4, int64(i)) {
			t.Fatal("flipLabel must be deterministic")
		}
	}
}

func TestLabelFlipZeroIsIdentity(t *testing.T) {
	spec, _ := Get("cancer")
	spec.LabelFlip = 0
	d := New(spec, 16)
	for i := 0; i < 100; i++ {
		if d.flipLabel(1, 0, int64(i)) != 1 {
			t.Fatal("zero flip rate must never flip")
		}
	}
}

func TestModelSpecShapes(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Get(name)
		m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
		x := tensor.New(spec.InputShape()...)
		y := m.Forward(x)
		if y.Len() != spec.Classes {
			t.Fatalf("%s model output %d, want %d", name, y.Len(), spec.Classes)
		}
	}
}

func TestSyntheticTaskIsLearnable(t *testing.T) {
	// A few SGD epochs on the cancer benchmark should reach high accuracy —
	// this pins the difficulty calibration for the easiest dataset.
	spec, _ := Get("cancer")
	d := New(spec, 123)
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	c := d.Client(0)
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 200; i++ {
			x, y := c.Get(i % c.Len())
			_, g := m.ExampleGradient(x, y)
			m.SGDStep(0.1, g)
		}
	}
	xs, ys := d.Validation(100)
	correct := 0
	for i, x := range xs {
		if m.Predict(x) == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.9 {
		t.Fatalf("cancer accuracy after training = %v, want >= 0.9", acc)
	}
}

func TestDerivedCacheIsInvisible(t *testing.T) {
	// The derived cache (cache.go) memoizes sample tensors, flip draws and
	// class picks. A warmed dataset must return bit-identical examples to a
	// fresh one — on every partitioner, including views that share a cache
	// through WithPartitioner — or the cache is changing streams, not timing.
	spec, _ := Get("adult") // LabelFlip > 0, so the flip streams are live
	for _, part := range []Partitioner{IID{}, Dirichlet{Alpha: 0.3}, QuantitySkew{}, LabelNoiseSkew{}} {
		warm := NewPartitioned(spec, 99, part)
		wc := warm.Client(3)
		// First pass populates the cache, second pass reads it back.
		for pass := 0; pass < 2; pass++ {
			fresh := NewPartitioned(spec, 99, part).Client(3)
			for i := 0; i < 32; i++ {
				wx, wy := wc.Get(i)
				fx, fy := fresh.Get(i)
				if wy != fy {
					t.Fatalf("%s pass %d: cached label %d != fresh label %d at %d", part.Name(), pass, wy, fy, i)
				}
				if !wx.Equal(fx, 0) {
					t.Fatalf("%s pass %d: cached example differs from fresh at %d", part.Name(), pass, i)
				}
			}
		}
	}
}

func TestSampleCacheReturnsPrivateCopies(t *testing.T) {
	spec, _ := Get("cancer")
	d := New(spec, 5)
	a := d.Sample(0, 0, 0)
	for i := range a.Data() {
		a.Data()[i] = -1e9 // clobber the caller's copy
	}
	b := d.Sample(0, 0, 0)
	if b.Data()[0] == -1e9 {
		t.Fatal("mutating a returned sample leaked into the cache")
	}
	c := New(spec, 5).Sample(0, 0, 0)
	if !b.Equal(c, 0) {
		t.Fatal("cached sample differs from a fresh dataset's sample")
	}
}
