package dataset

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"fedcdp/internal/tensor"
)

func allPartitioners() []Partitioner {
	return []Partitioner{
		IID{},
		Dirichlet{Alpha: 0.1},
		Dirichlet{Alpha: 10},
		Pathological{Shards: 2},
		Pathological{Shards: 5},
		QuantitySkew{},
		LabelNoiseSkew{},
	}
}

func TestScenarioRegistry(t *testing.T) {
	for _, name := range ScenarioNames() {
		p, err := Scenario{Name: name}.Partitioner()
		if err != nil {
			t.Fatalf("scenario %q: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("scenario %q resolved to partitioner %q", name, p.Name())
		}
	}
	if p, err := (Scenario{}).Partitioner(); err != nil || p.Name() != ScenarioIID {
		t.Fatalf("zero scenario = (%v, %v), want IID", p, err)
	}
	if _, err := (Scenario{Name: "zipf"}).Partitioner(); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

func TestScenarioString(t *testing.T) {
	cases := map[string]Scenario{
		"iid":                    {},
		"dirichlet(alpha=0.5)":   {Name: ScenarioDirichlet},
		"dirichlet(alpha=0.1)":   {Name: ScenarioDirichlet, Alpha: 0.1},
		"pathological(shards=2)": {Name: ScenarioPathological},
		"quantity":               {Name: ScenarioQuantity},
	}
	for want, sc := range cases {
		if got := sc.String(); got != want {
			t.Errorf("Scenario%+v.String() = %q, want %q", sc, got, want)
		}
	}
}

// legacyClient reproduces the pre-partitioner Client(id)/Get(i) logic
// verbatim: the contract the iid scenario must preserve so every PR1–PR3
// seeded golden stays bit-for-bit.
func legacyClient(d *Dataset, id, i int) (*tensor.Tensor, int) {
	s := d.Spec
	var classes []int
	switch {
	case s.FullCopy, s.ClassesPerClient == 0:
		classes = make([]int, s.Classes)
		for c := range classes {
			classes[c] = c
		}
	default:
		classes = make([]int, s.ClassesPerClient)
		base := (id * s.ClassesPerClient) % s.Classes
		for j := range classes {
			classes[j] = (base + j) % s.Classes
		}
	}
	pick := tensor.Split(d.seed, 3000, int64(id), int64(i))
	class := classes[pick.Intn(len(classes))]
	return d.Sample(int64(id), int64(i), class), d.flipLabel(class, int64(id), int64(i))
}

func TestIIDScenarioMatchesLegacyPartition(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Get(name)
		d := New(spec, 42)
		for id := 0; id < 5; id++ {
			c := d.Client(id)
			if c.Len() != spec.PerClient {
				t.Fatalf("%s client %d Len = %d, want %d", name, id, c.Len(), spec.PerClient)
			}
			for i := 0; i < 8; i++ {
				x, y := c.Get(i)
				lx, ly := legacyClient(d, id, i)
				if y != ly || !x.Equal(lx, 0) {
					t.Fatalf("%s client %d example %d diverged from the legacy partition", name, id, i)
				}
			}
		}
	}
}

// shardFingerprint digests everything observable about one client's shard.
func shardFingerprint(d *Dataset, id int) uint64 {
	h := fnv.New64a()
	c := d.Client(id)
	fmt.Fprintf(h, "n=%d classes=%v", c.Len(), c.Classes())
	for i := 0; i < 16 && i < c.Len(); i++ {
		x, y := c.Get(i)
		fmt.Fprintf(h, " %d:%d:%x", i, y, math.Float64bits(x.Data()[0]))
	}
	return h.Sum64()
}

func TestPartitionDeterminismAcrossGoroutines(t *testing.T) {
	spec, _ := Get("mnist")
	const clients = 24
	for _, p := range allPartitioners() {
		d := NewPartitioned(spec, 7, p)
		// Sequential reference, ascending ids.
		want := make([]uint64, clients)
		for id := range want {
			want[id] = shardFingerprint(d, id)
		}
		// Concurrent, descending ids, one goroutine per client, against a
		// fresh dataset — the streaming runtime's any-order materialization.
		d2 := NewPartitioned(spec, 7, p)
		got := make([]uint64, clients)
		var wg sync.WaitGroup
		for id := clients - 1; id >= 0; id-- {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				got[id] = shardFingerprint(d2, id)
			}(id)
		}
		wg.Wait()
		for id := range want {
			if got[id] != want[id] {
				t.Fatalf("%s: client %d shard depends on materialization order (GOMAXPROCS=%d)",
					p.Name(), id, runtime.GOMAXPROCS(0))
			}
		}
	}
}

func TestDirichletSkewScalesWithAlpha(t *testing.T) {
	spec, _ := Get("mnist")
	skewed := NewPartitioned(spec, 3, Dirichlet{Alpha: 0.05}).Stats(32)
	mixed := NewPartitioned(spec, 3, Dirichlet{Alpha: 100}).Stats(32)
	if skewed.MeanEntropy >= mixed.MeanEntropy {
		t.Fatalf("alpha=0.05 entropy %.3f not below alpha=100 entropy %.3f",
			skewed.MeanEntropy, mixed.MeanEntropy)
	}
	// alpha→∞ approaches the uniform 10-class mix (log2 10 ≈ 3.32 bits).
	if mixed.MeanEntropy < 2.5 {
		t.Fatalf("alpha=100 entropy %.3f, want near-uniform (> 2.5 bits)", mixed.MeanEntropy)
	}
	if skewed.MeanEntropy > 1.5 {
		t.Fatalf("alpha=0.05 entropy %.3f, want heavily concentrated (< 1.5 bits)", skewed.MeanEntropy)
	}
}

func TestDirichletLabelsInRange(t *testing.T) {
	spec, _ := Get("lfw")
	spec.LabelFlip = 0
	d := NewPartitioned(spec, 5, Dirichlet{Alpha: 0.3})
	c := d.Client(2)
	for i := 0; i < 40; i++ {
		_, y := c.Get(i)
		if y < 0 || y >= spec.Classes {
			t.Fatalf("label %d outside [0,%d)", y, spec.Classes)
		}
	}
}

func TestPathologicalShardWidth(t *testing.T) {
	spec, _ := Get("mnist")
	spec.LabelFlip = 0
	for _, shards := range []int{1, 2, 3} {
		d := NewPartitioned(spec, 11, Pathological{Shards: shards})
		for id := 0; id < 8; id++ {
			c := d.Client(id)
			if len(c.Classes()) != shards {
				t.Fatalf("shards=%d client %d support %v", shards, id, c.Classes())
			}
			seen := map[int]bool{}
			for i := 0; i < 60; i++ {
				_, y := c.Get(i)
				seen[y] = true
			}
			if len(seen) > shards {
				t.Fatalf("shards=%d client %d produced %d classes", shards, id, len(seen))
			}
		}
	}
}

func TestPathologicalBlocksAreLabelRuns(t *testing.T) {
	spec, _ := Get("mnist")
	spec.LabelFlip = 0
	d := NewPartitioned(spec, 11, Pathological{Shards: 2})
	c := d.Client(0)
	// First half of the shard is one class, second half the other.
	_, first := c.Get(0)
	_, last := c.Get(c.Len() - 1)
	if first == last {
		t.Fatalf("expected two label blocks, got %d throughout", first)
	}
	for i := 0; i < c.Len()/2; i++ {
		if _, y := c.Get(i); y != first {
			t.Fatalf("index %d in first block has label %d, want %d", i, y, first)
		}
	}
}

func TestPathologicalShardsClampedToClasses(t *testing.T) {
	spec, _ := Get("cancer") // 2 classes
	d := NewPartitioned(spec, 1, Pathological{Shards: 64})
	if got := len(d.Client(0).Classes()); got != 2 {
		t.Fatalf("support %d classes, want clamped to 2", got)
	}
}

func TestQuantitySkewSizes(t *testing.T) {
	spec, _ := Get("mnist") // PerClient = 500
	d := NewPartitioned(spec, 9, QuantitySkew{})
	const clients = 64
	st := d.Stats(clients)
	if st.MinN == st.MaxN {
		t.Fatal("quantity skew produced uniform shard sizes")
	}
	floor := int(float64(spec.PerClient) * quantityMinFactor)
	if st.MinN < floor {
		t.Fatalf("min shard %d below floor %d", st.MinN, floor)
	}
	if st.MaxN > int(quantityCap*float64(spec.PerClient)) {
		t.Fatalf("max shard %d above cap", st.MaxN)
	}
	// The truncated-Pareto normalization keeps the population mean near
	// PerClient (heavy-tailed, so the tolerance is loose).
	if st.MeanN < 0.4*float64(spec.PerClient) || st.MeanN > 2.5*float64(spec.PerClient) {
		t.Fatalf("mean shard %.0f far from PerClient %d", st.MeanN, spec.PerClient)
	}
	// Batches and Get respect the per-client size.
	c := d.Client(0)
	if xs, _ := c.Batch(0, 4); len(xs) != 4 {
		t.Fatal("batch under quantity skew")
	}
}

func TestLabelNoiseSkewRates(t *testing.T) {
	spec, _ := Get("mnist")
	spec.LabelFlip = 0 // isolate the per-client extra noise
	d := NewPartitioned(spec, 21, LabelNoiseSkew{})
	iid := NewPartitioned(spec, 21, IID{})
	rates := make([]float64, 0, 12)
	for id := 0; id < 12; id++ {
		c, ref := d.Client(id), iid.Client(id)
		flipped := 0
		const n = 300
		for i := 0; i < n; i++ {
			_, y := c.Get(i)
			_, ry := ref.Get(i)
			if y != ry {
				flipped++
			}
		}
		rate := float64(flipped) / n
		if rate > labelNoiseMaxRate+0.08 {
			t.Fatalf("client %d flip rate %.3f above bound %.2f", id, rate, labelNoiseMaxRate)
		}
		rates = append(rates, rate)
	}
	var min, max = rates[0], rates[0]
	for _, r := range rates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max-min < 0.05 {
		t.Fatalf("flip rates %.3f..%.3f not heterogeneous across clients", min, max)
	}
}

func TestLabelNoiseSkewKeepsIIDSamples(t *testing.T) {
	spec, _ := Get("mnist")
	d := NewPartitioned(spec, 21, LabelNoiseSkew{})
	iid := NewPartitioned(spec, 21, IID{})
	for i := 0; i < 10; i++ {
		x, _ := d.Client(3).Get(i)
		rx, _ := iid.Client(3).Get(i)
		if !x.Equal(rx, 0) {
			t.Fatal("label-noise skew must only perturb labels, not samples")
		}
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := tensor.NewRNG(123)
	for _, shape := range []float64{0.3, 1, 2.5} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.08*shape+0.02 {
			t.Fatalf("Gamma(%g) sample mean %.4f, want ≈ %g", shape, mean, shape)
		}
	}
}

func TestDirichletSampleIsDistribution(t *testing.T) {
	for _, alpha := range []float64{0.05, 0.5, 5} {
		p := dirichletSample(tensor.NewRNG(5), alpha, 10)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("alpha=%g negative proportion %v", alpha, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("alpha=%g proportions sum to %v", alpha, sum)
		}
	}
}

func TestWithPartitionerSharesPrototypesAndRepartition(t *testing.T) {
	spec, _ := Get("mnist")
	d := New(spec, 42)
	d2 := d.WithPartitioner(Pathological{Shards: 2})
	if d.Prototype(0) != d2.Prototype(0) {
		t.Fatal("WithPartitioner must share prototypes")
	}
	if d.Partitioner().Name() != ScenarioIID || d2.Partitioner().Name() != ScenarioPathological {
		t.Fatal("WithPartitioner must not mutate the original")
	}
	re := d.Client(3).Repartition(Pathological{Shards: 2})
	want := d2.Client(3)
	if fmt.Sprint(re.Classes()) != fmt.Sprint(want.Classes()) {
		t.Fatalf("Repartition classes %v, want %v", re.Classes(), want.Classes())
	}
}

func TestStatsReportLabelNoiseRates(t *testing.T) {
	spec, _ := Get("mnist")
	st := NewPartitioned(spec, 21, LabelNoiseSkew{}).Stats(12)
	if st.MaxFlip <= 0 || st.MaxFlip > labelNoiseMaxRate {
		t.Fatalf("max flip %v outside (0, %v]", st.MaxFlip, labelNoiseMaxRate)
	}
	if st.MeanFlip <= 0 || st.MeanFlip > st.MaxFlip {
		t.Fatalf("mean flip %v inconsistent with max %v", st.MeanFlip, st.MaxFlip)
	}
	if s := st.String(); !strings.Contains(s, "extra-flip") {
		t.Fatalf("labelnoise stats line missing flip summary: %q", s)
	}
	if s := New(spec, 21).Stats(12).String(); strings.Contains(s, "extra-flip") {
		t.Fatalf("iid stats line must not report flip rates: %q", s)
	}
}

func TestStatsIIDMatchesSpec(t *testing.T) {
	spec, _ := Get("mnist")
	st := New(spec, 42).Stats(10)
	if st.MinN != spec.PerClient || st.MaxN != spec.PerClient {
		t.Fatalf("iid stats sizes %d..%d, want %d", st.MinN, st.MaxN, spec.PerClient)
	}
	// 2 classes per client, plus the occasional base label flip.
	if st.MeanClasses < 2 || st.MeanClasses > 3 {
		t.Fatalf("iid mean classes %.2f, want ≈ 2", st.MeanClasses)
	}
	if st.Clients != 10 || st.TotalN != 10*spec.PerClient {
		t.Fatalf("stats totals %+v", st)
	}
}

func BenchmarkPartition(b *testing.B) {
	spec, _ := Get("mnist")
	for _, p := range []Partitioner{IID{}, Dirichlet{Alpha: 0.5}, Pathological{Shards: 2}, QuantitySkew{}, LabelNoiseSkew{}} {
		d := NewPartitioned(spec, 42, p)
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := d.Client(i % 1024)
				if _, y := c.Get(i % c.Len()); y < 0 {
					b.Fatal("bad label")
				}
			}
		})
	}
}
