package config_test

// Golden-config tests: the checked-in files under configs/ must determine
// exactly the runs the repo's acceptance tests pin. Each test loads the
// file, resolves it to a core.Config, and asserts (a) the resolved config
// is field-for-field the flag-assembled one from the original acceptance
// test, and (b) running both paths produces bit-identical models — final
// FNV-1a parameter digest and ε — so the digest stamped by the config path
// is provably pure metadata.

import (
	"math"
	"reflect"
	"testing"

	"fedcdp/internal/config"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/tensor"
)

// digestParams is the same FNV-1a fold over the final model the core
// acceptance tests use to fingerprint a run.
func digestParams(ts []*tensor.Tensor) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, t := range ts {
		for _, v := range t.Data() {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (b >> s) & 0xff
				h *= prime
			}
		}
	}
	return h
}

// fillRunDefaults resolves the zero hyperparameters core.Run itself
// defaults (withDefaults): the acceptance-test literals leave them zero,
// the config layer spells the same values out (config.Default), and both
// paths hand the run identical numbers.
func fillRunDefaults(c core.Config) core.Config {
	if c.Clip == 0 {
		c.Clip = 4
	}
	if c.DecayFrom == 0 {
		c.DecayFrom = 6
	}
	if c.DecayTo == 0 {
		c.DecayTo = 2
	}
	if c.ShareFraction == 0 {
		c.ShareFraction = 0.1
	}
	return c
}

// sameRunModuloDigest strips the stamped digest and compares the two
// resolved configs field-for-field: the config file and the flag set must
// describe the identical run.
func sameRunModuloDigest(t *testing.T, fromFile, fromFlags core.Config) {
	t.Helper()
	stripped := fillRunDefaults(fromFile)
	stripped.ConfigDigest = ""
	fromFlags = fillRunDefaults(fromFlags)
	if !reflect.DeepEqual(stripped, fromFlags) {
		t.Fatalf("config file resolves to a different run than the flags:\nfile:  %+v\nflags: %+v", stripped, fromFlags)
	}
	if fromFile.ConfigDigest == "" {
		t.Fatal("config-loaded run carries no digest")
	}
}

// TestGoldenFaultAcceptanceConfig pins configs/fault-acceptance.yaml to the
// PR 5 fault-matrix acceptance scenario (acceptanceConfig in core's
// simnet_test.go): same resolved config, same final-model bits, same ε.
func TestGoldenFaultAcceptanceConfig(t *testing.T) {
	e, err := config.Load("../../configs/fault-acceptance.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	flagCfg := core.Config{
		Dataset: "cancer",
		Method:  core.MethodFedCDP,
		K:       12, Kt: 6, Rounds: 4,
		LocalIters:  3,
		Sigma:       0.06,
		Seed:        42,
		ValExamples: 60,
		EvalEvery:   1,
		Runtime:     fl.RuntimeStreaming,
		Scenario:    dataset.Scenario{Name: "dirichlet", Alpha: 0.1},
		Faults:      "drop=0.2,crash=2,restart=1",
		MinQuorum:   1,
	}
	fileCfg := e.CoreConfig()
	sameRunModuloDigest(t, fileCfg, flagCfg)

	fromFile, err := core.Run(fileCfg)
	if err != nil {
		t.Fatal(err)
	}
	fromFlags, err := core.Run(flagCfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := digestParams(fromFile.Final.Params()), digestParams(fromFlags.Final.Params()); d1 != d2 {
		t.Fatalf("config path final-model digest %x differs from flag path %x", d1, d2)
	}
	if e1, e2 := fromFile.FinalEpsilon(), fromFlags.FinalEpsilon(); e1 != e2 {
		t.Fatalf("config path ε %v differs from flag path %v", e1, e2)
	}
}

// TestGoldenScale100kConfig pins configs/scale-100k.yaml to the PR 7
// K=100,000 hierarchical simnet deployment (TestSimnetScale100k). Skipped
// under -short like the original.
func TestGoldenScale100kConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("K=100k deployment skipped in -short")
	}
	e, err := config.Load("../../configs/scale-100k.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if !e.Runtime.Simnet {
		t.Fatal("scale config must deploy over the simnet fabric")
	}
	flagCfg := core.Config{
		Dataset: "cancer",
		Method:  core.MethodFedCDP,
		K:       100_000, Kt: 1000, Rounds: 2,
		LocalIters:  1,
		Sigma:       0.06,
		Seed:        42,
		ValExamples: 40,
		EvalEvery:   1,
		MinQuorum:   1,
		Shards:      32,
		Sampler:     fl.SamplerFloyd,
		Codec:       fl.CodecBinary,
	}
	fileCfg := e.CoreConfig()
	sameRunModuloDigest(t, fileCfg, flagCfg)

	fromFile, err := core.RunSimnet(fileCfg)
	if err != nil {
		t.Fatal(err)
	}
	fromFlags, err := core.RunSimnet(flagCfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := digestParams(fromFile.Final.Params()), digestParams(fromFlags.Final.Params()); d1 != d2 {
		t.Fatalf("config path final-model digest %x differs from flag path %x", d1, d2)
	}
	if e1, e2 := fromFile.FinalEpsilon(), fromFlags.FinalEpsilon(); e1 != e2 {
		t.Fatalf("config path ε %v differs from flag path %v", e1, e2)
	}
	var w1, w2 int64
	for _, r := range fromFile.Rounds {
		w1 += r.WireBytes
	}
	for _, r := range fromFlags.Rounds {
		w2 += r.WireBytes
	}
	// The config path carries the digest in every wire announcement — pure
	// metadata, so the models above are bit-identical, but the byte count
	// is strictly higher than the digest-less flag path's.
	if w1 <= w2 {
		t.Fatalf("config path moved %d wire bytes, flag path %d; want strictly more (digest overhead)", w1, w2)
	}
}
