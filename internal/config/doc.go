// Package config is the declarative experiment layer: one versioned,
// schema-validated file fully determines a run — seed, model engine and
// precision, dataset and heterogeneity scenario, privacy method and noise
// engine, runtime with deadline/quorum, fault and adversary plan,
// aggregation rule/topology/sampler, wire codec, and training horizon.
//
// The format is a strict YAML subset (see Parse): unindented section
// headers, indented "key: value" lines, full-line comments. An omitted key
// or section means today's command-line flag default, so the empty
// document is the default fedtrain run; unknown keys, duplicate keys and
// unsupported schema versions are rejected with line numbers rather than
// ignored.
//
// Every experiment has a canonical serialized form (Canonical) — all
// fields explicit, fixed key order, enum defaults spelled out — and its
// FNV-1a digest (Digest) is the experiment's identity. The digest is
// stamped into core.Config, travels in the wire RoundConfig to remote
// clients (which can refuse a mismatched server via
// fl.ClientOptions.ExpectDigest), rides in checkpoints, and is printed on
// experiment reports, so any artifact can be traced back to the exact
// config that produced it.
//
// The five cmd binaries accept -config <file>; flags given alongside it
// are overrides, re-stamped into the effective experiment field-by-field
// (ApplyFlagOverrides) before the digest is computed — the digest always
// names what actually ran. A sweep block expands one file into parallel
// multi-seed runs (Expand, RunSweep).
package config
