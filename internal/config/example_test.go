package config_test

import (
	"fmt"
	"log"

	"fedcdp/internal/config"
)

// A config document fully determines a run: parse it, validate it, resolve
// it to the core configuration, and stamp its digest everywhere the run's
// identity matters. Omitted keys mean today's flag defaults, so a document
// only says what it changes.
func Example() {
	doc := []byte(`version: 1
seed: 7

data:
  dataset: cancer
  scenario: dirichlet
  alpha: 0.1

method:
  name: fedcdp
  sigma: 0.05

training:
  k: 12
  kt: 6
  rounds: 4
`)
	exp, err := config.Parse(doc)
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.Validate(); err != nil {
		log.Fatal(err)
	}
	cfg := exp.CoreConfig()
	fmt.Printf("%s/%s seed=%d rounds=%d\n", cfg.Dataset, cfg.Method, cfg.Seed, cfg.Rounds)
	fmt.Printf("digest is %d hex digits, stamped: %v\n", len(exp.Digest()), cfg.ConfigDigest == exp.Digest())
	// The digest identifies the experiment, not the document: the same
	// settings in any key order, quoting or comment style digest alike.
	reordered := []byte("method:\n  sigma: 0.05\nseed: 7\ndata:\n  alpha: 0.1\n  scenario: dirichlet\n  dataset: cancer\ntraining:\n  rounds: 4\n  kt: 6\n  k: 12\n")
	exp2, err := config.Parse(reordered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reordered document digests alike:", exp2.Digest() == exp.Digest())
	// Output:
	// cancer/fedcdp seed=7 rounds=4
	// digest is 16 hex digits, stamped: true
	// reordered document digests alike: true
}
