package config

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/simnet"
	"fedcdp/internal/tensor"
)

// Version is the config schema version this package reads and writes.
// Parsing rejects any other declared version, so an old binary fails loudly
// on a future config instead of silently dropping fields.
const Version = 1

// Experiment is one fully-determined experiment: every axis the five
// binaries expose as flags, as a declarative document. The zero value of a
// field (or an omitted section) means today's flag default, so an empty
// config file IS the default `fedtrain` invocation; Default() spells those
// defaults out explicitly.
//
// The canonical serialized form (Canonical) resolves defaults, fixes key
// order and normalizes values, so Digest is a stable identity for the
// experiment: two documents that determine the same run digest identically
// regardless of formatting, comments or key order.
type Experiment struct {
	// Version is the schema version; only Version (=1) is accepted.
	Version int
	// Seed is the root seed every stochastic component derives from.
	Seed int64

	Model       ModelBlock
	Data        DataBlock
	Method      MethodBlock
	Runtime     RuntimeBlock
	Faults      FaultsBlock
	Aggregation AggregationBlock
	Codec       CodecBlock
	Training    TrainingBlock
	Experiment  ExperimentBlock
	Sweep       SweepBlock
}

// ModelBlock selects the execution engine and arithmetic width.
type ModelBlock struct {
	Engine    string // "" (batched) or "reference"
	Precision string // "" (fp64) or "fp32"
}

// DataBlock names the benchmark and its heterogeneity scenario.
type DataBlock struct {
	Dataset  string  // benchmark name (Table I)
	Scenario string  // partitioner scenario ("" = iid)
	Alpha    float64 // dirichlet concentration (0 = scenario default)
	Shards   int     // pathological label shards per client (0 = default)
	Period   int     // rounds per stage for time-varying scenarios (0 = default)
}

// MethodBlock is the privacy method and its parameters.
type MethodBlock struct {
	Name            string
	Clip            float64
	Sigma           float64
	AccountantSigma float64 // 0 = account with the training σ
	Delta           float64 // 0 = core default (1e-5)
	DecayFrom       float64
	DecayTo         float64
	ShareFraction   float64
	Compress        float64 // gradient prune ratio (0 = off)
	NoiseEngine     string  // "" (counter) or "reference"
}

// RuntimeBlock selects round orchestration and its failure posture.
type RuntimeBlock struct {
	Name     string        // "" (streaming) or "barrier"
	Simnet   bool          // deploy over the in-memory simnet fabric
	Deadline time.Duration // per-round straggler cutoff (0 = wait)
	Quorum   int           // minimum folded updates to commit
	Dropout  float64       // per-round client dropout probability
}

// FaultsBlock is the deterministic fault/adversary plan and the open-world
// population plan. Both use the simnet grammar; core concatenates them into
// one bound plan.
type FaultsBlock struct {
	Plan       string // simnet grammar, e.g. "drop=0.2,crash=2,restart=1"
	Population string // population clauses, e.g. "join=4@3,leave=2@6,churn=0.1"
}

// AggregationBlock is the server fold rule and topology.
type AggregationBlock struct {
	Rule       string // "" (fedsgd), fedavg, weighted, median, trimmed[:β], krum[:f]
	Shards     int    // 0 = flat float, 1 = flat exact, ≥2 = edge tree
	TreeFanout int
	Sampler    string // "" (legacy) or "floyd"
	MuxWorkers int
}

// CodecBlock is the wire encoding.
type CodecBlock struct {
	Wire  string // "" (gob) or "binary"
	Quant int    // 0, 8 or 16 (binary codec only)
}

// TrainingBlock is the federation shape and horizon.
type TrainingBlock struct {
	K             int
	Kt            int
	Rounds        int
	PlannedRounds int
	BatchSize     int
	LocalIters    int
	LR            float64
	ValExamples   int
	EvalEvery     int
	Parallelism   int
}

// ExperimentBlock, when Name is set, runs a cmd/tables experiment driver
// (table1..table7, fig1..fig5, faults, byzantine) instead of a single
// training run.
type ExperimentBlock struct {
	Name  string
	Scale float64
}

// SweepBlock expands one config into a multi-run sweep, executed in
// parallel across cores (see Expand and RunSweep).
type SweepBlock struct {
	Seeds []int64
}

// Default returns the experiment an empty document means: the fedtrain
// flag defaults.
func Default() *Experiment {
	return &Experiment{
		Version: Version,
		Seed:    42,
		Data:    DataBlock{Dataset: "mnist"},
		Method: MethodBlock{
			Name:          core.MethodFedCDP,
			Clip:          4,
			Sigma:         0.06,
			DecayFrom:     6,
			DecayTo:       2,
			ShareFraction: 0.1,
		},
		Training: TrainingBlock{
			K:           16,
			Kt:          8,
			Rounds:      20,
			LocalIters:  20,
			ValExamples: 300,
			EvalEvery:   1,
		},
		Experiment: ExperimentBlock{Scale: 1},
	}
}

// Load reads and parses a config file.
func Load(path string) (*Experiment, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	e, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	return e, nil
}

// Validate checks every enum and range against the packages that consume
// the value, so a config error surfaces before any training starts.
func (e *Experiment) Validate() error {
	if e.Version != Version {
		return fmt.Errorf("config: unsupported version %d (this build reads version %d)", e.Version, Version)
	}
	if e.Data.Dataset == "" {
		return fmt.Errorf("config: data.dataset must be set")
	}
	if _, err := dataset.Get(e.Data.Dataset); err != nil {
		return fmt.Errorf("config: data.dataset: %w", err)
	}
	if e.Method.Name != "" && !knownMethod(e.Method.Name) {
		return fmt.Errorf("config: unknown method.name %q (have %v)", e.Method.Name, core.Methods())
	}
	if err := oneOf("model.engine", e.Model.Engine, fl.EngineBatched, fl.EngineReference); err != nil {
		return err
	}
	if err := oneOf("model.precision", e.Model.Precision, tensor.PrecisionFP64, tensor.PrecisionFP32); err != nil {
		return err
	}
	if err := oneOf("method.noise-engine", e.Method.NoiseEngine, fl.NoiseCounter, fl.NoiseReference); err != nil {
		return err
	}
	if err := oneOf("runtime.name", e.Runtime.Name, fl.RuntimeStreaming, fl.RuntimeBarrier); err != nil {
		return err
	}
	if err := oneOf("aggregation.sampler", e.Aggregation.Sampler, fl.SamplerLegacy, fl.SamplerFloyd); err != nil {
		return err
	}
	if !fl.ValidCodec(e.Codec.Wire) {
		return fmt.Errorf("config: unknown codec.wire %q", e.Codec.Wire)
	}
	if !fl.ValidQuant(e.Codec.Quant) {
		return fmt.Errorf("config: codec.quant %d not in {0, 8, 16}", e.Codec.Quant)
	}
	if !fl.ValidAggregation(e.Aggregation.Rule) {
		return fmt.Errorf("config: unknown aggregation.rule %q", e.Aggregation.Rule)
	}
	sc := dataset.Scenario{Name: e.Data.Scenario, Alpha: e.Data.Alpha, Shards: e.Data.Shards, Period: e.Data.Period}
	if _, err := sc.Partitioner(); err != nil {
		return fmt.Errorf("config: data.scenario: %w", err)
	}
	if _, err := simnet.ParsePlan(e.Faults.Plan); err != nil {
		return fmt.Errorf("config: faults.plan: %w", err)
	}
	if _, err := simnet.ParsePlan(e.Faults.Population); err != nil {
		return fmt.Errorf("config: faults.population: %w", err)
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"training.k", e.Training.K},
		{"training.kt", e.Training.Kt},
		{"training.rounds", e.Training.Rounds},
		{"training.planned-rounds", e.Training.PlannedRounds},
		{"training.batch", e.Training.BatchSize},
		{"training.iters", e.Training.LocalIters},
		{"training.val-examples", e.Training.ValExamples},
		{"training.eval-every", e.Training.EvalEvery},
		{"training.parallelism", e.Training.Parallelism},
		{"runtime.quorum", e.Runtime.Quorum},
		{"aggregation.shards", e.Aggregation.Shards},
		{"aggregation.tree-fanout", e.Aggregation.TreeFanout},
		{"aggregation.mux-workers", e.Aggregation.MuxWorkers},
		{"data.shards", e.Data.Shards},
		{"data.period", e.Data.Period},
	} {
		if c.v < 0 {
			return fmt.Errorf("config: %s must be non-negative, got %d", c.name, c.v)
		}
	}
	if e.Training.K > 0 && e.Training.Kt > e.Training.K {
		return fmt.Errorf("config: training.kt %d exceeds training.k %d", e.Training.Kt, e.Training.K)
	}
	if e.Training.Kt > 0 && e.Runtime.Quorum > e.Training.Kt {
		return fmt.Errorf("config: runtime.quorum %d exceeds training.kt %d", e.Runtime.Quorum, e.Training.Kt)
	}
	if e.Runtime.Dropout < 0 || e.Runtime.Dropout > 1 {
		return fmt.Errorf("config: runtime.dropout %v outside [0, 1]", e.Runtime.Dropout)
	}
	if e.Method.Compress < 0 || e.Method.Compress >= 1 {
		return fmt.Errorf("config: method.compress %v outside [0, 1)", e.Method.Compress)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"method.clip", e.Method.Clip},
		{"method.sigma", e.Method.Sigma},
		{"method.accountant-sigma", e.Method.AccountantSigma},
		{"method.delta", e.Method.Delta},
		{"data.alpha", e.Data.Alpha},
		{"training.lr", e.Training.LR},
	} {
		if c.v < 0 {
			return fmt.Errorf("config: %s must be non-negative, got %v", c.name, c.v)
		}
	}
	if e.Experiment.Scale < 0 {
		return fmt.Errorf("config: experiment.scale must be non-negative, got %v", e.Experiment.Scale)
	}
	if e.Runtime.Simnet && e.Experiment.Name != "" {
		return fmt.Errorf("config: experiment.name %q cannot run under runtime.simnet (experiment drivers orchestrate their own runs)", e.Experiment.Name)
	}
	return nil
}

func knownMethod(name string) bool {
	for _, m := range core.Methods() {
		if m == name {
			return true
		}
	}
	return false
}

func oneOf(name, v string, allowed ...string) error {
	if v == "" {
		return nil
	}
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("config: unknown %s %q (have %v)", name, v, allowed)
}

// CoreConfig resolves the experiment into a core.Config, stamped with the
// config's digest so every report, checkpoint and wire round announcement
// derived from the run carries the experiment identity.
func (e *Experiment) CoreConfig() core.Config {
	return core.Config{
		Dataset:         e.Data.Dataset,
		Method:          e.Method.Name,
		K:               e.Training.K,
		Kt:              e.Training.Kt,
		Rounds:          e.Training.Rounds,
		PlannedRounds:   e.Training.PlannedRounds,
		BatchSize:       e.Training.BatchSize,
		LocalIters:      e.Training.LocalIters,
		LR:              e.Training.LR,
		Clip:            e.Method.Clip,
		Sigma:           e.Method.Sigma,
		AccountantSigma: e.Method.AccountantSigma,
		Delta:           e.Method.Delta,
		DecayFrom:       e.Method.DecayFrom,
		DecayTo:         e.Method.DecayTo,
		ShareFraction:   e.Method.ShareFraction,
		CompressRatio:   e.Method.Compress,
		Seed:            e.Seed,
		ValExamples:     e.Training.ValExamples,
		EvalEvery:       e.Training.EvalEvery,
		Parallelism:     e.Training.Parallelism,
		Engine:          e.Model.Engine,
		NoiseEngine:     e.Method.NoiseEngine,
		Runtime:         e.Runtime.Name,
		Codec:           e.Codec.Wire,
		Precision:       e.Model.Precision,
		DropoutRate:     e.Runtime.Dropout,
		RoundDeadline:   e.Runtime.Deadline,
		MinQuorum:       e.Runtime.Quorum,
		Scenario:        dataset.Scenario{Name: e.Data.Scenario, Alpha: e.Data.Alpha, Shards: e.Data.Shards, Period: e.Data.Period},
		Aggregation:     e.Aggregation.Rule,
		Shards:          e.Aggregation.Shards,
		TreeFanout:      e.Aggregation.TreeFanout,
		Sampler:         e.Aggregation.Sampler,
		MuxWorkers:      e.Aggregation.MuxWorkers,
		Faults:          e.Faults.Plan,
		Population:      e.Faults.Population,
		ConfigDigest:    e.Digest(),
	}
}

// FromCore rebuilds the declarative form of an effective core.Config —
// the inverse of CoreConfig, used to re-stamp flag overrides into the
// effective experiment. The derived ConfigDigest field is ignored: the
// digest is always recomputed from the canonical form.
func FromCore(cfg core.Config, simnetRun bool) *Experiment {
	return &Experiment{
		Version: Version,
		Seed:    cfg.Seed,
		Model:   ModelBlock{Engine: cfg.Engine, Precision: cfg.Precision},
		Data: DataBlock{
			Dataset:  cfg.Dataset,
			Scenario: cfg.Scenario.Name,
			Alpha:    cfg.Scenario.Alpha,
			Shards:   cfg.Scenario.Shards,
			Period:   cfg.Scenario.Period,
		},
		Method: MethodBlock{
			Name:            cfg.Method,
			Clip:            cfg.Clip,
			Sigma:           cfg.Sigma,
			AccountantSigma: cfg.AccountantSigma,
			Delta:           cfg.Delta,
			DecayFrom:       cfg.DecayFrom,
			DecayTo:         cfg.DecayTo,
			ShareFraction:   cfg.ShareFraction,
			Compress:        cfg.CompressRatio,
			NoiseEngine:     cfg.NoiseEngine,
		},
		Runtime: RuntimeBlock{
			Name:     cfg.Runtime,
			Simnet:   simnetRun,
			Deadline: cfg.RoundDeadline,
			Quorum:   cfg.MinQuorum,
			Dropout:  cfg.DropoutRate,
		},
		Faults: FaultsBlock{Plan: cfg.Faults, Population: cfg.Population},
		Aggregation: AggregationBlock{
			Rule:       cfg.Aggregation,
			Shards:     cfg.Shards,
			TreeFanout: cfg.TreeFanout,
			Sampler:    cfg.Sampler,
			MuxWorkers: cfg.MuxWorkers,
		},
		Codec: CodecBlock{Wire: cfg.Codec},
		Training: TrainingBlock{
			K:             cfg.K,
			Kt:            cfg.Kt,
			Rounds:        cfg.Rounds,
			PlannedRounds: cfg.PlannedRounds,
			BatchSize:     cfg.BatchSize,
			LocalIters:    cfg.LocalIters,
			LR:            cfg.LR,
			ValExamples:   cfg.ValExamples,
			EvalEvery:     cfg.EvalEvery,
			Parallelism:   cfg.Parallelism,
		},
		Experiment: ExperimentBlock{Scale: 1},
	}
}

// Expand resolves the sweep block into the list of single runs it
// describes: one experiment per sweep seed, each with the sweep cleared
// and its own digest. A config without a sweep expands to itself.
func (e *Experiment) Expand() []*Experiment {
	if len(e.Sweep.Seeds) == 0 {
		return []*Experiment{e}
	}
	out := make([]*Experiment, len(e.Sweep.Seeds))
	for i, s := range e.Sweep.Seeds {
		c := *e
		c.Seed = s
		c.Sweep = SweepBlock{}
		out[i] = &c
	}
	return out
}

// RunSweep executes run(i, exps[i]) for every expanded experiment, at most
// workers at a time (0 = GOMAXPROCS). Runs are independent seeded
// experiments, so parallel execution cannot change any result — it only
// changes wall-clock. All errors are collected and joined.
func RunSweep(exps []*Experiment, workers int, run func(i int, e *Experiment) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		i, e := i, e
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = run(i, e)
		}()
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err != nil {
			if first == nil {
				first = err
			} else {
				first = fmt.Errorf("%w; %w", first, err)
			}
		}
	}
	return first
}
