package config

import (
	"fmt"
	"strings"
)

// Parse reads a strict YAML-subset experiment document:
//
//	# comments (full-line or trailing, '#' after whitespace) and blank
//	# lines are ignored
//	version: 1
//	seed: 42
//
//	method:            # a section header opens a block...
//	  name: fedcdp     # ...of indented "key: value" lines
//	  sigma: 0.06
//
// Scalars are plain tokens; Go-quoted strings ("...") carry values the
// plain grammar cannot (empty strings, leading '#'); sweep seed lists are
// written inline as [1, 2, 3]. Everything else is rejected with a line
// number: unknown sections and keys, duplicate keys, values on section
// headers, indented keys outside a section, tabs in indentation, and
// documents declaring any schema version this build does not read.
//
// Omitted keys and sections mean today's flag defaults (Default), so the
// empty document is the default fedtrain run.
func Parse(b []byte) (*Experiment, error) {
	e := Default()
	seen := map[string]bool{}
	section := ""
	for i, raw := range strings.Split(string(b), "\n") {
		line := stripComment(strings.TrimSuffix(raw, "\r"))
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		lineNo := i + 1
		indented := line[0] == ' ' || line[0] == '\t'
		if strings.HasPrefix(line, "\t") {
			return nil, fmt.Errorf("line %d: tab indentation (use spaces)", lineNo)
		}
		key, value, ok := strings.Cut(trimmed, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: not a %q line: %q", lineNo, "key: value", trimmed)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if key == "" {
			return nil, fmt.Errorf("line %d: empty key", lineNo)
		}

		if !indented {
			if value == "" {
				// Section header.
				if key != "" && !index.sections[key] {
					return nil, fmt.Errorf("line %d: unknown section %q (have %s)", lineNo, key, strings.Join(sectionNames(), ", "))
				}
				if seen["§"+key] {
					return nil, fmt.Errorf("line %d: duplicate section %q", lineNo, key)
				}
				seen["§"+key] = true
				section = key
				continue
			}
			if index.sections[key] {
				return nil, fmt.Errorf("line %d: section %q takes no value", lineNo, key)
			}
			// Top-level scalar (version, seed).
			section = ""
			if err := setKey(e, seen, "", key, value, lineNo); err != nil {
				return nil, err
			}
			continue
		}

		if section == "" {
			return nil, fmt.Errorf("line %d: indented key %q outside a section", lineNo, key)
		}
		if value == "" {
			return nil, fmt.Errorf("line %d: %s.%s: missing value (use %q for an explicit empty string)", lineNo, section, key, `""`)
		}
		if err := setKey(e, seen, section, key, value, lineNo); err != nil {
			return nil, err
		}
	}
	if e.Version != Version {
		return nil, fmt.Errorf("unsupported config version %d (this build reads version %d)", e.Version, Version)
	}
	return e, nil
}

func setKey(e *Experiment, seen map[string]bool, section, key, value string, lineNo int) error {
	f, ok := index.bySec[section][key]
	if !ok {
		where := "top level"
		if section != "" {
			where = "section " + section
		}
		return fmt.Errorf("line %d: unknown key %q in %s (have %s)", lineNo, key, where, strings.Join(index.secKeys[section], ", "))
	}
	id := section + "." + key
	if seen[id] {
		return fmt.Errorf("line %d: duplicate key %s", lineNo, strings.TrimPrefix(id, "."))
	}
	seen[id] = true
	if err := f.set(e, value); err != nil {
		return fmt.Errorf("line %d: %s: %w", lineNo, strings.TrimPrefix(section+".", "."), err)
	}
	return nil
}

// stripComment removes a trailing comment: a '#' outside a quoted string,
// at line start or preceded by whitespace (so "trimmed:0.34#x" stays
// intact while "rule: trimmed:0.34  # two per tail" loses the note).
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
				return line[:i]
			}
		}
	}
	return line
}

func sectionNames() []string {
	var out []string
	for _, s := range sectionOrder {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}
