package config

import (
	"bytes"
	"testing"
)

// FuzzConfigParse drives arbitrary documents through the parser and holds
// the canonicalization contract on everything that parses: the canonical
// form must itself parse, re-canonicalize to the same bytes, and keep the
// same digest. Parse must never panic, whatever the bytes.
func FuzzConfigParse(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("version: 1\nseed: 42\n"))
	f.Add([]byte("method:\n  name: fedcdp\n  sigma: 0.06\n"))
	f.Add([]byte("data:\n  dataset: cancer\n  scenario: dirichlet\n  alpha: 0.1\n"))
	f.Add([]byte("runtime:\n  simnet: true\n  deadline: 150ms\n"))
	f.Add([]byte("sweep:\n  seeds: [1, 2, 3]\n"))
	f.Add([]byte("data:\n  dataset: \"cancer\"\n"))
	f.Add([]byte("faults:\n  plan: drop=0.2,crash=2,restart=1\n"))
	f.Add([]byte("bogus:\n  key: value\n"))
	f.Add([]byte("method:\n\tsigma: 1\n"))
	f.Add([]byte(": x\n seed : 1\nseed:2\n"))
	f.Add(Default().Canonical())

	f.Fuzz(func(t *testing.T, doc []byte) {
		e, err := Parse(doc)
		if err != nil {
			return // rejection is a valid outcome; panics are not
		}
		canon := e.Canonical()
		e2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form of an accepted document does not re-parse: %v\ninput: %q\ncanonical:\n%s", err, doc, canon)
		}
		if !bytes.Equal(e2.Canonical(), canon) {
			t.Fatalf("canonicalization not idempotent for input %q", doc)
		}
		if e2.Digest() != e.Digest() {
			t.Fatalf("digest unstable across canonical round trip for input %q", doc)
		}
	})
}
