package config

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// field is one schema entry: where the value lives in the document
// (section, key), which command-line flag overrides it ("" = config-only),
// and how to set/render it as a string. One ordered table drives Parse,
// Canonical and the flag-override path, so the three can never disagree
// about what a key means.
type field struct {
	section string // "" for top-level keys
	key     string
	flag    string // cmd flag name that overrides this field, if any
	set     func(e *Experiment, v string) error
	get     func(e *Experiment) string
}

// sectionOrder fixes the canonical section layout. The empty name is the
// top-level block (version, seed).
var sectionOrder = []string{"", "model", "data", "method", "runtime", "faults", "aggregation", "codec", "training", "experiment", "sweep"}

// schema returns the full field table in canonical order.
func schema() []field {
	return []field{
		fInt("", "version", "", func(e *Experiment) *int { return &e.Version }),
		fI64("", "seed", "seed", func(e *Experiment) *int64 { return &e.Seed }),

		fStr("model", "engine", "engine", func(e *Experiment) *string { return &e.Model.Engine }),
		fStr("model", "precision", "precision", func(e *Experiment) *string { return &e.Model.Precision }),

		fStr("data", "dataset", "dataset", func(e *Experiment) *string { return &e.Data.Dataset }),
		fStr("data", "scenario", "scenario", func(e *Experiment) *string { return &e.Data.Scenario }),
		fF64("data", "alpha", "alpha", func(e *Experiment) *float64 { return &e.Data.Alpha }),
		fInt("data", "shards", "shards", func(e *Experiment) *int { return &e.Data.Shards }),
		fInt("data", "period", "period", func(e *Experiment) *int { return &e.Data.Period }),

		fStr("method", "name", "method", func(e *Experiment) *string { return &e.Method.Name }),
		fF64("method", "clip", "clip", func(e *Experiment) *float64 { return &e.Method.Clip }),
		fF64("method", "sigma", "sigma", func(e *Experiment) *float64 { return &e.Method.Sigma }),
		fF64("method", "accountant-sigma", "", func(e *Experiment) *float64 { return &e.Method.AccountantSigma }),
		fF64("method", "delta", "", func(e *Experiment) *float64 { return &e.Method.Delta }),
		fF64("method", "decay-from", "decay-from", func(e *Experiment) *float64 { return &e.Method.DecayFrom }),
		fF64("method", "decay-to", "decay-to", func(e *Experiment) *float64 { return &e.Method.DecayTo }),
		fF64("method", "share", "share", func(e *Experiment) *float64 { return &e.Method.ShareFraction }),
		fF64("method", "compress", "compress", func(e *Experiment) *float64 { return &e.Method.Compress }),
		fStr("method", "noise-engine", "noise-engine", func(e *Experiment) *string { return &e.Method.NoiseEngine }),

		fStr("runtime", "name", "runtime", func(e *Experiment) *string { return &e.Runtime.Name }),
		fBool("runtime", "simnet", "simnet", func(e *Experiment) *bool { return &e.Runtime.Simnet }),
		fDur("runtime", "deadline", "deadline", func(e *Experiment) *time.Duration { return &e.Runtime.Deadline }),
		fInt("runtime", "quorum", "quorum", func(e *Experiment) *int { return &e.Runtime.Quorum }),
		fF64("runtime", "dropout", "dropout", func(e *Experiment) *float64 { return &e.Runtime.Dropout }),

		fStr("faults", "plan", "faults", func(e *Experiment) *string { return &e.Faults.Plan }),
		fStr("faults", "population", "population", func(e *Experiment) *string { return &e.Faults.Population }),

		fStr("aggregation", "rule", "agg", func(e *Experiment) *string { return &e.Aggregation.Rule }),
		fInt("aggregation", "shards", "agg-shards", func(e *Experiment) *int { return &e.Aggregation.Shards }),
		fInt("aggregation", "tree-fanout", "tree", func(e *Experiment) *int { return &e.Aggregation.TreeFanout }),
		fStr("aggregation", "sampler", "sampler", func(e *Experiment) *string { return &e.Aggregation.Sampler }),
		fInt("aggregation", "mux-workers", "mux-workers", func(e *Experiment) *int { return &e.Aggregation.MuxWorkers }),

		fStr("codec", "wire", "codec", func(e *Experiment) *string { return &e.Codec.Wire }),
		fInt("codec", "quant", "quant", func(e *Experiment) *int { return &e.Codec.Quant }),

		fInt("training", "k", "k", func(e *Experiment) *int { return &e.Training.K }),
		fInt("training", "kt", "kt", func(e *Experiment) *int { return &e.Training.Kt }),
		fInt("training", "rounds", "rounds", func(e *Experiment) *int { return &e.Training.Rounds }),
		fInt("training", "planned-rounds", "", func(e *Experiment) *int { return &e.Training.PlannedRounds }),
		fInt("training", "batch", "batch", func(e *Experiment) *int { return &e.Training.BatchSize }),
		fInt("training", "iters", "iters", func(e *Experiment) *int { return &e.Training.LocalIters }),
		fF64("training", "lr", "lr", func(e *Experiment) *float64 { return &e.Training.LR }),
		fInt("training", "val-examples", "val", func(e *Experiment) *int { return &e.Training.ValExamples }),
		fInt("training", "eval-every", "eval-every", func(e *Experiment) *int { return &e.Training.EvalEvery }),
		fInt("training", "parallelism", "", func(e *Experiment) *int { return &e.Training.Parallelism }),

		fStr("experiment", "name", "exp", func(e *Experiment) *string { return &e.Experiment.Name }),
		fF64("experiment", "scale", "scale", func(e *Experiment) *float64 { return &e.Experiment.Scale }),

		fSeeds("sweep", "seeds", "", func(e *Experiment) *[]int64 { return &e.Sweep.Seeds }),
	}
}

func fInt(sec, key, fl string, p func(*Experiment) *int) field {
	return field{sec, key, fl,
		func(e *Experiment, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("%s: not an integer: %q", key, v)
			}
			*p(e) = n
			return nil
		},
		func(e *Experiment) string { return strconv.Itoa(*p(e)) },
	}
}

func fI64(sec, key, fl string, p func(*Experiment) *int64) field {
	return field{sec, key, fl,
		func(e *Experiment, v string) error {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("%s: not an integer: %q", key, v)
			}
			*p(e) = n
			return nil
		},
		func(e *Experiment) string { return strconv.FormatInt(*p(e), 10) },
	}
}

func fF64(sec, key, fl string, p func(*Experiment) *float64) field {
	return field{sec, key, fl,
		func(e *Experiment, v string) error {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("%s: not a number: %q", key, v)
			}
			*p(e) = f
			return nil
		},
		// 'g'/-1 is the shortest representation that reparses to the exact
		// same float64, so get∘set is the identity and digests are stable.
		func(e *Experiment) string { return strconv.FormatFloat(*p(e), 'g', -1, 64) },
	}
}

func fStr(sec, key, fl string, p func(*Experiment) *string) field {
	return field{sec, key, fl,
		func(e *Experiment, v string) error {
			s, err := unquote(v)
			if err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
			*p(e) = s
			return nil
		},
		func(e *Experiment) string { return quoteIfNeeded(*p(e)) },
	}
}

func fBool(sec, key, fl string, p func(*Experiment) *bool) field {
	return field{sec, key, fl,
		func(e *Experiment, v string) error {
			switch v {
			case "true":
				*p(e) = true
			case "false":
				*p(e) = false
			default:
				return fmt.Errorf("%s: not a boolean (true/false): %q", key, v)
			}
			return nil
		},
		func(e *Experiment) string { return strconv.FormatBool(*p(e)) },
	}
}

func fDur(sec, key, fl string, p func(*Experiment) *time.Duration) field {
	return field{sec, key, fl,
		func(e *Experiment, v string) error {
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("%s: not a duration: %q", key, v)
			}
			*p(e) = d
			return nil
		},
		func(e *Experiment) string { return (*p(e)).String() },
	}
}

func fSeeds(sec, key, fl string, p func(*Experiment) *[]int64) field {
	return field{sec, key, fl,
		func(e *Experiment, v string) error {
			if !strings.HasPrefix(v, "[") || !strings.HasSuffix(v, "]") {
				return fmt.Errorf("%s: not a list (want [1, 2, ...]): %q", key, v)
			}
			inner := strings.TrimSpace(v[1 : len(v)-1])
			if inner == "" {
				*p(e) = nil
				return nil
			}
			parts := strings.Split(inner, ",")
			out := make([]int64, len(parts))
			for i, part := range parts {
				n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
				if err != nil {
					return fmt.Errorf("%s: element %d not an integer: %q", key, i, strings.TrimSpace(part))
				}
				out[i] = n
			}
			*p(e) = out
			return nil
		},
		func(e *Experiment) string {
			elems := make([]string, len(*p(e)))
			for i, n := range *p(e) {
				elems[i] = strconv.FormatInt(n, 10)
			}
			return "[" + strings.Join(elems, ", ") + "]"
		},
	}
}

// unquote resolves an optionally Go-quoted scalar. Quoting is only needed
// for values the plain grammar cannot carry (empty strings, leading '#',
// surrounding whitespace).
func unquote(v string) (string, error) {
	if !strings.HasPrefix(v, `"`) {
		return v, nil
	}
	s, err := strconv.Unquote(v)
	if err != nil {
		return "", fmt.Errorf("bad quoted string %s", v)
	}
	return s, nil
}

func quoteIfNeeded(v string) string {
	if v == "" || strings.TrimSpace(v) != v ||
		strings.HasPrefix(v, `"`) || strings.HasPrefix(v, "#") || strings.HasPrefix(v, "[") ||
		strings.Contains(v, " #") || strings.ContainsAny(v, "\n\r\t") {
		return strconv.Quote(v)
	}
	return v
}

// schemaIndex holds the lookup structures the parser and override path
// share, built once from the table.
type schemaIndex struct {
	fields   []field
	bySec    map[string]map[string]field
	secKeys  map[string][]string
	byFlag   map[string]field
	sections map[string]bool
}

func buildIndex() *schemaIndex {
	idx := &schemaIndex{
		fields:   schema(),
		bySec:    map[string]map[string]field{},
		secKeys:  map[string][]string{},
		byFlag:   map[string]field{},
		sections: map[string]bool{},
	}
	for _, f := range idx.fields {
		if idx.bySec[f.section] == nil {
			idx.bySec[f.section] = map[string]field{}
		}
		idx.bySec[f.section][f.key] = f
		idx.secKeys[f.section] = append(idx.secKeys[f.section], f.key)
		idx.sections[f.section] = true
		if f.flag != "" {
			idx.byFlag[f.flag] = f
		}
	}
	return idx
}

var index = buildIndex()

// Override copies the field the named command-line flag maps to from src
// onto dst, reporting whether the flag is config-mapped at all. Flags with
// no config meaning (-addr, -format, -checkpoint-in, ...) return false and
// are left to the binary.
func Override(dst *Experiment, flagName string, src *Experiment) bool {
	f, ok := index.byFlag[flagName]
	if !ok {
		return false
	}
	// get/set round-trip exactly by construction, so this cannot fail.
	if err := f.set(dst, f.get(src)); err != nil {
		panic(fmt.Sprintf("config: override %s: %v", flagName, err))
	}
	return true
}

// ApplyFlagOverrides re-stamps every explicitly-set command-line flag onto
// the config-loaded experiment: src is the experiment the flag values
// describe, and each flag the user actually passed (per fs.Visit) wins
// over the file. Returns the config-mapped flag names that were applied.
func ApplyFlagOverrides(fs *flag.FlagSet, dst, src *Experiment) []string {
	var applied []string
	fs.Visit(func(fl *flag.Flag) {
		if Override(dst, fl.Name, src) {
			applied = append(applied, fl.Name)
		}
	})
	return applied
}
