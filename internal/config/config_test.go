package config

import (
	"bytes"
	"flag"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fedcdp/internal/core"
	"fedcdp/internal/fl"
)

// The empty document is the default fedtrain invocation: Parse of nothing
// must equal Default() field-for-field, and both must validate.
func TestEmptyDocumentIsDefault(t *testing.T) {
	for _, doc := range []string{"", "\n", "# just a comment\n\n", "version: 1\n"} {
		e, err := Parse([]byte(doc))
		if err != nil {
			t.Fatalf("Parse(%q): %v", doc, err)
		}
		if !reflect.DeepEqual(e, Default()) {
			t.Fatalf("Parse(%q) = %+v, want Default() = %+v", doc, e, Default())
		}
	}
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default().Validate(): %v", err)
	}
}

func TestParseFullDocument(t *testing.T) {
	doc := `
# A document exercising every section and every scalar type.
version: 1
seed: 7

model:
  engine: reference
  precision: fp32

data:
  dataset: cancer
  scenario: dirichlet
  alpha: 0.1

method:
  name: fedsdp-server
  clip: 2.5
  sigma: 0.05
  noise-engine: reference

runtime:
  name: barrier
  simnet: false
  deadline: 150ms
  quorum: 2
  dropout: 0.25

faults:
  plan: drop=0.2,crash=1

aggregation:
  rule: trimmed:0.34
  shards: 4
  sampler: floyd

codec:
  wire: binary
  quant: 8

training:
  k: 12
  kt: 6
  rounds: 3
  iters: 2
  lr: 0.15
  val-examples: 60
  eval-every: 1

sweep:
  seeds: [1, 2, 3]
`
	e, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := Default()
	want.Seed = 7
	want.Model = ModelBlock{Engine: fl.EngineReference, Precision: "fp32"}
	want.Data = DataBlock{Dataset: "cancer", Scenario: "dirichlet", Alpha: 0.1}
	want.Method.Name = core.MethodFedSDPSrv
	want.Method.Clip = 2.5
	want.Method.Sigma = 0.05
	want.Method.NoiseEngine = fl.NoiseReference
	want.Runtime = RuntimeBlock{Name: fl.RuntimeBarrier, Deadline: 150 * time.Millisecond, Quorum: 2, Dropout: 0.25}
	want.Faults = FaultsBlock{Plan: "drop=0.2,crash=1"}
	want.Aggregation = AggregationBlock{Rule: "trimmed:0.34", Shards: 4, Sampler: fl.SamplerFloyd}
	want.Codec = CodecBlock{Wire: fl.CodecBinary, Quant: 8}
	want.Training = TrainingBlock{K: 12, Kt: 6, Rounds: 3, LocalIters: 2, LR: 0.15, ValExamples: 60, EvalEvery: 1}
	want.Sweep = SweepBlock{Seeds: []int64{1, 2, 3}}
	if !reflect.DeepEqual(e, want) {
		t.Fatalf("parsed\n%+v\nwant\n%+v", e, want)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Hostile and malformed inputs must be rejected with a line number and a
// message naming the offense — never silently dropped or misread.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown section", "bogus:\n  key: 1\n", `unknown section "bogus"`},
		{"unknown key in section", "method:\n  strength: 11\n", `unknown key "strength" in section method`},
		{"unknown top-level key", "speed: 9\n", `unknown key "speed" in top level`},
		{"duplicate key", "method:\n  sigma: 1\n  sigma: 2\n", "duplicate key method.sigma"},
		{"duplicate top-level key", "seed: 1\nseed: 2\n", "duplicate key seed"},
		{"duplicate section", "method:\n  sigma: 1\nmethod:\n  clip: 2\n", `duplicate section "method"`},
		{"tab indentation", "method:\n\tsigma: 1\n", "tab indentation"},
		{"value on section header", "method: fedcdp\n", `section "method" takes no value`},
		{"indented key outside section", "  sigma: 1\n", `indented key "sigma" outside a section`},
		{"missing value", "method:\n  name:\n", "missing value"},
		{"not a key-value line", "just some prose\n", "not a"},
		{"bad integer", "training:\n  k: twelve\n", "not an integer"},
		{"bad float", "method:\n  sigma: much\n", "not a number"},
		{"bad bool", "runtime:\n  simnet: yes\n", "not a boolean"},
		{"bad duration", "runtime:\n  deadline: 5 minutes\n", "not a duration"},
		{"bad list", "sweep:\n  seeds: 1, 2\n", "not a list"},
		{"bad list element", "sweep:\n  seeds: [1, x]\n", "element 1 not an integer"},
		{"bad quoted string", "data:\n  dataset: \"unterminated\n", "bad quoted string"},
		{"future version", "version: 2\n", "unsupported config version 2"},
		{"empty key", ": 5\n", "empty key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.doc, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) = %v, want error containing %q", tc.doc, err, tc.want)
			}
		})
	}
}

// Error messages must carry the 1-based line number of the offending line,
// or nobody can fix a 40-line config from the message alone.
func TestParseErrorLineNumbers(t *testing.T) {
	doc := "version: 1\n\nmethod:\n  name: fedcdp\n  sigma: oops\n"
	_, err := Parse([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("want line 5 in error, got %v", err)
	}
}

// Canonicalization is a fixed point: parsing the canonical form and
// re-canonicalizing yields the same bytes, for the default and for a
// document touching every section.
func TestCanonicalRoundTrip(t *testing.T) {
	docs := map[string]string{
		"empty": "",
		"full": `seed: 9
model:
  precision: fp32
data:
  dataset: cancer
  scenario: dirichlet
  alpha: 0.3
method:
  name: dssgd
  share: 0.25
runtime:
  name: barrier
  deadline: 2s
aggregation:
  rule: krum:2
codec:
  wire: binary
training:
  k: 10
  kt: 5
sweep:
  seeds: [4, 5]
`,
		"quoted": "data:\n  dataset: \"cancer\"\n",
	}
	for name, doc := range docs {
		t.Run(name, func(t *testing.T) {
			e, err := Parse([]byte(doc))
			if err != nil {
				t.Fatal(err)
			}
			canon := e.Canonical()
			e2, err := Parse(canon)
			if err != nil {
				t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
			}
			if !bytes.Equal(e2.Canonical(), canon) {
				t.Fatalf("canonicalization not idempotent:\nfirst:\n%s\nsecond:\n%s", canon, e2.Canonical())
			}
			if !reflect.DeepEqual(e2, e.normalized()) {
				t.Fatalf("Parse(Canonical(e)) = %+v, want normalized %+v", e2, e.normalized())
			}
			if e2.Digest() != e.Digest() {
				t.Fatalf("digest changed across round trip: %s vs %s", e2.Digest(), e.Digest())
			}
		})
	}
}

// The digest is an identity for the experiment, not for the document: key
// order, section order, comments, blank lines, quoting and spelled-out
// defaults must all hash identically.
func TestDigestStableAcrossFormatting(t *testing.T) {
	a := `version: 1
seed: 5
data:
  dataset: cancer
method:
  sigma: 0.05
  name: fedcdp
`
	b := `# same experiment, different document
method:
  name: "fedcdp"
  sigma: 0.05

data:
  dataset: cancer
  scenario: iid      # the default, spelled out

seed: 5
model:
  engine: batched
`
	ea, err := Parse([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Parse([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	if ea.Digest() != eb.Digest() {
		t.Fatalf("equivalent documents digest differently:\n%s\nvs\n%s", ea.Canonical(), eb.Canonical())
	}
	if ea.Digest() == Default().Digest() {
		t.Fatal("a non-default experiment digests like the default")
	}
	if len(ea.Digest()) != 16 {
		t.Fatalf("digest %q is not 16 hex digits", ea.Digest())
	}
}

// Every semantically distinct value must move the digest: two experiments
// differing in exactly one field cannot share an identity.
func TestDigestDistinguishesEveryField(t *testing.T) {
	seen := map[string]string{Default().Digest(): "default"}
	for _, f := range index.fields {
		if f.key == "version" {
			continue
		}
		e := Default()
		// Drive each field away from its default through its own setter.
		var v string
		switch f.get(e) {
		case "true":
			v = "false"
		case "false":
			v = "true"
		case "0s":
			v = "1s"
		case "[]":
			v = "[1, 2]"
		default:
			switch f.key {
			case "dataset":
				v = "cancer"
			case "scenario":
				v = "dirichlet"
			case "name":
				if f.section == "runtime" {
					v = fl.RuntimeBarrier
				} else if f.section == "experiment" {
					v = "table1"
				} else {
					v = core.MethodDSSGD
				}
			case "engine":
				v = fl.EngineReference
			case "noise-engine":
				v = fl.NoiseReference
			case "precision":
				v = "fp32"
			case "rule":
				v = fl.AggMedian
			case "sampler":
				v = fl.SamplerFloyd
			case "wire":
				v = fl.CodecBinary
			case "quant":
				v = "8"
			default:
				v = "73"
			}
		}
		if err := f.set(e, v); err != nil {
			t.Fatalf("%s.%s = %q: %v", f.section, f.key, v, err)
		}
		d := e.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("%s.%s = %q digests identically to %s", f.section, f.key, v, prev)
		}
		seen[d] = f.section + "." + f.key
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(e *Experiment)
		want   string
	}{
		{"bad version", func(e *Experiment) { e.Version = 3 }, "unsupported version"},
		{"empty dataset", func(e *Experiment) { e.Data.Dataset = "" }, "data.dataset must be set"},
		{"unknown dataset", func(e *Experiment) { e.Data.Dataset = "imagenet" }, "data.dataset"},
		{"unknown method", func(e *Experiment) { e.Method.Name = "fed-prox" }, "unknown method.name"},
		{"unknown engine", func(e *Experiment) { e.Model.Engine = "gpu" }, "unknown model.engine"},
		{"unknown precision", func(e *Experiment) { e.Model.Precision = "fp16" }, "unknown model.precision"},
		{"unknown runtime", func(e *Experiment) { e.Runtime.Name = "async" }, "unknown runtime.name"},
		{"unknown sampler", func(e *Experiment) { e.Aggregation.Sampler = "knuth" }, "unknown aggregation.sampler"},
		{"unknown codec", func(e *Experiment) { e.Codec.Wire = "json" }, "unknown codec.wire"},
		{"bad quant", func(e *Experiment) { e.Codec.Quant = 4 }, "codec.quant"},
		{"unknown aggregation", func(e *Experiment) { e.Aggregation.Rule = "mode" }, "unknown aggregation.rule"},
		{"unknown scenario", func(e *Experiment) { e.Data.Scenario = "zipf" }, "data.scenario"},
		{"bad fault plan", func(e *Experiment) { e.Faults.Plan = "meteor=1" }, "faults.plan"},
		{"negative k", func(e *Experiment) { e.Training.K = -1 }, "training.k must be non-negative"},
		{"kt over k", func(e *Experiment) { e.Training.Kt = 99 }, "training.kt 99 exceeds training.k"},
		{"quorum over kt", func(e *Experiment) { e.Runtime.Quorum = 9 }, "runtime.quorum 9 exceeds training.kt"},
		{"dropout range", func(e *Experiment) { e.Runtime.Dropout = 1.5 }, "runtime.dropout"},
		{"compress range", func(e *Experiment) { e.Method.Compress = 1 }, "method.compress"},
		{"negative sigma", func(e *Experiment) { e.Method.Sigma = -1 }, "method.sigma must be non-negative"},
		{"negative scale", func(e *Experiment) { e.Experiment.Scale = -2 }, "experiment.scale"},
		{"driver under simnet", func(e *Experiment) { e.Experiment.Name, e.Runtime.Simnet = "table1", true }, "cannot run under runtime.simnet"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := Default()
			tc.mutate(e)
			err := e.Validate()
			if err == nil {
				t.Fatal("Validate() passed, want rejection")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// CoreConfig and FromCore are inverses over the fields core.Config carries:
// resolving a config to a run and lifting it back must preserve the digest,
// so flag-built and file-built descriptions of the same run are one identity.
func TestCoreConfigFromCoreRoundTrip(t *testing.T) {
	e, err := Parse([]byte(`seed: 11
data:
  dataset: cancer
  scenario: dirichlet
  alpha: 0.1
method:
  name: fedcdp
  sigma: 0.06
runtime:
  name: streaming
  quorum: 1
faults:
  plan: drop=0.2,crash=2,restart=1
aggregation:
  rule: median
codec:
  wire: binary
training:
  k: 12
  kt: 6
  rounds: 4
  iters: 3
`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.CoreConfig()
	if cfg.ConfigDigest != e.Digest() {
		t.Fatalf("CoreConfig digest %q, want %q", cfg.ConfigDigest, e.Digest())
	}
	back := FromCore(cfg, false)
	if back.Digest() != e.Digest() {
		t.Fatalf("FromCore(CoreConfig(e)) digest %s, want %s\nlifted:\n%s\noriginal:\n%s",
			back.Digest(), e.Digest(), back.Canonical(), e.Canonical())
	}
}

func TestOverride(t *testing.T) {
	dst, src := Default(), Default()
	src.Method.Sigma = 0.5
	src.Data.Dataset = "cancer"
	if !Override(dst, "sigma", src) {
		t.Fatal("sigma is a config-mapped flag")
	}
	if dst.Method.Sigma != 0.5 {
		t.Fatalf("sigma not copied: %v", dst.Method.Sigma)
	}
	if dst.Data.Dataset != "mnist" {
		t.Fatal("Override copied a flag that was not named")
	}
	if Override(dst, "addr", src) {
		t.Fatal("-addr has no config meaning and must be left to the binary")
	}
}

// ApplyFlagOverrides re-stamps exactly the flags the user passed — set
// flags win over the file, untouched flags do not.
func TestApplyFlagOverrides(t *testing.T) {
	fileDoc := "data:\n  dataset: cancer\nmethod:\n  sigma: 0.9\ntraining:\n  k: 12\n"
	dst, err := Parse([]byte(fileDoc))
	if err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sigma := fs.Float64("sigma", 0.06, "")
	fs.Int("k", 16, "")
	fs.String("addr", "", "")
	if err := fs.Parse([]string{"-sigma", "0.01", "-addr", "x:1"}); err != nil {
		t.Fatal(err)
	}
	src := Default()
	src.Method.Sigma = *sigma

	applied := ApplyFlagOverrides(fs, dst, src)
	if !reflect.DeepEqual(applied, []string{"sigma"}) {
		t.Fatalf("applied %v, want [sigma]", applied)
	}
	if dst.Method.Sigma != 0.01 {
		t.Fatalf("passed flag must win over the file: sigma %v", dst.Method.Sigma)
	}
	if dst.Training.K != 12 || dst.Data.Dataset != "cancer" {
		t.Fatal("unpassed flags must not clobber file values")
	}
}

func TestExpandSweep(t *testing.T) {
	e, err := Parse([]byte("sweep:\n  seeds: [3, 5, 8]\n"))
	if err != nil {
		t.Fatal(err)
	}
	runs := e.Expand()
	if len(runs) != 3 {
		t.Fatalf("expanded %d runs, want 3", len(runs))
	}
	digests := map[string]bool{}
	for i, want := range []int64{3, 5, 8} {
		if runs[i].Seed != want {
			t.Fatalf("run %d seed %d, want %d", i, runs[i].Seed, want)
		}
		if len(runs[i].Sweep.Seeds) != 0 {
			t.Fatalf("run %d still carries the sweep block", i)
		}
		digests[runs[i].Digest()] = true
	}
	if len(digests) != 3 {
		t.Fatal("sweep runs must have distinct digests (the seed is part of the identity)")
	}

	solo := Default()
	if runs := solo.Expand(); len(runs) != 1 || runs[0] != solo {
		t.Fatal("a sweepless config expands to itself")
	}
}

func TestRunSweep(t *testing.T) {
	e, _ := Parse([]byte("sweep:\n  seeds: [1, 2, 3, 4, 5]\n"))
	runs := e.Expand()

	var calls atomic.Int64
	got := make([]int64, len(runs))
	err := RunSweep(runs, 2, func(i int, r *Experiment) error {
		calls.Add(1)
		got[i] = r.Seed
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 {
		t.Fatalf("%d calls, want 5", calls.Load())
	}
	if !reflect.DeepEqual(got, []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("results landed out of slot: %v", got)
	}

	err = RunSweep(runs, 0, func(i int, r *Experiment) error {
		if i%2 == 1 {
			return fmt.Errorf("run %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("sweep errors must surface")
	}
	for _, want := range []string{"run 1 failed", "run 3 failed"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error %v missing %q", err, want)
		}
	}
}

// Schema sanity: sections are declared, flags are unique, and every
// getter/setter pair is an exact round trip at the default value — the
// property Override relies on to never fail.
func TestSchemaInvariants(t *testing.T) {
	secs := map[string]bool{}
	for _, s := range sectionOrder {
		secs[s] = true
	}
	flags := map[string]string{}
	keys := map[string]bool{}
	e := Default()
	for _, f := range index.fields {
		id := f.section + "." + f.key
		if !secs[f.section] {
			t.Errorf("%s: section not in sectionOrder", id)
		}
		if keys[id] {
			t.Errorf("%s: duplicate schema entry", id)
		}
		keys[id] = true
		if f.flag != "" {
			if prev, dup := flags[f.flag]; dup {
				t.Errorf("flag -%s mapped by both %s and %s", f.flag, prev, id)
			}
			flags[f.flag] = id
		}
		v := f.get(e)
		if err := f.set(e, v); err != nil {
			t.Errorf("%s: set(get()) = %v", id, err)
		}
		if got := f.get(e); got != v {
			t.Errorf("%s: get∘set not identity: %q then %q", id, v, got)
		}
	}
}
