package config

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/tensor"
)

// normalized returns a copy with every enum default spelled out by its
// concrete name, so documents that determine the same run — one saying
// "engine: batched", one omitting the key, one writing "" — share one
// canonical form and therefore one digest. Normalization never changes
// what a run computes: each empty name and its concrete default are pinned
// bit-identical by the packages that consume them (see e.g.
// core.TestIIDScenarioReproducesDefault).
func (e *Experiment) normalized() *Experiment {
	c := *e
	def := func(p *string, name string) {
		if *p == "" {
			*p = name
		}
	}
	def(&c.Model.Engine, fl.EngineBatched)
	def(&c.Model.Precision, tensor.PrecisionFP64)
	def(&c.Data.Dataset, "mnist")
	def(&c.Data.Scenario, dataset.ScenarioIID)
	def(&c.Method.Name, core.MethodFedCDP)
	def(&c.Method.NoiseEngine, fl.NoiseCounter)
	def(&c.Runtime.Name, fl.RuntimeStreaming)
	def(&c.Aggregation.Rule, fl.AggFedSGD)
	def(&c.Aggregation.Sampler, fl.SamplerLegacy)
	def(&c.Codec.Wire, fl.CodecGob)
	if c.Experiment.Scale == 0 {
		c.Experiment.Scale = 1
	}
	return &c
}

// Canonical renders the experiment in its canonical serialized form: every
// field explicit, sections and keys in schema order, enum defaults
// normalized to their concrete names, scalars in shortest exact
// representation. Two documents that parse to the same experiment always
// canonicalize to the same bytes regardless of key order, comments or
// formatting, and Parse(Canonical(e)) reproduces e (modulo normalization).
func (e *Experiment) Canonical() []byte {
	c := e.normalized()
	var b bytes.Buffer
	b.WriteString("# fedcdp experiment config (canonical form)\n")
	for _, sec := range sectionOrder {
		if sec != "" {
			fmt.Fprintf(&b, "\n%s:\n", sec)
		}
		for _, f := range index.fields {
			if f.section != sec {
				continue
			}
			if sec == "" {
				fmt.Fprintf(&b, "%s: %s\n", f.key, f.get(c))
			} else {
				fmt.Fprintf(&b, "  %s: %s\n", f.key, f.get(c))
			}
		}
	}
	return b.Bytes()
}

// Digest is the experiment's identity: the FNV-1a 64 hash of its canonical
// form, rendered as 16 hex digits. It is stamped into reports, checkpoints
// and the wire RoundConfig so resumed and remote runs can verify they are
// executing the same experiment.
func (e *Experiment) Digest() string {
	h := fnv.New64a()
	h.Write(e.Canonical())
	return fmt.Sprintf("%016x", h.Sum64())
}
