package core

import (
	"runtime"
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

// Tests for the simnet fault-injection layer at the whole-system level:
// the acceptance anchor is bit-reproducibility of a faulted streaming run
// — identical final-model FNV digest and ε across invocations and
// GOMAXPROCS/parallelism settings — plus the simnet RPC deployment
// harness's deterministic fault realization.

// acceptanceConfig is the issue's pinned scenario: streaming runtime,
// dirichlet(0.1) label skew, Fed-CDP, 20% update drop + 2 mid-round
// crashes + 1 server restart.
func acceptanceConfig() Config {
	return Config{
		Dataset: "cancer",
		Method:  MethodFedCDP,
		K:       12, Kt: 6, Rounds: 4,
		LocalIters:  3,
		Sigma:       0.06,
		Seed:        42,
		ValExamples: 60,
		EvalEvery:   1,
		Runtime:     fl.RuntimeStreaming,
		Scenario:    dataset.Scenario{Name: "dirichlet", Alpha: 0.1},
		Faults:      "drop=0.2,crash=2,restart=1",
		MinQuorum:   1,
	}
}

func TestFaultedRunBitReproducible(t *testing.T) {
	type fingerprint struct {
		digest  uint64
		epsilon float64
		clients []int
	}
	take := func(par, maxprocs int) fingerprint {
		t.Helper()
		if maxprocs > 0 {
			old := runtime.GOMAXPROCS(maxprocs)
			defer runtime.GOMAXPROCS(old)
		}
		cfg := acceptanceConfig()
		cfg.Parallelism = par
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint{digest: digestTensors(res.Final.Params()), epsilon: res.FinalEpsilon()}
		for _, r := range res.Rounds {
			fp.clients = append(fp.clients, r.Clients)
		}
		return fp
	}

	base := take(0, 0)
	for _, alt := range []fingerprint{take(0, 0), take(1, 0), take(8, 0), take(4, 2)} {
		if alt.digest != base.digest {
			t.Fatalf("final-model digest %x differs from %x across scheduling settings", alt.digest, base.digest)
		}
		if alt.epsilon != base.epsilon {
			t.Fatalf("ε %v differs from %v across scheduling settings", alt.epsilon, base.epsilon)
		}
		for i := range base.clients {
			if alt.clients[i] != base.clients[i] {
				t.Fatalf("round %d folded %d vs %d across scheduling settings", i, alt.clients[i], base.clients[i])
			}
		}
	}
	// The plan must actually have injected something: with 20% drop and 2
	// crashes over 4 rounds of 6, losing zero contributions is (0.8)^24-
	// unlikely and would mean the plan silently no-opped.
	lost := 0
	for _, c := range base.clients {
		lost += 6 - c
	}
	if lost == 0 {
		t.Fatal("fault plan injected nothing")
	}
}

func TestFaultedRunDiffersFromClean(t *testing.T) {
	faulted := acceptanceConfig()
	clean := acceptanceConfig()
	clean.Faults = ""
	rf, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if digestTensors(rf.Final.Params()) == digestTensors(rc.Final.Params()) {
		t.Fatal("a plan that loses contributions must change the trajectory")
	}
}

func TestCheckpointResumeWithFaults(t *testing.T) {
	// The fault plan binds over the full horizon, so a checkpointed run
	// resumed mid-plan meets exactly the failures the uninterrupted run
	// met — bit-for-bit.
	base := acceptanceConfig()
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	half := base
	half.Rounds = 2
	half.PlannedRounds = 4
	first, err := Run(half)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := CheckpointFrom(first).Resume(2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digestTensors(resumed.Final.Params()), digestTensors(full.Final.Params()); got != want {
		t.Fatalf("resumed faulted run digest %x, uninterrupted %x", got, want)
	}
	if resumed.FinalEpsilon() != full.FinalEpsilon() {
		t.Fatalf("resumed ε %v, uninterrupted %v", resumed.FinalEpsilon(), full.FinalEpsilon())
	}
}

func TestBadFaultPlanRejected(t *testing.T) {
	cfg := acceptanceConfig()
	cfg.Faults = "drop=1.5"
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid fault plan must be rejected")
	}
	if _, err := RunSimnet(cfg); err == nil {
		t.Fatal("invalid fault plan must be rejected by the simnet harness too")
	}
}

func simnetBaseConfig() Config {
	return Config{
		Dataset: "cancer",
		Method:  MethodNonPrivate,
		K:       8, Kt: 4, Rounds: 3,
		LocalIters:  2,
		Seed:        42,
		ValExamples: 40,
		EvalEvery:   1,
	}
}

func TestRunSimnetCleanDeployment(t *testing.T) {
	res, err := RunSimnet(simnetBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("recorded %d rounds, want 3", len(res.Rounds))
	}
	for _, r := range res.Rounds {
		if r.Clients != 4 || r.Dropped != 0 || !r.Committed {
			t.Fatalf("clean round %+v, want 4 folded / 0 dropped / committed", r)
		}
	}
	if acc, ok := res.FinalAccuracy(); !ok || acc <= 0 {
		t.Fatal("deployment never evaluated")
	}
}

func TestRunSimnetFaultedDeterministicFolds(t *testing.T) {
	run := func() []fl.RoundStats {
		cfg := simnetBaseConfig()
		cfg.Method = MethodFedCDP
		cfg.Sigma = 0.06
		cfg.Faults = "drop=0.3,crash=1,restart=1"
		cfg.MinQuorum = 1
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	a, b := run(), run()
	lost := 0
	for i := range a {
		if a[i].Clients != b[i].Clients || a[i].Committed != b[i].Committed || a[i].Epsilon != b[i].Epsilon {
			t.Fatalf("round %d differs across identical simnet runs: %+v vs %+v", i, a[i], b[i])
		}
		lost += a[i].Dropped
		if a[i].Epsilon <= 0 {
			t.Fatalf("round %d: Fed-CDP ε must be positive, got %v", i, a[i].Epsilon)
		}
		if i > 0 && a[i].Epsilon <= a[i-1].Epsilon {
			t.Fatalf("ε must grow monotonically: round %d %v after %v", i, a[i].Epsilon, a[i-1].Epsilon)
		}
	}
	if lost == 0 {
		t.Fatal("the plan destroyed nothing over three faulted rounds")
	}
}

func TestRunSimnetSurvivesLinkChaos(t *testing.T) {
	// Message cuts and duplicate deliveries kill sessions mid-protocol on
	// ANY client; the harness must count those as injected failures and
	// keep going, not abort the run — and fates stay deterministic. Rates
	// are per gob wire message and a session is ~14 of them, so these
	// "mild" rates already kill a third of all sessions.
	run := func() []fl.RoundStats {
		cfg := simnetBaseConfig()
		cfg.Faults = "msgdrop=0.02,dup=0.02"
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	a, b := run(), run()
	folded := 0
	for i := range a {
		if a[i].Clients != b[i].Clients || a[i].Dropped != b[i].Dropped {
			t.Fatalf("round %d differs across identical chaotic runs: %+v vs %+v", i, a[i], b[i])
		}
		folded += a[i].Clients
	}
	if folded == 0 {
		t.Fatal("no update ever survived moderate link chaos")
	}
}

func TestRunSimnetPartition(t *testing.T) {
	cfg := simnetBaseConfig()
	cfg.K, cfg.Kt = 4, 4 // the whole population participates every round
	cfg.Rounds = 2
	cfg.Faults = "partition=c0>server@0-0"
	res, err := RunSimnet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Rounds[0]; r.Clients != 3 || r.Dropped != 1 {
		t.Fatalf("partitioned round %+v, want 3 folded / 1 dropped", r)
	}
	if r := res.Rounds[1]; r.Clients != 4 {
		t.Fatalf("post-partition round %+v, want the full cohort back", r)
	}
}

func TestRunSimnetQuorum(t *testing.T) {
	cfg := simnetBaseConfig()
	cfg.K, cfg.Kt = 4, 4
	cfg.Rounds = 1
	cfg.MinQuorum = 4
	cfg.Faults = "crash@0:0"
	res, err := RunSimnet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Rounds[0]; r.Committed || r.Clients != 3 {
		t.Fatalf("round %+v must miss quorum 4 with a crashed client", r)
	}
}

// TestRunSimnetBinaryCodec deploys the whole federation over the fabric
// with the binary wire codec — including a mid-run server restart, so
// every client session re-negotiates the codec against the reborn server.
// The codec changes the bytes, never the protocol outcome: per-round
// folded counts, commits and ε must match the gob deployment exactly.
func TestRunSimnetBinaryCodec(t *testing.T) {
	run := func(codec string) []fl.RoundStats {
		cfg := simnetBaseConfig()
		cfg.Method = MethodFedCDP
		cfg.Sigma = 0.06
		cfg.Faults = "drop=0.2,restart=1"
		cfg.MinQuorum = 1
		cfg.Codec = codec
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	gob, bin := run(""), run(fl.CodecBinary)
	for i := range gob {
		if gob[i].Clients != bin[i].Clients || gob[i].Committed != bin[i].Committed || gob[i].Epsilon != bin[i].Epsilon {
			t.Fatalf("round %d diverged across codecs: gob %+v vs binary %+v", i, gob[i], bin[i])
		}
	}
}

// TestRunSimnetUnknownCodecRejected pins the config gate.
func TestRunSimnetUnknownCodecRejected(t *testing.T) {
	cfg := simnetBaseConfig()
	cfg.Codec = "msgpack"
	if _, err := RunSimnet(cfg); err == nil {
		t.Fatal("unknown codec must be rejected")
	}
}
