package core

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

func TestFedCDPMedianProducesUpdate(t *testing.T) {
	env := testEnv(t, 20)
	delta, stats := FedCDPMedian{Sigma: 0.1}.ClientUpdate(env)
	if tensor.GroupL2Norm(delta) == 0 {
		t.Fatal("median-clip update must be non-zero")
	}
	if stats.Iters != env.Cfg.LocalIters || stats.MeanGradNorm <= 0 {
		t.Fatalf("stats incomplete: %+v", stats)
	}
}

func TestFedCDPMedianName(t *testing.T) {
	if got := (FedCDPMedian{}).Name(); got != "fed-cdp(median)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestFedCDPMedianDeterministic(t *testing.T) {
	d1, _ := FedCDPMedian{Sigma: 0.5}.ClientUpdate(testEnv(t, 21))
	d2, _ := FedCDPMedian{Sigma: 0.5}.ClientUpdate(testEnv(t, 21))
	for i := range d1 {
		if !d1[i].Equal(d2[i], 0) {
			t.Fatal("median-clip strategy must be deterministic per seed")
		}
	}
}

func TestFedCDPMedianCapsBound(t *testing.T) {
	// With a tiny MaxC and no noise, the update shrinks toward zero, like a
	// tiny fixed bound would.
	big, _ := FedCDPMedian{Sigma: 0}.ClientUpdate(testEnv(t, 22))
	capped, _ := FedCDPMedian{Sigma: 0, MaxC: 1e-6}.ClientUpdate(testEnv(t, 22))
	if tensor.GroupL2Norm(capped) > 1e-3*tensor.GroupL2Norm(big) {
		t.Fatalf("MaxC had no effect: %v vs %v",
			tensor.GroupL2Norm(capped), tensor.GroupL2Norm(big))
	}
}

func TestFedCDPMedianSanitizes(t *testing.T) {
	raw, _ := NonPrivate{}.ClientUpdate(testEnv(t, 23))
	med, _ := FedCDPMedian{Sigma: 1}.ClientUpdate(testEnv(t, 23))
	same := true
	for i := range raw {
		if !raw[i].Equal(med[i], 1e-9) {
			same = false
		}
	}
	if same {
		t.Fatal("median-clip strategy must perturb the update")
	}
}

func TestFedCDPMedianServerSanitizeNoop(t *testing.T) {
	u := [][]*tensor.Tensor{{tensor.FromSlice([]float64{1}, 1)}}
	FedCDPMedian{Sigma: 1}.ServerSanitize(0, u, tensor.NewRNG(1))
	if u[0][0].At(0) != 1 {
		t.Fatal("median-clip sanitizes per example only")
	}
}

func TestLRScaledClipSchedule(t *testing.T) {
	p := LRScaledClip{Alpha: 40, LR0: 0.1, Decay: 0.5, Min: 0.5}
	if got := p.Bound(0, 10); got != 4 {
		t.Fatalf("round 0 bound = %v, want 4", got)
	}
	if got := p.Bound(1, 10); got != 2 {
		t.Fatalf("round 1 bound = %v, want 2", got)
	}
	if got := p.Bound(20, 10); got != 0.5 {
		t.Fatalf("floored bound = %v, want 0.5", got)
	}
	if p.String() == "" {
		t.Fatal("String must be non-empty")
	}
}

func TestLRScaledClipMonotone(t *testing.T) {
	p := LRScaledClip{Alpha: 60, LR0: 0.1, Decay: 0.9, Min: 1}
	prev := math.Inf(1)
	for r := 0; r < 50; r++ {
		b := p.Bound(r, 50)
		if b > prev {
			t.Fatalf("bound increased at round %d", r)
		}
		prev = b
	}
}

func TestFedCDPWithLRScaledClip(t *testing.T) {
	// The lr-scaled policy slots into FedCDP like any other ClipPolicy.
	s := FedCDP{Clip: LRScaledClip{Alpha: 40, LR0: 0.1, Decay: 0.9, Min: 0.5}, Sigma: 0.1}
	delta, _ := s.ClientUpdate(testEnv(t, 24))
	if tensor.GroupL2Norm(delta) == 0 {
		t.Fatal("update must be non-zero")
	}
}

func TestFedCDPFlatClipBehaviour(t *testing.T) {
	// Flat clipping with a tiny bound shrinks the whole-gradient norm; the
	// per-layer variant clips each layer independently.
	flat, _ := FedCDP{Clip: fixedClip(1e-6), Sigma: 0, FlatClip: true}.ClientUpdate(testEnv(t, 25))
	layer, _ := FedCDP{Clip: fixedClip(1e-6), Sigma: 0}.ClientUpdate(testEnv(t, 25))
	if tensor.GroupL2Norm(flat) > 1e-3 || tensor.GroupL2Norm(layer) > 1e-3 {
		t.Fatal("both clip variants must bound the update")
	}
}

// fixedClip is a test helper for a constant clipping bound.
func fixedClip(c float64) interface {
	Bound(int, int) float64
	String() string
} {
	return dpFixed{c}
}

type dpFixed struct{ c float64 }

func (d dpFixed) Bound(int, int) float64 { return d.c }
func (d dpFixed) String() string         { return "test-fixed" }
