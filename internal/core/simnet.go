package core

import (
	"fmt"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/simnet"
	"fedcdp/internal/tensor"
)

// simnetServerAddr is the server's address on the fabric; clients are
// hosts "c<id>", the names the plan's partition clauses target.
const simnetServerAddr = "server"

func simnetClientHost(id int) string { return fmt.Sprintf("c%d", id) }

// simnetCohort picks a round's participating clients honoring the
// configured sampler and the open-world population — the same draw fl.Run
// would make (fl.ActiveCohort's static branch is the pre-population draw
// verbatim).
func simnetCohort(cfg Config, pop fl.Population, round int) []int {
	return fl.ActiveCohort(cfg.Seed, round, pop, cfg.Kt, cfg.Sampler, false)
}

// clientOutcome is one simnet client goroutine's terminal state. planned
// marks clients the fault plan destroyed on purpose — their session errors
// are the injected fault, not a harness bug.
type clientOutcome struct {
	id      int
	planned bool
	err     error
}

// RunSimnet executes the configured experiment as a full deployment over
// the in-memory simnet fabric: a RoundServer on a fabric listener, every
// cohort member a real RPC client goroutine dialing through the fault
// plan, and the plan realized at the transport level — crashed and
// drop-fated clients abandon their session mid-protocol (the server
// observes a failed session, exactly as over TCP), partitioned clients
// cannot dial at all, restarts tear the server down and rebind the
// address, and link latency/jitter/duplication run on virtual time.
//
// The fold is arrival-order (the wire has no reorder buffer), so final
// parameters are subject to float summation order across runs; the folded
// SET, per-round counts, commits and ε are deterministic per seed. For
// bit-exact faulted runs use Run with Config.Faults (in-process
// injection), which both runtimes execute deterministically.
func RunSimnet(cfg Config) (*Result, error) {
	spec, err := dataset.Get(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(spec)
	strat, err := cfg.Strategy()
	if err != nil {
		return nil, err
	}
	part, err := cfg.Scenario.Partitioner()
	if err != nil {
		return nil, err
	}
	ds := dataset.NewPartitioned(spec, cfg.Seed, part)
	plan, err := simnet.ParsePlan(cfg.planSpec())
	if err != nil {
		return nil, err
	}
	plan, err = plan.Bind(cfg.Seed, cfg.Rounds, cfg.K)
	if err != nil {
		return nil, err
	}
	pop := fl.PopulationOf(cfg.K, plan)
	if cfg.MinQuorum < 0 || cfg.MinQuorum > cfg.Kt {
		return nil, fmt.Errorf("core: quorum %d outside [0, Kt=%d]", cfg.MinQuorum, cfg.Kt)
	}
	if !fl.ValidCodec(cfg.Codec) {
		return nil, fmt.Errorf("core: unknown wire codec %q", cfg.Codec)
	}
	if !fl.ValidAggregation(cfg.Aggregation) {
		return nil, fmt.Errorf("core: unknown aggregation %q", cfg.Aggregation)
	}
	if cfg.Shards > 0 && fl.RobustAggregation(cfg.Aggregation) {
		// Robust folds are order statistics over raw updates — they are not
		// grouping-invariant, so a sharded edge tree would commit silently
		// wrong parameters. Refuse up front.
		return nil, fmt.Errorf("core: robust aggregation %q cannot run on the sharded tree topology (shards=%d); use shards=0", cfg.Aggregation, cfg.Shards)
	}
	switch cfg.Sampler {
	case "", fl.SamplerLegacy, fl.SamplerFloyd:
	default:
		return nil, fmt.Errorf("core: unknown sampler %q", cfg.Sampler)
	}
	if cfg.Shards < 0 || cfg.Shards > cfg.K {
		return nil, fmt.Errorf("core: shards %d outside [0, K=%d]", cfg.Shards, cfg.K)
	}
	if cfg.Shards > 0 {
		return runSimnetTree(cfg, spec, strat, ds, plan)
	}

	n := simnet.New(cfg.Seed, plan)
	global := nn.Build(spec.ModelSpec(), tensor.Split(cfg.Seed, 1))
	valN := cfg.ValExamples
	if valN <= 0 {
		valN = 500
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	valX, valY := ds.Validation(valN)

	newServer := func() (*fl.RoundServer, error) {
		ln, lerr := n.Listen(simnetServerAddr)
		if lerr != nil {
			return nil, lerr
		}
		srv := fl.NewRoundServerOn(ln)
		srv.Clock = n.Clock()
		srv.Codec = cfg.Codec
		return srv, nil
	}
	srv, err := newServer()
	if err != nil {
		return nil, err
	}
	defer func() { srv.Close() }()
	agg, err := fl.NewAggregator(cfg.Aggregation)
	if err != nil {
		return nil, err
	}

	rcfg := fl.RoundConfig{
		BatchSize:    cfg.BatchSize,
		LocalIters:   cfg.LocalIters,
		LR:           cfg.LR,
		TotalRounds:  cfg.Rounds,
		Scenario:     cfg.Scenario,
		Engine:       cfg.Engine,
		NoiseEngine:  cfg.NoiseEngine,
		Precision:    cfg.Precision,
		ConfigDigest: cfg.ConfigDigest,
	}
	// Under link-level chaos (message cuts, duplicate delivery) ANY
	// session may legitimately die mid-protocol — those deaths are the
	// injected fault, not a harness bug, so client errors are tolerated
	// and show up in the round accounting as failed sessions instead.
	linkChaos := plan.MsgDropRate > 0 || plan.DupRate > 0

	hist := &fl.History{Strategy: strat.Name()}
	for round := 0; round < cfg.Rounds; round++ {
		n.SetRound(round)
		if plan.RestartServer(round) {
			// Between-round restart, for real: the listener closes, every
			// parked session is refused, and a fresh server rebinds the
			// address — the surface cmd/fedclient's reconnect loop rides.
			srv.Close()
			if srv, err = newServer(); err != nil {
				return nil, fmt.Errorf("core: simnet restart before round %d: %w", round, err)
			}
			if agg, err = fl.NewAggregator(cfg.Aggregation); err != nil {
				return nil, err
			}
		}

		cohort := simnetCohort(cfg, pop, round)
		// Partitioned members cannot even open a session; they are excluded
		// from the round's admission quota (the harness, unlike the server,
		// is allowed to know who is unreachable).
		reachable := make([]int, 0, len(cohort))
		for _, id := range cohort {
			if !plan.Partitioned(round, simnetClientHost(id), simnetServerAddr) {
				reachable = append(reachable, id)
			}
		}

		rs := fl.RoundStats{Round: round, Active: pop.ActiveCount(round), Committed: 0 >= cfg.MinQuorum, Dropped: len(cohort)}
		wireBefore := n.BytesWritten()
		if len(reachable) > 0 {
			outcomes := make(chan clientOutcome, len(reachable))
			for _, id := range reachable {
				go func(id int) {
					dial := n.Dialer(simnetClientHost(id))
					if plan.CrashClient(round, id) || plan.DropUpdate(round, id) {
						// The fault plan destroys this contribution: the
						// client opens its session, receives the round, and
						// vanishes — the server counts a failed session.
						_, aerr := fl.AbandonSession(simnetServerAddr, fl.ClientOptions{Dial: dial, Codec: cfg.Codec})
						outcomes <- clientOutcome{id: id, planned: true, err: aerr}
						return
					}
					// Adversarial realization: a poisoned client trains on its
					// flipped-label shard view, a Byzantine one corrupts its
					// update before submission — both pure functions of the
					// plan seed, so the deployment attacks exactly as the
					// in-process runtimes do.
					data := fl.AdversaryShard(plan, id, ds.Client(id))
					cerr := fl.RunRemoteClientOpts(simnetServerAddr, id, strat, data, spec.ModelSpec(), cfg.Seed,
						fl.ClientOptions{Dial: dial, Codec: cfg.Codec, Adversary: plan})
					outcomes <- clientOutcome{id: id, err: cerr}
				}(id)
			}
			// The deadline is virtual and unreachable (every session
			// resolves, nothing advances the clock an hour): it exists so
			// session failures are counted instead of aborting the round —
			// the deployment contract.
			res, rerr := srv.StreamRound(round, global.Params(), rcfg, agg, fl.RoundOptions{
				Clients:   len(reachable),
				Deadline:  time.Hour,
				MinQuorum: cfg.MinQuorum,
			})
			if rerr != nil {
				return nil, fmt.Errorf("core: simnet round %d: %w", round, rerr)
			}
			for range reachable {
				o := <-outcomes
				if o.err != nil && !o.planned && !linkChaos {
					return nil, fmt.Errorf("core: simnet round %d client %d: %w", round, o.id, o.err)
				}
			}
			rs.Clients = res.Folded
			rs.Dropped = len(cohort) - res.Folded
			rs.Committed = res.Committed
		}
		rs.WireBytes = n.BytesWritten() - wireBefore
		if round%evalEvery == 0 || round == cfg.Rounds-1 {
			rs.Accuracy = fl.Evaluate(global, valX, valY)
			rs.Evaluated = true
		}
		hist.Rounds = append(hist.Rounds, rs)
	}
	hist.Final = global
	ledger := annotateEpsilon(cfg, spec, hist, pop)
	return &Result{History: hist, Spec: spec, Cfg: cfg, Ledger: ledger}, nil
}
