package core

import (
	"runtime"
	"testing"

	"fedcdp/internal/fl"
)

// Whole-deployment parity: the hierarchical simnet harness at any shard
// count must commit parameters BIT-IDENTICAL to the flat exact deployment
// (Shards=1), with matching per-round folded counts, commits and ε. The
// fault plans used here are restricted to crash/drop/restart clauses,
// which are keyed by (round, client) / (round) and therefore
// topology-invariant; link-level chaos (latency, message loss) keys fault
// streams by host-name pairs and legitimately differs across topologies.
func TestSimnetTreeMatchesFlatExactly(t *testing.T) {
	type variant struct {
		name   string
		codec  string
		faults string
		agg    string
	}
	variants := []variant{
		{"gob/clean/fedsgd", "", "", fl.AggFedSGD},
		{"binary/faulted/fedsgd", fl.CodecBinary, "drop=0.2,crash=2,restart=1", fl.AggFedSGD},
		{"gob/faulted/weighted", "", "drop=0.2,crash=2,restart=1", fl.AggWeighted},
		{"binary/clean/weighted", fl.CodecBinary, "", fl.AggWeighted},
	}
	type fingerprint struct {
		digest    uint64
		epsilon   float64
		clients   []int
		committed []bool
	}
	take := func(t *testing.T, v variant, shards int) fingerprint {
		t.Helper()
		cfg := simnetBaseConfig()
		cfg.K, cfg.Kt, cfg.Rounds = 12, 6, 3
		cfg.Method = MethodFedCDP
		cfg.Sigma = 0.06
		cfg.MinQuorum = 1
		cfg.Codec = v.codec
		cfg.Faults = v.faults
		cfg.Aggregation = v.agg
		cfg.Shards = shards
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint{digest: digestTensors(res.Final.Params()), epsilon: res.FinalEpsilon()}
		for _, r := range res.Rounds {
			fp.clients = append(fp.clients, r.Clients)
			fp.committed = append(fp.committed, r.Committed)
		}
		return fp
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			flat := take(t, v, 1)
			for _, shards := range []int{2, 3, 4, 6, 12} {
				tree := take(t, v, shards)
				if tree.digest != flat.digest {
					t.Fatalf("shards=%d: final-model digest %x differs from flat %x", shards, tree.digest, flat.digest)
				}
				if tree.epsilon != flat.epsilon {
					t.Fatalf("shards=%d: ε %v differs from flat %v", shards, tree.epsilon, flat.epsilon)
				}
				for i := range flat.clients {
					if tree.clients[i] != flat.clients[i] || tree.committed[i] != flat.committed[i] {
						t.Fatalf("shards=%d round %d: folded/committed %d/%v vs flat %d/%v",
							shards, i, tree.clients[i], tree.committed[i], flat.clients[i], flat.committed[i])
					}
				}
			}
		})
	}
}

// The exact deployments change float arithmetic (exact sums round once),
// so their digests differ from the legacy float harness in general — but
// round ACCOUNTING (folded counts, commits, ε) must agree, since the same
// cohorts train and the same faults fire.
func TestSimnetExactStatsMatchLegacyFloat(t *testing.T) {
	run := func(shards int) *Result {
		cfg := simnetBaseConfig()
		cfg.K, cfg.Kt, cfg.Rounds = 12, 6, 3
		cfg.Method = MethodFedCDP
		cfg.Sigma = 0.06
		cfg.MinQuorum = 1
		cfg.Faults = "drop=0.2,crash=2,restart=1"
		cfg.Shards = shards
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(0)
	exact := run(1)
	if got, want := exact.FinalEpsilon(), legacy.FinalEpsilon(); got != want {
		t.Fatalf("ε %v differs from legacy %v", got, want)
	}
	for i := range legacy.Rounds {
		l, e := legacy.Rounds[i], exact.Rounds[i]
		if e.Clients != l.Clients || e.Committed != l.Committed || e.Dropped != l.Dropped {
			t.Fatalf("round %d stats %+v differ from legacy %+v", i, e, l)
		}
	}
}

// Legacy cohort sampling and Floyd sampling draw different cohorts, but a
// Floyd deployment must still be deterministic and self-consistent.
func TestSimnetTreeFloydSampler(t *testing.T) {
	run := func() uint64 {
		cfg := simnetBaseConfig()
		cfg.K, cfg.Kt, cfg.Rounds = 12, 6, 2
		cfg.Shards = 3
		cfg.Sampler = fl.SamplerFloyd
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return digestTensors(res.Final.Params())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("floyd-sampled tree run not reproducible: %x vs %x", a, b)
	}
}

// Invalid topology and sampler configurations must be rejected up front.
func TestSimnetTreeConfigRejected(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Shards = -1 },
		func(c *Config) { c.Shards = c.K + 1 },
		func(c *Config) { c.Sampler = "reservoir" },
	} {
		cfg := simnetBaseConfig()
		mutate(&cfg)
		if _, err := RunSimnet(cfg); err == nil {
			t.Fatalf("expected config rejection, got success (%+v)", cfg)
		}
	}
}

// The issue's scale acceptance: a seeded K=100,000 / Kt=1,000 hierarchical
// deployment completes and is bit-reproducible — identical final-model
// digest and ε across invocations and GOMAXPROCS settings.
func TestSimnetScale100k(t *testing.T) {
	if testing.Short() {
		t.Skip("K=100k deployment skipped in -short")
	}
	take := func(maxprocs int) (uint64, float64, int64) {
		if maxprocs > 0 {
			old := runtime.GOMAXPROCS(maxprocs)
			defer runtime.GOMAXPROCS(old)
		}
		cfg := Config{
			Dataset: "cancer",
			Method:  MethodFedCDP,
			K:       100_000, Kt: 1000, Rounds: 2,
			LocalIters:  1,
			Sigma:       0.06,
			Seed:        42,
			ValExamples: 40,
			EvalEvery:   1,
			MinQuorum:   1,
			Shards:      32,
			Sampler:     fl.SamplerFloyd,
			Codec:       fl.CodecBinary,
		}
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wire int64
		for _, r := range res.Rounds {
			if r.Clients != 1000 || !r.Committed {
				t.Fatalf("round %+v, want 1000 folded and committed", r)
			}
			wire += r.WireBytes
		}
		if wire <= 0 {
			t.Fatal("deployment recorded no wire traffic")
		}
		return digestTensors(res.Final.Params()), res.FinalEpsilon(), wire
	}
	d1, e1, w1 := take(0)
	d2, e2, w2 := take(2)
	if d1 != d2 || e1 != e2 {
		t.Fatalf("scale run not bit-reproducible: digest %x/%x ε %v/%v", d1, d2, e1, e2)
	}
	if w1 != w2 {
		t.Fatalf("scale run wire bytes differ: %d vs %d", w1, w2)
	}
}
