package core

import (
	"testing"

	"fedcdp/internal/fl"
)

// TestStreamingRuntimeParity is the acceptance anchor of the streaming
// refactor at the whole-system level: for each paper method, the
// deterministic-fold streaming runtime must reproduce the barrier
// runtime's seeded History exactly — logged accuracy and ε per round
// identical, final parameters bit-equal — because client RNG derives from
// (seed, round, client) and folds commit in cohort order.
func TestStreamingRuntimeParity(t *testing.T) {
	methods := []string{MethodNonPrivate, MethodFedCDP, MethodDSSGD, MethodFedSDPSrv}
	for _, method := range methods {
		method := method
		t.Run(method, func(t *testing.T) {
			run := func(runtime string) *Result {
				res, err := Run(Config{
					Dataset: "cancer",
					Method:  method,
					K:       10, Kt: 4, Rounds: 3,
					LocalIters:  3,
					Sigma:       0.06,
					Seed:        42,
					ValExamples: 60,
					EvalEvery:   1,
					Parallelism: 4,
					DropoutRate: 0.25, // parity must hold under churn too
					Runtime:     runtime,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			rs, rb := run(fl.RuntimeStreaming), run(fl.RuntimeBarrier)
			if len(rs.Rounds) != len(rb.Rounds) {
				t.Fatalf("round counts differ: %d vs %d", len(rs.Rounds), len(rb.Rounds))
			}
			for i := range rs.Rounds {
				s, b := rs.Rounds[i], rb.Rounds[i]
				if s.Clients != b.Clients || s.Accuracy != b.Accuracy || s.Epsilon != b.Epsilon {
					t.Fatalf("round %d diverges: streaming %+v vs barrier %+v", i, s, b)
				}
			}
			ps, pb := rs.Final.Params(), rb.Final.Params()
			for i := range ps {
				if !ps[i].Equal(pb[i], 0) {
					t.Fatalf("%s: streaming and barrier params diverge at tensor %d", method, i)
				}
			}
		})
	}
}

// TestStreamingQuorumThroughCore exercises the deadline-free quorum path
// through core.Run's config surface: full dropout with a positive quorum
// must freeze the model on every round.
func TestStreamingQuorumThroughCore(t *testing.T) {
	res, err := Run(Config{
		Dataset: "cancer",
		Method:  MethodNonPrivate,
		K:       8, Kt: 4, Rounds: 2,
		LocalIters:  2,
		Seed:        7,
		ValExamples: 40,
		DropoutRate: 1,
		MinQuorum:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		if r.Committed {
			t.Fatalf("round %d committed with zero folds under quorum 1", r.Round)
		}
		if r.Clients != 0 {
			t.Fatalf("round %d folded %d clients under full dropout", r.Round, r.Clients)
		}
	}
}

// TestSparseHints pins which strategies advertise sparse wire updates.
func TestSparseHints(t *testing.T) {
	cases := []struct {
		name string
		s    fl.Strategy
		want bool
	}{
		{"dssgd-0.1", DSSGD{ShareFraction: 0.1}, true},
		{"dssgd-0.9", DSSGD{ShareFraction: 0.9}, false},
		{"compress-0.9", Compressed{Inner: NonPrivate{}, PruneRatio: 0.9}, true},
		{"compress-0.2", Compressed{Inner: NonPrivate{}, PruneRatio: 0.2}, false},
		{"compress-over-dssgd", Compressed{Inner: DSSGD{ShareFraction: 0.1}, PruneRatio: 0.2}, true},
	}
	for _, tc := range cases {
		sc, ok := tc.s.(fl.SparseCapable)
		if !ok {
			t.Fatalf("%s does not implement SparseCapable", tc.name)
		}
		if got := sc.SparseUpdates(); got != tc.want {
			t.Errorf("%s: SparseUpdates() = %v, want %v", tc.name, got, tc.want)
		}
	}
	if _, ok := fl.Strategy(NonPrivate{}).(fl.SparseCapable); ok {
		t.Error("NonPrivate must not advertise sparse updates")
	}
}
