package core

import (
	"fmt"
	"time"

	"fedcdp/internal/accountant"
	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/simnet"
)

// Method names accepted by Config.Method.
const (
	MethodNonPrivate  = "nonprivate"
	MethodFedSDP      = "fedsdp"
	MethodFedSDPSrv   = "fedsdp-server"
	MethodFedCDP      = "fedcdp"
	MethodFedCDPDecay = "fedcdp-decay"
	MethodDSSGD       = "dssgd"
)

// Methods lists all method names in the paper's presentation order.
func Methods() []string {
	return []string{MethodNonPrivate, MethodFedSDP, MethodFedSDPSrv, MethodFedCDP, MethodFedCDPDecay, MethodDSSGD}
}

// Config is the high-level experiment configuration. Zero fields inherit the
// benchmark's Table I defaults; the privacy defaults are the paper's
// (C = 4, σ = 6, δ = 1e-5, decay 6→2).
type Config struct {
	Dataset string // benchmark name (Table I)
	Method  string

	K      int // total clients (default 100)
	Kt     int // clients per round (default 10% of K)
	Rounds int // default: benchmark Rounds
	// PlannedRounds declares the full horizon when this run is a prefix
	// that will be checkpointed and resumed (anchors decay schedules).
	// Zero means Rounds is the whole plan.
	PlannedRounds int

	BatchSize  int     // default: benchmark B
	LocalIters int     // default: benchmark L
	LR         float64 // default: benchmark LR

	Clip  float64 // C (default 4)
	Sigma float64 // noise scale (default 6)
	// AccountantSigma, when set, is the noise scale used for privacy
	// accounting instead of Sigma. Scaled-down simulations use a reduced
	// training σ to compensate for their smaller averaging budget (see
	// DESIGN.md); setting AccountantSigma to the paper-scale σ reports the
	// guarantee of the full-scale deployment the run simulates. When unset,
	// accounting honestly uses the σ that actually ran.
	AccountantSigma float64
	Delta           float64 // default 1e-5
	DecayFrom       float64 // decay schedule start (default 6)
	DecayTo         float64 // decay schedule end (default 2)

	ShareFraction float64 // DSSGD share fraction (default 0.1)
	CompressRatio float64 // prune ratio for communication-efficient FL (0 = off)

	Seed        int64
	ValExamples int
	EvalEvery   int
	Parallelism int

	// Engine selects the local-training execution engine: fl.EngineBatched
	// (the default) or fl.EngineReference, the original per-example path
	// kept for parity checking (see DESIGN.md).
	Engine string

	// NoiseEngine selects the DP noise source: fl.NoiseCounter (the
	// default) keys every Gaussian draw to (round, client, iteration,
	// example, layer, offset) so sanitization parallelizes with
	// bit-identical results at any GOMAXPROCS; fl.NoiseReference is the
	// original sequential math/rand stream kept as the parity oracle
	// (see DESIGN.md, "Noise engine").
	NoiseEngine string

	// Runtime selects the round orchestration: fl.RuntimeStreaming (the
	// default) or fl.RuntimeBarrier, the lockstep path kept for parity
	// checking (see DESIGN.md, "Streaming runtime").
	Runtime string

	// Codec selects the wire encoding: fl.CodecGob (the default, and the
	// parity oracle) or fl.CodecBinary, the framed binary codec. Run only
	// touches the wire on server restarts; RunSimnet deploys the codec on
	// every transport session (see DESIGN.md, "Wire codec").
	Codec string

	// Precision selects the client GEMM arithmetic width:
	// tensor.PrecisionFP64 (the default, pinned as the reference oracle)
	// or tensor.PrecisionFP32, the bulk float32 path (see DESIGN.md,
	// "Precision").
	Precision string

	// DropoutRate is the per-round probability that a selected client
	// fails to report (device churn); see fl.Config.DropoutRate.
	DropoutRate float64

	// RoundDeadline is the streaming runtime's per-round straggler
	// cutoff; zero waits for the full cohort.
	RoundDeadline time.Duration

	// MinQuorum is the minimum folded updates required to commit a round;
	// a round below quorum leaves the global model unchanged.
	MinQuorum int

	// Scenario selects the data-heterogeneity scenario: how the benchmark
	// is partitioned across the client population (see dataset.Scenario).
	// The zero value is the iid/Table-I partition, which reproduces every
	// pre-scenario-engine run bit-for-bit.
	Scenario dataset.Scenario

	// Aggregation selects the server rule: "" / fl.AggFedSGD (default),
	// fl.AggFedAvg, or fl.AggWeighted — example-count-weighted FedAvg, the
	// rule that corrects for quantity-skewed partitions.
	Aggregation string

	// Shards selects the aggregation topology. 0 (the default) keeps the
	// legacy float aggregators and flat fold — every pre-hierarchy run
	// reproduces bit-for-bit. 1 switches to the flat exact-arithmetic
	// aggregator, the parity oracle for the tree. 2 or more builds an
	// edge-aggregator tree of that many shards: each edge folds its range
	// of the client population and forwards one weight-carrying partial,
	// and the root composes partials exactly — bit-identical to the flat
	// exact fold at ANY shard count (see DESIGN.md, "Hierarchical
	// aggregation").
	Shards int

	// TreeFanout bounds how many partials the in-process tree composes per
	// merge step (0 = all at once). Exactness makes the fanout
	// result-invisible; it exists to shape merge concurrency.
	TreeFanout int

	// Sampler selects cohort sampling: "" / fl.SamplerLegacy (the default
	// O(K) Fisher–Yates prefix, the golden-pinned oracle) or
	// fl.SamplerFloyd, Floyd's O(Kt) distinct-sample algorithm for
	// populations where allocating K slots per round dominates.
	Sampler string

	// MuxWorkers bounds concurrent multiplexed client sessions in
	// RunSimnet's hierarchical path (0 = GOMAXPROCS). Population size is
	// unconstrained by it: K=100,000 virtual clients run over this many
	// goroutines and model workspaces.
	MuxWorkers int

	// Faults is a deterministic fault-injection plan in the simnet grammar
	// — e.g. "drop=0.2,crash=2,restart=1" (see simnet.ParsePlan). The plan
	// is bound to (Seed, Rounds, K), so the same configuration always
	// fails the same way; the empty string runs fault-free. Run injects
	// the plan in-process; RunSimnet additionally realizes it at the
	// transport level over the in-memory fabric.
	Faults string

	// Population is a deterministic open-world population plan in the same
	// simnet grammar — join=n@r, leave=n@r, churn=rate clauses (see
	// simnet.ParsePlan). It is concatenated with Faults and bound to
	// (Seed, Rounds, K), so which clients exist in which rounds is a pure
	// function of the configuration: cohorts are sampled only from each
	// round's active set, and privacy is accounted per user (see
	// Result.Ledger). The empty string is the closed world every
	// pre-population run assumed.
	Population string

	// ConfigDigest is the canonical digest of the declarative experiment
	// config this run was derived from (see internal/config). It is pure
	// metadata — it never influences training — but it is stamped into the
	// wire RoundConfig and rides in checkpoints so resumed and remote runs
	// can verify they are executing the same experiment. Empty for runs
	// assembled directly from flags or struct literals.
	ConfigDigest string
}

// withDefaults resolves zero fields against the benchmark spec.
func (c Config) withDefaults(spec dataset.Spec) Config {
	if c.K == 0 {
		c.K = 100
	}
	if c.Kt == 0 {
		c.Kt = c.K / 10
		if c.Kt == 0 {
			c.Kt = 1
		}
	}
	if c.Rounds == 0 {
		c.Rounds = spec.Rounds
	}
	if c.BatchSize == 0 {
		c.BatchSize = spec.BatchSize
	}
	if c.LocalIters == 0 {
		c.LocalIters = spec.LocalIters
	}
	if c.LR == 0 {
		c.LR = spec.LR
	}
	if c.Clip == 0 {
		c.Clip = 4
	}
	if c.Sigma == 0 {
		c.Sigma = 6
	}
	if c.Delta == 0 {
		c.Delta = 1e-5
	}
	if c.DecayFrom == 0 {
		c.DecayFrom = 6
	}
	if c.DecayTo == 0 {
		c.DecayTo = 2
	}
	if c.ShareFraction == 0 {
		c.ShareFraction = 0.1
	}
	return c
}

// Strategy builds the fl.Strategy for the configured method.
func (c Config) Strategy() (fl.Strategy, error) {
	var s fl.Strategy
	switch c.Method {
	case MethodNonPrivate, "":
		s = NonPrivate{}
	case MethodFedSDP:
		s = FedSDP{C: c.Clip, Sigma: c.Sigma}
	case MethodFedSDPSrv:
		s = FedSDP{C: c.Clip, Sigma: c.Sigma, AtServer: true}
	case MethodFedCDP:
		s = NewFedCDP(c.Clip, c.Sigma)
	case MethodFedCDPDecay:
		s = NewFedCDPDecay(c.DecayFrom, c.DecayTo, c.Sigma)
	case MethodDSSGD:
		s = DSSGD{ShareFraction: c.ShareFraction}
	default:
		return nil, fmt.Errorf("core: unknown method %q (have %v)", c.Method, Methods())
	}
	if c.CompressRatio > 0 {
		s = Compressed{Inner: s, PruneRatio: c.CompressRatio}
	}
	return s, nil
}

// Result is a run history annotated with privacy accounting.
type Result struct {
	*fl.History
	Spec dataset.Spec
	Cfg  Config
	// Ledger holds the per-user privacy accountants of an open-world run
	// (Config.Population set and dynamic); History's per-round ε is then
	// the max over the ledgers. Nil on closed-world runs, where every user
	// spends identically and the single global accountant is exact.
	Ledger *accountant.Ledger
}

// Run executes the configured experiment: it resolves the benchmark,
// constructs the strategy, runs the federated simulation, and fills in the
// per-round privacy spending via the moments accountant.
func Run(cfg Config) (*Result, error) {
	spec, err := dataset.Get(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(spec)
	strat, err := cfg.Strategy()
	if err != nil {
		return nil, err
	}
	part, err := cfg.Scenario.Partitioner()
	if err != nil {
		return nil, err
	}
	ds := dataset.NewPartitioned(spec, cfg.Seed, part)
	horizon := cfg.Rounds
	if cfg.PlannedRounds > horizon {
		horizon = cfg.PlannedRounds
	}
	faults, err := cfg.faultPlan(horizon)
	if err != nil {
		return nil, err
	}

	hist, err := fl.Run(fl.Config{
		Data:  ds,
		Model: spec.ModelSpec(),
		K:     cfg.K, Kt: cfg.Kt, Rounds: cfg.Rounds,
		Round: fl.RoundConfig{
			BatchSize:    cfg.BatchSize,
			LocalIters:   cfg.LocalIters,
			LR:           cfg.LR,
			Engine:       cfg.Engine,
			NoiseEngine:  cfg.NoiseEngine,
			Precision:    cfg.Precision,
			ConfigDigest: cfg.ConfigDigest,
		},
		Codec:           cfg.Codec,
		Strategy:        strat,
		Aggregation:     cfg.Aggregation,
		Shards:          cfg.Shards,
		TreeFanout:      cfg.TreeFanout,
		Sampler:         cfg.Sampler,
		Seed:            cfg.Seed,
		ValExamples:     cfg.ValExamples,
		EvalEvery:       cfg.EvalEvery,
		Parallelism:     cfg.Parallelism,
		ScheduleHorizon: cfg.PlannedRounds,
		Runtime:         cfg.Runtime,
		DropoutRate:     cfg.DropoutRate,
		RoundDeadline:   cfg.RoundDeadline,
		MinQuorum:       cfg.MinQuorum,
		Faults:          faults,
	})
	if err != nil {
		return nil, err
	}
	ledger := annotateEpsilon(cfg, spec, hist, fl.PopulationOf(cfg.K, faults))
	return &Result{History: hist, Spec: spec, Cfg: cfg, Ledger: ledger}, nil
}

// planSpec joins the fault and population clauses into the single simnet
// plan the run binds — they share the grammar and the (Seed, Rounds, K)
// binding, so "drop=0.2" and "churn=0.1" compose exactly like two clauses
// of one plan string.
func (c Config) planSpec() string {
	switch {
	case c.Faults == "":
		return c.Population
	case c.Population == "":
		return c.Faults
	}
	return c.Faults + "," + c.Population
}

// faultPlan parses and binds the configured fault plan over a round
// horizon; a nil fl.FaultPlan (clean run) comes back for the empty string.
// The horizon matters for resumed runs: binding over the full plan keeps a
// checkpoint-resumed run failing exactly like the uninterrupted one.
func (c Config) faultPlan(horizon int) (fl.FaultPlan, error) {
	spec := c.planSpec()
	if spec == "" {
		return nil, nil
	}
	plan, err := simnet.ParsePlan(spec)
	if err != nil {
		return nil, err
	}
	return plan.Bind(c.Seed, horizon, c.K)
}

// roundSamplingRate returns the method's per-step sampling rate for a round
// whose sampling pool holds `active` clients. Fed-CDP samples instances at
// q = B·kt/N; Fed-SDP samples clients at q = kt/active. kt is the cohort
// actually drawable — capped at the active population, exactly as the
// runtimes cap it.
func roundSamplingRate(cfg Config, spec dataset.Spec, active int) float64 {
	kt := cfg.Kt
	if kt > active {
		kt = active
	}
	var q float64
	switch cfg.Method {
	case MethodFedCDP, MethodFedCDPDecay:
		p := accountant.Params{
			TotalData:  spec.TrainN,
			PerRoundKt: kt,
			BatchSize:  cfg.BatchSize,
		}
		q = p.FedCDPSamplingRate()
	case MethodFedSDP, MethodFedSDPSrv:
		q = float64(kt) / float64(active)
	}
	if q > 1 {
		q = 1
	}
	return q
}

// annotateEpsilon fills RoundStats.Epsilon with cumulative privacy spending.
// Fed-CDP composes L sampled-Gaussian steps per round at the instance-level
// rate q = B·Kt/N; Fed-SDP composes one step per round at the client-level
// rate q = Kt/K. Non-private methods and DSSGD provide no guarantee (ε stays
// 0, i.e. "unbounded" — see History documentation).
//
// Only committed rounds are charged: a round below quorum leaves the global
// model unchanged and publishes nothing, so composing its mechanism would
// overstate the spend. (Before this rule, a drop-faulted run reported the
// ε of the clean run it never performed.)
//
// On a closed world (static pop) every user is in every committed round's
// sampling pool, so one global accountant is exact and cheap at any K. On an
// open world the spend is per user: every client active in a committed
// round's pool is charged at that round's rate, and the published ε is the
// worst user's. The returned ledger is nil on the closed-world path.
func annotateEpsilon(cfg Config, spec dataset.Spec, hist *fl.History, pop fl.Population) *accountant.Ledger {
	var stepsPerRound int
	switch cfg.Method {
	case MethodFedCDP, MethodFedCDPDecay:
		stepsPerRound = cfg.LocalIters
	case MethodFedSDP, MethodFedSDPSrv:
		stepsPerRound = 1
	default:
		return nil
	}
	sigma := cfg.Sigma
	if cfg.AccountantSigma > 0 {
		sigma = cfg.AccountantSigma
	}
	if !pop.Dynamic() {
		q := roundSamplingRate(cfg, spec, cfg.K)
		acc := accountant.New(cfg.Delta)
		for i := range hist.Rounds {
			if hist.Rounds[i].Committed {
				acc.Accumulate(q, sigma, stepsPerRound)
			}
			eps, _ := acc.Epsilon()
			hist.Rounds[i].Epsilon = eps
		}
		return nil
	}
	led := accountant.NewLedger(cfg.Delta)
	for i := range hist.Rounds {
		round := hist.Rounds[i].Round
		if hist.Rounds[i].Committed {
			active := pop.ActiveSet(round)
			q := roundSamplingRate(cfg, spec, len(active))
			for _, id := range active {
				led.Participate(id, q, sigma, stepsPerRound)
			}
		}
		eps, _, _ := led.MaxEpsilon()
		hist.Rounds[i].Epsilon = eps
	}
	return led
}
