package core

import (
	"time"

	"fedcdp/internal/dp"
	"fedcdp/internal/fl"
	"fedcdp/internal/tensor"
)

// This file implements the adaptive clipping strategies the paper sketches
// in Section IV-C as alternatives to the preset constant bound: clipping at
// the median gradient norm of the client's own data, and clipping tied to a
// decaying learning-rate schedule.

// FedCDPMedian is Fed-CDP with the paper's median-norm clipping: in each
// local iteration the clipping bound is the median of the batch's
// per-example layer-wise gradient norms (capped by MaxC), so the bound
// tracks the decaying gradient magnitude automatically instead of requiring
// a hand-tuned schedule.
type FedCDPMedian struct {
	Sigma float64
	// MaxC caps the data-derived bound (0 = uncapped). A cap keeps early
	// training, where norms are large, from inflating the noise variance.
	MaxC float64
}

var _ fl.Strategy = FedCDPMedian{}

// Name implements fl.Strategy.
func (FedCDPMedian) Name() string { return "fed-cdp(median)" }

// ClientUpdate runs local SGD where each iteration first computes all
// per-example gradients, derives the median layer norms, then clips and
// noises each example at the median.
func (f FedCDPMedian) ClientUpdate(env *fl.ClientEnv) ([]*tensor.Tensor, fl.ClientStats) {
	start := time.Now()
	global := tensor.CloneAll(env.Model.Params())
	var normSum float64
	var normN int

	for l := 0; l < env.Cfg.LocalIters; l++ {
		xs, ys := env.Data.Batch(l, env.Cfg.BatchSize)
		// First pass: materialize per-example gradients and layer norms.
		perExample := make([][]*tensor.Tensor, len(xs))
		layerNorms := make([][]float64, 0, len(xs))
		for j, x := range xs {
			_, g := env.Model.ExampleGradient(x, ys[j])
			perExample[j] = g
			norms := make([]float64, len(g))
			for li, gt := range g {
				norms[li] = gt.L2Norm()
			}
			layerNorms = append(layerNorms, norms)
			if l == 0 {
				normSum += tensor.GroupL2Norm(g)
				normN++
			}
		}
		// Median bound per layer across the batch.
		nLayers := len(perExample[0])
		bounds := make([]float64, nLayers)
		for li := 0; li < nLayers; li++ {
			col := make([]float64, len(xs))
			for j := range xs {
				col[j] = layerNorms[j][li]
			}
			c := dp.MedianNorm(col)
			if f.MaxC > 0 && c > f.MaxC {
				c = f.MaxC
			}
			if c <= 0 {
				c = 1e-12 // degenerate batch: keep the mechanism defined
			}
			bounds[li] = c
		}
		// Second pass: sanitize at the median and average. On the counter
		// noise engine every example's clip+noise is keyed independently,
		// so the already-materialized gradients fan out over goroutines
		// through the fused batch pipeline; the reference engine consumes
		// env.RNG sequentially as before.
		batch := tensor.ZerosLike(env.Model.Grads())
		if noise := env.Noise; noise != nil {
			iter := l
			dp.SanitizeBatch(dp.BatchSanitizeJob{
				N:       len(xs),
				Recover: func(int, []*tensor.Tensor) {}, // already materialized
				Sanitize: func(j int, g []*tensor.Tensor) {
					dp.SanitizeCounterLayers(g, bounds, f.Sigma, exampleNoise(*noise, iter, j))
				},
				Bufs:   perExample,
				Accum:  batch,
				Weight: 1 / float64(len(xs)),
			})
		} else {
			for _, g := range perExample {
				for li, gt := range g {
					gt.ClipL2(bounds[li])
					env.RNG.AddNormal(gt, f.Sigma*bounds[li])
				}
				tensor.AddAllScaled(batch, 1/float64(len(xs)), g)
			}
		}
		env.Model.SGDStep(env.Cfg.LR, batch)
	}

	stats := fl.ClientStats{Iters: env.Cfg.LocalIters, Duration: time.Since(start)}
	if normN > 0 {
		stats.MeanGradNorm = normSum / float64(normN)
	}
	return fl.Delta(env.Model.Params(), global), stats
}

// ServerSanitize is a no-op: all sanitization happens per example.
func (FedCDPMedian) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

// LRScaledClip ties the clipping bound to a decaying learning-rate schedule
// (Section IV-C: "define clipping as a function of learning rate η"):
// C(t) = Alpha · LR0 · Decay^t, floored at Min.
type LRScaledClip struct {
	Alpha float64 // clip-to-lr ratio
	LR0   float64 // initial learning rate
	Decay float64 // per-round multiplicative lr decay (e.g. 0.98)
	Min   float64 // bound floor
}

var _ dp.ClipPolicy = LRScaledClip{}

// Bound returns Alpha·LR0·Decay^round floored at Min.
func (l LRScaledClip) Bound(round, totalRounds int) float64 {
	c := l.Alpha * l.LR0
	for i := 0; i < round; i++ {
		c *= l.Decay
	}
	if c < l.Min {
		return l.Min
	}
	return c
}

// String implements dp.ClipPolicy.
func (l LRScaledClip) String() string {
	return "lr-scaled"
}
