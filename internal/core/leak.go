package core

import (
	"fmt"

	"fedcdp/internal/dp"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// Leakage extraction: these helpers reproduce exactly what each adversary of
// the paper's threat model observes (Section III), so attack experiments can
// be run against any defense.
//
//   - type-2: the per-example gradient during local training. Under Fed-CDP
//     this is the sanitized gradient (clipping and noise are applied the
//     moment a layer's gradient is computed); under every other method the
//     raw gradient is exposed.
//   - type-1: the client's round update after local training. Fed-SDP with
//     client-side noise exposes the sanitized update; Fed-SDP with
//     server-side noise exposes the raw one.
//   - type-0: the round update as intercepted at the server, i.e. after any
//     client-side or server-side sanitization.

// LeakPerExample returns the per-example gradient a type-2 adversary reads
// at a client running the given method. round/totalRounds position any
// clipping-decay schedule.
func LeakPerExample(m *nn.Model, x *tensor.Tensor, label int, cfg Config, round, totalRounds int, rng *tensor.RNG) ([]*tensor.Tensor, error) {
	_, g := m.ExampleGradient(x, label)
	switch cfg.Method {
	case MethodNonPrivate, MethodFedSDP, MethodFedSDPSrv, MethodDSSGD, "":
		// Per-example gradients are untouched by per-client mechanisms.
		return g, nil
	case MethodFedCDP:
		dp.Sanitize(g, orDefault(cfg.Clip, 4), orDefault(cfg.Sigma, 6), rng)
		return g, nil
	case MethodFedCDPDecay:
		c := dp.LinearDecay{From: orDefault(cfg.DecayFrom, 6), To: orDefault(cfg.DecayTo, 2)}.Bound(round, totalRounds)
		dp.Sanitize(g, c, orDefault(cfg.Sigma, 6), rng)
		return g, nil
	}
	return nil, fmt.Errorf("core: unknown method %q", cfg.Method)
}

// LeakRoundUpdate returns the client round update observed by a type-0 or
// type-1 adversary. atServer reports the type-0 view (post any server-side
// sanitization); type-1 is the client-side view.
func LeakRoundUpdate(env *fl.ClientEnv, cfg Config, atServer bool, rng *tensor.RNG) ([]*tensor.Tensor, error) {
	strat, err := cfg.Strategy()
	if err != nil {
		return nil, err
	}
	delta, _ := strat.ClientUpdate(env)
	if atServer {
		updates := [][]*tensor.Tensor{delta}
		strat.ServerSanitize(env.Round, updates, rng)
		delta = updates[0]
	}
	return delta, nil
}

func orDefault(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}
