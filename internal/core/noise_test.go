package core

import (
	"math"
	"runtime"
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// Tests for the counter-based noise engine (fl.NoiseCounter): seeded goldens
// pinning its output, execution-engine parity under counter noise, and
// scheduling invariance. The reference noise engine's behaviour is pinned
// separately by engine_test.go (whose envs carry no Noise and therefore
// exercise the sequential math/rand path bit-for-bit as before this engine
// existed).

// digestTensors folds every element's bit pattern through FNV-1a: any
// single-bit change in any element changes the digest, making it a compact
// golden for "bit-for-bit identical" assertions.
func digestTensors(ts []*tensor.Tensor) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, t := range ts {
		for _, v := range t.Data() {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (b >> s) & 0xff
				h *= prime
			}
		}
	}
	return h
}

// runClientUpdateNoise is engine_test.go's runClientUpdate with the counter
// noise stream attached, reconstructing exactly the environment the
// simulator builds when the round config selects fl.NoiseCounter.
func runClientUpdateNoise(t *testing.T, dsName string, strat fl.Strategy, engine string, iters int) ([]*tensor.Tensor, fl.ClientStats) {
	t.Helper()
	spec, err := dataset.Get(dsName)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 7)
	model := nn.Build(spec.ModelSpec(), tensor.Split(7, 1))
	arena := tensor.NewArena()
	model.UseArena(arena)
	noise := fl.ClientNoise(7, 0, 3)
	env := &fl.ClientEnv{
		ClientID: 3,
		Round:    0,
		Model:    model,
		Data:     ds.Client(3),
		RNG:      tensor.Split(7, 4, 0, 3),
		Cfg: fl.RoundConfig{
			BatchSize: spec.BatchSize, LocalIters: iters, LR: spec.LR,
			TotalRounds: 5, Engine: engine, NoiseEngine: fl.NoiseCounter,
		},
		Arena: arena,
		Noise: &noise,
	}
	return strat.ClientUpdate(env)
}

// TestNoiseEngineExecutionParity pins the two execution engines to each
// other under counter noise: because every noise value is keyed by
// (iteration, example, layer, offset) rather than drawn from a stream, the
// per-example reference path and the parallel batched pipeline must produce
// the same update without any ordering discipline between them.
func TestNoiseEngineExecutionParity(t *testing.T) {
	for _, tc := range []struct {
		ds    string
		strat fl.Strategy
	}{
		{"mnist", NewFedCDP(4, 0.01)},
		{"cancer", NewFedCDPDecay(6, 2, 0.01)},
		{"cancer", FedCDP{Clip: dp.FixedClip{C: 4}, Sigma: 0.01, FlatClip: true}},
	} {
		ref, refStats := runClientUpdateNoise(t, tc.ds, tc.strat, fl.EngineReference, 3)
		got, gotStats := runClientUpdateNoise(t, tc.ds, tc.strat, fl.EngineBatched, 3)
		if len(ref) != len(got) {
			t.Fatalf("%s: update tensor counts differ", tc.ds)
		}
		for i := range ref {
			for j, v := range ref[i].Data() {
				if d := math.Abs(v - got[i].Data()[j]); d > 1e-9 {
					t.Fatalf("%s tensor %d element %d: engines differ by %v", tc.ds, i, j, d)
				}
			}
		}
		if d := math.Abs(refStats.MeanGradNorm - gotStats.MeanGradNorm); d > 1e-9 {
			t.Fatalf("%s: MeanGradNorm differs by %v", tc.ds, d)
		}
	}
}

// TestNoiseEngineGOMAXPROCSInvariance runs the same Fed-CDP simulation at
// worker counts 1 and 8 (both goroutine parallelism knobs: the client pool
// and the sanitize fan-out) and requires bit-identical final parameters —
// the acceptance property of the counter engine.
func TestNoiseEngineGOMAXPROCSInvariance(t *testing.T) {
	run := func(parallelism, gomaxprocs int) uint64 {
		prev := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(prev)
		res, err := Run(Config{
			Dataset: "cancer", Method: MethodFedCDP,
			K: 8, Kt: 4, Rounds: 3, LocalIters: 3,
			Sigma: 0.05, Seed: 11, ValExamples: 20, EvalEvery: 100,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return digestTensors(res.Final.Params())
	}
	base := run(1, 1)
	for _, tc := range []struct{ par, procs int }{{4, 1}, {1, 8}, {4, 8}} {
		if got := run(tc.par, tc.procs); got != base {
			t.Fatalf("final params differ at parallelism=%d GOMAXPROCS=%d: %x vs %x",
				tc.par, tc.procs, got, base)
		}
	}
}

// TestNoiseEngineSelection pins the routing: a counter-engine run and a
// reference-engine run at the same seed must differ (they draw different
// noise), while explicitly selecting fl.NoiseCounter must match the default.
func TestNoiseEngineSelection(t *testing.T) {
	run := func(noiseEngine string) uint64 {
		res, err := Run(Config{
			Dataset: "cancer", Method: MethodFedCDP,
			K: 6, Kt: 3, Rounds: 2, LocalIters: 3,
			Sigma: 0.05, Seed: 13, ValExamples: 20, EvalEvery: 100,
			NoiseEngine: noiseEngine,
		})
		if err != nil {
			t.Fatal(err)
		}
		return digestTensors(res.Final.Params())
	}
	def, counter, ref := run(""), run(fl.NoiseCounter), run(fl.NoiseReference)
	if def != counter {
		t.Fatal("default noise engine must be the counter engine")
	}
	if def == ref {
		t.Fatal("counter and reference engines must draw different noise")
	}
	if again := run(fl.NoiseReference); again != ref {
		t.Fatal("reference engine must be deterministic across runs")
	}
	if again := run(fl.NoiseCounter); again != counter {
		t.Fatal("counter engine must be deterministic across runs")
	}
}

// TestNoiseEngineGolden pins seeded counter-engine runs to hardcoded
// digests, one per strategy family routed through the new pipeline. These
// fail if the key schedule, the ziggurat tables, the fused kernels or the
// fold order change in any way — the counter-engine analogue of the
// reference parity oracles.
func TestNoiseEngineGolden(t *testing.T) {
	golden := map[string]uint64{
		MethodFedCDP:      0xb43b0f1a3a2caca8,
		MethodFedCDPDecay: 0x8e65941158f4b5fe,
		MethodFedSDP:      0x7e43afcf6d6cedff,
		MethodFedSDPSrv:   0x893a963a33779689,
	}
	for method, want := range golden {
		res, err := Run(Config{
			Dataset: "cancer", Method: method,
			K: 6, Kt: 3, Rounds: 2, LocalIters: 3,
			Sigma: 0.05, Seed: 17, ValExamples: 20, EvalEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := digestTensors(res.Final.Params()); got != want {
			t.Errorf("%s: counter-engine golden digest = %#x, want %#x", method, got, want)
		}
	}
}

// TestNoiseEngineMedianStrategy routes FedCDPMedian through the counter
// pipeline and checks scheduling invariance of its median-bound sanitize
// (its second pass fans out through dp.SanitizeBatch).
func TestNoiseEngineMedianStrategy(t *testing.T) {
	run := func(procs int) uint64 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		spec, _ := dataset.Get("cancer")
		hist, err := fl.Run(fl.Config{
			Data: dataset.New(spec, 5), Model: spec.ModelSpec(),
			K: 4, Kt: 2, Rounds: 2,
			Round:       fl.RoundConfig{BatchSize: 4, LocalIters: 2, LR: spec.LR},
			Strategy:    FedCDPMedian{Sigma: 0.05, MaxC: 8},
			Seed:        5,
			ValExamples: 20,
			EvalEvery:   100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return digestTensors(hist.Final.Params())
	}
	if run(1) != run(8) {
		t.Fatal("FedCDPMedian counter run must be GOMAXPROCS-invariant")
	}
}

// TestNoiseEngineValidation rejects unknown noise engine names.
func TestNoiseEngineValidation(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	_, err := fl.Run(fl.Config{
		Data: dataset.New(spec, 1), Model: spec.ModelSpec(),
		K: 2, Kt: 1, Rounds: 1,
		Round:    fl.RoundConfig{BatchSize: 2, LocalIters: 1, LR: 0.1, NoiseEngine: "quantum"},
		Strategy: NonPrivate{},
	})
	if err == nil {
		t.Fatal("fl.Run must reject an unknown noise engine name")
	}
}
