package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func checkpointBaseConfig() Config {
	return Config{
		Dataset: "cancer", Method: MethodFedCDPDecay,
		K: 8, Kt: 4, Rounds: 6, LocalIters: 5,
		Sigma: 0.1, ValExamples: 40, Seed: 42, EvalEvery: 1,
	}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	// A 6-round run must equal a 3-round run checkpointed and resumed for 3
	// more rounds, bit-for-bit — including for the decay schedule, which
	// depends on the absolute round index.
	full, err := Run(checkpointBaseConfig())
	if err != nil {
		t.Fatal(err)
	}

	half := checkpointBaseConfig()
	half.Rounds = 3
	half.PlannedRounds = 6 // declare the full horizon for the decay schedule
	first, err := Run(half)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := CheckpointFrom(first)
	// Restore the intended total horizon for the decay schedule: the
	// checkpointed config recorded Rounds=3; Resume extends it.
	resumed, err := ckpt.Resume(3)
	if err != nil {
		t.Fatal(err)
	}

	pf, pr := full.Final.Params(), resumed.Final.Params()
	for i := range pf {
		if !pf[i].Equal(pr[i], 1e-12) {
			t.Fatalf("resumed model diverges from uninterrupted run at tensor %d", i)
		}
	}
	// Privacy accounting covers the full composition.
	if full.FinalEpsilon() != resumed.FinalEpsilon() {
		t.Fatalf("resumed ε %v != full-run ε %v", resumed.FinalEpsilon(), full.FinalEpsilon())
	}
	// Round indices continue.
	if got := resumed.Rounds[0].Round; got != 3 {
		t.Fatalf("resumed first round = %d, want 3", got)
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	half := checkpointBaseConfig()
	half.Rounds = 2
	res, err := Run(half)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := CheckpointFrom(res)
	var buf bytes.Buffer
	if err := ckpt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NextRound != 2 || len(loaded.Params) != len(ckpt.Params) {
		t.Fatalf("loaded checkpoint mismatch: %+v", loaded.NextRound)
	}
	r1, err := ckpt.Resume(1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Resume(1)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := r1.Final.Params(), r2.Final.Params()
	for i := range p1 {
		if !p1[i].Equal(p2[i], 0) {
			t.Fatal("resume from loaded checkpoint diverges")
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	half := checkpointBaseConfig()
	half.Rounds = 1
	res, err := Run(half)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := CheckpointFrom(res).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NextRound != 1 {
		t.Fatalf("NextRound = %d, want 1", loaded.NextRound)
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error for garbage checkpoint")
	}
	if _, err := LoadCheckpointFile("/nonexistent/path.ckpt"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestCheckpointUnknownDataset(t *testing.T) {
	c := &Checkpoint{Cfg: Config{Dataset: "nope"}}
	if _, err := c.Resume(1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}
