package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

// Checkpoint captures a federated run mid-flight: the global model, the
// round counter, and the privacy spending so far. Because every stochastic
// component is seeded deterministically by (seed, round, client), resuming
// from a checkpoint reproduces the uninterrupted run bit-for-bit
// (TestCheckpointResumeEquivalence).
type Checkpoint struct {
	Cfg       Config
	NextRound int
	Params    []fl.TensorWire
}

// CheckpointFrom snapshots a finished (or partial) run for later resumption.
func CheckpointFrom(res *Result) *Checkpoint {
	return &Checkpoint{
		Cfg:       res.Cfg,
		NextRound: res.Cfg.Rounds, // rounds completed so far in this config
		Params:    fl.WireFromTensors(res.Final.Params()),
	}
}

// Save writes the checkpoint with gob encoding.
func (c *Checkpoint) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	return &c, nil
}

// SaveFile writes the checkpoint to a file.
func (c *Checkpoint) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpointFile reads a checkpoint from a file.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	return LoadCheckpoint(bytes.NewReader(b))
}

// Resume continues a checkpointed run for `rounds` more federated rounds
// and returns the combined result. Privacy accounting covers the full
// history (checkpointed rounds plus the new ones).
func (c *Checkpoint) Resume(rounds int) (*Result, error) {
	cfg := c.Cfg
	spec, err := dataset.Get(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(spec)
	strat, err := cfg.Strategy()
	if err != nil {
		return nil, err
	}
	horizon := c.NextRound + rounds
	if cfg.PlannedRounds > horizon {
		horizon = cfg.PlannedRounds
	}
	// Rebuild the data and runtime exactly as core.Run would from the
	// checkpointed Config: the resumed segment must train on the same
	// partition, engines and aggregation rule as the segment it continues.
	part, err := cfg.Scenario.Partitioner()
	if err != nil {
		return nil, err
	}
	ds := dataset.NewPartitioned(spec, cfg.Seed, part)
	// The fault plan binds over the whole horizon, so a resumed run meets
	// exactly the failures the uninterrupted run would have met.
	faults, err := cfg.faultPlan(horizon)
	if err != nil {
		return nil, err
	}
	hist, err := fl.Run(fl.Config{
		Data:  ds,
		Model: spec.ModelSpec(),
		K:     cfg.K, Kt: cfg.Kt, Rounds: rounds,
		Round: fl.RoundConfig{
			BatchSize:    cfg.BatchSize,
			LocalIters:   cfg.LocalIters,
			LR:           cfg.LR,
			Engine:       cfg.Engine,
			NoiseEngine:  cfg.NoiseEngine,
			ConfigDigest: cfg.ConfigDigest,
		},
		Strategy:        strat,
		Aggregation:     cfg.Aggregation,
		Seed:            cfg.Seed,
		ValExamples:     cfg.ValExamples,
		EvalEvery:       cfg.EvalEvery,
		Parallelism:     cfg.Parallelism,
		InitialParams:   fl.TensorsFromWire(c.Params),
		StartRound:      c.NextRound,
		ScheduleHorizon: horizon,
		Runtime:         cfg.Runtime,
		DropoutRate:     cfg.DropoutRate,
		RoundDeadline:   cfg.RoundDeadline,
		MinQuorum:       cfg.MinQuorum,
		Faults:          faults,
	})
	if err != nil {
		return nil, err
	}
	// Account for the full composition: checkpointed + resumed rounds.
	full := cfg
	full.Rounds = c.NextRound + rounds
	annotateEpsilonOffset(full, spec, hist, c.NextRound, fl.PopulationOf(cfg.K, faults))
	res := &Result{History: hist, Spec: spec, Cfg: full}
	return res, nil
}

// annotateEpsilonOffset is annotateEpsilon for a resumed run: it first
// composes the checkpointed rounds, then annotates the new ones. The
// checkpoint records parameters, not per-round commit outcomes, so the
// checkpointed prefix is charged as committed — the sound (upper-bound)
// assumption for rounds whose effect is already in the resumed parameters.
func annotateEpsilonOffset(cfg Config, spec dataset.Spec, hist *fl.History, skip int, pop fl.Population) {
	tmp := fl.History{Rounds: make([]fl.RoundStats, skip+len(hist.Rounds))}
	for i := 0; i < skip; i++ {
		tmp.Rounds[i].Round = i
		tmp.Rounds[i].Committed = true
	}
	copy(tmp.Rounds[skip:], hist.Rounds)
	annotateEpsilon(cfg, spec, &tmp, pop)
	for i := range hist.Rounds {
		hist.Rounds[i].Epsilon = tmp.Rounds[skip+i].Epsilon
	}
}
