package core

import (
	"fmt"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/simnet"
	"fedcdp/internal/tensor"
)

// Hierarchical simnet deployment. The flat harness opens one session per
// cohort member against a single server — O(Kt) sessions on one listener,
// O(Kt) goroutines, and a root that must fold every update itself. This
// path splits the population into Config.Shards contiguous ranges, gives
// each range an edge aggregator host ("edge<s>") that folds its clients'
// updates into exact partial sums, and has every edge forward ONE
// weight-carrying partial to the root, which composes partials with the
// same exact arithmetic. Because the sums are exact (fl.ExactVec), the
// committed parameters are bit-identical to the flat exact fold for ANY
// shard count — topology is a pure scheduling choice, which the parity
// tests pin. Clients are driven by fl.ClientMux: virtual-client state is
// data, a fixed worker pool is the only execution, so K=100,000 costs
// O(MuxWorkers) goroutines and model workspaces.
//
// Fault-plan semantics carry over with one topology caveat (documented in
// DESIGN.md): partition clauses match the hosts that actually talk, so a
// clause naming "server" isolates EDGES from the root here, while client
// links now terminate at "edge<s>". Crash/drop/restart clauses are keyed
// by (round, client) / (round) and behave identically in both topologies.
func simnetEdgeAddr(s int) string { return fmt.Sprintf("edge%d", s) }

// treeShard is one edge's per-round working set.
type treeShard struct {
	index   int
	members []int // reachable cohort members in this shard
}

// shardOutcome is one edge goroutine's terminal state for a round.
type shardOutcome struct {
	shard  int
	folded int
	err    error
}

func runSimnetTree(cfg Config, spec dataset.Spec, strat fl.Strategy, ds *dataset.Dataset, plan *simnet.Plan) (*Result, error) {
	n := simnet.New(cfg.Seed, plan)
	pop := fl.PopulationOf(cfg.K, plan)
	global := nn.Build(spec.ModelSpec(), tensor.Split(cfg.Seed, 1))
	valN := cfg.ValExamples
	if valN <= 0 {
		valN = 500
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	valX, valY := ds.Validation(valN)
	topo := fl.Topology{K: cfg.K, Shards: cfg.Shards}
	edges := cfg.Shards
	if edges == 1 {
		// Shards=1 is the flat exact oracle: no edge tier, clients dial the
		// root directly and the root folds client updates itself.
		edges = 0
	}

	// deployment is the server tier: the root plus every edge, torn down
	// and rebuilt as one unit on a restart fault.
	type deployment struct {
		root     *fl.RoundServer
		rootAgg  *fl.ExactAggregator
		edgeSrvs []*fl.RoundServer
		edgeAggs []*fl.ExactAggregator
	}
	newDeployment := func() (*deployment, error) {
		d := &deployment{}
		ln, err := n.Listen(simnetServerAddr)
		if err != nil {
			return nil, err
		}
		d.root = fl.NewRoundServerOn(ln)
		d.root.Clock = n.Clock()
		d.root.Codec = cfg.Codec
		if d.rootAgg, err = fl.NewExact(cfg.Aggregation); err != nil {
			d.root.Close()
			return nil, err
		}
		for s := 0; s < edges; s++ {
			eln, err := n.Listen(simnetEdgeAddr(s))
			if err != nil {
				d.root.Close()
				for _, es := range d.edgeSrvs {
					es.Close()
				}
				return nil, err
			}
			srv := fl.NewRoundServerOn(eln)
			srv.Clock = n.Clock()
			srv.Codec = cfg.Codec
			agg, err := fl.NewExact(cfg.Aggregation)
			if err != nil {
				srv.Close()
				d.root.Close()
				for _, es := range d.edgeSrvs {
					es.Close()
				}
				return nil, err
			}
			d.edgeSrvs = append(d.edgeSrvs, srv)
			d.edgeAggs = append(d.edgeAggs, agg)
		}
		return d, nil
	}
	closeDeployment := func(d *deployment) {
		d.root.Close()
		for _, es := range d.edgeSrvs {
			es.Close()
		}
	}
	dep, err := newDeployment()
	if err != nil {
		return nil, err
	}
	defer func() { closeDeployment(dep) }()

	rcfg := fl.RoundConfig{
		BatchSize:    cfg.BatchSize,
		LocalIters:   cfg.LocalIters,
		LR:           cfg.LR,
		TotalRounds:  cfg.Rounds,
		Scenario:     cfg.Scenario,
		Engine:       cfg.Engine,
		NoiseEngine:  cfg.NoiseEngine,
		Precision:    cfg.Precision,
		ConfigDigest: cfg.ConfigDigest,
	}
	linkChaos := plan.MsgDropRate > 0 || plan.DupRate > 0

	// One mux for the whole run: virtual-client cursors and worker
	// workspaces persist across rounds. Per-task dialers bind each session
	// to its client's host name so the plan's link streams key correctly.
	mux := &fl.ClientMux{
		Spec:       spec.ModelSpec(),
		Data:       ds,
		Strat:      strat,
		Seed:       cfg.Seed,
		Opt:        fl.ClientOptions{Codec: cfg.Codec},
		Adversary:  plan,
		Workers:    cfg.MuxWorkers,
		Population: pop,
	}

	hist := &fl.History{Strategy: strat.Name()}
	for round := 0; round < cfg.Rounds; round++ {
		n.SetRound(round)
		if plan.RestartServer(round) {
			closeDeployment(dep)
			if dep, err = newDeployment(); err != nil {
				return nil, fmt.Errorf("core: simnet restart before round %d: %w", round, err)
			}
		}

		cohort := simnetCohort(cfg, pop, round)
		// Route each cohort member to its shard, excluding clients that
		// cannot reach their edge and shards whose edge cannot reach the
		// root — like the flat harness, the orchestrator (not any server)
		// is allowed to know who is unreachable.
		var active []treeShard
		var flatReachable []int
		if edges == 0 {
			for _, id := range cohort {
				if !plan.Partitioned(round, simnetClientHost(id), simnetServerAddr) {
					flatReachable = append(flatReachable, id)
				}
			}
		} else {
			byShard := map[int][]int{}
			for _, id := range cohort {
				s := topo.ShardOf(id)
				if plan.Partitioned(round, simnetEdgeAddr(s), simnetServerAddr) {
					continue
				}
				if plan.Partitioned(round, simnetClientHost(id), simnetEdgeAddr(s)) {
					continue
				}
				byShard[s] = append(byShard[s], id)
			}
			for s := 0; s < cfg.Shards; s++ {
				if members := byShard[s]; len(members) > 0 {
					active = append(active, treeShard{index: s, members: members})
				}
			}
		}

		rs := fl.RoundStats{Round: round, Active: pop.ActiveCount(round), Committed: 0 >= cfg.MinQuorum, Dropped: len(cohort)}
		wireBefore := n.BytesWritten()
		rootSessions := len(active)
		if edges == 0 {
			rootSessions = len(flatReachable)
		}
		if rootSessions > 0 {
			type rootOutcome struct {
				res fl.RoundResult
				err error
			}
			rootCh := make(chan rootOutcome, 1)
			rootAgg := dep.rootAgg
			go func() {
				res, rerr := dep.root.StreamRound(round, global.Params(), rcfg, rootAgg, fl.RoundOptions{
					Clients:     rootSessions,
					Deadline:    time.Hour,
					MinQuorum:   cfg.MinQuorum,
					QuorumCount: rootAgg.Count,
				})
				rootCh <- rootOutcome{res, rerr}
			}()

			shardCh := make(chan shardOutcome, len(active))
			var tasks []fl.MuxTask
			if edges == 0 {
				for _, id := range flatReachable {
					tasks = append(tasks, fl.MuxTask{
						ClientID: id,
						Addr:     simnetServerAddr,
						Dial:     n.Dialer(simnetClientHost(id)),
						Abandon:  plan.CrashClient(round, id) || plan.DropUpdate(round, id),
					})
				}
			} else {
				for _, sh := range active {
					addr := simnetEdgeAddr(sh.index)
					for _, id := range sh.members {
						tasks = append(tasks, fl.MuxTask{
							ClientID: id,
							Addr:     addr,
							Dial:     n.Dialer(simnetClientHost(id)),
							Abandon:  plan.CrashClient(round, id) || plan.DropUpdate(round, id),
						})
					}
					sh := sh
					go func() {
						srv, agg := dep.edgeSrvs[sh.index], dep.edgeAggs[sh.index]
						// MinQuorum 0: the edge never commits (EdgeFold's
						// Commit is a no-op); its round exists to fold.
						eres, eerr := srv.StreamRound(round, global.Params(), rcfg, fl.EdgeFold(agg), fl.RoundOptions{
							Clients:  len(sh.members),
							Deadline: time.Hour,
						})
						if eerr != nil {
							shardCh <- shardOutcome{shard: sh.index, err: eerr}
							// Still resolve the root's session slot: an empty
							// send keeps the round from hanging on a dead edge.
						}
						serr := fl.SendPartial(simnetServerAddr, sh.index, round, agg.TakePartial(),
							fl.ClientOptions{Dial: n.Dialer(simnetEdgeAddr(sh.index)), Codec: cfg.Codec})
						if eerr == nil {
							shardCh <- shardOutcome{shard: sh.index, folded: eres.Folded, err: serr}
						}
					}()
				}
			}

			results := mux.RunRound(tasks)
			for i, r := range results {
				if r.Err != nil && !tasks[i].Abandon && !linkChaos {
					return nil, fmt.Errorf("core: simnet round %d client %d: %w", round, r.ClientID, r.Err)
				}
			}
			for range active {
				o := <-shardCh
				if o.err != nil && !linkChaos {
					return nil, fmt.Errorf("core: simnet round %d shard %d: %w", round, o.shard, o.err)
				}
			}
			ro := <-rootCh
			if ro.err != nil {
				return nil, fmt.Errorf("core: simnet round %d: %w", round, ro.err)
			}
			rs.Clients = dep.rootAgg.Count()
			rs.Dropped = len(cohort) - rs.Clients
			rs.Committed = ro.res.Committed
		}
		rs.WireBytes = n.BytesWritten() - wireBefore
		if round%evalEvery == 0 || round == cfg.Rounds-1 {
			rs.Accuracy = fl.Evaluate(global, valX, valY)
			rs.Evaluated = true
		}
		hist.Rounds = append(hist.Rounds, rs)
	}
	hist.Final = global
	ledger := annotateEpsilon(cfg, spec, hist, pop)
	return &Result{History: hist, Spec: spec, Cfg: cfg, Ledger: ledger}, nil
}
