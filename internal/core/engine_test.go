package core

import (
	"math"
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// runClientUpdate executes one client's local training for one round under
// the given engine and returns its update ΔW. The environment (model init,
// data shard, RNG stream) is reconstructed identically for every call.
func runClientUpdate(t *testing.T, dsName string, strat fl.Strategy, engine string, iters int) ([]*tensor.Tensor, fl.ClientStats) {
	t.Helper()
	spec, err := dataset.Get(dsName)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 7)
	model := nn.Build(spec.ModelSpec(), tensor.Split(7, 1))
	arena := tensor.NewArena()
	model.UseArena(arena)
	env := &fl.ClientEnv{
		ClientID: 3,
		Round:    0,
		Model:    model,
		Data:     ds.Client(3),
		RNG:      tensor.Split(7, 4, 0, 3),
		Cfg: fl.RoundConfig{
			BatchSize: spec.BatchSize, LocalIters: iters, LR: spec.LR,
			TotalRounds: 5, Engine: engine,
		},
		Arena: arena,
	}
	delta, stats := strat.ClientUpdate(env)
	return delta, stats
}

// checkEngineParity pins the batched engine to the per-example reference on
// one full client update: the resulting ΔW must agree to 1e-9 and the
// first-iteration gradient-norm statistics must match.
func checkEngineParity(t *testing.T, dsName string, strat fl.Strategy, iters int) {
	t.Helper()
	ref, refStats := runClientUpdate(t, dsName, strat, fl.EngineReference, iters)
	got, gotStats := runClientUpdate(t, dsName, strat, fl.EngineBatched, iters)
	if len(ref) != len(got) {
		t.Fatalf("update tensor counts differ: %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		for j, v := range ref[i].Data() {
			if d := math.Abs(v - got[i].Data()[j]); d > 1e-9 {
				t.Fatalf("tensor %d element %d: engines differ by %v", i, j, d)
			}
		}
	}
	if d := math.Abs(refStats.MeanGradNorm - gotStats.MeanGradNorm); d > 1e-9 {
		t.Fatalf("MeanGradNorm differs by %v (%v vs %v)", d, refStats.MeanGradNorm, gotStats.MeanGradNorm)
	}
}

func TestEngineParityNonPrivateTabular(t *testing.T) {
	checkEngineParity(t, "cancer", NonPrivate{}, 4)
}

func TestEngineParityNonPrivateCNN(t *testing.T) {
	checkEngineParity(t, "mnist", NonPrivate{}, 3)
}

func TestEngineParityFedCDP(t *testing.T) {
	// Per-example sanitization consumes the client RNG stream example by
	// example; parity therefore also proves the engines draw identical
	// noise in identical order.
	checkEngineParity(t, "mnist", NewFedCDP(4, 0.01), 3)
}

func TestEngineParityFedCDPDecay(t *testing.T) {
	checkEngineParity(t, "cancer", NewFedCDPDecay(6, 2, 0.01), 3)
}

func TestEngineConfigValidation(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	_, err := fl.Run(fl.Config{
		Data: dataset.New(spec, 1), Model: spec.ModelSpec(),
		K: 2, Kt: 1, Rounds: 1,
		Round:    fl.RoundConfig{BatchSize: 2, LocalIters: 1, LR: 0.1, Engine: "vectorized"},
		Strategy: NonPrivate{},
	})
	if err == nil {
		t.Fatal("fl.Run must reject an unknown engine name")
	}
}

// TestPrecisionEndToEnd runs the same seeded experiment under the fp64
// reference oracle and the fp32 bulk GEMM path: the run must complete,
// track the oracle's final accuracy closely, and reject unknown widths.
// (Per-kernel tolerance parity is pinned in internal/nn/precision_test.go;
// this is the whole-system check through core.Run.)
func TestPrecisionEndToEnd(t *testing.T) {
	run := func(prec string) float64 {
		res, err := Run(Config{
			Dataset: "cancer", Method: MethodNonPrivate,
			K: 4, Kt: 2, Rounds: 3, LocalIters: 2,
			Seed: 11, ValExamples: 60, EvalEvery: 1,
			Precision: prec,
		})
		if err != nil {
			t.Fatal(err)
		}
		acc, _ := res.FinalAccuracy()
		return acc
	}
	fp64 := run(tensor.PrecisionFP64)
	fp32 := run(tensor.PrecisionFP32)
	if math.Abs(fp64-fp32) > 0.05 {
		t.Fatalf("fp32 accuracy %v strayed from fp64 oracle %v", fp32, fp64)
	}

	if _, err := Run(Config{Dataset: "cancer", K: 2, Kt: 1, Rounds: 1, Precision: "fp16"}); err == nil {
		t.Fatal("unknown precision must be rejected")
	}
}
