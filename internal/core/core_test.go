package core

import (
	"math"
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// testEnv builds a small ClientEnv on the cancer benchmark.
func testEnv(t *testing.T, seed int64) *fl.ClientEnv {
	t.Helper()
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, seed)
	m := nn.Build(spec.ModelSpec(), tensor.Split(seed, 1))
	return &fl.ClientEnv{
		ClientID: 0,
		Round:    0,
		Model:    m,
		Data:     ds.Client(0),
		RNG:      tensor.Split(seed, 4, 0, 0),
		Cfg:      fl.RoundConfig{BatchSize: 4, LocalIters: 3, LR: 0.1, TotalRounds: 10},
	}
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]fl.Strategy{
		"non-private":      NonPrivate{},
		"fed-sdp":          FedSDP{C: 4, Sigma: 6},
		"fed-sdp(server)":  FedSDP{C: 4, Sigma: 6, AtServer: true},
		"fed-cdp":          NewFedCDP(4, 6),
		"fed-cdp(decay)":   NewFedCDPDecay(6, 2, 6),
		"dssgd":            DSSGD{ShareFraction: 0.1},
		"dssgd+compress":   Compressed{Inner: DSSGD{ShareFraction: 0.1}, PruneRatio: 0.3},
		"fed-cdp+compress": Compressed{Inner: NewFedCDP(4, 6), PruneRatio: 0.3},
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestNonPrivateProducesUpdate(t *testing.T) {
	env := testEnv(t, 1)
	delta, stats := NonPrivate{}.ClientUpdate(env)
	if tensor.GroupL2Norm(delta) == 0 {
		t.Fatal("non-private update must be non-zero")
	}
	if stats.Iters != 3 {
		t.Fatalf("stats.Iters = %d, want 3", stats.Iters)
	}
	if stats.MeanGradNorm <= 0 {
		t.Fatal("stats must record gradient norms")
	}
}

func TestFedCDPNoiseChangesUpdate(t *testing.T) {
	// Same seed, non-private vs Fed-CDP must differ (noise applied).
	d1, _ := NonPrivate{}.ClientUpdate(testEnv(t, 2))
	d2, _ := NewFedCDP(4, 6).ClientUpdate(testEnv(t, 2))
	same := true
	for i := range d1 {
		if !d1[i].Equal(d2[i], 1e-9) {
			same = false
		}
	}
	if same {
		t.Fatal("Fed-CDP update identical to non-private — no sanitization applied")
	}
}

func TestFedCDPZeroNoiseStillClips(t *testing.T) {
	// With σ=0 and a tiny clipping bound, the Fed-CDP update must be much
	// smaller than the non-private one.
	dNP, _ := NonPrivate{}.ClientUpdate(testEnv(t, 3))
	dCDP, _ := FedCDP{Clip: dp.FixedClip{C: 1e-6}, Sigma: 0}.ClientUpdate(testEnv(t, 3))
	if tensor.GroupL2Norm(dCDP) > 1e-3*tensor.GroupL2Norm(dNP) {
		t.Fatalf("clipping had no effect: %v vs %v", tensor.GroupL2Norm(dCDP), tensor.GroupL2Norm(dNP))
	}
}

func TestFedCDPDeterministicPerSeed(t *testing.T) {
	d1, _ := NewFedCDP(4, 6).ClientUpdate(testEnv(t, 4))
	d2, _ := NewFedCDP(4, 6).ClientUpdate(testEnv(t, 4))
	for i := range d1 {
		if !d1[i].Equal(d2[i], 0) {
			t.Fatal("Fed-CDP must be deterministic for a fixed env seed")
		}
	}
}

func TestFedCDPDecayUsesSchedule(t *testing.T) {
	// At round 0 of 10 with schedule 6→2, bound is 6; at the last round it
	// is 2. Verify via σ=0 clipping on a synthetic large-gradient env.
	s := NewFedCDPDecay(6, 2, 0)
	env0 := testEnv(t, 5)
	envLast := testEnv(t, 5)
	envLast.Round = 9
	d0, _ := s.ClientUpdate(env0)
	dLast, _ := s.ClientUpdate(envLast)
	// Not a strict guarantee for any data, but with equal seeds the only
	// difference is the clipping bound; the last-round update cannot exceed
	// the first-round one by the clip ratio argument.
	if tensor.GroupL2Norm(dLast) > tensor.GroupL2Norm(d0)*1.01 {
		t.Fatalf("decayed bound produced larger update: %v > %v",
			tensor.GroupL2Norm(dLast), tensor.GroupL2Norm(d0))
	}
}

func TestFedSDPClientSanitizesUpdate(t *testing.T) {
	// With σ=0 and a tiny C, the shared update must be clipped per layer.
	s := FedSDP{C: 0.001, Sigma: 0}
	delta, _ := s.ClientUpdate(testEnv(t, 6))
	for i, d := range delta {
		if d.L2Norm() > 0.001*(1+1e-9) {
			t.Fatalf("layer %d norm %v exceeds Fed-SDP clip", i, d.L2Norm())
		}
	}
}

func TestFedSDPServerLeavesClientUpdateRaw(t *testing.T) {
	sServer := FedSDP{C: 4, Sigma: 6, AtServer: true}
	np := NonPrivate{}
	d1, _ := sServer.ClientUpdate(testEnv(t, 7))
	d2, _ := np.ClientUpdate(testEnv(t, 7))
	for i := range d1 {
		if !d1[i].Equal(d2[i], 0) {
			t.Fatal("server-side Fed-SDP must not sanitize at the client")
		}
	}
	// But ServerSanitize perturbs.
	updates := [][]*tensor.Tensor{tensor.CloneAll(d1)}
	sServer.ServerSanitize(0, updates, tensor.NewRNG(1))
	changed := false
	for i := range d1 {
		if !updates[0][i].Equal(d1[i], 1e-12) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("ServerSanitize must modify updates")
	}
}

func TestFedSDPClientServerSanitizeNoop(t *testing.T) {
	s := FedSDP{C: 4, Sigma: 6} // client-side
	u := [][]*tensor.Tensor{{tensor.FromSlice([]float64{1, 2}, 2)}}
	s.ServerSanitize(0, u, tensor.NewRNG(1))
	if u[0][0].At(0) != 1 {
		t.Fatal("client-side Fed-SDP must not sanitize at the server")
	}
}

func TestDSSGDSharesFraction(t *testing.T) {
	s := DSSGD{ShareFraction: 0.1}
	delta, _ := s.ClientUpdate(testEnv(t, 8))
	var nonzero, total int
	for _, d := range delta {
		for _, v := range d.Data() {
			if v != 0 {
				nonzero++
			}
			total++
		}
	}
	frac := float64(nonzero) / float64(total)
	if frac > 0.12 {
		t.Fatalf("DSSGD shared %.3f of entries, want <= ~0.1", frac)
	}
	if nonzero == 0 {
		t.Fatal("DSSGD must share something")
	}
}

func TestCompressedWrapper(t *testing.T) {
	inner := NonPrivate{}
	c := Compressed{Inner: inner, PruneRatio: 0.9}
	dRaw, _ := inner.ClientUpdate(testEnv(t, 9))
	dCmp, _ := c.ClientUpdate(testEnv(t, 9))
	var rawNZ, cmpNZ int
	for i := range dRaw {
		for _, v := range dRaw[i].Data() {
			if v != 0 {
				rawNZ++
			}
		}
		for _, v := range dCmp[i].Data() {
			if v != 0 {
				cmpNZ++
			}
		}
	}
	if cmpNZ >= rawNZ {
		t.Fatalf("compression kept %d of %d entries", cmpNZ, rawNZ)
	}
}

func TestConfigStrategyResolution(t *testing.T) {
	for _, m := range Methods() {
		cfg := Config{Method: m, Clip: 4, Sigma: 6}
		if _, err := cfg.Strategy(); err != nil {
			t.Errorf("method %q: %v", m, err)
		}
	}
	if _, err := (Config{Method: "pate"}).Strategy(); err == nil {
		t.Fatal("expected error for unknown method")
	}
	// Empty method defaults to non-private.
	s, err := (Config{}).Strategy()
	if err != nil || s.Name() != "non-private" {
		t.Fatalf("empty method -> %v, %v", s, err)
	}
	// Compression wraps.
	s, err = (Config{Method: MethodFedCDP, CompressRatio: 0.3}).Strategy()
	if err != nil || s.Name() != "fed-cdp+compress" {
		t.Fatalf("compressed strategy = %v, %v", s, err)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if _, err := Run(Config{Dataset: "imagenet"}); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestRunEndToEndNonPrivate(t *testing.T) {
	res, err := Run(Config{
		Dataset: "cancer", Method: MethodNonPrivate,
		K: 8, Kt: 4, Rounds: 3, LocalIters: 10,
		ValExamples: 60, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(res.Rounds))
	}
	if acc, ok := res.FinalAccuracy(); !ok || acc < 0.5 {
		t.Fatalf("cancer non-private accuracy %v (ok=%v), want > 0.5 after 3 rounds", acc, ok)
	}
	if res.FinalEpsilon() != 0 {
		t.Fatal("non-private run must not report privacy spending")
	}
}

func TestRunEndToEndFedCDPAccounting(t *testing.T) {
	res, err := Run(Config{
		Dataset: "cancer", Method: MethodFedCDP,
		K: 8, Kt: 4, Rounds: 3, LocalIters: 5,
		ValExamples: 40, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, r := range res.Rounds {
		if r.Epsilon <= prev {
			t.Fatalf("round %d: ε %v not increasing from %v", i, r.Epsilon, prev)
		}
		prev = r.Epsilon
	}
}

func TestRunFedSDPEpsilonIndependentOfL(t *testing.T) {
	run := func(L int) float64 {
		res, err := Run(Config{
			Dataset: "cancer", Method: MethodFedSDP,
			K: 8, Kt: 4, Rounds: 2, LocalIters: L,
			ValExamples: 20, Seed: 1, EvalEvery: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalEpsilon()
	}
	if e1, e5 := run(1), run(5); e1 != e5 {
		t.Fatalf("Fed-SDP ε depends on L: %v vs %v", e1, e5)
	}
}

func TestRunFedCDPEpsilonGrowsWithL(t *testing.T) {
	run := func(L int) float64 {
		res, err := Run(Config{
			Dataset: "cancer", Method: MethodFedCDP,
			K: 8, Kt: 4, Rounds: 2, LocalIters: L,
			ValExamples: 20, Seed: 1, EvalEvery: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalEpsilon()
	}
	if e1, e5 := run(1), run(5); e5 <= e1 {
		t.Fatalf("Fed-CDP ε must grow with L: ε(1)=%v ε(5)=%v", e1, e5)
	}
}

func TestWithDefaults(t *testing.T) {
	spec, _ := dataset.Get("mnist")
	c := Config{Dataset: "mnist"}.withDefaults(spec)
	if c.K != 100 || c.Kt != 10 {
		t.Fatalf("defaults K=%d Kt=%d", c.K, c.Kt)
	}
	if c.Rounds != spec.Rounds || c.BatchSize != spec.BatchSize || c.LocalIters != spec.LocalIters {
		t.Fatal("defaults must inherit benchmark spec")
	}
	if c.Clip != 4 || c.Sigma != 6 || c.Delta != 1e-5 {
		t.Fatalf("privacy defaults C=%v σ=%v δ=%v", c.Clip, c.Sigma, c.Delta)
	}
	if c.DecayFrom != 6 || c.DecayTo != 2 {
		t.Fatal("decay defaults must be 6→2")
	}
}

func TestLeakPerExampleRawForNonCDP(t *testing.T) {
	env := testEnv(t, 10)
	x, y := env.Data.Get(0)
	raw, err := LeakPerExample(env.Model, x, y, Config{Method: MethodNonPrivate}, 0, 10, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	_, want := env.Model.ExampleGradient(x, y)
	for i := range raw {
		if !raw[i].Equal(want[i], 0) {
			t.Fatal("type-2 leak under non-private must be the raw gradient")
		}
	}
	// Fed-SDP also leaks raw per-example gradients (the paper's key point).
	sdp, err := LeakPerExample(env.Model, x, y, Config{Method: MethodFedSDP, Clip: 4, Sigma: 6}, 0, 10, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sdp {
		if !sdp[i].Equal(want[i], 0) {
			t.Fatal("type-2 leak under Fed-SDP must be the raw per-example gradient")
		}
	}
}

func TestLeakPerExampleSanitizedForCDP(t *testing.T) {
	env := testEnv(t, 11)
	x, y := env.Data.Get(0)
	_, raw := env.Model.ExampleGradient(x, y)
	got, err := LeakPerExample(env.Model, x, y, Config{Method: MethodFedCDP, Clip: 4, Sigma: 6}, 0, 10, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range got {
		if !got[i].Equal(raw[i], 1e-9) {
			same = false
		}
	}
	if same {
		t.Fatal("type-2 leak under Fed-CDP must be sanitized")
	}
	// Decay variant also sanitizes.
	got2, err := LeakPerExample(env.Model, x, y, Config{Method: MethodFedCDPDecay}, 5, 10, tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	same = true
	for i := range got2 {
		if !got2[i].Equal(raw[i], 1e-9) {
			same = false
		}
	}
	if same {
		t.Fatal("type-2 leak under Fed-CDP(decay) must be sanitized")
	}
}

func TestLeakPerExampleUnknownMethod(t *testing.T) {
	env := testEnv(t, 12)
	x, y := env.Data.Get(0)
	if _, err := LeakPerExample(env.Model, x, y, Config{Method: "bogus"}, 0, 1, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestLeakRoundUpdateViews(t *testing.T) {
	// Type-1 (client view) of server-side Fed-SDP is raw; type-0 (server
	// view) is sanitized.
	cfgSrv := Config{Method: MethodFedSDPSrv, Clip: 4, Sigma: 6}
	type1, err := LeakRoundUpdate(testEnv(t, 13), cfgSrv, false, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := NonPrivate{}.ClientUpdate(testEnv(t, 13))
	for i := range type1 {
		if !type1[i].Equal(raw[i], 0) {
			t.Fatal("type-1 view of server-side Fed-SDP must be raw")
		}
	}
	type0, err := LeakRoundUpdate(testEnv(t, 13), cfgSrv, true, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range type0 {
		if !type0[i].Equal(raw[i], 1e-9) {
			same = false
		}
	}
	if same {
		t.Fatal("type-0 view of server-side Fed-SDP must be sanitized")
	}
}

func TestLeakRoundUpdateUnknownMethod(t *testing.T) {
	if _, err := LeakRoundUpdate(testEnv(t, 14), Config{Method: "bogus"}, false, tensor.NewRNG(1)); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestGradNormDecaysOverTraining(t *testing.T) {
	// Figure 3's qualitative shape: the mean per-example gradient norm
	// decreases as federated training progresses.
	res, err := Run(Config{
		Dataset: "cancer", Method: MethodNonPrivate,
		K: 8, Kt: 8, Rounds: 6, LocalIters: 10,
		ValExamples: 20, Seed: 3, EvalEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	series := res.GradNormSeries()
	first, last := series[0], series[len(series)-1]
	if last >= first {
		t.Fatalf("gradient norm did not decay: %v -> %v", first, last)
	}
}

func TestOrDefault(t *testing.T) {
	if orDefault(0, 4) != 4 || orDefault(2, 4) != 2 {
		t.Fatal("orDefault broken")
	}
}

func TestFedCDPSmallerUpdateNormThanNonPrivate(t *testing.T) {
	// Sanity: with clipping at C=4 per example and noise averaged over the
	// batch, the Fed-CDP update is bounded; compare against a run with a
	// huge learning-rate-free bound.
	dNP, _ := NonPrivate{}.ClientUpdate(testEnv(t, 15))
	dCDP, _ := FedCDP{Clip: dp.FixedClip{C: 0.5}, Sigma: 0}.ClientUpdate(testEnv(t, 15))
	if math.IsNaN(tensor.GroupL2Norm(dCDP)) || math.IsNaN(tensor.GroupL2Norm(dNP)) {
		t.Fatal("NaN update norms")
	}
}
