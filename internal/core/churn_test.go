package core

import (
	"fmt"
	"runtime"
	"testing"

	"fedcdp/internal/accountant"
	"fedcdp/internal/fl"
	"fedcdp/internal/simnet"
)

// The open-world population engine's standing gate: seeded churn schedules
// must replay bit-identically — final-model digest, per-round participation
// accounting, and the per-user ε ledger — across invocations and
// GOMAXPROCS in every runtime, and the accounting bugs this PR fixes must
// stay fixed (uncommitted rounds charge nothing; ledgers charge realized
// participation only; static populations collapse to the global
// accountant).

// churnBaseConfig is the shared open-world run: six rounds so the join at
// round 2 and the departures at round 4 both have a before and an after,
// plus background churn so clients also leave AND return.
func churnBaseConfig() Config {
	return Config{
		Dataset: "cancer",
		Method:  MethodFedCDP,
		K:       10, Kt: 4, Rounds: 6,
		LocalIters:  2,
		Sigma:       0.06,
		Seed:        42,
		ValExamples: 40,
		EvalEvery:   1,
		MinQuorum:   1,
		Population:  "join=2@2,leave=2@4,churn=0.15",
	}
}

// ledgerFingerprint renders a ledger's full per-user state (ids, steps, ε)
// as a comparable string; nil ledgers fingerprint as "none".
func ledgerFingerprint(led *accountant.Ledger) string {
	if led == nil {
		return "none"
	}
	s := ""
	for _, id := range led.Users() {
		eps, _, _ := led.UserEpsilon(id)
		s += fmt.Sprintf("%d:%d:%x;", id, led.Steps(id), eps)
	}
	return s
}

// roundFingerprint renders the deterministic per-round accounting: active
// population, folded, dropped, commit bit and ε.
func roundFingerprint(res *Result) string {
	s := ""
	for _, r := range res.Rounds {
		s += fmt.Sprintf("%d/%d/%d/%v/%x;", r.Active, r.Clients, r.Dropped, r.Committed, r.Epsilon)
	}
	return s
}

// TestChurnReplayInProcess: the streaming and barrier runtimes replay a
// churn schedule bit-identically across invocations, parallelism settings
// and GOMAXPROCS — and agree with each other on the committed model.
func TestChurnReplayInProcess(t *testing.T) {
	take := func(runtime_ string, parallelism, maxprocs int) (uint64, string, string) {
		if maxprocs > 0 {
			old := runtime.GOMAXPROCS(maxprocs)
			defer runtime.GOMAXPROCS(old)
		}
		cfg := churnBaseConfig()
		cfg.Runtime = runtime_
		cfg.Parallelism = parallelism
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return digestTensors(res.Final.Params()), roundFingerprint(res), ledgerFingerprint(res.Ledger)
	}
	d1, r1, l1 := take(fl.RuntimeStreaming, 0, 0)
	if l1 == "none" {
		t.Fatal("open-world run produced no per-user ledger")
	}
	for _, v := range []struct {
		name                  string
		parallelism, maxprocs int
	}{
		{"replay", 0, 0},
		{"parallelism=1", 1, 0},
		{"parallelism=8", 8, 0},
		{"GOMAXPROCS=2", 0, 2},
	} {
		d, r, l := take(fl.RuntimeStreaming, v.parallelism, v.maxprocs)
		if d != d1 || r != r1 || l != l1 {
			t.Fatalf("streaming %s diverges: digest %x/%x rounds %v stats %v ledger %v",
				v.name, d, d1, r == r1, l == l1, l)
		}
	}
	db, rb, lb := take(fl.RuntimeBarrier, 0, 0)
	if db != d1 {
		t.Fatalf("barrier digest %x diverges from streaming %x under churn", db, d1)
	}
	if rb != r1 || lb != l1 {
		t.Fatal("barrier round accounting or ledger diverges from streaming under churn")
	}
}

// TestChurnReplaySimnet: the RPC deployment runtimes. The flat harness
// folds in arrival order (float sums — params are scheduling-dependent by
// design), so it pins the deterministic surface: cohorts, participation
// accounting, wire bytes and the ledger. The hierarchical mux path folds
// exactly and must replay the committed model bit-for-bit too.
func TestChurnReplaySimnet(t *testing.T) {
	if testing.Short() {
		t.Skip("simnet deployments")
	}
	take := func(shards, maxprocs int) (uint64, string, string, int64) {
		if maxprocs > 0 {
			old := runtime.GOMAXPROCS(maxprocs)
			defer runtime.GOMAXPROCS(old)
		}
		cfg := churnBaseConfig()
		cfg.Shards = shards
		// Fixed-width frames: the flat fold's params are arrival-order
		// floats, and the text codec's variable-width rendering would let
		// that wobble leak into the broadcast byte count.
		cfg.Codec = fl.CodecBinary
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wire int64
		for _, r := range res.Rounds {
			wire += r.WireBytes
		}
		return digestTensors(res.Final.Params()), roundFingerprint(res), ledgerFingerprint(res.Ledger), wire
	}
	// Flat RPC deployment: deterministic accounting, ledger and wire bytes.
	_, r1, l1, w1 := take(0, 0)
	_, r2, l2, w2 := take(0, 2)
	if r1 != r2 || l1 != l2 || w1 != w2 {
		t.Fatalf("flat simnet churn run not reproducible: rounds %v ledger %v wire %d/%d",
			r1 == r2, l1 == l2, w1, w2)
	}
	if l1 == "none" {
		t.Fatal("flat simnet open-world run produced no ledger")
	}
	// Hierarchical mux deployment: everything above plus a bit-exact model.
	dt1, rt1, lt1, wt1 := take(2, 0)
	dt2, rt2, lt2, wt2 := take(2, 2)
	if dt1 != dt2 || rt1 != rt2 || lt1 != lt2 || wt1 != wt2 {
		t.Fatalf("tree simnet churn run not reproducible: digest %x/%x rounds %v ledger %v wire %d/%d",
			dt1, dt2, rt1 == rt2, lt1 == lt2, wt1, wt2)
	}
	// The in-process and deployed runtimes agree on the population they saw
	// and on every user's realized privacy charge.
	cfg := churnBaseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ledgerFingerprint(res.Ledger); got != l1 || got != lt1 {
		t.Fatal("runtimes disagree on the per-user ε ledger under one seed")
	}
	inproc := roundFingerprint(res)
	if inproc != r1 || inproc != rt1 {
		t.Fatalf("runtimes disagree on participation accounting:\nin-process %s\nflat       %s\ntree       %s", inproc, r1, rt1)
	}
}

// TestChurnStaticPopulationParity: population clauses that bind to a
// closed world (churn=0, no joins/leaves) must change nothing — same
// committed model as the plain run, no ledger, identical global ε. This is
// the static-parity acceptance: Ledger-based accounting may not perturb a
// single closed-world golden.
func TestChurnStaticPopulationParity(t *testing.T) {
	plain := churnBaseConfig()
	plain.Population = ""
	static := churnBaseConfig()
	static.Population = "churn=0.0"
	rp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Ledger != nil || rs.Ledger != nil {
		t.Fatal("closed-world runs must not build a per-user ledger")
	}
	if digestTensors(rp.Final.Params()) != digestTensors(rs.Final.Params()) {
		t.Fatal("churn=0.0 perturbed a closed-world run")
	}
	if roundFingerprint(rp) != roundFingerprint(rs) {
		t.Fatal("churn=0.0 perturbed closed-world accounting")
	}
	for _, r := range rp.Rounds {
		if r.Active != plain.K {
			t.Fatalf("closed-world round reports %d active, want K=%d", r.Active, plain.K)
		}
	}
}

// TestEpsilonChargesOnlyCommittedRounds pins the ε over-charge fix: the
// accountant composes the sampled Gaussian mechanism only for rounds that
// actually committed. Under drop=0.2 with a full-cohort quorum some rounds
// miss quorum and publish nothing — the old unconditional charge reported
// the clean run's ε for them.
func TestEpsilonChargesOnlyCommittedRounds(t *testing.T) {
	cfg := Config{
		Dataset: "cancer",
		Method:  MethodFedCDP,
		K:       10, Kt: 4, Rounds: 8,
		LocalIters:  2,
		Sigma:       0.06,
		Seed:        42,
		ValExamples: 40,
		EvalEvery:   1,
		MinQuorum:   4, // any dropped update fails the round
		Faults:      "drop=0.2",
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	committed, uncommitted := 0, 0
	for _, r := range res.Rounds {
		if r.Committed {
			committed++
		} else {
			uncommitted++
		}
	}
	if committed == 0 || uncommitted == 0 {
		t.Fatalf("plan too gentle or too harsh: %d committed / %d uncommitted — the regression needs both", committed, uncommitted)
	}
	// Reconstruct the charge sequence: exactly one composition block per
	// committed round, nothing for uncommitted ones.
	q := roundSamplingRate(res.Cfg, res.Spec, res.Cfg.K)
	acc := accountant.New(res.Cfg.Delta)
	for i, r := range res.Rounds {
		if r.Committed {
			acc.Accumulate(q, res.Cfg.Sigma, res.Cfg.LocalIters)
		}
		want, _ := acc.Epsilon()
		if r.Epsilon != want {
			t.Fatalf("round %d: ε %v, want %v (charge realized participation only)", i, r.Epsilon, want)
		}
	}
	// The faulted run must spend strictly less than the clean horizon.
	clean := cfg
	clean.Faults = ""
	clean.MinQuorum = 0
	cres, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalEpsilon() >= cres.FinalEpsilon() {
		t.Fatalf("faulted ε %v not below clean ε %v — uncommitted rounds were charged", res.FinalEpsilon(), cres.FinalEpsilon())
	}
}

// TestChurnLedgerMatchesRealizedParticipation: every user's ledger steps
// equal LocalIters × (committed rounds it was active in), the published
// per-round ε is the ledger max, and absent users are never charged.
func TestChurnLedgerMatchesRealizedParticipation(t *testing.T) {
	cfg := churnBaseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger == nil {
		t.Fatal("open-world run produced no ledger")
	}
	plan, err := simnet.ParsePlan(cfg.Population)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = plan.Bind(cfg.Seed, cfg.Rounds, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	pop := fl.PopulationOf(cfg.K, plan)
	sawSpread := false
	for id := 0; id < cfg.K; id++ {
		exposed := 0
		for _, r := range res.Rounds {
			if r.Committed && pop.Active(r.Round, id) {
				exposed++
			}
		}
		if got, want := res.Ledger.Steps(id), exposed*res.Cfg.LocalIters; got != want {
			t.Fatalf("user %d charged %d steps, want %d (%d committed active rounds × L=%d)",
				id, got, want, exposed, res.Cfg.LocalIters)
		}
	}
	maxEps, _, _ := res.Ledger.MaxEpsilon()
	if maxEps != res.FinalEpsilon() {
		t.Fatalf("published ε %v is not the ledger max %v", res.FinalEpsilon(), maxEps)
	}
	minEps, _ := res.Ledger.MinEpsilon()
	if minEps < maxEps {
		sawSpread = true
	}
	if !sawSpread {
		t.Fatal("churn schedule induced no per-user ε spread — the ledger is degenerate")
	}
}
