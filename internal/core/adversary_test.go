package core

import (
	"runtime"
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

// Whole-system acceptance tests for the adversarial-client axis: the
// issue's pinned attack cell — byzantine=2:signflip attackers, the
// coordinate-median defense, Fed-CDP noise and dirichlet(0.1) label skew —
// must be bit-reproducible (identical final-model FNV digest and ε) across
// invocations, Parallelism, and GOMAXPROCS, in-process and over the
// simnet RPC fabric.

// attackAcceptanceConfig is the pinned attack×defense acceptance cell.
func attackAcceptanceConfig() Config {
	return Config{
		Dataset: "cancer",
		Method:  MethodFedCDP,
		K:       12, Kt: 6, Rounds: 4,
		LocalIters:  3,
		Sigma:       0.06,
		Seed:        42,
		ValExamples: 60,
		EvalEvery:   1,
		Runtime:     fl.RuntimeStreaming,
		Scenario:    dataset.Scenario{Name: "dirichlet", Alpha: 0.1},
		Faults:      "byzantine=2:signflip",
		Aggregation: fl.AggMedian,
		MinQuorum:   1,
	}
}

func TestAttackedRunBitReproducible(t *testing.T) {
	type fingerprint struct {
		digest  uint64
		epsilon float64
		acc     []float64
	}
	take := func(par, maxprocs int) fingerprint {
		t.Helper()
		if maxprocs > 0 {
			old := runtime.GOMAXPROCS(maxprocs)
			defer runtime.GOMAXPROCS(old)
		}
		cfg := attackAcceptanceConfig()
		cfg.Parallelism = par
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint{digest: digestTensors(res.Final.Params()), epsilon: res.FinalEpsilon()}
		for _, r := range res.Rounds {
			fp.acc = append(fp.acc, r.Accuracy)
		}
		return fp
	}

	base := take(0, 0)
	for _, alt := range []fingerprint{take(0, 0), take(1, 0), take(8, 0), take(4, 2)} {
		if alt.digest != base.digest {
			t.Fatalf("attacked-run digest %x differs from %x across scheduling settings", alt.digest, base.digest)
		}
		if alt.epsilon != base.epsilon {
			t.Fatalf("attacked-run ε %v differs from %v", alt.epsilon, base.epsilon)
		}
		for i := range base.acc {
			if alt.acc[i] != base.acc[i] {
				t.Fatalf("round %d accuracy differs across scheduling settings", i)
			}
		}
	}
	if base.epsilon <= 0 {
		t.Fatalf("Fed-CDP attacked run must still account privacy, ε = %v", base.epsilon)
	}
}

// TestAttackEpsilonIndependentOfAdversary pins the accounting invariant the
// attack matrix asserts per cell: ε is a function of the sampling schedule
// and noise, never of who attacked or how the server defended.
func TestAttackEpsilonIndependentOfAdversary(t *testing.T) {
	eps := func(faults, agg string) float64 {
		cfg := attackAcceptanceConfig()
		cfg.Faults = faults
		cfg.Aggregation = agg
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalEpsilon()
	}
	base := eps("", "")
	for _, tc := range []struct{ faults, agg string }{
		{"byzantine=2:signflip", fl.AggMedian},
		{"byzantine=2:scale:25", "trimmed:0.34"},
		{"poison=2:1", "krum:2"},
	} {
		if got := eps(tc.faults, tc.agg); got != base {
			t.Fatalf("ε under %s/%s = %v, honest %v — accounting leaked the adversary", tc.faults, tc.agg, got, base)
		}
	}
}

// TestRunSimnetByzantineReproducible deploys the pinned attack cell over
// the RPC fabric, where folds happen in arrival order: robust statistics
// are pure functions of the update multiset, so even this path is
// bit-reproducible — and it must agree with itself run over run.
func TestRunSimnetByzantineReproducible(t *testing.T) {
	take := func() (uint64, []int) {
		cfg := simnetBaseConfig()
		cfg.Faults = "byzantine=2:signflip,poison=1:0.5"
		cfg.Aggregation = fl.AggMedian
		res, err := RunSimnet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var clients []int
		for _, r := range res.Rounds {
			clients = append(clients, r.Clients)
		}
		return digestTensors(res.Final.Params()), clients
	}
	d1, c1 := take()
	d2, c2 := take()
	if d1 != d2 {
		t.Fatalf("simnet byzantine digests differ: %x vs %x", d1, d2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("round %d folded %d vs %d", i, c1[i], c2[i])
		}
	}
}

// TestRobustAggRejectedOnTree pins the topology guard at the core surface:
// a sharded simnet deployment refuses robust rules up front.
func TestRobustAggRejectedOnTree(t *testing.T) {
	cfg := simnetBaseConfig()
	cfg.Shards = 2
	cfg.Aggregation = fl.AggMedian
	if _, err := RunSimnet(cfg); err == nil {
		t.Fatal("robust rule on the sharded tree must be a configuration error")
	}
	cfg.Aggregation = "krum:1"
	if _, err := RunSimnet(cfg); err == nil {
		t.Fatal("krum on the sharded tree must be a configuration error")
	}
}

// TestOverfullAttackBudgetRejected pins loud Bind failure at the core
// surface: a plan demanding more attackers than the population errors
// instead of silently truncating.
func TestOverfullAttackBudgetRejected(t *testing.T) {
	cfg := simnetBaseConfig()
	cfg.Faults = "byzantine=100:signflip"
	if _, err := RunSimnet(cfg); err == nil {
		t.Fatal("overfull byzantine budget must fail at bind")
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("overfull byzantine budget must fail at bind (in-process)")
	}
}
