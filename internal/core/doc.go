// Package core implements the paper's contribution and its baselines as
// pluggable federated-learning strategies:
//
//   - NonPrivate: plain FedSGD local training (the paper's reference model).
//   - FedSDP: Algorithm 1 — per-client update clipping and Gaussian noise at
//     each round, at either the client or the server.
//   - FedCDP: Algorithm 2 — per-example, per-layer clipping and Gaussian
//     noise inside every local iteration, before batch averaging.
//   - Fed-CDP(decay): FedCDP with a decaying clipping bound (Section VI).
//   - DSSGD: distributed selective SGD (Shokri & Shmatikov) — clients share
//     only the largest fraction of their update.
//   - Compressed: communication-efficient wrapper pruning small gradient
//     entries (Figure 5).
//
// Run ties a strategy to the fl substrate and the privacy accountant and is
// the high-level entry point used by the CLIs, examples and benchmarks. Its
// Config is the repository's experiment surface: benchmark and method
// selection, population and round shape, privacy parameters, and the
// orthogonal engine switches —
//
//   - Engine: batched GEMM/im2col local training (default) vs the
//     per-example reference path;
//   - NoiseEngine: parallel counter-keyed DP noise (default) vs the
//     sequential reference stream;
//   - Runtime: streaming folds with deadlines/quorum (default) vs the
//     barrier parity reference;
//   - Scenario: the data-heterogeneity partition (iid default, dirichlet,
//     pathological, quantity, labelnoise — see internal/dataset);
//   - Aggregation: FedSGD (default), FedAvg, or example-count-weighted
//     FedAvg (fl.AggWeighted) for quantity-skewed populations.
//
// Every switch's default composes into a deterministic seeded run, and each
// non-default position is pinned by parity tests against its reference, so
// results are comparable across engine choices. After a run, core annotates
// the history with cumulative privacy spending via internal/accountant
// (Fed-CDP composes L sampled-Gaussian steps per round at the instance
// rate; Fed-SDP one per round at the client rate), and checkpoint.go
// saves/resumes runs with schedules anchored across segments.
package core
