package core

import (
	"time"

	"fedcdp/internal/dp"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// sanitizer is the per-example sanitization hook passed to localSGD: fn is
// invoked with the local iteration and example index of the gradient group
// it must clip+noise in place. parallel declares fn a pure function of
// (iter, example, g) — true for counter-engine sanitizers, whose noise is
// keyed rather than drawn from a mutable stream — which lets the batched
// engine fan the whole mini-batch's sanitization out over goroutines.
type sanitizer struct {
	fn       func(iter, example int, g []*tensor.Tensor)
	parallel bool
}

// localSGD runs the shared local-training loop: L iterations of batch SGD
// where each example's gradient is passed through sanitize (nil for
// non-private training) before batch averaging. It returns ΔW and stats.
//
// Training executes on the batched GEMM engine unless the round config
// selects fl.EngineReference or the model has custom layers; the reference
// per-example path is kept verbatim and pinned to the batched path by
// parity tests (see DESIGN.md, "Execution engine").
func localSGD(env *fl.ClientEnv, sanitize *sanitizer) ([]*tensor.Tensor, fl.ClientStats) {
	if env.Cfg.Engine != fl.EngineReference && env.Model.Batched() {
		return localSGDBatched(env, sanitize)
	}
	return localSGDReference(env, sanitize)
}

// localSGDBatched is localSGD on the batched execution engine: one
// forward/backward pass per mini-batch (Dense as one GEMM, Conv2D as
// im2col+GEMM), with per-example gradients recovered from the batch buffers
// only when sanitization or norm statistics need them. All scratch comes
// from the worker's arena, so steady-state iterations allocate no data
// buffers.
//
// With a parallel sanitizer (counter noise engine) the per-example stage
// runs through dp.SanitizeBatch: each example is recovered into its own
// buffer and clip+noised concurrently, then folded in example order — the
// fused pipeline whose output is bit-identical at any GOMAXPROCS.
func localSGDBatched(env *fl.ClientEnv, sanitize *sanitizer) ([]*tensor.Tensor, fl.ClientStats) {
	start := time.Now()
	model, arena := env.Model, env.Arena
	model.UseArena(arena)
	global := tensor.CloneAll(model.Params())
	var normSum float64
	var normN int

	batch := arenaLike(arena, model.Grads())
	defer arena.Put(batch...)

	// Streaming scratch for the sequential per-example path, or per-example
	// buffers for the parallel sanitize pipeline — drawn from the arena once
	// (batches are always full-size) and reused across iterations.
	var scratch []*tensor.Tensor
	var bufs [][]*tensor.Tensor
	var preNorms []float64
	if sanitize != nil && sanitize.parallel {
		bufs = make([][]*tensor.Tensor, env.Cfg.BatchSize)
		for i := range bufs {
			bufs[i] = arenaLike(arena, model.Grads())
		}
		preNorms = make([]float64, env.Cfg.BatchSize)
		defer func() {
			for _, b := range bufs {
				arena.Put(b...)
			}
		}()
	} else {
		scratch = arenaLike(arena, model.Grads())
		defer arena.Put(scratch...)
	}

	for l := 0; l < env.Cfg.LocalIters; l++ {
		xs, ys := env.Data.Batch(l, env.Cfg.BatchSize)
		if sanitize == nil && l > 0 {
			// Non-private fast path: batch-summed gradients straight into
			// the shared buffers — the execution model a conventional
			// framework uses, and the baseline Table III compares against.
			model.ZeroGrads()
			model.BatchAccumulate(xs, ys)
			model.SGDStep(env.Cfg.LR/float64(len(xs)), model.Grads())
			continue
		}
		// Per-example recovery: Fed-CDP sanitization needs each example's
		// gradient; the first iteration also records gradient norms.
		for _, t := range batch {
			t.Zero()
		}
		first := l == 0
		inv := 1 / float64(len(xs))
		if sanitize != nil && sanitize.parallel {
			iter := l
			model.BatchPass(xs, ys)
			job := dp.BatchSanitizeJob{
				N:       len(xs),
				Recover: model.ExampleGrads,
				Sanitize: func(i int, g []*tensor.Tensor) {
					sanitize.fn(iter, i, g)
				},
				Bufs:   bufs,
				Accum:  batch,
				Weight: inv,
			}
			if first {
				job.PreNorms = preNorms
			}
			dp.SanitizeBatch(job)
			if first {
				for _, n := range preNorms[:len(xs)] {
					normSum += n
				}
				normN += len(xs)
			}
		} else {
			model.BatchGradients(xs, ys, scratch, func(i int, g []*tensor.Tensor) {
				if first {
					normSum += tensor.GroupL2Norm(g)
					normN++
				}
				if sanitize != nil {
					sanitize.fn(l, i, g)
				}
				tensor.AddAllScaled(batch, inv, g)
			})
		}
		model.SGDStep(env.Cfg.LR, batch)
	}

	stats := fl.ClientStats{Iters: env.Cfg.LocalIters, Duration: time.Since(start)}
	if normN > 0 {
		stats.MeanGradNorm = normSum / float64(normN)
	}
	return fl.Delta(model.Params(), global), stats
}

// arenaLike draws zeroed tensors shaped like ts from the arena (allocating
// when the arena is nil).
func arenaLike(a *tensor.Arena, ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = a.Get(t.Shape()...)
	}
	return out
}

// localSGDReference is the original per-example implementation, retained as
// the semantic reference for the batched engine (selected by
// fl.EngineReference and used as the oracle in parity tests).
func localSGDReference(env *fl.ClientEnv, sanitize *sanitizer) ([]*tensor.Tensor, fl.ClientStats) {
	start := time.Now()
	global := tensor.CloneAll(env.Model.Params())
	var normSum float64
	var normN int

	for l := 0; l < env.Cfg.LocalIters; l++ {
		xs, ys := env.Data.Batch(l, env.Cfg.BatchSize)
		if sanitize == nil && l > 0 {
			// Batched fast path (non-private training): accumulate the batch
			// gradient in the shared buffers without materializing
			// per-example copies — the execution model a conventional
			// framework uses, and the baseline Table III compares against.
			env.Model.ZeroGrads()
			for j, x := range xs {
				logits := env.Model.Forward(x)
				_, g := nn.SoftmaxCrossEntropy(logits, ys[j])
				env.Model.BackwardFromLoss(g)
			}
			env.Model.SGDStep(env.Cfg.LR/float64(len(xs)), env.Model.Grads())
			continue
		}
		// Per-example path: Fed-CDP sanitization needs each example's
		// gradient; the first iteration also records gradient norms.
		batch := tensor.ZerosLike(env.Model.Grads())
		for j, x := range xs {
			_, g := env.Model.ExampleGradient(x, ys[j])
			if l == 0 {
				normSum += tensor.GroupL2Norm(g)
				normN++
			}
			if sanitize != nil {
				sanitize.fn(l, j, g)
			}
			tensor.AddAllScaled(batch, 1/float64(len(xs)), g)
		}
		env.Model.SGDStep(env.Cfg.LR, batch)
	}

	stats := fl.ClientStats{Iters: env.Cfg.LocalIters, Duration: time.Since(start)}
	if normN > 0 {
		stats.MeanGradNorm = normSum / float64(normN)
	}
	return fl.Delta(env.Model.Params(), global), stats
}

// NonPrivate is standard FedSGD local training with no privacy mechanism.
type NonPrivate struct{}

var _ fl.Strategy = NonPrivate{}

// Name implements fl.Strategy.
func (NonPrivate) Name() string { return "non-private" }

// ClientUpdate runs plain local SGD.
func (NonPrivate) ClientUpdate(env *fl.ClientEnv) ([]*tensor.Tensor, fl.ClientStats) {
	return localSGD(env, nil)
}

// Noise stream purpose labels under a client's counter noise key: the first
// Derive label separates the per-example sanitize streams from the
// whole-update stream, so the two can never collide whatever the iteration
// and example indices (see DESIGN.md, "Noise engine").
const (
	noisePerExample = 1
	noiseUpdate     = 2
)

// exampleNoise derives the counter noise stream for one example's
// sanitization: (client key, per-example purpose, iteration, example).
func exampleNoise(noise tensor.CounterRNG, iter, example int) tensor.CounterRNG {
	return noise.Derive(noisePerExample, int64(iter), int64(example))
}

// ServerSanitize is a no-op.
func (NonPrivate) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

// FedCDP is Algorithm 2: per-example client differential privacy. Each
// example's gradient is clipped layer-wise to Clip.Bound(round) and
// perturbed with Gaussian noise of scale Sigma·C before batch averaging,
// in every local iteration.
type FedCDP struct {
	Clip  dp.ClipPolicy
	Sigma float64
	// FlatClip clips the per-example gradient as one concatenated vector
	// instead of per layer — the Abadi et al. convention, kept as an
	// ablation of the paper's layer-wise choice.
	FlatClip bool
}

var _ fl.Strategy = FedCDP{}

// NewFedCDP returns the paper's Fed-CDP baseline (fixed clipping bound).
func NewFedCDP(c, sigma float64) FedCDP {
	return FedCDP{Clip: dp.FixedClip{C: c}, Sigma: sigma}
}

// NewFedCDPDecay returns Fed-CDP(decay) with a linear clipping schedule
// (the paper decays C from 6 to 2 over the round budget).
func NewFedCDPDecay(from, to, sigma float64) FedCDP {
	return FedCDP{Clip: dp.LinearDecay{From: from, To: to}, Sigma: sigma}
}

// Name implements fl.Strategy.
func (f FedCDP) Name() string {
	if _, fixed := f.Clip.(dp.FixedClip); fixed {
		return "fed-cdp"
	}
	return "fed-cdp(decay)"
}

// ClientUpdate runs local SGD with per-example sanitization. On the counter
// noise engine each example's clip+noise is a pure function of (round,
// client, iteration, example), so the batched engine sanitizes the whole
// mini-batch in parallel; the reference engine consumes env.RNG example by
// example exactly as the original implementation did.
func (f FedCDP) ClientUpdate(env *fl.ClientEnv) ([]*tensor.Tensor, fl.ClientStats) {
	c := f.Clip.Bound(env.Round, env.Cfg.TotalRounds)
	if noise := env.Noise; noise != nil {
		if f.FlatClip {
			return localSGD(env, &sanitizer{parallel: true, fn: func(l, j int, g []*tensor.Tensor) {
				dp.SanitizeCounterFlat(g, c, f.Sigma, exampleNoise(*noise, l, j))
			}})
		}
		return localSGD(env, &sanitizer{parallel: true, fn: func(l, j int, g []*tensor.Tensor) {
			dp.SanitizeCounter(g, c, f.Sigma, exampleNoise(*noise, l, j))
		}})
	}
	if f.FlatClip {
		return localSGD(env, &sanitizer{fn: func(l, j int, g []*tensor.Tensor) {
			dp.ClipFlat(g, c)
			dp.AddGaussian(g, f.Sigma, c, env.RNG)
		}})
	}
	return localSGD(env, &sanitizer{fn: func(l, j int, g []*tensor.Tensor) {
		dp.Sanitize(g, c, f.Sigma, env.RNG)
	}})
}

// ServerSanitize is a no-op: all sanitization happens per example on the
// client.
func (f FedCDP) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

// FedSDP is Algorithm 1: per-client differential privacy. Local training is
// non-private; the round update ΔW is clipped per layer to C and perturbed
// once with Gaussian noise. AtServer selects where the sanitization runs:
// at the client (resilient to type-0 and type-1 leakage) or at the server
// (resilient to type-0 only) — the privacy accounting is identical
// (Section IV-B).
type FedSDP struct {
	C        float64
	Sigma    float64
	AtServer bool
}

var _ fl.Strategy = FedSDP{}

// Name implements fl.Strategy.
func (f FedSDP) Name() string {
	if f.AtServer {
		return "fed-sdp(server)"
	}
	return "fed-sdp"
}

// ClientUpdate runs non-private local SGD; with client-side placement the
// update is sanitized before leaving the client — sharded across cores on
// the counter noise engine (the update spans the whole model).
func (f FedSDP) ClientUpdate(env *fl.ClientEnv) ([]*tensor.Tensor, fl.ClientStats) {
	delta, stats := localSGD(env, nil)
	if !f.AtServer {
		if env.Noise != nil {
			dp.SanitizeCounterPar(delta, f.C, f.Sigma, env.Noise.Derive(noiseUpdate), 0)
		} else {
			dp.Sanitize(delta, f.C, f.Sigma, env.RNG)
		}
	}
	return delta, stats
}

// ServerSanitize clips and noises each collected per-client update when
// AtServer is set (reference noise engine: sequential serverRNG stream).
func (f FedSDP) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {
	if !f.AtServer {
		return
	}
	for _, u := range updates {
		dp.Sanitize(u, f.C, f.Sigma, rng)
	}
}

var _ fl.CounterSanitizer = FedSDP{}

// ServerSanitizeCounter is the counter-engine server-side sanitization:
// update idx draws from its own stream keyed by cohort position, so the
// streaming runtime may sanitize in any arrival order deterministically.
func (f FedSDP) ServerSanitizeCounter(round, idx int, update []*tensor.Tensor, noise tensor.CounterRNG) {
	if !f.AtServer {
		return
	}
	dp.SanitizeCounterPar(update, f.C, f.Sigma, noise.Derive(int64(idx)), 0)
}

// DSSGD is the distributed selective SGD baseline: clients train
// non-privately and share only the ShareFraction largest-magnitude update
// entries (zeroing the rest). It offers no differential-privacy guarantee
// and, per the paper's Figure 4, remains vulnerable to all three leakage
// types.
type DSSGD struct {
	ShareFraction float64 // fraction of update entries shared (e.g. 0.1)
}

var _ fl.Strategy = DSSGD{}

// Name implements fl.Strategy.
func (DSSGD) Name() string { return "dssgd" }

// ClientUpdate trains non-privately and prunes all but the top fraction.
func (d DSSGD) ClientUpdate(env *fl.ClientEnv) ([]*tensor.Tensor, fl.ClientStats) {
	delta, stats := localSGD(env, nil)
	dp.Compress(delta, 1-d.ShareFraction)
	return delta, stats
}

// ServerSanitize is a no-op.
func (DSSGD) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

// SparseUpdates implements fl.SparseCapable: sharing a small fraction of
// the update means most coordinates on the wire are zero, so remote
// clients ship the sparse encoding (indices + values).
func (d DSSGD) SparseUpdates() bool { return d.ShareFraction <= 0.5 }

// Compressed wraps any strategy with communication-efficient gradient
// pruning: after the inner strategy produces its update, the PruneRatio
// fraction of smallest-magnitude entries is zeroed (Figure 5).
type Compressed struct {
	Inner      fl.Strategy
	PruneRatio float64
}

var _ fl.Strategy = Compressed{}

// Name implements fl.Strategy.
func (c Compressed) Name() string { return c.Inner.Name() + "+compress" }

// ClientUpdate delegates and prunes the resulting update.
func (c Compressed) ClientUpdate(env *fl.ClientEnv) ([]*tensor.Tensor, fl.ClientStats) {
	delta, stats := c.Inner.ClientUpdate(env)
	dp.Compress(delta, c.PruneRatio)
	return delta, stats
}

// ServerSanitize delegates to the inner strategy.
func (c Compressed) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {
	c.Inner.ServerSanitize(round, updates, rng)
}

var _ fl.CounterSanitizer = Compressed{}

// ServerSanitizeCounter delegates counter-engine server sanitization to the
// inner strategy. Inner strategies without counter support get their plain
// ServerSanitize with a nil RNG — every such strategy in this package
// ignores the stream entirely (their server step is a no-op).
func (c Compressed) ServerSanitizeCounter(round, idx int, update []*tensor.Tensor, noise tensor.CounterRNG) {
	if cs, ok := c.Inner.(fl.CounterSanitizer); ok {
		cs.ServerSanitizeCounter(round, idx, update, noise)
		return
	}
	c.Inner.ServerSanitize(round, [][]*tensor.Tensor{update}, nil)
}

// SparseUpdates implements fl.SparseCapable: pruning more than half the
// coordinates makes the sparse wire encoding the smaller one.
func (c Compressed) SparseUpdates() bool {
	if c.PruneRatio > 0.5 {
		return true
	}
	sc, ok := c.Inner.(fl.SparseCapable)
	return ok && sc.SparseUpdates()
}
