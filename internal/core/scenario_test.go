package core

import (
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/fl"
)

// tinyScenarioCfg is the smallest end-to-end run: enough to exercise every
// layer (partitioner → client training → sanitization → aggregation →
// accounting) without taking real time.
func tinyScenarioCfg(method string, sc dataset.Scenario) Config {
	return Config{
		Dataset:     "cancer",
		Method:      method,
		K:           6,
		Kt:          3,
		Rounds:      2,
		LocalIters:  3,
		Sigma:       0.06,
		Seed:        42,
		ValExamples: 20,
		Scenario:    sc,
	}
}

// TestAllMethodsRunUnderDirichlet is the acceptance gate for the scenario
// engine: every existing method trains end-to-end under the most skewed
// standard partition, dirichlet(α=0.1).
func TestAllMethodsRunUnderDirichlet(t *testing.T) {
	sc := dataset.Scenario{Name: dataset.ScenarioDirichlet, Alpha: 0.1}
	for _, m := range Methods() {
		res, err := Run(tinyScenarioCfg(m, sc))
		if err != nil {
			t.Fatalf("%s under %s: %v", m, sc, err)
		}
		if len(res.Rounds) != 2 {
			t.Fatalf("%s under %s: %d rounds", m, sc, len(res.Rounds))
		}
	}
}

func TestFedCDPRunsUnderEveryScenario(t *testing.T) {
	for _, name := range dataset.ScenarioNames() {
		sc := dataset.Scenario{Name: name}
		res, err := Run(tinyScenarioCfg(MethodFedCDP, sc))
		if err != nil {
			t.Fatalf("fedcdp under %s: %v", sc, err)
		}
		if res.FinalEpsilon() <= 0 {
			t.Fatalf("fedcdp under %s: accounting not annotated", sc)
		}
	}
}

func TestUnknownScenarioRejected(t *testing.T) {
	if _, err := Run(tinyScenarioCfg(MethodNonPrivate, dataset.Scenario{Name: "zipf"})); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

// TestIIDScenarioReproducesDefault pins the satellite contract: naming the
// iid scenario explicitly is bit-identical to the pre-scenario-engine
// default, so PR1–PR3 parity oracles and goldens are untouched.
func TestIIDScenarioReproducesDefault(t *testing.T) {
	a, err := Run(tinyScenarioCfg(MethodFedCDP, dataset.Scenario{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyScenarioCfg(MethodFedCDP, dataset.Scenario{Name: dataset.ScenarioIID}))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Final.Params(), b.Final.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i], 0) {
			t.Fatal("iid scenario diverged from the default partition")
		}
	}
}

// TestCheckpointResumePreservesScenario pins that a resumed run continues
// on the checkpointed partition and aggregation rule: 2+2 resumed rounds
// must equal 4 uninterrupted rounds bit-for-bit.
func TestCheckpointResumePreservesScenario(t *testing.T) {
	cfg := tinyScenarioCfg(MethodFedCDP, dataset.Scenario{Name: dataset.ScenarioQuantity})
	cfg.Aggregation = fl.AggWeighted

	full := cfg
	full.Rounds = 4
	want, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}

	first := cfg
	first.Rounds = 2
	first.PlannedRounds = 4
	res1, err := Run(first)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := CheckpointFrom(res1).Resume(2)
	if err != nil {
		t.Fatal(err)
	}
	pw, pg := want.Final.Params(), res2.Final.Params()
	for i := range pw {
		if !pw[i].Equal(pg[i], 0) {
			t.Fatal("resume diverged from the uninterrupted run: scenario or aggregation dropped at the checkpoint boundary")
		}
	}
}

func TestWeightedAggregationUnderQuantitySkew(t *testing.T) {
	cfg := tinyScenarioCfg(MethodNonPrivate, dataset.Scenario{Name: dataset.ScenarioQuantity})
	cfg.Aggregation = fl.AggWeighted
	for _, runtime := range []string{fl.RuntimeStreaming, fl.RuntimeBarrier} {
		cfg.Runtime = runtime
		if _, err := Run(cfg); err != nil {
			t.Fatalf("weighted aggregation on %s runtime: %v", runtime, err)
		}
	}
}
