package dp

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fedcdp/internal/tensor"
)

// ClipPolicy yields the clipping bound C for a given federated round. The
// paper's baseline uses a constant bound; Fed-CDP(decay) tracks the decaying
// gradient L2 norm with a decreasing schedule (Section VI).
type ClipPolicy interface {
	// Bound returns C for round t of totalRounds (both 0-based/t<total).
	Bound(round, totalRounds int) float64
	// String describes the policy for logs and experiment records.
	String() string
}

// FixedClip is the constant clipping bound used by Abadi et al. and the
// Fed-CDP baseline (default C=4).
type FixedClip struct{ C float64 }

// Bound returns the constant bound.
func (f FixedClip) Bound(round, totalRounds int) float64 { return f.C }

// String implements ClipPolicy.
func (f FixedClip) String() string { return fmt.Sprintf("fixed(C=%g)", f.C) }

// LinearDecay interpolates the bound linearly From→To across the round
// budget; the paper's Fed-CDP(decay) uses 6→2 over 100 rounds.
type LinearDecay struct{ From, To float64 }

// Bound returns the linearly interpolated bound for the round.
func (l LinearDecay) Bound(round, totalRounds int) float64 {
	if totalRounds <= 1 {
		return l.From
	}
	frac := float64(round) / float64(totalRounds-1)
	if frac > 1 {
		frac = 1
	}
	return l.From + (l.To-l.From)*frac
}

// String implements ClipPolicy.
func (l LinearDecay) String() string { return fmt.Sprintf("linear(%g->%g)", l.From, l.To) }

// ExpDecay multiplies the initial bound by Rate^round, floored at Min.
type ExpDecay struct {
	From, Rate, Min float64
}

// Bound returns From·Rate^round floored at Min.
func (e ExpDecay) Bound(round, totalRounds int) float64 {
	c := e.From * math.Pow(e.Rate, float64(round))
	if c < e.Min {
		return e.Min
	}
	return c
}

// String implements ClipPolicy.
func (e ExpDecay) String() string {
	return fmt.Sprintf("exp(%g,rate=%g,min=%g)", e.From, e.Rate, e.Min)
}

// StepDecay multiplies the bound by Factor every Every rounds, floored at Min.
type StepDecay struct {
	From, Factor float64
	Every        int
	Min          float64
}

// Bound returns the step-scheduled bound.
func (s StepDecay) Bound(round, totalRounds int) float64 {
	if s.Every <= 0 {
		return s.From
	}
	c := s.From * math.Pow(s.Factor, float64(round/s.Every))
	if c < s.Min {
		return s.Min
	}
	return c
}

// String implements ClipPolicy.
func (s StepDecay) String() string {
	return fmt.Sprintf("step(%g,x%g/%d,min=%g)", s.From, s.Factor, s.Every, s.Min)
}

// ClipLayers clips every tensor independently to L2 norm c, implementing the
// paper's layer-wise clipping (Algorithm 2 lines 8–12 / Algorithm 1 lines
// 7–10). It returns the pre-clip norms of each layer.
func ClipLayers(grads []*tensor.Tensor, c float64) []float64 {
	norms := make([]float64, len(grads))
	for i, g := range grads {
		norms[i] = g.ClipL2(c)
	}
	return norms
}

// ClipFlat clips the whole gradient group to L2 norm c as one concatenated
// vector (the DP-SGD convention of Abadi et al.), in contrast to the
// paper's per-layer clipping. Returns the pre-clip group norm.
func ClipFlat(grads []*tensor.Tensor, c float64) float64 {
	n := tensor.GroupL2Norm(grads)
	if c <= 0 || n <= c {
		return n
	}
	scale := c / n
	for _, g := range grads {
		g.Scale(scale)
	}
	return n
}

// AddGaussian adds i.i.d. N(0, (sigma·sensitivity)²) noise to every tensor,
// the Gaussian mechanism of Definition 2 with S set from the clipping bound.
func AddGaussian(grads []*tensor.Tensor, sigma, sensitivity float64, rng *tensor.RNG) {
	std := sigma * sensitivity
	for _, g := range grads {
		rng.AddNormal(g, std)
	}
}

// Sanitize clips per layer to bound c and then adds Gaussian noise with
// sensitivity S = c: the complete per-gradient sanitization step shared by
// Fed-CDP (applied per example) and Fed-SDP (applied per client update).
func Sanitize(grads []*tensor.Tensor, c, sigma float64, rng *tensor.RNG) {
	ClipLayers(grads, c)
	AddGaussian(grads, sigma, c, rng)
}

// MedianNorm returns the median of a set of gradient L2 norms. The paper
// suggests it as an adaptive clipping bound choice (Section IV-C).
func MedianNorm(norms []float64) float64 {
	if len(norms) == 0 {
		return 0
	}
	s := append([]float64(nil), norms...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compressScratch recycles the |g| working buffer across Compress calls.
// Compress runs concurrently on many client goroutines (DSSGD shares and
// the compression wrapper both prune inside ClientUpdate), so the scratch
// is pooled rather than package-global.
var compressScratch = sync.Pool{New: func() any { s := make([]float64, 0, 1024); return &s }}

// Compress zeroes the fraction `pruneRatio` of smallest-magnitude entries
// across the gradient group, the magnitude-based pruning used by the
// communication-efficient FL protocol in Figure 5. Exactly
// ⌊pruneRatio·total⌋ entries are zeroed: magnitudes strictly below the
// cutoff always prune, and ties at the cutoff prune in scan order until the
// count is reached (a full sort previously zeroed every tied entry,
// over-pruning uniform gradients). The cutoff is found with quickselect —
// O(n) instead of O(n log n) — over a pooled scratch buffer, so steady-state
// calls allocate nothing. Returns the number of entries kept.
func Compress(grads []*tensor.Tensor, pruneRatio float64) int {
	total := 0
	for _, g := range grads {
		total += g.Len()
	}
	if pruneRatio <= 0 || total == 0 {
		return total
	}
	if pruneRatio >= 1 {
		for _, g := range grads {
			g.Zero()
		}
		return 0
	}
	k := int(pruneRatio * float64(total))
	if k <= 0 {
		return total
	}

	sp := compressScratch.Get().(*[]float64)
	all := (*sp)[:0]
	for _, g := range grads {
		for _, v := range g.Data() {
			a := math.Abs(v)
			if a != a {
				// NaN (diverged training) ranks as un-prunable: quickselect's
				// partition would loop past the slice on unordered values.
				a = math.Inf(1)
			}
			all = append(all, a)
		}
	}
	// k-th smallest magnitude (0-based k-1) is the prune cutoff.
	threshold := quickselect(all, k-1)
	// Count strict-below entries to know how many ties at the cutoff must
	// also go for the pruned count to be exactly k.
	below := 0
	for _, v := range all {
		if v < threshold {
			below++
		}
	}
	*sp = all
	compressScratch.Put(sp)

	ties := k - below
	for _, g := range grads {
		d := g.Data()
		for i, v := range d {
			a := math.Abs(v)
			if a < threshold {
				d[i] = 0
			} else if a == threshold && ties > 0 {
				d[i] = 0
				ties--
			}
		}
	}
	return total - k
}

// quickselect returns the k-th smallest element (0-based) of a, partially
// reordering a in place. Median-of-three pivoting keeps the expected cost
// O(n) with no randomness, so compression stays deterministic.
func quickselect(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		// Median-of-three: order a[lo] ≤ a[mid] ≤ a[hi], pivot at a[mid].
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		// Hoare partition.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if a[i] >= pivot {
					break
				}
			}
			for {
				j--
				if a[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return a[lo]
}

// JoinGrads returns a freshly backed slice holding ws followed by bs, for
// sanitizing weight and bias gradients as one group. Callers previously
// spelled this append(ws, bs...), which silently overwrites neighbouring
// entries of ws's backing array whenever ws is a reslice with spare
// capacity; the explicit make+copy can never alias its inputs.
func JoinGrads(ws, bs []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws)+len(bs))
	copy(out, ws)
	copy(out[len(ws):], bs)
	return out
}
