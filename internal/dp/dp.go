// Package dp implements the differential-privacy mechanics used by Fed-CDP
// and Fed-SDP: per-layer L2 clipping with pluggable bound schedules, the
// Gaussian mechanism calibrated to clipping-bound sensitivity, and the
// gradient compression operator used in the paper's communication-efficient
// experiments (Figure 5).
package dp

import (
	"fmt"
	"math"
	"sort"

	"fedcdp/internal/tensor"
)

// ClipPolicy yields the clipping bound C for a given federated round. The
// paper's baseline uses a constant bound; Fed-CDP(decay) tracks the decaying
// gradient L2 norm with a decreasing schedule (Section VI).
type ClipPolicy interface {
	// Bound returns C for round t of totalRounds (both 0-based/t<total).
	Bound(round, totalRounds int) float64
	// String describes the policy for logs and experiment records.
	String() string
}

// FixedClip is the constant clipping bound used by Abadi et al. and the
// Fed-CDP baseline (default C=4).
type FixedClip struct{ C float64 }

// Bound returns the constant bound.
func (f FixedClip) Bound(round, totalRounds int) float64 { return f.C }

// String implements ClipPolicy.
func (f FixedClip) String() string { return fmt.Sprintf("fixed(C=%g)", f.C) }

// LinearDecay interpolates the bound linearly From→To across the round
// budget; the paper's Fed-CDP(decay) uses 6→2 over 100 rounds.
type LinearDecay struct{ From, To float64 }

// Bound returns the linearly interpolated bound for the round.
func (l LinearDecay) Bound(round, totalRounds int) float64 {
	if totalRounds <= 1 {
		return l.From
	}
	frac := float64(round) / float64(totalRounds-1)
	if frac > 1 {
		frac = 1
	}
	return l.From + (l.To-l.From)*frac
}

// String implements ClipPolicy.
func (l LinearDecay) String() string { return fmt.Sprintf("linear(%g->%g)", l.From, l.To) }

// ExpDecay multiplies the initial bound by Rate^round, floored at Min.
type ExpDecay struct {
	From, Rate, Min float64
}

// Bound returns From·Rate^round floored at Min.
func (e ExpDecay) Bound(round, totalRounds int) float64 {
	c := e.From * math.Pow(e.Rate, float64(round))
	if c < e.Min {
		return e.Min
	}
	return c
}

// String implements ClipPolicy.
func (e ExpDecay) String() string {
	return fmt.Sprintf("exp(%g,rate=%g,min=%g)", e.From, e.Rate, e.Min)
}

// StepDecay multiplies the bound by Factor every Every rounds, floored at Min.
type StepDecay struct {
	From, Factor float64
	Every        int
	Min          float64
}

// Bound returns the step-scheduled bound.
func (s StepDecay) Bound(round, totalRounds int) float64 {
	if s.Every <= 0 {
		return s.From
	}
	c := s.From * math.Pow(s.Factor, float64(round/s.Every))
	if c < s.Min {
		return s.Min
	}
	return c
}

// String implements ClipPolicy.
func (s StepDecay) String() string {
	return fmt.Sprintf("step(%g,x%g/%d,min=%g)", s.From, s.Factor, s.Every, s.Min)
}

// ClipLayers clips every tensor independently to L2 norm c, implementing the
// paper's layer-wise clipping (Algorithm 2 lines 8–12 / Algorithm 1 lines
// 7–10). It returns the pre-clip norms of each layer.
func ClipLayers(grads []*tensor.Tensor, c float64) []float64 {
	norms := make([]float64, len(grads))
	for i, g := range grads {
		norms[i] = g.ClipL2(c)
	}
	return norms
}

// ClipFlat clips the whole gradient group to L2 norm c as one concatenated
// vector (the DP-SGD convention of Abadi et al.), in contrast to the
// paper's per-layer clipping. Returns the pre-clip group norm.
func ClipFlat(grads []*tensor.Tensor, c float64) float64 {
	n := tensor.GroupL2Norm(grads)
	if c <= 0 || n <= c {
		return n
	}
	scale := c / n
	for _, g := range grads {
		g.Scale(scale)
	}
	return n
}

// AddGaussian adds i.i.d. N(0, (sigma·sensitivity)²) noise to every tensor,
// the Gaussian mechanism of Definition 2 with S set from the clipping bound.
func AddGaussian(grads []*tensor.Tensor, sigma, sensitivity float64, rng *tensor.RNG) {
	std := sigma * sensitivity
	for _, g := range grads {
		rng.AddNormal(g, std)
	}
}

// Sanitize clips per layer to bound c and then adds Gaussian noise with
// sensitivity S = c: the complete per-gradient sanitization step shared by
// Fed-CDP (applied per example) and Fed-SDP (applied per client update).
func Sanitize(grads []*tensor.Tensor, c, sigma float64, rng *tensor.RNG) {
	ClipLayers(grads, c)
	AddGaussian(grads, sigma, c, rng)
}

// MedianNorm returns the median of a set of gradient L2 norms. The paper
// suggests it as an adaptive clipping bound choice (Section IV-C).
func MedianNorm(norms []float64) float64 {
	if len(norms) == 0 {
		return 0
	}
	s := append([]float64(nil), norms...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Compress zeroes the fraction `pruneRatio` of smallest-magnitude entries
// across the gradient group, the magnitude-based pruning used by the
// communication-efficient FL protocol in Figure 5. Returns the number of
// entries kept.
func Compress(grads []*tensor.Tensor, pruneRatio float64) int {
	if pruneRatio <= 0 {
		n := 0
		for _, g := range grads {
			n += g.Len()
		}
		return n
	}
	var all []float64
	total := 0
	for _, g := range grads {
		for _, v := range g.Data() {
			all = append(all, math.Abs(v))
		}
		total += g.Len()
	}
	if pruneRatio >= 1 {
		for _, g := range grads {
			g.Zero()
		}
		return 0
	}
	sort.Float64s(all)
	k := int(pruneRatio * float64(total))
	if k <= 0 {
		return total
	}
	threshold := all[k-1]
	kept := 0
	for _, g := range grads {
		d := g.Data()
		for i, v := range d {
			if math.Abs(v) <= threshold {
				d[i] = 0
			} else {
				kept++
			}
		}
	}
	return kept
}
