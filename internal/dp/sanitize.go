// Counter-based sanitization engine: the parallel, fused clip+noise pipeline
// behind fl.NoiseCounter. Where Sanitize draws from one sequential math/rand
// stream (kept as the parity reference, fl.NoiseReference), the functions in
// this file key every noise value to (stream labels, element offset) via
// tensor.CounterRNG, so per-example sanitization of a whole mini-batch — and
// the noising of a single large update — fan out over goroutines with
// bit-identical results at any GOMAXPROCS. See DESIGN.md ("Noise engine").
package dp

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fedcdp/internal/tensor"
)

// normChunk is the fixed reduction granularity for norm computation: squared
// sums are accumulated per 2048-element chunk and the chunk partials reduced
// in index order. Chunk edges depend only on tensor sizes — never on the
// worker count — so the floating-point result is the same whether the chunks
// were summed by one goroutine or eight.
const normChunk = 2048

// chunkedSqSum returns the sum of squares of d, reduced over fixed-size
// chunks in index order (deterministic under any sharding of the chunks).
func chunkedSqSum(d []float64) float64 {
	var total float64
	for lo := 0; lo < len(d); lo += normChunk {
		hi := lo + normChunk
		if hi > len(d) {
			hi = len(d)
		}
		var s float64
		for _, v := range d[lo:hi] {
			s += v * v
		}
		total += s
	}
	return total
}

// clipScale returns the DP-SGD clip factor min(1, c/norm) for a squared norm,
// together with the pre-clip norm. A non-positive c disables clipping.
func clipScale(sqSum, c float64) (scale, norm float64) {
	norm = math.Sqrt(sqSum)
	if c <= 0 || norm <= c {
		return 1, norm
	}
	return c / norm, norm
}

// layerKey derives the per-layer noise stream from a gradient-group key; the
// counter then runs over element offsets within the layer, making the noise
// value for (group key, layer, offset) a pure function of the key schedule.
func layerKey(noise tensor.CounterRNG, layer int) tensor.CounterRNG {
	return noise.Derive(int64(layer))
}

// SanitizeCounter clips every tensor independently to L2 norm c and adds
// N(0, (sigma·c)²) noise from the counter engine in one fused traversal per
// layer — the counter-engine equivalent of Sanitize. Gradient group keys
// (noise) must be unique per sanitized group; layer streams are derived
// internally. Returns the pre-clip norms of each layer.
func SanitizeCounter(grads []*tensor.Tensor, c, sigma float64, noise tensor.CounterRNG) []float64 {
	norms := make([]float64, len(grads))
	std := sigma * c
	for li, g := range grads {
		d := g.Data()
		scale, norm := clipScale(chunkedSqSum(d), c)
		norms[li] = norm
		layerKey(noise, li).ScaleAddNormalBulk(d, 0, scale, std)
	}
	return norms
}

// SanitizeCounterLayers is SanitizeCounter with an explicit clipping bound
// per layer (the median-norm adaptive strategy): layer li is clipped to
// bounds[li] and noised with std sigma·bounds[li].
func SanitizeCounterLayers(grads []*tensor.Tensor, bounds []float64, sigma float64, noise tensor.CounterRNG) {
	for li, g := range grads {
		d := g.Data()
		scale, _ := clipScale(chunkedSqSum(d), bounds[li])
		layerKey(noise, li).ScaleAddNormalBulk(d, 0, scale, sigma*bounds[li])
	}
}

// SanitizeCounterFlat clips the whole gradient group to L2 norm c as one
// concatenated vector (the Abadi et al. convention) and adds counter-engine
// noise of std sigma·c. Returns the pre-clip group norm.
func SanitizeCounterFlat(grads []*tensor.Tensor, c, sigma float64, noise tensor.CounterRNG) float64 {
	var sqSum float64
	for _, g := range grads {
		sqSum += chunkedSqSum(g.Data())
	}
	scale, norm := clipScale(sqSum, c)
	std := sigma * c
	for li, g := range grads {
		layerKey(noise, li).ScaleAddNormalBulk(g.Data(), 0, scale, std)
	}
	return norm
}

// shard is one unit of parallel work inside a gradient group: a contiguous
// element range [lo,hi) of layer li. Shard edges are a pure function of the
// layer sizes, so any assignment of shards to goroutines produces the same
// bits.
type shard struct {
	li     int
	lo, hi int
}

// shardGroup cuts a gradient group into normChunk-aligned shards.
func shardGroup(grads []*tensor.Tensor) []shard {
	var shards []shard
	for li, g := range grads {
		n := g.Len()
		for lo := 0; lo < n; lo += normChunk {
			hi := lo + normChunk
			if hi > n {
				hi = n
			}
			shards = append(shards, shard{li: li, lo: lo, hi: hi})
		}
	}
	return shards
}

// sanitizeSlots caps the number of extra CPU-bound sanitize goroutines in
// flight across the whole process, mirroring tensor's gemmSlots: the
// federated trainer already runs up to GOMAXPROCS clients concurrently, and
// without a global cap each client's SanitizeBatch would fork another
// GOMAXPROCS goroutines (P² oversubscription). Slots are acquired
// non-blockingly — a sanitize pass running while the machine is saturated
// simply executes serially on its own goroutine, with identical output
// (shard results never depend on the worker count).
var sanitizeSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// runShards fans fn(shard index) out over at most par goroutines (the
// caller's plus extras bounded by free sanitizeSlots), pulling work from an
// atomic cursor. fn must only touch state owned by its shard index.
func runShards(nShards, par int, fn func(s int)) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > nShards {
		par = nShards
	}
	extra := 0
	for extra < par-1 {
		select {
		case sanitizeSlots <- struct{}{}:
			extra++
		default: // saturated: stop asking for helpers
			goto acquired
		}
	}
acquired:
	if extra == 0 {
		for s := 0; s < nShards; s++ {
			fn(s)
		}
		return
	}
	var cursor atomic.Int64
	work := func() {
		for {
			s := int(cursor.Add(1)) - 1
			if s >= nShards {
				return
			}
			fn(s)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func() {
			defer func() {
				<-sanitizeSlots
				wg.Done()
			}()
			work()
		}()
	}
	work() // the calling goroutine always participates
	wg.Wait()
}

// SanitizeCounterPar is SanitizeCounter for large gradient groups (e.g. a
// whole client update under Fed-SDP): the norm pass and the fused clip+noise
// pass each shard the group's layers across par goroutines (par ≤ 0 means
// GOMAXPROCS). Output is bit-identical to SanitizeCounter for every par.
func SanitizeCounterPar(grads []*tensor.Tensor, c, sigma float64, noise tensor.CounterRNG, par int) []float64 {
	shards := shardGroup(grads)
	if len(shards) <= 1 || par == 1 {
		return SanitizeCounter(grads, c, sigma, noise)
	}

	// Phase 1: per-shard squared sums, reduced per layer in shard order.
	partials := make([]float64, len(shards))
	runShards(len(shards), par, func(s int) {
		sh := shards[s]
		var sum float64
		for _, v := range grads[sh.li].Data()[sh.lo:sh.hi] {
			sum += v * v
		}
		partials[s] = sum
	})
	norms := make([]float64, len(grads))
	scales := make([]float64, len(grads))
	sqSums := make([]float64, len(grads))
	for s, sh := range shards {
		sqSums[sh.li] += partials[s]
	}
	for li := range grads {
		scales[li], norms[li] = clipScale(sqSums[li], c)
	}

	// Phase 2: fused clip+noise per shard; the layer stream's counter is the
	// element offset, so shard boundaries don't shift the noise.
	std := sigma * c
	runShards(len(shards), par, func(s int) {
		sh := shards[s]
		d := grads[sh.li].Data()[sh.lo:sh.hi]
		layerKey(noise, sh.li).ScaleAddNormalBulk(d, uint64(sh.lo), scales[sh.li], std)
	})
	return norms
}

// BatchSanitizeJob describes one fused sanitize pass over a mini-batch of
// per-example gradients: recover each example's gradients into its own
// buffer, clip+noise them in place, and accumulate the batch average — with
// the recover+sanitize stage fanned out over goroutines.
type BatchSanitizeJob struct {
	// N is the number of examples in the batch.
	N int
	// Recover materializes example i's parameter gradients into dst. It is
	// called concurrently for distinct i with distinct dst and must be safe
	// under that contract (nn.Model.ExampleGrads is: recovery only reads the
	// batch caches).
	Recover func(i int, dst []*tensor.Tensor)
	// Sanitize applies the fused clip+noise to example i's gradients in
	// place. It must be pure per example — counter-engine sanitizers are;
	// sequential math/rand sanitizers are NOT and must use the serial path.
	Sanitize func(i int, g []*tensor.Tensor)
	// Bufs holds N pre-allocated gradient groups (one per example), each
	// aligned with the model's Grads. Contents are overwritten.
	Bufs [][]*tensor.Tensor
	// Accum, when non-nil, receives Weight × g_i for every example, folded
	// in example order after the parallel stage (deterministic FP sums).
	Accum []*tensor.Tensor
	// Weight is the accumulation coefficient (e.g. 1/B for batch averaging).
	Weight float64
	// PreNorms, when non-nil, is filled with each example's pre-sanitize
	// group L2 norm (len ≥ N) — the paper's Figure 3 statistic.
	PreNorms []float64
	// Parallelism caps the worker count (≤0 means GOMAXPROCS).
	Parallelism int
}

// SanitizeBatch runs the job: examples are recovered and sanitized in
// parallel (each into its own buffer, so scheduling cannot affect the
// result), then folded into Accum in example order. The output — buffers,
// accumulator and norms — is bit-identical at any worker count.
func SanitizeBatch(job BatchSanitizeJob) {
	if job.N == 0 {
		return
	}
	runShards(job.N, job.Parallelism, func(i int) {
		g := job.Bufs[i]
		job.Recover(i, g)
		if job.PreNorms != nil {
			job.PreNorms[i] = groupNormChunked(g)
		}
		if job.Sanitize != nil {
			job.Sanitize(i, g)
		}
	})
	if job.Accum != nil {
		for i := 0; i < job.N; i++ {
			tensor.AddAllScaled(job.Accum, job.Weight, job.Bufs[i])
		}
	}
}

// groupNormChunked is tensor.GroupL2Norm with the deterministic chunked
// reduction, so norms recorded by the parallel pipeline match at any
// GOMAXPROCS (and match the serial counter path, which uses the same
// chunking).
func groupNormChunked(ts []*tensor.Tensor) float64 {
	var s float64
	for _, t := range ts {
		s += chunkedSqSum(t.Data())
	}
	return math.Sqrt(s)
}
