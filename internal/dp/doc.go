// Package dp implements the differential-privacy mechanics used by Fed-CDP
// and Fed-SDP: per-layer L2 clipping with pluggable bound schedules, the
// Gaussian mechanism calibrated to clipping-bound sensitivity, top-k
// gradient compression (the paper's communication-efficient experiments,
// Figure 5), and the fused sanitize pipeline that fuses clip scaling into
// the noise traversal.
//
// # The two noise paths
//
// Sanitize draws from a sequential *tensor.RNG — the original reference
// path, kept as the parity oracle. The counter path
// (SanitizeCounter/SanitizeCounterFlat/SanitizeCounterLayers and the
// parallel SanitizeCounterPar/SanitizeBatch) draws from tensor.CounterRNG
// streams keyed by (round, client, iteration, example, layer), so noise for
// any slice of any update is a pure function of its coordinates: shards of
// one large update, or whole examples of one mini-batch, are sanitized from
// concurrent goroutines with bit-identical results at every GOMAXPROCS.
//
// # Determinism contracts
//
// Norm reductions are chunked (2048-element sub-sums folded in fixed
// order), so a clipped norm does not depend on how the traversal was
// sharded. SanitizeBatch fans per-example recover+clip+noise over a
// goroutine pool but folds the batch accumulation in example order —
// parallelism changes wall-clock, never results. Compress selects its
// threshold with an O(n) quickselect and keeps exactly total−k entries,
// breaking ties in scan order, so compression is also schedule-independent.
//
// Callers sit one layer up: internal/core's strategies route per-example
// (Fed-CDP) and per-update (Fed-SDP) sanitization here, under the engine
// selection in fl.RoundConfig.NoiseEngine.
package dp
