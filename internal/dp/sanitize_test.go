package dp

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

// gradGroup builds a deterministic multi-layer gradient group whose sizes
// straddle the norm-chunk boundary (so sharding paths are exercised).
func gradGroup(seed int64, scale float64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	grads := []*tensor.Tensor{
		tensor.New(8, 25), tensor.New(8), tensor.New(5000), tensor.New(10, 300),
	}
	for _, g := range grads {
		rng.FillNormal(g, 0, scale)
	}
	return grads
}

func cloneGroup(ts []*tensor.Tensor) []*tensor.Tensor { return tensor.CloneAll(ts) }

func groupsEqualBits(t *testing.T, a, b []*tensor.Tensor, label string) {
	t.Helper()
	for i := range a {
		ad, bd := a[i].Data(), b[i].Data()
		for j := range ad {
			if ad[j] != bd[j] {
				t.Fatalf("%s: tensor %d element %d differs: %v vs %v", label, i, j, ad[j], bd[j])
			}
		}
	}
}

func TestSanitizeCounterClipsAndPerturbs(t *testing.T) {
	noise := tensor.NewCounterRNG(1, 2)
	// sigma = 0: pure fused clipping, every layer lands inside the ball.
	g := gradGroup(3, 10)
	norms := SanitizeCounter(g, 4, 0, noise)
	for i, gt := range g {
		if gt.L2Norm() > 4*(1+1e-9) {
			t.Fatalf("layer %d norm %v exceeds bound", i, gt.L2Norm())
		}
		if norms[i] <= 0 {
			t.Fatalf("pre-clip norm %d not recorded", i)
		}
	}
	// sigma > 0 must perturb.
	h := gradGroup(3, 0.1)
	ref := cloneGroup(h)
	SanitizeCounter(h, 4, 1, noise)
	same := true
	for i := range h {
		if !h[i].Equal(ref[i], 1e-12) {
			same = false
		}
	}
	if same {
		t.Fatal("sigma>0 must perturb the gradients")
	}
}

// TestSanitizeCounterStatistics pins the counter-engine Gaussian mechanism's
// moments, mirroring TestAddGaussianStatistics for the reference engine.
func TestSanitizeCounterStatistics(t *testing.T) {
	g := tensor.New(100000)
	SanitizeCounter([]*tensor.Tensor{g}, 3, 2, tensor.NewCounterRNG(9)) // std = 6
	var sum, sumSq float64
	for _, v := range g.Data() {
		sum += v
		sumSq += v * v
	}
	n := float64(g.Len())
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Fatalf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(std-6) > 0.1 {
		t.Fatalf("noise std = %v, want ~6", std)
	}
}

// TestSanitizeCounterParMatchesSerial pins the sharded sanitizer to the
// serial one bit-for-bit at several worker counts — the property that makes
// the engine's output independent of GOMAXPROCS.
func TestSanitizeCounterParMatchesSerial(t *testing.T) {
	noise := tensor.NewCounterRNG(7, 1)
	want := gradGroup(11, 2)
	wantNorms := SanitizeCounter(want, 4, 0.5, noise)
	for _, par := range []int{1, 2, 3, 8} {
		got := gradGroup(11, 2)
		gotNorms := SanitizeCounterPar(got, 4, 0.5, noise, par)
		groupsEqualBits(t, want, got, "par sanitize")
		for i := range wantNorms {
			if wantNorms[i] != gotNorms[i] {
				t.Fatalf("par=%d: norm %d differs: %v vs %v", par, i, wantNorms[i], gotNorms[i])
			}
		}
	}
}

func TestSanitizeCounterFlatBoundsGroup(t *testing.T) {
	noise := tensor.NewCounterRNG(5)
	g := gradGroup(13, 10)
	norm := SanitizeCounterFlat(g, 4, 0, noise)
	if norm <= 4 {
		t.Fatalf("pre-clip group norm %v should exceed the bound in this setup", norm)
	}
	if got := tensor.GroupL2Norm(g); got > 4*(1+1e-9) {
		t.Fatalf("flat-clipped group norm %v exceeds bound", got)
	}
}

func TestSanitizeCounterLayersUsesBounds(t *testing.T) {
	noise := tensor.NewCounterRNG(6)
	g := []*tensor.Tensor{tensor.FromSlice([]float64{3, 4}, 2), tensor.FromSlice([]float64{6, 8}, 2)}
	SanitizeCounterLayers(g, []float64{1, 100}, 0, noise)
	if math.Abs(g[0].L2Norm()-1) > 1e-9 {
		t.Fatalf("layer 0 not clipped to its bound: %v", g[0].L2Norm())
	}
	if math.Abs(g[1].L2Norm()-10) > 1e-9 {
		t.Fatalf("layer 1 inside its bound must be unchanged: %v", g[1].L2Norm())
	}
}

// TestSanitizeBatchDeterministicAcrossParallelism runs the fused batch
// pipeline at worker counts 1 and 8 over the same per-example gradients and
// requires byte-identical buffers, accumulator and norms — under -race this
// also proves the fan-out is data-race free.
func TestSanitizeBatchDeterministicAcrossParallelism(t *testing.T) {
	const n = 6
	noise := tensor.NewCounterRNG(21, 4)
	source := make([][]*tensor.Tensor, n)
	for i := range source {
		source[i] = gradGroup(int64(100+i), 3)
	}
	shapes := source[0]

	run := func(par int) ([][]*tensor.Tensor, []*tensor.Tensor, []float64) {
		bufs := make([][]*tensor.Tensor, n)
		for i := range bufs {
			bufs[i] = tensor.ZerosLike(shapes)
		}
		accum := tensor.ZerosLike(shapes)
		norms := make([]float64, n)
		SanitizeBatch(BatchSanitizeJob{
			N: n,
			Recover: func(i int, dst []*tensor.Tensor) {
				for li, t := range dst {
					t.CopyFrom(source[i][li])
				}
			},
			Sanitize: func(i int, g []*tensor.Tensor) {
				SanitizeCounter(g, 4, 0.5, noise.Derive(int64(i)))
			},
			Bufs:        bufs,
			Accum:       accum,
			Weight:      1.0 / n,
			PreNorms:    norms,
			Parallelism: par,
		})
		return bufs, accum, norms
	}

	bufs1, accum1, norms1 := run(1)
	bufs8, accum8, norms8 := run(8)
	for i := range bufs1 {
		groupsEqualBits(t, bufs1[i], bufs8[i], "example buffer")
	}
	groupsEqualBits(t, accum1, accum8, "accumulator")
	for i := range norms1 {
		if norms1[i] != norms8[i] {
			t.Fatalf("norm %d differs across parallelism: %v vs %v", i, norms1[i], norms8[i])
		}
	}
	// The accumulator must be the example-ordered weighted sum.
	want := tensor.ZerosLike(shapes)
	for i := 0; i < n; i++ {
		tensor.AddAllScaled(want, 1.0/n, bufs1[i])
	}
	groupsEqualBits(t, want, accum1, "weighted sum")
}

// TestSanitizeCounterNoiseIsKeyed pins the stream identity property: the
// same (key, layer, offset) always produces the same noise, and different
// derived keys produce different noise.
func TestSanitizeCounterNoiseIsKeyed(t *testing.T) {
	noise := tensor.NewCounterRNG(33)
	a := tensor.New(100)
	b := tensor.New(100)
	SanitizeCounter([]*tensor.Tensor{a}, 1, 1, noise.Derive(1))
	SanitizeCounter([]*tensor.Tensor{b}, 1, 1, noise.Derive(1))
	groupsEqualBits(t, []*tensor.Tensor{a}, []*tensor.Tensor{b}, "same key")
	c := tensor.New(100)
	SanitizeCounter([]*tensor.Tensor{c}, 1, 1, noise.Derive(2))
	if a.Equal(c, 1e-12) {
		t.Fatal("different derived keys must give different noise")
	}
}
