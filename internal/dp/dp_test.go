package dp

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"fedcdp/internal/tensor"
)

func TestFixedClip(t *testing.T) {
	p := FixedClip{C: 4}
	for _, r := range []int{0, 50, 99} {
		if p.Bound(r, 100) != 4 {
			t.Fatalf("fixed bound changed at round %d", r)
		}
	}
}

func TestLinearDecayEndpoints(t *testing.T) {
	p := LinearDecay{From: 6, To: 2}
	if got := p.Bound(0, 100); got != 6 {
		t.Fatalf("round 0 bound = %v, want 6", got)
	}
	if got := p.Bound(99, 100); math.Abs(got-2) > 1e-12 {
		t.Fatalf("final bound = %v, want 2", got)
	}
	mid := p.Bound(49, 100)
	if mid >= 6 || mid <= 2 {
		t.Fatalf("mid bound %v not strictly between", mid)
	}
}

func TestLinearDecayMonotone(t *testing.T) {
	p := LinearDecay{From: 6, To: 2}
	prev := math.Inf(1)
	for r := 0; r < 100; r++ {
		b := p.Bound(r, 100)
		if b > prev {
			t.Fatalf("linear decay increased at round %d", r)
		}
		prev = b
	}
}

func TestLinearDecaySingleRound(t *testing.T) {
	p := LinearDecay{From: 6, To: 2}
	if got := p.Bound(0, 1); got != 6 {
		t.Fatalf("single-round bound = %v, want From", got)
	}
}

func TestExpDecayFloor(t *testing.T) {
	p := ExpDecay{From: 8, Rate: 0.5, Min: 1}
	if got := p.Bound(0, 10); got != 8 {
		t.Fatalf("round 0 = %v", got)
	}
	if got := p.Bound(10, 10); got != 1 {
		t.Fatalf("floored bound = %v, want 1", got)
	}
}

func TestStepDecay(t *testing.T) {
	p := StepDecay{From: 8, Factor: 0.5, Every: 10, Min: 1}
	if got := p.Bound(9, 100); got != 8 {
		t.Fatalf("bound before first step = %v, want 8", got)
	}
	if got := p.Bound(10, 100); got != 4 {
		t.Fatalf("bound after first step = %v, want 4", got)
	}
	if got := p.Bound(95, 100); got != 1 {
		t.Fatalf("floored step bound = %v, want 1", got)
	}
	// Every <= 0 degrades to fixed.
	if got := (StepDecay{From: 3}).Bound(50, 100); got != 3 {
		t.Fatalf("Every=0 bound = %v, want 3", got)
	}
}

func TestPolicyStringsNonEmpty(t *testing.T) {
	for _, p := range []ClipPolicy{
		FixedClip{4}, LinearDecay{6, 2}, ExpDecay{8, 0.9, 1}, StepDecay{8, 0.5, 10, 1},
	} {
		if p.String() == "" {
			t.Fatalf("%T has empty String()", p)
		}
	}
}

func TestClipLayersIndependent(t *testing.T) {
	a := tensor.FromSlice([]float64{3, 4}, 2)   // norm 5
	b := tensor.FromSlice([]float64{0.3, 0}, 2) // norm .3
	norms := ClipLayers([]*tensor.Tensor{a, b}, 1)
	if norms[0] != 5 || math.Abs(norms[1]-0.3) > 1e-12 {
		t.Fatalf("pre-clip norms = %v", norms)
	}
	if math.Abs(a.L2Norm()-1) > 1e-9 {
		t.Fatalf("layer a norm after clip = %v, want 1", a.L2Norm())
	}
	if math.Abs(b.L2Norm()-0.3) > 1e-12 {
		t.Fatal("layer b inside ball must be unchanged")
	}
}

func TestClipLayersProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		grads := []*tensor.Tensor{tensor.New(10), tensor.New(20)}
		for _, g := range grads {
			rng.FillNormal(g, 0, 5)
		}
		ClipLayers(grads, 2)
		for _, g := range grads {
			if g.L2Norm() > 2*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddGaussianStatistics(t *testing.T) {
	rng := tensor.NewRNG(1)
	g := tensor.New(100000)
	AddGaussian([]*tensor.Tensor{g}, 2, 3, rng) // std = 6
	var sum, sumSq float64
	for _, v := range g.Data() {
		sum += v
		sumSq += v * v
	}
	n := float64(g.Len())
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Fatalf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(std-6) > 0.1 {
		t.Fatalf("noise std = %v, want ~6", std)
	}
}

func TestAddGaussianZeroSigmaNoop(t *testing.T) {
	rng := tensor.NewRNG(2)
	g := tensor.FromSlice([]float64{1, 2}, 2)
	AddGaussian([]*tensor.Tensor{g}, 0, 4, rng)
	if g.At(0) != 1 || g.At(1) != 2 {
		t.Fatal("sigma=0 must not perturb gradients")
	}
}

func TestSanitizeBoundsSignal(t *testing.T) {
	// After Sanitize, the signal part is clipped: check the deterministic
	// component by sanitizing with sigma=0.
	rng := tensor.NewRNG(3)
	g := tensor.New(50)
	rng.FillNormal(g, 0, 10)
	Sanitize([]*tensor.Tensor{g}, 4, 0, rng)
	if g.L2Norm() > 4*(1+1e-9) {
		t.Fatalf("sanitized norm %v exceeds bound", g.L2Norm())
	}
}

func TestSanitizeAddsNoise(t *testing.T) {
	rng := tensor.NewRNG(4)
	g1 := tensor.New(100)
	g2 := g1.Clone()
	Sanitize([]*tensor.Tensor{g1}, 4, 6, rng)
	if g1.Equal(g2, 1e-12) {
		t.Fatal("Sanitize with sigma>0 must perturb gradients")
	}
}

func TestMedianNorm(t *testing.T) {
	if got := MedianNorm([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := MedianNorm([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	if got := MedianNorm(nil); got != 0 {
		t.Fatalf("empty median = %v, want 0", got)
	}
}

func TestCompressPrunesSmallest(t *testing.T) {
	g := tensor.FromSlice([]float64{0.1, -5, 0.2, 3, -0.05, 1}, 6)
	kept := Compress([]*tensor.Tensor{g}, 0.5)
	if kept != 3 {
		t.Fatalf("kept %d, want 3", kept)
	}
	want := []float64{0, -5, 0, 3, 0, 1}
	for i, v := range g.Data() {
		if v != want[i] {
			t.Fatalf("compress[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestCompressEdgeRatios(t *testing.T) {
	g := tensor.FromSlice([]float64{1, 2, 3}, 3)
	if kept := Compress([]*tensor.Tensor{g}, 0); kept != 3 {
		t.Fatalf("ratio 0 kept %d, want 3", kept)
	}
	if kept := Compress([]*tensor.Tensor{g}, 1); kept != 0 {
		t.Fatalf("ratio 1 kept %d, want 0", kept)
	}
	for _, v := range g.Data() {
		if v != 0 {
			t.Fatal("ratio 1 must zero everything")
		}
	}
}

func TestCompressAcrossLayers(t *testing.T) {
	a := tensor.FromSlice([]float64{10, 0.1}, 2)
	b := tensor.FromSlice([]float64{0.2, 20}, 2)
	Compress([]*tensor.Tensor{a, b}, 0.5)
	if a.At(0) != 10 || b.At(1) != 20 {
		t.Fatal("large entries must survive cross-layer compression")
	}
	if a.At(1) != 0 || b.At(0) != 0 {
		t.Fatal("small entries must be pruned cross-layer")
	}
}

func TestCompressExactCountOnTies(t *testing.T) {
	// Every entry tied at the cutoff: exactly k must prune, not all of them
	// (the sort-based implementation zeroed the whole gradient here).
	g := tensor.FromSlice([]float64{1, 1, 1, 1}, 4)
	if kept := Compress([]*tensor.Tensor{g}, 0.5); kept != 2 {
		t.Fatalf("uniform ties kept %d, want exactly 2", kept)
	}
	nonzero := 0
	for _, v := range g.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Fatalf("uniform ties left %d nonzero, want 2", nonzero)
	}
	// Ties prune in scan order: the earliest tied entries go first.
	h := tensor.FromSlice([]float64{2, 5, 2, 3, 2}, 5)
	if kept := Compress([]*tensor.Tensor{h}, 0.4); kept != 3 {
		t.Fatalf("kept %d, want 3", kept)
	}
	want := []float64{0, 5, 0, 3, 2}
	for i, v := range h.Data() {
		if v != want[i] {
			t.Fatalf("tie scan order: got %v, want %v", h.Data(), want)
		}
	}
}

func TestCompressNaNGradients(t *testing.T) {
	// Diverged training can hand Compress NaN gradients; they must rank as
	// un-prunable (kept) without panicking the quickselect partition.
	nan := math.NaN()
	g := tensor.FromSlice([]float64{0.1, nan, 3, 0.2, nan, 1}, 6)
	kept := Compress([]*tensor.Tensor{g}, 0.5)
	if kept != 3 {
		t.Fatalf("kept %d, want 3", kept)
	}
	d := g.Data()
	if d[0] != 0 || d[3] != 0 {
		t.Fatal("smallest finite magnitudes must be pruned")
	}
	if !math.IsNaN(d[1]) || !math.IsNaN(d[4]) || d[2] != 3 {
		t.Fatal("NaN and large entries must survive")
	}
}

func TestCompressPropertyExactCount(t *testing.T) {
	f := func(seed int64, ratioRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		ratio := float64(ratioRaw%99+1) / 100
		a := tensor.New(37)
		b := tensor.New(64)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		// Inject duplicates so tie handling is exercised.
		copy(b.Data()[:10], a.Data()[:10])
		total := a.Len() + b.Len()
		k := int(ratio * float64(total))
		kept := Compress([]*tensor.Tensor{a, b}, ratio)
		if kept != total-k {
			return false
		}
		nonzero := 0
		for _, g := range []*tensor.Tensor{a, b} {
			for _, v := range g.Data() {
				if v != 0 {
					nonzero++
				}
			}
		}
		// Zeros may pre-exist only if the gradient had them; FillNormal
		// essentially never produces exact zeros, so counts must agree.
		return nonzero == kept
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickselectMatchesSort(t *testing.T) {
	f := func(seed int64, kRaw uint8, shape uint8) bool {
		rng := tensor.NewRNG(seed)
		n := int(kRaw)%100 + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Normal(0, 1)
		}
		switch shape % 4 {
		case 1: // sorted
			sort.Float64s(vals)
		case 2: // reversed
			sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		case 3: // heavy duplicates
			for i := range vals {
				vals[i] = float64(int(vals[i]*2)) / 2
			}
		}
		k := int(seed%int64(n)+int64(n)) % n
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return quickselect(vals, k) == sorted[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinGradsNoAliasing(t *testing.T) {
	// Build gw as a reslice with spare capacity so append(gw, gb...) would
	// overwrite backing[2] — the aliasing bug JoinGrads exists to prevent.
	backing := make([]*tensor.Tensor, 3)
	for i := range backing {
		backing[i] = tensor.FromSlice([]float64{float64(i)}, 1)
	}
	gw := backing[:2]
	gb := []*tensor.Tensor{tensor.FromSlice([]float64{9}, 1)}
	joined := JoinGrads(gw, gb)
	if len(joined) != 3 || joined[0] != gw[0] || joined[1] != gw[1] || joined[2] != gb[0] {
		t.Fatal("JoinGrads must concatenate in order")
	}
	if backing[2].At(0) != 2 {
		t.Fatal("JoinGrads must not write through the source backing array")
	}
	joined[0] = nil
	if gw[0] == nil {
		t.Fatal("JoinGrads result must not share backing with its inputs")
	}
}

func TestCompressPropertyKeepsLargest(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		g := tensor.New(100)
		rng.FillNormal(g, 0, 1)
		maxAbs := g.MaxAbs()
		Compress([]*tensor.Tensor{g}, 0.9)
		return g.MaxAbs() == maxAbs // the largest entry always survives
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressZeroAllocSteadyState pins the pooled-scratch contract shared
// with the binary wire codec's frame buffers (see internal/fl/codec.go):
// once the magnitude scratch is warm, Compress allocates nothing per call
// regardless of gradient size — the quickselect buffer belongs to the
// sync.Pool, not the garbage collector.
func TestCompressZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	rng := tensor.NewRNG(9)
	g := tensor.New(4096)
	orig := make([]float64, g.Len())
	rng.FillNormal(g, 0, 1)
	copy(orig, g.Data())
	grads := []*tensor.Tensor{g}
	// Warm run grows the pooled scratch past the default capacity.
	Compress(grads, 0.5)
	allocs := testing.AllocsPerRun(50, func() {
		copy(g.Data(), orig)
		Compress(grads, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("Compress allocates %.1f objects/op at steady state, want 0", allocs)
	}
}
