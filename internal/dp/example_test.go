package dp_test

import (
	"fmt"

	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

// Sanitizing one example's gradients the Fed-CDP way: clip each layer to
// C = 4 in L2 norm, then add Gaussian noise with sensitivity C.
func ExampleSanitize() {
	layer1 := tensor.FromSlice([]float64{30, 40}, 2) // norm 50 -> clipped to 4
	layer2 := tensor.FromSlice([]float64{0.3, 0.4}, 2)
	grads := []*tensor.Tensor{layer1, layer2}

	dp.Sanitize(grads, 4, 0 /* σ=0 to show clipping deterministically */, tensor.NewRNG(1))
	fmt.Printf("layer1 norm: %.1f (clipped)\n", layer1.L2Norm())
	fmt.Printf("layer2 norm: %.1f (inside the ball, untouched)\n", layer2.L2Norm())
	// Output:
	// layer1 norm: 4.0 (clipped)
	// layer2 norm: 0.5 (inside the ball, untouched)
}

// The decaying clipping bound of Fed-CDP(decay): 6 → 2 over 100 rounds.
func ExampleLinearDecay() {
	policy := dp.LinearDecay{From: 6, To: 2}
	for _, round := range []int{0, 49, 99} {
		fmt.Printf("round %2d: C = %.2f\n", round, policy.Bound(round, 100))
	}
	// Output:
	// round  0: C = 6.00
	// round 49: C = 4.02
	// round 99: C = 2.00
}
