package attack

import (
	"testing"

	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

func TestNonzeroMask(t *testing.T) {
	ts := []*tensor.Tensor{tensor.FromSlice([]float64{0, 2, 0, -3}, 4)}
	m := NonzeroMask(ts)
	want := []float64{0, 1, 0, 1}
	for i, v := range m[0].Data() {
		if v != want[i] {
			t.Fatalf("mask[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestApplyMask(t *testing.T) {
	v := tensor.FromSlice([]float64{1, 2, 3}, 3)
	mask := tensor.FromSlice([]float64{1, 0, 1}, 3)
	applyMask(v, mask)
	if v.At(0) != 1 || v.At(1) != 0 || v.At(2) != 3 {
		t.Fatalf("applyMask = %v", v.Data())
	}
}

func TestGradMatchMaskedIgnoresPrunedEntries(t *testing.T) {
	rng := tensor.NewRNG(20)
	m := NewMLP([]int{8, 6, 3}, ActSigmoid, rng)
	x := tensor.New(8)
	rng.FillUniform(x, 0, 1)
	_, gw, gb := m.Gradients(x, 1)

	// Prune most entries, as DSSGD would.
	pruned := append(cloneAll(gw), cloneAll(gb)...)
	dp.Compress(pruned, 0.8)
	prunedW, prunedB := pruned[:len(gw)], pruned[len(gw):]

	// Unmasked matching at the truth is penalized for the pruned entries...
	lossUnmasked, _ := m.GradMatch([]*tensor.Tensor{x}, []int{1}, prunedW, prunedB)
	if lossUnmasked <= 0 {
		t.Fatal("unmasked loss at truth vs pruned target should be positive")
	}
	// ...while masked matching is exactly zero at the truth.
	maskW, maskB := NonzeroMask(prunedW), NonzeroMask(prunedB)
	lossMasked, grads := m.GradMatchMasked([]*tensor.Tensor{x}, []int{1}, prunedW, prunedB, maskW, maskB)
	if lossMasked > 1e-18 {
		t.Fatalf("masked loss at truth = %v, want 0", lossMasked)
	}
	if grads[0].L2Norm() > 1e-9 {
		t.Fatalf("masked gradient at truth = %v, want ~0", grads[0].L2Norm())
	}
}

func TestReconstructMaskedAgainstCompressedGradients(t *testing.T) {
	// A mask-aware attack on moderately compressed gradients still
	// reconstructs — the DSSGD vulnerability of Figure 4.
	rng := tensor.NewRNG(21)
	m := NewMLP([]int{16, 12, 4}, ActSigmoid, rng)
	x := tensor.New(16)
	rng.FillUniform(x, 0, 1)
	_, gw, gb := m.Gradients(x, 2)
	leaked := append(cloneAll(gw), cloneAll(gb)...)
	dp.Compress(leaked, 0.5)
	lw, lb := leaked[:len(gw)], leaked[len(gw):]

	res := Reconstruct(m, lw, lb, []int{2}, []*tensor.Tensor{x},
		Config{Seed: 7, MaskNonzero: true, MaxIters: 500, LossThreshold: 1e-9})
	if res.Distance > 0.25 {
		t.Fatalf("mask-aware attack on 50%%-compressed gradients: distance %v", res.Distance)
	}
}

func TestGradMatchMaskedBadMaskPanics(t *testing.T) {
	rng := tensor.NewRNG(22)
	m := NewMLP([]int{4, 2}, ActSigmoid, rng)
	x := tensor.New(4)
	_, gw, gb := m.Gradients(x, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong mask layer count")
		}
	}()
	m.GradMatchMasked([]*tensor.Tensor{x}, []int{0}, gw, gb, []*tensor.Tensor{}, nil)
}

func cloneAll(ts []*tensor.Tensor) []*tensor.Tensor {
	return tensor.CloneAll(ts)
}
