package attack

import (
	"testing"

	"fedcdp/internal/tensor"
)

func makeSamples(rng *tensor.RNG, n, dim int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		x := tensor.New(dim)
		rng.FillUniform(x, 0, 1)
		out[i] = Sample{X: x, Y: i % 3}
	}
	return out
}

func TestMembershipPerfectSeparation(t *testing.T) {
	rng := tensor.NewRNG(1)
	members := makeSamples(rng, 50, 4)
	nonMembers := makeSamples(rng, 50, 4)
	memberSet := map[*tensor.Tensor]bool{}
	for _, s := range members {
		memberSet[s.X] = true
	}
	// Oracle loss: members 0.1, non-members 0.9.
	loss := func(x *tensor.Tensor, y int) float64 {
		if memberSet[x] {
			return 0.1
		}
		return 0.9
	}
	res := MembershipInference(loss, members, nonMembers)
	if res.Advantage < 0.99 {
		t.Fatalf("perfect oracle advantage = %v, want 1", res.Advantage)
	}
	if res.AUC < 0.99 {
		t.Fatalf("perfect oracle AUC = %v, want 1", res.AUC)
	}
}

func TestMembershipNoSignal(t *testing.T) {
	rng := tensor.NewRNG(2)
	members := makeSamples(rng, 200, 4)
	nonMembers := makeSamples(rng, 200, 4)
	scoreRNG := tensor.NewRNG(3)
	loss := func(x *tensor.Tensor, y int) float64 { return scoreRNG.Float64() }
	res := MembershipInference(loss, members, nonMembers)
	if res.Advantage > 0.25 {
		t.Fatalf("random-score advantage = %v, want near 0", res.Advantage)
	}
	if res.AUC < 0.35 || res.AUC > 0.65 {
		t.Fatalf("random-score AUC = %v, want ≈ 0.5", res.AUC)
	}
}

func TestMembershipOverfittedMLPLeaks(t *testing.T) {
	// Train an MLP to near-zero loss on a tiny member set; the
	// loss-threshold attack must then distinguish members from fresh data.
	rng := tensor.NewRNG(4)
	m := NewMLP([]int{8, 16, 3}, ActSigmoid, rng)
	members := makeSamples(rng, 12, 8)
	nonMembers := makeSamples(rng, 12, 8)
	for epoch := 0; epoch < 400; epoch++ {
		for _, s := range members {
			_, gw, gb := m.Gradients(s.X, s.Y)
			for l := 0; l < m.Layers(); l++ {
				m.Ws[l].AddScaled(-0.5, gw[l])
				m.Bs[l].AddScaled(-0.5, gb[l])
			}
		}
	}
	loss := func(x *tensor.Tensor, y int) float64 {
		l, _, _ := m.Gradients(x, y)
		return l
	}
	res := MembershipInference(loss, members, nonMembers)
	if res.Advantage < 0.4 {
		t.Fatalf("overfitted model advantage = %v, want substantial leakage", res.Advantage)
	}
}

func TestMembershipPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty sets")
		}
	}()
	MembershipInference(func(*tensor.Tensor, int) float64 { return 0 }, nil, nil)
}
