package attack

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// Optimizer names for Config.Optimizer.
const (
	OptLBFGS = "lbfgs"
	OptAdam  = "adam"
)

// Config tunes the reconstruction attack. The defaults mirror the paper's
// setup: patterned random seed, L2 gradient-distance loss, L-BFGS optimizer,
// at most 300 attack iterations.
type Config struct {
	MaxIters      int     // attack termination T (default 300)
	LossThreshold float64 // success when the gradient-match loss drops below (default 1e-6)
	Optimizer     string  // "lbfgs" (default) or "adam"
	AdamLR        float64 // Adam learning rate (default 0.1)
	Seed          int64
	// MaskNonzero restricts gradient matching to the nonzero entries of the
	// leaked gradients — the correct adversary model against selectively
	// shared gradients (DSSGD, compressed updates), where the attacker knows
	// which entries were transmitted.
	MaskNonzero bool
	// RecordEvery > 0 records the gradient-match loss every n iterations
	// into Result.Trajectory (the convergence curves behind Figure 1's
	// attack-progress illustration).
	RecordEvery int
}

func (c Config) withDefaults() Config {
	if c.MaxIters == 0 {
		c.MaxIters = 300
	}
	if c.LossThreshold == 0 {
		c.LossThreshold = 1e-5
	}
	if c.Optimizer == "" {
		c.Optimizer = OptLBFGS
	}
	if c.AdamLR == 0 {
		c.AdamLR = 0.1
	}
	return c
}

// RevealThreshold is the reconstruction distance below which private data is
// considered revealed. The paper's successful attacks report distances
// 0.0008–0.22 and its failed ones 0.66–0.95, so 0.25 separates them cleanly.
const RevealThreshold = 0.25

// Result reports one reconstruction attempt in the paper's Table VII terms.
type Result struct {
	// Success is the attacker-observable criterion: the gradient-match loss
	// dropped below the configured threshold.
	Success bool
	// Revealed is the evaluation criterion: the reconstruction landed within
	// RevealThreshold of the private input (the paper's success judgment).
	Revealed       bool
	Iterations     int     // iterations until success, or MaxIters when failed
	Distance       float64 // RMSE between reconstruction and ground truth
	FinalLoss      float64 // final gradient-match loss
	Reconstruction []*tensor.Tensor
	// Trajectory holds (iteration, loss) samples when Config.RecordEvery > 0.
	Trajectory []TrajectoryPoint
}

// TrajectoryPoint is one sample of the attack's convergence curve.
type TrajectoryPoint struct {
	Iteration int
	Loss      float64
}

// Reconstruct runs the gradient-matching attack against leaked gradients.
//
// leakedW/leakedB are what the adversary observed: per-example gradients for
// type-2 leakage, or batch-averaged gradients for type-0/1 leakage (in which
// case len(truth) = B and all B inputs are reconstructed jointly). labels
// are the attack's label hypotheses — use InferLabel for single examples.
// truth is used only to report the reconstruction distance.
func Reconstruct(m *MLP, leakedW, leakedB []*tensor.Tensor, labels []int, truth []*tensor.Tensor, cfg Config) Result {
	cfg = cfg.withDefaults()
	if len(labels) != len(truth) || len(truth) == 0 {
		panic(fmt.Sprintf("attack: %d labels vs %d truth inputs", len(labels), len(truth)))
	}
	B := len(truth)
	n := m.Sizes[0]

	// Patterned random initialization of all B dummy inputs.
	rng := tensor.NewRNG(cfg.Seed)
	flat := make([]float64, B*n)
	for j := 0; j < B; j++ {
		seed := PatternedSeed(n, rng)
		copy(flat[j*n:(j+1)*n], seed.Data())
	}

	var maskW, maskB []*tensor.Tensor
	if cfg.MaskNonzero {
		maskW = NonzeroMask(leakedW)
		maskB = NonzeroMask(leakedB)
	}

	xs := make([]*tensor.Tensor, B)
	obj := func(v []float64) (float64, []float64) {
		for j := 0; j < B; j++ {
			xs[j] = tensor.FromSlice(v[j*n:(j+1)*n], n)
		}
		loss, grads := m.GradMatchMasked(xs, labels, leakedW, leakedB, maskW, maskB)
		g := make([]float64, len(v))
		for j := 0; j < B; j++ {
			copy(g[j*n:(j+1)*n], grads[j].Data())
		}
		return loss, g
	}

	var succeededAt int
	var trajectory []TrajectoryPoint
	stop := func(iter int, loss float64) bool {
		if cfg.RecordEvery > 0 && iter%cfg.RecordEvery == 0 {
			trajectory = append(trajectory, TrajectoryPoint{Iteration: iter, Loss: loss})
		}
		if loss < cfg.LossThreshold {
			succeededAt = iter
			return true
		}
		return false
	}

	var iters int
	var finalLoss float64
	switch cfg.Optimizer {
	case OptAdam:
		iters, finalLoss = Adam(obj, flat, cfg.AdamLR, cfg.MaxIters, stop)
	case OptLBFGS:
		iters, finalLoss = LBFGS(obj, flat, cfg.MaxIters, stop)
	default:
		panic(fmt.Sprintf("attack: unknown optimizer %q", cfg.Optimizer))
	}

	// The optimizer may terminate early (converged line search) with the
	// loss already under the threshold without the callback firing again.
	if succeededAt == 0 && finalLoss < cfg.LossThreshold {
		succeededAt = iters
		if succeededAt == 0 {
			succeededAt = 1
		}
	}
	res := Result{
		Success:    succeededAt > 0,
		FinalLoss:  finalLoss,
		Trajectory: trajectory,
	}
	if res.Success {
		res.Iterations = succeededAt
	} else {
		res.Iterations = cfg.MaxIters
	}

	// Report the best assignment between reconstructions and ground truth:
	// batch attacks recover the set of inputs, not their order.
	recs := make([]*tensor.Tensor, B)
	for j := 0; j < B; j++ {
		r := tensor.FromSlice(append([]float64(nil), flat[j*n:(j+1)*n]...), n)
		clamp01InPlace(r)
		recs[j] = r
	}
	res.Reconstruction = recs
	res.Distance = meanBestRMSE(recs, truth)
	res.Revealed = res.Distance < RevealThreshold
	return res
}

// meanBestRMSE matches each truth input to its closest reconstruction and
// averages the distances (batch reconstructions are order-free).
func meanBestRMSE(recs, truth []*tensor.Tensor) float64 {
	var sum float64
	for _, tr := range truth {
		best := -1.0
		for _, r := range recs {
			d := RMSE(r, tr)
			if best < 0 || d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(truth))
}
