package attack

import (
	"fmt"

	"fedcdp/internal/tensor"
)

// Activation kinds supported by the attack MLP. Both are C² smooth, which
// the second-order chain requires (ReLU's second derivative is zero a.e.,
// which kills gradient-matching signal).
const (
	ActSigmoid = "sigmoid"
	ActTanh    = "tanh"
)

// MLP is a fully connected network y = W_L φ(…φ(W_1 x + b_1)…) + b_L with
// softmax cross-entropy loss, supporting first- and second-order backprop.
type MLP struct {
	Sizes []int // [in, hidden..., classes]
	Ws    []*tensor.Tensor
	Bs    []*tensor.Tensor
	Act   string
}

// NewMLP builds an MLP with Xavier-initialized weights.
func NewMLP(sizes []int, act string, rng *tensor.RNG) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("attack: MLP needs at least [in out] sizes, got %v", sizes))
	}
	if act != ActSigmoid && act != ActTanh {
		panic(fmt.Sprintf("attack: unsupported activation %q", act))
	}
	m := &MLP{Sizes: append([]int(nil), sizes...), Act: act}
	for l := 0; l+1 < len(sizes); l++ {
		w := tensor.New(sizes[l+1], sizes[l])
		rng.Xavier(w, sizes[l], sizes[l+1])
		m.Ws = append(m.Ws, w)
		m.Bs = append(m.Bs, tensor.New(sizes[l+1]))
	}
	return m
}

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.Ws) }

// act, actPrime and actSecond evaluate φ, φ′ and φ″ element-wise.
func (m *MLP) act(v float64) float64 {
	if m.Act == ActSigmoid {
		return sigmoidF(v)
	}
	return tanhF(v)
}

func (m *MLP) actPrimeFromZ(z float64) float64 {
	if m.Act == ActSigmoid {
		s := sigmoidF(z)
		return s * (1 - s)
	}
	t := tanhF(z)
	return 1 - t*t
}

func (m *MLP) actSecondFromZ(z float64) float64 {
	if m.Act == ActSigmoid {
		s := sigmoidF(z)
		return s * (1 - s) * (1 - 2*s)
	}
	t := tanhF(z)
	return -2 * t * (1 - t*t)
}

// trace holds the forward/backward intermediates of one example.
type trace struct {
	a     []*tensor.Tensor // a[0]=x, a[l+1]=φ(z[l]) (last layer identity)
	z     []*tensor.Tensor // pre-activations
	p     *tensor.Tensor   // softmax probabilities
	delta []*tensor.Tensor // backprop errors per layer
	c     []*tensor.Tensor // c[l] = W[l+1]ᵀ delta[l+1] (l < L-1)
}

// forwardBackward runs a full pass and returns the trace, the per-layer
// weight gradients G[l] = delta[l]·a[l]ᵀ, and bias gradients delta[l].
func (m *MLP) forwardBackward(x *tensor.Tensor, label int) (*trace, []*tensor.Tensor, []*tensor.Tensor) {
	L := m.Layers()
	tr := &trace{
		a:     make([]*tensor.Tensor, L+1),
		z:     make([]*tensor.Tensor, L),
		delta: make([]*tensor.Tensor, L),
		c:     make([]*tensor.Tensor, L),
	}
	tr.a[0] = x
	for l := 0; l < L; l++ {
		z := tensor.MatVec(m.Ws[l], tr.a[l])
		z.Add(m.Bs[l])
		tr.z[l] = z
		if l < L-1 {
			a := z.Clone()
			d := a.Data()
			for i, v := range d {
				d[i] = m.act(v)
			}
			tr.a[l+1] = a
		} else {
			tr.a[l+1] = z // logits
		}
	}

	// Softmax + cross-entropy error at the top.
	tr.p = softmax(tr.z[L-1])
	top := tr.p.Clone()
	top.Data()[label]--
	tr.delta[L-1] = top
	for l := L - 2; l >= 0; l-- {
		c := tensor.MatVecT(m.Ws[l+1], tr.delta[l+1])
		tr.c[l] = c
		d := c.Clone()
		dd, zd := d.Data(), tr.z[l].Data()
		for i := range dd {
			dd[i] *= m.actPrimeFromZ(zd[i])
		}
		tr.delta[l] = d
	}

	gw := make([]*tensor.Tensor, L)
	gb := make([]*tensor.Tensor, L)
	for l := 0; l < L; l++ {
		g := tensor.New(m.Sizes[l+1], m.Sizes[l])
		tensor.AddOuter(g, 1, tr.delta[l], tr.a[l])
		gw[l] = g
		gb[l] = tr.delta[l].Clone()
	}
	return tr, gw, gb
}

// Gradients returns the loss and the per-example weight/bias gradients.
func (m *MLP) Gradients(x *tensor.Tensor, label int) (loss float64, gw, gb []*tensor.Tensor) {
	tr, gw, gb := m.forwardBackward(x, label)
	pl := tr.p.Data()[label]
	if pl < 1e-300 {
		pl = 1e-300
	}
	return -ln(pl), gw, gb
}

// Predict returns the argmax class of the logits.
func (m *MLP) Predict(x *tensor.Tensor) int {
	L := m.Layers()
	a := x
	for l := 0; l < L; l++ {
		z := tensor.MatVec(m.Ws[l], a)
		z.Add(m.Bs[l])
		if l < L-1 {
			d := z.Data()
			for i, v := range d {
				d[i] = m.act(v)
			}
		}
		a = z
	}
	best, bestIdx := a.Data()[0], 0
	for i, v := range a.Data() {
		if v > best {
			best = v
			bestIdx = i
		}
	}
	return bestIdx
}

// GradMatch evaluates the gradient-matching objective for a candidate batch:
//
//	D(x₁..x_B) = Σ_l ‖ (1/B)Σ_j G_l(x_j) − G*_l ‖² + ‖ (1/B)Σ_j δ_l(x_j) − b*_l ‖²
//
// and returns D together with ∇_{x_j} D for every batch element, computed by
// reverse-mode differentiation through the backpropagation computation
// itself (second-order chain). B=1 is the per-example (type-2) attack.
func (m *MLP) GradMatch(xs []*tensor.Tensor, labels []int, targetW, targetB []*tensor.Tensor) (float64, []*tensor.Tensor) {
	return m.GradMatchMasked(xs, labels, targetW, targetB, nil, nil)
}

// GradMatchMasked is GradMatch restricted to a subset of gradient entries:
// residuals are multiplied element-wise by the 0/1 masks before entering the
// objective. This models an adversary attacking selectively shared gradients
// (DSSGD, communication-efficient FL) who knows which entries were
// transmitted. nil masks match everything.
func (m *MLP) GradMatchMasked(xs []*tensor.Tensor, labels []int, targetW, targetB, maskW, maskB []*tensor.Tensor) (float64, []*tensor.Tensor) {
	L := m.Layers()
	if len(xs) == 0 || len(xs) != len(labels) {
		panic(fmt.Sprintf("attack: GradMatch batch mismatch: %d inputs, %d labels", len(xs), len(labels)))
	}
	if len(targetW) != L || len(targetB) != L {
		panic(fmt.Sprintf("attack: GradMatch target has %d/%d layers, want %d", len(targetW), len(targetB), L))
	}
	if (maskW != nil && len(maskW) != L) || (maskB != nil && len(maskB) != L) {
		panic("attack: GradMatch mask layer count mismatch")
	}
	B := len(xs)
	invB := 1 / float64(B)

	traces := make([]*trace, B)
	meanGW := make([]*tensor.Tensor, L)
	meanGB := make([]*tensor.Tensor, L)
	for l := 0; l < L; l++ {
		meanGW[l] = tensor.New(m.Sizes[l+1], m.Sizes[l])
		meanGB[l] = tensor.New(m.Sizes[l+1])
	}
	for j, x := range xs {
		tr, gw, gb := m.forwardBackward(x, labels[j])
		traces[j] = tr
		for l := 0; l < L; l++ {
			meanGW[l].AddScaled(invB, gw[l])
			meanGB[l].AddScaled(invB, gb[l])
		}
	}

	// Residuals and objective value.
	var loss float64
	barGW := make([]*tensor.Tensor, L) // dD/d(meanGW) = 2·residual
	barGB := make([]*tensor.Tensor, L)
	for l := 0; l < L; l++ {
		rw := meanGW[l].Clone()
		rw.Sub(targetW[l])
		rb := meanGB[l].Clone()
		rb.Sub(targetB[l])
		if maskW != nil {
			applyMask(rw, maskW[l])
		}
		if maskB != nil {
			applyMask(rb, maskB[l])
		}
		loss += rw.Dot(rw) + rb.Dot(rb)
		rw.Scale(2)
		rb.Scale(2)
		barGW[l] = rw
		barGB[l] = rb
	}

	grads := make([]*tensor.Tensor, B)
	for j := range xs {
		grads[j] = m.inputAdjoint(traces[j], barGW, barGB, invB)
	}
	return loss, grads
}

// inputAdjoint computes ∇ₓD for one batch element given the shared
// residual adjoints. scale = 1/B accounts for batch averaging of gradients.
func (m *MLP) inputAdjoint(tr *trace, barGW, barGB []*tensor.Tensor, scale float64) *tensor.Tensor {
	L := m.Layers()

	// direct(δ_l): contributions of G_l = δ_l a_lᵀ and the bias gradient.
	direct := make([]*tensor.Tensor, L)
	for l := 0; l < L; l++ {
		d := tensor.MatVec(barGW[l], tr.a[l])
		d.AddScaled(1, barGB[l])
		d.Scale(scale)
		direct[l] = d
	}

	// Ascending pass through the δ recursion (δ_l depends on δ_{l+1}):
	// adjoints flow from δ_0 up to δ_{L-1}.
	barDelta := make([]*tensor.Tensor, L)
	zbarD := make([]*tensor.Tensor, L) // δ-chain contribution to bar(z_l)
	barDelta[0] = direct[0].Clone()
	if L == 1 {
		// Single layer: only the softmax term below applies.
	}
	for l := 0; l+1 < L; l++ {
		// δ_l = c_l ⊙ φ'(z_l)
		barC := barDelta[l].Clone()
		zb := barDelta[l].Clone()
		bcd, zbd := barC.Data(), zb.Data()
		zd, cd := tr.z[l].Data(), tr.c[l].Data()
		for i := range bcd {
			bcd[i] *= m.actPrimeFromZ(zd[i])
			zbd[i] *= cd[i] * m.actSecondFromZ(zd[i])
		}
		zbarD[l] = zb
		next := tensor.MatVec(m.Ws[l+1], barC)
		next.Add(direct[l+1])
		barDelta[l+1] = next
	}
	// Top layer: δ_{L-1} = softmax(z_{L-1}) − y, so
	// bar(z_{L-1}) = (diag(p) − p pᵀ)·bar(δ_{L-1}).
	top := barDelta[L-1]
	p := tr.p
	pDotBar := p.Dot(top)
	zbTop := tensor.New(p.Len())
	ztd, pd, td := zbTop.Data(), p.Data(), top.Data()
	for i := range ztd {
		ztd[i] = pd[i]*td[i] - pd[i]*pDotBar
	}
	zbarD[L-1] = zbTop

	// Descending pass through the forward chain.
	barZ := make([]*tensor.Tensor, L)
	barZ[L-1] = zbarD[L-1]
	for l := L - 2; l >= 0; l-- {
		// bar(a_{l+1}) = barGW[l+1]ᵀ δ_{l+1}·scale + W_{l+1}ᵀ bar(z_{l+1})
		barA := tensor.MatVecT(barGW[l+1], tr.delta[l+1])
		barA.Scale(scale)
		barA.AddScaled(1, tensor.MatVecT(m.Ws[l+1], barZ[l+1]))
		// bar(z_l) = zbarD[l] + bar(a_{l+1}) ⊙ φ'(z_l)
		bz := barA
		bzd, zd := bz.Data(), tr.z[l].Data()
		for i := range bzd {
			bzd[i] *= m.actPrimeFromZ(zd[i])
		}
		bz.Add(zbarD[l])
		barZ[l] = bz
	}

	// bar(x) = barGW[0]ᵀ δ_0·scale + W_0ᵀ bar(z_0)
	gx := tensor.MatVecT(barGW[0], tr.delta[0])
	gx.Scale(scale)
	gx.AddScaled(1, tensor.MatVecT(m.Ws[0], barZ[0]))
	return gx
}
