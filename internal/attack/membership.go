package attack

import (
	"sort"

	"fedcdp/internal/tensor"
)

// Membership inference (Shokri et al., Yeom et al.) is the second class of
// gradient-leakage threat the paper's related work surveys: an adversary
// with query access to the trained federated model decides whether a given
// example was part of a client's training data. This file implements the
// loss-threshold attack — members systematically incur lower loss — and the
// membership-advantage metric used to evaluate how much differential
// privacy (Fed-CDP) suppresses it.

// Sample is one labelled example for membership evaluation.
type Sample struct {
	X *tensor.Tensor
	Y int
}

// LossFn scores one example under the attacked model (lower = more
// member-like). nn.Model.Loss and MLP loss both fit.
type LossFn func(x *tensor.Tensor, label int) float64

// MembershipResult reports the loss-threshold attack's effectiveness.
type MembershipResult struct {
	// Advantage is TPR − FPR at the best threshold: 0 = no leakage (the DP
	// ideal), 1 = perfect membership disclosure.
	Advantage float64
	// TPR and FPR at the chosen threshold.
	TPR, FPR float64
	// Threshold is the loss value below which examples are called members.
	Threshold float64
	// AUC is the area under the ROC curve of the loss scores.
	AUC float64
}

// MembershipInference mounts the loss-threshold attack: it scores members
// and non-members, sweeps all thresholds, and reports the maximum
// membership advantage. It panics if either set is empty.
func MembershipInference(loss LossFn, members, nonMembers []Sample) MembershipResult {
	if len(members) == 0 || len(nonMembers) == 0 {
		panic("attack: membership inference needs non-empty member and non-member sets")
	}
	type scored struct {
		loss   float64
		member bool
	}
	all := make([]scored, 0, len(members)+len(nonMembers))
	for _, s := range members {
		all = append(all, scored{loss.score(s), true})
	}
	for _, s := range nonMembers {
		all = append(all, scored{loss.score(s), false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].loss < all[j].loss })

	nM, nN := float64(len(members)), float64(len(nonMembers))
	best := MembershipResult{}
	var tp, fp float64
	var auc float64
	// Sweep thresholds in increasing loss order; also accumulate AUC via the
	// rank statistic.
	prevFPR, prevTPR := 0.0, 0.0
	for _, s := range all {
		if s.member {
			tp++
		} else {
			fp++
		}
		tpr, fpr := tp/nM, fp/nN
		if adv := tpr - fpr; adv > best.Advantage {
			best = MembershipResult{Advantage: adv, TPR: tpr, FPR: fpr, Threshold: s.loss}
		}
		auc += (fpr - prevFPR) * (tpr + prevTPR) / 2
		prevFPR, prevTPR = fpr, tpr
	}
	best.AUC = auc
	return best
}

func (f LossFn) score(s Sample) float64 { return f(s.X, s.Y) }
