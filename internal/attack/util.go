package attack

import (
	"math"

	"fedcdp/internal/tensor"
)

func sigmoidF(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

func tanhF(x float64) float64 { return math.Tanh(x) }

func ln(x float64) float64 { return math.Log(x) }

// softmax returns the stable softmax of logits as a new tensor.
func softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := logits.Clone()
	d := out.Data()
	maxV := math.Inf(-1)
	for _, v := range d {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range d {
		e := math.Exp(v - maxV)
		d[i] = e
		sum += e
	}
	for i := range d {
		d[i] /= sum
	}
	return out
}

// RMSE is the paper's attack reconstruction distance: the root mean squared
// deviation between the reconstructed and true inputs.
func RMSE(a, b *tensor.Tensor) float64 {
	if a.Len() != b.Len() {
		panic("attack: RMSE length mismatch")
	}
	var s float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		d := ad[i] - bd[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(ad)))
}

// PatternedSeed returns the attack's initialization: a small random patch
// tiled across the input (the "patterned random" initialization that the
// CPL framework found to maximize attack success rate and convergence).
func PatternedSeed(n int, rng *tensor.RNG) *tensor.Tensor {
	const patch = 16
	vals := make([]float64, patch)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	out := tensor.New(n)
	d := out.Data()
	for i := range d {
		d[i] = vals[i%patch]
	}
	return out
}

// InferLabel implements the iDLG label-inference trick: with softmax
// cross-entropy, the last-layer bias gradient is p − onehot(y), so the only
// negative entry marks the true label. Works on any single-example leak,
// including noisy ones (argmin is noise-robust for moderate σ).
func InferLabel(lastLayerBiasGrad *tensor.Tensor) int {
	best, bestIdx := math.Inf(1), 0
	for i, v := range lastLayerBiasGrad.Data() {
		if v < best {
			best = v
			bestIdx = i
		}
	}
	return bestIdx
}

// applyMask zeroes every entry of t where mask is zero. Masked residuals and
// their adjoints share the same tensor, so masking once is sufficient for
// the second-order chain.
func applyMask(t, mask *tensor.Tensor) {
	td, md := t.Data(), mask.Data()
	for i := range td {
		if md[i] == 0 {
			td[i] = 0
		}
	}
}

// NonzeroMask returns 0/1 masks marking the nonzero entries of each tensor —
// the information a selective-sharing adversary has about which gradient
// entries were actually transmitted.
func NonzeroMask(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		m := tensor.New(t.Shape()...)
		md, td := m.Data(), t.Data()
		for j, v := range td {
			if v != 0 {
				md[j] = 1
			}
		}
		out[i] = m
	}
	return out
}

func clamp01InPlace(t *tensor.Tensor) {
	d := t.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		} else if v > 1 {
			d[i] = 1
		}
	}
}
