package attack

import (
	"math"
	"runtime"
	"testing"

	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

// Gradient-leakage reconstruction goldens: the attack is a seeded
// optimization, so a fixed (victim seed, attack seed) pair must reproduce
// the identical reconstruction — every float64 bit, the iteration count,
// the final loss — across invocations and GOMAXPROCS settings. Table VII
// numbers are only citable if the attack that produced them replays.

// digestRecon folds a reconstruction into an FNV-1a fingerprint, the same
// fold the core acceptance tests use for model parameters.
func digestRecon(ts []*tensor.Tensor) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, t := range ts {
		for _, v := range t.Data() {
			b := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (b >> s) & 0xff
				h *= prime
			}
		}
	}
	return h
}

// reconFingerprint is everything an attack run observably produced.
type reconFingerprint struct {
	digest     uint64
	success    bool
	revealed   bool
	iterations int
	loss       float64
	distance   float64
}

func fingerprintReconstruct(t *testing.T, victimSeed, attackSeed int64, sanitize bool) reconFingerprint {
	t.Helper()
	rng := tensor.NewRNG(victimSeed)
	m := NewMLP([]int{24, 12, 4}, ActSigmoid, rng)
	x := tensor.New(24)
	rng.FillUniform(x, 0, 1)
	label := 1
	_, gw, gb := m.Gradients(x, label)
	if sanitize {
		dp.Sanitize(append(gw, gb...), 4, 6, tensor.NewRNG(99))
	}
	res := Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x}, Config{Seed: attackSeed})
	return reconFingerprint{
		digest:     digestRecon(res.Reconstruction),
		success:    res.Success,
		revealed:   res.Revealed,
		iterations: res.Iterations,
		loss:       res.FinalLoss,
		distance:   res.Distance,
	}
}

func TestReconstructionGoldenDeterministic(t *testing.T) {
	cases := []struct {
		name     string
		sanitize bool
	}{
		{"raw-gradients", false},
		{"fedcdp-sanitized", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := fingerprintReconstruct(t, 10, 1, tc.sanitize)
			if repeat := fingerprintReconstruct(t, 10, 1, tc.sanitize); repeat != base {
				t.Fatalf("same seeds, different attack:\n%+v\nvs\n%+v", repeat, base)
			}
			// A successful attack on raw gradients and a defeated one on
			// sanitized gradients are both deterministic; they must also be
			// the outcomes the Table VII claims name.
			if tc.sanitize && base.success {
				t.Fatal("attack succeeded against Fed-CDP sanitized gradients")
			}
			if !tc.sanitize && !base.success {
				t.Fatalf("attack failed on raw gradients: %+v", base)
			}
		})
	}
}

// The attack seed is part of the identity: different seeds start from
// different patterned initializations and may not land on identical bits.
func TestReconstructionSeedMoves(t *testing.T) {
	a := fingerprintReconstruct(t, 10, 1, false)
	b := fingerprintReconstruct(t, 10, 2, false)
	if a.digest == b.digest {
		t.Fatal("different attack seeds produced bit-identical reconstructions")
	}
	// Both must still succeed: the claim is seeded determinism, not luck.
	if !a.success || !b.success {
		t.Fatalf("raw-gradient attack must succeed under any seed: %+v / %+v", a, b)
	}
}

// The reconstruction is a single-threaded optimization; scheduling must be
// unable to touch it. Sweep GOMAXPROCS like the core acceptance tests do.
func TestReconstructionGOMAXPROCSInvariant(t *testing.T) {
	base := fingerprintReconstruct(t, 10, 1, false)
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		got := fingerprintReconstruct(t, 10, 1, false)
		runtime.GOMAXPROCS(old)
		if got != base {
			t.Fatalf("GOMAXPROCS=%d changed the attack:\n%+v\nvs\n%+v", procs, got, base)
		}
	}
}
