package attack

import (
	"math"
	"testing"

	"fedcdp/internal/dp"
	"fedcdp/internal/tensor"
)

func TestRMSE(t *testing.T) {
	a := tensor.FromSlice([]float64{0, 0}, 2)
	b := tensor.FromSlice([]float64{3, 4}, 2)
	want := math.Sqrt(12.5)
	if got := RMSE(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if RMSE(a, a) != 0 {
		t.Fatal("RMSE of identical tensors must be 0")
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMSE(tensor.New(2), tensor.New(3))
}

func TestPatternedSeedTiles(t *testing.T) {
	s := PatternedSeed(64, tensor.NewRNG(1))
	d := s.Data()
	for i := 16; i < 64; i++ {
		if d[i] != d[i%16] {
			t.Fatal("patterned seed must tile a 16-value patch")
		}
	}
	for _, v := range d {
		if v < 0 || v >= 1 {
			t.Fatalf("seed value %v outside [0,1)", v)
		}
	}
}

func TestInferLabel(t *testing.T) {
	// Last-layer bias gradient is p - onehot(y): only the y entry negative.
	g := tensor.FromSlice([]float64{0.2, 0.3, -0.7, 0.2}, 4)
	if got := InferLabel(g); got != 2 {
		t.Fatalf("InferLabel = %d, want 2", got)
	}
}

func TestInferLabelFromRealGradient(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := NewMLP([]int{10, 8, 4}, ActSigmoid, rng)
	x := tensor.New(10)
	rng.FillUniform(x, 0, 1)
	for label := 0; label < 4; label++ {
		_, _, gb := m.Gradients(x, label)
		if got := InferLabel(gb[m.Layers()-1]); got != label {
			t.Fatalf("iDLG inferred %d, want %d", got, label)
		}
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	obj := func(x []float64) (float64, []float64) {
		var loss float64
		g := make([]float64, len(x))
		for i, v := range x {
			d := v - float64(i)
			loss += d * d
			g[i] = 2 * d
		}
		return loss, g
	}
	x := []float64{5, 5, 5}
	_, loss := Adam(obj, x, 0.3, 500, nil)
	if loss > 1e-3 {
		t.Fatalf("Adam final loss %v", loss)
	}
}

func TestLBFGSMinimizesQuadratic(t *testing.T) {
	obj := func(x []float64) (float64, []float64) {
		var loss float64
		g := make([]float64, len(x))
		for i, v := range x {
			d := v - float64(i)
			w := float64(i + 1) // ill-conditioned diagonal
			loss += w * d * d
			g[i] = 2 * w * d
		}
		return loss, g
	}
	x := make([]float64, 10)
	iters, loss := LBFGS(obj, x, 200, nil)
	if loss > 1e-8 {
		t.Fatalf("LBFGS final loss %v after %d iters", loss, iters)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	obj := func(x []float64) (float64, []float64) {
		a, b := x[0], x[1]
		loss := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		return loss, []float64{
			-2*(1-a) - 400*a*(b-a*a),
			200 * (b - a*a),
		}
	}
	x := []float64{-1.2, 1}
	_, loss := LBFGS(obj, x, 500, nil)
	if loss > 1e-6 {
		t.Fatalf("LBFGS Rosenbrock loss %v (x=%v)", loss, x)
	}
}

func TestStopCallbackHalts(t *testing.T) {
	obj := func(x []float64) (float64, []float64) {
		return x[0] * x[0], []float64{2 * x[0]}
	}
	calls := 0
	stop := func(iter int, loss float64) bool {
		calls++
		return true // halt on first callback
	}
	x := []float64{100}
	iters, _ := LBFGS(obj, x, 100, stop)
	if iters != 1 || calls != 1 {
		t.Fatalf("LBFGS ran %d iters with %d callbacks, want stop at 1", iters, calls)
	}
	calls = 0
	stop3 := func(iter int, loss float64) bool {
		calls++
		return calls >= 3
	}
	x = []float64{100}
	iters, _ = Adam(obj, x, 0.1, 100, stop3)
	if iters != 3 {
		t.Fatalf("Adam ran %d iters, want stop at 3", iters)
	}
}

// victimSetup builds an MLP, a private input, and its leaked gradients.
func victimSetup(t *testing.T, seed int64, n, classes int) (*MLP, *tensor.Tensor, int, []*tensor.Tensor, []*tensor.Tensor) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	m := NewMLP([]int{n, 12, classes}, ActSigmoid, rng)
	x := tensor.New(n)
	rng.FillUniform(x, 0, 1)
	label := 1
	_, gw, gb := m.Gradients(x, label)
	return m, x, label, gw, gb
}

func TestReconstructSucceedsOnRawGradients(t *testing.T) {
	// Type-2 leakage on non-private training: the attack must reconstruct
	// the input with low distance, like the paper's Table VII non-private row.
	m, x, label, gw, gb := victimSetup(t, 10, 24, 4)
	res := Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x}, Config{Seed: 1})
	if !res.Success {
		t.Fatalf("attack failed on raw gradients (loss %v, dist %v)", res.FinalLoss, res.Distance)
	}
	if res.Distance > 0.05 {
		t.Fatalf("reconstruction distance %v, want < 0.05", res.Distance)
	}
	if res.Iterations >= 300 {
		t.Fatalf("attack took %d iterations, want fast convergence", res.Iterations)
	}
}

func TestReconstructWithInferredLabel(t *testing.T) {
	m, x, label, gw, gb := victimSetup(t, 11, 24, 4)
	inferred := InferLabel(gb[m.Layers()-1])
	if inferred != label {
		t.Fatalf("label inference failed: %d vs %d", inferred, label)
	}
	res := Reconstruct(m, gw, gb, []int{inferred}, []*tensor.Tensor{x}, Config{Seed: 2})
	if !res.Success {
		t.Fatal("attack with inferred label failed on raw gradients")
	}
}

func TestReconstructFailsOnFedCDPGradients(t *testing.T) {
	// Gradients sanitized per example (Fed-CDP, C=4, σ=6) must defeat the
	// attack: high reconstruction distance, no convergence.
	m, x, label, gw, gb := victimSetup(t, 12, 24, 4)
	noiseRNG := tensor.NewRNG(99)
	dp.Sanitize(append(gw, gb...), 4, 6, noiseRNG) // sanitizes both lists in place
	res := Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x}, Config{Seed: 3})
	if res.Success {
		t.Fatalf("attack succeeded against Fed-CDP sanitized gradients (dist %v)", res.Distance)
	}
	if res.Distance < 0.1 {
		t.Fatalf("reconstruction distance %v suspiciously low under σ=6 noise", res.Distance)
	}
}

func TestReconstructBatch(t *testing.T) {
	// Type-0/1 leakage: batch-averaged gradients, joint reconstruction of
	// B=2 inputs.
	rng := tensor.NewRNG(13)
	m := NewMLP([]int{16, 10, 4}, ActSigmoid, rng)
	const B = 2
	truth := make([]*tensor.Tensor, B)
	labels := []int{0, 2}
	targetW := make([]*tensor.Tensor, m.Layers())
	targetB := make([]*tensor.Tensor, m.Layers())
	for l := 0; l < m.Layers(); l++ {
		targetW[l] = tensor.New(m.Sizes[l+1], m.Sizes[l])
		targetB[l] = tensor.New(m.Sizes[l+1])
	}
	for j := 0; j < B; j++ {
		truth[j] = tensor.New(16)
		rng.FillUniform(truth[j], 0, 1)
		_, gw, gb := m.Gradients(truth[j], labels[j])
		for l := 0; l < m.Layers(); l++ {
			targetW[l].AddScaled(1.0/B, gw[l])
			targetB[l].AddScaled(1.0/B, gb[l])
		}
	}
	res := Reconstruct(m, targetW, targetB, labels, truth, Config{Seed: 4, MaxIters: 500})
	if res.Distance > 0.15 {
		t.Fatalf("batch reconstruction distance %v, want < 0.15", res.Distance)
	}
}

func TestReconstructAdamAlsoWorks(t *testing.T) {
	m, x, label, gw, gb := victimSetup(t, 14, 16, 3)
	res := Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x},
		Config{Seed: 5, Optimizer: OptAdam, MaxIters: 2000, AdamLR: 0.05, LossThreshold: 1e-5})
	if res.Distance > 0.15 {
		t.Fatalf("Adam reconstruction distance %v", res.Distance)
	}
}

func TestReconstructUnknownOptimizerPanics(t *testing.T) {
	m, x, label, gw, gb := victimSetup(t, 15, 8, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown optimizer")
		}
	}()
	Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x}, Config{Optimizer: "sgd"})
}

func TestReconstructPanicsOnBadArgs(t *testing.T) {
	m, x, _, gw, gb := victimSetup(t, 16, 8, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched labels/truth")
		}
	}()
	Reconstruct(m, gw, gb, []int{0, 1}, []*tensor.Tensor{x}, Config{})
}

func TestReconstructionClampedToUnitRange(t *testing.T) {
	m, x, label, gw, gb := victimSetup(t, 17, 12, 3)
	res := Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x}, Config{Seed: 6, MaxIters: 20})
	for _, r := range res.Reconstruction {
		for _, v := range r.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("reconstruction value %v outside [0,1]", v)
			}
		}
	}
}

func TestMeanBestRMSEOrderFree(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 0}, 2)
	b := tensor.FromSlice([]float64{0, 1}, 2)
	// Reconstructions in swapped order must still match perfectly.
	if got := meanBestRMSE([]*tensor.Tensor{b, a}, []*tensor.Tensor{a, b}); got != 0 {
		t.Fatalf("order-free RMSE = %v, want 0", got)
	}
}

func TestTrajectoryRecording(t *testing.T) {
	m, x, label, gw, gb := victimSetup(t, 18, 16, 3)
	res := Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x},
		Config{Seed: 8, MaxIters: 50, RecordEvery: 5, LossThreshold: 1e-30})
	if len(res.Trajectory) == 0 {
		t.Fatal("RecordEvery must record trajectory points")
	}
	prevIter := 0
	for _, p := range res.Trajectory {
		if p.Iteration%5 != 0 || p.Iteration <= prevIter-5 {
			t.Fatalf("bad trajectory point %+v", p)
		}
		if p.Loss < 0 {
			t.Fatalf("negative loss in trajectory: %+v", p)
		}
		prevIter = p.Iteration
	}
	// Convergent attack: final recorded loss below the first.
	if res.Trajectory[len(res.Trajectory)-1].Loss >= res.Trajectory[0].Loss {
		t.Fatal("attack loss did not decrease along the trajectory")
	}
}

func TestTrajectoryOffByDefault(t *testing.T) {
	m, x, label, gw, gb := victimSetup(t, 19, 8, 3)
	res := Reconstruct(m, gw, gb, []int{label}, []*tensor.Tensor{x}, Config{Seed: 9, MaxIters: 10})
	if res.Trajectory != nil {
		t.Fatal("trajectory must be nil when RecordEvery is 0")
	}
}
