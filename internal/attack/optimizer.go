package attack

import "math"

// Objective evaluates a scalar loss and its gradient at a flat point.
type Objective func(x []float64) (loss float64, grad []float64)

// StopFn is called after every optimizer iteration with the current loss;
// returning true stops the optimization (e.g. attack success threshold hit).
type StopFn func(iter int, loss float64) bool

// Adam minimizes obj from x (in place) for up to maxIters iterations.
// It returns the number of iterations executed and the final loss.
func Adam(obj Objective, x []float64, lr float64, maxIters int, stop StopFn) (int, float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	m := make([]float64, len(x))
	v := make([]float64, len(x))
	loss, grad := obj(x)
	for it := 1; it <= maxIters; it++ {
		for i, g := range grad {
			m[i] = beta1*m[i] + (1-beta1)*g
			v[i] = beta2*v[i] + (1-beta2)*g*g
			mh := m[i] / (1 - math.Pow(beta1, float64(it)))
			vh := v[i] / (1 - math.Pow(beta2, float64(it)))
			x[i] -= lr * mh / (math.Sqrt(vh) + eps)
		}
		loss, grad = obj(x)
		if stop != nil && stop(it, loss) {
			return it, loss
		}
	}
	return maxIters, loss
}

// LBFGS minimizes obj from x (in place) with the two-loop recursion and an
// Armijo backtracking line search — the optimizer the paper's attack uses.
// It returns the number of iterations executed and the final loss.
func LBFGS(obj Objective, x []float64, maxIters int, stop StopFn) (int, float64) {
	const (
		hist     = 10
		armijoC  = 1e-4
		shrink   = 0.5
		maxLS    = 25
		gradTol  = 1e-12
		stepInit = 1.0
	)
	n := len(x)
	loss, grad := obj(x)

	var sHist, yHist [][]float64
	var rhoHist []float64

	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}

	for it := 1; it <= maxIters; it++ {
		// Two-loop recursion for the search direction d = -H·grad.
		q := append([]float64(nil), grad...)
		k := len(sHist)
		alpha := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			alpha[i] = rhoHist[i] * dot(sHist[i], q)
			for j := range q {
				q[j] -= alpha[i] * yHist[i][j]
			}
		}
		// Initial Hessian scaling.
		gamma := 1.0
		if k > 0 {
			sy := dot(sHist[k-1], yHist[k-1])
			yy := dot(yHist[k-1], yHist[k-1])
			if yy > 0 {
				gamma = sy / yy
			}
		}
		for j := range q {
			q[j] *= gamma
		}
		for i := 0; i < k; i++ {
			beta := rhoHist[i] * dot(yHist[i], q)
			for j := range q {
				q[j] += (alpha[i] - beta) * sHist[i][j]
			}
		}
		d := q
		for j := range d {
			d[j] = -d[j]
		}
		// Ensure descent; otherwise reset to steepest descent.
		dg := dot(d, grad)
		if dg >= 0 {
			for j := range d {
				d[j] = -grad[j]
			}
			dg = -dot(grad, grad)
			sHist, yHist, rhoHist = nil, nil, nil
		}
		if -dg < gradTol {
			return it - 1, loss
		}

		// Armijo backtracking line search with expansion: if the unit step
		// already satisfies Armijo, grow the step while it keeps improving
		// (prevents crawling through curved valleys with a conservative
		// initial Hessian scaling).
		step := stepInit
		xNew := make([]float64, n)
		eval := func(s float64) (float64, []float64) {
			for j := range xNew {
				xNew[j] = x[j] + s*d[j]
			}
			return obj(xNew)
		}
		lossNew, gradNew := eval(step)
		ok := lossNew <= loss+armijoC*step*dg
		if ok {
			for grow := 0; grow < 12; grow++ {
				lossTry, gradTry := eval(step * 2)
				if lossTry <= loss+armijoC*step*2*dg && lossTry < lossNew {
					step *= 2
					lossNew, gradNew = lossTry, gradTry
					continue
				}
				break
			}
			// Re-evaluate at the chosen step so xNew matches lossNew.
			lossNew, gradNew = eval(step)
		} else {
			for ls := 0; ls < maxLS; ls++ {
				step *= shrink
				lossNew, gradNew = eval(step)
				if lossNew <= loss+armijoC*step*dg {
					ok = true
					break
				}
			}
		}
		if !ok {
			// No progress possible along this direction.
			return it - 1, loss
		}

		s := make([]float64, n)
		y := make([]float64, n)
		for j := range s {
			s[j] = xNew[j] - x[j]
			y[j] = gradNew[j] - grad[j]
		}
		if sy := dot(s, y); sy > 1e-10 {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > hist {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
		}
		copy(x, xNew)
		loss, grad = lossNew, gradNew
		if stop != nil && stop(it, loss) {
			return it, loss
		}
	}
	return maxIters, loss
}
