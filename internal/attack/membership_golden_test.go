package attack

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

// Golden regression coverage for the loss-threshold membership attack:
// an exact hand-computed micro case pinning the threshold-sweep and AUC
// arithmetic, and a seeded statistical case pinning the full pipeline's
// output to 15 digits.

func TestMembershipHandComputedCase(t *testing.T) {
	// members lose {0.1, 0.35}, non-members {0.2, 0.3}. Sweeping sorted
	// thresholds: after 0.1 → TPR ½, FPR 0 (advantage ½, the maximum);
	// after 0.2 → ½,½; after 0.3 → ½,1; after 0.35 → 1,1. ROC points
	// (0,½),(½,½),(1,½),(1,1) integrate to AUC ½.
	xs := make([]*tensor.Tensor, 4)
	for i := range xs {
		xs[i] = tensor.FromSlice([]float64{float64(i)}, 1)
	}
	losses := map[*tensor.Tensor]float64{xs[0]: 0.1, xs[1]: 0.35, xs[2]: 0.2, xs[3]: 0.3}
	members := []Sample{{X: xs[0]}, {X: xs[1]}}
	nonMembers := []Sample{{X: xs[2]}, {X: xs[3]}}
	res := MembershipInference(func(x *tensor.Tensor, y int) float64 { return losses[x] }, members, nonMembers)
	if res.Advantage != 0.5 || res.TPR != 0.5 || res.FPR != 0 {
		t.Fatalf("advantage/TPR/FPR = %v/%v/%v, want 0.5/0.5/0", res.Advantage, res.TPR, res.FPR)
	}
	if res.Threshold != 0.1 {
		t.Fatalf("threshold = %v, want 0.1 (the loss attaining the best advantage)", res.Threshold)
	}
	if res.AUC != 0.5 {
		t.Fatalf("AUC = %v, want 0.5", res.AUC)
	}
}

func TestMembershipSeededGolden(t *testing.T) {
	// Members' losses ~ N(0.4, 0.2²), non-members' ~ N(0.6, 0.2²), 60 of
	// each from one seeded stream: a moderate, realistic leakage signal.
	// The pinned values are regression anchors for the sweep and the rank
	// statistic; any change to the attack arithmetic must update them
	// consciously.
	rng := tensor.NewRNG(2024)
	mk := func(n int, mean float64, losses map[*tensor.Tensor]float64) []Sample {
		ss := make([]Sample, n)
		for i := range ss {
			x := tensor.New(4)
			rng.FillUniform(x, 0, 1)
			ss[i] = Sample{X: x, Y: i % 3}
			losses[x] = rng.Normal(mean, 0.2)
		}
		return ss
	}
	losses := map[*tensor.Tensor]float64{}
	members := mk(60, 0.4, losses)
	nonMembers := mk(60, 0.6, losses)
	res := MembershipInference(func(x *tensor.Tensor, y int) float64 { return losses[x] }, members, nonMembers)

	const tol = 1e-12
	golden := MembershipResult{
		Advantage: 0.316666666666667,
		TPR:       0.683333333333333,
		FPR:       0.366666666666667,
		Threshold: 0.524194988700935,
		AUC:       0.6975,
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.15g, golden %.15g", name, got, want)
		}
	}
	check("Advantage", res.Advantage, golden.Advantage)
	check("TPR", res.TPR, golden.TPR)
	check("FPR", res.FPR, golden.FPR)
	check("Threshold", res.Threshold, golden.Threshold)
	check("AUC", res.AUC, golden.AUC)

	// Internal consistency regardless of goldens.
	if res.Advantage != res.TPR-res.FPR {
		t.Error("advantage must equal TPR−FPR at the chosen threshold")
	}
	if res.AUC <= 0.5 || res.AUC > 1 {
		t.Errorf("AUC %v outside the leaking-model range (0.5, 1]", res.AUC)
	}
}

func TestMembershipAttackWeakensWithOverlap(t *testing.T) {
	// Shrinking the separation between member and non-member loss
	// distributions must shrink the attack's success — the qualitative
	// effect differential privacy buys (Table VII's Fed-CDP rows).
	attackAt := func(gap float64) float64 {
		rng := tensor.NewRNG(7)
		losses := map[*tensor.Tensor]float64{}
		mk := func(n int, mean float64) []Sample {
			ss := make([]Sample, n)
			for i := range ss {
				x := tensor.New(2)
				rng.FillUniform(x, 0, 1)
				ss[i] = Sample{X: x}
				losses[x] = rng.Normal(mean, 0.2)
			}
			return ss
		}
		members := mk(80, 0.5-gap/2)
		nonMembers := mk(80, 0.5+gap/2)
		return MembershipInference(func(x *tensor.Tensor, y int) float64 { return losses[x] }, members, nonMembers).Advantage
	}
	wide, narrow := attackAt(0.6), attackAt(0.05)
	if narrow >= wide {
		t.Fatalf("advantage must fall as distributions overlap: gap 0.6 → %v, gap 0.05 → %v", wide, narrow)
	}
	if wide < 0.5 {
		t.Fatalf("well-separated losses must leak strongly, got advantage %v", wide)
	}
}
