// Package attack implements the gradient-leakage reconstruction attacks of
// the paper's threat model (Section III): given gradients leaked from a
// client — per-example gradients mid-training (type-2) or per-client round
// updates (type-0/1) — the attacker reconstructs the private training input
// by gradient matching (DLG-style): minimize ‖∇_W L(x_rec) − g_leaked‖² over
// x_rec with L-BFGS (the paper's optimizer) or Adam.
//
// Gradient matching needs the gradient of a gradient: ∇ₓ‖∇_W L(x) − g*‖².
// This package carries an MLP with sigmoid/tanh activations whose
// second-order chain (reverse-mode through the backpropagation computation)
// is implemented analytically and validated against finite differences. The
// original DLG attack also uses sigmoid networks for exactly this
// smoothness reason; see DESIGN.md for the CNN→MLP substitution note.
//
// Reconstruction is deterministic given attack.Config.Seed (the dummy-input
// initialization is the only randomness); an MLP instance caches forward
// state and must not be shared across concurrent reconstructions. The
// victim's data comes from internal/dataset — under any heterogeneity
// scenario, since the attack only sees gradients — and the defenses under
// test are applied by the caller (internal/experiments, cmd/fedattack)
// with internal/dp's sanitize/compress operators, mirroring what each
// threat type observes in the federation.
package attack
