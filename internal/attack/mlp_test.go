package attack

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

func TestNewMLPValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"too few sizes": func() { NewMLP([]int{4}, ActSigmoid, tensor.NewRNG(1)) },
		"bad act":       func() { NewMLP([]int{4, 2}, "relu", tensor.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMLPGradientsMatchFiniteDifference(t *testing.T) {
	// First-order check: dLoss/dW against central differences.
	rng := tensor.NewRNG(1)
	m := NewMLP([]int{6, 5, 3}, ActSigmoid, rng)
	x := tensor.New(6)
	rng.FillNormal(x, 0.5, 0.5)
	label := 2
	_, gw, gb := m.Gradients(x, label)

	eps := 1e-6
	for l := 0; l < m.Layers(); l++ {
		wd := m.Ws[l].Data()
		for i := 0; i < len(wd); i += 3 { // sample every 3rd weight
			orig := wd[i]
			wd[i] = orig + eps
			lp, _, _ := m.Gradients(x, label)
			wd[i] = orig - eps
			lm, _, _ := m.Gradients(x, label)
			wd[i] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(gw[l].Data()[i]-want) > 1e-4 {
				t.Fatalf("W[%d][%d]: analytic %v, numeric %v", l, i, gw[l].Data()[i], want)
			}
		}
		bd := m.Bs[l].Data()
		for i := range bd {
			orig := bd[i]
			bd[i] = orig + eps
			lp, _, _ := m.Gradients(x, label)
			bd[i] = orig - eps
			lm, _, _ := m.Gradients(x, label)
			bd[i] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(gb[l].Data()[i]-want) > 1e-4 {
				t.Fatalf("b[%d][%d]: analytic %v, numeric %v", l, i, gb[l].Data()[i], want)
			}
		}
	}
}

// checkGradMatchGradient validates the second-order chain ∇ₓ GradMatch
// against central finite differences.
func checkGradMatchGradient(t *testing.T, act string, sizes []int, batch int) {
	t.Helper()
	rng := tensor.NewRNG(7)
	m := NewMLP(sizes, act, rng)

	// Build leaked target gradients from a "victim" batch.
	truth := make([]*tensor.Tensor, batch)
	labels := make([]int, batch)
	targetW := make([]*tensor.Tensor, m.Layers())
	targetB := make([]*tensor.Tensor, m.Layers())
	for l := 0; l < m.Layers(); l++ {
		targetW[l] = tensor.New(m.Sizes[l+1], m.Sizes[l])
		targetB[l] = tensor.New(m.Sizes[l+1])
	}
	for j := 0; j < batch; j++ {
		truth[j] = tensor.New(sizes[0])
		rng.FillUniform(truth[j], 0, 1)
		labels[j] = j % sizes[len(sizes)-1]
		_, gw, gb := m.Gradients(truth[j], labels[j])
		for l := 0; l < m.Layers(); l++ {
			targetW[l].AddScaled(1/float64(batch), gw[l])
			targetB[l].AddScaled(1/float64(batch), gb[l])
		}
	}

	// Candidate batch (different from truth).
	xs := make([]*tensor.Tensor, batch)
	for j := range xs {
		xs[j] = tensor.New(sizes[0])
		rng.FillUniform(xs[j], 0, 1)
	}
	_, grads := m.GradMatch(xs, labels, targetW, targetB)

	eps := 1e-6
	for j := 0; j < batch; j++ {
		xd := xs[j].Data()
		for i := range xd {
			orig := xd[i]
			xd[i] = orig + eps
			lp, _ := m.GradMatch(xs, labels, targetW, targetB)
			xd[i] = orig - eps
			lm, _ := m.GradMatch(xs, labels, targetW, targetB)
			xd[i] = orig
			want := (lp - lm) / (2 * eps)
			got := grads[j].Data()[i]
			if math.Abs(got-want) > 1e-4*math.Max(1, math.Abs(want)) {
				t.Fatalf("x[%d][%d]: analytic %v, numeric %v", j, i, got, want)
			}
		}
	}
}

func TestGradMatchGradientSigmoidSingle(t *testing.T) {
	checkGradMatchGradient(t, ActSigmoid, []int{8, 6, 4}, 1)
}

func TestGradMatchGradientTanhSingle(t *testing.T) {
	checkGradMatchGradient(t, ActTanh, []int{7, 5, 3}, 1)
}

func TestGradMatchGradientDeep(t *testing.T) {
	checkGradMatchGradient(t, ActSigmoid, []int{6, 8, 6, 4}, 1)
}

func TestGradMatchGradientBatch(t *testing.T) {
	checkGradMatchGradient(t, ActSigmoid, []int{6, 5, 3}, 3)
}

func TestGradMatchGradientSingleLayer(t *testing.T) {
	checkGradMatchGradient(t, ActSigmoid, []int{5, 3}, 1)
}

func TestGradMatchZeroAtTruth(t *testing.T) {
	// The objective at the true input with true labels is exactly zero.
	rng := tensor.NewRNG(2)
	m := NewMLP([]int{6, 4, 3}, ActSigmoid, rng)
	x := tensor.New(6)
	rng.FillUniform(x, 0, 1)
	_, gw, gb := m.Gradients(x, 1)
	loss, grads := m.GradMatch([]*tensor.Tensor{x}, []int{1}, gw, gb)
	if loss > 1e-20 {
		t.Fatalf("GradMatch at truth = %v, want 0", loss)
	}
	if grads[0].L2Norm() > 1e-9 {
		t.Fatalf("gradient at truth = %v, want ~0", grads[0].L2Norm())
	}
}

func TestGradMatchPanics(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := NewMLP([]int{4, 2}, ActSigmoid, rng)
	x := tensor.New(4)
	for name, f := range map[string]func(){
		"empty batch":    func() { m.GradMatch(nil, nil, nil, nil) },
		"label mismatch": func() { m.GradMatch([]*tensor.Tensor{x}, []int{0, 1}, nil, nil) },
		"target layers": func() {
			m.GradMatch([]*tensor.Tensor{x}, []int{0}, []*tensor.Tensor{}, []*tensor.Tensor{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMLPPredictConsistentWithGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewMLP([]int{5, 4, 3}, ActTanh, rng)
	x := tensor.New(5)
	rng.FillUniform(x, 0, 1)
	// The loss of the predicted class must be the smallest across labels.
	pred := m.Predict(x)
	lossAt := func(label int) float64 {
		l, _, _ := m.Gradients(x, label)
		return l
	}
	for c := 0; c < 3; c++ {
		if lossAt(pred) > lossAt(c)+1e-12 {
			t.Fatalf("predicted class %d has higher loss than %d", pred, c)
		}
	}
}
