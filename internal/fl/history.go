package fl

import "fedcdp/internal/nn"

// RoundStats records the measurements of one federated round.
type RoundStats struct {
	Round        int
	Clients      int     // updates folded into the global model this round
	Accuracy     float64 // valid when Evaluated
	Evaluated    bool
	MeanGradNorm float64 // mean per-example pre-clip gradient L2 norm
	MsPerIter    float64 // mean client wall-clock ms per local iteration
	Epsilon      float64 // cumulative privacy spending, filled by core
	// Dropped counts cohort members whose update missed the round — the
	// streaming runtime's deadline stragglers. Coin-flip dropouts
	// (DropoutRate) are removed from the cohort before dispatch and are
	// not counted here.
	Dropped int
	// Committed reports whether the round met MinQuorum and its fold was
	// applied; a round below quorum leaves the global model unchanged.
	Committed bool
	// Active is the size of the round's active client population (the
	// open-world registry's active set; K on closed-world runs). Cohorts
	// are drawn from — and privacy is charged to — exactly this set.
	Active int
	// WireBytes is the network traffic the round generated, when the run
	// went over an instrumented fabric (core.RunSimnet); zero elsewhere.
	WireBytes int64
}

// History is the full record of one simulation run.
type History struct {
	Strategy string
	Config   Config
	Rounds   []RoundStats
	Final    *nn.Model
}

// FinalAccuracy returns the last evaluated validation accuracy; ok is
// false when no round was ever evaluated, which is distinguishable from a
// genuine 0% accuracy (the old sentinel-zero return conflated the two).
func (h *History) FinalAccuracy() (acc float64, ok bool) {
	for i := len(h.Rounds) - 1; i >= 0; i-- {
		if h.Rounds[i].Evaluated {
			return h.Rounds[i].Accuracy, true
		}
	}
	return 0, false
}

// BestAccuracy returns the highest evaluated validation accuracy; ok is
// false when no round was ever evaluated.
func (h *History) BestAccuracy() (best float64, ok bool) {
	for _, r := range h.Rounds {
		if r.Evaluated && (!ok || r.Accuracy > best) {
			best, ok = r.Accuracy, true
		}
	}
	return best, ok
}

// MeanMsPerIter returns the run-average local iteration cost in ms over
// the rounds that actually trained clients; rounds whose whole cohort was
// lost (their MsPerIter is a measurement-free zero) no longer drag the
// mean down. ok is false when no round trained anybody.
func (h *History) MeanMsPerIter() (ms float64, ok bool) {
	var s float64
	n := 0
	for _, r := range h.Rounds {
		if r.Clients > 0 {
			s += r.MsPerIter
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return s / float64(n), true
}

// GradNormSeries returns the per-round mean gradient norm trajectory
// (Figure 3 of the paper).
func (h *History) GradNormSeries() []float64 {
	out := make([]float64, len(h.Rounds))
	for i, r := range h.Rounds {
		out[i] = r.MeanGradNorm
	}
	return out
}

// FinalEpsilon returns the cumulative privacy spending after the last round.
func (h *History) FinalEpsilon() float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	return h.Rounds[len(h.Rounds)-1].Epsilon
}
