package fl

import "fedcdp/internal/nn"

// RoundStats records the measurements of one federated round.
type RoundStats struct {
	Round        int
	Clients      int     // updates folded into the global model this round
	Accuracy     float64 // valid when Evaluated
	Evaluated    bool
	MeanGradNorm float64 // mean per-example pre-clip gradient L2 norm
	MsPerIter    float64 // mean client wall-clock ms per local iteration
	Epsilon      float64 // cumulative privacy spending, filled by core
	// Dropped counts cohort members whose update missed the round — the
	// streaming runtime's deadline stragglers. Coin-flip dropouts
	// (DropoutRate) are removed from the cohort before dispatch and are
	// not counted here.
	Dropped int
	// Committed reports whether the round met MinQuorum and its fold was
	// applied; a round below quorum leaves the global model unchanged.
	Committed bool
	// WireBytes is the network traffic the round generated, when the run
	// went over an instrumented fabric (core.RunSimnet); zero elsewhere.
	WireBytes int64
}

// History is the full record of one simulation run.
type History struct {
	Strategy string
	Config   Config
	Rounds   []RoundStats
	Final    *nn.Model
}

// FinalAccuracy returns the last evaluated validation accuracy.
func (h *History) FinalAccuracy() float64 {
	for i := len(h.Rounds) - 1; i >= 0; i-- {
		if h.Rounds[i].Evaluated {
			return h.Rounds[i].Accuracy
		}
	}
	return 0
}

// BestAccuracy returns the highest evaluated validation accuracy.
func (h *History) BestAccuracy() float64 {
	best := 0.0
	for _, r := range h.Rounds {
		if r.Evaluated && r.Accuracy > best {
			best = r.Accuracy
		}
	}
	return best
}

// MeanMsPerIter returns the run-average local iteration cost in ms.
func (h *History) MeanMsPerIter() float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	var s float64
	for _, r := range h.Rounds {
		s += r.MsPerIter
	}
	return s / float64(len(h.Rounds))
}

// GradNormSeries returns the per-round mean gradient norm trajectory
// (Figure 3 of the paper).
func (h *History) GradNormSeries() []float64 {
	out := make([]float64, len(h.Rounds))
	for i, r := range h.Rounds {
		out[i] = r.MeanGradNorm
	}
	return out
}

// FinalEpsilon returns the cumulative privacy spending after the last round.
func (h *History) FinalEpsilon() float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	return h.Rounds[len(h.Rounds)-1].Epsilon
}
