package fl

import (
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

func TestAggregationEquivalence(t *testing.T) {
	// The paper treats FedSGD and FedAveraging as mathematically equivalent
	// (Section IV-A). With identical seeds the two aggregation rules must
	// produce the same global model.
	run := func(agg string) *History {
		cfg := smallConfig(t, sgdStrategy{})
		cfg.Aggregation = agg
		h, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	hSGD := run(AggFedSGD)
	hAvg := run(AggFedAvg)
	pa, pb := hSGD.Final.Params(), hAvg.Final.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i], 1e-9) {
			t.Fatalf("FedSGD and FedAvg diverge at tensor %d", i)
		}
	}
}

func TestAggregationDefaultIsFedSGD(t *testing.T) {
	cfg := smallConfig(t, sgdStrategy{})
	cfg.Aggregation = ""
	if _, err := Run(cfg); err != nil {
		t.Fatalf("empty aggregation must default to FedSGD: %v", err)
	}
}

func TestAggregationUnknownRejected(t *testing.T) {
	cfg := smallConfig(t, sgdStrategy{})
	cfg.Aggregation = "bulyan"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown aggregation must be rejected")
	}
}

func TestApplyFedAvgDirect(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(3))
	before := tensor.CloneAll(m.Params())
	u1 := tensor.ZerosLike(m.Params())
	u2 := tensor.ZerosLike(m.Params())
	for _, u := range u1 {
		u.Fill(2)
	}
	for _, u := range u2 {
		u.Fill(4)
	}
	avg := NewFedAvg()
	avg.Begin(m.Params())
	avg.Fold(u1)
	avg.Fold(u2)
	avg.Commit(m.Params())
	for i, p := range m.Params() {
		diff := p.Clone()
		diff.Sub(before[i])
		for _, v := range diff.Data() {
			if v < 3-1e-9 || v > 3+1e-9 { // mean of W+2 and W+4 is W+3
				t.Fatalf("FedAvg delta %v, want 3", v)
			}
		}
	}
	// Empty fold: unchanged.
	avg.Begin(m.Params())
	avg.Commit(m.Params())
}
