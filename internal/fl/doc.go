// Package fl is the federated-learning substrate: a publish-subscribe style
// simulation of a federated server and a (possibly very large) population of
// clients, plus a real TCP deployment of the same rounds. It supplies
// streaming O(model)-memory aggregation (FedSGD / FedAvg /
// example-count-weighted FedAvg folds), per-round client sampling, parallel
// local training on a reusable worker pool, straggler deadlines, quorum
// semantics, and run history collection.
//
// The privacy behaviour of a run is supplied by a Strategy (implemented in
// internal/core: non-private, Fed-SDP, Fed-CDP, Fed-CDP(decay), DSSGD); the
// substrate itself is privacy-agnostic. Client data comes from
// internal/dataset: clients are materialized lazily under the dataset's
// partitioner, so populations of 10,000 clients cost only the Kt shards
// actually sampled each round, under any heterogeneity scenario.
//
// # Runtimes and fold-order rules
//
// Two round runtimes share one aggregation arithmetic. The barrier runtime
// (RuntimeBarrier) trains the whole cohort, materializes every update, and
// folds them in cohort order — the original lockstep semantics, kept as the
// parity reference. The streaming runtime (RuntimeStreaming, default) folds
// each update into the round's Aggregator the moment it arrives. Its fold
// order is configurable:
//
//   - FoldCohort (default) parks out-of-order arrivals in a reorder buffer
//     and commits in cohort order, which makes seeded streaming runs
//     bit-identical to the barrier runtime — including the serverRNG stream
//     consumed by reference-engine server-side sanitization and the
//     weighted folds of AggWeighted.
//   - FoldArrival commits in completion order with no reorder buffer:
//     strictly O(model) memory, at the cost of run-to-run floating-point
//     reproducibility (the folded *set* is unchanged; only float summation
//     order varies).
//
// Weight-aware aggregators (WeightedFolder) receive each client's local
// example count with the update — carried on UpdateMsg.Weight over the
// wire — so weighted FedAvg follows the same fold-order rules.
//
// # Noise engines and the key schedule
//
// RoundConfig.NoiseEngine selects the DP noise source. The counter engine
// (NoiseCounter, default) keys every Gaussian draw to (seed, round, client,
// iteration, example, layer, offset) via tensor.CounterRNG — noise is a
// pure function of those labels, so sanitization parallelizes with
// bit-identical results at any GOMAXPROCS and any arrival order (server
// streams are keyed by cohort position, not arrival). NoiseReference is the
// original sequential math/rand stream kept as the parity oracle.
//
// Reserved Split/CounterRNG label spaces under the root seed: 1 model init,
// 2 server RNG, 3 cohort sampling, 4 client RNG streams, 5 dropout coins,
// 6 client-side counter noise, 7 server-side counter noise; labels 8–11
// belong to internal/simnet's benign fault coins, 13–16 to its adversarial
// draws (attacker identities, gauss corruption, poison coins), and 17–19
// to its population draws (joiner identities, leaver identities, churn
// coins).
//
// # Open-world populations
//
// Config.Faults may additionally carry a PopulationPlan (join=n@r,
// leave=n@r, churn=rate clauses — also simnet.Plan): the Population
// registry built from it decides, per round, which clients exist.
// ActiveCohort draws cohorts only from the round's active set (static
// populations reproduce the legacy SampleCohort/SampleCohortFloyd draws
// verbatim), and a ClientMux with a dynamic Population resets a returning
// client's quantization residuals (Population.AwayBetween) so rounding
// debt banked before a departure is never replayed against a model that
// moved on. See DESIGN.md, "Open-world population".
//
// # Fault injection
//
// Config.Faults accepts a FaultPlan — deterministic update loss, mid-round
// client crashes and between-round server restarts, implemented by
// internal/simnet.Plan. Both runtimes consult the plan at the same
// decision points (a crashed client's slot resolves without training, a
// dropped update trains and is then lost, a restart rebuilds every
// in-memory server structure from checkpointable state), so a faulted
// seeded run is exactly as reproducible as a clean one and streaming ↔
// barrier parity holds under any plan.
//
// # Adversarial clients and robust aggregation
//
// A plan may also declare hostile clients (the structural AdversaryPlan
// interface, implemented by simnet.Plan): Byzantine members corrupt their
// update immediately after ClientUpdate — the identical point in the
// barrier and streaming runtimes, the RPC client (ClientOptions.Adversary)
// and the virtual-client mux (ClientMux.Adversary) — and poisoned members
// train on a flipped-label shard view installed by AdversaryShard, which
// survives scenario Repartition. The matching defenses are the robust
// aggregation rules (robust.go): AggMedian, AggTrimmed ("trimmed:β") and
// AggKrum ("krum:f") buffer raw updates (O(Kt·model) per round, the
// documented price of robustness) and commit order statistics that are
// pure functions of the update multiset — bit-identical in any arrival
// order, at any GOMAXPROCS, with TrimmedMean(β=0) equal to the exact mean
// fold bit-for-bit. Robust rules ignore aggregation weights, and they are
// not grouping-invariant: NewAggregatorFor and validate refuse them on
// any sharded topology. See DESIGN.md, "Adversarial clients & robust
// aggregation".
//
// # Remote deployment
//
// rpc.go carries the same rounds over TCP, with the wire format negotiated
// per connection (codec.go): CodecGob (default) speaks encoding/gob,
// byte-identical to the original protocol and kept as the parity oracle;
// CodecBinary is a versioned, length-prefixed binary codec — magic header,
// tensor geometry sections, raw little-endian float payloads, sparse
// sections, and optional int8/int16 update quantization (quant.go) with
// per-tensor scale and client-side error-feedback residuals (QuantState).
// A binary server announces itself with a hello frame; clients sniff the
// first bytes and fall back to gob transparently, so mixed fleets
// interoperate and a reconnecting client re-negotiates after a server
// restart. Updates ship dense or sparse per update density, with optional
// X25519/AES-GCM channel encryption, concurrent client sessions, explicit
// round-over refusals and update receipts. The server publishes its
// RoundConfig — including the heterogeneity Scenario, which remote clients
// apply to their local dataset view, and the GEMM Precision — so a
// federation agrees on one configuration without per-client flags. The
// transport is pluggable at both ends (NewRoundServerOn takes any
// net.Listener, ClientOptions.Dial any dialer): real TCP is the
// default, and internal/simnet substitutes an in-memory fabric with
// seeded link faults so entire deployments — server restarts, reconnects,
// duplicate submissions, partitions — run deterministically inside one
// test process. Wire messages that cross a connection are validated
// before use (wire.go) regardless of codec: hostile shapes, lengths,
// truncated or oversized frames and non-finite values error out instead
// of panicking or poisoning the model, and update re-submissions after a
// lost ack are acknowledged but folded only once.
package fl
