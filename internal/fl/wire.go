package fl

import (
	"fmt"
	"math"

	"fedcdp/internal/tensor"
)

// Wire-message validation: everything that crosses a connection is hostile
// until proven otherwise. The gob layer guarantees well-formed Go values,
// not sane ones — a peer can send a shape whose product overflows int, a
// payload length that disagrees with its shape, NaN/Inf values that would
// poison every parameter at the fold, or sparse indices outside the
// tensor. Decode paths on the protocol (server folding client updates,
// client installing server parameters) go through DecodeTensors /
// Validate, which reject all of that with an error instead of a panic or a
// silent corruption; the raw converters (TensorsFromWire,
// TensorsFromSparse) remain for trusted in-process use. The fuzz targets
// in fuzz_test.go pin the no-panic contract.

const (
	// maxWireDims bounds the rank of a wire tensor (real models use ≤ 4).
	maxWireDims = 16
	// maxWireElems bounds one wire tensor's element count (2^26 float64s =
	// 512 MiB): large enough for any model here, small enough that a
	// hostile length cannot balloon server memory.
	maxWireElems = 1 << 26
)

// validShapeLen returns the element count of a wire shape, rejecting
// negative dimensions, excessive rank and overflowing products.
func validShapeLen(shape []int) (int, error) {
	if len(shape) > maxWireDims {
		return 0, fmt.Errorf("fl: wire tensor rank %d exceeds %d", len(shape), maxWireDims)
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			return 0, fmt.Errorf("fl: negative wire dimension %d in %v", d, shape)
		}
		if d > 0 && n > maxWireElems/d {
			return 0, fmt.Errorf("fl: wire shape %v exceeds %d elements", shape, maxWireElems)
		}
		n *= d
	}
	return n, nil
}

// validValues rejects non-finite payloads: one NaN folded into the global
// model poisons every parameter it touches, forever.
func validValues(vs []float64) error {
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fl: non-finite wire value %v at offset %d", v, i)
		}
	}
	return nil
}

// Validate reports whether the dense wire tensor is structurally sound:
// shape and payload length agree, dimensions are sane, values finite.
func (w TensorWire) Validate() error {
	n, err := validShapeLen(w.Shape)
	if err != nil {
		return err
	}
	if len(w.Data) != n {
		return fmt.Errorf("fl: wire payload length %d does not match shape %v (want %d)", len(w.Data), w.Shape, n)
	}
	return validValues(w.Data)
}

// Validate reports whether the sparse wire tensor is structurally sound:
// sane shape, aligned index/value slices, in-range indices, finite values.
func (w SparseTensorWire) Validate() error {
	n, err := validShapeLen(w.Shape)
	if err != nil {
		return err
	}
	if len(w.Indices) != len(w.Values) {
		return fmt.Errorf("fl: sparse wire has %d indices but %d values", len(w.Indices), len(w.Values))
	}
	if len(w.Indices) > n {
		return fmt.Errorf("fl: sparse wire carries %d entries for a %d-element tensor", len(w.Indices), n)
	}
	for i, idx := range w.Indices {
		if idx < 0 || int(idx) >= n {
			return fmt.Errorf("fl: sparse index %d outside tensor of %d elements (entry %d)", idx, n, i)
		}
	}
	return validValues(w.Values)
}

// Validate reports whether the update message is structurally sound:
// exactly one payload encoding, every tensor valid, finite weight and
// non-negative identifiers.
func (m *UpdateMsg) Validate() error {
	switch {
	case m.Round < 0:
		return fmt.Errorf("fl: negative update round %d", m.Round)
	case m.ClientID < 0:
		return fmt.Errorf("fl: negative client id %d", m.ClientID)
	case math.IsNaN(m.Weight) || math.IsInf(m.Weight, 0) || m.Weight < 0:
		return fmt.Errorf("fl: invalid update weight %v", m.Weight)
	}
	encodings := 0
	for _, n := range []int{len(m.Delta), len(m.Sparse), len(m.Quant)} {
		if n > 0 {
			encodings++
		}
	}
	if m.Partial != nil {
		encodings++
	}
	if encodings != 1 {
		if encodings == 0 {
			return fmt.Errorf("fl: update carries no payload")
		}
		return fmt.Errorf("fl: update mixes payload encodings")
	}
	if m.Partial != nil {
		return m.Partial.Validate()
	}
	for i, w := range m.Delta {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("fl: update tensor %d: %w", i, err)
		}
	}
	for i, w := range m.Sparse {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("fl: update tensor %d: %w", i, err)
		}
	}
	for i, w := range m.Quant {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("fl: update tensor %d: %w", i, err)
		}
	}
	return nil
}

// DecodeTensors is Tensors with the wire validated first — the entry point
// for payloads that crossed a connection. It never panics on hostile
// input.
func (m *UpdateMsg) DecodeTensors() ([]*tensor.Tensor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m.Tensors(), nil
}

// Validate reports whether the round announcement is structurally sound. A
// denial carries no round payload and is always valid; an announcement
// must carry valid parameters and a trainable round config (a hostile
// server must not be able to drive a client into a zero-batch loop or a
// NaN learning rate).
func (m *ParamMsg) Validate() error {
	if m.Denied {
		return nil
	}
	switch {
	case m.Round < 0:
		return fmt.Errorf("fl: negative announced round %d", m.Round)
	case m.Cfg.BatchSize <= 0 || m.Cfg.BatchSize > 1<<20:
		return fmt.Errorf("fl: announced batch size %d outside (0, 2^20]", m.Cfg.BatchSize)
	case m.Cfg.LocalIters <= 0 || m.Cfg.LocalIters > 1<<20:
		return fmt.Errorf("fl: announced local iterations %d outside (0, 2^20]", m.Cfg.LocalIters)
	case math.IsNaN(m.Cfg.LR) || math.IsInf(m.Cfg.LR, 0) || m.Cfg.LR <= 0:
		return fmt.Errorf("fl: announced learning rate %v not positive and finite", m.Cfg.LR)
	case len(m.Params) == 0:
		return fmt.Errorf("fl: announcement carries no parameters")
	case m.Cfg.Precision != "" && m.Cfg.Precision != tensor.PrecisionFP64 && m.Cfg.Precision != tensor.PrecisionFP32:
		return fmt.Errorf("fl: announced precision %q unknown", m.Cfg.Precision)
	}
	for i, w := range m.Params {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("fl: announced parameter %d: %w", i, err)
		}
	}
	if _, err := m.Cfg.Scenario.Partitioner(); err != nil {
		return err
	}
	return nil
}

// updateMatchesParams reports whether a decoded update is foldable against
// the round's announced parameters: same tensor count and per-tensor
// element count. Folding a mismatched update would index out of range
// inside the aggregator — a hostile client must get an error, not a server
// panic.
func updateMatchesParams(update []*tensor.Tensor, params []TensorWire) error {
	if len(update) != len(params) {
		return fmt.Errorf("fl: update has %d tensors, round has %d", len(update), len(params))
	}
	for i, u := range update {
		if u.Len() != len(params[i].Data) {
			return fmt.Errorf("fl: update tensor %d has %d elements, parameter has %d", i, u.Len(), len(params[i].Data))
		}
	}
	return nil
}

// partialMatchesParams is updateMatchesParams for an edge's partial fold:
// the exact sums must be foldable against the round's parameters before
// they reach the root aggregator.
func partialMatchesParams(p *PartialWire, params []TensorWire) error {
	if len(p.Sums) != len(params) {
		return fmt.Errorf("fl: partial has %d tensors, round has %d", len(p.Sums), len(params))
	}
	for i, s := range p.Sums {
		if len(s.Elems) != len(params[i].Data) {
			return fmt.Errorf("fl: partial tensor %d has %d elements, parameter has %d", i, len(s.Elems), len(params[i].Data))
		}
	}
	return nil
}
