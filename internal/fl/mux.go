package fl

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// Multiplexed virtual clients. The goroutine-per-client deployment pattern
// (one RunRemoteClientRound goroutine per cohort member, each building its
// own model and arena) caps simulated populations at a few hundred: at
// K=100,000 the goroutines, models and scratch buffers are O(K). Here a
// virtual client is DATA — a few words of cursor state in a lazily
// populated map — and only a fixed worker pool is EXECUTION: each worker
// owns one reusable ClientWorkspace (model, arena, RNG) and drains a round
// task list, so K clients cost O(workers) goroutines and buffers plus
// O(touched clients) cursor words. Training stays a pure function of
// (seed, round, clientID), so multiplexing changes scheduling, never
// results.

// VirtualClient is one simulated client's persistent cursor: everything
// that must survive between its rounds. It is deliberately tiny — the
// whole point of multiplexing is that 100,000 of these are a map of small
// structs, not 100,000 goroutines.
type VirtualClient struct {
	ID int
	// NextRound is the lowest round this client has not completed; served
	// rounds below it are honest duplicate re-submissions (see
	// ClientOptions.MinRound for the protocol contract).
	NextRound int
	// LastRound is the last round this client actually trained (-1 before
	// its first session). Open-world muxes compare it against the round
	// being served to detect depart-and-return gaps (Population.AwayBetween)
	// and reset stale error-feedback residuals.
	LastRound int
	// Quant carries quantization error-feedback residuals across this
	// client's rounds; allocated on first quantized session.
	Quant *QuantState
	// Backoff counts consecutive failed sessions (transport errors); the
	// driver may use it to deprioritize flapping clients.
	Backoff int
}

// MuxTask is one session assignment for a round: which client, which
// server. Dial, when set, overrides the mux-wide dialer for this task —
// fabric harnesses use it so every virtual client dials from its own host
// name and fault plans key links correctly. Abandon marks a fault-plan
// fate (crash, dropped update): the worker opens the session and
// disconnects after the announcement, the transport-level footprint of
// the failure.
type MuxTask struct {
	ClientID int
	Addr     string
	Dial     func(addr string) (net.Conn, error)
	Abandon  bool
}

// MuxResult reports one task's outcome. Round is the round the server
// actually served (0 if the session died before the announcement).
type MuxResult struct {
	ClientID int
	Round    int
	Err      error
}

// ClientWorkspace is one worker's reusable training state: the model, the
// arena, the reseedable RNG and the ClientEnv are built once and serve
// every client the worker impersonates.
type ClientWorkspace struct {
	model *nn.Model
	arena *tensor.Arena
	rng   *tensor.RNG
	noise tensor.CounterRNG
	env   ClientEnv
}

// NewClientWorkspace builds a workspace for a model spec.
func NewClientWorkspace(spec nn.Spec) *ClientWorkspace {
	ws := &ClientWorkspace{
		model: nn.Build(spec, tensor.NewRNG(0)),
		arena: tensor.NewArena(),
		rng:   tensor.NewRNG(0),
	}
	ws.model.UseArena(ws.arena)
	return ws
}

// ClientMux drives a population of virtual clients over a fixed worker
// pool. Configure once, then call RunRound with the round's task list;
// virtual-client cursors persist across calls.
type ClientMux struct {
	Spec  nn.Spec
	Data  *dataset.Dataset
	Strat Strategy
	Seed  int64
	// Opt is the transport configuration shared by every session (dialer,
	// codec, encryption, quantization width).
	Opt ClientOptions
	// Adversary, when set, makes the plan's seeded attackers hostile:
	// poisoned virtual clients train on flipped-label shard views and
	// Byzantine ones corrupt their updates before submission — identical
	// behavior to the goroutine-per-client path (ClientOptions.Adversary).
	Adversary AdversaryPlan
	// Workers bounds concurrent sessions (0 = GOMAXPROCS).
	Workers int
	// Population is the open-world registry (see PopulationOf). The zero
	// value is the closed world; with a dynamic plan, a virtual client that
	// departed and returned has its quantization residuals reset before its
	// next session — the rounding debt it banked describes updates against a
	// model state that moved on without it.
	Population Population

	mu  sync.Mutex
	vcs map[int]*VirtualClient
	// wsPool recycles worker workspaces across rounds so steady-state
	// training reuses models, arenas and RNG state instead of rebuilding
	// them every RunRound.
	wsPool sync.Pool
}

// client returns (lazily creating) a virtual client's cursor.
func (m *ClientMux) client(id int) *VirtualClient {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vcs == nil {
		m.vcs = make(map[int]*VirtualClient)
	}
	vc := m.vcs[id]
	if vc == nil {
		vc = &VirtualClient{ID: id, LastRound: -1}
		m.vcs[id] = vc
	}
	return vc
}

// Clients reports how many virtual-client cursors have been materialized —
// the live-state measure the multiplexing exists to keep at O(touched),
// not O(K).
func (m *ClientMux) Clients() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.vcs)
}

// RunRound drains one round's task list over the worker pool and returns
// per-task results in task order. Tasks are claimed by atomic counter, so
// the worker count shapes throughput only; which worker serves which
// client never influences the update bytes.
func (m *ClientMux) RunRound(tasks []MuxTask) []MuxResult {
	results := make([]MuxResult, len(tasks))
	if len(tasks) == 0 {
		return results
	}
	workers := m.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws, _ := m.wsPool.Get().(*ClientWorkspace)
			if ws == nil {
				ws = NewClientWorkspace(m.Spec)
			}
			defer m.wsPool.Put(ws)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				results[i] = m.runTask(ws, tasks[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// runTask executes one session on a workspace and updates the client's
// cursor.
func (m *ClientMux) runTask(ws *ClientWorkspace, task MuxTask) MuxResult {
	res := MuxResult{ClientID: task.ClientID}
	vc := m.client(task.ClientID)
	opt := m.Opt
	if task.Dial != nil {
		opt.Dial = task.Dial
	}
	if task.Abandon {
		res.Round, res.Err = AbandonSession(task.Addr, opt)
		return res
	}
	res.Round, res.Err = m.runSession(ws, vc, task.Addr, opt)
	if res.Err != nil {
		vc.Backoff++
		return res
	}
	vc.Backoff = 0
	if res.Round >= vc.NextRound {
		vc.NextRound = res.Round + 1
		vc.LastRound = res.Round
	}
	return res
}

// runSession is RunRemoteClientRound on a reusable workspace: same
// protocol, same per-round streams, no per-session model/arena/RNG
// construction. The update bytes are bit-identical to the goroutine-per-
// client path because every input to training — parameters, data shard,
// RNG stream, noise keys — is derived exactly the same way.
func (m *ClientMux) runSession(ws *ClientWorkspace, vc *VirtualClient, addr string, opt ClientOptions) (int, error) {
	conn, err := opt.dial(addr)
	if err != nil {
		return 0, fmt.Errorf("fl: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	var rw io.ReadWriter = conn
	if opt.Secure {
		sc, err := Handshake(conn)
		if err != nil {
			return 0, err
		}
		rw = sc
	}
	sess, err := newClientSession(rw, opt.Codec)
	if err != nil {
		return 0, err
	}
	var pm ParamMsg
	if err := sess.ReadParam(&pm); err != nil {
		return 0, fmt.Errorf("fl: reading params: %w", err)
	}
	if pm.Denied {
		return 0, fmt.Errorf("%w: %s", ErrRoundClosed, pm.Reason)
	}
	if err := pm.Validate(); err != nil {
		return 0, fmt.Errorf("fl: invalid round announcement: %w", err)
	}
	data := AdversaryShard(m.Adversary, vc.ID, m.Data.Client(vc.ID))
	if pm.Cfg.Scenario.Name != "" {
		p, err := pm.Cfg.Scenario.Partitioner()
		if err != nil {
			return 0, err
		}
		data = data.RepartitionAt(p, pm.Round)
	}
	ws.model.SetParams(TensorsFromWire(pm.Params))
	ws.model.SetPrecision(pm.Cfg.Precision)
	ws.rng.Reseed(m.Seed, 4, int64(pm.Round), int64(vc.ID))
	ws.env = ClientEnv{
		ClientID: vc.ID,
		Round:    pm.Round,
		Model:    ws.model,
		Data:     data,
		RNG:      ws.rng,
		Cfg:      pm.Cfg,
		Arena:    ws.arena,
	}
	if pm.Cfg.NoiseEngine != NoiseReference {
		ws.noise = ClientNoise(m.Seed, pm.Round, vc.ID)
		ws.env.Noise = &ws.noise
	}
	delta, _ := m.Strat.ClientUpdate(&ws.env)
	if m.Adversary != nil {
		m.Adversary.CorruptUpdate(pm.Round, vc.ID, delta)
	}
	var qs *QuantState
	if opt.Quant != QuantNone && pm.Round >= vc.NextRound {
		// Error-feedback residuals bank each round exactly once; a
		// re-served round re-submits the identical update without touching
		// them (the MinRound contract, tracked per virtual client).
		if vc.LastRound >= 0 && m.Population.AwayBetween(vc.LastRound+1, pm.Round, vc.ID) {
			// The client departed and returned since it last trained: its
			// banked rounding debt describes a model state the federation
			// moved past without it. Replaying it would inject a stale
			// correction, so a returning client starts debt-free.
			vc.Quant.Reset()
		}
		if vc.Quant == nil {
			vc.Quant = &QuantState{}
		}
		qs = vc.Quant
	}
	if err := sess.WriteUpdateTensors(vc.ID, pm.Round, float64(data.Len()), delta, opt.Quant, qs); err != nil {
		return pm.Round, fmt.Errorf("fl: sending update: %w", err)
	}
	var ack AckMsg
	if err := sess.ReadAck(&ack); err != nil {
		return pm.Round, fmt.Errorf("fl: reading update receipt: %w", err)
	}
	if !ack.Accepted {
		return pm.Round, fmt.Errorf("fl: update not folded: %s", ack.Reason)
	}
	return pm.Round, nil
}
