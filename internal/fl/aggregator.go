package fl

import (
	"sync"

	"fedcdp/internal/tensor"
)

// Aggregator is the server-side fold of a federated round: updates are
// absorbed one at a time the moment they arrive, so server memory stays
// O(model) regardless of how many clients report (the barrier-era code
// materialized every update as [][]*tensor.Tensor — O(Kt × model)).
//
// Lifecycle per round: Begin(params) resets the accumulator against the
// current global parameters, Fold(update) absorbs one client update, and
// Commit(params) applies the aggregate — a no-op when nothing was folded,
// and skipped entirely by the runtime when the round misses its quorum.
// Fold is safe for concurrent use (the TCP server folds from concurrent
// client sessions); note that concurrent folding trades away bit-exact
// run-to-run reproducibility, which is why the simulator's deterministic
// mode serializes folds in cohort order (see DESIGN.md).
type Aggregator interface {
	Begin(params []*tensor.Tensor)
	Fold(update []*tensor.Tensor)
	Count() int
	Commit(params []*tensor.Tensor)
}

// FedSGDAggregator folds updates into a running sum and commits
// W ← W + (1/n)·ΣΔW (Section IV-A). The accumulator buffers are reused
// across rounds, so steady-state aggregation allocates nothing.
type FedSGDAggregator struct {
	mu  sync.Mutex
	sum []*tensor.Tensor
	n   int
}

// NewFedSGD returns an empty FedSGD fold.
func NewFedSGD() *FedSGDAggregator { return &FedSGDAggregator{} }

// Begin implements Aggregator.
func (a *FedSGDAggregator) Begin(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum = resetLike(a.sum, params)
	a.n = 0
}

// Fold implements Aggregator.
func (a *FedSGDAggregator) Fold(update []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tensor.AddAllScaled(a.sum, 1, update)
	a.n++
}

// Count implements Aggregator.
func (a *FedSGDAggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Commit implements Aggregator.
func (a *FedSGDAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return
	}
	tensor.AddAllScaled(params, 1/float64(a.n), a.sum)
}

// FedAvgAggregator folds client models W + ΔW_k and commits their mean,
// W ← (1/n)·Σ(W + ΔW_k) — algebraically the same map as FedSGD, the
// equivalence the paper invokes to treat the two interchangeably.
type FedAvgAggregator struct {
	mu   sync.Mutex
	sum  []*tensor.Tensor
	base []*tensor.Tensor // W at Begin, added back per fold
	n    int
}

// NewFedAvg returns an empty FedAveraging fold.
func NewFedAvg() *FedAvgAggregator { return &FedAvgAggregator{} }

// Begin implements Aggregator.
func (a *FedAvgAggregator) Begin(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum = resetLike(a.sum, params)
	if geometryMatches(a.base, params) {
		for i, p := range params {
			a.base[i].CopyFrom(p)
		}
	} else {
		a.base = tensor.CloneAll(params)
	}
	a.n = 0
}

// Fold implements Aggregator.
func (a *FedAvgAggregator) Fold(update []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tensor.AddAllScaled(a.sum, 1, a.base)
	tensor.AddAllScaled(a.sum, 1, update)
	a.n++
}

// Count implements Aggregator.
func (a *FedAvgAggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Commit implements Aggregator.
func (a *FedAvgAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return
	}
	inv := 1 / float64(a.n)
	for i, p := range params {
		p.Zero()
		p.AddScaled(inv, a.sum[i])
	}
}

// CollectAggregator retains every folded update — the O(Kt) barrier-era
// behaviour — for callers that need the raw updates back (RunRound
// compatibility, inspection, tests). It retains references, not copies.
type CollectAggregator struct {
	mu      sync.Mutex
	updates [][]*tensor.Tensor
}

// NewCollect returns an empty collecting aggregator.
func NewCollect() *CollectAggregator { return &CollectAggregator{} }

// Begin implements Aggregator.
func (a *CollectAggregator) Begin(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.updates = a.updates[:0]
}

// Fold implements Aggregator.
func (a *CollectAggregator) Fold(update []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.updates = append(a.updates, update)
}

// Count implements Aggregator.
func (a *CollectAggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.updates)
}

// Commit implements Aggregator: collection never modifies the model.
func (a *CollectAggregator) Commit(params []*tensor.Tensor) {}

// Updates returns the collected updates in fold order.
func (a *CollectAggregator) Updates() [][]*tensor.Tensor {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.updates
}

// geometryMatches reports whether buf can hold params' values tensor for
// tensor.
func geometryMatches(buf, params []*tensor.Tensor) bool {
	if len(buf) != len(params) {
		return false
	}
	for i, t := range buf {
		if t.Len() != params[i].Len() {
			return false
		}
	}
	return true
}

// resetLike returns a zeroed accumulator shaped like params, reusing buf
// when its geometry already matches.
func resetLike(buf, params []*tensor.Tensor) []*tensor.Tensor {
	if geometryMatches(buf, params) {
		for _, t := range buf {
			t.Zero()
		}
		return buf
	}
	return tensor.ZerosLike(params)
}

// AggregateFedSGD applies FedSGD in place: params ← params + mean(ΔW) over
// the collected updates (Section IV-A), implemented as a fold over a
// FedSGDAggregator so batch and streaming callers share one arithmetic
// (sum first, scale once at commit). It is shared by the in-process
// simulator and the TCP server (cmd/fedserve). Empty update sets leave the
// parameters unchanged.
func AggregateFedSGD(params []*tensor.Tensor, updates [][]*tensor.Tensor) {
	agg := NewFedSGD()
	agg.Begin(params)
	for _, u := range updates {
		agg.Fold(u)
	}
	agg.Commit(params)
}
