package fl

import (
	"math"
	"sync"

	"fedcdp/internal/tensor"
)

// Aggregator is the server-side fold of a federated round: updates are
// absorbed one at a time the moment they arrive, so server memory stays
// O(model) regardless of how many clients report (the barrier-era code
// materialized every update as [][]*tensor.Tensor — O(Kt × model)).
//
// Lifecycle per round: Begin(params) resets the accumulator against the
// current global parameters, Fold(update) absorbs one client update, and
// Commit(params) applies the aggregate — a no-op when nothing was folded,
// and skipped entirely by the runtime when the round misses its quorum.
// Fold is safe for concurrent use (the TCP server folds from concurrent
// client sessions); note that concurrent folding trades away bit-exact
// run-to-run reproducibility, which is why the simulator's deterministic
// mode serializes folds in cohort order (see DESIGN.md).
type Aggregator interface {
	Begin(params []*tensor.Tensor)
	Fold(update []*tensor.Tensor)
	Count() int
	Commit(params []*tensor.Tensor)
}

// FedSGDAggregator folds updates into a running sum and commits
// W ← W + (1/n)·ΣΔW (Section IV-A). The accumulator buffers are reused
// across rounds, so steady-state aggregation allocates nothing.
type FedSGDAggregator struct {
	mu  sync.Mutex
	sum []*tensor.Tensor
	n   int
}

// NewFedSGD returns an empty FedSGD fold.
func NewFedSGD() *FedSGDAggregator { return &FedSGDAggregator{} }

// Begin implements Aggregator.
func (a *FedSGDAggregator) Begin(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum = resetLike(a.sum, params)
	a.n = 0
}

// Fold implements Aggregator.
func (a *FedSGDAggregator) Fold(update []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tensor.AddAllScaled(a.sum, 1, update)
	a.n++
}

// Count implements Aggregator.
func (a *FedSGDAggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Commit implements Aggregator.
func (a *FedSGDAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return
	}
	tensor.AddAllScaled(params, 1/float64(a.n), a.sum)
}

// FedAvgAggregator folds client models W + ΔW_k and commits their mean,
// W ← (1/n)·Σ(W + ΔW_k) — algebraically the same map as FedSGD, the
// equivalence the paper invokes to treat the two interchangeably.
type FedAvgAggregator struct {
	mu   sync.Mutex
	sum  []*tensor.Tensor
	base []*tensor.Tensor // W at Begin, added back per fold
	n    int
}

// NewFedAvg returns an empty FedAveraging fold.
func NewFedAvg() *FedAvgAggregator { return &FedAvgAggregator{} }

// Begin implements Aggregator.
func (a *FedAvgAggregator) Begin(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum = resetLike(a.sum, params)
	if geometryMatches(a.base, params) {
		for i, p := range params {
			a.base[i].CopyFrom(p)
		}
	} else {
		a.base = tensor.CloneAll(params)
	}
	a.n = 0
}

// Fold implements Aggregator.
func (a *FedAvgAggregator) Fold(update []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tensor.AddAllScaled(a.sum, 1, a.base)
	tensor.AddAllScaled(a.sum, 1, update)
	a.n++
}

// Count implements Aggregator.
func (a *FedAvgAggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Commit implements Aggregator.
func (a *FedAvgAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return
	}
	inv := 1 / float64(a.n)
	for i, p := range params {
		p.Zero()
		p.AddScaled(inv, a.sum[i])
	}
}

// WeightedFolder is implemented by aggregators that weight each folded
// update — example-count-weighted FedAvg under quantity-skewed partitions.
// The runtimes probe for it and pass the client's local example count; a
// plain Fold is equivalent to FoldWeighted with weight 1.
type WeightedFolder interface {
	FoldWeighted(update []*tensor.Tensor, weight float64)
}

// WeightedFedAvgAggregator folds client models with example-count weights
// and commits W ← Σ n_k·(W + ΔW_k) / Σ n_k — FedAvg as McMahan et al.
// define it, which plain FedAvg only matches when every client holds the
// same amount of data. The fold keeps a running weighted sum and a weight
// total, so server memory stays O(model) and the commit is a single scale:
// the result depends only on the multiset of (update, weight) pairs, not
// on arrival order, up to floating-point commutativity (the runtimes'
// cohort-order fold pins even that — see DESIGN.md, "Scenario engine").
type WeightedFedAvgAggregator struct {
	mu   sync.Mutex
	sum  []*tensor.Tensor
	base []*tensor.Tensor // W at Begin, added back per fold
	wsum float64
	n    int
}

// NewWeightedFedAvg returns an empty weighted-FedAvg fold.
func NewWeightedFedAvg() *WeightedFedAvgAggregator { return &WeightedFedAvgAggregator{} }

// Begin implements Aggregator.
func (a *WeightedFedAvgAggregator) Begin(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum = resetLike(a.sum, params)
	if geometryMatches(a.base, params) {
		for i, p := range params {
			a.base[i].CopyFrom(p)
		}
	} else {
		a.base = tensor.CloneAll(params)
	}
	a.wsum = 0
	a.n = 0
}

// Fold implements Aggregator: an unweighted fold counts as weight 1.
func (a *WeightedFedAvgAggregator) Fold(update []*tensor.Tensor) { a.FoldWeighted(update, 1) }

// maxFoldWeight caps a single fold's weight. Weights are client example
// counts — far below a million in any real federation — so the cap only
// bites on malformed or hostile wire values, where an enormous finite
// weight would otherwise overflow the running sum or let one client
// dictate the aggregate.
const maxFoldWeight = 1e6

// FoldWeighted implements WeightedFolder. Weights that are non-positive
// (a remote client predating the weight field reports 0) or not finite
// (NaN/Inf from a malformed or hostile wire message would otherwise
// poison every parameter at Commit) are clamped to 1; finite weights are
// capped at maxFoldWeight.
func (a *WeightedFedAvgAggregator) FoldWeighted(update []*tensor.Tensor, weight float64) {
	if !(weight > 0) || math.IsInf(weight, 1) {
		weight = 1
	} else if weight > maxFoldWeight {
		weight = maxFoldWeight
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	tensor.AddAllScaled(a.sum, weight, a.base)
	tensor.AddAllScaled(a.sum, weight, update)
	a.wsum += weight
	a.n++
}

// Count implements Aggregator.
func (a *WeightedFedAvgAggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Commit implements Aggregator.
func (a *WeightedFedAvgAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 || a.wsum == 0 {
		return
	}
	inv := 1 / a.wsum
	for i, p := range params {
		p.Zero()
		p.AddScaled(inv, a.sum[i])
	}
}

// foldInto routes one update into agg with its weight when the aggregator
// is weight-aware — the single dispatch rule shared by the barrier,
// streaming and RPC runtimes.
func foldInto(agg Aggregator, update []*tensor.Tensor, weight float64) {
	if wf, ok := agg.(WeightedFolder); ok {
		wf.FoldWeighted(update, weight)
		return
	}
	agg.Fold(update)
}

// CollectAggregator retains every folded update — the O(Kt) barrier-era
// behaviour — for callers that need the raw updates back (RunRound
// compatibility, inspection, tests). It retains references, not copies.
type CollectAggregator struct {
	mu      sync.Mutex
	updates [][]*tensor.Tensor
}

// NewCollect returns an empty collecting aggregator.
func NewCollect() *CollectAggregator { return &CollectAggregator{} }

// Begin implements Aggregator.
func (a *CollectAggregator) Begin(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.updates = a.updates[:0]
}

// Fold implements Aggregator.
func (a *CollectAggregator) Fold(update []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.updates = append(a.updates, update)
}

// Count implements Aggregator.
func (a *CollectAggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.updates)
}

// Commit implements Aggregator: collection never modifies the model.
func (a *CollectAggregator) Commit(params []*tensor.Tensor) {}

// Updates returns the collected updates in fold order.
func (a *CollectAggregator) Updates() [][]*tensor.Tensor {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.updates
}

// geometryMatches reports whether buf can hold params' values tensor for
// tensor.
func geometryMatches(buf, params []*tensor.Tensor) bool {
	if len(buf) != len(params) {
		return false
	}
	for i, t := range buf {
		if t.Len() != params[i].Len() {
			return false
		}
	}
	return true
}

// resetLike returns a zeroed accumulator shaped like params, reusing buf
// when its geometry already matches.
func resetLike(buf, params []*tensor.Tensor) []*tensor.Tensor {
	if geometryMatches(buf, params) {
		for _, t := range buf {
			t.Zero()
		}
		return buf
	}
	return tensor.ZerosLike(params)
}

// AggregateFedSGD applies FedSGD in place: params ← params + mean(ΔW) over
// the collected updates (Section IV-A), implemented as a fold over a
// FedSGDAggregator so batch and streaming callers share one arithmetic
// (sum first, scale once at commit). It is shared by the in-process
// simulator and the TCP server (cmd/fedserve). Empty update sets leave the
// parameters unchanged.
func AggregateFedSGD(params []*tensor.Tensor, updates [][]*tensor.Tensor) {
	agg := NewFedSGD()
	agg.Begin(params)
	for _, u := range updates {
		agg.Fold(u)
	}
	agg.Commit(params)
}
