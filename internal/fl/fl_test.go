package fl

import (
	"testing"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// echoStrategy returns a constant update and records which clients ran.
type echoStrategy struct {
	value float64
}

func (echoStrategy) Name() string { return "echo" }

func (e echoStrategy) ClientUpdate(env *ClientEnv) ([]*tensor.Tensor, ClientStats) {
	delta := tensor.ZerosLike(env.Model.Params())
	for _, d := range delta {
		d.Fill(e.value)
	}
	return delta, ClientStats{Iters: env.Cfg.LocalIters, Duration: time.Millisecond}
}

func (echoStrategy) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

// sgdStrategy is a minimal real local trainer used in integration tests.
type sgdStrategy struct{}

func (sgdStrategy) Name() string { return "sgd" }

func (sgdStrategy) ClientUpdate(env *ClientEnv) ([]*tensor.Tensor, ClientStats) {
	start := time.Now()
	global := tensor.CloneAll(env.Model.Params())
	var normSum float64
	var normN int
	for l := 0; l < env.Cfg.LocalIters; l++ {
		xs, ys := env.Data.Batch(l, env.Cfg.BatchSize)
		batch := tensor.ZerosLike(env.Model.Grads())
		for j, x := range xs {
			_, g := env.Model.ExampleGradient(x, ys[j])
			if l == 0 {
				normSum += tensor.GroupL2Norm(g)
				normN++
			}
			tensor.AddAllScaled(batch, 1/float64(len(xs)), g)
		}
		env.Model.SGDStep(env.Cfg.LR, batch)
	}
	st := ClientStats{Iters: env.Cfg.LocalIters, Duration: time.Since(start)}
	if normN > 0 {
		st.MeanGradNorm = normSum / float64(normN)
	}
	return Delta(env.Model.Params(), global), st
}

func (sgdStrategy) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

func smallConfig(t *testing.T, strat Strategy) Config {
	t.Helper()
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Data:   dataset.New(spec, 42),
		Model:  spec.ModelSpec(),
		K:      10,
		Kt:     4,
		Rounds: 3,
		Round: RoundConfig{
			BatchSize:  4,
			LocalIters: 5,
			LR:         0.1,
		},
		Strategy:    strat,
		Seed:        42,
		ValExamples: 50,
	}
}

func TestRunValidation(t *testing.T) {
	base := smallConfig(t, echoStrategy{})
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil data", func(c *Config) { c.Data = nil }},
		{"nil strategy", func(c *Config) { c.Strategy = nil }},
		{"Kt > K", func(c *Config) { c.Kt = c.K + 1 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"zero batch", func(c *Config) { c.Round.BatchSize = 0 }},
		{"zero lr", func(c *Config) { c.Round.LR = 0 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestRunProducesHistory(t *testing.T) {
	hist, err := Run(smallConfig(t, sgdStrategy{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 3 {
		t.Fatalf("history has %d rounds, want 3", len(hist.Rounds))
	}
	for i, r := range hist.Rounds {
		if r.Round != i {
			t.Fatalf("round %d recorded as %d", i, r.Round)
		}
		if r.Clients != 4 {
			t.Fatalf("round %d had %d clients, want 4", i, r.Clients)
		}
		if !r.Evaluated {
			t.Fatalf("round %d not evaluated with EvalEvery=1", i)
		}
		if r.MeanGradNorm <= 0 {
			t.Fatalf("round %d grad norm %v, want > 0", i, r.MeanGradNorm)
		}
	}
	if hist.Final == nil {
		t.Fatal("history missing final model")
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	cfg1 := smallConfig(t, sgdStrategy{})
	cfg1.Parallelism = 1
	cfg2 := smallConfig(t, sgdStrategy{})
	cfg2.Parallelism = 8
	h1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := h1.Final.Params(), h2.Final.Params()
	for i := range p1 {
		if !p1[i].Equal(p2[i], 1e-12) {
			t.Fatal("final model depends on parallelism — scheduling nondeterminism")
		}
	}
}

func TestFedSGDAggregationIsMean(t *testing.T) {
	// Two echo strategies would need distinct values per client; instead
	// verify directly.
	spec, _ := dataset.Get("cancer")
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	before := tensor.CloneAll(m.Params())
	u1 := tensor.ZerosLike(m.Params())
	u2 := tensor.ZerosLike(m.Params())
	for _, u := range u1 {
		u.Fill(2)
	}
	for _, u := range u2 {
		u.Fill(4)
	}
	AggregateFedSGD(m.Params(), [][]*tensor.Tensor{u1, u2})
	after := m.Params()
	for i := range after {
		diff := after[i].Clone()
		diff.Sub(before[i])
		for _, v := range diff.Data() {
			if v < 3-1e-12 || v > 3+1e-12 { // mean of 2 and 4
				t.Fatalf("aggregation is not the mean: delta %v", v)
			}
		}
	}
}

func TestApplyFedSGDNoUpdates(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	before := tensor.CloneAll(m.Params())
	AggregateFedSGD(m.Params(), nil)
	for i, p := range m.Params() {
		if !p.Equal(before[i], 0) {
			t.Fatal("empty aggregation must leave model unchanged")
		}
	}
}

func TestSampleCohortDistinctByDefault(t *testing.T) {
	cfg := smallConfig(t, echoStrategy{})
	cohort := sampleCohort(cfg, 0)
	if len(cohort) != cfg.Kt {
		t.Fatalf("cohort size %d, want %d", len(cohort), cfg.Kt)
	}
	seen := map[int]bool{}
	for _, id := range cohort {
		if seen[id] {
			t.Fatal("default sampling must be without replacement")
		}
		seen[id] = true
	}
}

func TestSampleCohortVariesByRound(t *testing.T) {
	cfg := smallConfig(t, echoStrategy{})
	cfg.K, cfg.Kt = 1000, 10
	a := sampleCohort(cfg, 0)
	b := sampleCohort(cfg, 1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("cohorts identical across rounds")
	}
}

func TestSampleCohortWithReplacement(t *testing.T) {
	cfg := smallConfig(t, echoStrategy{})
	cfg.SampleWithReplacement = true
	cfg.K, cfg.Kt = 3, 10 // forces duplicates
	cohort := sampleCohort(cfg, 0)
	if len(cohort) != 10 {
		t.Fatalf("cohort size %d, want 10", len(cohort))
	}
}

func TestEvaluate(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	ds := dataset.New(spec, 1)
	xs, ys := ds.Validation(20)
	acc := Evaluate(m, xs, ys)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v outside [0,1]", acc)
	}
	if got := Evaluate(m, nil, nil); got != 0 {
		t.Fatalf("empty evaluation = %v, want 0", got)
	}
}

func TestDelta(t *testing.T) {
	a := []*tensor.Tensor{tensor.FromSlice([]float64{3, 5}, 2)}
	b := []*tensor.Tensor{tensor.FromSlice([]float64{1, 2}, 2)}
	d := Delta(a, b)
	if d[0].At(0) != 2 || d[0].At(1) != 3 {
		t.Fatalf("Delta = %v", d[0].Data())
	}
	// Inputs must be untouched.
	if a[0].At(0) != 3 || b[0].At(0) != 1 {
		t.Fatal("Delta must not mutate inputs")
	}
}

func TestHistoryAccessors(t *testing.T) {
	h := &History{Rounds: []RoundStats{
		{Round: 0, Accuracy: 0.5, Evaluated: true, Clients: 1, MsPerIter: 2, Epsilon: 0.1},
		{Round: 1, Accuracy: 0.8, Evaluated: true, Clients: 1, MsPerIter: 4, Epsilon: 0.2},
		{Round: 2, Evaluated: false, Clients: 1, MsPerIter: 6, Epsilon: 0.3},
	}}
	if got, ok := h.FinalAccuracy(); !ok || got != 0.8 {
		t.Fatalf("FinalAccuracy = %v (ok=%v), want 0.8 (last evaluated)", got, ok)
	}
	if got, ok := h.BestAccuracy(); !ok || got != 0.8 {
		t.Fatalf("BestAccuracy = %v (ok=%v), want 0.8", got, ok)
	}
	if got, ok := h.MeanMsPerIter(); !ok || got != 4 {
		t.Fatalf("MeanMsPerIter = %v (ok=%v), want 4", got, ok)
	}
	if got := h.FinalEpsilon(); got != 0.3 {
		t.Fatalf("FinalEpsilon = %v, want 0.3", got)
	}
	// Sentinel-zero fix: a history that never evaluated (or never folded a
	// client) reports ok=false instead of a fabricated 0.0 — genuine 0%
	// accuracy and "never measured" used to be indistinguishable.
	empty := &History{}
	if _, ok := empty.FinalAccuracy(); ok {
		t.Fatal("empty FinalAccuracy must report ok=false")
	}
	if _, ok := empty.BestAccuracy(); ok {
		t.Fatal("empty BestAccuracy must report ok=false")
	}
	if _, ok := empty.MeanMsPerIter(); ok {
		t.Fatal("empty MeanMsPerIter must report ok=false")
	}
	if empty.FinalEpsilon() != 0 {
		t.Fatal("empty FinalEpsilon must return 0")
	}
	unevaluated := &History{Rounds: []RoundStats{{Round: 0, Accuracy: 0, Evaluated: false, Clients: 2, MsPerIter: 3}}}
	if _, ok := unevaluated.FinalAccuracy(); ok {
		t.Fatal("never-evaluated FinalAccuracy must report ok=false")
	}
	if got, ok := unevaluated.MeanMsPerIter(); !ok || got != 3 {
		t.Fatalf("MeanMsPerIter = %v (ok=%v), want 3 over the one participating round", got, ok)
	}
	// MeanMsPerIter skips rounds that folded nobody: averaging their zero
	// MsPerIter used to drag the reported cost toward 0 under faults.
	uncommitted := &History{Rounds: []RoundStats{
		{Round: 0, Clients: 2, MsPerIter: 6},
		{Round: 1, Clients: 0, MsPerIter: 0},
	}}
	if got, ok := uncommitted.MeanMsPerIter(); !ok || got != 6 {
		t.Fatalf("MeanMsPerIter = %v (ok=%v), want 6 (client-less rounds skipped)", got, ok)
	}
}

func TestClientStatsMsPerIter(t *testing.T) {
	s := ClientStats{Iters: 4, Duration: 8 * time.Millisecond}
	if got := s.MsPerIter(); got != 2 {
		t.Fatalf("MsPerIter = %v, want 2", got)
	}
	if got := (ClientStats{}).MsPerIter(); got != 0 {
		t.Fatalf("zero stats MsPerIter = %v, want 0", got)
	}
}
