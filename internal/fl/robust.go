package fl

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fedcdp/internal/tensor"
)

// Robust aggregation folds: coordinate-wise median and trimmed mean (Yin et
// al., ICML'18) and Krum (Blanchard et al., NeurIPS'17) — the classic
// defenses against Byzantine cohort members, selected via AggMedian /
// AggTrimmed / AggKrum.
//
// Unlike the streaming folds (FedSGD and friends hold one O(model)
// accumulator), a robust statistic needs the raw per-client updates: every
// fold CLONES its update into a buffer, so server memory is O(Kt·model) per
// round — the explicit price of robustness, paid only when a robust rule is
// selected. The buffered statistics are pure functions of the update
// MULTISET: the median picks sorted middles ((a+b)/2 for even n), the
// trimmed mean sorts before trimming and sums survivors in exact (big.Float)
// arithmetic, and Krum's pairwise distances are symmetric with a
// deterministic total-order tie-break — so Commit is bit-identical in any
// arrival order, at any GOMAXPROCS, even over the simnet fabric's
// arrival-order folds.
//
// Robust folds intentionally ignore aggregation weights (a hostile client
// could inflate its own) and client identity, and they are NOT
// grouping-invariant: an edge tree cannot compute a median of medians and
// get the median. NewAggregatorFor refuses robust rules on any sharded
// topology (see the tree caveat in DESIGN.md).

// robustBuffer is the shared Fold side of every robust aggregator: cloned
// updates, collected under a lock, geometry-checked against Begin's params.
type robustBuffer struct {
	mu      sync.Mutex
	shape   []*tensor.Tensor // params at Begin, for geometry checks only
	updates [][]*tensor.Tensor
}

func (b *robustBuffer) Begin(params []*tensor.Tensor) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.shape = params
	b.updates = b.updates[:0]
}

// Fold clones the update into the buffer — O(model) per fold, O(Kt·model)
// per round. Updates whose geometry does not match the round's parameters
// are dropped (the wire layer validates shapes; this guards in-process
// misuse from poisoning an order statistic).
func (b *robustBuffer) Fold(update []*tensor.Tensor) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !geometryMatches(update, b.shape) {
		return
	}
	b.updates = append(b.updates, tensor.CloneAll(update))
}

func (b *robustBuffer) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.updates)
}

// column gathers coordinate (layer i, offset j) across all buffered updates
// into dst.
func (b *robustBuffer) column(dst []float64, i, j int) []float64 {
	dst = dst[:0]
	for _, u := range b.updates {
		dst = append(dst, u[i].Data()[j])
	}
	return dst
}

// sortFloatsTotal sorts ascending under a total order: the usual < on
// reals, with exactly-equal values (and non-comparable ones — NaNs, signed
// zeros) broken by their IEEE-754 bit patterns. The result is a canonical
// permutation of the multiset, so every order statistic computed from it is
// arrival-order invariant even on hostile inputs.
func sortFloatsTotal(vals []float64) {
	sort.Slice(vals, func(a, b int) bool {
		x, y := vals[a], vals[b]
		if x < y {
			return true
		}
		if y < x {
			return false
		}
		return math.Float64bits(x) < math.Float64bits(y)
	})
}

// CoordMedianAggregator commits W ← W + median(ΔW) coordinate-wise: with
// fewer than half the cohort Byzantine, each committed coordinate lies
// between two honest values. Buffers O(Kt·model); see the package note.
type CoordMedianAggregator struct {
	robustBuffer
}

// NewCoordMedian returns an empty coordinate-wise median fold.
func NewCoordMedian() *CoordMedianAggregator { return &CoordMedianAggregator{} }

// Commit implements Aggregator.
func (a *CoordMedianAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.updates)
	if n == 0 {
		return
	}
	col := make([]float64, 0, n)
	for i, p := range params {
		d := p.Data()
		for j := range d {
			col = a.column(col, i, j)
			sortFloatsTotal(col)
			if n%2 == 1 {
				d[j] += col[n/2]
			} else {
				// The midpoint of the two central sorted values — symmetric,
				// so it too depends only on the multiset.
				d[j] += (col[n/2-1] + col[n/2]) / 2
			}
		}
	}
}

// TrimmedMeanAggregator commits W ← W + trimmedmean_β(ΔW) coordinate-wise:
// each coordinate sorts its Kt values, discards the ⌊β·Kt⌋ smallest and
// largest, and averages the survivors in exact (big.Float) arithmetic,
// rounding once — so at β=0 the commit is bit-identical to the flat exact
// mean fold (NewExact, the repo's mean parity oracle), and at any β the
// result is arrival-order invariant. Buffers O(Kt·model).
type TrimmedMeanAggregator struct {
	robustBuffer
	// Beta is the per-tail trim fraction, in [0, 0.5): ⌊β·n⌋ values are cut
	// from EACH end. A β that would trim everything is clamped so at least
	// one value survives.
	Beta float64
}

// NewTrimmedMean returns an empty β-trimmed-mean fold.
func NewTrimmedMean(beta float64) (*TrimmedMeanAggregator, error) {
	if !(beta >= 0 && beta < 0.5) {
		return nil, fmt.Errorf("fl: trimmed-mean β %v outside [0, 0.5)", beta)
	}
	return &TrimmedMeanAggregator{Beta: beta}, nil
}

// Commit implements Aggregator.
func (a *TrimmedMeanAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.updates)
	if n == 0 {
		return
	}
	t := int(a.Beta * float64(n))
	if 2*t >= n {
		t = (n - 1) / 2
	}
	m := n - 2*t
	inv := 1 / float64(m)
	col := make([]float64, 0, n)
	sum := NewExactVec(1)
	for i, p := range params {
		d := p.Data()
		for j := range d {
			col = a.column(col, i, j)
			sortFloatsTotal(col)
			sum.Zero()
			for _, v := range col[t : n-t] {
				sum.Add(0, v)
			}
			d[j] += inv * sum.Round(0)
		}
	}
}

// KrumAggregator commits W ← W + ΔW_k* where k* is the Krum selection: the
// update whose summed squared L2 distance to its n−f−2 nearest cohort
// neighbours is smallest — under f Byzantine members (n ≥ 2f+3) the winner
// sits inside an honest cluster, so the commit IS one honest client's
// update. Distances are symmetric pure functions of the two vectors and
// ties break by (score, then lexicographic total order on the update
// vectors), so selection is arrival-order invariant. Buffers O(Kt·model)
// and scores in O(Kt²·model).
type KrumAggregator struct {
	robustBuffer
	// F is the number of Byzantine members the selection tolerates; the
	// neighbour count n−F−2 is clamped to [1, n−1] when the cohort is too
	// small for the nominal guarantee.
	F int
}

// NewKrum returns an empty Krum fold tolerating f Byzantine members.
func NewKrum(f int) (*KrumAggregator, error) {
	if f < 0 {
		return nil, fmt.Errorf("fl: negative Krum f %d", f)
	}
	return &KrumAggregator{F: f}, nil
}

// Commit implements Aggregator.
func (a *KrumAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.updates)
	if n == 0 {
		return
	}
	best := a.updates[krumSelect(a.updates, a.F)]
	tensor.AddAllScaled(params, 1, best)
}

// krumSelect returns the index of the Krum winner among updates.
func krumSelect(updates [][]*tensor.Tensor, f int) int {
	n := len(updates)
	if n == 1 {
		return 0
	}
	k := n - f - 2
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	// Pairwise squared distances: d(u,v) sums (u_c−v_c)² in fixed coordinate
	// order, so it is exactly symmetric — the matrix permutes with the fold
	// order, scores permute with it, and the selected VECTOR is invariant.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := sqDist(updates[i], updates[j])
			dist[i][j], dist[j][i] = d, d
		}
	}
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, dist[i][j])
			}
		}
		// Sum the k nearest in ascending sorted order: a pure function of
		// the row's distance multiset.
		sortFloatsTotal(row)
		s := 0.0
		for _, d := range row[:k] {
			s += d
		}
		scores[i] = s
	}
	best := 0
	for i := 1; i < n; i++ {
		if robustLess(scores[i], scores[best]) ||
			(scores[i] == scores[best] && lexLess(updates[i], updates[best])) {
			best = i
		}
	}
	return best
}

// sqDist returns the squared L2 distance between two aligned tensor lists.
func sqDist(a, b []*tensor.Tensor) float64 {
	s := 0.0
	for i := range a {
		da, db := a[i].Data(), b[i].Data()
		for j := range da {
			d := da[j] - db[j]
			s += d * d
		}
	}
	return s
}

// robustLess is < under the total order sortFloatsTotal sorts by.
func robustLess(a, b float64) bool {
	if a < b {
		return true
	}
	if b < a {
		return false
	}
	return math.Float64bits(a) < math.Float64bits(b)
}

// lexLess compares two aligned tensor lists lexicographically under the
// total order — the deterministic tie-break that keeps Krum's selection a
// pure function of the update multiset when scores tie exactly.
func lexLess(a, b []*tensor.Tensor) bool {
	for i := range a {
		da, db := a[i].Data(), b[i].Data()
		for j := range da {
			if math.Float64bits(da[j]) == math.Float64bits(db[j]) {
				continue
			}
			return robustLess(da[j], db[j])
		}
	}
	return false
}
