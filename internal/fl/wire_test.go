package fl

import (
	"math"
	"strings"
	"testing"

	"fedcdp/internal/tensor"
)

func TestWireValidation(t *testing.T) {
	valid := func() UpdateMsg {
		m := UpdateMsg{ClientID: 1, Round: 0, Weight: 3}
		m.Delta = WireFromTensors([]*tensor.Tensor{tensor.FromSlice([]float64{1, 2}, 2)})
		return m
	}
	if m := valid(); m.Validate() != nil {
		t.Fatalf("valid message rejected: %v", m.Validate())
	}

	cases := []struct {
		name   string
		mutate func(*UpdateMsg)
		want   string
	}{
		{"negative round", func(m *UpdateMsg) { m.Round = -1 }, "negative update round"},
		{"negative client", func(m *UpdateMsg) { m.ClientID = -2 }, "negative client id"},
		{"nan weight", func(m *UpdateMsg) { m.Weight = math.NaN() }, "invalid update weight"},
		{"inf weight", func(m *UpdateMsg) { m.Weight = math.Inf(1) }, "invalid update weight"},
		{"negative weight", func(m *UpdateMsg) { m.Weight = -1 }, "invalid update weight"},
		{"no payload", func(m *UpdateMsg) { m.Delta = nil }, "no payload"},
		{"both payloads", func(m *UpdateMsg) {
			m.Sparse = []SparseTensorWire{{Shape: []int{1}, Indices: []int32{0}, Values: []float64{1}}}
		}, "mixes payload encodings"},
		{"quant and dense payloads", func(m *UpdateMsg) {
			m.Quant = []QuantTensorWire{{Shape: []int{1}, Bits: QuantInt8, Scale: 1, Q: []int16{1}}}
		}, "mixes payload encodings"},
		{"shape/data mismatch", func(m *UpdateMsg) { m.Delta[0].Shape = []int{3} }, "does not match shape"},
		{"negative dim", func(m *UpdateMsg) { m.Delta[0].Shape = []int{-2, -1} }, "negative wire dimension"},
		{"overflowing shape", func(m *UpdateMsg) { m.Delta[0].Shape = []int{1 << 20, 1 << 20, 1 << 20} }, "exceeds"},
		{"excessive rank", func(m *UpdateMsg) { m.Delta[0].Shape = make([]int, 40) }, "rank"},
		{"nan value", func(m *UpdateMsg) { m.Delta[0].Data[1] = math.NaN() }, "non-finite"},
		{"inf value", func(m *UpdateMsg) { m.Delta[0].Data[0] = math.Inf(-1) }, "non-finite"},
	}
	for _, tc := range cases {
		m := valid()
		tc.mutate(&m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: hostile message validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, derr := m.DecodeTensors(); derr == nil {
			t.Errorf("%s: DecodeTensors accepted a hostile message", tc.name)
		}
	}
}

func TestSparseWireValidation(t *testing.T) {
	valid := SparseTensorWire{Shape: []int{4}, Indices: []int32{1, 3}, Values: []float64{5, -5}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid sparse rejected: %v", err)
	}
	cases := []struct {
		name string
		w    SparseTensorWire
	}{
		{"index out of range", SparseTensorWire{Shape: []int{4}, Indices: []int32{4}, Values: []float64{1}}},
		{"negative index", SparseTensorWire{Shape: []int{4}, Indices: []int32{-1}, Values: []float64{1}}},
		{"misaligned slices", SparseTensorWire{Shape: []int{4}, Indices: []int32{0, 1}, Values: []float64{1}}},
		{"too many entries", SparseTensorWire{Shape: []int{1}, Indices: []int32{0, 0}, Values: []float64{1, 2}}},
		{"nan value", SparseTensorWire{Shape: []int{2}, Indices: []int32{0}, Values: []float64{math.NaN()}}},
		{"negative dim", SparseTensorWire{Shape: []int{-4}}},
	}
	for _, tc := range cases {
		if tc.w.Validate() == nil {
			t.Errorf("%s: hostile sparse wire validated", tc.name)
		}
	}
}

func TestParamMsgValidation(t *testing.T) {
	valid := func() ParamMsg {
		return ParamMsg{
			Round:  0,
			Params: WireFromTensors([]*tensor.Tensor{tensor.FromSlice([]float64{1}, 1)}),
			Cfg:    RoundConfig{BatchSize: 4, LocalIters: 5, LR: 0.1},
		}
	}
	if m := valid(); m.Validate() != nil {
		t.Fatalf("valid announcement rejected: %v", m.Validate())
	}
	if err := (&ParamMsg{Denied: true}).Validate(); err != nil {
		t.Fatalf("denial must always validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ParamMsg)
	}{
		{"zero batch", func(m *ParamMsg) { m.Cfg.BatchSize = 0 }},
		{"absurd iters", func(m *ParamMsg) { m.Cfg.LocalIters = 1 << 30 }},
		{"nan lr", func(m *ParamMsg) { m.Cfg.LR = math.NaN() }},
		{"negative lr", func(m *ParamMsg) { m.Cfg.LR = -1 }},
		{"no params", func(m *ParamMsg) { m.Params = nil }},
		{"bad param tensor", func(m *ParamMsg) { m.Params[0].Data[0] = math.Inf(1) }},
		{"negative round", func(m *ParamMsg) { m.Round = -3 }},
		{"bad scenario", func(m *ParamMsg) { m.Cfg.Scenario.Name = "no-such-scenario" }},
	}
	for _, tc := range cases {
		m := valid()
		tc.mutate(&m)
		if m.Validate() == nil {
			t.Errorf("%s: hostile announcement validated", tc.name)
		}
	}
}
