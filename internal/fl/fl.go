package fl

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// Execution engines selectable via RoundConfig.Engine. The batched engine
// (default) runs local training through the GEMM/im2col batched path of
// internal/nn; the reference engine is the original per-example
// implementation, kept for parity testing (see DESIGN.md).
const (
	EngineBatched   = "batched"
	EngineReference = "reference"
)

// Round runtimes selectable via Config.Runtime. The streaming runtime
// (default) folds each client update into an Aggregator the moment it
// arrives — O(model) server memory, per-round deadlines, straggler
// cutoff and quorum semantics; the barrier runtime is the original
// lockstep path that materializes the whole cohort before aggregating,
// kept as the parity reference (see DESIGN.md, "Streaming runtime").
const (
	RuntimeStreaming = "streaming"
	RuntimeBarrier   = "barrier"
)

// Noise engines selectable via RoundConfig.NoiseEngine. The counter engine
// (default) keys every Gaussian draw to (seed, round, client, iteration,
// example, layer, offset) via tensor.CounterRNG, so sanitization of a whole
// mini-batch fans out over goroutines with bit-identical results at any
// GOMAXPROCS; the reference engine is the original sequential math/rand
// stream, kept as the parity oracle (see DESIGN.md, "Noise engine").
const (
	NoiseCounter   = "counter"
	NoiseReference = "reference"
)

// Reserved Split/CounterRNG label spaces under the root seed. Labels 1–5
// are claimed by model init, the server RNG, cohort sampling, client RNG
// streams and dropout coins (see the Split call sites); the counter noise
// engine claims 6 (client-side streams) and 7 (server-side streams);
// internal/simnet claims 8–11 for transport fault coins; the Floyd cohort
// sampler claims 12 (sampleLabelFloyd) — a separate label from the legacy
// sampler's 3, because the two consume their streams differently and must
// never be confused for one another.
const (
	noiseLabelClient = 6
	noiseLabelServer = 7
	sampleLabelFloyd = 12
)

// ClientNoise returns the counter noise generator for one client's round:
// the root of the per-example and per-update key schedule. Exposed so remote
// clients (rpc.go) and tests derive exactly the stream the simulator uses.
func ClientNoise(seed int64, round, clientID int) tensor.CounterRNG {
	return tensor.NewCounterRNG(seed, noiseLabelClient, int64(round), int64(clientID))
}

// ServerNoise returns the counter noise generator for one round's
// server-side sanitization; per-update streams are derived from the
// update's cohort position, so folds are deterministic in any arrival
// order.
func ServerNoise(seed int64, round int) tensor.CounterRNG {
	return tensor.NewCounterRNG(seed, noiseLabelServer, int64(round))
}

// Fold orders selectable via Config.FoldOrder (streaming runtime only).
// FoldCohort (default) commits updates in cohort order regardless of
// arrival, which makes seeded runs bit-identical to the barrier runtime;
// FoldArrival commits in completion order with no reorder buffer —
// strictly O(model) memory, at the cost of run-to-run floating-point
// reproducibility.
const (
	FoldCohort  = "cohort"
	FoldArrival = "arrival"
)

// Cohort samplers selectable via Config.Sampler.
const (
	SamplerLegacy = "legacy"
	SamplerFloyd  = "floyd"
)

// RoundConfig carries the local-training hyperparameters published by the
// server when a client subscribes to the task (Section IV-A).
type RoundConfig struct {
	BatchSize   int
	LocalIters  int
	LR          float64
	TotalRounds int
	// Scenario is the data-heterogeneity scenario the server publishes:
	// remote clients repartition their local dataset view with it, so the
	// whole federation agrees on one client→shard assignment without
	// per-client configuration. The zero value means the client's own
	// partition (iid by default) stands.
	Scenario dataset.Scenario
	// Engine selects the local-training execution engine: EngineBatched
	// ("" defaults to it) or EngineReference.
	Engine string
	// NoiseEngine selects the DP noise source: NoiseCounter ("" defaults to
	// it) or NoiseReference, the sequential math/rand stream kept as the
	// parity oracle.
	NoiseEngine string
	// Precision selects the arithmetic width of client GEMM kernels:
	// tensor.PrecisionFP64 ("" defaults to it, the pinned reference
	// oracle) or tensor.PrecisionFP32, the bulk float32 path. Published
	// with the round so every participant trains at the same width;
	// evaluation and DP noise always run at float64.
	Precision string
	// ConfigDigest is the canonical digest of the declarative experiment
	// config the server is running (see internal/config). Pure metadata —
	// it never influences training — but clients that were launched from a
	// config can verify it against their own digest
	// (ClientOptions.ExpectDigest) and refuse a server running a different
	// experiment. Empty when the server was assembled from flags.
	ConfigDigest string
}

// ClientEnv is everything a strategy needs to run one client's local
// training for one round.
type ClientEnv struct {
	ClientID int
	Round    int
	Model    *nn.Model // private copy initialized with the global weights
	Data     *dataset.ClientData
	RNG      *tensor.RNG // derived from (seed, round, client): schedule-independent
	Cfg      RoundConfig
	// Arena is the worker's scratch-buffer recycler, reused across rounds;
	// nil (e.g. remote clients) simply allocates.
	Arena *tensor.Arena
	// Noise is the counter noise generator for this client's round, set
	// when the round config selects the counter engine; nil means the
	// strategy must draw sequentially from RNG (reference engine).
	Noise *tensor.CounterRNG
}

// ClientStats reports per-client training measurements used by the paper's
// evaluation (Table III timing, Figure 3 gradient norms).
type ClientStats struct {
	// MeanGradNorm is the mean pre-clip L2 norm of per-example gradients
	// observed during the first local iteration.
	MeanGradNorm float64
	// Iters is the number of local iterations executed.
	Iters int
	// Duration is the wall-clock local training time.
	Duration time.Duration
}

// MsPerIter returns the local-training cost in milliseconds per iteration.
func (s ClientStats) MsPerIter() float64 {
	if s.Iters == 0 {
		return 0
	}
	return s.Duration.Seconds() * 1000 / float64(s.Iters)
}

// Strategy defines how a client computes its shared update and how the
// server treats collected updates before aggregation.
type Strategy interface {
	// Name identifies the strategy in histories and experiment output.
	Name() string
	// ClientUpdate runs local training and returns ΔW = W_local − W_global.
	ClientUpdate(env *ClientEnv) ([]*tensor.Tensor, ClientStats)
	// ServerSanitize may modify the collected updates in place before
	// FedSGD aggregation (e.g. Fed-SDP server-side noise). round is the
	// current 0-based round.
	ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG)
}

// CounterSanitizer is implemented by strategies whose server-side
// sanitization can run on the counter noise engine: update idx (the
// client's cohort position) is sanitized from its own derived stream, so
// the runtime may sanitize updates in any arrival order — or in parallel —
// and still commit a deterministic round.
type CounterSanitizer interface {
	ServerSanitizeCounter(round, idx int, update []*tensor.Tensor, noise tensor.CounterRNG)
}

// counterSanitizer returns the strategy's counter-engine server sanitizer
// when the config selects the counter noise engine and the strategy
// supports it — the single engine-dispatch rule shared by the barrier and
// streaming runtimes.
func counterSanitizer(cfg Config) (CounterSanitizer, bool) {
	if cfg.Round.NoiseEngine == NoiseReference {
		return nil, false
	}
	cs, ok := cfg.Strategy.(CounterSanitizer)
	return cs, ok
}

// serverSanitize routes one update through the strategy's server-side
// sanitization on the configured noise engine. idx is the update's cohort
// position; the sequential fallback consumes serverRNG exactly as the
// pre-counter runtime did.
func serverSanitize(cfg Config, round, idx int, update []*tensor.Tensor, serverRNG *tensor.RNG) {
	if cs, ok := counterSanitizer(cfg); ok {
		cs.ServerSanitizeCounter(round, idx, update, ServerNoise(cfg.Seed, round))
		return
	}
	cfg.Strategy.ServerSanitize(round, [][]*tensor.Tensor{update}, serverRNG)
}

// Config describes one simulation run.
type Config struct {
	Data  *dataset.Dataset
	Model nn.Spec

	K      int // total client population
	Kt     int // participating clients per round
	Rounds int

	Round RoundConfig

	Strategy Strategy

	Seed        int64
	ValExamples int // validation subset size (0 = dataset default cap 500)
	EvalEvery   int // evaluate every n rounds (0 = every round)
	Parallelism int // concurrent client trainers (0 = GOMAXPROCS)

	// SampleWithReplacement selects the per-round cohort with replacement
	// (the paper's accounting model); the default samples Kt distinct
	// clients, the standard FL deployment behaviour.
	SampleWithReplacement bool

	// Sampler selects the distinct-cohort draw: SamplerLegacy ("" defaults
	// to it) is the original O(K) permutation draw, kept as the default so
	// every pre-existing seeded run stays byte-identical; SamplerFloyd is
	// the O(Kt) Floyd draw for large populations (label 12). The two
	// consume different Split streams and produce different (equally
	// uniform) cohorts. Ignored when SampleWithReplacement is set.
	Sampler string

	// Shards selects the server aggregation fold: 0 (default) is the
	// legacy float fold, 1 the flat exact fold (the hierarchical parity
	// oracle), ≥2 an aggregation tree with that many edge shards. See
	// exact.go for the exactness contract.
	Shards int

	// TreeFanout bounds how many partials one tree compose step merges
	// (≤1 = all at once). Bit-irrelevant — exact merges are associative —
	// but it shapes the deployment's edge→root traffic pattern.
	TreeFanout int

	// Aggregation selects the server rule: AggFedSGD (default) applies
	// W ← W + mean(ΔW); AggFedAvg replaces W with the mean of the client
	// models W_k = W + ΔW_k. The paper notes the two are mathematically
	// equivalent (Section IV-A); TestAggregationEquivalence verifies it.
	Aggregation string

	// DropoutRate is the probability that a selected client fails to return
	// its update in a round (device churn — the instability that motivates
	// sampling Kt < K in the first place, Section IV-A). The server
	// aggregates whatever arrives; a round where every client drops leaves
	// the global model unchanged.
	DropoutRate float64

	// InitialParams, when non-nil, warm-starts the global model (checkpoint
	// resume); StartRound offsets the round counter so cohort sampling,
	// client RNG streams and clipping-decay schedules continue where the
	// checkpointed run left off.
	InitialParams []*tensor.Tensor
	StartRound    int

	// ScheduleHorizon fixes the round horizon that clipping-decay schedules
	// span. Zero means StartRound+Rounds (this run is the whole plan); a
	// run that will later be resumed should declare its full planned length
	// here so schedules are anchored consistently across segments.
	ScheduleHorizon int

	// Runtime selects the round orchestration: RuntimeStreaming (""
	// defaults to it) or RuntimeBarrier, the original lockstep path kept
	// as the parity reference.
	Runtime string

	// RoundDeadline is the streaming runtime's straggler cutoff, measured
	// from the round opening: clients that have not delivered by then are
	// dropped — deadline-based dropout, generalizing DropoutRate's coin
	// flip to the failure mode real deployments see. Zero waits for the
	// full cohort.
	RoundDeadline time.Duration

	// MinQuorum is the minimum number of folded updates required to
	// commit a round; below it the round leaves the global model
	// unchanged (RoundStats.Committed records the outcome). Zero commits
	// whatever arrived.
	MinQuorum int

	// FoldOrder selects the streaming fold order: FoldCohort ("" defaults
	// to it, deterministic) or FoldArrival (no reorder buffer).
	FoldOrder string

	// Codec selects the wire encoding the deployment would use: CodecGob
	// ("" defaults to it) or CodecBinary. The in-process simulator only
	// touches the wire on server restarts (parameters round-trip through
	// the encoding to make recovery observable); core.RunSimnet threads
	// the same choice into the transport-level harness.
	Codec string

	// Clock drives the streaming runtime's deadline timers; nil uses the
	// system clock. Tests inject fakes to exercise deadline and quorum
	// paths deterministically.
	Clock Clock

	// Faults injects deterministic failures into the round loop: update
	// loss, mid-round client crashes, server restarts between rounds.
	// simnet.Plan implements it; nil runs fault-free. Both runtimes consult
	// the same plan at the same decision points, so seeded runs stay
	// bit-identical between streaming and barrier under any plan.
	Faults FaultPlan

	// foldHook, when set (tests only), observes every committed fold as
	// (round, folds so far this round).
	foldHook func(round, folded int)
}

// Aggregation rules. The streaming rules (fedsgd/fedavg/weighted) fold in
// O(model) server memory; the robust rules (median/trimmed/krum — see
// robust.go) buffer raw updates, O(Kt·model), and take an optional colon
// parameter: "trimmed:0.25" sets the per-tail trim fraction β (default
// 0.25), "krum:2" the tolerated Byzantine count f (default 1).
const (
	AggFedSGD   = "fedsgd"
	AggFedAvg   = "fedavg"
	AggWeighted = "weighted"
	AggMedian   = "median"
	AggTrimmed  = "trimmed"
	AggKrum     = "krum"
)

// splitAggRule splits "name[:param]" into its rule name and raw parameter.
func splitAggRule(rule string) (name, param string, hasParam bool) {
	name, param, hasParam = strings.Cut(rule, ":")
	return
}

// NewAggregator constructs the server fold for an aggregation rule (""
// defaults to FedSGD) — the single rule↔fold mapping shared by the
// in-process runtimes, cmd/fedserve and the simnet harness.
func NewAggregator(rule string) (Aggregator, error) {
	name, param, hasParam := splitAggRule(rule)
	if hasParam && name != AggTrimmed && name != AggKrum {
		return nil, fmt.Errorf("fl: aggregation %q takes no parameter", name)
	}
	switch name {
	case "", AggFedSGD:
		return NewFedSGD(), nil
	case AggFedAvg:
		return NewFedAvg(), nil
	case AggWeighted:
		return NewWeightedFedAvg(), nil
	case AggMedian:
		return NewCoordMedian(), nil
	case AggTrimmed:
		beta := 0.25
		if hasParam {
			v, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return nil, fmt.Errorf("fl: invalid trimmed-mean β %q", param)
			}
			beta = v
		}
		return NewTrimmedMean(beta)
	case AggKrum:
		f := 1
		if hasParam {
			v, err := strconv.Atoi(param)
			if err != nil {
				return nil, fmt.Errorf("fl: invalid Krum f %q", param)
			}
			f = v
		}
		return NewKrum(f)
	default:
		return nil, fmt.Errorf("fl: unknown aggregation %q", rule)
	}
}

// ValidAggregation reports whether rule (with any colon parameter) names a
// constructible server fold — the single validation rule shared by
// fl.Config, core and the cmd flag surfaces.
func ValidAggregation(rule string) bool {
	_, err := NewAggregator(rule)
	return err == nil
}

// RobustAggregation reports whether rule names a robust (update-buffering)
// fold — the rules NewAggregatorFor refuses to place on a sharded topology.
func RobustAggregation(rule string) bool {
	name, _, _ := splitAggRule(rule)
	return name == AggMedian || name == AggTrimmed || name == AggKrum
}

// FaultPlan injects deterministic failures into a federated run. Every
// method must be a pure function of its arguments (plus the plan's own
// seed) — never of wall time or goroutine scheduling — so a faulted run is
// exactly as reproducible as a clean one. internal/simnet's Plan is the
// canonical implementation; the interface lives here (structurally) so fl
// depends on no fault machinery.
type FaultPlan interface {
	// CrashClient reports whether the client crashes mid-round: its update
	// (and its stats) never reach the server.
	CrashClient(round, client int) bool
	// DropUpdate reports whether the client's finished update is lost in
	// transit to the server.
	DropUpdate(round, client int) bool
	// RestartServer reports whether the server restarts between round-1 and
	// round, losing all in-memory state except the checkpointable state
	// (global parameters and the round counter).
	RestartServer(round int) bool
}

// faultLost reports whether a cohort member's contribution is lost to the
// fault plan this round — the single decision rule shared by the barrier
// and streaming runtimes (which is what keeps them in lockstep under any
// plan).
func faultLost(cfg Config, round, client int) bool {
	f := cfg.Faults
	return f != nil && (f.CrashClient(round, client) || f.DropUpdate(round, client))
}

// AdversaryPlan extends a fault plan with adversarial CLIENT BEHAVIOR:
// instead of removing contributions (crash/drop), an adversary submits
// corrupted ones. Like FaultPlan, every method must be a pure function of
// its arguments plus the plan's seed, so an attacked run replays
// bit-identically at any GOMAXPROCS. simnet.Plan implements it
// (byzantine=n:mode and poison=n:rate clauses); the runtimes probe
// Config.Faults for it exactly as they probe aggregators for WeightedFolder.
type AdversaryPlan interface {
	// CorruptUpdate rewrites a Byzantine client's finished update in place
	// (sign-flip, scaling, seeded noise), reporting whether it did; honest
	// clients pass through untouched. Called at the same point by every
	// runtime: after local training, before the update leaves the client.
	CorruptUpdate(round, client int, update []*tensor.Tensor) bool
	// PoisonedClient reports whether the client's local shard is poisoned.
	PoisonedClient(client int) bool
	// PoisonLabel maps one example's label under the poisoning attack
	// (identity for honest clients and below-rate coins).
	PoisonLabel(client, index, label, classes int) int
}

// adversary returns the config's fault plan as an AdversaryPlan when it is
// one — the probe shared by the barrier and streaming runtimes.
func adversary(cfg Config) (AdversaryPlan, bool) {
	adv, ok := cfg.Faults.(AdversaryPlan)
	return adv, ok
}

// AdversaryShard returns the client's data view under the plan's poisoning
// attack: poisoned clients see their shard through the plan's label
// flipper, honest clients (and nil plans) see it untouched. Exposed so
// deployment harnesses (core.RunSimnet, ClientMux) hand each simulated
// client exactly the shard the in-process runtimes train on.
func AdversaryShard(adv AdversaryPlan, id int, data *dataset.ClientData) *dataset.ClientData {
	if adv == nil || !adv.PoisonedClient(id) {
		return data
	}
	return data.WithLabelFlipper(func(index, label, classes int) int {
		return adv.PoisonLabel(id, index, label, classes)
	})
}

// clientShard returns a cohort member's training data view for a round —
// the round-keyed view under time-varying partition scenarios, the
// poisoned view when the fault plan targets it — the single data rule
// shared by the barrier and streaming runtimes.
func clientShard(cfg Config, round, id int) *dataset.ClientData {
	data := cfg.Data.ClientAt(id, round)
	if adv, ok := adversary(cfg); ok {
		data = AdversaryShard(adv, id, data)
	}
	return data
}

// corruptUpdate applies any Byzantine corruption the plan mandates for this
// (round, client) — called by both runtimes at the same point, after
// ClientUpdate and before the update reaches the server.
func corruptUpdate(cfg Config, round, id int, update []*tensor.Tensor) {
	if adv, ok := adversary(cfg); ok {
		adv.CorruptUpdate(round, id, update)
	}
}

func (c *Config) validate() error {
	switch {
	case c.Data == nil:
		return fmt.Errorf("fl: config needs a dataset")
	case c.Strategy == nil:
		return fmt.Errorf("fl: config needs a strategy")
	case c.K <= 0 || c.Kt <= 0 || c.Kt > c.K:
		return fmt.Errorf("fl: invalid population K=%d, Kt=%d", c.K, c.Kt)
	case c.Rounds <= 0:
		return fmt.Errorf("fl: rounds must be positive, got %d", c.Rounds)
	case c.Round.BatchSize <= 0 || c.Round.LocalIters <= 0:
		return fmt.Errorf("fl: invalid round config %+v", c.Round)
	case c.Round.LR <= 0:
		return fmt.Errorf("fl: learning rate must be positive, got %v", c.Round.LR)
	case !ValidAggregation(c.Aggregation):
		return fmt.Errorf("fl: unknown aggregation %q", c.Aggregation)
	case c.Shards >= 1 && RobustAggregation(c.Aggregation):
		return fmt.Errorf("fl: robust aggregation %q is not grouping-invariant and cannot run on the exact/tree topology (shards=%d); use shards=0", c.Aggregation, c.Shards)
	case c.DropoutRate < 0 || c.DropoutRate > 1:
		return fmt.Errorf("fl: dropout rate %v outside [0,1]", c.DropoutRate)
	case c.StartRound < 0:
		return fmt.Errorf("fl: negative start round %d", c.StartRound)
	case c.Round.Engine != "" && c.Round.Engine != EngineBatched && c.Round.Engine != EngineReference:
		return fmt.Errorf("fl: unknown execution engine %q", c.Round.Engine)
	case c.Round.NoiseEngine != "" && c.Round.NoiseEngine != NoiseCounter && c.Round.NoiseEngine != NoiseReference:
		return fmt.Errorf("fl: unknown noise engine %q", c.Round.NoiseEngine)
	case c.Round.Precision != "" && c.Round.Precision != tensor.PrecisionFP64 && c.Round.Precision != tensor.PrecisionFP32:
		return fmt.Errorf("fl: unknown precision %q", c.Round.Precision)
	case !ValidCodec(c.Codec):
		return fmt.Errorf("fl: unknown wire codec %q", c.Codec)
	case c.Runtime != "" && c.Runtime != RuntimeStreaming && c.Runtime != RuntimeBarrier:
		return fmt.Errorf("fl: unknown runtime %q", c.Runtime)
	case c.FoldOrder != "" && c.FoldOrder != FoldCohort && c.FoldOrder != FoldArrival:
		return fmt.Errorf("fl: unknown fold order %q", c.FoldOrder)
	case c.MinQuorum < 0 || c.MinQuorum > c.Kt:
		return fmt.Errorf("fl: quorum %d outside [0, Kt=%d]", c.MinQuorum, c.Kt)
	case c.RoundDeadline < 0:
		return fmt.Errorf("fl: negative round deadline %v", c.RoundDeadline)
	case c.Sampler != "" && c.Sampler != SamplerLegacy && c.Sampler != SamplerFloyd:
		return fmt.Errorf("fl: unknown cohort sampler %q", c.Sampler)
	case c.Shards < 0:
		return fmt.Errorf("fl: negative shard count %d", c.Shards)
	case c.Shards > c.K:
		return fmt.Errorf("fl: %d shards exceed population K=%d", c.Shards, c.K)
	case c.TreeFanout < 0:
		return fmt.Errorf("fl: negative tree fanout %d", c.TreeFanout)
	}
	if _, err := c.Round.Scenario.Partitioner(); err != nil {
		return err
	}
	return nil
}

// Run executes the full federated simulation and returns its history.
func Run(cfg Config) (*History, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// The schedule horizon spans any checkpointed prefix plus this run,
	// unless the caller declared a longer plan.
	cfg.Round.TotalRounds = cfg.StartRound + cfg.Rounds
	if cfg.ScheduleHorizon > 0 {
		cfg.Round.TotalRounds = cfg.ScheduleHorizon
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	valN := cfg.ValExamples
	if valN <= 0 {
		valN = 500
	}

	global := nn.Build(cfg.Model, tensor.Split(cfg.Seed, 1))
	if cfg.InitialParams != nil {
		global.SetParams(cfg.InitialParams)
	}
	valX, valY := cfg.Data.Validation(valN)
	hist := &History{Strategy: cfg.Strategy.Name(), Config: cfg}

	serverRNG := tensor.Split(cfg.Seed, 2)
	pop := population(cfg)
	workers := newWorkerPool(par, cfg.Model)
	// Rule and shard count validated above; Shards=0 is the legacy fold.
	agg, _ := NewAggregatorFor(cfg.Aggregation, cfg.Shards, cfg.TreeFanout, cfg.K)
	dropCoin := tensor.NewRNG(0)
	clock := cfg.Clock
	if clock == nil {
		clock = SystemClock
	}
	for r := 0; r < cfg.Rounds; r++ {
		round := cfg.StartRound + r
		if cfg.Faults != nil && cfg.Faults.RestartServer(round) {
			// Server restart between rounds: every in-memory structure is
			// rebuilt, and the only surviving state is what a checkpoint
			// would carry — the global parameters (round-tripped through
			// the wire encoding to make the restart observable) and the
			// round counter. The reference-engine server noise stream is
			// re-derived from (seed, round), the deterministic rule a
			// restarted server resumes by; the counter noise engine is
			// stateless and unaffected.
			restored := roundTripParams(cfg.Codec, global.Params())
			global = nn.Build(cfg.Model, tensor.Split(cfg.Seed, 1))
			global.SetParams(restored)
			workers = newWorkerPool(par, cfg.Model)
			agg, _ = NewAggregatorFor(cfg.Aggregation, cfg.Shards, cfg.TreeFanout, cfg.K)
			serverRNG = tensor.Split(cfg.Seed, 2, int64(round))
		}
		cohort := sampleCohort(cfg, round)
		cohort = dropClients(cfg, round, cohort, dropCoin)
		var rs RoundStats
		if cfg.Runtime == RuntimeBarrier {
			rs = runBarrierRound(cfg, global, cohort, round, workers, serverRNG, agg)
		} else {
			rs = runStreamingRound(cfg, global, cohort, round, workers, serverRNG, agg, clock)
		}
		rs.Round = round
		rs.Active = pop.ActiveCount(round)
		if round%evalEvery == 0 || r == cfg.Rounds-1 {
			rs.Accuracy = Evaluate(global, valX, valY)
			rs.Evaluated = true
		}
		hist.Rounds = append(hist.Rounds, rs)
	}
	hist.Final = global
	return hist, nil
}

// runBarrierRound is the original lockstep round: train the whole cohort,
// materialize every update, sanitize them as one batch, then aggregate.
// Kept as the semantic/parity reference for the streaming runtime (the
// aggregation arithmetic itself is shared — both fold through the same
// Aggregator).
func runBarrierRound(cfg Config, global *nn.Model, cohort []int, round int, workers *workerPool, serverRNG *tensor.RNG, agg Aggregator) RoundStats {
	updates, stats, weights := trainCohort(cfg, global, cohort, round, workers)
	// Fault injection: contributions lost to the plan (crashes never
	// trained — trainCohort skipped them; drops trained but never arrive)
	// are removed before sanitization and folding, so the barrier round
	// commits exactly the survivors, in exactly the cohort order, the
	// streaming runtime commits.
	live := make([]int, 0, len(cohort))
	for i, id := range cohort {
		if updates[i] != nil && !faultLost(cfg, round, id) {
			live = append(live, i)
		}
	}
	if cs, ok := counterSanitizer(cfg); ok {
		noise := ServerNoise(cfg.Seed, round)
		for _, i := range live {
			// Keyed by original cohort position, matching the streaming
			// runtime's per-update streams under any survivor set.
			cs.ServerSanitizeCounter(round, i, updates[i], noise)
		}
	} else {
		// Reference engine: the original one-shot batch call, kept so
		// arbitrary strategies see the exact pre-streaming contract (with
		// no faults the batch is the whole cohort, verbatim).
		batch := make([][]*tensor.Tensor, 0, len(live))
		for _, i := range live {
			batch = append(batch, updates[i])
		}
		cfg.Strategy.ServerSanitize(round, batch, serverRNG)
	}
	params := global.Params()
	agg.Begin(params)
	for _, i := range live {
		foldClientInto(agg, cohort[i], updates[i], weights[i])
	}
	rs := RoundStats{Clients: len(live), Dropped: len(cohort) - len(live)}
	for _, i := range live {
		rs.MeanGradNorm += stats[i].MeanGradNorm
		rs.MsPerIter += stats[i].MsPerIter()
	}
	if n := float64(len(live)); n > 0 {
		rs.MeanGradNorm /= n
		rs.MsPerIter /= n
	}
	rs.Committed = len(live) >= cfg.MinQuorum
	if rs.Committed {
		agg.Commit(params)
	}
	return rs
}

// clientNoiseFor derives a client's counter noise generator, or nil when the
// round config selects the reference noise engine.
func clientNoiseFor(rc RoundConfig, seed int64, round, clientID int) *tensor.CounterRNG {
	if rc.NoiseEngine == NoiseReference {
		return nil
	}
	n := ClientNoise(seed, round, clientID)
	return &n
}

// sampleCohort picks the participating client IDs for a round, drawing
// only from the population's active set (see ActiveCohort).
func sampleCohort(cfg Config, round int) []int {
	return ActiveCohort(cfg.Seed, round, population(cfg), cfg.Kt, cfg.Sampler, cfg.SampleWithReplacement)
}

// SampleCohort returns the participating client ids fl.Run would draw for
// a round — exposed so out-of-process drivers (the simnet deployment
// harness, ops tooling) agree with the in-process simulator on round
// membership.
func SampleCohort(seed int64, round, k, kt int, withReplacement bool) []int {
	rng := tensor.Split(seed, 3, int64(round))
	if withReplacement {
		return rng.SampleWithReplacement(k, kt)
	}
	return rng.SampleWithoutReplacement(k, kt)
}

// SampleCohortFloyd returns the round's cohort under Config.Sampler ==
// SamplerFloyd: kt distinct ids drawn by Floyd's algorithm in O(kt) work
// and memory, sorted ascending. It consumes Split label 12 (the legacy
// draw consumes label 3), so the two samplers are distinct named streams —
// switching samplers changes cohorts, never silently reinterprets them.
func SampleCohortFloyd(seed int64, round, k, kt int) []int {
	return tensor.Split(seed, sampleLabelFloyd, int64(round)).SampleDistinctFloyd(k, kt)
}

// dropClients removes clients that fail this round (deterministic per
// (seed, round, client), so runs remain reproducible). One coin generator
// is reseeded per member — the emitted stream is bit-identical to a fresh
// Split child, without the per-client allocations the hot loop used to pay.
func dropClients(cfg Config, round int, cohort []int, coin *tensor.RNG) []int {
	if cfg.DropoutRate <= 0 {
		return cohort
	}
	kept := cohort[:0]
	for _, id := range cohort {
		coin.Reseed(cfg.Seed, 5, int64(round), int64(id))
		if coin.Float64() >= cfg.DropoutRate {
			kept = append(kept, id)
		}
	}
	return kept
}

// worker is one reusable local-training slot: a private model copy, a
// scratch arena, a reseedable client RNG, a counter-noise slot and the
// ClientEnv itself — all reused across clients and rounds so steady-state
// training stops allocating (the model's batched buffers, the arena's free
// lists and the RNG's source persist between rounds).
type worker struct {
	model *nn.Model
	arena *tensor.Arena
	rng   *tensor.RNG
	noise tensor.CounterRNG
	env   ClientEnv
}

// envFor populates the worker's reusable ClientEnv for one client round.
// The RNG is reseeded in place to the stream Split(seed, 4, round, id)
// would return; the counter noise generator is a value slot, so deriving
// it allocates nothing.
func (w *worker) envFor(cfg Config, round, id int, data *dataset.ClientData) *ClientEnv {
	w.rng.Reseed(cfg.Seed, 4, int64(round), int64(id))
	w.env = ClientEnv{
		ClientID: id,
		Round:    round,
		Model:    w.model,
		Data:     data,
		RNG:      w.rng,
		Cfg:      cfg.Round,
		Arena:    w.arena,
	}
	if cfg.Round.NoiseEngine != NoiseReference {
		w.noise = ClientNoise(cfg.Seed, round, id)
		w.env.Noise = &w.noise
	}
	return &w.env
}

// workerPool is a fixed set of workers handed out over a channel; at most
// len(slots) clients train concurrently.
type workerPool struct {
	spec  nn.Spec
	slots chan *worker
}

func newWorkerPool(par int, spec nn.Spec) *workerPool {
	p := &workerPool{spec: spec, slots: make(chan *worker, par)}
	for i := 0; i < par; i++ {
		p.slots <- nil // materialized lazily on first acquire
	}
	return p
}

func (p *workerPool) acquire() *worker {
	w := <-p.slots
	if w == nil {
		w = &worker{model: nn.Build(p.spec, tensor.NewRNG(0)), arena: tensor.NewArena(), rng: tensor.NewRNG(0)}
		w.model.UseArena(w.arena)
	}
	return w
}

func (p *workerPool) release(w *worker) { p.slots <- w }

// trainCohort runs local training for every cohort member on the worker
// pool and returns updates, stats and aggregation weights (the client's
// local example count) aligned with the cohort order.
func trainCohort(cfg Config, global *nn.Model, cohort []int, round int, workers *workerPool) ([][]*tensor.Tensor, []ClientStats, []float64) {
	updates := make([][]*tensor.Tensor, len(cohort))
	stats := make([]ClientStats, len(cohort))
	weights := make([]float64, len(cohort))
	globalParams := tensor.CloneAll(global.Params())

	var wg sync.WaitGroup
	for i, id := range cohort {
		wg.Add(1)
		w := workers.acquire()
		go func(i, id int, w *worker) {
			defer wg.Done()
			defer workers.release(w)
			if cfg.Faults != nil && cfg.Faults.CrashClient(round, id) {
				// Mid-round crash: the update never materializes (the nil
				// slot marks the loss for the caller).
				return
			}
			w.model.SetParams(globalParams)
			w.model.SetPrecision(cfg.Round.Precision)
			data := clientShard(cfg, round, id)
			weights[i] = float64(data.Len())
			updates[i], stats[i] = cfg.Strategy.ClientUpdate(w.envFor(cfg, round, id, data))
			// Byzantine corruption happens client-side, after training and
			// before the update "leaves" — the same point the streaming
			// runtime and the transport harness apply it.
			corruptUpdate(cfg, round, id, updates[i])
		}(i, id, w)
	}
	wg.Wait()
	return updates, stats, weights
}

// evalChunk bounds the batch width of Evaluate so validation of large sets
// stays cache-resident rather than materializing one huge activation batch.
const evalChunk = 64

// Evaluate returns validation accuracy of the model on a labelled set,
// classifying in batched-engine chunks; per-example prediction is the
// fallback for custom layers. Dense-only models predict bit-identically to
// the per-example path; conv logits agree to rounding error (see
// tensor/matmul.go), so an argmax could in principle differ on an exact
// near-tie between classes.
func Evaluate(m *nn.Model, xs []*tensor.Tensor, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for lo := 0; lo < len(xs); lo += evalChunk {
		hi := lo + evalChunk
		if hi > len(xs) {
			hi = len(xs)
		}
		for i, p := range m.PredictBatch(xs[lo:hi]) {
			if p == ys[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(xs))
}

// Delta returns local − global for aligned parameter lists (ΔW of a round).
func Delta(local, global []*tensor.Tensor) []*tensor.Tensor {
	out := tensor.CloneAll(local)
	for i := range out {
		out[i].Sub(global[i])
	}
	return out
}
