package fl

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/simnet"
	"fedcdp/internal/tensor"
)

// Tests for the binary wire codec: cross-parity against the gob oracle
// (both codecs must decode every message kind to bit-identical values),
// the per-connection negotiation matrix, hostile-frame rejection, the
// quantization error-feedback contract, and the zero-alloc steady state
// of the pooled encode path.

// testParamMsg is a round announcement exercising every field the codec
// must carry, including the full RoundConfig.
func testParamMsg() *ParamMsg {
	return &ParamMsg{
		Round: 3,
		Params: WireFromTensors([]*tensor.Tensor{
			tensor.FromSlice([]float64{0.125, -7.5, 3.25, 1e-9}, 2, 2),
			tensor.FromSlice([]float64{42}, 1),
		}),
		Cfg: RoundConfig{
			BatchSize: 8, LocalIters: 5, LR: 0.05, TotalRounds: 9,
			Scenario:    dataset.Scenario{Name: "dirichlet", Alpha: 0.3},
			Engine:      EngineBatched,
			NoiseEngine: NoiseCounter,
			Precision:   tensor.PrecisionFP32,
		},
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkParamEqual asserts b decodes bit-identically to a.
func checkParamEqual(t *testing.T, label string, a, b *ParamMsg) {
	t.Helper()
	if a.Round != b.Round || a.Denied != b.Denied || a.Reason != b.Reason || a.Cfg != b.Cfg {
		t.Fatalf("%s: header/config changed: %+v vs %+v", label, a, b)
	}
	if len(a.Params) != len(b.Params) {
		t.Fatalf("%s: %d params decoded, want %d", label, len(b.Params), len(a.Params))
	}
	for i := range a.Params {
		if !shapesEqual(a.Params[i].Shape, b.Params[i].Shape) || !bitsEqual(a.Params[i].Data, b.Params[i].Data) {
			t.Fatalf("%s: param %d not bit-identical", label, i)
		}
	}
}

// checkUpdateEqual asserts b decodes bit-identically to a, across all
// three payload encodings.
func checkUpdateEqual(t *testing.T, label string, a, b *UpdateMsg) {
	t.Helper()
	if a.ClientID != b.ClientID || a.Round != b.Round || math.Float64bits(a.Weight) != math.Float64bits(b.Weight) {
		t.Fatalf("%s: header changed: %+v vs %+v", label, a, b)
	}
	if len(a.Delta) != len(b.Delta) || len(a.Sparse) != len(b.Sparse) || len(a.Quant) != len(b.Quant) {
		t.Fatalf("%s: payload sections changed: %d/%d/%d vs %d/%d/%d", label,
			len(a.Delta), len(a.Sparse), len(a.Quant), len(b.Delta), len(b.Sparse), len(b.Quant))
	}
	for i := range a.Delta {
		if !shapesEqual(a.Delta[i].Shape, b.Delta[i].Shape) || !bitsEqual(a.Delta[i].Data, b.Delta[i].Data) {
			t.Fatalf("%s: dense tensor %d not bit-identical", label, i)
		}
	}
	for i := range a.Sparse {
		aw, bw := a.Sparse[i], b.Sparse[i]
		if !shapesEqual(aw.Shape, bw.Shape) || len(aw.Indices) != len(bw.Indices) || !bitsEqual(aw.Values, bw.Values) {
			t.Fatalf("%s: sparse tensor %d not bit-identical", label, i)
		}
		for j := range aw.Indices {
			if aw.Indices[j] != bw.Indices[j] {
				t.Fatalf("%s: sparse tensor %d index %d changed", label, i, j)
			}
		}
	}
	for i := range a.Quant {
		aw, bw := a.Quant[i], b.Quant[i]
		if !shapesEqual(aw.Shape, bw.Shape) || aw.Bits != bw.Bits || math.Float64bits(aw.Scale) != math.Float64bits(bw.Scale) || len(aw.Q) != len(bw.Q) {
			t.Fatalf("%s: quant tensor %d header changed", label, i)
		}
		for j := range aw.Q {
			if aw.Q[j] != bw.Q[j] {
				t.Fatalf("%s: quant tensor %d code %d changed", label, i, j)
			}
		}
	}
}

// testUpdateMsgs returns one update per payload encoding, including a
// rank-0 scalar tensor (geometry edge) in the dense case.
func testUpdateMsgs() map[string]*UpdateMsg {
	dense := &UpdateMsg{ClientID: 2, Round: 3, Weight: 17}
	dense.Delta = []TensorWire{
		{Shape: []int{2, 3}, Data: []float64{1, -2.5, 0, 4.125, -1e-30, 6}},
		{Shape: []int{}, Data: []float64{3.14159}},
	}
	sparse := &UpdateMsg{ClientID: 0, Round: 3, Weight: 1}
	sparse.Sparse = SparseFromTensors([]*tensor.Tensor{
		tensor.FromSlice([]float64{0, 0, 7.25, 0, 0, 0, -3, 0}, 8),
	})
	q8 := &UpdateMsg{ClientID: 5, Round: 3, Weight: 4}
	q8.Quant = QuantizeUpdate([]*tensor.Tensor{tensor.FromSlice([]float64{0.5, -1, 0.25, 1}, 4)}, QuantInt8, nil)
	q16 := &UpdateMsg{ClientID: 6, Round: 3, Weight: 4}
	q16.Quant = QuantizeUpdate([]*tensor.Tensor{tensor.FromSlice([]float64{0.5, -1, 0.25, 1}, 2, 2)}, QuantInt16, nil)
	return map[string]*UpdateMsg{"dense": dense, "sparse": sparse, "quant8": q8, "quant16": q16}
}

// bufSession builds a session of the named codec reading and writing one
// in-memory buffer — message-level round-trips without a peer.
func bufSession(codec string, buf *bytes.Buffer) wireSession {
	if codec == CodecBinary {
		return &binarySession{r: buf, w: buf}
	}
	return newGobSession(buf, buf)
}

// TestCodecMessageParityMatrix round-trips every message kind and payload
// encoding through both codecs: each must reproduce the original message
// bit-identically, making gob and binary interchangeable oracles of one
// another.
func TestCodecMessageParityMatrix(t *testing.T) {
	for _, codec := range []string{CodecGob, CodecBinary} {
		var buf bytes.Buffer
		s := bufSession(codec, &buf)

		pm := testParamMsg()
		if err := s.WriteParam(pm); err != nil {
			t.Fatalf("%s: WriteParam: %v", codec, err)
		}
		var gotPM ParamMsg
		if err := s.ReadParam(&gotPM); err != nil {
			t.Fatalf("%s: ReadParam: %v", codec, err)
		}
		checkParamEqual(t, codec+"/param", pm, &gotPM)

		denied := &ParamMsg{Denied: true, Reason: "no further rounds"}
		if err := s.WriteParam(denied); err != nil {
			t.Fatal(err)
		}
		var gotDenied ParamMsg
		if err := s.ReadParam(&gotDenied); err != nil {
			t.Fatal(err)
		}
		checkParamEqual(t, codec+"/denied", denied, &gotDenied)

		for name, um := range testUpdateMsgs() {
			if err := s.WriteUpdate(um); err != nil {
				t.Fatalf("%s/%s: WriteUpdate: %v", codec, name, err)
			}
			var got UpdateMsg
			if err := s.ReadUpdate(&got); err != nil {
				t.Fatalf("%s/%s: ReadUpdate: %v", codec, name, err)
			}
			checkUpdateEqual(t, codec+"/"+name, um, &got)
			if err := got.Validate(); err != nil {
				t.Fatalf("%s/%s: decoded update invalid: %v", codec, name, err)
			}
		}

		for _, ack := range []*AckMsg{{Accepted: true}, {Accepted: false, Reason: "round closed"}} {
			if err := s.WriteAck(ack); err != nil {
				t.Fatal(err)
			}
			var got AckMsg
			if err := s.ReadAck(&got); err != nil {
				t.Fatal(err)
			}
			if got != *ack {
				t.Fatalf("%s: ack %+v round-tripped to %+v", codec, *ack, got)
			}
		}
	}
}

// TestWriteUpdateTensorsParity pins the direct (zero-intermediate) encode
// against the materializing one: for dense, sparse and quantized inputs,
// WriteUpdateTensors must put the same decoded values on the wire as
// building the UpdateMsg first — on both codecs (gob ignores quantization
// by contract and ships exact floats).
func TestWriteUpdateTensorsParity(t *testing.T) {
	denseTs := []*tensor.Tensor{tensor.FromSlice([]float64{1, -2, 3.5, 4, 5, -6}, 3, 2)}
	sparseTs := []*tensor.Tensor{tensor.FromSlice([]float64{0, 0, 0, 0, 0, 0, 9.5, 0}, 8)}
	for _, tc := range []struct {
		name  string
		ts    []*tensor.Tensor
		quant int
	}{
		{"dense", denseTs, QuantNone},
		{"sparse", sparseTs, QuantNone},
		{"quant8", denseTs, QuantInt8},
		{"quant16", denseTs, QuantInt16},
	} {
		var buf bytes.Buffer
		s := bufSession(CodecBinary, &buf)
		if err := s.WriteUpdateTensors(4, 2, 11, tc.ts, tc.quant, nil); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var direct UpdateMsg
		if err := s.ReadUpdate(&direct); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		want := &UpdateMsg{ClientID: 4, Round: 2, Weight: 11}
		if tc.quant != QuantNone {
			want.Quant = QuantizeUpdate(tc.ts, tc.quant, nil)
		} else {
			want.Delta, want.Sparse = EncodeUpdate(tc.ts)
		}
		checkUpdateEqual(t, "binary/"+tc.name, want, &direct)

		// The gob oracle ships exact floats regardless of quant.
		var gbuf bytes.Buffer
		g := bufSession(CodecGob, &gbuf)
		if err := g.WriteUpdateTensors(4, 2, 11, tc.ts, tc.quant, nil); err != nil {
			t.Fatal(err)
		}
		var gotGob UpdateMsg
		if err := g.ReadUpdate(&gotGob); err != nil {
			t.Fatal(err)
		}
		exact := &UpdateMsg{ClientID: 4, Round: 2, Weight: 11}
		exact.Delta, exact.Sparse = EncodeUpdate(tc.ts)
		checkUpdateEqual(t, "gob/"+tc.name, exact, &gotGob)
	}
}

// runNegotiation runs a full param→update→ack exchange between a server
// session with the given codec and a client session with the given
// preference, over a synchronous in-memory pipe, returning the codecs the
// two sides settled on.
func runNegotiation(t *testing.T, serverCodec, clientPref string) (serverChose, clientChose string) {
	t.Helper()
	sc, cc := net.Pipe()
	defer sc.Close()
	defer cc.Close()

	pm := testParamMsg()
	um := testUpdateMsgs()["dense"]
	ack := &AckMsg{Accepted: true}

	var (
		wg      sync.WaitGroup
		srvErr  error
		srvSess wireSession
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := newServerSession(sc, serverCodec)
		if err != nil {
			srvErr = err
			return
		}
		srvSess = sess
		var gotUM UpdateMsg
		if err := sess.WriteParam(pm); err != nil {
			srvErr = err
			return
		}
		if err := sess.ReadUpdate(&gotUM); err != nil {
			srvErr = err
			return
		}
		checkUpdateEqual(t, "negotiated update", um, &gotUM)
		srvErr = sess.WriteAck(ack)
	}()

	cliSess, err := newClientSession(cc, clientPref)
	if err != nil {
		t.Fatalf("client session: %v", err)
	}
	var gotPM ParamMsg
	if err := cliSess.ReadParam(&gotPM); err != nil {
		t.Fatalf("client ReadParam: %v", err)
	}
	checkParamEqual(t, "negotiated param", pm, &gotPM)
	if err := cliSess.WriteUpdate(um); err != nil {
		t.Fatalf("client WriteUpdate: %v", err)
	}
	var gotAck AckMsg
	if err := cliSess.ReadAck(&gotAck); err != nil {
		t.Fatalf("client ReadAck: %v", err)
	}
	if gotAck != *ack {
		t.Fatalf("ack changed in transit: %+v", gotAck)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server session: %v", srvErr)
	}
	return srvSess.Codec(), cliSess.Codec()
}

// TestCodecNegotiationMatrix pins the 2×2 server/client codec matrix:
// binary runs only when BOTH sides opt in; every other combination falls
// back to gob, and every combination completes the full message exchange
// with bit-identical payloads.
func TestCodecNegotiationMatrix(t *testing.T) {
	for _, tc := range []struct {
		server, client, want string
	}{
		{CodecGob, CodecGob, CodecGob},
		{CodecGob, CodecBinary, CodecGob},
		{CodecBinary, CodecGob, CodecGob},
		{CodecBinary, CodecBinary, CodecBinary},
	} {
		name := tc.server + "+" + tc.client
		srvChose, cliChose := runNegotiation(t, tc.server, tc.client)
		if srvChose != tc.want || cliChose != tc.want {
			t.Fatalf("%s: settled on server=%s client=%s, want %s", name, srvChose, cliChose, tc.want)
		}
	}
}

// frameBytes assembles a raw binary frame for hostile-input tests.
func frameBytes(version, kind byte, payload []byte) []byte {
	b := append([]byte{}, binaryMagic[:]...)
	b = append(b, version, kind, 0, 0)
	b = appendU32(b, uint32(len(payload)))
	return append(b, payload...)
}

// TestBinaryHostileFrames feeds corrupted frames to the binary decode
// path: every case must return an error — never panic, never a partial
// message.
func TestBinaryHostileFrames(t *testing.T) {
	goodPayload := appendAckPayload(nil, &AckMsg{Accepted: true, Reason: "ok"})
	good := frameBytes(binaryVersion, kindAck, goodPayload)

	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"empty stream", nil, "frame header"},
		{"truncated header", good[:7], "frame header"},
		{"bad magic", append([]byte{'g', 'o', 'b', '!'}, good[4:]...), "magic"},
		{"bad version", frameBytes(99, kindAck, goodPayload), "version"},
		{"wrong kind", frameBytes(binaryVersion, kindParam, goodPayload), "kind"},
		{"truncated payload", good[:len(good)-2], "payload"},
		{"trailing payload bytes", frameBytes(binaryVersion, kindAck, append(append([]byte{}, goodPayload...), 0xEE)), "trailing"},
	}
	// Oversized declared length: stamp a length beyond the cap.
	over := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(over[8:12], maxFramePayload+1)
	cases = append(cases, struct {
		name string
		raw  []byte
		want string
	}{"oversized length", over, "exceeds"})

	for _, tc := range cases {
		s := &binarySession{r: bytes.NewReader(tc.raw)}
		var ack AckMsg
		err := s.ReadAck(&ack)
		if err == nil {
			t.Fatalf("%s: hostile frame decoded without error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestBinaryHostileTensorSections feeds structurally hostile tensor
// sections through the update decode path: bad counts, bad geometry,
// impossible sparse populations, unknown encodings.
func TestBinaryHostileTensorSections(t *testing.T) {
	head := func() []byte {
		b := appendI64(nil, 9) // ClientID
		b = appendI64(b, 0)    // Round
		return appendF64(b, 1) // Weight
	}
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"tensor count over cap", appendI64(head(), maxWireTensors+1), "declares"},
		// -1 is the partial sentinel (see partialSentinel), so the negative
		// rejection is pinned at -2 and the sentinel gets its own hostile
		// cases below.
		{"negative tensor count", appendI64(head(), -2), "declares"},
		{"truncated partial", appendI64(head(), partialSentinel), "truncated"},
		{"partial tensor count over cap", func() []byte {
			b := appendI64(head(), partialSentinel)
			b = appendStr(b, AggFedSGD)
			b = appendI64(b, 1) // Clients
			b = appendU8(b, 0)  // no WSum
			return appendI64(b, maxWireTensors+1)
		}(), "declares"},
		{"partial mantissa over cap", func() []byte {
			b := appendI64(head(), partialSentinel)
			b = appendStr(b, AggFedSGD)
			b = appendI64(b, 1) // Clients
			b = appendU8(b, 0)  // no WSum
			b = appendI64(b, 1) // one tensor
			b = appendU8(b, 1)  // rank 1
			b = appendI64(b, 1) // dim 1
			b = appendU8(b, 0)  // spec
			b = appendU8(b, 0)  // neg
			b = appendI64(b, 0) // exp
			return appendU32(b, exactMantBytes+1)
		}(), "mantissa"},
		{"rank over cap", func() []byte {
			b := appendI64(head(), 1)
			b = appendU8(b, encDense)
			return appendU8(b, maxWireDims+1)
		}(), "rank"},
		{"negative dimension", func() []byte {
			b := appendI64(head(), 1)
			b = appendU8(b, encDense)
			b = appendU8(b, 1)
			return appendI64(b, -4)
		}(), "outside"},
		{"overflowing shape", func() []byte {
			b := appendI64(head(), 1)
			b = appendU8(b, encDense)
			b = appendU8(b, 2)
			b = appendI64(b, maxWireElems)
			return appendI64(b, maxWireElems)
		}(), "exceeds"},
		{"dense payload missing", func() []byte {
			b := appendI64(head(), 1)
			b = appendTensorHeader(b, encDense, []int{1 << 20})
			return b // declares 2^20 floats, carries none
		}(), "truncated"},
		{"sparse overpopulated", func() []byte {
			b := appendI64(head(), 1)
			b = appendTensorHeader(b, encSparse, []int{4})
			return appendI64(b, 5) // 5 nonzeros in a 4-element tensor
		}(), "declares"},
		{"unknown encoding", func() []byte {
			b := appendI64(head(), 1)
			b = appendU8(b, 0xEE)
			return appendU8(b, 0)
		}(), "unknown"},
		{"trailing bytes", func() []byte {
			b := appendI64(head(), 0)
			return append(b, 0xAB)
		}(), "trailing"},
	}
	for _, tc := range cases {
		var m UpdateMsg
		err := parseUpdatePayload(tc.payload, &m)
		if err == nil {
			t.Fatalf("%s: hostile section decoded without error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Quantized parameters must be refused at the announcement gate.
	qp := appendI64(nil, 0) // Round
	qp = appendU8(qp, 0)    // Denied
	qp = appendStr(qp, "")  // Reason
	qp = appendI64(qp, 1)   // BatchSize
	qp = appendI64(qp, 1)   // LocalIters
	qp = appendF64(qp, 0.1) // LR
	qp = appendI64(qp, 1)   // TotalRounds
	qp = appendStr(qp, "")  // Scenario.Name
	qp = appendF64(qp, 0)   // Scenario.Alpha
	qp = appendI64(qp, 0)   // Scenario.Shards
	qp = appendI64(qp, 0)   // Scenario.Period
	qp = appendStr(qp, "")  // Engine
	qp = appendStr(qp, "")  // NoiseEngine
	qp = appendStr(qp, "")  // Precision
	qp = appendStr(qp, "")  // ConfigDigest
	qp = appendUpdateSection(qp, &UpdateMsg{Quant: QuantizeUpdate([]*tensor.Tensor{tensor.FromSlice([]float64{1}, 1)}, QuantInt8, nil)})
	var pm ParamMsg
	if err := parseParamPayload(qp, &pm); err == nil || !strings.Contains(err.Error(), "dense") {
		t.Fatalf("quantized announcement params must be refused, got %v", err)
	}
}

// TestQuantizeRoundTrip pins the quantization error bound: without
// residual state, every dequantized value is within Scale/2 of the
// original, and the wire form validates and survives the codec.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(11)
	src := tensor.New(257)
	for i := range src.Data() {
		src.Data()[i] = rng.Float64()*4 - 2
	}
	for _, bits := range []int{QuantInt8, QuantInt16} {
		ws := QuantizeUpdate([]*tensor.Tensor{src}, bits, nil)
		if len(ws) != 1 {
			t.Fatalf("bits=%d: %d wire tensors", bits, len(ws))
		}
		w := ws[0]
		if err := w.Validate(); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		back := w.Dequantize()
		bound := w.Scale/2 + 1e-15
		for i, v := range src.Data() {
			if d := math.Abs(back.Data[i] - v); d > bound {
				t.Fatalf("bits=%d: element %d error %g exceeds Scale/2=%g", bits, i, d, bound)
			}
		}
	}
}

// TestQuantizeErrorFeedback pins the DSSGD-style residual contract: with a
// QuantState, the rounding error banked in round r is repaid in round r+1,
// so the cumulative sum of dequantized updates tracks the cumulative true
// signal within one quantization step — instead of drifting by R·Scale/2
// over R rounds.
func TestQuantizeErrorFeedback(t *testing.T) {
	// A constant update whose values sit between int8 steps, the worst
	// case for repeated stateless rounding.
	src := tensor.FromSlice([]float64{0.7007, -0.31113, 0.00923, 1}, 4)
	const rounds = 64
	st := &QuantState{}
	acc := make([]float64, src.Len())
	var scale float64
	for r := 0; r < rounds; r++ {
		w := QuantizeUpdate([]*tensor.Tensor{src}, QuantInt8, st)[0]
		d := w.Dequantize()
		for i := range acc {
			acc[i] += d.Data[i]
		}
		if w.Scale > scale {
			scale = w.Scale
		}
	}
	for i, v := range src.Data() {
		drift := math.Abs(acc[i] - float64(rounds)*v)
		if drift > scale {
			t.Fatalf("element %d drifted %g over %d rounds (scale %g) — error feedback not repaying", i, drift, rounds, scale)
		}
	}

	// The same run without state is allowed to drift — proving the
	// feedback is what holds the line, not luck.
	accRaw := make([]float64, src.Len())
	for r := 0; r < rounds; r++ {
		w := QuantizeUpdate([]*tensor.Tensor{src}, QuantInt8, nil)[0]
		d := w.Dequantize()
		for i := range accRaw {
			accRaw[i] += d.Data[i]
		}
	}
	worst := 0.0
	for i, v := range src.Data() {
		if drift := math.Abs(accRaw[i] - float64(rounds)*v); drift > worst {
			worst = drift
		}
	}
	if worst <= scale {
		t.Logf("stateless drift %g stayed under one scale — benign vectors, feedback still pinned above", worst)
	}
}

// TestQuantizeZeroTensor pins the all-zero edge: zero scale, zero codes,
// residuals untouched.
func TestQuantizeZeroTensor(t *testing.T) {
	st := &QuantState{}
	ws := QuantizeUpdate([]*tensor.Tensor{tensor.New(5)}, QuantInt8, st)
	if ws[0].Scale != 0 {
		t.Fatalf("zero tensor got scale %g", ws[0].Scale)
	}
	for _, q := range ws[0].Q {
		if q != 0 {
			t.Fatal("zero tensor got nonzero codes")
		}
	}
	if err := ws[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryEncodeZeroAlloc pins the shared-pool contract: once the frame
// pool is warm, encoding a dense or sparse update through the binary
// session allocates nothing — the scratch is the sync.Pool's, not the
// garbage collector's.
func TestBinaryEncodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	dense := []*tensor.Tensor{tensor.New(2048), tensor.New(64)}
	rng := tensor.NewRNG(5)
	for _, ts := range dense {
		for i := range ts.Data() {
			ts.Data()[i] = rng.Float64() - 0.5
		}
	}
	sparse := []*tensor.Tensor{tensor.New(2048)}
	for i := 0; i < 2048; i += 64 {
		sparse[0].Data()[i] = rng.Float64()
	}
	s := &binarySession{w: io.Discard}
	for name, ts := range map[string][]*tensor.Tensor{"dense": dense, "sparse": sparse} {
		ts := ts
		// Warm the pool so the buffer has steady-state capacity.
		if err := s.WriteUpdateTensors(0, 0, 1, ts, QuantNone, nil); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := s.WriteUpdateTensors(0, 0, 1, ts, QuantNone, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: binary encode allocates %.1f objects/op at steady state, want 0", name, allocs)
		}
	}
}

// binaryRawSession runs one hand-rolled client session over the fabric
// with an explicit codec preference, returning the codec the session
// settled on (the observable the re-negotiation test pins).
func binaryRawSession(t *testing.T, n *simnet.Net, host string, pref string, clientID int, update []float64) (string, AckMsg) {
	t.Helper()
	conn, err := n.Dialer(host)("server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sess, err := newClientSession(conn, pref)
	if err != nil {
		t.Fatal(err)
	}
	var pm ParamMsg
	if err := sess.ReadParam(&pm); err != nil {
		t.Fatalf("%s: reading params: %v", host, err)
	}
	if pm.Denied {
		t.Fatalf("%s: session denied: %s", host, pm.Reason)
	}
	ts := []*tensor.Tensor{tensor.FromSlice(append([]float64(nil), update...), len(update))}
	if err := sess.WriteUpdateTensors(clientID, pm.Round, 1, ts, QuantNone, nil); err != nil {
		t.Fatalf("%s: sending update: %v", host, err)
	}
	var ack AckMsg
	if err := sess.ReadAck(&ack); err != nil {
		t.Fatalf("%s: reading ack: %v", host, err)
	}
	return sess.Codec(), ack
}

// TestCodecRenegotiationAcrossRestart restarts the server between rounds
// with a DIFFERENT codec each time: because negotiation is per
// connection, the reconnecting client must settle on binary against the
// binary server, fall back to gob against its gob-configured replacement,
// and return to binary after the next restart — with every round's update
// folded correctly throughout.
func TestCodecRenegotiationAcrossRestart(t *testing.T) {
	n := simnet.New(3, nil)
	params := []*tensor.Tensor{tensor.FromSlice([]float64{0, 0}, 2)}
	cfg := RoundConfig{BatchSize: 1, LocalIters: 1, LR: 0.1, TotalRounds: 3}

	runRound := func(round int, serverCodec, wantCodec string, update []float64) {
		t.Helper()
		ln, err := n.Listen("server")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewRoundServerOn(ln)
		srv.Codec = serverCodec
		type outcome struct {
			res RoundResult
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := srv.StreamRound(round, params, cfg, NewFedSGD(), RoundOptions{Clients: 1})
			done <- outcome{res, err}
		}()
		codec, ack := binaryRawSession(t, n, "c0", CodecBinary, 0, update)
		if codec != wantCodec {
			t.Fatalf("round %d: session settled on %s, want %s", round, codec, wantCodec)
		}
		if !ack.Accepted {
			t.Fatalf("round %d: update rejected: %s", round, ack.Reason)
		}
		o := <-done
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.Folded != 1 {
			t.Fatalf("round %d: %+v", round, o.res)
		}
		// Restart: the listener dies with the server; the next round
		// rebinds the address under a different codec configuration.
		srv.Close()
	}

	runRound(0, CodecBinary, CodecBinary, []float64{1, 1})
	runRound(1, "", CodecGob, []float64{2, 2})
	runRound(2, CodecBinary, CodecBinary, []float64{3, 3})
	if got := params[0].Data(); got[0] != 6 || got[1] != 6 {
		t.Fatalf("params %v after three rounds across codec-flipping restarts, want [6 6]", got)
	}
}

// TestBinaryCodecParityOverFabric runs the same seeded single-client round
// twice — once per codec — through the full deployment path (RoundServer,
// real client training, fabric transport): the exact binary codec must
// leave the global model bit-identical to the gob oracle's.
func TestBinaryCodecParityOverFabric(t *testing.T) {
	run := func(codec string) []float64 {
		spec, err := dataset.Get("cancer")
		if err != nil {
			t.Fatal(err)
		}
		ds := dataset.New(spec, 42)
		n := simnet.New(42, nil)
		ln, err := n.Listen("server")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewRoundServerOn(ln)
		srv.Codec = codec
		defer srv.Close()

		params := tensorsForSpec(t, spec)
		cfg := RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 1}
		done := make(chan error, 1)
		go func() {
			done <- RunRemoteClientOpts("server", 0, sgdStrategy{}, ds.Client(0), spec.ModelSpec(), 42,
				ClientOptions{Dial: n.Dialer("c0"), Codec: codec})
		}()
		if _, err := srv.StreamRound(0, params, cfg, NewFedSGD(), RoundOptions{Clients: 1}); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, p := range params {
			flat = append(flat, p.Data()...)
		}
		return flat
	}
	gobParams := run("")
	binParams := run(CodecBinary)
	if !bitsEqual(gobParams, binParams) {
		t.Fatal("binary codec round diverged from the gob oracle — the exact codec must be bit-transparent")
	}
}

// BenchmarkWire measures per-update encode and decode cost and wire bytes
// for a CNN-scale dense update: the gob oracle vs the binary codec, exact
// and quantized. The binary encode rows must stay allocation-free at
// steady state (the pooled-scratch contract TestBinaryEncodeZeroAlloc
// asserts); wire-B is the bytes-per-message acceptance metric.
func BenchmarkWire(b *testing.B) {
	const n = 100000
	rng := tensor.NewRNG(3)
	src := tensor.New(n)
	for i := range src.Data() {
		src.Data()[i] = rng.Float64()*2 - 1
	}
	ts := []*tensor.Tensor{src}

	encCases := []struct {
		name  string
		codec string
		quant int
	}{
		{"gob", CodecGob, QuantNone},
		{"binary", CodecBinary, QuantNone},
		{"binary-quant16", CodecBinary, QuantInt16},
		{"binary-quant8", CodecBinary, QuantInt8},
	}
	for _, tc := range encCases {
		b.Run("encode/"+tc.name, func(b *testing.B) {
			var buf bytes.Buffer
			st := &QuantState{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				s := bufSession(tc.codec, &buf)
				if err := s.WriteUpdateTensors(0, 0, 1, ts, tc.quant, st); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len()), "wire-B")
		})
	}
	for _, tc := range encCases {
		var buf bytes.Buffer
		if err := bufSession(tc.codec, &buf).WriteUpdateTensors(0, 0, 1, ts, tc.quant, nil); err != nil {
			b.Fatal(err)
		}
		raw := append([]byte(nil), buf.Bytes()...)
		b.Run("decode/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var m UpdateMsg
				var s wireSession
				if tc.codec == CodecBinary {
					s = &binarySession{r: bytes.NewReader(raw)}
				} else {
					s = newGobSession(bytes.NewReader(raw), io.Discard)
				}
				if err := s.ReadUpdate(&m); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(raw)), "wire-B")
		})
	}
}
