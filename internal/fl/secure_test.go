package fl

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// pipePair returns two connected TCP endpoints on loopback.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var server net.Conn
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	return client, server
}

func securePair(t *testing.T) (*SecureConn, *SecureConn) {
	t.Helper()
	c, s := pipePair(t)
	var sc, ss *SecureConn
	var errC, errS error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); sc, errC = Handshake(c) }()
	go func() { defer wg.Done(); ss, errS = Handshake(s) }()
	wg.Wait()
	if errC != nil || errS != nil {
		t.Fatalf("handshake: %v / %v", errC, errS)
	}
	return sc, ss
}

func TestSecureConnRoundTrip(t *testing.T) {
	a, b := securePair(t)
	defer a.Close()
	defer b.Close()
	msg := []byte("per-example client differential privacy")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := readFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func readFull(r *SecureConn, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestSecureConnMultipleFrames(t *testing.T) {
	a, b := securePair(t)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 20; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 100+i)
		if _, err := a.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if _, err := readFull(b, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
}

func TestSecureConnCiphertextOnWire(t *testing.T) {
	// The plaintext must not appear on the wire: intercept via a recording
	// conn.
	c, s := pipePair(t)
	rec := &recordingConn{Conn: c}
	var sc, ss *SecureConn
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); sc, _ = Handshake(rec) }()
	go func() { defer wg.Done(); ss, _ = Handshake(s) }()
	wg.Wait()
	if sc == nil || ss == nil {
		t.Fatal("handshake failed")
	}
	secret := []byte("this-gradient-is-private-data-12345678")
	if _, err := sc.Write(secret); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	if _, err := readFull(ss, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(rec.sent.Bytes(), secret) {
		t.Fatal("plaintext leaked onto the wire")
	}
}

type recordingConn struct {
	net.Conn
	sent bytes.Buffer
}

func (r *recordingConn) Write(p []byte) (int, error) {
	r.sent.Write(p)
	return r.Conn.Write(p)
}

func TestSecureRPCRound(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 42)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	cfg := RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 1}

	srv, err := NewSecureRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		done <- RunSecureRemoteClient(srv.Addr(), 0, sgdStrategy{}, ds.Client(0), spec.ModelSpec(), 42)
	}()
	deltas, err := srv.RunRound(0, model.Params(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cerr := <-done; cerr != nil {
		t.Fatal(cerr)
	}
	if len(deltas) != 1 || tensor.GroupL2Norm(deltas[0]) == 0 {
		t.Fatal("secure round produced no update")
	}
}

func TestSecureClientAgainstPlainServerFails(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 1)
	srv, err := NewRoundServer("127.0.0.1:0") // plain
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 1)
	go func() {
		done <- RunSecureRemoteClient(srv.Addr(), 0, sgdStrategy{}, ds.Client(0), spec.ModelSpec(), 1)
	}()
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(8))
	_, rerr := srv.RunRound(0, model.Params(), RoundConfig{BatchSize: 4, LocalIters: 1, LR: 0.1}, 1)
	cerr := <-done
	if rerr == nil && cerr == nil {
		t.Fatal("mismatched security modes must fail")
	}
}
