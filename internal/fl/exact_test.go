package fl

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

func sameBits(a, b []*tensor.Tensor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		da, db := a[i].Data(), b[i].Data()
		if len(da) != len(db) {
			return false
		}
		for j := range da {
			if math.Float64bits(da[j]) != math.Float64bits(db[j]) {
				return false
			}
		}
	}
	return true
}

func TestExactVecOrderAndGroupingInvariant(t *testing.T) {
	// Addends chosen so a float64 left-to-right sum is order-dependent:
	// catastrophic cancellation plus a dust term 600 orders of magnitude
	// smaller. Exact accumulation must land on the same bits regardless of
	// order or grouping.
	addends := []float64{1e308, 1.25, -1e308, 1e-300, 3.5e-9, -1.25, 7e300, -7e300}
	perms := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 2, 6, 7, 1, 5, 4},
	}
	var want float64
	for pi, perm := range perms {
		v := NewExactVec(1)
		for _, i := range perm {
			v.Add(0, addends[i])
		}
		got := v.Round(0)
		if pi == 0 {
			want = got
		} else if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("perm %d rounds to %g, perm 0 to %g", pi, got, want)
		}
	}
	if want != 1e-300+3.5e-9 {
		t.Fatalf("exact sum %g, want %g", want, 1e-300+3.5e-9)
	}
	// Grouping: split the addends across sub-accumulators and merge.
	for _, split := range []int{1, 3, 5} {
		a, b := NewExactVec(1), NewExactVec(1)
		for i, x := range addends {
			if i < split {
				a.Add(0, x)
			} else {
				b.Add(0, x)
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a.Round(0)) != math.Float64bits(want) {
			t.Fatalf("split %d merges to %g, want %g", split, a.Round(0), want)
		}
	}
}

func TestExactVecTinySumsExact(t *testing.T) {
	// 1e6 copies of the same tiny value: a float64 running sum loses low
	// bits; the exact sum must round to fl(1e6 * x) computed in one step.
	const x = 1.0000000000000002e-15 // not a power of two
	v := NewExactVec(1)
	for i := 0; i < 1_000_000; i++ {
		v.Add(0, x)
	}
	// The exact product 1e6·x isn't representable, but summing x a million
	// times is the same real number as 1000000*x computed exactly; compare
	// against a big-step reference: 2^20 groups would need big.Float, so
	// instead check against the doubling ladder which is exact in our vec.
	w := NewExactVec(1)
	w.Add(0, x)
	// double 19 times → 2^19 copies, then add the remaining 475712 one by...
	// too slow; rely on a second independent grouping instead.
	u := NewExactVec(1)
	for g := 0; g < 1000; g++ {
		inner := NewExactVec(1)
		for i := 0; i < 1000; i++ {
			inner.Add(0, x)
		}
		u.Merge(inner)
	}
	if math.Float64bits(v.Round(0)) != math.Float64bits(u.Round(0)) {
		t.Fatalf("flat sum %g != 1000x1000 grouped sum %g", v.Round(0), u.Round(0))
	}
}

func TestExactVecSpecials(t *testing.T) {
	cases := []struct {
		name    string
		addends []float64
		check   func(float64) bool
	}{
		{"posinf", []float64{1, math.Inf(1), 2}, func(f float64) bool { return math.IsInf(f, 1) }},
		{"neginf", []float64{math.Inf(-1), 5}, func(f float64) bool { return math.IsInf(f, -1) }},
		{"mixed-inf", []float64{math.Inf(1), math.Inf(-1)}, math.IsNaN},
		{"nan", []float64{1, math.NaN(), math.Inf(1)}, math.IsNaN},
	}
	for _, c := range cases {
		v := NewExactVec(1)
		for _, x := range c.addends {
			v.Add(0, x)
		}
		if !c.check(v.Round(0)) {
			t.Fatalf("%s: rounds to %v", c.name, v.Round(0))
		}
		// The special must survive a wire round-trip and a merge.
		w := NewExactVec(1)
		if err := w.SetScalarWire(0, v.ScalarWire(0)); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !c.check(w.Round(0)) {
			t.Fatalf("%s: wire round-trip lost special", c.name)
		}
		m := NewExactVec(1)
		m.Add(0, 42)
		m.Merge(v)
		if !c.check(m.Round(0)) {
			t.Fatalf("%s: merge lost special", c.name)
		}
	}
}

func TestExactVecOverflowRoundsToInf(t *testing.T) {
	v := NewExactVec(1)
	for i := 0; i < 4; i++ {
		v.Add(0, math.MaxFloat64)
	}
	if !math.IsInf(v.Round(0), 1) {
		t.Fatalf("4×MaxFloat64 rounds to %g, want +Inf", v.Round(0))
	}
	// But the sum is still finite internally: subtracting brings it back.
	for i := 0; i < 3; i++ {
		v.Add(0, -math.MaxFloat64)
	}
	if v.Round(0) != math.MaxFloat64 {
		t.Fatalf("after cancellation got %g, want MaxFloat64", v.Round(0))
	}
}

func TestExactScalarWireRoundTrip(t *testing.T) {
	g := tensor.NewRNG(31)
	vals := []float64{0, 1, -1, 0.1, -0.1, math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, 1e308, 1e-308, 3.141592653589793}
	for i := 0; i < 200; i++ {
		vals = append(vals, (g.Float64()-0.5)*math.Pow(2, float64(g.Intn(600)-300)))
	}
	for _, x := range vals {
		v := NewExactVec(1)
		v.Add(0, x)
		v.Add(0, 1e-40) // widen the window so the mantissa is long
		w := v.ScalarWire(0)
		u := NewExactVec(1)
		if err := u.SetScalarWire(0, w); err != nil {
			t.Fatalf("x=%g: %v", x, err)
		}
		if math.Float64bits(u.Round(0)) != math.Float64bits(v.Round(0)) {
			t.Fatalf("x=%g: wire round-trip %g != %g", x, u.Round(0), v.Round(0))
		}
		// Exactness, not just rounded agreement: merging the negation of the
		// round-tripped value must cancel to exactly zero.
		neg := NewExactVec(1)
		neg.Add(0, -x)
		neg.Add(0, -1e-40)
		if err := u.Merge(neg); err != nil {
			t.Fatal(err)
		}
		if u.Round(0) != 0 {
			t.Fatalf("x=%g: round-trip was not exact (residual %g)", x, u.Round(0))
		}
	}
}

func TestExactScalarWireRejectsHostileInput(t *testing.T) {
	v := NewExactVec(1)
	bad := []ExactScalarWire{
		{Spec: 9},
		{Mant: make([]byte, exactMantBytes+1)},
		{Exp: exactExpBound + 1, Mant: []byte{1}},
		{Exp: -exactExpBound - 1, Mant: []byte{1}},
	}
	for i, w := range bad {
		if err := v.SetScalarWire(0, w); err == nil {
			t.Fatalf("case %d: hostile scalar accepted", i)
		}
	}
}

func TestPartialWireValidate(t *testing.T) {
	mk := func() *PartialWire {
		return &PartialWire{
			Rule:    AggWeighted,
			Clients: 3,
			HasWSum: true,
			Sums:    []ExactTensorWire{{Shape: []int{2}, Elems: make([]ExactScalarWire, 2)}},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("valid partial rejected: %v", err)
	}
	for name, mutate := range map[string]func(*PartialWire){
		"bad-rule":       func(w *PartialWire) { w.Rule = "median" },
		"neg-clients":    func(w *PartialWire) { w.Clients = -1 },
		"missing-wsum":   func(w *PartialWire) { w.HasWSum = false },
		"no-tensors":     func(w *PartialWire) { w.Sums = nil },
		"shape-mismatch": func(w *PartialWire) { w.Sums[0].Shape = []int{3} },
		"unweighted-wsum": func(w *PartialWire) {
			w.Rule = AggFedSGD
		},
	} {
		w := mk()
		mutate(w)
		if err := w.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestTopologyShardOfMatchesRanges(t *testing.T) {
	for k := 1; k <= 40; k++ {
		for s := 1; s <= k+2; s++ {
			topo := Topology{K: k, Shards: s}
			eff := s
			if eff > 1 {
				// Ranges must partition [0,K) contiguously.
				prev := 0
				for sh := 0; sh < s; sh++ {
					lo, hi := topo.Range(sh)
					if lo != prev {
						t.Fatalf("K=%d S=%d shard %d starts at %d, want %d", k, s, sh, lo, prev)
					}
					prev = hi
				}
				if prev != k {
					t.Fatalf("K=%d S=%d ranges end at %d", k, s, prev)
				}
			}
			for id := 0; id < k; id++ {
				sh := topo.ShardOf(id)
				if sh < 0 || sh >= maxInt(eff, 1) {
					t.Fatalf("K=%d S=%d id %d → shard %d", k, s, id, sh)
				}
				lo, hi := topo.Range(sh)
				if id < lo || id >= hi {
					t.Fatalf("K=%d S=%d id %d → shard %d range [%d,%d)", k, s, id, sh, lo, hi)
				}
			}
		}
	}
	// Unknown population: modulo assignment, total coverage.
	topo := Topology{Shards: 4}
	for id := 0; id < 100; id++ {
		if got := topo.ShardOf(id); got != id%4 {
			t.Fatalf("modulo shard of %d = %d", id, got)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// randomRound builds params plus per-client (update, weight) pairs with
// adversarial magnitudes so float folds would be order-sensitive.
func randomRound(g *tensor.RNG, clients int) (params []*tensor.Tensor, updates [][]*tensor.Tensor, weights []float64) {
	shapes := [][]int{{3, 2}, {4}}
	for _, sh := range shapes {
		p := tensor.New(sh...)
		g.FillNormal(p, 0, 1)
		params = append(params, p)
	}
	for c := 0; c < clients; c++ {
		var u []*tensor.Tensor
		for _, sh := range shapes {
			t := tensor.New(sh...)
			scale := math.Pow(2, float64(g.Intn(120)-60))
			g.FillNormal(t, 0, scale)
			u = append(u, t)
		}
		updates = append(updates, u)
		weights = append(weights, float64(1+g.Intn(500)))
	}
	return
}

func TestTreeFoldMatchesFlatExactly(t *testing.T) {
	g := tensor.NewRNG(77)
	rules := []string{AggFedSGD, AggFedAvg, AggWeighted}
	for k := 1; k <= 16; k++ {
		params, updates, weights := randomRound(g, k)
		for _, rule := range rules {
			// Flat exact oracle.
			flatParams := tensor.CloneAll(params)
			flat, err := NewExact(rule)
			if err != nil {
				t.Fatal(err)
			}
			flat.Begin(flatParams)
			for c := 0; c < k; c++ {
				flat.FoldClient(c, updates[c], weights[c])
			}
			flat.Commit(flatParams)
			for shards := 1; shards <= k; shards++ {
				for _, fanout := range []int{0, 2, 3, shards} {
					treeParams := tensor.CloneAll(params)
					tree, err := NewTree(rule, Topology{K: k, Shards: shards}, fanout)
					if err != nil {
						t.Fatal(err)
					}
					tree.Begin(treeParams)
					// Fold in a scrambled arrival order.
					for _, c := range tensor.Split(9, int64(k), int64(shards)).Perm(k) {
						tree.FoldClient(c, updates[c], weights[c])
					}
					if tree.Count() != k {
						t.Fatalf("rule %s K=%d S=%d: count %d", rule, k, shards, tree.Count())
					}
					tree.Commit(treeParams)
					if !sameBits(treeParams, flatParams) {
						t.Fatalf("rule %s K=%d S=%d F=%d: tree commit differs from flat", rule, k, shards, fanout)
					}
				}
			}
		}
	}
}

func TestPartialWireComposesBitIdentical(t *testing.T) {
	// Edge folds serialized through the wire form and recomposed at a fresh
	// root must commit the same bits as the flat fold — the deployment path
	// (edge RoundServer → PartialWire → root) in miniature.
	g := tensor.NewRNG(13)
	const k, shards = 12, 4
	params, updates, weights := randomRound(g, k)
	for _, rule := range []string{AggFedSGD, AggFedAvg, AggWeighted} {
		flatParams := tensor.CloneAll(params)
		flat, _ := NewExact(rule)
		flat.Begin(flatParams)
		for c := 0; c < k; c++ {
			flat.FoldClient(c, updates[c], weights[c])
		}
		flat.Commit(flatParams)

		topo := Topology{K: k, Shards: shards}
		edges := make([]*ExactAggregator, shards)
		for s := range edges {
			edges[s], _ = NewExact(rule)
			edges[s].Begin(tensor.CloneAll(params))
		}
		for c := 0; c < k; c++ {
			edges[topo.ShardOf(c)].FoldClient(c, updates[c], weights[c])
		}
		rootParams := tensor.CloneAll(params)
		root, _ := NewExact(rule)
		root.Begin(rootParams)
		for _, e := range edges {
			p, err := PartialFromWire(e.TakePartial().Wire())
			if err != nil {
				t.Fatalf("rule %s: %v", rule, err)
			}
			if err := root.FoldPartial(p); err != nil {
				t.Fatalf("rule %s: %v", rule, err)
			}
		}
		if root.Count() != k {
			t.Fatalf("rule %s: root counts %d clients, want %d", rule, root.Count(), k)
		}
		root.Commit(rootParams)
		if !sameBits(rootParams, flatParams) {
			t.Fatalf("rule %s: wire-composed root differs from flat fold", rule)
		}
	}
}

func TestFoldPartialRejectsMismatches(t *testing.T) {
	params := []*tensor.Tensor{tensor.New(4)}
	root, _ := NewExact(AggFedSGD)
	root.Begin(params)

	other, _ := NewExact(AggFedAvg)
	other.Begin(params)
	if err := root.FoldPartial(other.TakePartial()); err == nil {
		t.Fatal("rule mismatch accepted")
	}
	wrongGeom, _ := NewExact(AggFedSGD)
	wrongGeom.Begin([]*tensor.Tensor{tensor.New(5)})
	if err := root.FoldPartial(wrongGeom.TakePartial()); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestEdgeFoldNeverCommits(t *testing.T) {
	params := onesUpdate([]int{4}, 7)
	inner, _ := NewExact(AggFedSGD)
	edge := EdgeFold(inner)
	edge.Begin(params)
	edge.Fold(onesUpdate([]int{4}, 100))
	edge.Commit(params)
	for _, v := range params[0].Data() {
		if v != 7 {
			t.Fatal("edge fold mutated params at Commit")
		}
	}
	if inner.Count() != 1 {
		t.Fatalf("edge fold lost the update: count %d", inner.Count())
	}
	if p := inner.TakePartial(); p.Clients != 1 {
		t.Fatalf("partial clients %d, want 1", p.Clients)
	}
}

func TestExactAggregatorReusedAcrossRounds(t *testing.T) {
	params := []*tensor.Tensor{tensor.New(4)}
	agg, _ := NewExact(AggFedSGD)
	agg.Begin(params)
	agg.Fold(onesUpdate([]int{4}, 100))
	agg.Commit(params)
	agg.Begin(params)
	agg.Fold(onesUpdate([]int{4}, 1))
	agg.Commit(params)
	for _, v := range params[0].Data() {
		if v != 101 {
			t.Fatalf("got %v, want 101 — stale exact accumulator state", v)
		}
	}
}

func TestNewAggregatorForSelectsImplementation(t *testing.T) {
	if a, err := NewAggregatorFor(AggFedSGD, 0, 0, 8); err != nil {
		t.Fatal(err)
	} else if _, ok := a.(*FedSGDAggregator); !ok {
		t.Fatalf("shards=0 gave %T, want legacy fold", a)
	}
	if a, err := NewAggregatorFor(AggWeighted, 1, 0, 8); err != nil {
		t.Fatal(err)
	} else if _, ok := a.(*ExactAggregator); !ok {
		t.Fatalf("shards=1 gave %T, want flat exact fold", a)
	}
	if a, err := NewAggregatorFor(AggFedAvg, 4, 2, 8); err != nil {
		t.Fatal(err)
	} else if _, ok := a.(*TreeAggregator); !ok {
		t.Fatalf("shards=4 gave %T, want tree fold", a)
	}
	if _, err := NewAggregatorFor("median", 1, 0, 8); err == nil {
		t.Fatal("unknown rule accepted")
	}
}
