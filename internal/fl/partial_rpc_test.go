package fl

import (
	"testing"
	"time"

	"fedcdp/internal/tensor"
)

// An edge that loses the root's ack re-sends its partial. The root's
// client-id dedup (the shard index rides in ClientID) must fold the
// shard's clients exactly once and acknowledge the re-send as a duplicate
// that consumes no session slot.
func TestSendPartialDuplicateDeduped(t *testing.T) {
	g := tensor.NewRNG(5)
	params, updates, weights := randomRound(g, 4)
	cfg := RoundConfig{BatchSize: 1, LocalIters: 1, LR: 0.1, TotalRounds: 1}

	// Two edges: shard 0 folds clients 0-1, shard 1 folds clients 2-3.
	mkPartial := func(shard int, clients []int) *Partial {
		edge, err := NewExact(AggWeighted)
		if err != nil {
			t.Fatal(err)
		}
		edge.Begin(tensor.CloneAll(params))
		for _, c := range clients {
			edge.FoldClient(c, updates[c], weights[c])
		}
		return edge.TakePartial()
	}
	p0 := mkPartial(0, []int{0, 1})
	p1 := mkPartial(1, []int{2, 3})

	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	root, err := NewExact(AggWeighted)
	if err != nil {
		t.Fatal(err)
	}

	rootParams := tensor.CloneAll(params)
	type outcome struct {
		res RoundResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, rerr := srv.StreamRound(0, rootParams, cfg, root, RoundOptions{
			Clients: 2, Deadline: time.Hour, MinQuorum: 1, QuorumCount: root.Count,
		})
		done <- outcome{res, rerr}
	}()

	opt := ClientOptions{}
	if err := SendPartial(srv.Addr(), 0, 0, p0, opt); err != nil {
		t.Fatal(err)
	}
	// The re-send: same shard id, same payload — must be acked as a
	// duplicate while the round is still waiting on shard 1.
	if err := SendPartial(srv.Addr(), 0, 0, p0, opt); err != nil {
		t.Fatalf("duplicate partial not acknowledged: %v", err)
	}
	if err := SendPartial(srv.Addr(), 1, 0, p1, opt); err != nil {
		t.Fatal(err)
	}
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Folded != 2 || o.res.Duplicates != 1 || !o.res.Committed {
		t.Fatalf("round result %+v, want 2 folded, 1 duplicate, committed", o.res)
	}
	if got := root.Count(); got != 4 {
		t.Fatalf("root folded %d clients, want 4 (duplicate partial double-counted?)", got)
	}

	// The deduped tree commit must equal the flat exact fold of all four
	// clients.
	flat, err := NewExact(AggWeighted)
	if err != nil {
		t.Fatal(err)
	}
	flatParams := tensor.CloneAll(params)
	flat.Begin(flatParams)
	for c := 0; c < 4; c++ {
		flat.FoldClient(c, updates[c], weights[c])
	}
	flat.Commit(flatParams)
	if !sameBits(rootParams, flatParams) {
		t.Fatal("deduped tree commit differs from flat exact fold")
	}
}
