package fl

import "fedcdp/internal/tensor"

// SparseTensorWire is the sparse gob wire form of a tensor: its shape
// plus the flat positions and values of the nonzero entries. DSSGD and
// top-k-compressed strategies zero all but a small fraction of the
// update before sharing; shipping only the surviving coordinates cuts
// wire bytes roughly by 1/(2·density) relative to the dense encoding
// (each nonzero costs an index and a value instead of one value per
// entry). Indices may appear in any order; out-of-range indices are
// ignored on decode rather than trusted (a malformed peer must not be
// able to crash the server).
type SparseTensorWire struct {
	Shape   []int
	Indices []int32
	Values  []float64
}

// SparseFromTensors converts tensors to sparse wire form (copying data).
func SparseFromTensors(ts []*tensor.Tensor) []SparseTensorWire {
	out := make([]SparseTensorWire, len(ts))
	for i, t := range ts {
		w := SparseTensorWire{Shape: append([]int(nil), t.Shape()...)}
		for j, v := range t.Data() {
			if v != 0 {
				w.Indices = append(w.Indices, int32(j))
				w.Values = append(w.Values, v)
			}
		}
		out[i] = w
	}
	return out
}

// TensorsFromSparse converts sparse wire tensors back to dense
// *tensor.Tensor, scattering values into a zeroed tensor of the declared
// shape. Indices may arrive in any order; indices outside the tensor and
// surplus values (or indices without a paired value) are ignored.
func TensorsFromSparse(ws []SparseTensorWire) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		t := tensor.New(w.Shape...)
		data := t.Data()
		n := len(w.Indices)
		if len(w.Values) < n {
			n = len(w.Values)
		}
		for j := 0; j < n; j++ {
			if idx := int(w.Indices[j]); idx >= 0 && idx < len(data) {
				data[idx] = w.Values[j]
			}
		}
		out[i] = t
	}
	return out
}

// SparseCapable is an optional Strategy extension declaring that the
// strategy's shared updates are mostly zeros (DSSGD's selective sharing,
// the top-k compression wrapper). It is advisory — the wire layer always
// measures density per update via EncodeUpdate and never lets a
// declaration force the larger encoding; tools and tests use the marker
// to know which strategies are expected to travel sparse.
type SparseCapable interface {
	SparseUpdates() bool
}

// sparseWorthwhile reports whether the sparse encoding of ts is smaller
// than the dense one: each nonzero costs an index plus a value against
// one value per entry dense, so sparse wins below ~50% density.
func sparseWorthwhile(ts []*tensor.Tensor) bool {
	var total, nnz int
	for _, t := range ts {
		total += t.Len()
		for _, v := range t.Data() {
			if v != 0 {
				nnz++
			}
		}
	}
	return nnz*2 < total
}

// EncodeUpdate picks the smaller wire encoding for an update: exactly one
// of the returned slices is non-nil — dense TensorWire for dense updates,
// SparseTensorWire when more than half the coordinates are zero.
func EncodeUpdate(ts []*tensor.Tensor) (dense []TensorWire, sparse []SparseTensorWire) {
	if sparseWorthwhile(ts) {
		return nil, SparseFromTensors(ts)
	}
	return WireFromTensors(ts), nil
}
