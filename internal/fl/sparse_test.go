package fl

import (
	"bytes"
	"encoding/gob"
	"testing"

	"fedcdp/internal/tensor"
)

// gobRoundTrip pushes sparse wire tensors through a real gob
// encode/decode cycle, as the TCP protocol does.
func gobRoundTrip(t *testing.T, ws []SparseTensorWire) []SparseTensorWire {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ws); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var back []SparseTensorWire
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return back
}

func TestSparseWireRoundTrip(t *testing.T) {
	ts := []*tensor.Tensor{
		tensor.FromSlice([]float64{0, 1.5, 0, -2, 0, 0}, 2, 3),
		tensor.FromSlice([]float64{7}, 1),
	}
	back := TensorsFromSparse(gobRoundTrip(t, SparseFromTensors(ts)))
	for i := range ts {
		if !ts[i].Equal(back[i], 0) {
			t.Fatalf("tensor %d does not round-trip sparsely", i)
		}
	}
}

func TestSparseWireEmptyTensor(t *testing.T) {
	// An all-zero tensor becomes an empty index/value list and must come
	// back as exact zeros of the right shape.
	ts := []*tensor.Tensor{tensor.New(4, 4)}
	ws := SparseFromTensors(ts)
	if len(ws[0].Indices) != 0 || len(ws[0].Values) != 0 {
		t.Fatalf("all-zero tensor encoded %d nonzeros", len(ws[0].Indices))
	}
	back := TensorsFromSparse(gobRoundTrip(t, ws))
	if !ts[0].Equal(back[0], 0) {
		t.Fatal("empty sparse tensor does not round-trip")
	}
}

func TestSparseWireDenseTensor(t *testing.T) {
	// Fully dense data must still round-trip through the sparse encoding
	// (it is merely bigger, never wrong).
	src := tensor.New(3, 3)
	tensor.NewRNG(1).FillUniform(src, -1, 1)
	back := TensorsFromSparse(gobRoundTrip(t, SparseFromTensors([]*tensor.Tensor{src})))
	if !src.Equal(back[0], 0) {
		t.Fatal("dense-as-sparse does not round-trip")
	}
}

func TestSparseWireOutOfOrderIndices(t *testing.T) {
	w := SparseTensorWire{
		Shape:   []int{5},
		Indices: []int32{4, 0, 2},
		Values:  []float64{40, 10, 30},
	}
	back := TensorsFromSparse(gobRoundTrip(t, []SparseTensorWire{w}))
	want := []float64{10, 0, 30, 0, 40}
	for i, v := range back[0].Data() {
		if v != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestSparseWireMalformedInputTolerated(t *testing.T) {
	// Out-of-range indices and surplus values must be ignored, not crash
	// the decoder — a remote peer controls these bytes.
	w := SparseTensorWire{
		Shape:   []int{3},
		Indices: []int32{-1, 7, 1},
		Values:  []float64{99, 98, 5, 4},
	}
	back := TensorsFromSparse([]SparseTensorWire{w})
	want := []float64{0, 5, 0}
	for i, v := range back[0].Data() {
		if v != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestEncodeUpdatePicksSmallerForm(t *testing.T) {
	sparse := tensor.New(100)
	sparse.Data()[3] = 1 // 1% dense
	if d, s := EncodeUpdate([]*tensor.Tensor{sparse}); d != nil || s == nil {
		t.Fatal("mostly-zero update must choose the sparse encoding")
	}
	dense := tensor.New(100)
	dense.Fill(1)
	if d, s := EncodeUpdate([]*tensor.Tensor{dense}); d == nil || s != nil {
		t.Fatal("fully dense update must choose the dense encoding")
	}
}

func TestUpdateMsgDecodePrefersSparse(t *testing.T) {
	src := tensor.New(6)
	src.Data()[2] = 5
	msg := UpdateMsg{Sparse: SparseFromTensors([]*tensor.Tensor{src})}
	back := msg.Tensors()
	if !src.Equal(back[0], 0) {
		t.Fatal("UpdateMsg sparse payload does not decode")
	}
	msg = UpdateMsg{Delta: WireFromTensors([]*tensor.Tensor{src})}
	if !src.Equal(msg.Tensors()[0], 0) {
		t.Fatal("UpdateMsg dense payload does not decode")
	}
}

// TestSparseWireBytesShrink quantifies the win the format exists for: a
// top-k update at 1% density (DSSGD's θ_u = 0.01 setting) must gob-encode
// at least 5× smaller than its dense form — the acceptance bar of the
// streaming-runtime PR. Note gob already encodes each zero float64 in one
// byte, so the dense baseline is itself compact; see
// BenchmarkSparseWireEncoding for the dense/sparse crossover by density.
func TestSparseWireBytesShrink(t *testing.T) {
	const n = 10000
	src := tensor.New(n)
	for i := 0; i < n/100; i++ {
		src.Data()[i*100] = float64(i) + 0.5
	}
	encode := func(v any) int {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	denseB := encode(WireFromTensors([]*tensor.Tensor{src}))
	sparseB := encode(SparseFromTensors([]*tensor.Tensor{src}))
	if sparseB*5 > denseB {
		t.Fatalf("sparse %dB vs dense %dB: less than the required 5× reduction", sparseB, denseB)
	}
}
