package fl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// This file provides a real network deployment of federated rounds: a
// server that pushes global parameters to connecting clients over TCP and
// folds their updates into an Aggregator as they arrive, with a negotiated
// wire encoding — gob by default, the framed binary codec (codec.go) when
// both sides opt in — dense, sparse or quantized per update. The
// in-process simulator (Run) is the tool
// for experiments; the RPC path exists so the library can be deployed
// across processes/machines and is exercised by tests, cmd/fedserve and
// cmd/fedclient. The paper assumes the channel itself is encrypted; set
// Secure for the X25519/AES-GCM handshake — the protocol above it is
// unchanged.
//
// Protocol: connect → (handshake) → server sends ParamMsg — either the
// round announcement or an explicit refusal (Denied) when no further
// round is available — → client sends UpdateMsg (dense Delta or sparse
// Sparse encoding) → server folds it. Client sessions are handled
// concurrently: each accepted connection gets its own goroutine, and
// sessions that arrive between rounds (or find the current round full)
// wait for the next round instead of being serialized behind an accept
// loop.

// TensorWire is the dense gob wire form of a tensor.
type TensorWire struct {
	Shape []int
	Data  []float64
}

// WireFromTensors converts tensors to their wire form (copying data).
func WireFromTensors(ts []*tensor.Tensor) []TensorWire {
	out := make([]TensorWire, len(ts))
	for i, t := range ts {
		out[i] = TensorWire{
			Shape: append([]int(nil), t.Shape()...),
			Data:  append([]float64(nil), t.Data()...),
		}
	}
	return out
}

// TensorsFromWire converts wire tensors back to *tensor.Tensor.
func TensorsFromWire(ws []TensorWire) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		out[i] = tensor.FromSlice(w.Data, w.Shape...)
	}
	return out
}

// ParamMsg is the server→client round announcement — or, with Denied set,
// the protocol-level "round over" refusal sent to sessions the server can
// no longer serve, instead of leaving them hanging on a dead socket.
type ParamMsg struct {
	Round  int
	Params []TensorWire
	Cfg    RoundConfig
	Denied bool
	Reason string
}

// UpdateMsg is the client→server local update. Exactly one of Delta
// (dense), Sparse (indices + values) or Quant (scaled integer codes)
// carries the payload; sparse is chosen by the client when most
// coordinates are zero (DSSGD, top-k compression — see EncodeUpdate) and
// quantized when the client opted into lossy compression on the binary
// codec (see quant.go). Weight is the client's local example count,
// consumed by weight-aware aggregators (example-count-weighted FedAvg);
// 0 — e.g. from a client predating the field, which gob decodes as the
// zero value — is treated as weight 1 at the fold.
type UpdateMsg struct {
	ClientID int
	Round    int
	Weight   float64
	Delta    []TensorWire
	Sparse   []SparseTensorWire
	Quant    []QuantTensorWire
	// Partial is the fourth payload encoding: an edge aggregator's exact
	// partial fold, forwarded upstream in a hierarchical deployment (see
	// exact.go). ClientID then carries the edge's shard index — the
	// duplicate-session dedup applies to shards exactly as to clients.
	Partial *PartialWire
}

// Tensors decodes the update payload, whichever encoding was used.
func (m *UpdateMsg) Tensors() []*tensor.Tensor {
	switch {
	case len(m.Sparse) > 0:
		return TensorsFromSparse(m.Sparse)
	case len(m.Quant) > 0:
		return TensorsFromQuant(m.Quant)
	}
	return TensorsFromWire(m.Delta)
}

// AckMsg is the server→client receipt for an update: Accepted reports
// whether the update reached its round before the round closed. A client
// whose update missed the straggler cutoff learns it here instead of
// counting a discarded update as a success.
type AckMsg struct {
	Accepted bool
	Reason   string
}

// ErrRoundClosed is returned by remote clients whose session was refused
// because the server has no further round for them.
var ErrRoundClosed = errors.New("fl: round closed by server")

// RoundServer accepts client connections and coordinates federated rounds
// over TCP. Sessions are handled concurrently; a session that arrives
// while no round is open waits for the next one (the listen-backlog
// semantics of the original serial server, made explicit), and is sent a
// ParamMsg refusal if the server shuts down first. With Secure set
// (before the first round), every connection runs the X25519/AES-GCM
// handshake before the gob protocol.
type RoundServer struct {
	ln     net.Listener
	Secure bool
	// Codec selects the wire encoding offered to clients: CodecGob (""
	// defaults to it) runs the legacy self-describing protocol
	// byte-identically; CodecBinary opens every session with a codec hello
	// and speaks the framed binary encoding to clients that accept (gob
	// clients keep working — see codec.go). Set before the first round.
	Codec string
	// Clock drives round deadlines; nil uses the system clock (tests
	// inject fakes).
	Clock Clock

	accept   sync.Once
	mu       sync.Mutex
	cond     *sync.Cond
	cur      *roundState
	waiting  int
	closed   bool
	closedCh chan struct{}
}

// roundState is one open round: its announcement, admission quota and
// result stream. results is buffered to the full quota — at most max
// sessions are admitted-but-unresolved at any moment and each delivers at
// most once (duplicates never enter the stream) — so sends under the
// mutex never block.
type roundState struct {
	round    int
	cfg      RoundConfig
	wire     []TensorWire
	max      int
	admitted int
	cutoff   time.Time // wall-clock transport deadline; zero = none

	mu      sync.Mutex
	closed  bool
	folded  map[int]bool // client ids whose update this round already folded
	dups    int          // re-submissions acknowledged but not folded
	results chan sessionResult
}

type sessionResult struct {
	client  int
	update  []*tensor.Tensor
	weight  float64
	partial *Partial // set instead of update on edge→root sessions
	err     error
}

// deliverStatus reports how the round loop received a session's outcome.
type deliverStatus int

const (
	// deliverClosed: the round closed first; the outcome was dropped. The
	// session reports that to its client in the AckMsg, so "sent" never
	// silently diverges from "folded".
	deliverClosed deliverStatus = iota
	// deliverTaken: the outcome reached the round loop (an update will be
	// folded, an error counted).
	deliverTaken
	// deliverDup: the round already folded an update from this client; the
	// retry is acknowledged but not folded again.
	deliverDup
)

// deliver hands a session's outcome to the round loop. Delivering under
// the mutex makes the contract exact: every taken delivery lands in the
// buffer before close() returns, and the round loop drains that buffer
// once more after closing.
//
// Successful deliveries are deduplicated by client id: a client that was
// folded but never saw its ack (the conn died first) re-submits after
// reconnecting, and folding that retry would double-count its data — so
// the retry is acknowledged as already folded and not folded again (the
// regression is pinned in reconnect_test.go). A duplicate never enters
// the result stream and never consumes a completion slot: the round keeps
// waiting for its quota of DISTINCT clients, and the duplicate session's
// admission slot is released (handle() calls releaseSlot) so a client
// still waiting to join is not locked out by a retry.
func (st *roundState) deliver(res sessionResult) deliverStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return deliverClosed
	}
	if res.err == nil {
		if st.folded == nil {
			st.folded = map[int]bool{}
		}
		if st.folded[res.client] {
			st.dups++
			return deliverDup
		}
		st.folded[res.client] = true
	}
	st.results <- res
	return deliverTaken
}

// close stops further deliveries.
func (st *roundState) close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
}

// NewRoundServer listens on addr (e.g. "127.0.0.1:0") over TCP.
func NewRoundServer(addr string) (*RoundServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: listening on %s: %w", addr, err)
	}
	return NewRoundServerOn(ln), nil
}

// NewRoundServerOn runs a round server over an arbitrary transport: any
// net.Listener works — real TCP (NewRoundServer wraps this) or an
// in-memory fabric like internal/simnet, which is how an entire federated
// deployment runs deterministically inside one test process.
func NewRoundServerOn(ln net.Listener) *RoundServer {
	s := &RoundServer{ln: ln, closedCh: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// NewSecureRoundServer listens on addr with encryption enabled.
func NewSecureRoundServer(addr string) (*RoundServer, error) {
	s, err := NewRoundServer(addr)
	if err != nil {
		return nil, err
	}
	s.Secure = true
	return s, nil
}

// Addr returns the server's listen address.
func (s *RoundServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections, refuses every waiting session with
// an explicit round-over message, and aborts any round in flight.
func (s *RoundServer) Close() error {
	err := s.ln.Close()
	s.shutdown()
	return err
}

// shutdown marks the server closed and wakes every waiting session so it
// can send its refusal.
func (s *RoundServer) shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.closedCh)
	s.cond.Broadcast()
}

// acceptLoop accepts connections for the server's lifetime, one handler
// goroutine per session. Started lazily on the first round so Secure can
// be set after construction.
func (s *RoundServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.shutdown()
			return
		}
		go s.handle(conn)
	}
}

// admit blocks until the open round has a free slot (reserving it) or the
// server is closed (nil). A session that finds no open round — or a full
// one — waits for the next.
func (s *RoundServer) admit() *roundState {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waiting++
	defer func() { s.waiting-- }()
	for {
		if s.closed {
			return nil
		}
		if st := s.cur; st != nil && st.admitted < st.max {
			st.admitted++
			return st
		}
		s.cond.Wait()
	}
}

// releaseSlot returns a session's admission slot to the round — called
// when the session resolved as a duplicate, so the quota it occupied must
// go back to a distinct client still waiting in admit(). Harmless if the
// round already advanced.
func (s *RoundServer) releaseSlot(st *roundState) {
	s.mu.Lock()
	st.admitted--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// waitingSessions reports how many sessions are parked until a round
// opens (introspection; tests use it to sequence close/denial paths).
func (s *RoundServer) waitingSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting
}

// handle runs one client session end to end. The wire encoding is settled
// by newServerSession before admission: a gob server speaks the legacy
// byte stream; a binary server negotiates per connection (codec.go). One
// session object serves the whole connection (gob decoders buffer ahead,
// so a second decoder on the same stream would lose bytes).
func (s *RoundServer) handle(conn net.Conn) {
	defer conn.Close()
	var rw io.ReadWriter = conn
	if s.Secure {
		sc, err := Handshake(conn)
		if err != nil {
			return
		}
		rw = sc
	}
	sess, err := newServerSession(rw, s.Codec)
	if err != nil {
		return
	}
	st := s.admit()
	if st == nil {
		// Protocol-level "round over": late sessions get an answer, not a
		// hang or a bare RST.
		_ = sess.WriteParam(&ParamMsg{Denied: true, Reason: "no further rounds"})
		return
	}
	if !st.cutoff.IsZero() {
		// Transport safety net for deadline rounds: a client that hangs
		// after admission must not pin this goroutine and connection
		// forever. Wall-clock on purpose — it bounds I/O, not the round.
		_ = conn.SetDeadline(st.cutoff.Add(5 * time.Second))
	}
	if err := sess.WriteParam(&ParamMsg{Round: st.round, Params: st.wire, Cfg: st.cfg}); err != nil {
		st.deliver(sessionResult{err: fmt.Errorf("fl: sending params: %w", err)})
		return
	}
	var upd UpdateMsg
	if err := sess.ReadUpdate(&upd); err != nil {
		st.deliver(sessionResult{err: fmt.Errorf("fl: reading update: %w", err)})
		return
	}
	if upd.Round != st.round {
		st.deliver(sessionResult{err: fmt.Errorf("fl: client answered round %d, want %d", upd.Round, st.round)})
		_ = sess.WriteAck(&AckMsg{Reason: fmt.Sprintf("round %d is over", upd.Round)})
		return
	}
	// Hostile-input gate: the update must be structurally valid AND foldable
	// against this round's parameters before it reaches the aggregator — a
	// malformed peer gets an error, never a server panic.
	res := sessionResult{client: upd.ClientID, weight: upd.Weight}
	if upd.Partial != nil {
		// Edge→root partial fold: validated and geometry-checked exactly
		// like a client update; ClientID is the shard index, so the dedup
		// below absorbs an edge re-submitting after a lost ack.
		err := upd.Validate()
		if err == nil {
			err = partialMatchesParams(upd.Partial, st.wire)
		}
		if err == nil {
			res.partial, err = PartialFromWire(upd.Partial)
		}
		if err != nil {
			st.deliver(sessionResult{err: err})
			_ = sess.WriteAck(&AckMsg{Reason: err.Error()})
			return
		}
	} else {
		update, err := upd.DecodeTensors()
		if err == nil {
			err = updateMatchesParams(update, st.wire)
		}
		if err != nil {
			st.deliver(sessionResult{err: err})
			_ = sess.WriteAck(&AckMsg{Reason: err.Error()})
			return
		}
		res.update = update
	}
	switch st.deliver(res) {
	case deliverTaken:
		_ = sess.WriteAck(&AckMsg{Accepted: true})
	case deliverDup:
		// The client's data IS in the round (its first copy was folded), so
		// the honest receipt is an acceptance — just not a second fold. Its
		// admission slot goes back to the round: a duplicate must never
		// consume quota a distinct client is waiting for.
		s.releaseSlot(st)
		_ = sess.WriteAck(&AckMsg{Accepted: true, Reason: "duplicate update: already folded this round"})
	default:
		_ = sess.WriteAck(&AckMsg{Reason: "round closed before the update arrived"})
	}
}

// RoundOptions configures one streaming round.
type RoundOptions struct {
	// Clients is the number of client sessions admitted to the round (Kt).
	Clients int
	// Deadline is the straggler cutoff measured from the round opening.
	// Zero waits until every admitted session resolves — and any session
	// error then aborts the round, the strict barrier-era contract; with
	// a deadline set, session errors merely count as failures.
	Deadline time.Duration
	// MinQuorum is the minimum folded updates required to commit; below
	// it the round closes without applying the aggregate.
	MinQuorum int
	// QuorumCount, when set, replaces the folded-session count in the
	// MinQuorum comparison. A hierarchical root folds one session per EDGE
	// but commits on the number of CLIENTS those edges carried; passing the
	// root aggregator's Count (which sums Partial.Clients) keeps quorum
	// semantics population-level in either topology.
	QuorumCount func() int
}

// RoundResult reports what a streaming round collected.
type RoundResult struct {
	Folded int
	Failed int
	// Duplicates counts re-submissions from clients whose update was
	// already folded this round (reconnects after a lost ack); their data
	// is in the aggregate exactly once, and a duplicate never consumes a
	// slot of the round's Clients quota.
	Duplicates int
	Committed  bool
}

// StreamRound serves one federated round with O(model) server memory:
// it announces (round, params, cfg) to up to opt.Clients concurrently
// handled sessions and folds each update into agg the moment it arrives.
// On commit (quorum met) the aggregate is applied to params in place.
func (s *RoundServer) StreamRound(round int, params []*tensor.Tensor, cfg RoundConfig, agg Aggregator, opt RoundOptions) (RoundResult, error) {
	if opt.Clients <= 0 {
		return RoundResult{}, fmt.Errorf("fl: streaming round needs a positive client count, got %d", opt.Clients)
	}
	s.accept.Do(func() { go s.acceptLoop() })

	st := &roundState{
		round:   round,
		cfg:     cfg,
		wire:    WireFromTensors(params),
		max:     opt.Clients,
		results: make(chan sessionResult, opt.Clients),
	}
	if opt.Deadline > 0 {
		st.cutoff = time.Now().Add(opt.Deadline)
	}
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return RoundResult{}, fmt.Errorf("fl: server closed")
	case s.cur != nil:
		s.mu.Unlock()
		return RoundResult{}, fmt.Errorf("fl: round %d still open", s.cur.round)
	}
	s.cur = st
	s.cond.Broadcast()
	s.mu.Unlock()

	closeRound := func() {
		s.mu.Lock()
		s.cur = nil
		s.mu.Unlock()
		st.close()
	}

	agg.Begin(params)
	clock := s.Clock
	if clock == nil {
		clock = SystemClock
	}
	var deadlineC <-chan time.Time
	if opt.Deadline > 0 {
		deadlineC = clock.After(opt.Deadline)
	}

	var res RoundResult
	fold := func(r sessionResult) {
		if r.err != nil {
			res.Failed++
			return
		}
		if r.partial != nil {
			pf, ok := agg.(PartialFolder)
			if !ok {
				res.Failed++
				return
			}
			if err := pf.FoldPartial(r.partial); err != nil {
				res.Failed++
				return
			}
			res.Folded++
			return
		}
		foldClientInto(agg, r.client, r.update, r.weight)
		res.Folded++
	}
	// Duplicates are acknowledged out-of-band (roundState.deliver) and do
	// not count toward the quota: the round holds out for opt.Clients
	// DISTINCT resolutions — the premature-commit regression where a fast
	// client's re-submission consumed a slower client's slot is pinned in
	// reconnect_test.go.
collect:
	for res.Folded+res.Failed < opt.Clients {
		select {
		case r := <-st.results:
			if r.err != nil && opt.Deadline == 0 {
				closeRound()
				return res, r.err
			}
			fold(r)
		case <-deadlineC:
			// Straggler cutoff: close the round, then fold whatever was
			// already delivered (the post-close drain below).
			break collect
		case <-s.closedCh:
			closeRound()
			return res, fmt.Errorf("fl: server closed during round %d", round)
		}
	}
	closeRound()
	// Every acked delivery landed in the buffer before the round closed
	// (see roundState.deliver); fold the stragglers that made the cut.
drain:
	for {
		select {
		case r := <-st.results:
			fold(r)
		default:
			break drain
		}
	}
	st.mu.Lock()
	res.Duplicates = st.dups
	st.mu.Unlock()
	quorum := res.Folded
	if opt.QuorumCount != nil {
		quorum = opt.QuorumCount()
	}
	res.Committed = quorum >= opt.MinQuorum
	if res.Committed {
		agg.Commit(params)
	}
	return res, nil
}

// RunRound serves one federated round in the barrier-era style: it admits
// exactly kt client sessions, waits for every update, and returns the
// materialized deltas in arrival order (any session error aborts the
// round). Implemented as a StreamRound into a CollectAggregator — callers
// that can fold incrementally should use StreamRound directly and keep
// server memory O(model).
func (s *RoundServer) RunRound(round int, params []*tensor.Tensor, cfg RoundConfig, kt int) ([][]*tensor.Tensor, error) {
	agg := NewCollect()
	if _, err := s.StreamRound(round, params, cfg, agg, RoundOptions{Clients: kt}); err != nil {
		return nil, err
	}
	return agg.Updates(), nil
}

// DialFunc opens a client connection to a server address. The default is
// TCP; internal/simnet provides in-memory fabric dialers so whole
// deployments run inside one process.
type DialFunc func(addr string) (net.Conn, error)

// ClientOptions configures how a remote client reaches its server.
type ClientOptions struct {
	// Secure runs the X25519/AES-GCM handshake before the protocol (the
	// server must have been created with NewSecureRoundServer).
	Secure bool
	// Dial opens the connection; nil dials TCP.
	Dial DialFunc
	// Codec is the preferred wire encoding: CodecGob ("" defaults to it)
	// or CodecBinary. The session settles per connection — a legacy/gob
	// server gets gob regardless, so reconnecting after a server restart
	// re-negotiates transparently (see codec.go).
	Codec string
	// Quant opts the binary codec into lossy update compression at the
	// given width (QuantInt8 or QuantInt16); QuantNone ships exact
	// float64 payloads. Ignored on sessions that settle on gob — the
	// oracle codec is always exact.
	Quant int
	// QuantState carries quantization error-feedback residuals across
	// rounds; share one per client process so rounding error is repaid
	// instead of compounding. Nil quantizes without feedback.
	QuantState *QuantState
	// Adversary, when set, applies the plan's Byzantine corruption to the
	// update after local training and before it is sent — how a deployment
	// harness (core.RunSimnet) makes a simulated client hostile. Data
	// poisoning is NOT applied here: the harness hands the client a
	// poisoned shard view up front (fl.AdversaryShard), so the client
	// trains on corrupted data exactly as the in-process runtimes do.
	Adversary AdversaryPlan
	// MinRound marks rounds below it as already completed by this client
	// process. The server can re-serve a round the client finished (it
	// cannot advance until every cohort slot resolves, and the protocol
	// has no polite decline — disconnecting after admission would count
	// the client as failed), so the session participates honestly anyway:
	// local training is a pure function of (seed, round, clientID), the
	// re-submission is byte-equivalent, and the server acknowledges it as
	// a duplicate without folding. A stale round leaves QuantState
	// untouched so error-feedback residuals bank each round exactly once.
	// Callers looping over rounds should use RunRemoteClientRound to
	// learn the served round and keep MinRound at lastDone+1.
	MinRound int
	// ExpectDigest, when set, is the canonical config digest this client
	// was launched from (see internal/config): the client refuses a round
	// announcement whose RoundConfig carries a different non-empty digest,
	// so a config-driven fleet cannot silently train against a server
	// running another experiment. A server with no digest (flag-assembled)
	// is accepted — the stamp is an integrity check, not a capability.
	ExpectDigest string
}

func (o ClientOptions) dial(addr string) (net.Conn, error) {
	if o.Dial != nil {
		return o.Dial(addr)
	}
	return net.Dial("tcp", addr)
}

// RunRemoteClient connects to a round server, performs one round of local
// training with the given strategy, and sends back the update (sparse
// encoding when the update is mostly zeros). A nil return means the
// server acknowledged folding the update into its round; an update that
// missed a straggler cutoff returns an error. The error wraps
// ErrRoundClosed when the server refuses the session because no further
// round is available.
func RunRemoteClient(addr string, clientID int, strat Strategy, data *dataset.ClientData, spec nn.Spec, seed int64) error {
	return RunRemoteClientOpts(addr, clientID, strat, data, spec, seed, ClientOptions{})
}

// RunSecureRemoteClient is RunRemoteClient over the encrypted channel; the
// server must have been created with NewSecureRoundServer.
func RunSecureRemoteClient(addr string, clientID int, strat Strategy, data *dataset.ClientData, spec nn.Spec, seed int64) error {
	return RunRemoteClientOpts(addr, clientID, strat, data, spec, seed, ClientOptions{Secure: true})
}

// RunRemoteClientOpts is RunRemoteClient with explicit transport options
// (custom dialer, encryption).
func RunRemoteClientOpts(addr string, clientID int, strat Strategy, data *dataset.ClientData, spec nn.Spec, seed int64, opt ClientOptions) error {
	_, err := RunRemoteClientRound(addr, clientID, strat, data, spec, seed, opt)
	return err
}

// RunRemoteClientRound is RunRemoteClientOpts reporting which round the
// server actually served. A client looping until it has contributed N
// rounds must count DISTINCT rounds, not sessions: when this client is
// faster than the rest of the cohort the server re-serves the round it is
// still collecting, the session resolves as an acknowledged duplicate,
// and counting it would both exit the loop early and starve later rounds
// of this client (see ClientOptions.MinRound and cmd/fedclient).
func RunRemoteClientRound(addr string, clientID int, strat Strategy, data *dataset.ClientData, spec nn.Spec, seed int64, opt ClientOptions) (int, error) {
	conn, err := opt.dial(addr)
	if err != nil {
		return 0, fmt.Errorf("fl: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	var rw io.ReadWriter = conn
	if opt.Secure {
		sc, err := Handshake(conn)
		if err != nil {
			return 0, err
		}
		rw = sc
	}

	sess, err := newClientSession(rw, opt.Codec)
	if err != nil {
		return 0, err
	}
	var pm ParamMsg
	if err := sess.ReadParam(&pm); err != nil {
		return 0, fmt.Errorf("fl: reading params: %w", err)
	}
	if pm.Denied {
		return 0, fmt.Errorf("%w: %s", ErrRoundClosed, pm.Reason)
	}
	if err := pm.Validate(); err != nil {
		return 0, fmt.Errorf("fl: invalid round announcement: %w", err)
	}
	if opt.ExpectDigest != "" && pm.Cfg.ConfigDigest != "" && pm.Cfg.ConfigDigest != opt.ExpectDigest {
		return 0, fmt.Errorf("fl: server is running experiment %s, this client was configured for %s", pm.Cfg.ConfigDigest, opt.ExpectDigest)
	}
	if pm.Cfg.Scenario.Name != "" {
		// The server published a heterogeneity scenario with the round
		// config: repartition the local dataset view so this client's shard
		// matches the assignment every other participant uses. Pinned to the
		// announced round so time-varying scenarios (incremental classes,
		// decaying label noise) resolve to the same shard on every runtime.
		p, err := pm.Cfg.Scenario.Partitioner()
		if err != nil {
			return 0, err
		}
		data = data.RepartitionAt(p, pm.Round)
	}
	model := nn.Build(spec, tensor.NewRNG(0))
	model.SetParams(TensorsFromWire(pm.Params))
	model.SetPrecision(pm.Cfg.Precision)
	arena := tensor.NewArena()
	model.UseArena(arena)
	env := &ClientEnv{
		ClientID: clientID,
		Round:    pm.Round,
		Model:    model,
		Data:     data,
		RNG:      tensor.Split(seed, 4, int64(pm.Round), int64(clientID)),
		Cfg:      pm.Cfg,
		Arena:    arena,
		Noise:    clientNoiseFor(pm.Cfg, seed, pm.Round, clientID),
	}
	delta, _ := strat.ClientUpdate(env)
	if opt.Adversary != nil {
		opt.Adversary.CorruptUpdate(pm.Round, clientID, delta)
	}
	qs := opt.QuantState
	if pm.Round < opt.MinRound {
		// Re-serving a round this client already completed: submit the
		// (deterministically identical) update so the session resolves
		// honestly — the server acknowledges it as a duplicate — but do
		// not bank its quantization error a second time.
		qs = nil
	}
	if err := sess.WriteUpdateTensors(clientID, pm.Round, float64(data.Len()), delta, opt.Quant, qs); err != nil {
		return pm.Round, fmt.Errorf("fl: sending update: %w", err)
	}
	var ack AckMsg
	if err := sess.ReadAck(&ack); err != nil {
		return pm.Round, fmt.Errorf("fl: reading update receipt: %w", err)
	}
	if !ack.Accepted {
		return pm.Round, fmt.Errorf("fl: update not folded: %s", ack.Reason)
	}
	return pm.Round, nil
}

// AbandonSession connects to a round server, receives the round
// announcement, and disconnects without submitting an update — the wire
// footprint of a client that crashes mid-round (or whose update is lost in
// transit). The server observes the session error and counts the client as
// failed; fault-injection harnesses (core.RunSimnet) use this to realize a
// plan's crash and drop events at the transport level. Returns the
// announced round, or an error if no announcement arrived (e.g. the
// session was denied).
func AbandonSession(addr string, opt ClientOptions) (int, error) {
	conn, err := opt.dial(addr)
	if err != nil {
		return 0, fmt.Errorf("fl: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	var rw io.ReadWriter = conn
	if opt.Secure {
		sc, err := Handshake(conn)
		if err != nil {
			return 0, err
		}
		rw = sc
	}
	sess, err := newClientSession(rw, opt.Codec)
	if err != nil {
		return 0, err
	}
	var pm ParamMsg
	if err := sess.ReadParam(&pm); err != nil {
		return 0, fmt.Errorf("fl: reading params: %w", err)
	}
	if pm.Denied {
		return 0, fmt.Errorf("%w: %s", ErrRoundClosed, pm.Reason)
	}
	return pm.Round, nil
}

// SendPartial forwards an edge aggregator's partial fold to the root for a
// round: the edge-side half of the hierarchical protocol. shard is the
// edge's index in the tree topology (it rides in ClientID, so the root's
// duplicate dedup covers edge re-submissions); the root's announced round
// must match round, or the session resolves as an error. A nil return
// means the root acknowledged folding the partial.
func SendPartial(addr string, shard, round int, p *Partial, opt ClientOptions) error {
	conn, err := opt.dial(addr)
	if err != nil {
		return fmt.Errorf("fl: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	var rw io.ReadWriter = conn
	if opt.Secure {
		sc, err := Handshake(conn)
		if err != nil {
			return err
		}
		rw = sc
	}
	sess, err := newClientSession(rw, opt.Codec)
	if err != nil {
		return err
	}
	var pm ParamMsg
	if err := sess.ReadParam(&pm); err != nil {
		return fmt.Errorf("fl: reading params: %w", err)
	}
	if pm.Denied {
		return fmt.Errorf("%w: %s", ErrRoundClosed, pm.Reason)
	}
	if pm.Round != round {
		return fmt.Errorf("fl: root is serving round %d, partial is for %d", pm.Round, round)
	}
	if err := sess.WriteUpdate(&UpdateMsg{ClientID: shard, Round: round, Partial: p.Wire()}); err != nil {
		return fmt.Errorf("fl: sending partial: %w", err)
	}
	var ack AckMsg
	if err := sess.ReadAck(&ack); err != nil {
		return fmt.Errorf("fl: reading partial receipt: %w", err)
	}
	if !ack.Accepted {
		return fmt.Errorf("fl: partial not folded: %s", ack.Reason)
	}
	return nil
}
