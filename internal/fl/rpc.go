package fl

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// This file provides a real network deployment of one federated round: a
// server that pushes global parameters to connecting clients over TCP and
// collects their updates, with gob wire encoding. The in-process simulator
// (Run) is the tool for experiments; the RPC path exists so the library can
// be deployed across processes/machines and is exercised by tests and the
// quickstart example. The paper assumes the channel itself is encrypted;
// wrap the listener in crypto/tls for that — the protocol is unchanged.

// TensorWire is the gob wire form of a tensor.
type TensorWire struct {
	Shape []int
	Data  []float64
}

// WireFromTensors converts tensors to their wire form (copying data).
func WireFromTensors(ts []*tensor.Tensor) []TensorWire {
	out := make([]TensorWire, len(ts))
	for i, t := range ts {
		out[i] = TensorWire{
			Shape: append([]int(nil), t.Shape()...),
			Data:  append([]float64(nil), t.Data()...),
		}
	}
	return out
}

// TensorsFromWire converts wire tensors back to *tensor.Tensor.
func TensorsFromWire(ws []TensorWire) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		out[i] = tensor.FromSlice(w.Data, w.Shape...)
	}
	return out
}

// ParamMsg is the server→client round announcement.
type ParamMsg struct {
	Round  int
	Params []TensorWire
	Cfg    RoundConfig
}

// UpdateMsg is the client→server local update.
type UpdateMsg struct {
	ClientID int
	Round    int
	Delta    []TensorWire
}

// RoundServer accepts client connections and coordinates federated rounds
// over TCP. With Secure set, every connection runs the X25519/AES-GCM
// handshake before the gob protocol (the encrypted channel of the paper's
// threat model).
type RoundServer struct {
	ln     net.Listener
	Secure bool
}

// NewRoundServer listens on addr (e.g. "127.0.0.1:0").
func NewRoundServer(addr string) (*RoundServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: listening on %s: %w", addr, err)
	}
	return &RoundServer{ln: ln}, nil
}

// NewSecureRoundServer listens on addr with encryption enabled.
func NewSecureRoundServer(addr string) (*RoundServer, error) {
	s, err := NewRoundServer(addr)
	if err != nil {
		return nil, err
	}
	s.Secure = true
	return s, nil
}

// Addr returns the server's listen address.
func (s *RoundServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections.
func (s *RoundServer) Close() error { return s.ln.Close() }

// RunRound serves one federated round: it accepts exactly kt client
// connections, sends each the global parameters and round config, and
// collects their updates. Returned deltas are in arrival order.
func (s *RoundServer) RunRound(round int, params []*tensor.Tensor, cfg RoundConfig, kt int) ([][]*tensor.Tensor, error) {
	wire := WireFromTensors(params)
	deltas := make([][]*tensor.Tensor, 0, kt)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, kt)

	for i := 0; i < kt; i++ {
		conn, err := s.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("fl: accepting client %d: %w", i, err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			var rw io.ReadWriter = conn
			if s.Secure {
				sc, err := Handshake(conn)
				if err != nil {
					errs <- err
					return
				}
				rw = sc
			}
			if err := gob.NewEncoder(rw).Encode(ParamMsg{Round: round, Params: wire, Cfg: cfg}); err != nil {
				errs <- fmt.Errorf("fl: sending params: %w", err)
				return
			}
			var upd UpdateMsg
			if err := gob.NewDecoder(rw).Decode(&upd); err != nil {
				errs <- fmt.Errorf("fl: reading update: %w", err)
				return
			}
			if upd.Round != round {
				errs <- fmt.Errorf("fl: client answered round %d, want %d", upd.Round, round)
				return
			}
			mu.Lock()
			deltas = append(deltas, TensorsFromWire(upd.Delta))
			mu.Unlock()
		}(conn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return deltas, nil
}

// RunRemoteClient connects to a round server, performs one round of local
// training with the given strategy, and sends back the update.
func RunRemoteClient(addr string, clientID int, strat Strategy, data *dataset.ClientData, spec nn.Spec, seed int64) error {
	return runRemoteClient(addr, clientID, strat, data, spec, seed, false)
}

// RunSecureRemoteClient is RunRemoteClient over the encrypted channel; the
// server must have been created with NewSecureRoundServer.
func RunSecureRemoteClient(addr string, clientID int, strat Strategy, data *dataset.ClientData, spec nn.Spec, seed int64) error {
	return runRemoteClient(addr, clientID, strat, data, spec, seed, true)
}

func runRemoteClient(addr string, clientID int, strat Strategy, data *dataset.ClientData, spec nn.Spec, seed int64, secure bool) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("fl: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	var rw io.ReadWriter = conn
	if secure {
		sc, err := Handshake(conn)
		if err != nil {
			return err
		}
		rw = sc
	}

	var pm ParamMsg
	if err := gob.NewDecoder(rw).Decode(&pm); err != nil {
		return fmt.Errorf("fl: reading params: %w", err)
	}
	model := nn.Build(spec, tensor.NewRNG(0))
	model.SetParams(TensorsFromWire(pm.Params))
	arena := tensor.NewArena()
	model.UseArena(arena)
	env := &ClientEnv{
		ClientID: clientID,
		Round:    pm.Round,
		Model:    model,
		Data:     data,
		RNG:      tensor.Split(seed, 4, int64(pm.Round), int64(clientID)),
		Cfg:      pm.Cfg,
		Arena:    arena,
	}
	delta, _ := strat.ClientUpdate(env)
	msg := UpdateMsg{ClientID: clientID, Round: pm.Round, Delta: WireFromTensors(delta)}
	if err := gob.NewEncoder(rw).Encode(msg); err != nil {
		return fmt.Errorf("fl: sending update: %w", err)
	}
	return nil
}
