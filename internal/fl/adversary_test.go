package fl

import (
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/simnet"
)

// Tests for the adversarial-client axis in the in-process runtimes: a bound
// plan's Byzantine and poisoning behaviors must corrupt identically in the
// barrier and streaming runtimes (bit-for-bit parity), reproduce across
// parallelism, and actually move the committed parameters.

func adversaryConfig(t *testing.T, plan, agg string) Config {
	t.Helper()
	cfg := smallConfig(t, sgdStrategy{})
	cfg.Kt = 6
	cfg.Aggregation = agg
	if plan != "" {
		cfg.Faults = simnet.MustParsePlan(plan).MustBind(cfg.Seed, cfg.Rounds, cfg.K)
	}
	return cfg
}

func runAdversary(t *testing.T, cfg Config) *History {
	t.Helper()
	h, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func paramsEqual(t *testing.T, a, b *History, what string) {
	t.Helper()
	pa, pb := a.Final.Params(), b.Final.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i], 0) {
			t.Fatalf("%s: params diverge at tensor %d", what, i)
		}
	}
}

func TestAdversaryStreamingBarrierParity(t *testing.T) {
	// The corruption point is identical in both runtimes (after
	// ClientUpdate, before the drop coin), so attack runs must stay in
	// bit-for-bit lockstep exactly like fault runs do.
	for _, tc := range []struct{ plan, agg string }{
		{"byzantine=2:signflip", AggMedian},
		{"byzantine=2:scale:25", "trimmed:0.34"},
		{"byzantine=1:gauss:0.5", "krum:2"},
		{"poison=2:1", AggMedian},
		{"byzantine=2:signflip,drop=0.2", AggFedSGD},
	} {
		run := func(runtime string) *History {
			cfg := adversaryConfig(t, tc.plan, tc.agg)
			cfg.Runtime = runtime
			return runAdversary(t, cfg)
		}
		hs, hb := run(RuntimeStreaming), run(RuntimeBarrier)
		for i := range hs.Rounds {
			s, b := hs.Rounds[i], hb.Rounds[i]
			if s.Clients != b.Clients || s.Dropped != b.Dropped || s.Accuracy != b.Accuracy {
				t.Fatalf("%s/%s round %d diverges: streaming %+v vs barrier %+v", tc.plan, tc.agg, i, s, b)
			}
		}
		paramsEqual(t, hs, hb, tc.plan+"/"+tc.agg)
	}
}

func TestAdversaryRunReproducible(t *testing.T) {
	// Attacker identities and draws are pure functions of the plan seed:
	// the same attacked run at different parallelism is bit-identical.
	run := func(par int) *History {
		cfg := adversaryConfig(t, "byzantine=2:gauss:0.5,poison=2:0.8", AggMedian)
		cfg.Parallelism = par
		return runAdversary(t, cfg)
	}
	h1, h2 := run(1), run(8)
	for i := range h1.Rounds {
		if h1.Rounds[i].Accuracy != h2.Rounds[i].Accuracy {
			t.Fatalf("round %d accuracy differs across parallelism", i)
		}
	}
	paramsEqual(t, h1, h2, "parallelism")
}

func TestByzantineCorruptionMovesParams(t *testing.T) {
	// Under the plain mean fold a sign-flipping attacker must actually
	// change the committed parameters relative to the honest run — the
	// corruption is live, not silently skipped.
	honest := runAdversary(t, adversaryConfig(t, "", AggFedSGD))
	attacked := runAdversary(t, adversaryConfig(t, "byzantine=2:signflip", AggFedSGD))
	pa, pb := honest.Final.Params(), attacked.Final.Params()
	same := true
	for i := range pa {
		if !pa[i].Equal(pb[i], 0) {
			same = false
		}
	}
	if same {
		t.Fatal("byzantine=2:signflip left the FedSGD commit untouched")
	}
}

func TestPoisonedShardFlipsLabels(t *testing.T) {
	// AdversaryShard hands a poisoned client a flipped-label view of its
	// own shard — deterministically, surviving Repartition — and leaves
	// honest clients' shards untouched.
	plan := simnet.MustParsePlan("poison=3:1").MustBind(7, 2, 10)
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 7)
	poisoned := 0
	for id := 0; id < 10; id++ {
		base, adv := ds.Client(id), AdversaryShard(plan, id, ds.Client(id))
		flipped := 0
		for i := 0; i < base.Len(); i++ {
			_, y0 := base.Get(i)
			_, y1 := adv.Get(i)
			if y0 != y1 {
				flipped++
			}
			_, y2 := adv.Get(i)
			if y1 != y2 {
				t.Fatalf("client %d example %d label not deterministic", id, i)
			}
		}
		if plan.PoisonedClient(id) {
			poisoned++
			if flipped != base.Len() {
				t.Fatalf("poisoned client %d at rate 1 flipped %d/%d labels", id, flipped, base.Len())
			}
		} else if flipped != 0 {
			t.Fatalf("honest client %d had %d labels flipped", id, flipped)
		}
	}
	if poisoned != 3 {
		t.Fatalf("%d poisoned clients, want 3", poisoned)
	}
}

func TestZeroAttackersIsHonestRun(t *testing.T) {
	// A plan with only benign clauses must not perturb training: the
	// adversary hooks are no-ops when nobody is an attacker.
	honest := runAdversary(t, adversaryConfig(t, "", AggFedSGD))
	planned := runAdversary(t, adversaryConfig(t, "latency=1ms", AggFedSGD))
	paramsEqual(t, honest, planned, "benign plan")
}
