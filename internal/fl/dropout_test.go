package fl

import (
	"testing"

	"fedcdp/internal/tensor"
)

func TestDropoutReducesCohort(t *testing.T) {
	cfg := smallConfig(t, sgdStrategy{})
	cfg.K, cfg.Kt = 10, 10
	cfg.DropoutRate = 0.5
	hist, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawDrop := false
	for _, r := range hist.Rounds {
		if r.Clients < 10 {
			sawDrop = true
		}
		if r.Clients > 10 {
			t.Fatalf("round %d has %d clients, cap is 10", r.Round, r.Clients)
		}
	}
	if !sawDrop {
		t.Fatal("dropout 0.5 never removed a client across 3 rounds of 10")
	}
}

func TestDropoutZeroKeepsAll(t *testing.T) {
	cfg := smallConfig(t, sgdStrategy{})
	cfg.DropoutRate = 0
	hist, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if r.Clients != cfg.Kt {
			t.Fatalf("round %d lost clients without dropout", r.Round)
		}
	}
}

func TestDropoutFullStillRuns(t *testing.T) {
	// Every client dropping leaves the model unchanged but must not crash.
	cfg := smallConfig(t, sgdStrategy{})
	cfg.DropoutRate = 1
	hist, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if r.Clients != 0 {
			t.Fatalf("dropout=1 round %d still had %d clients", r.Round, r.Clients)
		}
	}
}

func TestDropoutDeterministic(t *testing.T) {
	run := func() *History {
		cfg := smallConfig(t, sgdStrategy{})
		cfg.DropoutRate = 0.3
		h, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := run(), run()
	for i := range h1.Rounds {
		if h1.Rounds[i].Clients != h2.Rounds[i].Clients {
			t.Fatal("dropout must be deterministic per seed")
		}
	}
	p1, p2 := h1.Final.Params(), h2.Final.Params()
	for i := range p1 {
		if !p1[i].Equal(p2[i], 0) {
			t.Fatal("dropout runs must be reproducible")
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	cfg := smallConfig(t, sgdStrategy{})
	cfg.DropoutRate = 1.5
	if _, err := Run(cfg); err == nil {
		t.Fatal("dropout > 1 must be rejected")
	}
	cfg.DropoutRate = -0.1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative dropout must be rejected")
	}
}

func TestStartRoundValidation(t *testing.T) {
	cfg := smallConfig(t, sgdStrategy{})
	cfg.StartRound = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative start round must be rejected")
	}
}

func TestStartRoundOffsetsHistory(t *testing.T) {
	cfg := smallConfig(t, sgdStrategy{})
	cfg.StartRound = 5
	hist, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Rounds[0].Round != 5 {
		t.Fatalf("first round = %d, want 5", hist.Rounds[0].Round)
	}
	if !hist.Rounds[len(hist.Rounds)-1].Evaluated {
		t.Fatal("final round of an offset run must still be evaluated")
	}
}

// TestDropClientsZeroAlloc pins the hot-path contract: the per-round
// dropout sweep reseeds one long-lived coin instead of deriving a fresh
// Split child per cohort member, so steady-state round setup allocates
// nothing per client.
func TestDropClientsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	cfg := Config{Seed: 42, DropoutRate: 0.3}
	cohort := make([]int, 1000)
	scratch := make([]int, 1000)
	for i := range cohort {
		cohort[i] = i
	}
	coin := tensor.NewRNG(0)
	allocs := testing.AllocsPerRun(20, func() {
		copy(scratch, cohort)
		dropClients(cfg, 3, scratch, coin)
	})
	if allocs != 0 {
		t.Fatalf("dropClients allocates %.1f objects/op at steady state, want 0", allocs)
	}
}

// TestDropClientsReseededCoinMatchesSplit pins that the reused coin draws
// the exact stream the original per-client Split children drew, so every
// pre-existing seeded golden keeps its survivor sets.
func TestDropClientsReseededCoinMatchesSplit(t *testing.T) {
	cfg := Config{Seed: 99, DropoutRate: 0.4}
	cohort := []int{3, 1, 4, 1, 5, 9, 2, 6}
	got := dropClients(cfg, 7, append([]int(nil), cohort...), tensor.NewRNG(0))
	var want []int
	for _, id := range cohort {
		if tensor.Split(cfg.Seed, 5, 7, int64(id)).Float64() >= cfg.DropoutRate {
			want = append(want, id)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("survivors %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("survivors %v, want %v", got, want)
		}
	}
}
