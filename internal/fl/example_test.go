package fl_test

import (
	"fmt"

	"fedcdp/internal/fl"
	"fedcdp/internal/tensor"
)

// Example-count-weighted FedAvg: a client holding 300 examples pulls the
// global model three times harder than one holding 100. With W = [1 1],
// client A (weight 100) proposing ΔW = +1 and client B (weight 300)
// proposing ΔW = 0, the commit is W ← (100·(W+1) + 300·W) / 400 = W + 0.25.
func ExampleWeightedFedAvgAggregator() {
	params := []*tensor.Tensor{tensor.FromSlice([]float64{1, 1}, 2)}

	agg := fl.NewWeightedFedAvg()
	agg.Begin(params)
	agg.FoldWeighted([]*tensor.Tensor{tensor.FromSlice([]float64{1, 1}, 2)}, 100)
	agg.FoldWeighted([]*tensor.Tensor{tensor.FromSlice([]float64{0, 0}, 2)}, 300)
	agg.Commit(params)

	fmt.Printf("folded %d updates -> %.2f\n", agg.Count(), params[0].Data())
	// Output: folded 2 updates -> [1.25 1.25]
}

// An unweighted Fold counts as weight 1, so the weighted aggregator is a
// drop-in Aggregator for runtimes that do not carry weights.
func ExampleWeightedFedAvgAggregator_fold() {
	params := []*tensor.Tensor{tensor.FromSlice([]float64{0}, 1)}

	var agg fl.Aggregator = fl.NewWeightedFedAvg()
	agg.Begin(params)
	agg.Fold([]*tensor.Tensor{tensor.FromSlice([]float64{2}, 1)})
	agg.Fold([]*tensor.Tensor{tensor.FromSlice([]float64{4}, 1)})
	agg.Commit(params)

	fmt.Printf("%.0f\n", params[0].Data())
	// Output: [3]
}
