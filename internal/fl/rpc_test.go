package fl

import (
	"sync"
	"testing"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

func TestTensorWireRoundTrip(t *testing.T) {
	ts := []*tensor.Tensor{
		tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2),
		tensor.FromSlice([]float64{5}, 1),
	}
	back := TensorsFromWire(WireFromTensors(ts))
	for i := range ts {
		if !ts[i].Equal(back[i], 0) {
			t.Fatalf("tensor %d does not round-trip", i)
		}
	}
	// Wire form must be a copy.
	w := WireFromTensors(ts)
	w[0].Data[0] = 99
	if ts[0].At(0, 0) == 99 {
		t.Fatal("WireFromTensors must copy data")
	}
}

func TestRPCRoundOverLoopback(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 42)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	cfg := RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 1}

	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const kt = 3
	var wg sync.WaitGroup
	clientErrs := make([]error, kt)
	for i := 0; i < kt; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			clientErrs[id] = RunRemoteClient(srv.Addr(), id, sgdStrategy{}, ds.Client(id), spec.ModelSpec(), 42)
		}(i)
	}

	deltas, err := srv.RunRound(0, model.Params(), cfg, kt)
	wg.Wait()
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	for i, cerr := range clientErrs {
		if cerr != nil {
			t.Fatalf("client %d: %v", i, cerr)
		}
	}
	if len(deltas) != kt {
		t.Fatalf("collected %d updates, want %d", len(deltas), kt)
	}
	for i, d := range deltas {
		if len(d) != len(model.Params()) {
			t.Fatalf("update %d has %d tensors, want %d", i, len(d), len(model.Params()))
		}
		if tensor.GroupL2Norm(d) == 0 {
			t.Fatalf("update %d is zero — no training happened", i)
		}
	}
	// Aggregation over RPC-collected updates works like the simulator's.
	before := tensor.CloneAll(model.Params())
	AggregateFedSGD(model.Params(), deltas)
	moved := false
	for i, p := range model.Params() {
		if !p.Equal(before[i], 0) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("aggregated model did not move")
	}
}

func TestRPCRemoteMatchesLocal(t *testing.T) {
	// The same client seed and strategy must produce identical updates
	// locally and over the wire.
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 42)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	cfg := RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 1}

	// Local.
	local := nn.Build(spec.ModelSpec(), tensor.NewRNG(0))
	local.SetParams(model.Params())
	env := &ClientEnv{
		ClientID: 0, Round: 0, Model: local, Data: ds.Client(0),
		RNG: tensor.Split(42, 4, 0, 0), Cfg: cfg,
	}
	wantDelta, _ := sgdStrategy{}.ClientUpdate(env)

	// Remote.
	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 1)
	go func() {
		done <- RunRemoteClient(srv.Addr(), 0, sgdStrategy{}, ds.Client(0), spec.ModelSpec(), 42)
	}()
	deltas, err := srv.RunRound(0, model.Params(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cerr := <-done; cerr != nil {
		t.Fatal(cerr)
	}
	for i := range wantDelta {
		if !wantDelta[i].Equal(deltas[0][i], 1e-12) {
			t.Fatalf("remote update tensor %d differs from local", i)
		}
	}
}

func TestRoundServerBadAddr(t *testing.T) {
	if _, err := NewRoundServer("256.256.256.256:99999"); err == nil {
		t.Fatal("expected error for invalid address")
	}
}

func TestRemoteClientBadAddr(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 1)
	err := RunRemoteClient("127.0.0.1:1", 0, sgdStrategy{}, ds.Client(0), spec.ModelSpec(), 1)
	if err == nil {
		t.Fatal("expected error dialing closed port")
	}
}
