package fl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sync"

	"fedcdp/internal/dataset"
	"fedcdp/internal/tensor"
)

// Binary wire codec. The gob protocol (rpc.go) is self-describing and
// reflection-driven: every session re-transmits type descriptors, and every
// float64 costs up to 9 bytes plus per-field overhead. This file adds a
// versioned, length-prefixed binary framing with raw little-endian float
// payloads — no reflection, no per-value varint packing, bulk
// math.Float64bits loops — negotiated per connection so gob peers keep
// working unchanged and remain the parity oracle (codec_test.go pins
// bit-identical round-trips between the two).
//
// Frame layout (all integers little-endian):
//
//	magic   4 bytes  {0x00,'F','C','W'}
//	version u8       binaryVersion
//	kind    u8       hello | helloAck | param | update | ack
//	flags   u16      reserved, zero
//	length  u32      payload byte count (≤ maxFramePayload)
//	payload length bytes
//
// The magic begins with 0x00, which can never open a gob stream (gob
// prefixes every message with a nonzero uvarint byte count), so a client
// can sniff the first four bytes and fall back to gob transparently.
//
// Negotiation: a binary-configured server opens every session with a hello
// frame naming its offered codec; the client answers helloAck with its
// choice (its own configured codec), and both sides continue in the chosen
// encoding. A gob-configured server sends no hello and runs the legacy
// protocol byte-identically; a binary-preferring client that sees no magic
// falls back to gob. Negotiation is per connection, so a client
// reconnecting after a server restart re-negotiates from scratch.

// Wire codecs selectable via RoundServer.Codec, ClientOptions.Codec,
// Config.Codec and core.Config.Codec. CodecGob ("" defaults to it) is the
// legacy self-describing encoding, kept as the parity oracle; CodecBinary
// opts into the framed binary encoding above.
const (
	CodecGob    = "gob"
	CodecBinary = "binary"
)

// ValidCodec reports whether c names a known wire codec ("" means gob).
func ValidCodec(c string) bool {
	return c == "" || c == CodecGob || c == CodecBinary
}

var binaryMagic = [4]byte{0x00, 'F', 'C', 'W'}

const (
	binaryVersion  = 1
	frameHeaderLen = 12
	// maxFramePayload bounds one frame (512 MiB) — the same ceiling a
	// hostile gob length prefix already enjoys; real frames are far
	// smaller (maxWireTensors × maxWireElems is gated per tensor anyway).
	maxFramePayload = 1 << 29
	// maxWireTensors bounds the tensor count of one message section (real
	// models carry well under a hundred parameter tensors).
	maxWireTensors = 4096
)

// Frame kinds.
const (
	kindHello byte = iota + 1
	kindHelloAck
	kindParam
	kindUpdate
	kindAck
)

// Per-tensor payload encodings inside param/update frames.
const (
	encDense byte = iota
	encSparse
	encQuant8
	encQuant16
)

// Codec identifiers carried in hello/helloAck payloads.
const (
	codecIDGob    byte = 0
	codecIDBinary byte = 1
)

// frameBufPool recycles frame encode/decode buffers across sessions and
// messages — the shared scratch that keeps the binary path allocation-free
// at steady state (asserted in bench_test.go).
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// grown extends b by n bytes (contents unspecified), reallocating only when
// capacity runs out.
func grown(b []byte, n int) []byte {
	l := len(b)
	if cap(b)-l >= n {
		return b[: l+n : cap(b)]
	}
	nb := make([]byte, l+n, 2*(l+n))
	copy(nb, b)
	return nb
}

func appendU8(b []byte, v byte) []byte { return append(b, v) }

func appendU16(b []byte, v uint16) []byte {
	off := len(b)
	b = grown(b, 2)
	binary.LittleEndian.PutUint16(b[off:], v)
	return b
}

func appendU32(b []byte, v uint32) []byte {
	off := len(b)
	b = grown(b, 4)
	binary.LittleEndian.PutUint32(b[off:], v)
	return b
}

func appendI64(b []byte, v int64) []byte {
	off := len(b)
	b = grown(b, 8)
	binary.LittleEndian.PutUint64(b[off:], uint64(v))
	return b
}

func appendF64(b []byte, v float64) []byte {
	off := len(b)
	b = grown(b, 8)
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
	return b
}

// appendStr writes a u16 length prefix plus raw bytes; strings beyond the
// prefix's range (never legitimate here) are truncated.
func appendStr(b []byte, s string) []byte {
	if len(s) > 1<<16-1 {
		s = s[:1<<16-1]
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// appendF64s is the bulk payload loop: one 8-byte little-endian store per
// value into a buffer grown once.
func appendF64s(b []byte, vs []float64) []byte {
	off := len(b)
	b = grown(b, 8*len(vs))
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	return b
}

func appendI32s(b []byte, vs []int32) []byte {
	off := len(b)
	b = grown(b, 4*len(vs))
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[off:], uint32(v))
		off += 4
	}
	return b
}

// wireReader is a bounds-checked cursor over one frame payload. Every
// accessor degrades to the zero value once an overrun is recorded; the
// caller checks err after parsing. Nothing here panics on hostile input —
// FuzzBinaryDecode pins that.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("fl: truncated binary frame: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *wireReader) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *wireReader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *wireReader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *wireReader) i64() int64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(s))
}

func (r *wireReader) f64() float64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(s))
}

func (r *wireReader) str() string {
	n := int(r.u16())
	s := r.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// done rejects trailing bytes: a frame must be consumed exactly.
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("fl: %d trailing bytes after binary frame payload", len(r.b)-r.off)
	}
	return nil
}

// --- Tensor sections -------------------------------------------------------

// appendTensorHeader writes one tensor's geometry: encoding, rank, dims.
func appendTensorHeader(b []byte, enc byte, shape []int) []byte {
	b = appendU8(b, enc)
	b = appendU8(b, byte(len(shape)))
	for _, d := range shape {
		b = appendI64(b, int64(d))
	}
	return b
}

// appendDenseSection writes a dense-only tensor section (param frames).
func appendDenseSection(b []byte, ws []TensorWire) []byte {
	b = appendI64(b, int64(len(ws)))
	for _, w := range ws {
		b = appendTensorHeader(b, encDense, w.Shape)
		b = appendF64s(b, w.Data)
	}
	return b
}

// appendUpdateSection writes an update's tensor section from its wire forms
// (whichever of dense/sparse/quantized the message carries).
func appendUpdateSection(b []byte, m *UpdateMsg) []byte {
	b = appendI64(b, int64(len(m.Delta)+len(m.Sparse)+len(m.Quant)))
	for _, w := range m.Delta {
		b = appendTensorHeader(b, encDense, w.Shape)
		b = appendF64s(b, w.Data)
	}
	for _, w := range m.Sparse {
		b = appendTensorHeader(b, encSparse, w.Shape)
		b = appendI64(b, int64(len(w.Indices)))
		b = appendI32s(b, w.Indices)
		b = appendF64s(b, w.Values)
	}
	for _, w := range m.Quant {
		b = appendQuantTensor(b, w)
	}
	return b
}

func appendQuantTensor(b []byte, w QuantTensorWire) []byte {
	enc := encQuant8
	if w.Bits == QuantInt16 {
		enc = encQuant16
	}
	b = appendTensorHeader(b, enc, w.Shape)
	b = appendF64(b, w.Scale)
	if w.Bits == QuantInt16 {
		off := len(b)
		b = grown(b, 2*len(w.Q))
		for _, q := range w.Q {
			binary.LittleEndian.PutUint16(b[off:], uint16(q))
			off += 2
		}
		return b
	}
	off := len(b)
	b = grown(b, len(w.Q))
	for _, q := range w.Q {
		b[off] = byte(int8(q))
		off++
	}
	return b
}

// appendDirectTensors writes an update section straight from dense in-memory
// tensors with no intermediate wire structs: the dense-vs-sparse decision is
// EncodeUpdate's (sparse below 50% density), the sparse entries are counted
// and streamed in two passes over the raw data, and a requested quantization
// width routes through QuantizeUpdate (the one transform that must
// materialize, for its error-feedback residuals).
func appendDirectTensors(b []byte, ts []*tensor.Tensor, quant int, st *QuantState) []byte {
	if quant != QuantNone {
		return appendUpdateSection(b, &UpdateMsg{Quant: QuantizeUpdate(ts, quant, st)})
	}
	b = appendI64(b, int64(len(ts)))
	if sparseWorthwhile(ts) {
		for _, t := range ts {
			data := t.Data()
			nnz := 0
			for _, v := range data {
				if v != 0 {
					nnz++
				}
			}
			b = appendTensorHeader(b, encSparse, t.Shape())
			b = appendI64(b, int64(nnz))
			off := len(b)
			b = grown(b, 12*nnz)
			for j, v := range data {
				if v != 0 {
					binary.LittleEndian.PutUint32(b[off:], uint32(int32(j)))
					off += 4
				}
			}
			for _, v := range data {
				if v != 0 {
					binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
					off += 8
				}
			}
		}
		return b
	}
	for _, t := range ts {
		b = appendTensorHeader(b, encDense, t.Shape())
		b = appendF64s(b, t.Data())
	}
	return b
}

// readTensors parses one tensor section, sorting entries by encoding. It
// bounds every count before allocating and proves the payload bytes are
// present before converting them; semantic validation (finite values,
// index ranges) stays with the message Validate gate.
func readTensors(r *wireReader) (dense []TensorWire, sparse []SparseTensorWire, quant []QuantTensorWire, err error) {
	return readTensorsCount(r, r.i64())
}

func readTensorsCount(r *wireReader, count int64) (dense []TensorWire, sparse []SparseTensorWire, quant []QuantTensorWire, err error) {
	if r.err != nil {
		return nil, nil, nil, r.err
	}
	if count < 0 || count > maxWireTensors {
		return nil, nil, nil, fmt.Errorf("fl: binary frame declares %d tensors (cap %d)", count, maxWireTensors)
	}
	for i := int64(0); i < count; i++ {
		enc := r.u8()
		rank := int(r.u8())
		if rank > maxWireDims {
			return nil, nil, nil, fmt.Errorf("fl: binary wire tensor rank %d exceeds %d", rank, maxWireDims)
		}
		shape := make([]int, rank)
		for j := range shape {
			d := r.i64()
			if d < 0 || d > maxWireElems {
				return nil, nil, nil, fmt.Errorf("fl: binary wire dimension %d outside [0, %d]", d, maxWireElems)
			}
			shape[j] = int(d)
		}
		if r.err != nil {
			return nil, nil, nil, r.err
		}
		n, err := validShapeLen(shape)
		if err != nil {
			return nil, nil, nil, err
		}
		switch enc {
		case encDense:
			raw := r.take(8 * n)
			if r.err != nil {
				return nil, nil, nil, r.err
			}
			data := make([]float64, n)
			for j := range data {
				data[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:]))
			}
			dense = append(dense, TensorWire{Shape: shape, Data: data})
		case encSparse:
			nnz64 := r.i64()
			if r.err != nil {
				return nil, nil, nil, r.err
			}
			if nnz64 < 0 || nnz64 > int64(n) {
				return nil, nil, nil, fmt.Errorf("fl: binary sparse tensor declares %d entries for %d elements", nnz64, n)
			}
			nnz := int(nnz64)
			rawIdx := r.take(4 * nnz)
			rawVal := r.take(8 * nnz)
			if r.err != nil {
				return nil, nil, nil, r.err
			}
			w := SparseTensorWire{
				Shape:   shape,
				Indices: make([]int32, nnz),
				Values:  make([]float64, nnz),
			}
			for j := 0; j < nnz; j++ {
				w.Indices[j] = int32(binary.LittleEndian.Uint32(rawIdx[4*j:]))
				w.Values[j] = math.Float64frombits(binary.LittleEndian.Uint64(rawVal[8*j:]))
			}
			sparse = append(sparse, w)
		case encQuant8, encQuant16:
			scale := r.f64()
			w := QuantTensorWire{Shape: shape, Bits: QuantInt8, Scale: scale}
			if enc == encQuant16 {
				w.Bits = QuantInt16
				raw := r.take(2 * n)
				if r.err != nil {
					return nil, nil, nil, r.err
				}
				w.Q = make([]int16, n)
				for j := range w.Q {
					w.Q[j] = int16(binary.LittleEndian.Uint16(raw[2*j:]))
				}
			} else {
				raw := r.take(n)
				if r.err != nil {
					return nil, nil, nil, r.err
				}
				w.Q = make([]int16, n)
				for j := range w.Q {
					w.Q[j] = int16(int8(raw[j]))
				}
			}
			quant = append(quant, w)
		default:
			return nil, nil, nil, fmt.Errorf("fl: unknown binary tensor encoding %d", enc)
		}
	}
	return dense, sparse, quant, nil
}

// --- Message payloads ------------------------------------------------------

func appendParamPayload(b []byte, m *ParamMsg) []byte {
	b = appendI64(b, int64(m.Round))
	if m.Denied {
		b = appendU8(b, 1)
	} else {
		b = appendU8(b, 0)
	}
	b = appendStr(b, m.Reason)
	b = appendI64(b, int64(m.Cfg.BatchSize))
	b = appendI64(b, int64(m.Cfg.LocalIters))
	b = appendF64(b, m.Cfg.LR)
	b = appendI64(b, int64(m.Cfg.TotalRounds))
	b = appendStr(b, m.Cfg.Scenario.Name)
	b = appendF64(b, m.Cfg.Scenario.Alpha)
	b = appendI64(b, int64(m.Cfg.Scenario.Shards))
	b = appendI64(b, int64(m.Cfg.Scenario.Period))
	b = appendStr(b, m.Cfg.Engine)
	b = appendStr(b, m.Cfg.NoiseEngine)
	b = appendStr(b, m.Cfg.Precision)
	b = appendStr(b, m.Cfg.ConfigDigest)
	return appendDenseSection(b, m.Params)
}

func parseParamPayload(b []byte, m *ParamMsg) error {
	r := wireReader{b: b}
	*m = ParamMsg{
		Round:  int(r.i64()),
		Denied: r.u8() != 0,
		Reason: r.str(),
		Cfg: RoundConfig{
			BatchSize:   int(r.i64()),
			LocalIters:  int(r.i64()),
			LR:          r.f64(),
			TotalRounds: int(r.i64()),
			Scenario: dataset.Scenario{
				Name:   r.str(),
				Alpha:  r.f64(),
				Shards: int(r.i64()),
				Period: int(r.i64()),
			},
			Engine:       r.str(),
			NoiseEngine:  r.str(),
			Precision:    r.str(),
			ConfigDigest: r.str(),
		},
	}
	dense, sparse, quant, err := readTensors(&r)
	if err != nil {
		return err
	}
	if len(sparse) > 0 || len(quant) > 0 {
		return fmt.Errorf("fl: round announcement parameters must be dense")
	}
	m.Params = dense
	return r.done()
}

// partialSentinel marks an update frame whose payload is an edge's exact
// partial fold instead of a tensor section. Every pre-partial frame starts
// its section with a non-negative tensor count, so the sentinel is
// unambiguous and leaves all existing frames byte-identical.
const partialSentinel int64 = -1

func appendUpdatePayload(b []byte, m *UpdateMsg) []byte {
	b = appendI64(b, int64(m.ClientID))
	b = appendI64(b, int64(m.Round))
	b = appendF64(b, m.Weight)
	if m.Partial != nil {
		b = appendI64(b, partialSentinel)
		return appendPartial(b, m.Partial)
	}
	return appendUpdateSection(b, m)
}

// appendExactScalar writes one exact accumulator element: spec, sign,
// exponent, and the length-prefixed big-endian mantissa.
func appendExactScalar(b []byte, w ExactScalarWire) []byte {
	b = appendU8(b, w.Spec)
	if w.Neg {
		b = appendU8(b, 1)
	} else {
		b = appendU8(b, 0)
	}
	b = appendI64(b, w.Exp)
	b = appendU32(b, uint32(len(w.Mant)))
	return append(b, w.Mant...)
}

func parseExactScalar(r *wireReader) ExactScalarWire {
	w := ExactScalarWire{Spec: r.u8(), Neg: r.u8() != 0, Exp: r.i64()}
	n := r.u32()
	if n > exactMantBytes {
		r.fail("fl: exact mantissa of %d bytes exceeds %d", n, exactMantBytes)
		return w
	}
	if raw := r.take(int(n)); raw != nil {
		w.Mant = append([]byte(nil), raw...)
	}
	return w
}

// appendPartial writes an edge partial: rule, client count, optional
// weight sum, then the exact-sum tensors (rank, dims, per-element scalars).
func appendPartial(b []byte, p *PartialWire) []byte {
	b = appendStr(b, p.Rule)
	b = appendI64(b, int64(p.Clients))
	if p.HasWSum {
		b = appendU8(b, 1)
		b = appendExactScalar(b, p.WSum)
	} else {
		b = appendU8(b, 0)
	}
	b = appendI64(b, int64(len(p.Sums)))
	for _, t := range p.Sums {
		b = appendU8(b, byte(len(t.Shape)))
		for _, d := range t.Shape {
			b = appendI64(b, int64(d))
		}
		for _, e := range t.Elems {
			b = appendExactScalar(b, e)
		}
	}
	return b
}

// parsePartial is appendPartial's bounds-checked inverse; semantic
// validation (rule, counts, scalar envelope) stays with PartialWire.Validate.
func parsePartial(r *wireReader) (*PartialWire, error) {
	p := &PartialWire{Rule: r.str(), Clients: int(r.i64())}
	if r.u8() != 0 {
		p.HasWSum = true
		p.WSum = parseExactScalar(r)
	}
	count := r.i64()
	if r.err != nil {
		return nil, r.err
	}
	if count < 0 || count > maxWireTensors {
		return nil, fmt.Errorf("fl: binary partial declares %d tensors (cap %d)", count, maxWireTensors)
	}
	p.Sums = make([]ExactTensorWire, 0, count)
	for i := int64(0); i < count; i++ {
		rank := int(r.u8())
		if rank > maxWireDims {
			return nil, fmt.Errorf("fl: binary partial tensor rank %d exceeds %d", rank, maxWireDims)
		}
		shape := make([]int, rank)
		for j := range shape {
			d := r.i64()
			if d < 0 || d > maxWireElems {
				return nil, fmt.Errorf("fl: binary partial dimension %d outside [0, %d]", d, maxWireElems)
			}
			shape[j] = int(d)
		}
		if r.err != nil {
			return nil, r.err
		}
		n, err := validShapeLen(shape)
		if err != nil {
			return nil, err
		}
		elems := make([]ExactScalarWire, n)
		for j := range elems {
			elems[j] = parseExactScalar(r)
			if r.err != nil {
				return nil, r.err
			}
		}
		p.Sums = append(p.Sums, ExactTensorWire{Shape: shape, Elems: elems})
	}
	return p, r.err
}

func parseUpdatePayload(b []byte, m *UpdateMsg) error {
	r := wireReader{b: b}
	*m = UpdateMsg{
		ClientID: int(r.i64()),
		Round:    int(r.i64()),
		Weight:   r.f64(),
	}
	count := r.i64()
	if count == partialSentinel && r.err == nil {
		p, err := parsePartial(&r)
		if err != nil {
			return err
		}
		m.Partial = p
		return r.done()
	}
	var err error
	m.Delta, m.Sparse, m.Quant, err = readTensorsCount(&r, count)
	if err != nil {
		return err
	}
	return r.done()
}

func appendAckPayload(b []byte, m *AckMsg) []byte {
	if m.Accepted {
		b = appendU8(b, 1)
	} else {
		b = appendU8(b, 0)
	}
	return appendStr(b, m.Reason)
}

func parseAckPayload(b []byte, m *AckMsg) error {
	r := wireReader{b: b}
	*m = AckMsg{Accepted: r.u8() != 0, Reason: r.str()}
	return r.done()
}

// --- Sessions --------------------------------------------------------------

// wireSession is one negotiated client/server session's codec seam: the
// protocol logic in rpc.go speaks messages, the session speaks bytes.
type wireSession interface {
	// Codec names the encoding this session settled on.
	Codec() string
	WriteParam(*ParamMsg) error
	ReadParam(*ParamMsg) error
	// WriteUpdate encodes a prebuilt update message (tests, benchmarks,
	// trusted re-encoding). The client path uses WriteUpdateTensors.
	WriteUpdate(*UpdateMsg) error
	// WriteUpdateTensors encodes a client update straight from its dense
	// in-memory tensors, applying the session codec's best encoding
	// (dense/sparse by density, quantized when quant is a Quant* width and
	// the codec supports it — gob, the exact oracle, ignores quantization).
	WriteUpdateTensors(clientID, round int, weight float64, ts []*tensor.Tensor, quant int, st *QuantState) error
	ReadUpdate(*UpdateMsg) error
	WriteAck(*AckMsg) error
	ReadAck(*AckMsg) error
}

// gobSession is the legacy self-describing encoding: one encoder/decoder
// pair per session (gob decoders read ahead, so a second decoder on the
// same stream would lose bytes). Its byte stream is identical to the
// pre-codec protocol.
type gobSession struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

func newGobSession(r io.Reader, w io.Writer) *gobSession {
	return &gobSession{enc: gob.NewEncoder(w), dec: gob.NewDecoder(r)}
}

func (s *gobSession) Codec() string                  { return CodecGob }
func (s *gobSession) WriteParam(m *ParamMsg) error   { return s.enc.Encode(m) }
func (s *gobSession) ReadParam(m *ParamMsg) error    { return s.dec.Decode(m) }
func (s *gobSession) WriteUpdate(m *UpdateMsg) error { return s.enc.Encode(m) }
func (s *gobSession) ReadUpdate(m *UpdateMsg) error  { return s.dec.Decode(m) }
func (s *gobSession) WriteAck(m *AckMsg) error       { return s.enc.Encode(m) }
func (s *gobSession) ReadAck(m *AckMsg) error        { return s.dec.Decode(m) }

func (s *gobSession) WriteUpdateTensors(clientID, round int, weight float64, ts []*tensor.Tensor, quant int, st *QuantState) error {
	// Quantization is a binary-codec feature; the gob oracle ships the
	// exact float64 payload in the smaller of its two encodings.
	msg := UpdateMsg{ClientID: clientID, Round: round, Weight: weight}
	msg.Delta, msg.Sparse = EncodeUpdate(ts)
	return s.enc.Encode(&msg)
}

// binarySession speaks the framed binary encoding over rw.
type binarySession struct {
	r io.Reader
	w io.Writer
}

func (s *binarySession) Codec() string { return CodecBinary }

// beginFrame draws a pooled buffer pre-filled with the 12-byte header
// template (magic, version, kind; flags and length zero until endFrame).
func beginFrame(kind byte) *[]byte {
	bp := frameBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, binaryMagic[:]...)
	b = append(b, binaryVersion, kind, 0, 0, 0, 0, 0, 0)
	*bp = b
	return bp
}

// endFrame stamps the payload length, writes the frame in one call, and
// recycles the buffer.
func (s *binarySession) endFrame(bp *[]byte) error {
	b := *bp
	defer frameBufPool.Put(bp)
	n := len(b) - frameHeaderLen
	if n > maxFramePayload {
		return fmt.Errorf("fl: binary frame payload %d exceeds %d", n, maxFramePayload)
	}
	binary.LittleEndian.PutUint32(b[8:12], uint32(n))
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("fl: writing binary frame: %w", err)
	}
	return nil
}

// readFrame reads one frame of the wanted kind into a pooled buffer,
// returning the payload and a release function to call once parsed.
func (s *binarySession) readFrame(wantKind byte) ([]byte, func(), error) {
	var h [frameHeaderLen]byte
	if _, err := io.ReadFull(s.r, h[:]); err != nil {
		return nil, nil, fmt.Errorf("fl: reading binary frame header: %w", err)
	}
	if !bytes.Equal(h[:4], binaryMagic[:]) {
		return nil, nil, fmt.Errorf("fl: bad binary frame magic % x", h[:4])
	}
	if h[4] != binaryVersion {
		return nil, nil, fmt.Errorf("fl: unsupported binary codec version %d", h[4])
	}
	if h[5] != wantKind {
		return nil, nil, fmt.Errorf("fl: unexpected binary frame kind %d, want %d", h[5], wantKind)
	}
	n := binary.LittleEndian.Uint32(h[8:12])
	if n > maxFramePayload {
		return nil, nil, fmt.Errorf("fl: binary frame payload %d exceeds %d", n, maxFramePayload)
	}
	bp := frameBufPool.Get().(*[]byte)
	b := *bp
	if cap(b) < int(n) {
		b = make([]byte, n)
	} else {
		b = b[:n]
	}
	*bp = b
	if _, err := io.ReadFull(s.r, b); err != nil {
		frameBufPool.Put(bp)
		return nil, nil, fmt.Errorf("fl: reading binary frame payload: %w", err)
	}
	return b, func() { frameBufPool.Put(bp) }, nil
}

func (s *binarySession) WriteParam(m *ParamMsg) error {
	bp := beginFrame(kindParam)
	*bp = appendParamPayload(*bp, m)
	return s.endFrame(bp)
}

func (s *binarySession) ReadParam(m *ParamMsg) error {
	b, release, err := s.readFrame(kindParam)
	if err != nil {
		return err
	}
	defer release()
	return parseParamPayload(b, m)
}

func (s *binarySession) WriteUpdate(m *UpdateMsg) error {
	bp := beginFrame(kindUpdate)
	*bp = appendUpdatePayload(*bp, m)
	return s.endFrame(bp)
}

func (s *binarySession) WriteUpdateTensors(clientID, round int, weight float64, ts []*tensor.Tensor, quant int, st *QuantState) error {
	bp := beginFrame(kindUpdate)
	b := *bp
	b = appendI64(b, int64(clientID))
	b = appendI64(b, int64(round))
	b = appendF64(b, weight)
	*bp = appendDirectTensors(b, ts, quant, st)
	return s.endFrame(bp)
}

func (s *binarySession) ReadUpdate(m *UpdateMsg) error {
	b, release, err := s.readFrame(kindUpdate)
	if err != nil {
		return err
	}
	defer release()
	return parseUpdatePayload(b, m)
}

func (s *binarySession) WriteAck(m *AckMsg) error {
	bp := beginFrame(kindAck)
	*bp = appendAckPayload(*bp, m)
	return s.endFrame(bp)
}

func (s *binarySession) ReadAck(m *AckMsg) error {
	b, release, err := s.readFrame(kindAck)
	if err != nil {
		return err
	}
	defer release()
	return parseAckPayload(b, m)
}

// --- Negotiation -----------------------------------------------------------

// newServerSession opens the server side of one session. A gob-configured
// server speaks the legacy protocol byte-identically (no hello); a
// binary-configured server offers binary in a hello frame and settles on
// whatever the client answers.
func newServerSession(rw io.ReadWriter, codec string) (wireSession, error) {
	switch codec {
	case "", CodecGob:
		return newGobSession(rw, rw), nil
	case CodecBinary:
	default:
		return nil, fmt.Errorf("fl: unknown wire codec %q", codec)
	}
	bs := &binarySession{r: rw, w: rw}
	bp := beginFrame(kindHello)
	*bp = appendU8(*bp, codecIDBinary)
	if err := bs.endFrame(bp); err != nil {
		return nil, fmt.Errorf("fl: sending codec hello: %w", err)
	}
	payload, release, err := bs.readFrame(kindHelloAck)
	if err != nil {
		return nil, fmt.Errorf("fl: reading codec answer: %w", err)
	}
	r := wireReader{b: payload}
	chosen := r.u8()
	err = r.done()
	release()
	if err != nil {
		return nil, err
	}
	switch chosen {
	case codecIDGob:
		return newGobSession(rw, rw), nil
	case codecIDBinary:
		return bs, nil
	default:
		return nil, fmt.Errorf("fl: client chose unknown codec %d", chosen)
	}
}

// newClientSession opens the client side of one session, sniffing the first
// four bytes for the binary magic. No magic means a legacy/gob server: the
// session falls back to gob transparently regardless of preference. A hello
// is answered with the client's preferred codec; negotiation is per
// connection, so reconnecting after a server restart re-negotiates.
func newClientSession(rw io.ReadWriter, pref string) (wireSession, error) {
	if !ValidCodec(pref) {
		return nil, fmt.Errorf("fl: unknown wire codec %q", pref)
	}
	br := bufio.NewReader(rw)
	head, err := br.Peek(len(binaryMagic))
	if err != nil || !bytes.Equal(head, binaryMagic[:]) {
		// Not a binary hello (or the peek failed — the gob decode surfaces
		// the transport error exactly as the legacy path did).
		return newGobSession(br, rw), nil
	}
	bs := &binarySession{r: br, w: rw}
	payload, release, err := bs.readFrame(kindHello)
	if err != nil {
		return nil, fmt.Errorf("fl: reading codec hello: %w", err)
	}
	r := wireReader{b: payload}
	offered := r.u8()
	err = r.done()
	release()
	if err != nil {
		return nil, err
	}
	chosen := codecIDGob
	if pref == CodecBinary && offered == codecIDBinary {
		chosen = codecIDBinary
	}
	bp := beginFrame(kindHelloAck)
	*bp = appendU8(*bp, chosen)
	if err := bs.endFrame(bp); err != nil {
		return nil, fmt.Errorf("fl: answering codec hello: %w", err)
	}
	if chosen == codecIDBinary {
		return bs, nil
	}
	return newGobSession(br, rw), nil
}

// roundTripParams re-encodes parameters through the configured codec's wire
// form and back — how the in-process simulator makes a restarted server's
// recovery observable at the encoding actually deployed (Run's fault path).
func roundTripParams(codec string, params []*tensor.Tensor) []*tensor.Tensor {
	if codec != CodecBinary {
		return TensorsFromWire(WireFromTensors(params))
	}
	bp := frameBufPool.Get().(*[]byte)
	b := appendDenseSection((*bp)[:0], WireFromTensors(params))
	r := wireReader{b: b}
	dense, _, _, err := readTensors(&r)
	*bp = b
	frameBufPool.Put(bp)
	if err != nil {
		// Unreachable for in-memory parameters; fall back to the oracle.
		return TensorsFromWire(WireFromTensors(params))
	}
	return TensorsFromWire(dense)
}
