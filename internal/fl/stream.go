package fl

import (
	"time"

	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// This file implements the streaming round scheduler of the in-process
// simulator: cohort members are dispatched onto the worker pool and their
// updates are folded into the round's Aggregator the moment they arrive,
// so the server side of the simulation holds O(model) update state
// instead of materializing the whole cohort (O(Kt × model)). A per-round
// deadline turns stragglers into dropouts — the deployment failure mode
// that DropoutRate's coin flip only approximates — and a minimum quorum
// decides whether the round commits at all.

// clientResult carries one finished client's contribution back to the
// round scheduler. idx is the client's position in the cohort, which the
// deterministic fold mode uses to commit in cohort order; weight is the
// client's local example count, consumed by weight-aware aggregators.
// lost marks a contribution the fault plan destroyed (mid-round crash,
// update dropped in transit): the scheduler must still account for the
// cohort slot, but nothing is folded.
type clientResult struct {
	idx    int
	update []*tensor.Tensor
	stats  ClientStats
	weight float64
	lost   bool
}

// dispatchCohort hands every cohort member to the worker pool and streams
// results into the (fully buffered) results channel; sends never block,
// so stragglers cut off by a deadline finish quietly, release their
// worker, and have their late result ignored with the channel. Once
// cancel closes (the round is over), members not yet dispatched are
// skipped entirely — without this, a deadline round would keep training
// its abandoned tail and starve every following round's workers.
func dispatchCohort(cfg Config, cohort []int, round int, workers *workerPool, globalParams []*tensor.Tensor, results chan<- clientResult, cancel <-chan struct{}) {
	for i, id := range cohort {
		select {
		case <-cancel:
			return
		default:
		}
		w := workers.acquire()
		select {
		case <-cancel: // the round ended while waiting for a worker
			workers.release(w)
			return
		default:
		}
		go func(i, id int, w *worker) {
			defer workers.release(w)
			if cfg.Faults != nil && cfg.Faults.CrashClient(round, id) {
				// Mid-round crash: the client dies before its update (or
				// even its stats) exist. The slot still resolves so the
				// round's accounting closes.
				results <- clientResult{idx: i, lost: true}
				return
			}
			w.model.SetParams(globalParams)
			w.model.SetPrecision(cfg.Round.Precision)
			data := clientShard(cfg, round, id)
			upd, st := cfg.Strategy.ClientUpdate(w.envFor(cfg, round, id, data))
			// Client-side Byzantine corruption: applied after training,
			// before the transit-loss coin — a corrupted update can still be
			// dropped, exactly as in the barrier runtime.
			corruptUpdate(cfg, round, id, upd)
			if cfg.Faults != nil && cfg.Faults.DropUpdate(round, id) {
				// The update was computed but lost in transit.
				results <- clientResult{idx: i, lost: true}
				return
			}
			results <- clientResult{idx: i, update: upd, stats: st, weight: float64(data.Len())}
		}(i, id, w)
	}
}

// runStreamingRound executes one round on the streaming runtime and
// returns its stats (Round is filled by the caller).
func runStreamingRound(cfg Config, global *nn.Model, cohort []int, round int, workers *workerPool, serverRNG *tensor.RNG, agg Aggregator, clock Clock) RoundStats {
	params := global.Params()
	agg.Begin(params)

	rs := RoundStats{}
	folded := 0

	// commit sanitizes and folds exactly one update; in cohort-order mode
	// it runs in cohort order, which makes the whole round — including the
	// serverRNG stream consumed by reference-engine server-side
	// sanitization — bit-identical to the barrier runtime on seeded runs.
	// Under the counter noise engine the sanitize stream is keyed by the
	// update's cohort position instead, so even arrival-order folds draw
	// identical noise per update.
	commit := func(res clientResult) {
		serverSanitize(cfg, round, res.idx, res.update, serverRNG)
		foldClientInto(agg, cohort[res.idx], res.update, res.weight)
		folded++
		rs.MeanGradNorm += res.stats.MeanGradNorm
		rs.MsPerIter += res.stats.MsPerIter()
		if cfg.foldHook != nil {
			cfg.foldHook(round, folded)
		}
	}

	arrival := cfg.FoldOrder == FoldArrival
	pending := make(map[int]clientResult)
	next := 0
	// handle either commits immediately (arrival order, strictly O(model)
	// memory) or parks out-of-order results until their cohort
	// predecessors have folded (deterministic order; the reorder buffer is
	// bounded by the scheduler's out-of-orderness — in practice
	// Parallelism, in the worst case the cohort).
	handle := func(res clientResult) {
		if arrival {
			if !res.lost {
				commit(res)
			}
			return
		}
		pending[res.idx] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if !r.lost {
				commit(r)
			}
		}
	}
	// flushPending commits in-order whatever arrived before a cutoff left
	// holes in the cohort sequence (ascending index keeps it deterministic
	// given the set of survivors).
	flushPending := func() {
		for len(pending) > 0 {
			for i := next; ; i++ {
				if r, ok := pending[i]; ok {
					delete(pending, i)
					next = i + 1
					if !r.lost {
						commit(r)
					}
					break
				}
			}
		}
	}

	if len(cohort) > 0 {
		results := make(chan clientResult, len(cohort))
		cancel := make(chan struct{})
		defer close(cancel)
		go dispatchCohort(cfg, cohort, round, workers, tensor.CloneAll(params), results, cancel)

		var deadlineC <-chan time.Time
		if cfg.RoundDeadline > 0 {
			deadlineC = clock.After(cfg.RoundDeadline)
		}
		received := 0
	collect:
		for received < len(cohort) {
			select {
			case res := <-results:
				received++
				handle(res)
			case <-deadlineC:
				// Straggler cutoff: fold everything already delivered,
				// then close the round. Trainers still running write into
				// the buffered channel and are ignored.
				for {
					select {
					case res := <-results:
						received++
						handle(res)
					default:
						flushPending()
						break collect
					}
				}
			}
		}
		flushPending()
	}

	if n := float64(folded); n > 0 {
		rs.MeanGradNorm /= n
		rs.MsPerIter /= n
	}
	rs.Clients = folded
	rs.Dropped = len(cohort) - folded
	rs.Committed = folded >= cfg.MinQuorum
	if rs.Committed {
		agg.Commit(params)
	}
	return rs
}
