//go:build race

package fl

// raceEnabled reports that the race detector is active. Zero-alloc
// assertions skip under it: race instrumentation allocates shadow state,
// which is not the regression those tests exist to catch.
const raceEnabled = true
