package fl

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

// Fuzz targets for the gob wire codec: whatever bytes a peer sends, the
// decode-and-validate path must return an error or a sound value — never
// panic, never hand non-finite or mis-shaped tensors to the runtime. The
// CI sim job runs each target as a short fuzz smoke on every push; the
// accumulated corpus can be grown locally with
//
//	go test -fuzz=FuzzUpdateMsgDecode -fuzztime=60s ./internal/fl

// gobBytes encodes a value for the seed corpus.
func gobBytes(tb testing.TB, v any) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzUpdateMsgDecode(f *testing.F) {
	good := UpdateMsg{ClientID: 3, Round: 1, Weight: 5}
	good.Delta = WireFromTensors([]*tensor.Tensor{tensor.FromSlice([]float64{1, -2, 3, 4}, 2, 2)})
	sparse := UpdateMsg{ClientID: 0, Round: 0, Weight: 1}
	sparse.Sparse = SparseFromTensors([]*tensor.Tensor{tensor.FromSlice([]float64{0, 0, 7, 0}, 4)})
	hostileNaN := UpdateMsg{ClientID: 1, Round: 0, Delta: []TensorWire{{Shape: []int{1}, Data: []float64{math.NaN()}}}}
	hostileLen := UpdateMsg{ClientID: 1, Round: 0, Delta: []TensorWire{{Shape: []int{1 << 40}, Data: []float64{1}}}}
	f.Add(gobBytes(f, good))
	f.Add(gobBytes(f, sparse))
	f.Add(gobBytes(f, hostileNaN))
	f.Add(gobBytes(f, hostileLen))
	f.Add([]byte{0x03, 0xff, 0x00})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m UpdateMsg
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
			return // malformed gob is rejected at the transport layer
		}
		ts, err := m.DecodeTensors()
		if err != nil {
			return // hostile but well-formed gob is rejected by validation
		}
		// Whatever survived validation must be sound: finite values in
		// tensors whose element counts match their declared shapes.
		for i, w := range m.Delta {
			if ts[i].Len() != len(w.Data) {
				t.Fatalf("tensor %d decoded %d elements from %d wire values", i, ts[i].Len(), len(w.Data))
			}
		}
		for _, tt := range ts {
			for _, v := range tt.Data() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value %v survived validation", v)
				}
			}
		}
		// A validated message re-encodes and re-decodes to the same tensors.
		var m2 UpdateMsg
		if err := gob.NewDecoder(bytes.NewReader(gobBytes(t, m))).Decode(&m2); err != nil {
			t.Fatalf("re-decoding a validated message: %v", err)
		}
		ts2, err := m2.DecodeTensors()
		if err != nil {
			t.Fatalf("re-validating a validated message: %v", err)
		}
		for i := range ts {
			if !ts[i].Equal(ts2[i], 0) {
				t.Fatalf("tensor %d does not round-trip", i)
			}
		}
	})
}

func FuzzParamMsgDecode(f *testing.F) {
	good := ParamMsg{
		Round:  2,
		Params: WireFromTensors([]*tensor.Tensor{tensor.FromSlice([]float64{0.5, -0.5}, 2)}),
		Cfg:    RoundConfig{BatchSize: 4, LocalIters: 5, LR: 0.1, TotalRounds: 3},
	}
	denied := ParamMsg{Denied: true, Reason: "no further rounds"}
	hostile := ParamMsg{Round: 0, Params: []TensorWire{{Shape: []int{2, -3}, Data: nil}}, Cfg: RoundConfig{BatchSize: 1, LocalIters: 1, LR: 1}}
	f.Add(gobBytes(f, good))
	f.Add(gobBytes(f, denied))
	f.Add(gobBytes(f, hostile))
	f.Add([]byte{0xff, 0xfe, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m ParamMsg
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			return
		}
		if m.Denied {
			return
		}
		// A validated announcement must be installable: TensorsFromWire on
		// validated params cannot panic, and the config drives finite
		// training loops.
		ts := TensorsFromWire(m.Params)
		for i, w := range m.Params {
			if ts[i].Len() != len(w.Data) {
				t.Fatalf("param %d decoded %d elements from %d wire values", i, ts[i].Len(), len(w.Data))
			}
		}
		if m.Cfg.BatchSize <= 0 || m.Cfg.LocalIters <= 0 || !(m.Cfg.LR > 0) {
			t.Fatalf("unsane round config survived validation: %+v", m.Cfg)
		}
	})
}

// FuzzBinaryDecode drives the binary codec's frame and payload parsers
// with arbitrary bytes: whatever a peer sends, decode must return an
// error or a sound message — never panic, never allocate past the wire
// bounds. A payload that parses AND validates must re-encode and re-parse
// to bit-identical tensors (the codec is self-inverse on its own output).
func FuzzBinaryDecode(f *testing.F) {
	um := &UpdateMsg{ClientID: 3, Round: 1, Weight: 5}
	um.Delta = WireFromTensors([]*tensor.Tensor{tensor.FromSlice([]float64{1, -2, 3, 4}, 2, 2)})
	sp := &UpdateMsg{ClientID: 0, Round: 0, Weight: 1}
	sp.Sparse = SparseFromTensors([]*tensor.Tensor{tensor.FromSlice([]float64{0, 0, 7, 0}, 4)})
	q := &UpdateMsg{ClientID: 1, Round: 2, Weight: 3}
	q.Quant = QuantizeUpdate([]*tensor.Tensor{tensor.FromSlice([]float64{0.5, -1}, 2)}, QuantInt8, nil)
	pm := testParamMsg()
	f.Add(appendUpdatePayload(nil, um))
	f.Add(appendUpdatePayload(nil, sp))
	f.Add(appendUpdatePayload(nil, q))
	f.Add(appendParamPayload(nil, pm))
	f.Add(appendAckPayload(nil, &AckMsg{Accepted: true, Reason: "ok"}))
	f.Add(frameBytes(binaryVersion, kindUpdate, appendUpdatePayload(nil, um)))
	f.Add([]byte{0x00, 'F', 'C', 'W', 1, 4, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		var gotPM ParamMsg
		if parseParamPayload(data, &gotPM) == nil && gotPM.Validate() == nil && !gotPM.Denied {
			re := appendParamPayload(nil, &gotPM)
			var again ParamMsg
			if err := parseParamPayload(re, &again); err != nil {
				t.Fatalf("re-parsing a validated announcement: %v", err)
			}
			checkParamEqual(t, "fuzz param", &gotPM, &again)
		}
		var gotUM UpdateMsg
		if parseUpdatePayload(data, &gotUM) == nil && gotUM.Validate() == nil {
			re := appendUpdatePayload(nil, &gotUM)
			var again UpdateMsg
			if err := parseUpdatePayload(re, &again); err != nil {
				t.Fatalf("re-parsing a validated update: %v", err)
			}
			checkUpdateEqual(t, "fuzz update", &gotUM, &again)
		}
		var gotAck AckMsg
		_ = parseAckPayload(data, &gotAck)
		// The framed path must survive the same bytes as a whole stream.
		s := &binarySession{r: bytes.NewReader(data)}
		var m UpdateMsg
		_ = s.ReadUpdate(&m)
	})
}

func FuzzSparseWire(f *testing.F) {
	f.Add(4, []byte{0, 2}, []byte{10, 20})
	f.Add(0, []byte{}, []byte{})
	f.Add(3, []byte{0, 1, 2, 3, 4}, []byte{1})
	f.Add(2, []byte{255}, []byte{1})

	f.Fuzz(func(t *testing.T, dim int, idxBytes, valBytes []byte) {
		w := SparseTensorWire{Shape: []int{dim}}
		for _, b := range idxBytes {
			w.Indices = append(w.Indices, int32(b)-8) // some negatives too
		}
		for _, b := range valBytes {
			w.Values = append(w.Values, float64(b)-128)
		}
		if err := w.Validate(); err != nil {
			return
		}
		// Validated sparse tensors decode without panics into the declared
		// shape, and dense→sparse→dense round-trips exactly.
		// Validation rejected negative dims, so dim is the element count.
		ts := TensorsFromSparse([]SparseTensorWire{w})
		if ts[0].Len() != dim {
			t.Fatalf("decoded %d elements for shape [%d]", ts[0].Len(), dim)
		}
		back := TensorsFromSparse(SparseFromTensors(ts))
		if !ts[0].Equal(back[0], 0) {
			t.Fatal("sparse round-trip changed the tensor")
		}
	})
}
