//go:build !race

package fl

// raceEnabled reports that the race detector is active; see
// race_enabled_test.go.
const raceEnabled = false
