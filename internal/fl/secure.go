package fl

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Secure channel: the paper's threat model assumes "the message communicated
// between a client and its FL server is encrypted" (Section III) — and shows
// that gradient leakage defeats training-data privacy *despite* that
// encryption. This file provides the encrypted channel so the repository
// implements the full threat model: an ephemeral X25519 key agreement
// followed by AES-256-GCM framing over the plain gob protocol.
//
// The handshake is unauthenticated (no PKI), protecting against the passive
// network eavesdropper of the threat model; the interesting adversaries in
// this paper sit at the endpoints, where encryption cannot help — which is
// the point.

// maxSecureFrame bounds a single encrypted frame (models fit comfortably).
const maxSecureFrame = 64 << 20

// SecureConn wraps a net.Conn with AES-GCM framing after an X25519
// handshake. It implements io.ReadWriter for use with encoding/gob.
type SecureConn struct {
	conn    net.Conn
	aead    cipher.AEAD
	readBuf []byte
	sendSeq uint64
	recvSeq uint64
}

// Handshake performs the ephemeral Diffie-Hellman exchange on conn and
// returns the encrypted channel. Both peers call it (the protocol is
// symmetric: each sends its public key, then derives the shared key).
func Handshake(conn net.Conn) (*SecureConn, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("fl: generating handshake key: %w", err)
	}
	if _, err := conn.Write(priv.PublicKey().Bytes()); err != nil {
		return nil, fmt.Errorf("fl: sending public key: %w", err)
	}
	peerBytes := make([]byte, 32)
	if _, err := io.ReadFull(conn, peerBytes); err != nil {
		return nil, fmt.Errorf("fl: reading peer public key: %w", err)
	}
	peer, err := ecdh.X25519().NewPublicKey(peerBytes)
	if err != nil {
		return nil, fmt.Errorf("fl: parsing peer public key: %w", err)
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("fl: deriving shared secret: %w", err)
	}
	key := sha256.Sum256(secret)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("fl: building cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("fl: building AEAD: %w", err)
	}
	return &SecureConn{conn: conn, aead: aead}, nil
}

// Write encrypts p as one frame: [4-byte length | nonce | ciphertext].
// The nonce is the send sequence number, never reused within a session.
func (s *SecureConn) Write(p []byte) (int, error) {
	nonce := make([]byte, s.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], s.sendSeq)
	s.sendSeq++
	ct := s.aead.Seal(nil, nonce, p, nil)
	frame := make([]byte, 4+len(nonce)+len(ct))
	binary.BigEndian.PutUint32(frame, uint32(len(nonce)+len(ct)))
	copy(frame[4:], nonce)
	copy(frame[4+len(nonce):], ct)
	if _, err := s.conn.Write(frame); err != nil {
		return 0, fmt.Errorf("fl: writing encrypted frame: %w", err)
	}
	return len(p), nil
}

// Read returns plaintext bytes, reading and decrypting frames as needed.
func (s *SecureConn) Read(p []byte) (int, error) {
	if len(s.readBuf) == 0 {
		var lenBuf [4]byte
		if _, err := io.ReadFull(s.conn, lenBuf[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxSecureFrame {
			return 0, fmt.Errorf("fl: encrypted frame of %d bytes exceeds limit", n)
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(s.conn, frame); err != nil {
			return 0, fmt.Errorf("fl: reading encrypted frame: %w", err)
		}
		ns := s.aead.NonceSize()
		if int(n) < ns {
			return 0, fmt.Errorf("fl: encrypted frame too short")
		}
		// Enforce monotone nonces: a replayed or reordered frame fails here.
		wantNonce := make([]byte, ns)
		binary.BigEndian.PutUint64(wantNonce[ns-8:], s.recvSeq)
		pt, err := s.aead.Open(nil, frame[:ns], frame[ns:], nil)
		if err != nil {
			return 0, fmt.Errorf("fl: decrypting frame: %w", err)
		}
		for i := range wantNonce {
			if frame[i] != wantNonce[i] {
				return 0, fmt.Errorf("fl: unexpected frame sequence (replay?)")
			}
		}
		s.recvSeq++
		s.readBuf = pt
	}
	n := copy(p, s.readBuf)
	s.readBuf = s.readBuf[n:]
	return n, nil
}

// Close closes the underlying connection.
func (s *SecureConn) Close() error { return s.conn.Close() }
