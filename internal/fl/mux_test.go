package fl

import (
	"testing"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// The multiplexed scheduler must be a pure scheduling change: the same
// cohort served through ClientMux, at any worker count, must leave the
// server's model bit-identical to the goroutine-per-client path. The fold
// uses the exact aggregator so arrival order — the one thing scheduling
// legitimately changes — cannot leak into the comparison.
func TestClientMuxMatchesPerClientGoroutines(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 42)
	cfg := RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 1}
	const kt = 4

	run := func(t *testing.T, workers int) []*tensor.Tensor {
		t.Helper()
		model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
		srv, err := NewRoundServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		done := make(chan []MuxResult, 1)
		if workers < 0 {
			// Reference path: one goroutine per client, fresh model each.
			go func() {
				for id := 0; id < kt; id++ {
					go func(id int) {
						if err := RunRemoteClient(srv.Addr(), id, sgdStrategy{}, ds.Client(id), spec.ModelSpec(), 42); err != nil {
							t.Error(err)
						}
					}(id)
				}
				done <- nil
			}()
		} else {
			mux := &ClientMux{Spec: spec.ModelSpec(), Data: ds, Strat: sgdStrategy{}, Seed: 42, Workers: workers}
			go func() {
				tasks := make([]MuxTask, kt)
				for i := range tasks {
					tasks[i] = MuxTask{ClientID: i, Addr: srv.Addr()}
				}
				done <- mux.RunRound(tasks)
			}()
		}
		agg, err := NewExact(AggFedSGD)
		if err != nil {
			t.Fatal(err)
		}
		res, err := srv.StreamRound(0, model.Params(), cfg, agg, RoundOptions{Clients: kt})
		results := <-done
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("client %d: %v", r.ClientID, r.Err)
			}
			if r.Round != 0 {
				t.Fatalf("client %d served round %d, want 0", r.ClientID, r.Round)
			}
		}
		if res.Folded != kt || !res.Committed {
			t.Fatalf("round result %+v, want %d folded and committed", res, kt)
		}
		return model.Params()
	}

	want := run(t, -1)
	for _, workers := range []int{1, 2, kt, 0} {
		got := run(t, workers)
		for i := range want {
			if !got[i].Equal(want[i], 0) {
				t.Fatalf("workers=%d: param %d differs from per-client-goroutine round", workers, i)
			}
		}
	}
}

// Cursors: completed rounds advance NextRound, abandoned sessions do not,
// and only touched clients materialize state.
func TestClientMuxCursorsAndAbandon(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 42)
	cfg := RoundConfig{BatchSize: 4, LocalIters: 1, LR: 0.1, TotalRounds: 1}

	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mux := &ClientMux{Spec: spec.ModelSpec(), Data: ds, Strat: sgdStrategy{}, Seed: 42, Workers: 2}
	done := make(chan []MuxResult, 1)
	go func() {
		done <- mux.RunRound([]MuxTask{
			{ClientID: 0, Addr: srv.Addr()},
			{ClientID: 7, Addr: srv.Addr(), Abandon: true},
		})
	}()
	res, err := srv.StreamRound(3, model.Params(), cfg, NewFedSGD(), RoundOptions{
		Clients: 2, Deadline: time.Hour, MinQuorum: 1,
	})
	results := <-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 1 || res.Failed != 1 || !res.Committed {
		t.Fatalf("round result %+v, want 1 folded, 1 failed, committed", res)
	}
	if results[0].Err != nil || results[0].Round != 3 {
		t.Fatalf("client 0 result %+v, want round 3 without error", results[0])
	}
	if results[1].Err != nil || results[1].Round != 3 {
		t.Fatalf("abandoning client result %+v, want announced round 3", results[1])
	}
	if n := mux.Clients(); n != 2 {
		t.Fatalf("materialized %d virtual clients, want 2", n)
	}
	if got := mux.client(0).NextRound; got != 4 {
		t.Fatalf("client 0 NextRound = %d, want 4", got)
	}
	if got := mux.client(7).NextRound; got != 0 {
		t.Fatalf("abandoning client NextRound = %d, want 0", got)
	}
}

// awayAt is a PopulationPlan stub: client `id` is away exactly at `round`,
// everyone else is always active.
type awayAt struct{ round, id int }

func (a awayAt) PopulationDynamic() bool { return true }
func (a awayAt) ClientActive(round, client int) bool {
	return !(round == a.round && client == a.id)
}

// A client that departs and returns must not replay quantization
// error-feedback residuals banked before its absence: the mux resets them,
// so its first session back is bit-identical to a client with no history.
// A client that stayed keeps its residuals — repaying rounding debt is the
// whole point of error feedback.
func TestClientMuxQuantResetOnReturn(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 42)
	cfg := RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 3}

	// serve runs one single-client round through the mux against a fresh,
	// identically seeded model, returning the folded params. Quantized
	// binary frames so error feedback is live.
	serve := func(t *testing.T, mux *ClientMux, round int) []*tensor.Tensor {
		t.Helper()
		model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
		srv, err := NewRoundServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		srv.Codec = CodecBinary
		done := make(chan []MuxResult, 1)
		go func() {
			done <- mux.RunRound([]MuxTask{{ClientID: 0, Addr: srv.Addr()}})
		}()
		agg, err := NewExact(AggFedSGD)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.StreamRound(round, model.Params(), cfg, agg, RoundOptions{Clients: 1, Deadline: time.Hour, MinQuorum: 1}); err != nil {
			t.Fatal(err)
		}
		for _, r := range <-done {
			if r.Err != nil {
				t.Fatalf("round %d: %v", round, r.Err)
			}
		}
		return model.Params()
	}
	newMux := func(pop Population) *ClientMux {
		return &ClientMux{
			Spec: spec.ModelSpec(), Data: ds, Strat: sgdStrategy{}, Seed: 42,
			Opt: ClientOptions{Codec: CodecBinary, Quant: QuantInt8}, Workers: 1,
			Population: pop,
		}
	}

	// Steady client: trains round 0, banks residuals, repays them at round 2.
	steady := newMux(Population{})
	serve(t, steady, 0)
	steadyP := serve(t, steady, 2)
	// Returning client: same history, but away at round 1 — residuals reset.
	returning := newMux(PopulationOf(10, awayAt{round: 1, id: 0}))
	serve(t, returning, 0)
	returningP := serve(t, returning, 2)
	// Fresh client: no history at all — the returning client's reference.
	fresh := newMux(Population{})
	freshP := serve(t, fresh, 2)

	for i := range freshP {
		if !returningP[i].Equal(freshP[i], 0) {
			t.Fatalf("param %d: returning client differs from a debt-free fresh client — stale residuals replayed", i)
		}
	}
	same := true
	for i := range steadyP {
		if !steadyP[i].Equal(returningP[i], 0) {
			same = false
		}
	}
	if same {
		t.Fatal("steady and returning clients folded identically — round-0 residuals never banked, test is vacuous")
	}
	if vc := returning.client(0); vc.LastRound != 2 || vc.NextRound != 3 {
		t.Fatalf("returning cursor %+v, want LastRound 2 NextRound 3", vc)
	}
}
