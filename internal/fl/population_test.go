package fl

import (
	"testing"

	"fedcdp/internal/simnet"
)

// Population is the round-indexed registry every runtime consults; these
// tests pin the two properties the open-world engine lives or dies by:
// static populations reproduce the pre-existing cohort draws verbatim, and
// dynamic cohorts are drawn only from the round's active set with the same
// seeded streams.

func TestPopulationStatic(t *testing.T) {
	for _, plan := range []any{nil, simnet.MustParsePlan("drop=0.2").MustBind(42, 3, 10)} {
		pop := PopulationOf(10, plan)
		if pop.Dynamic() {
			t.Fatalf("PopulationOf(10, %T) is dynamic", plan)
		}
		if pop.ActiveCount(0) != 10 || len(pop.ActiveSet(0)) != 10 {
			t.Fatal("static registry must keep all K active")
		}
		if pop.AwayBetween(0, 3, 4) {
			t.Fatal("static registry reports an absence")
		}
	}
}

func TestActiveCohortStaticMatchesLegacyDraws(t *testing.T) {
	pop := PopulationOf(100, nil)
	for round := 0; round < 3; round++ {
		legacy := SampleCohort(42, round, 100, 8, false)
		got := ActiveCohort(42, round, pop, 8, "", false)
		if len(got) != len(legacy) {
			t.Fatalf("round %d: cohort size %d, want %d", round, len(got), len(legacy))
		}
		for i := range got {
			if got[i] != legacy[i] {
				t.Fatalf("round %d: static ActiveCohort diverges from SampleCohort at %d", round, i)
			}
		}
		floydLegacy := SampleCohortFloyd(42, round, 100, 8)
		floydGot := ActiveCohort(42, round, pop, 8, SamplerFloyd, false)
		for i := range floydGot {
			if floydGot[i] != floydLegacy[i] {
				t.Fatalf("round %d: static Floyd ActiveCohort diverges at %d", round, i)
			}
		}
	}
}

func TestActiveCohortDrawsOnlyFromActiveSet(t *testing.T) {
	const rounds, k, kt = 6, 10, 4
	plan := simnet.MustParsePlan("join=2@2,leave=3@4,churn=0.2").MustBind(42, rounds, k)
	pop := PopulationOf(k, plan)
	if !pop.Dynamic() {
		t.Fatal("plan with population clauses must be dynamic")
	}
	for _, sampler := range []string{"", SamplerFloyd} {
		for round := 0; round < rounds; round++ {
			active := map[int]bool{}
			for _, id := range pop.ActiveSet(round) {
				active[id] = true
			}
			cohort := ActiveCohort(42, round, pop, kt, sampler, false)
			want := kt
			if len(active) < kt {
				want = len(active)
			}
			if len(cohort) != want {
				t.Fatalf("sampler %q round %d: cohort size %d, want %d (active %d)", sampler, round, len(cohort), want, len(active))
			}
			seen := map[int]bool{}
			for _, id := range cohort {
				if !active[id] {
					t.Fatalf("sampler %q round %d: cohort includes inactive client %d", sampler, round, id)
				}
				if seen[id] {
					t.Fatalf("sampler %q round %d: duplicate client %d without replacement", sampler, round, id)
				}
				seen[id] = true
			}
		}
	}
}

func TestActiveCohortDeterministic(t *testing.T) {
	plan1 := simnet.MustParsePlan("churn=0.4").MustBind(7, 8, 20)
	plan2 := simnet.MustParsePlan("churn=0.4").MustBind(7, 8, 20)
	p1, p2 := PopulationOf(20, plan1), PopulationOf(20, plan2)
	for round := 0; round < 8; round++ {
		a := ActiveCohort(7, round, p1, 6, SamplerFloyd, false)
		b := ActiveCohort(7, round, p2, 6, SamplerFloyd, false)
		if len(a) != len(b) {
			t.Fatalf("round %d: cohort sizes differ across identical populations", round)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: cohorts diverge at position %d", round, i)
			}
		}
	}
}

func TestActiveCohortEmptyActiveSet(t *testing.T) {
	// churn=1.0: every client is away every round.
	plan := simnet.MustParsePlan("churn=1.0").MustBind(42, 3, 5)
	pop := PopulationOf(5, plan)
	if got := ActiveCohort(42, 0, pop, 3, "", false); got != nil {
		t.Fatalf("empty active set drew cohort %v, want nil", got)
	}
	if pop.ActiveCount(0) != 0 {
		t.Fatalf("ActiveCount = %d under churn=1.0, want 0", pop.ActiveCount(0))
	}
}

func TestAwayBetween(t *testing.T) {
	const rounds, k = 6, 10
	plan := simnet.MustParsePlan("leave=2@3").MustBind(42, rounds, k)
	pop := PopulationOf(k, plan)
	var leaver, steady int = -1, -1
	for id := 0; id < k; id++ {
		if !pop.Active(3, id) {
			leaver = id
		} else if steady < 0 {
			steady = id
		}
	}
	if leaver < 0 {
		t.Fatal("no leaver materialized")
	}
	if pop.AwayBetween(0, 3, leaver) {
		t.Fatal("leaver reported away before departure")
	}
	if !pop.AwayBetween(2, 4, leaver) {
		t.Fatal("leaver not reported away across its departure round")
	}
	if pop.AwayBetween(0, rounds, steady) {
		t.Fatal("steady client reported away")
	}
	// Negative from clamps to 0 rather than probing pre-horizon rounds.
	if pop.AwayBetween(-5, 3, leaver) {
		t.Fatal("clamped window reported an absence before departure")
	}
}
