package fl

import (
	"sync"
	"testing"

	"fedcdp/internal/tensor"
)

func onesUpdate(shape []int, v float64) []*tensor.Tensor {
	t := tensor.New(shape...)
	t.Fill(v)
	return []*tensor.Tensor{t}
}

func TestFedSGDAggregatorIsMean(t *testing.T) {
	params := []*tensor.Tensor{tensor.New(3, 2)}
	agg := NewFedSGD()
	agg.Begin(params)
	agg.Fold(onesUpdate([]int{3, 2}, 2))
	agg.Fold(onesUpdate([]int{3, 2}, 4))
	if agg.Count() != 2 {
		t.Fatalf("count %d, want 2", agg.Count())
	}
	agg.Commit(params)
	for _, v := range params[0].Data() {
		if v != 3 { // mean of 2 and 4, exact in float64
			t.Fatalf("committed %v, want 3", v)
		}
	}
}

func TestFedSGDAggregatorEmptyCommitIsNoOp(t *testing.T) {
	params := onesUpdate([]int{4}, 7)
	agg := NewFedSGD()
	agg.Begin(params)
	agg.Commit(params)
	for _, v := range params[0].Data() {
		if v != 7 {
			t.Fatal("empty fold must leave params unchanged")
		}
	}
}

func TestFedSGDAggregatorReusedAcrossRounds(t *testing.T) {
	// A second Begin must fully reset the accumulator.
	params := []*tensor.Tensor{tensor.New(4)}
	agg := NewFedSGD()
	agg.Begin(params)
	agg.Fold(onesUpdate([]int{4}, 100))
	agg.Commit(params)
	agg.Begin(params)
	agg.Fold(onesUpdate([]int{4}, 1))
	agg.Commit(params)
	for _, v := range params[0].Data() {
		if v != 101 { // 100 from round 1, +1 from round 2
			t.Fatalf("got %v, want 101 — stale accumulator state", v)
		}
	}
}

func TestFedAvgAggregatorMatchesFedSGD(t *testing.T) {
	mk := func() []*tensor.Tensor { return onesUpdate([]int{5}, 10) }
	u1, u2 := onesUpdate([]int{5}, 2), onesUpdate([]int{5}, 4)

	pSGD := mk()
	sgd := NewFedSGD()
	sgd.Begin(pSGD)
	sgd.Fold(u1)
	sgd.Fold(u2)
	sgd.Commit(pSGD)

	pAvg := mk()
	avg := NewFedAvg()
	avg.Begin(pAvg)
	avg.Fold(u1)
	avg.Fold(u2)
	avg.Commit(pAvg)

	for i, v := range pAvg[0].Data() {
		if diff := v - pSGD[0].Data()[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("FedAvg %v vs FedSGD %v", v, pSGD[0].Data()[i])
		}
	}
}

func TestCollectAggregatorRetainsUpdates(t *testing.T) {
	params := []*tensor.Tensor{tensor.New(2)}
	agg := NewCollect()
	agg.Begin(params)
	agg.Fold(onesUpdate([]int{2}, 1))
	agg.Fold(onesUpdate([]int{2}, 2))
	agg.Commit(params)
	if agg.Count() != 2 || len(agg.Updates()) != 2 {
		t.Fatalf("collected %d updates, want 2", agg.Count())
	}
	for _, v := range params[0].Data() {
		if v != 0 {
			t.Fatal("collect must never modify params")
		}
	}
	agg.Begin(params)
	if agg.Count() != 0 {
		t.Fatal("Begin must reset the collection")
	}
}

// TestConcurrentFoldIsSafe folds from many goroutines at once — run under
// -race (the CI race job does) to pin the Aggregator's concurrency
// contract, which the TCP server relies on.
func TestConcurrentFoldIsSafe(t *testing.T) {
	const folders = 32
	params := []*tensor.Tensor{tensor.New(64)}
	agg := NewFedSGD()
	agg.Begin(params)
	var wg sync.WaitGroup
	for i := 0; i < folders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			agg.Fold(onesUpdate([]int{64}, 1))
		}()
	}
	wg.Wait()
	if agg.Count() != folders {
		t.Fatalf("count %d, want %d", agg.Count(), folders)
	}
	agg.Commit(params)
	for _, v := range params[0].Data() {
		if v != 1 { // mean of 32 ones, integer arithmetic is exact
			t.Fatalf("committed %v, want 1", v)
		}
	}
}

func TestAggregateFedSGDSharedHelper(t *testing.T) {
	params := []*tensor.Tensor{tensor.New(3)}
	AggregateFedSGD(params, [][]*tensor.Tensor{onesUpdate([]int{3}, 3), onesUpdate([]int{3}, 5)})
	for _, v := range params[0].Data() {
		if v != 4 {
			t.Fatalf("got %v, want 4", v)
		}
	}
	AggregateFedSGD(params, nil) // no-op
	for _, v := range params[0].Data() {
		if v != 4 {
			t.Fatal("empty update set must leave params unchanged")
		}
	}
}
