package fl

import (
	"math"
	"sync"
	"testing"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// idStrategy returns an update that encodes the client id, so aggregation
// tests can tell exactly which clients were folded and at what weight.
type idStrategy struct{}

func (idStrategy) Name() string { return "id" }

func (idStrategy) ClientUpdate(env *ClientEnv) ([]*tensor.Tensor, ClientStats) {
	delta := tensor.ZerosLike(env.Model.Params())
	for _, d := range delta {
		d.Fill(float64(env.ClientID))
	}
	return delta, ClientStats{Iters: 1, Duration: time.Millisecond}
}

func (idStrategy) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

func TestWeightedFedAvgMatchesOracle(t *testing.T) {
	rng := tensor.NewRNG(3)
	params := []*tensor.Tensor{tensor.New(4, 3), tensor.New(5)}
	for _, p := range params {
		rng.FillNormal(p, 0, 1)
	}
	base := tensor.CloneAll(params)

	updates := make([][]*tensor.Tensor, 4)
	weights := []float64{100, 40, 7, 253}
	for k := range updates {
		updates[k] = tensor.ZerosLike(params)
		for _, u := range updates[k] {
			rng.FillNormal(u, 0, 1)
		}
	}

	agg := NewWeightedFedAvg()
	agg.Begin(params)
	for k, u := range updates {
		agg.FoldWeighted(u, weights[k])
	}
	if agg.Count() != len(updates) {
		t.Fatalf("count %d, want %d", agg.Count(), len(updates))
	}
	agg.Commit(params)

	// Sequential oracle: W ← Σ n_k·(W + ΔW_k) / Σ n_k.
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	oracle := tensor.ZerosLike(base)
	for k, u := range updates {
		tensor.AddAllScaled(oracle, weights[k]/wsum, base)
		tensor.AddAllScaled(oracle, weights[k]/wsum, u)
	}
	for i := range params {
		if !params[i].Equal(oracle[i], 1e-12) {
			t.Fatal("weighted commit diverged from the Σ n_k(W+ΔW_k)/Σn_k oracle")
		}
	}
}

func TestWeightedFedAvgUnitWeightsMatchFedAvgExactly(t *testing.T) {
	rng := tensor.NewRNG(5)
	pw := []*tensor.Tensor{tensor.New(6)}
	rng.FillNormal(pw[0], 0, 1)
	pa := tensor.CloneAll(pw)
	updates := make([][]*tensor.Tensor, 3)
	for k := range updates {
		updates[k] = []*tensor.Tensor{tensor.New(6)}
		rng.FillNormal(updates[k][0], 0, 1)
	}

	w := NewWeightedFedAvg()
	w.Begin(pw)
	a := NewFedAvg()
	a.Begin(pa)
	for _, u := range updates {
		w.Fold(u) // weight 1
		a.Fold(u)
	}
	w.Commit(pw)
	a.Commit(pa)
	if !pw[0].Equal(pa[0], 0) {
		t.Fatal("unit-weight weighted FedAvg must be bit-identical to FedAvg")
	}
}

func TestWeightedFoldClampsBadWeights(t *testing.T) {
	// Weight 0 (legacy client), NaN and +Inf (malformed/hostile wire
	// message) must all fold as weight 1 instead of poisoning the commit.
	for _, bad := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		params := []*tensor.Tensor{tensor.FromSlice([]float64{0}, 1)}
		agg := NewWeightedFedAvg()
		agg.Begin(params)
		agg.FoldWeighted([]*tensor.Tensor{tensor.FromSlice([]float64{2}, 1)}, bad)
		agg.FoldWeighted([]*tensor.Tensor{tensor.FromSlice([]float64{4}, 1)}, 1)
		agg.Commit(params)
		if got := params[0].Data()[0]; got != 3 {
			t.Fatalf("weight %v: commit = %v, want mean 3", bad, got)
		}
	}
	// A huge finite weight is capped at maxFoldWeight rather than allowed
	// to overflow the running sum or dominate the aggregate outright.
	for _, huge := range []float64{1e12, 1e308} {
		params := []*tensor.Tensor{tensor.FromSlice([]float64{0}, 1)}
		agg := NewWeightedFedAvg()
		agg.Begin(params)
		agg.FoldWeighted([]*tensor.Tensor{tensor.FromSlice([]float64{2}, 1)}, huge)
		agg.FoldWeighted([]*tensor.Tensor{tensor.FromSlice([]float64{4}, 1)}, 1)
		agg.Commit(params)
		got := params[0].Data()[0]
		want := (maxFoldWeight*2 + 4) / (maxFoldWeight + 1)
		if math.Abs(got-want) > 1e-9 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("weight %v: commit = %v, want capped mean %v", huge, got, want)
		}
	}
}

// weightedConfig is a small run over a quantity-skewed partition — the
// scenario weighted FedAvg exists for — with the id strategy, so the
// committed model is a pure function of (cohort, weights).
func weightedConfig(t *testing.T, runtime string) Config {
	t.Helper()
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Data:        dataset.NewPartitioned(spec, 42, dataset.QuantitySkew{}),
		Model:       spec.ModelSpec(),
		K:           12,
		Kt:          6,
		Rounds:      2,
		Round:       RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1},
		Strategy:    idStrategy{},
		Aggregation: AggWeighted,
		Runtime:     runtime,
		Seed:        42,
		ValExamples: 20,
	}
}

func TestWeightedRunMatchesSequentialOracle(t *testing.T) {
	cfg := weightedConfig(t, RuntimeStreaming)
	cfg.Rounds = 1
	hist, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: replay round 0 by hand from the same cohort and weights.
	params := nn.Build(cfg.Model, tensor.Split(cfg.Seed, 1)).Params()
	cohort := sampleCohort(cfg, 0)
	var wsum float64
	weights := make([]float64, len(cohort))
	for i, id := range cohort {
		weights[i] = float64(cfg.Data.Client(id).Len())
		wsum += weights[i]
	}
	oracle := tensor.ZerosLike(params)
	for i, id := range cohort {
		upd := tensor.ZerosLike(params)
		for _, u := range upd {
			u.Fill(float64(id))
		}
		tensor.AddAllScaled(oracle, weights[i]/wsum, params)
		tensor.AddAllScaled(oracle, weights[i]/wsum, upd)
	}
	got := hist.Final.Params()
	for i := range got {
		if !got[i].Equal(oracle[i], 1e-12) {
			t.Fatal("streaming weighted round diverged from the cohort-order oracle")
		}
	}
}

func TestWeightedStreamingMatchesBarrier(t *testing.T) {
	hs, err := Run(weightedConfig(t, RuntimeStreaming))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := Run(weightedConfig(t, RuntimeBarrier))
	if err != nil {
		t.Fatal(err)
	}
	ps, pb := hs.Final.Params(), hb.Final.Params()
	for i := range ps {
		if !ps[i].Equal(pb[i], 0) {
			t.Fatal("weighted streaming fold must be bit-identical to the barrier runtime in cohort order")
		}
	}
}

func TestWeightedAggregationValidates(t *testing.T) {
	cfg := weightedConfig(t, RuntimeStreaming)
	cfg.Aggregation = "harmonic"
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected validation error for unknown aggregation")
	}
}

func TestScenarioConfigValidates(t *testing.T) {
	cfg := weightedConfig(t, RuntimeStreaming)
	cfg.Round.Scenario = dataset.Scenario{Name: "zipf"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected validation error for unknown published scenario")
	}
}

// lenStrategy returns an update that encodes the size of the client's
// local shard — the observable a published scenario changes.
type lenStrategy struct{}

func (lenStrategy) Name() string { return "len" }

func (lenStrategy) ClientUpdate(env *ClientEnv) ([]*tensor.Tensor, ClientStats) {
	delta := tensor.ZerosLike(env.Model.Params())
	for _, d := range delta {
		d.Fill(float64(env.Data.Len()))
	}
	return delta, ClientStats{Iters: 1}
}

func (lenStrategy) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

// TestPublishedScenarioRepartitionsRemoteClient pins the pub-sub contract:
// the server announces the heterogeneity scenario in its RoundConfig and a
// connecting client repartitions its local dataset view before training.
func TestPublishedScenarioRepartitionsRemoteClient(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	iid := dataset.New(spec, 42) // the client's own (default) partition
	wantN := dataset.NewPartitioned(spec, 42, dataset.QuantitySkew{}).Client(0).Len()
	if wantN == iid.Client(0).Len() {
		t.Fatalf("test setup: quantity shard must differ from iid, both %d", wantN)
	}

	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	cfg := RoundConfig{
		BatchSize: 4, LocalIters: 1, LR: 0.1, TotalRounds: 1,
		Scenario: dataset.Scenario{Name: dataset.ScenarioQuantity},
	}
	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunRemoteClient(srv.Addr(), 0, lenStrategy{}, iid.Client(0), spec.ModelSpec(), 42); err != nil {
			t.Error(err)
		}
	}()
	agg := NewCollect()
	_, err = srv.StreamRound(0, model.Params(), cfg, agg, RoundOptions{Clients: 1})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	ups := agg.Updates()
	if len(ups) != 1 {
		t.Fatalf("folded %d updates", len(ups))
	}
	if got := ups[0][0].Data()[0]; got != float64(wantN) {
		t.Fatalf("client trained on a shard of %v examples, want the published scenario's %d", got, wantN)
	}
}

// TestWeightOverTCP pins the wire contract: remote clients report their
// local example count on the update message and a weight-aware server
// aggregator folds with it.
func TestWeightOverTCP(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	// Quantity skew gives the two clients different local sizes.
	ds := dataset.NewPartitioned(spec, 42, dataset.QuantitySkew{})
	n0 := float64(ds.Client(0).Len())
	n1 := float64(ds.Client(1).Len())
	if n0 == n1 {
		t.Fatalf("test setup: clients must have distinct sizes, both %v", n0)
	}

	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	before := tensor.CloneAll(model.Params())
	cfg := RoundConfig{BatchSize: 4, LocalIters: 1, LR: 0.1, TotalRounds: 1}

	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := RunRemoteClient(srv.Addr(), id, idStrategy{}, ds.Client(id), spec.ModelSpec(), 42); err != nil {
				t.Error(err)
			}
		}(i)
	}
	res, err := srv.StreamRound(0, model.Params(), cfg, NewWeightedFedAvg(), RoundOptions{Clients: 2})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 2 || !res.Committed {
		t.Fatalf("round result %+v", res)
	}
	// W' = (n0·(W+0) + n1·(W+1)) / (n0+n1) = W + n1/(n0+n1).
	shift := n1 / (n0 + n1)
	for i, p := range model.Params() {
		want := before[i].Clone()
		for j, v := range want.Data() {
			want.Data()[j] = v + shift
		}
		if !p.Equal(want, 1e-9) {
			t.Fatalf("weighted TCP fold off: param %d", i)
		}
	}
}
